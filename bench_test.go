// Package spyker_bench contains one testing.B benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment
// index). Each benchmark runs the corresponding experiment at a reduced
// but shape-preserving scale (the full-scale runs are driven by
// cmd/spyker-bench) and reports the headline quantity of that table or
// figure as a custom metric, so `go test -bench=. -benchmem` regenerates
// the whole evaluation in miniature.
package spyker_bench

import (
	"fmt"
	"testing"

	"github.com/spyker-fl/spyker/internal/experiments"
)

// benchScale shrinks client populations and horizons so the whole suite
// runs in a few minutes while preserving every reported shape. A few
// experiments need more volume for their mechanism to appear and override
// it: queueing (Fig. 9/10) needs enough clients to load a server, and the
// imbalance study (Tab. 7) needs the hotspot to approach the 2 ms
// aggregation service rate.
const (
	benchScale          = 0.3
	benchScaleQueue     = 0.5
	benchScaleImbalance = 0.7
	// Tab. 5's headline (FedAsync degrading fastest) appears only once
	// the 200- and 300-client populations saturate the single FedAsync
	// server, so this benchmark runs at the paper's full populations.
	benchScaleTable5 = 1.0
)

const benchSeed = 1

// BenchmarkFig3Fig4WikiText regenerates the WikiText-2 perplexity curves
// (paper Figs. 3 and 4): five algorithms on the char-LSTM task.
func BenchmarkFig3Fig4WikiText(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(experiments.TaskWiki, benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c, true)
	}
}

// BenchmarkFig5Fig6MNIST regenerates the MNIST accuracy curves (paper
// Figs. 5 and 6).
func BenchmarkFig5Fig6MNIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(experiments.TaskMNIST, benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c, false)
	}
}

// BenchmarkFig7Fig8CIFAR regenerates the CIFAR-10 accuracy curves (paper
// Figs. 7 and 8).
func BenchmarkFig7Fig8CIFAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(experiments.TaskCIFAR, benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c, false)
	}
}

func reportComparison(b *testing.B, c *experiments.Comparison, perplexity bool) {
	b.Helper()
	for _, r := range c.Results {
		final := r.Trace.Final()
		if perplexity {
			b.ReportMetric(r.Trace.BestPerplexity(), "ppl_"+metricName(r.Algorithm))
		} else {
			b.ReportMetric(100*r.Trace.BestAcc(), "acc%_"+metricName(r.Algorithm))
		}
		_ = final
	}
	if b.N == 1 {
		b.Logf("\n%s", c.Summary())
	}
}

func metricName(alg string) string {
	switch alg {
	case "Spyker(no-decay)":
		return "spyker_nodecay"
	case "Sync-Spyker":
		return "syncspyker"
	default:
		out := make([]rune, 0, len(alg))
		for _, r := range alg {
			if r != '-' && r != ' ' {
				out = append(out, r)
			}
		}
		return string(out)
	}
}

// BenchmarkTable5Scalability regenerates the client-scalability factors
// (paper Tab. 5): how time-to-accuracy grows from 1x to 2x to 3x clients.
func BenchmarkTable5Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunScalabilityStudy(benchScaleTable5, 0.88, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range s.Rows {
			if len(row.TimeFactors) > 0 && row.TimeFactors[0] > 0 {
				b.ReportMetric(row.TimeFactors[0], "x2time_"+metricName(row.Algorithm))
			}
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkTable6Latency regenerates the AWS-vs-uniform-latency
// comparison (paper Tab. 6).
func BenchmarkTable6Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunLatencyStudy(benchScale, 0.85, 0.90, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*s.Improvement("Lat."), "impr%_lat")
		b.ReportMetric(100*s.Improvement("No lat."), "impr%_nolat")
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkFig9Queueing regenerates the queue-length study (paper
// Fig. 9): FedAsync's single queue versus Spyker's four.
func BenchmarkFig9Queueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q, err := experiments.RunQueueStudy(benchScaleQueue, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(q.FedAsync.Queues[0].Max()), "maxq_fedasync")
		b.ReportMetric(float64(q.MaxSpykerQueue()), "maxq_spyker")
		if b.N == 1 {
			b.Logf("\n%s", q.Render())
		}
	}
}

// BenchmarkFig10KDE regenerates the per-client update-count distribution
// (paper Fig. 10).
func BenchmarkFig10KDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, err := experiments.RunKDEStudy(benchScaleQueue, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if b.N == 1 {
			b.Logf("\n%s", k.Render())
		}
	}
}

// BenchmarkTable7Imbalance regenerates the client-imbalance study (paper
// Tab. 7).
func BenchmarkTable7Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunImbalanceStudy(benchScaleImbalance, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := s.Scenarios[len(s.Scenarios)-1]
		b.ReportMetric(last.Duration-s.Scenarios[0].Duration, "hotspot_dur_delta_s")
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkFig11Decay regenerates the learning-rate-decay ablation
// (paper Fig. 11).
func BenchmarkFig11Decay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunDecayStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*d.WithDecay.Trace.BestAcc(), "acc%_decay")
		b.ReportMetric(100*d.WithoutDecay.Trace.BestAcc(), "acc%_nodecay")
		if b.N == 1 {
			b.Logf("\n%s", d.Render())
		}
	}
}

// BenchmarkFig12Bandwidth regenerates the network-consumption comparison
// (paper Fig. 12).
func BenchmarkFig12Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunBandwidthStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range s.Rows {
			b.ReportMetric(float64(row.Total())/1e6, "MB_"+metricName(row.Algorithm))
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkExtChurn runs the churn extension (beyond the paper): a third
// of the clients go offline mid-run and rejoin with stale updates.
func BenchmarkExtChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunChurnStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*c.AccuracyDip(c.Spyker), "dip%_spyker")
		b.ReportMetric(100*c.AccuracyDip(c.FedAsync), "dip%_fedasync")
		if b.N == 1 {
			b.Logf("\n%s", c.Render())
		}
	}
}

// BenchmarkExtAblations sweeps the Spyker design knobs (h_inter, eta_a,
// phi) and reports the convergence/bandwidth trade-off.
func BenchmarkExtAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblations(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.HInter[0].ServerBytes)/1e6, "MB_hinter_min")
		b.ReportMetric(float64(a.HInter[len(a.HInter)-1].ServerBytes)/1e6, "MB_hinter_max")
		if b.N == 1 {
			b.Logf("\n%s", a.Render())
		}
	}
}

// BenchmarkExtClustering compares the geo, similar and stratified client
// placements (the paper's Sec. 7 future work).
func BenchmarkExtClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunClusteringStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Results {
			if r.TimeToTarget > 0 {
				b.ReportMetric(r.TimeToTarget, "t_"+r.Assignment.String())
			}
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkExtCompression compares raw, 8-bit-quantized and top-10%
// sparsified client updates on Spyker (bandwidth extension).
func BenchmarkExtCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunCompressionStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Rows {
			b.ReportMetric(float64(r.ClientServerBytes)/1e6, "MB_"+r.Codec)
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkExtServerScaling varies the server count over a fixed
// geo-distributed client population (completing the paper's scalability
// story for the server dimension).
func BenchmarkExtServerScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunServerScalingStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Rows {
			if r.TimeToTarget > 0 {
				b.ReportMetric(r.TimeToTarget, fmt.Sprintf("t_%dsrv", r.Servers))
			}
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkExtByzantine measures the poisoning attacks and the norm-clip
// defense (the "Byzantine Learning" keyword the paper never evaluates).
func BenchmarkExtByzantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunByzantineStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Rows {
			_ = r
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}

// BenchmarkExtStraggler puts a 20x-slow machine under one server and
// compares how Spyker, Sync-Spyker and HierFAVG degrade.
func BenchmarkExtStraggler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunStragglerStudy(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Rows {
			if v := r.Slowdown(); v > 0 {
				b.ReportMetric(v, "slowdown_"+metricName(r.Algorithm))
			}
		}
		if b.N == 1 {
			b.Logf("\n%s", s.Render())
		}
	}
}
