module github.com/spyker-fl/spyker

go 1.24
