// Command spyker-bench regenerates every table and figure of the paper's
// evaluation section. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	spyker-bench -list               # enumerate experiments
//	spyker-bench -exp all            # run the whole evaluation
//	spyker-bench -exp fig5 -scale 1  # one experiment at full scale
//
// -scale in (0,1] shrinks client populations and horizons proportionally
// for quick runs; the shapes the paper reports are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/spyker-fl/spyker/internal/experiments"
)

type renderer interface{ Render() string }

// params carries the shared experiment knobs into each job.
type params struct {
	scale    float64
	seed     int64
	t90, t95 float64
}

// job is one runnable experiment. The jobs table is the single source of
// truth for -exp: the usage string and -list are derived from it.
type job struct {
	name string
	desc string
	fn   func(p params) (renderer, error)
}

var jobs = []job{
	{"fig3", "Wiki char-LM: Spyker vs baselines, accuracy over time", func(p params) (renderer, error) {
		return experiments.RunComparison(experiments.TaskWiki, p.scale, p.seed)
	}},
	{"fig5", "MNIST CNN: Spyker vs baselines, accuracy over time", func(p params) (renderer, error) {
		return experiments.RunComparison(experiments.TaskMNIST, p.scale, p.seed)
	}},
	{"fig7", "CIFAR CNN: Spyker vs baselines, accuracy over time", func(p params) (renderer, error) {
		return experiments.RunComparison(experiments.TaskCIFAR, p.scale, p.seed)
	}},
	{"table5", "time-to-target-accuracy across deployment scales", func(p params) (renderer, error) {
		return experiments.RunScalabilityStudy(p.scale, 0.88, p.seed)
	}},
	{"table6", "time to 90%/95% targets under geo latency", func(p params) (renderer, error) {
		return experiments.RunLatencyStudy(p.scale, p.t90, p.t95, p.seed)
	}},
	{"fig9", "server queue depth over time", func(p params) (renderer, error) {
		return experiments.RunQueueStudy(p.scale, p.seed)
	}},
	{"fig10", "update-staleness KDE", func(p params) (renderer, error) {
		return experiments.RunKDEStudy(p.scale, p.seed)
	}},
	{"table7", "client-imbalance sensitivity", func(p params) (renderer, error) {
		return experiments.RunImbalanceStudy(p.scale, p.seed)
	}},
	{"fig11", "staleness-decay (phi) sweep", func(p params) (renderer, error) {
		return experiments.RunDecayStudy(p.scale, p.seed)
	}},
	{"fig12", "bandwidth usage accounting", func(p params) (renderer, error) {
		return experiments.RunBandwidthStudy(p.scale, p.seed)
	}},
	{"churn", "client churn robustness", func(p params) (renderer, error) {
		return experiments.RunChurnStudy(p.scale, p.seed)
	}},
	{"ablations", "component ablations", func(p params) (renderer, error) {
		return experiments.RunAblations(p.scale, p.seed)
	}},
	{"clustering", "client-to-server assignment strategies", func(p params) (renderer, error) {
		return experiments.RunClusteringStudy(p.scale, p.seed)
	}},
	{"compression", "update-compression operating points", func(p params) (renderer, error) {
		return experiments.RunCompressionStudy(p.scale, p.seed)
	}},
	{"servers", "server-count scaling", func(p params) (renderer, error) {
		return experiments.RunServerScalingStudy(p.scale, p.seed)
	}},
	{"byzantine", "byzantine-client resilience", func(p params) (renderer, error) {
		return experiments.RunByzantineStudy(p.scale, p.seed)
	}},
	{"failover", "token-holder crash-rate sweep with recovery", func(p params) (renderer, error) {
		return experiments.RunFailoverStudy(p.scale, p.seed)
	}},
	{"straggler", "straggler-client sensitivity", func(p params) (renderer, error) {
		return experiments.RunStragglerStudy(p.scale, p.seed)
	}},
	{"elastic", "runtime 2->4 server scale-out vs fixed baselines", func(p params) (renderer, error) {
		return experiments.RunElasticStudy(p.scale, p.seed)
	}},
}

// aliases map the paper's sibling figure numbers (loss panels) onto the
// experiment that renders both panels.
var aliases = map[string]string{"fig4": "fig3", "fig6": "fig5", "fig8": "fig7"}

// expNames derives the -exp usage string from the jobs table.
func expNames() string {
	names := make([]string, 0, len(jobs)+1)
	for _, j := range jobs {
		names = append(names, j.name)
	}
	return strings.Join(append(names, "all"), "|")
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+expNames())
	scale := flag.Float64("scale", 0.5, "deployment scale in (0,1]; 1 = paper-size populations")
	seed := flag.Int64("seed", 1, "experiment seed")
	t90 := flag.Float64("target90", 0.90, "lower accuracy target for table6")
	t95 := flag.Float64("target95", 0.93, "upper accuracy target for table6")
	list := flag.Bool("list", false, "list registered experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *list {
		for _, j := range jobs {
			fmt.Printf("%-12s %s\n", j.name, j.desc)
		}
		names := make([]string, 0, len(aliases))
		for alias := range aliases {
			names = append(names, alias)
		}
		sort.Strings(names)
		for _, alias := range names {
			fmt.Printf("%-12s alias for %s\n", alias, aliases[alias])
		}
		return
	}

	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cpuFile = f
	}

	err := run(*exp, params{scale: *scale, seed: *seed, t90: *t90, t95: *t95})

	// Profiles are flushed before exiting on any path (os.Exit skips
	// deferred calls, so this is explicit).
	if cpuFile != nil {
		pprof.StopCPUProfile()
		_ = cpuFile.Close()
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		runtime.GC() // flush garbage so the profile shows live allocations
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		_ = f.Close()
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(exp string, p params) error {
	if a, ok := aliases[exp]; ok {
		exp = a
	}

	ran := false
	for _, j := range jobs {
		if exp != "all" && exp != j.name {
			continue
		}
		ran = true
		start := time.Now()
		r, err := j.fn(p)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Printf("\n################ %s (scale %.2f, %s wall) ################\n%s\n",
			strings.ToUpper(j.name), p.scale, time.Since(start).Round(time.Millisecond), r.Render())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (see -list)", exp)
	}
	return nil
}
