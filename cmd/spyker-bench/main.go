// Command spyker-bench regenerates every table and figure of the paper's
// evaluation section. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	spyker-bench -exp all            # run the whole evaluation
//	spyker-bench -exp fig5 -scale 1  # one experiment at full scale
//
// -scale in (0,1] shrinks client populations and horizons proportionally
// for quick runs; the shapes the paper reports are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/spyker-fl/spyker/internal/experiments"
)

type renderer interface{ Render() string }

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig5|fig7|fig9|fig10|fig11|fig12|table5|table6|table7|churn|ablations|clustering|compression|servers|byzantine|straggler|all")
	scale := flag.Float64("scale", 0.5, "deployment scale in (0,1]; 1 = paper-size populations")
	seed := flag.Int64("seed", 1, "experiment seed")
	t90 := flag.Float64("target90", 0.90, "lower accuracy target for table6")
	t95 := flag.Float64("target95", 0.93, "upper accuracy target for table6")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cpuFile = f
	}

	err := run(*exp, *scale, *seed, *t90, *t95)

	// Profiles are flushed before exiting on any path (os.Exit skips
	// deferred calls, so this is explicit).
	if cpuFile != nil {
		pprof.StopCPUProfile()
		_ = cpuFile.Close()
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		runtime.GC() // flush garbage so the profile shows live allocations
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		_ = f.Close()
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, seed int64, t90, t95 float64) error {
	type job struct {
		name string
		fn   func() (renderer, error)
	}
	jobs := []job{
		{"fig3", func() (renderer, error) { return experiments.RunComparison(experiments.TaskWiki, scale, seed) }},
		{"fig5", func() (renderer, error) { return experiments.RunComparison(experiments.TaskMNIST, scale, seed) }},
		{"fig7", func() (renderer, error) { return experiments.RunComparison(experiments.TaskCIFAR, scale, seed) }},
		{"table5", func() (renderer, error) { return experiments.RunScalabilityStudy(scale, 0.88, seed) }},
		{"table6", func() (renderer, error) { return experiments.RunLatencyStudy(scale, t90, t95, seed) }},
		{"fig9", func() (renderer, error) { return experiments.RunQueueStudy(scale, seed) }},
		{"fig10", func() (renderer, error) { return experiments.RunKDEStudy(scale, seed) }},
		{"table7", func() (renderer, error) { return experiments.RunImbalanceStudy(scale, seed) }},
		{"fig11", func() (renderer, error) { return experiments.RunDecayStudy(scale, seed) }},
		{"fig12", func() (renderer, error) { return experiments.RunBandwidthStudy(scale, seed) }},
		{"churn", func() (renderer, error) { return experiments.RunChurnStudy(scale, seed) }},
		{"ablations", func() (renderer, error) { return experiments.RunAblations(scale, seed) }},
		{"clustering", func() (renderer, error) { return experiments.RunClusteringStudy(scale, seed) }},
		{"compression", func() (renderer, error) { return experiments.RunCompressionStudy(scale, seed) }},
		{"servers", func() (renderer, error) { return experiments.RunServerScalingStudy(scale, seed) }},
		{"byzantine", func() (renderer, error) { return experiments.RunByzantineStudy(scale, seed) }},
		{"straggler", func() (renderer, error) { return experiments.RunStragglerStudy(scale, seed) }},
	}
	aliases := map[string]string{"fig4": "fig3", "fig6": "fig5", "fig8": "fig7"}
	if a, ok := aliases[exp]; ok {
		exp = a
	}

	ran := false
	for _, j := range jobs {
		if exp != "all" && exp != j.name {
			continue
		}
		ran = true
		start := time.Now()
		r, err := j.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Printf("\n################ %s (scale %.2f, %s wall) ################\n%s\n",
			strings.ToUpper(j.name), scale, time.Since(start).Round(time.Millisecond), r.Render())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
