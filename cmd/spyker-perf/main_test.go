package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/perf"
)

// testManifest builds a minimal valid manifest on disk.
func testManifest(t *testing.T, name string, results []perf.Result) string {
	t.Helper()
	m := perf.NewManifest()
	m.Scenarios = results
	p := filepath.Join(t.TempDir(), name)
	if err := m.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func baseResults() []perf.Result {
	return []perf.Result{
		{Name: "paramvec/axpy", Layer: "paramvec", Reps: 10, Ops: 1, NsPerOp: 10000, AllocsPerOp: 0},
		{Name: "spyker/server-aggregate", Layer: "spyker", Reps: 10, Ops: 1, NsPerOp: 30000, AllocsPerOp: 0},
	}
}

// TestCompareFailsOnInjectedRegression is the acceptance check: a
// manifest with a 2x ns/op regression must make -compare exit non-zero
// and name the offender.
func TestCompareFailsOnInjectedRegression(t *testing.T) {
	old := testManifest(t, "old.json", baseResults())
	slow := baseResults()
	slow[1].NsPerOp *= 2 // inject the regression
	nu := testManifest(t, "new.json", slow)

	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-compare", old, "-compare-to", nu}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED") ||
		!strings.Contains(stdout.String(), "spyker/server-aggregate") {
		t.Errorf("report does not name the regressed scenario:\n%s", stdout.String())
	}
}

// TestCompareFailsOnAllocRegression: losing an allocation-free hot path
// (0 -> 1 allocs/op) must gate even when timing is unchanged.
func TestCompareFailsOnAllocRegression(t *testing.T) {
	old := testManifest(t, "old.json", baseResults())
	leaky := baseResults()
	leaky[0].AllocsPerOp = 1
	nu := testManifest(t, "new.json", leaky)

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-compare", old, "-compare-to", nu}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED (allocs)") {
		t.Errorf("report missing alloc verdict:\n%s", stdout.String())
	}
}

// TestComparePassesWithinThreshold: a 30% slowdown passes a 50% gate and
// fails the default 15% one.
func TestComparePassesWithinThreshold(t *testing.T) {
	old := testManifest(t, "old.json", baseResults())
	drift := baseResults()
	for i := range drift {
		drift[i].NsPerOp *= 1.3
	}
	nu := testManifest(t, "new.json", drift)

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-compare", old, "-compare-to", nu, "-threshold", "0.5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("loose threshold: exit %d, want 0\n%s", code, stdout.String())
	}
	stdout.Reset()
	if code := realMain([]string{"-compare", old, "-compare-to", nu}, &stdout, &stderr); code != 1 {
		t.Fatalf("default threshold: exit %d, want 1\n%s", code, stdout.String())
	}
}

// TestCompareIgnoresCoverageDifferences: a smoke-subset manifest compared
// against a full baseline only gates the intersection.
func TestCompareIgnoresCoverageDifferences(t *testing.T) {
	full := append(baseResults(), perf.Result{
		Name: "live/update-roundtrip", Layer: "live", Reps: 10, Ops: 1, NsPerOp: 1e6,
	})
	old := testManifest(t, "old.json", full)
	nu := testManifest(t, "new.json", baseResults())

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-compare", old, "-compare-to", nu}, &stdout, &stderr); code != 0 {
		t.Fatalf("subset compare: exit %d, want 0\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "live/update-roundtrip") {
		t.Errorf("missing-scenario note absent:\n%s", stdout.String())
	}
}

// TestListEnumeratesScenarios checks -list prints every registered
// scenario with its layer.
func TestListEnumeratesScenarios(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, s := range perf.Scenarios() {
		if !strings.Contains(stdout.String(), s.Name) {
			t.Errorf("-list missing scenario %s", s.Name)
		}
	}
	if !strings.Contains(stdout.String(), "[smoke]") {
		t.Error("-list does not mark the smoke subset")
	}
}

// TestBadFlagCombos: -compare-to without -compare, bad regexp, bad
// manifest path all exit 2.
func TestBadFlagCombos(t *testing.T) {
	cases := [][]string{
		{"-compare-to", "x.json"},
		{"-run", "(["},
		{"-compare", "does-not-exist.json", "-compare-to", "also-missing.json"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
