// Command spyker-perf runs the cross-layer performance suite
// (internal/perf) and manages its BENCH manifests: it times every
// registered scenario, emits a machine-readable manifest plus a markdown
// table, and diffs manifests against a baseline, exiting non-zero when
// any scenario regressed beyond the threshold.
//
// Usage:
//
//	spyker-perf                               # run everything, print table
//	spyker-perf -list                         # enumerate scenarios
//	spyker-perf -run smoke -json out.json     # quick subset, write manifest
//	spyker-perf -run 'paramvec|spyker' -pprof-dir prof
//	spyker-perf -compare BENCH_4.json         # fresh run vs baseline
//	spyker-perf -compare BENCH_4.json -compare-to out.json -threshold 0.5
//
// -run matches scenario names, layers, or the literal tag "smoke" (the
// fast low-variance subset CI gates on). -compare alone re-runs the
// matching scenarios and diffs them against the baseline; with
// -compare-to it diffs two existing manifests without running anything.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strings"

	"github.com/spyker-fl/spyker/internal/perf"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spyker-perf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runPat    = fs.String("run", "", "regexp selecting scenarios by name, layer, or the \"smoke\" tag (empty = all)")
		jsonOut   = fs.String("json", "", "write the run's manifest to this file")
		pprofDir  = fs.String("pprof-dir", "", "write per-scenario CPU and heap profiles into this directory")
		reps      = fs.Int("reps", 0, "timed repetitions per scenario (0 = default 20)")
		warmup    = fs.Int("warmup", 0, "untimed warmup repetitions per scenario (0 = default 2)")
		list      = fs.Bool("list", false, "list registered scenarios and exit")
		compare   = fs.String("compare", "", "baseline manifest to diff against; exits 1 on regression")
		compareTo = fs.String("compare-to", "", "with -compare: diff this manifest instead of running the suite")
		threshold = fs.Float64("threshold", perf.DefaultThreshold, "relative ns/op slowdown counted as a regression")
		markdown  = fs.Bool("md", false, "print the manifest as a markdown table instead of the plain log")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, s := range perf.Scenarios() {
			tag := ""
			if s.Smoke {
				tag = "  [smoke]"
			}
			fmt.Fprintf(stdout, "%-28s %s%s\n", s.Name, s.Layer, tag)
		}
		fmt.Fprintf(stdout, "%d scenarios over layers: %s\n",
			len(perf.Scenarios()), strings.Join(perf.Layers(), ", "))
		return 0
	}
	if *compareTo != "" && *compare == "" {
		fmt.Fprintln(stderr, "spyker-perf: -compare-to requires -compare <baseline>")
		return 2
	}

	var filter *regexp.Regexp
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(stderr, "spyker-perf: bad -run pattern: %v\n", err)
			return 2
		}
		filter = re
	}

	var fresh *perf.Manifest
	if *compare != "" && *compareTo != "" {
		m, err := perf.ReadManifest(*compareTo)
		if err != nil {
			fmt.Fprintln(stderr, "spyker-perf:", err)
			return 2
		}
		fresh = m
	} else {
		m, err := perf.Run(perf.Options{
			Filter:   filter,
			Reps:     *reps,
			Warmup:   *warmup,
			PprofDir: *pprofDir,
			Log:      stderr,
		})
		if err != nil {
			fmt.Fprintln(stderr, "spyker-perf:", err)
			return 2
		}
		m.GitRev = gitRev()
		fresh = m
		if *markdown {
			fmt.Fprint(stdout, m.MarkdownTable())
		}
		if *jsonOut != "" {
			if err := m.WriteFile(*jsonOut); err != nil {
				fmt.Fprintln(stderr, "spyker-perf:", err)
				return 2
			}
			fmt.Fprintf(stderr, "wrote %d scenarios to %s\n", len(m.Scenarios), *jsonOut)
		}
	}

	if *compare != "" {
		baseline, err := perf.ReadManifest(*compare)
		if err != nil {
			fmt.Fprintln(stderr, "spyker-perf:", err)
			return 2
		}
		report := perf.Compare(baseline, fresh, *threshold)
		fmt.Fprint(stdout, report.Render())
		if report.Regressed() {
			return 1
		}
	}
	return 0
}

// gitRev stamps manifests with the current commit (best effort: empty
// outside a git checkout).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
