package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/health"
)

// fakeServer serves /debug/telemetry with a mutable snapshot, standing
// in for one spyker-live process.
type fakeServer struct {
	mu   sync.Mutex
	tel  obs.Telemetry
	down bool
	srv  *httptest.Server
}

func newFakeServer(t *testing.T, tel obs.Telemetry) *fakeServer {
	t.Helper()
	f := &fakeServer{tel: tel}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.down {
			http.Error(w, "gone", http.StatusServiceUnavailable)
			return
		}
		snap := f.tel
		_ = obs.WriteTelemetry(w, &snap)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeServer) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeServer) set(mut func(*obs.Telemetry)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(&f.tel)
}

func baseTelemetry(server int) obs.Telemetry {
	return obs.Telemetry{
		Version: obs.TelemetryVersion,
		Server:  server,
		Epoch:   1,
		Members: []int{0, 1},

		TokenTimeout: 2,
		TokenSilence: 0.1,
	}
}

// TestMonitorStallAndRecovery drives the monitor through the e2e arc in
// miniature: both servers healthy, then the whole cluster reports ever
// growing token silence (the holder was killed), then circulation
// resumes. The monitor must log healthy -> stalled naming
// token-silence, then stalled -> healthy.
func TestMonitorStallAndRecovery(t *testing.T) {
	s0 := newFakeServer(t, baseTelemetry(0))
	s1 := newFakeServer(t, baseTelemetry(1))
	var log bytes.Buffer
	m := newMonitor([]string{s0.addr(), s1.addr()}, health.Config{}, 0, s0.srv.Client(), &log)

	// Threshold = 2 x TokenTimeout = 4s of silence.
	m.poll(0)
	if got := m.ev.State(); got != health.Healthy {
		t.Fatalf("state at t=0: %v", got)
	}
	// Every server reports growing silence: nobody has seen the token
	// move since t=0 on the monitor clock.
	for _, at := range []float64{2, 4, 6} {
		sil := at
		s0.set(func(tel *obs.Telemetry) { tel.TokenSilence = sil })
		s1.set(func(tel *obs.Telemetry) { tel.TokenSilence = sil })
		m.poll(at)
	}
	if got := m.ev.State(); got != health.Stalled {
		t.Fatalf("state after 6s of silence: %v (alerts %v)", got, m.ev.Alerts())
	}
	// Recovery: server 1 reports a fresh handoff.
	s1.set(func(tel *obs.Telemetry) { tel.TokenSilence = 0.2 })
	m.poll(8)
	if got := m.ev.State(); got != health.Healthy {
		t.Fatalf("state after recovery: %v", got)
	}

	out := log.String()
	for _, want := range []string{
		"health: healthy -> stalled [token-silence]",
		"health: stalled -> healthy",
		"alert [token-silence] stalled",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("monitor log missing %q:\n%s", want, out)
		}
	}
}

// TestMonitorDiscovery: a third server joins the ring; the monitor
// learns its transport address from an existing member's address book
// and derives the debug endpoint via the port-offset convention.
func TestMonitorDiscovery(t *testing.T) {
	tel := baseTelemetry(0)
	s0 := newFakeServer(t, tel)
	var log bytes.Buffer
	m := newMonitor([]string{s0.addr()}, health.Config{}, 7, s0.srv.Client(), &log)

	m.poll(0)
	if len(m.order) != 1 {
		t.Fatalf("targets before join: %v", m.order)
	}
	s0.set(func(tel *obs.Telemetry) {
		tel.Epoch = 2
		tel.Members = []int{0, 1, 2}
		tel.Addrs = []string{"127.0.0.1:9000", "127.0.0.1:9010", "127.0.0.1:9020"}
	})
	m.poll(1)
	if len(m.order) != 4 { // seed + three derived debug addresses
		t.Fatalf("targets after join: %v", m.order)
	}
	for _, want := range []string{"127.0.0.1:9007", "127.0.0.1:9017", "127.0.0.1:9027"} {
		if _, ok := m.targets[want]; !ok {
			t.Errorf("derived target %s missing (have %v)", want, m.order)
		}
	}
	if !strings.Contains(log.String(), "discovered server 2 at 127.0.0.1:9027") {
		t.Errorf("discovery not logged:\n%s", log.String())
	}
}

// TestMonitorEndpoints checks the /health JSON and /metrics exposition
// shapes, including a down target staying visible with up=0.
func TestMonitorEndpoints(t *testing.T) {
	s0 := newFakeServer(t, baseTelemetry(0))
	tel1 := baseTelemetry(1)
	tel1.Peers = []obs.TelemetryPeer{{Peer: 0, OutboxDepth: 3}}
	tel1.Updates = 42
	s1 := newFakeServer(t, tel1)
	var log bytes.Buffer
	m := newMonitor([]string{s0.addr(), s1.addr()}, health.Config{}, 0, s0.srv.Client(), &log)

	m.poll(0)
	s0.set(func(tel *obs.Telemetry) { _ = tel })
	s0.mu.Lock()
	s0.down = true
	s0.mu.Unlock()
	m.poll(1)

	var hj bytes.Buffer
	if err := m.writeHealth(&hj); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"state":"healthy"`, `"up":false`, `"up":true`, `"server":1`} {
		if !strings.Contains(hj.String(), want) {
			t.Errorf("/health missing %q:\n%s", want, hj.String())
		}
	}

	var pm bytes.Buffer
	if err := m.writeMetrics(&pm); err != nil {
		t.Fatal(err)
	}
	out := pm.String()
	for _, want := range []string{
		"spyker_mon_health_state 0",
		"spyker_mon_targets 2",
		`server="0"`,
		`spyker_mon_up{target="` + s0.addr() + `",server="0"} 0`,
		`spyker_mon_up{target="` + s1.addr() + `",server="1"} 1`,
		`spyker_mon_updates_total{target="` + s1.addr() + `",server="1"} 42`,
		`spyker_mon_outbox_depth{target="` + s1.addr() + `",server="1",peer="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMonitorAuditEndpoint: servers reporting audit telemetry surface
// per-client forensics on /audit (with the cluster-wide flagged union),
// audit gauges on /metrics, and a flagged client sustained across polls
// degrades cluster health via the client-anomaly rule.
func TestMonitorAuditEndpoint(t *testing.T) {
	tel0 := baseTelemetry(0)
	tel0.Audit = &obs.TelemetryAudit{
		Updates: 40,
		Flagged: 1,
		Clients: []obs.TelemetryAuditClient{
			{Client: 2, Updates: 20, MedianNorm: 1.1, NormZ: 0.3, MedianCos: 0.8},
			{Client: 5, Updates: 20, MedianNorm: 9.7, NormZ: 8.2, MedianCos: 0.1,
				Flags: []string{"norm-outlier"}},
		},
	}
	s0 := newFakeServer(t, tel0)
	s1 := newFakeServer(t, baseTelemetry(1)) // audit disarmed on this server
	var log bytes.Buffer
	m := newMonitor([]string{s0.addr(), s1.addr()}, health.Config{}, 0, s0.srv.Client(), &log)
	m.poll(0)
	m.poll(1) // second flagged poll sustains the health rule

	var aj bytes.Buffer
	if err := m.writeAudit(&aj); err != nil {
		t.Fatal(err)
	}
	out := aj.String()
	for _, want := range []string{
		`"flagged_clients":[5]`,
		`"norm-outlier"`,
		`"median_norm":9.7`,
		`"server":1`, // disarmed server still listed, without an audit section
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/audit missing %q:\n%s", want, out)
		}
	}

	var pm bytes.Buffer
	if err := m.writeMetrics(&pm); err != nil {
		t.Fatal(err)
	}
	mout := pm.String()
	for _, want := range []string{
		`spyker_mon_audit_flagged_clients{target="` + s0.addr() + `",server="0"} 1`,
		`spyker_mon_client_norm_z{target="` + s0.addr() + `",server="0",client="5"} 8.2`,
		`spyker_mon_client_flagged{target="` + s0.addr() + `",server="0",client="5"} 1`,
		`spyker_mon_client_flagged{target="` + s0.addr() + `",server="0",client="2"} 0`,
	} {
		if !strings.Contains(mout, want) {
			t.Errorf("/metrics missing %q:\n%s", want, mout)
		}
	}

	var hj bytes.Buffer
	if err := m.writeHealth(&hj); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hj.String(), "client-anomaly") {
		t.Errorf("/health missing client-anomaly alert:\n%s", hj.String())
	}

	// The flag clearing on a later poll clears the health alert.
	s0.set(func(tel *obs.Telemetry) { tel.Audit.Flagged = 0; tel.Audit.Clients[1].Flags = nil })
	m.poll(2)
	aj.Reset()
	if err := m.writeAudit(&aj); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(aj.String(), `"flagged_clients":[]`) {
		t.Errorf("/audit union not cleared:\n%s", aj.String())
	}
}
