// Command spyker-mon is the cluster health monitor. It polls the
// /debug/telemetry endpoint of every live spyker-live server, feeds the
// snapshots through the online health evaluator (internal/obs/health),
// logs state transitions (healthy -> stalled -> healthy ...) with the
// alerts that caused them, and re-exports the aggregated cluster view:
//
//   - /health  — JSON: current state, active + historical alerts,
//     per-target liveness
//   - /metrics — Prometheus text exposition with per-server labels
//     (spyker_mon_up, spyker_mon_token_silence_seconds, ...)
//   - /audit   — JSON: every server's contribution-audit section (per
//     client update statistics and anomaly flags) plus the cluster-wide
//     flagged-client set; servers run with spyker-live -audit
//
// When telemetry carries an audit section, per-client update statistics
// are also re-exported on /metrics (spyker_mon_client_norm_z,
// spyker_mon_client_flagged, ...) and sustained anomalies raise the
// client-anomaly health rule.
//
// Membership is discovered, not configured: the monitor seeds from
// -targets and then follows each snapshot's address book, so servers
// hot-added to the ring (spyker-live -join) are picked up automatically
// when their debug port follows the -debug-port-offset convention
// (debug port = transport port + offset).
//
// Example against the 3-process failover demo:
//
//	spyker-mon -targets 127.0.0.1:6060,127.0.0.1:6061,127.0.0.1:6062 \
//	    -every 250ms -addr 127.0.0.1:6070
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/health"
)

func main() {
	targets := flag.String("targets", "", "comma-separated debug addresses of spyker-live servers (host:port)")
	every := flag.Duration("every", 500*time.Millisecond, "poll period")
	addr := flag.String("addr", "", "serve /health (JSON) and /metrics (Prometheus) on this address (empty = log only)")
	duration := flag.Duration("duration", 0, "how long to monitor (0 = until killed)")
	tokenTimeout := flag.Float64("token-timeout", 0, "the ring's token regeneration timeout in seconds (0 = adopt from telemetry)")
	silenceFactor := flag.Float64("silence-factor", 0, "stall threshold as a multiple of the token timeout (0 = default 2)")
	portOff := flag.Int("debug-port-offset", 0, "discover new members' debug endpoints at transport port + this offset (0 = discovery off)")
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "spyker-mon: -targets is required")
		os.Exit(1)
	}
	m := newMonitor(splitTargets(*targets), health.Config{
		TokenTimeout:  *tokenTimeout,
		SilenceFactor: *silenceFactor,
	}, *portOff, &http.Client{Timeout: 2 * time.Second}, os.Stdout)

	if *addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = m.writeHealth(w)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = m.writeMetrics(w)
		})
		mux.HandleFunc("/audit", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = m.writeAudit(w)
		})
		//spyker:detached(monitor HTTP endpoint serves for the process lifetime; the kernel reclaims the listener on exit)
		go func() {
			if err := http.ListenAndServe(*addr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "spyker-mon: serve: %v\n", err)
			}
		}()
		fmt.Printf("spyker-mon serving http://%s/health, /metrics and /audit\n", *addr)
	}

	start := time.Now()
	tick := time.NewTicker(*every)
	defer tick.Stop()
	for now := range tick.C {
		at := now.Sub(start).Seconds()
		m.poll(at)
		if *duration > 0 && now.Sub(start) >= *duration {
			break
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Printf("spyker-mon done: final state %s, %d alerts over %.1fs\n",
		m.ev.State(), len(m.ev.Alerts()), m.ev.Now())
}

func splitTargets(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// target is one debug endpoint the monitor polls. Targets are never
// forgotten: a dead server keeps its row (up=false) so /metrics can
// report it down rather than silently dropping it.
type target struct {
	addr         string // debug address (host:port of /debug/telemetry)
	up           bool
	last         *obs.Telemetry // most recent good snapshot, nil before first
	polls, fails int64
}

// monitor owns the evaluator and the target set. All methods are safe
// for concurrent use (the poll loop and the HTTP handlers share it).
type monitor struct {
	mu      sync.Mutex
	ev      *health.Evaluator  //spyker:guardedby(mu)
	targets map[string]*target //spyker:guardedby(mu)
	order   []string           //spyker:guardedby(mu) — target addresses in discovery order
	state   health.State       //spyker:guardedby(mu)
	seen    int                //spyker:guardedby(mu) — alerts already logged
	portOff int
	client  *http.Client
	logw    io.Writer
}

func newMonitor(addrs []string, cfg health.Config, portOff int, client *http.Client, logw io.Writer) *monitor {
	m := &monitor{
		ev:      health.New(cfg),
		targets: make(map[string]*target),
		portOff: portOff,
		client:  client,
		logw:    logw,
	}
	// Uncontended (the monitor is not shared yet); keeps the guarded-field
	// discipline uniform from the first write.
	m.mu.Lock()
	for _, a := range addrs {
		m.addTarget(a)
	}
	m.mu.Unlock()
	return m
}

// addTarget registers a debug address; call with mu held. Returns false
// if already known.
//
//spyker:locked(mu)
func (m *monitor) addTarget(addr string) bool {
	if _, ok := m.targets[addr]; ok {
		return false
	}
	m.targets[addr] = &target{addr: addr}
	m.order = append(m.order, addr)
	return true
}

// poll scrapes every known target once, feeds the evaluator, discovers
// new ring members from the returned address books, and logs health
// state transitions. at is the monitor's stream clock in seconds.
func (m *monitor) poll(at float64) {
	m.mu.Lock()
	addrs := append([]string(nil), m.order...)
	m.mu.Unlock()

	// Scrape outside the lock: a hung target must not block /health.
	snaps := make([]*obs.Telemetry, len(addrs))
	for i, a := range addrs {
		snaps[i] = m.scrape(a)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for i, a := range addrs {
		tg := m.targets[a]
		tg.polls++
		if snaps[i] == nil {
			tg.fails++
			tg.up = false
			continue
		}
		tg.up = true
		tg.last = snaps[i]
		m.ev.ObserveTelemetry(snaps[i], at)
		m.discover(snaps[i])
	}
	m.ev.AdvanceTo(at)
	m.logTransitions(at)
}

func (m *monitor) scrape(addr string) *obs.Telemetry {
	resp, err := m.client.Get("http://" + addr + "/debug/telemetry")
	if err != nil {
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	t, err := obs.ReadTelemetry(resp.Body)
	if err != nil {
		return nil
	}
	return t
}

// discover follows the snapshot's learned address book: every member
// with a known transport address gets a debug-endpoint guess at
// transport port + offset. This is how the monitor tracks elastic
// joins without reconfiguration. Caller holds mu.
//
//spyker:locked(mu)
func (m *monitor) discover(t *obs.Telemetry) {
	if m.portOff == 0 {
		return
	}
	for i, member := range t.Members {
		if i >= len(t.Addrs) || t.Addrs[i] == "" {
			continue
		}
		guess, ok := offsetPort(t.Addrs[i], m.portOff)
		if !ok {
			continue
		}
		if m.addTarget(guess) {
			fmt.Fprintf(m.logw, "discovered server %d at %s (via s%d's address book)\n",
				member, guess, t.Server)
		}
	}
}

func offsetPort(addr string, off int) (string, bool) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", false
	}
	p, err := strconv.Atoi(port)
	if err != nil || p+off <= 0 || p+off > 65535 {
		return "", false
	}
	return net.JoinHostPort(host, strconv.Itoa(p+off)), true
}

// logTransitions prints newly raised/cleared alerts and overall state
// changes. Caller holds mu.
//
//spyker:locked(mu)
func (m *monitor) logTransitions(at float64) {
	alerts := m.ev.Alerts()
	for ; m.seen < len(alerts); m.seen++ {
		a := alerts[m.seen]
		fmt.Fprintf(m.logw, "alert [%s] %s at %.2fs: %s\n", a.Rule, a.Severity, a.Raised, a.Detail)
	}
	st := m.ev.State()
	if st == m.state {
		return
	}
	var rules []string
	for _, a := range m.ev.ActiveAlerts() {
		rules = append(rules, string(a.Rule))
	}
	sort.Strings(rules)
	detail := ""
	if len(rules) > 0 {
		detail = " [" + strings.Join(rules, ",") + "]"
	}
	fmt.Fprintf(m.logw, "health: %s -> %s%s at %.2fs\n", m.state, st, detail, at)
	m.state = st
}

// healthReport is the /health JSON shape.
type healthReport struct {
	State   string         `json:"state"`
	Time    float64        `json:"time"`
	Alerts  []alertReport  `json:"alerts"`
	Targets []targetReport `json:"targets"`
}

type alertReport struct {
	Rule     string  `json:"rule"`
	Severity string  `json:"severity"`
	Raised   float64 `json:"raised"`
	Node     int     `json:"node"`
	Peer     int     `json:"peer,omitempty"`
	Detail   string  `json:"detail"`
	Active   bool    `json:"active"`
	Cleared  float64 `json:"cleared,omitempty"`
}

type targetReport struct {
	Addr   string `json:"addr"`
	Up     bool   `json:"up"`
	Server int    `json:"server"`
	Epoch  int    `json:"epoch"`
	Polls  int64  `json:"polls"`
	Fails  int64  `json:"fails"`
}

func (m *monitor) writeHealth(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := healthReport{
		State:  m.ev.State().String(),
		Time:   m.ev.Now(),
		Alerts: []alertReport{},
	}
	for _, a := range m.ev.Alerts() {
		rep.Alerts = append(rep.Alerts, alertReport{
			Rule: string(a.Rule), Severity: a.Severity.String(), Raised: a.Raised,
			Node: a.Node, Peer: a.Peer, Detail: a.Detail,
			Active: a.Active, Cleared: a.Cleared,
		})
	}
	for _, addr := range m.order {
		tg := m.targets[addr]
		tr := targetReport{Addr: addr, Up: tg.up, Server: -1, Polls: tg.polls, Fails: tg.fails}
		if tg.last != nil {
			tr.Server = tg.last.Server
			tr.Epoch = tg.last.Epoch
		}
		rep.Targets = append(rep.Targets, tr)
	}
	return json.NewEncoder(w).Encode(rep)
}

// auditReport is the /audit JSON shape: every target's last audit
// section plus the cluster-wide union of currently flagged clients.
type auditReport struct {
	FlaggedClients []int               `json:"flagged_clients"`
	Targets        []auditTargetReport `json:"targets"`
}

type auditTargetReport struct {
	Addr   string              `json:"addr"`
	Server int                 `json:"server"`
	Audit  *obs.TelemetryAudit `json:"audit,omitempty"`
}

func (m *monitor) writeAudit(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := auditReport{FlaggedClients: []int{}}
	flagged := map[int]bool{}
	for _, addr := range m.order {
		tg := m.targets[addr]
		if tg.last == nil {
			continue
		}
		tr := auditTargetReport{Addr: addr, Server: tg.last.Server, Audit: tg.last.Audit}
		if tr.Audit != nil {
			for i := range tr.Audit.Clients {
				c := &tr.Audit.Clients[i]
				if len(c.Flags) > 0 {
					flagged[c.Client] = true
				}
			}
		}
		rep.Targets = append(rep.Targets, tr)
	}
	for c := range flagged {
		rep.FlaggedClients = append(rep.FlaggedClients, c)
	}
	sort.Ints(rep.FlaggedClients)
	return json.NewEncoder(w).Encode(rep)
}

// writeMetrics renders the aggregated cluster view as Prometheus text,
// one labelled sample family per telemetry field.
func (m *monitor) writeMetrics(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	emit := func(name string, labels []obs.PromLabel, v float64) error {
		return obs.WritePromSample(w, name, labels, v)
	}
	if err := emit("spyker_mon_health_state", nil, float64(m.ev.State())); err != nil {
		return err
	}
	if err := emit("spyker_mon_targets", nil, float64(len(m.order))); err != nil {
		return err
	}
	active := map[string]int{}
	for _, a := range m.ev.ActiveAlerts() {
		active[string(a.Rule)]++
	}
	rules := make([]string, 0, len(active))
	for r := range active {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		if err := emit("spyker_mon_alerts_active",
			[]obs.PromLabel{{Name: "rule", Value: r}}, float64(active[r])); err != nil {
			return err
		}
	}
	for _, addr := range m.order {
		tg := m.targets[addr]
		lbl := func(extra ...obs.PromLabel) []obs.PromLabel {
			ls := []obs.PromLabel{{Name: "target", Value: addr}}
			if tg.last != nil {
				ls = append(ls, obs.PromLabel{Name: "server", Value: strconv.Itoa(tg.last.Server)})
			}
			return append(ls, extra...)
		}
		up := 0.0
		if tg.up {
			up = 1
		}
		if err := emit("spyker_mon_up", lbl(), up); err != nil {
			return err
		}
		t := tg.last
		if t == nil {
			continue
		}
		samples := []struct {
			name string
			v    float64
		}{
			{"spyker_mon_ring_epoch", float64(t.Epoch)},
			{"spyker_mon_token_silence_seconds", t.TokenSilence},
			{"spyker_mon_updates_total", float64(t.Updates)},
			{"spyker_mon_syncs_total", float64(t.SyncsTriggered)},
			{"spyker_mon_token_regens_total", float64(t.TokenRegens)},
			{"spyker_mon_failed_outboxes", float64(t.FailedOutboxes)},
			{"spyker_mon_peer_reconnects_total", float64(t.PeerReconnects)},
			{"spyker_mon_model_age", t.Age},
			{"spyker_mon_staleness_updates_total", float64(t.StalenessTotal())},
		}
		for _, s := range samples {
			if err := emit(s.name, lbl(), s.v); err != nil {
				return err
			}
		}
		for _, p := range t.Peers {
			pl := lbl(obs.PromLabel{Name: "peer", Value: strconv.Itoa(p.Peer)})
			if err := emit("spyker_mon_outbox_depth", pl, float64(p.OutboxDepth)); err != nil {
				return err
			}
		}
		if t.Audit != nil {
			if err := emit("spyker_mon_audit_flagged_clients", lbl(), float64(t.Audit.Flagged)); err != nil {
				return err
			}
			for i := range t.Audit.Clients {
				c := &t.Audit.Clients[i]
				cl := lbl(obs.PromLabel{Name: "client", Value: strconv.Itoa(c.Client)})
				clientSamples := []struct {
					name string
					v    float64
				}{
					{"spyker_mon_client_updates_total", float64(c.Updates)},
					{"spyker_mon_client_median_norm", c.MedianNorm},
					{"spyker_mon_client_norm_z", c.NormZ},
					{"spyker_mon_client_median_cos", c.MedianCos},
					{"spyker_mon_client_flagged", float64(len(c.Flags))},
				}
				for _, s := range clientSamples {
					if err := emit(s.name, cl, s.v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
