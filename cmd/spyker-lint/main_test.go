package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixture resolves a seeded-violation package under internal/lint/testdata
// to its import path; testdata is invisible to ./... wildcards, so the
// fixtures must be named explicitly.
func fixture(name string) string {
	return "github.com/spyker-fl/spyker/internal/lint/testdata/src/" + name
}

// run invokes the CLI entry point with captured streams.
func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFixturesExitNonzero is the acceptance check: every seeded fixture
// must fail the lint, attributed to the right analyzer.
func TestFixturesExitNonzero(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
	}{
		{"determinism", "determinism"},
		{"noalloc", "noalloc"},
		{"noallocescape", "noalloc"},
		{"sinkpassivity", "sinkpassivity"},
		{"sendcheck", "sendcheck"},
		{"lockdiscipline", "lockdiscipline"},
		{"goroutinelife", "goroutinelife"},
		{"paridiom", "paridiom"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			code, stdout, stderr := run(t, fixture(tc.fixture))
			if code != 1 {
				t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stdout, "["+tc.analyzer+"]") {
				t.Errorf("findings not attributed to %s:\n%s", tc.analyzer, stdout)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr missing findings summary: %q", stderr)
			}
		})
	}
}

// TestCleanTreeExitsZero runs the exact CI invocation over the real
// module and requires silence.
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module through the escape gate")
	}
	code, stdout, stderr := run(t, "github.com/spyker-fl/spyker/...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree produced output:\n%s", stdout)
	}
}

// TestOnlyFilter: an analyzer that does not apply to a fixture must keep
// it clean, and the matching analyzer alone must still flag it.
func TestOnlyFilter(t *testing.T) {
	if code, stdout, stderr := run(t, "-only", "sendcheck", fixture("determinism")); code != 0 {
		t.Errorf("-only sendcheck on determinism fixture: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout, stderr)
	}
	code, stdout, _ := run(t, "-only", "determinism", fixture("determinism"))
	if code != 1 {
		t.Fatalf("-only determinism: exit %d, want 1", code)
	}
	if strings.Contains(stdout, "[noalloc]") || strings.Contains(stdout, "[sendcheck]") {
		t.Errorf("-only determinism leaked other analyzers:\n%s", stdout)
	}

	// Same contract for the concurrency analyzers: lockdiscipline alone
	// must flag its fixture, and a non-applicable analyzer must not.
	if code, stdout, stderr := run(t, "-only", "goroutinelife", fixture("lockdiscipline")); code != 0 {
		t.Errorf("-only goroutinelife on lockdiscipline fixture: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout, stderr)
	}
	code, stdout, _ = run(t, "-only", "lockdiscipline", fixture("lockdiscipline"))
	if code != 1 {
		t.Fatalf("-only lockdiscipline: exit %d, want 1", code)
	}
	if strings.Contains(stdout, "[goroutinelife]") || strings.Contains(stdout, "[paridiom]") {
		t.Errorf("-only lockdiscipline leaked other analyzers:\n%s", stdout)
	}
}

// TestJSONOutput: -json must emit a machine-readable report whose
// findings carry positions and analyzer attribution.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := run(t, "-json", fixture("sendcheck"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var report struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			Rule     string `json:"rule"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if report.Count != len(report.Findings) || report.Count < 3 {
		t.Fatalf("count = %d with %d findings, want >= 3 dropped sends", report.Count, len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.Analyzer != "sendcheck" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
		// The rule sub-field is the stable identifier tooling keys on:
		// always "analyzer/rule", never empty or bare.
		if !strings.HasPrefix(f.Rule, "sendcheck/") {
			t.Errorf("finding rule = %q, want sendcheck/<rule>", f.Rule)
		}
	}
}

// TestJSONCleanTreeShape: a clean run must report an empty findings
// array, not null.
func TestJSONCleanTreeShape(t *testing.T) {
	code, stdout, _ := run(t, "-json", "-only", "sendcheck", fixture("determinism"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout, `"findings": []`) {
		t.Errorf("clean JSON report should carry an empty array:\n%s", stdout)
	}
}

// TestEscapeFlag: -escape=false must drop exactly the compiler-proven
// findings, so the AST-clean escape fixture passes.
func TestEscapeFlag(t *testing.T) {
	if code, stdout, stderr := run(t, "-escape=false", fixture("noallocescape")); code != 0 {
		t.Errorf("-escape=false on noallocescape: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout, stderr)
	}
}

// TestListAnalyzers enumerates the registry.
func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := run(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"determinism", "noalloc", "sinkpassivity", "sendcheck",
		"lockdiscipline", "goroutinelife", "paridiom",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, stdout)
		}
	}
}

// TestUsageErrors: unknown analyzers, flags, and patterns are usage
// errors (exit 2), distinct from findings (exit 1).
func TestUsageErrors(t *testing.T) {
	if code, _, stderr := run(t, "-only", "nope", fixture("determinism")); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2 (stderr: %s)", code, stderr)
	} else if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer: %q", stderr)
	}
	if code, _, _ := run(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, _ := run(t, "./does/not/exist"); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2", code)
	}
}
