// Command spyker-lint runs the repository's static analyzers
// (internal/lint) over the given package patterns: determinism of the
// emulation layers, allocation-freedom of //spyker:noalloc hot paths
// (AST checks plus the compiler's escape analysis), passivity of
// obs.Sink implementations, and consumed errors on transport/live send
// paths. CI runs it before the test steps; any finding fails the build.
//
// Usage:
//
//	spyker-lint ./...                     # lint the whole module
//	spyker-lint -list                     # enumerate analyzers
//	spyker-lint -only determinism ./...   # one analyzer
//	spyker-lint -json ./internal/spyker   # machine-readable findings
//	spyker-lint -escape=false ./...       # skip the compile -m gate
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/spyker-fl/spyker/internal/lint"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spyker-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "print findings as JSON instead of compiler-style lines")
		only    = fs.String("only", "", "comma-separated analyzer names to run (empty = all)")
		escape  = fs.Bool("escape", true, "run the escape-analysis gate on //spyker:noalloc packages")
		list    = fs.Bool("list", false, "list analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var selected []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				selected = append(selected, name)
			}
		}
	}

	cfg := lint.DefaultConfig()
	cfg.EscapeGate = *escape
	if wd, err := os.Getwd(); err == nil {
		cfg.RelDir = wd
	}

	diags, err := lint.Run(cfg, "", selected, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "spyker-lint:", err)
		return 2
	}

	if *jsonOut {
		report := struct {
			Findings []lint.Diagnostic `json:"findings"`
			Count    int               `json:"count"`
		}{Findings: diags, Count: len(diags)}
		if report.Findings == nil {
			report.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "spyker-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "spyker-lint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
