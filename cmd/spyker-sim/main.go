// Command spyker-sim runs a single federated-learning emulation with
// full control over the deployment and prints the accuracy trace.
//
// Example:
//
//	spyker-sim -alg spyker -task mnist -clients 100 -servers 4 -target 0.9
//	spyker-sim -alg fedasync -task wikitext -horizon 60
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

func main() {
	alg := flag.String("alg", "spyker", "algorithm: spyker|spyker-nodecay|sync-spyker|fedavg|fedasync|hierfavg")
	task := flag.String("task", "mnist", "task: mnist|cifar|wikitext")
	servers := flag.Int("servers", 4, "number of servers")
	clients := flag.Int("clients", 100, "number of clients")
	nonIID := flag.Int("noniid", 2, "labels per client (0 = IID)")
	target := flag.Float64("target", 0, "stop at this accuracy (0 = run to horizon)")
	horizon := flag.Float64("horizon", 60, "virtual-seconds budget")
	maxUpdates := flag.Int("maxupdates", 0, "stop after this many client updates (0 = unlimited)")
	seed := flag.Int64("seed", 1, "seed")
	uniform := flag.Bool("uniform-latency", false, "replace the AWS latency matrix with a uniform latency of equal average")
	csvPath := flag.String("csv", "", "write the accuracy trace to this CSV file")
	tracePath := flag.String("trace", "", "write the protocol event trace to this JSONL file (see spyker-trace)")
	chromePath := flag.String("chrome", "", "write the protocol event trace as a Chrome trace_event file (chrome://tracing, Perfetto)")
	auditOn := flag.Bool("audit", false, "arm the per-client contribution audit plane; anomaly verdicts land in the trace (analyze with spyker-trace -mode audit)")
	flag.Parse()

	if err := run(*alg, *task, *servers, *clients, *nonIID, *target, *horizon, *maxUpdates, *seed, *uniform, *auditOn, *csvPath, *tracePath, *chromePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(alg, task string, servers, clients, nonIID int, target, horizon float64,
	maxUpdates int, seed int64, uniform, auditOn bool, csvPath, tracePath, chromePath string) error {
	var t experiments.Task
	switch task {
	case "mnist":
		t = experiments.TaskMNIST
	case "cifar":
		t = experiments.TaskCIFAR
	case "wikitext":
		t = experiments.TaskWiki
	default:
		return fmt.Errorf("unknown task %q", task)
	}
	setup := experiments.Setup{
		Task:         t,
		NumServers:   servers,
		NumClients:   clients,
		NonIIDLabels: nonIID,
		Seed:         seed,
		TargetAcc:    target,
		Horizon:      horizon,
		MaxUpdates:   maxUpdates,
	}
	if uniform {
		setup.Latency = experiments.UniformMeanLatency()
	}
	var tracer *obs.Tracer
	if tracePath != "" || chromePath != "" {
		tracer = obs.NewTracer(0)
		setup.Trace = tracer
	}
	if auditOn {
		setup.Audit = &audit.Config{}
	}
	res, err := experiments.Run(alg, setup)
	if err != nil {
		return err
	}

	perplexity := t == experiments.TaskWiki
	metric := "acc"
	if perplexity {
		metric = "ppl"
	}
	fmt.Printf("%s on %s: %d servers, %d clients\n", res.Algorithm, task, servers, clients)
	fmt.Printf("%10s %9s %10s\n", "time(s)", "updates", metric)
	for _, p := range res.Trace {
		if perplexity {
			fmt.Printf("%10.2f %9d %10.3f\n", p.Time, p.Updates, p.Perplexity())
		} else {
			fmt.Printf("%10.2f %9d %9.1f%%\n", p.Time, p.Updates, 100*p.Acc)
		}
	}
	fmt.Printf("\nupdates=%d  virtual-time=%.2fs\n", res.Updates, res.FinalTime)
	if res.ReachedTarget {
		fmt.Printf("target %.0f%% reached at %.2fs\n", 100*target, res.TimeToTarget)
	}
	fmt.Printf("traffic: %.2f MB client-server, %.2f MB server-server\n",
		float64(res.BytesClientServer)/1e6, float64(res.BytesServerServer)/1e6)
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteTraceCSV(f, res.Trace); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", csvPath)
	}
	if tracer != nil {
		if dropped := tracer.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "warning: event trace ring overflowed, oldest %d events dropped\n", dropped)
		}
		if tracePath != "" {
			if err := writeEventFile(tracePath, tracer.WriteJSONL); err != nil {
				return err
			}
			fmt.Printf("event trace (%d events) written to %s\n", tracer.Len(), tracePath)
		}
		if chromePath != "" {
			events := tracer.Events()
			if err := writeEventFile(chromePath, func(w io.Writer) error {
				return obs.WriteChromeTrace(w, events)
			}); err != nil {
				return err
			}
			fmt.Printf("chrome trace written to %s (load in chrome://tracing or Perfetto)\n", chromePath)
		}
	}
	return nil
}

// writeEventFile creates path and streams the trace into it via write.
func writeEventFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
