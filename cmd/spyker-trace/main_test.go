package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const validTrace = `{"t":1,"kind":"client-update","node":0,"peer":7,"uid":8000000001,"front":[1,0]}
{"t":2,"kind":"server-agg","node":1,"peer":0,"bid":1,"front":[1,0]}
`

func TestRunRejectsMalformedTrace(t *testing.T) {
	// Garbage anywhere in the file must fail the whole invocation — no
	// silent summary of the readable prefix.
	for _, content := range []string{
		"not json\n",
		validTrace + "garbage tail\n",
		validTrace + "{}\n", // valid JSON but not an event
	} {
		p := writeTemp(t, content)
		if err := run([]string{p}, "summary", 5, 0, ""); err == nil {
			t.Errorf("malformed trace %q must error", content)
		}
	}
}

func TestRunRejectsEmptyTrace(t *testing.T) {
	p := writeTemp(t, "")
	if err := run([]string{p}, "summary", 5, 0, ""); err == nil {
		t.Error("empty trace must error")
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	p := writeTemp(t, validTrace)
	if err := run([]string{p}, "nonsense", 5, 0, ""); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestRunModes(t *testing.T) {
	p := writeTemp(t, validTrace)
	for _, mode := range []string{"summary", "provenance", "critpath", "health"} {
		if err := run([]string{p}, mode, 5, 0, ""); err != nil {
			t.Errorf("mode %s failed on a valid trace: %v", mode, err)
		}
	}
}

func TestRunChromeExport(t *testing.T) {
	p := writeTemp(t, validTrace)
	out := filepath.Join(t.TempDir(), "chrome.json")
	if err := run([]string{p}, "summary", 5, 0, out); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("chrome export missing or empty: %v", err)
	}
}

// writeEvents marshals a per-process trace to a JSONL file, the same
// format spyker-live -trace writes.
func writeEvents(t *testing.T, name string, events []obs.Event) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(f, "%s\n", b)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return p
}

// skewedRing fabricates two single-process traces of a 2-server token
// ring whose clocks are skewed, exactly what two spyker-live -role
// server processes produce.
func skewedRing(t *testing.T, skew1 float64) (string, string) {
	t.Helper()
	const delay = 0.05
	var tr [2][]obs.Event
	clock := func(id int, at float64) float64 {
		if id == 1 {
			return at + skew1
		}
		return at
	}
	at := 1.0
	for round := 0; round < 6; round++ {
		from := round % 2
		to := 1 - from
		tr[from] = append(tr[from],
			obs.Event{Time: clock(from, at), Kind: obs.KindTokenPass, Node: from, Peer: to, Bid: 1},
			obs.Event{Time: clock(from, at), Kind: obs.KindMsgSend,
				Node: obs.ServerNode + from, Peer: obs.ServerNode + to, Bytes: 64, Note: "token"},
		)
		tr[to] = append(tr[to],
			obs.Event{Time: clock(to, at+delay), Kind: obs.KindMsgRecv,
				Node: obs.ServerNode + to, Peer: obs.ServerNode + from, Bytes: 64, Note: "token"},
		)
		at += 1.0
	}
	return writeEvents(t, "s0.jsonl", tr[0]), writeEvents(t, "s1.jsonl", tr[1])
}

// TestRunMergedTraces: two skewed per-process traces must merge into
// one causally ordered timeline that every analysis mode accepts — the
// multi-process counterpart of the single-file modes above.
func TestRunMergedTraces(t *testing.T) {
	p0, p1 := skewedRing(t, 7.5)
	for _, mode := range []string{"summary", "health"} {
		if err := run([]string{p0, p1}, mode, 5, 0, ""); err != nil {
			t.Errorf("mode %s failed on merged traces: %v", mode, err)
		}
	}
	// Order must not matter: the reference clock is just input 0.
	if err := run([]string{p1, p0}, "summary", 5, 0, ""); err != nil {
		t.Errorf("reversed merge failed: %v", err)
	}
}

// TestRunMergeRejects: merging traces that share an emitter (the same
// file twice) must fail loudly, not double-count.
func TestRunMergeRejects(t *testing.T) {
	p0, _ := skewedRing(t, 0)
	if err := run([]string{p0, p0}, "summary", 5, 0, ""); err == nil {
		t.Error("duplicate-emitter merge must error")
	}
}

// TestRunAuditMode: -mode audit replays KindAudit verdicts from a trace
// into the offline forensics report, and stays quiet (but valid) on a
// trace with no audit events.
func TestRunAuditMode(t *testing.T) {
	events := []obs.Event{
		{Time: 1, Kind: obs.KindClientUpdate, Node: 0, Peer: 7, UID: obs.UpdateUID(7, 1)},
		{Time: 2.5, Kind: obs.KindAudit, Node: 0, Peer: 7, Note: "norm-outlier", Score: 8.1},
		{Time: 3.0, Kind: obs.KindAudit, Node: 0, Peer: 7, Note: "clear:norm-outlier"},
		{Time: 3.5, Kind: obs.KindAudit, Node: 1, Peer: 12, Note: "collusion", Score: 0.9999},
	}
	p := writeEvents(t, "audit.jsonl", events)
	if err := run([]string{p}, "audit", 5, 0, ""); err != nil {
		t.Fatalf("audit mode failed on a valid trace: %v", err)
	}
	// A trace without verdicts is a healthy cluster, not an error.
	if err := run([]string{writeTemp(t, validTrace)}, "audit", 5, 0, ""); err != nil {
		t.Fatalf("audit mode failed on a verdict-free trace: %v", err)
	}
}
