package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const validTrace = `{"t":1,"kind":"client-update","node":0,"peer":7,"uid":8000000001,"front":[1,0]}
{"t":2,"kind":"server-agg","node":1,"peer":0,"bid":1,"front":[1,0]}
`

func TestRunRejectsMalformedTrace(t *testing.T) {
	// Garbage anywhere in the file must fail the whole invocation — no
	// silent summary of the readable prefix.
	for _, content := range []string{
		"not json\n",
		validTrace + "garbage tail\n",
		validTrace + "{}\n", // valid JSON but not an event
	} {
		p := writeTemp(t, content)
		if err := run([]string{p}, "summary", 5, ""); err == nil {
			t.Errorf("malformed trace %q must error", content)
		}
	}
}

func TestRunRejectsEmptyTrace(t *testing.T) {
	p := writeTemp(t, "")
	if err := run([]string{p}, "summary", 5, ""); err == nil {
		t.Error("empty trace must error")
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	p := writeTemp(t, validTrace)
	if err := run([]string{p}, "nonsense", 5, ""); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestRunModes(t *testing.T) {
	p := writeTemp(t, validTrace)
	for _, mode := range []string{"summary", "provenance", "critpath"} {
		if err := run([]string{p}, mode, 5, ""); err != nil {
			t.Errorf("mode %s failed on a valid trace: %v", mode, err)
		}
	}
}

func TestRunChromeExport(t *testing.T) {
	p := writeTemp(t, validTrace)
	out := filepath.Join(t.TempDir(), "chrome.json")
	if err := run([]string{p}, "summary", 5, out); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("chrome export missing or empty: %v", err)
	}
}
