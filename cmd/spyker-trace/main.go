// Command spyker-trace analyzes a protocol event trace written by
// spyker-sim -trace or spyker-live -trace. Its default mode summarizes the
// trace: per-kind event counts, the staleness histogram of aggregated
// client updates, per-server model-age timelines, token ring round-trip
// times, and traffic totals. Two provenance modes reconstruct the causal
// lineage of every client update from the merged-updates frontier the
// servers stamp on their events:
//
//   - -mode provenance reports, per client update, the origin server,
//     every server its contribution reached, the broadcast hop and sync
//     round it arrived through, and the end-to-end propagation latency
//     distribution across all updates.
//   - -mode critpath ranks the slowest fully-propagated update journeys
//     and breaks each down hop by hop, plus a hop-pair frequency table —
//     the protocol's critical paths.
//
// It can also convert the JSONL trace into a Chrome trace_event file for
// chrome://tracing or Perfetto; update journeys become flow arrows linking
// the origin merge to every server it reached.
//
// The -mode health analysis replays the trace through the deterministic
// health evaluator (internal/obs/health) and reports the state timeline
// and every alert it would have raised online: token-circulation stalls,
// membership-epoch divergence, staleness blow-ups, sync flat-lines,
// sustained client anomalies.
//
// The -mode audit analysis reconstructs the contribution audit plane's
// per-client verdicts (internal/obs/audit) from the trace's KindAudit
// events: which clients were flagged, by which rules and servers, when
// they were first and last flagged, and which flags were still active
// at the end of the trace. The trace must come from a run with auditing
// armed (spyker-sim/spyker-live -audit).
//
// Multiple trace files merge into one timeline: each per-process JSONL
// stream (spyker-live -role server -trace) keeps its own clock, so the
// merge estimates pairwise clock offsets from matched token send/recv
// spans and aligns the streams before analysis.
//
// Example:
//
//	spyker-sim -alg spyker -horizon 20 -trace run.jsonl
//	spyker-trace run.jsonl
//	spyker-trace -mode provenance run.jsonl
//	spyker-trace -mode critpath -top 5 run.jsonl
//	spyker-trace -mode health run.jsonl
//	spyker-trace -mode audit run.jsonl
//	spyker-trace -chrome run.json run.jsonl
//	spyker-trace s0.jsonl s1.jsonl s2.jsonl   # merged multi-process timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/obs/health"
)

func main() {
	chromePath := flag.String("chrome", "", "also convert the trace to a Chrome trace_event file at this path")
	mode := flag.String("mode", "summary", "analysis mode: summary, provenance, critpath, health, or audit")
	top := flag.Int("top", 10, "number of journeys/paths to show in provenance and critpath modes")
	tokenTimeout := flag.Float64("token-timeout", 0, "the run's token regeneration timeout for health mode (0 = calibrate from the trace)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spyker-trace [-mode summary|provenance|critpath|health|audit] [-top n] [-chrome out.json] <trace.jsonl>...\n")
		fmt.Fprintf(os.Stderr, "       spyker-trace reads stdin when no file is given; several files are clock-aligned and merged\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := run(flag.Args(), *mode, *top, *tokenTimeout, *chromePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// load reads one trace per path (stdin when none) and clock-aligns
// multi-process traces into a single merged timeline.
func load(paths []string) ([]obs.Event, error) {
	if len(paths) == 0 {
		events, err := obs.ReadJSONL(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("spyker-trace: read stdin: %w", err)
		}
		return events, nil
	}
	traces := make([][]obs.Event, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		traces[i], err = obs.ReadJSONL(f)
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("spyker-trace: read %s: %w", p, err)
		}
	}
	if len(traces) == 1 {
		return traces[0], nil
	}
	m, err := obs.MergeTraces(traces)
	if err != nil {
		return nil, fmt.Errorf("spyker-trace: merge: %w", err)
	}
	fmt.Printf("merged %d traces into one timeline (%d events):\n", len(paths), len(m.Events))
	for i, p := range paths {
		fmt.Printf("  %s: server s%d, clock offset %+.4fs (%d matched spans)\n",
			p, m.Sources[i], m.Offsets[i], m.Matched[i])
	}
	fmt.Println()
	return m.Events, nil
}

func run(paths []string, mode string, top int, tokenTimeout float64, chromePath string) error {
	events, err := load(paths)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("spyker-trace: no events to analyze")
	}

	switch mode {
	case "summary":
		obs.Summarize(events).WriteText(os.Stdout)
	case "provenance":
		obs.BuildLineage(events).WriteProvenance(os.Stdout, top)
	case "critpath":
		obs.BuildLineage(events).WriteCritPath(os.Stdout, top)
	case "health":
		ev := health.Run(events, health.Config{TokenTimeout: tokenTimeout})
		if err := ev.WriteReport(os.Stdout); err != nil {
			return err
		}
	case "audit":
		if err := audit.Replay(events).WriteReport(os.Stdout); err != nil {
			return err
		}
	default:
		return fmt.Errorf("spyker-trace: unknown mode %q (want summary, provenance, critpath, health, or audit)", mode)
	}

	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, events); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nchrome trace written to %s (load in chrome://tracing or Perfetto)\n", chromePath)
	}
	return nil
}
