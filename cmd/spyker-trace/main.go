// Command spyker-trace analyzes a protocol event trace written by
// spyker-sim -trace or spyker-live -trace. Its default mode summarizes the
// trace: per-kind event counts, the staleness histogram of aggregated
// client updates, per-server model-age timelines, token ring round-trip
// times, and traffic totals. Two provenance modes reconstruct the causal
// lineage of every client update from the merged-updates frontier the
// servers stamp on their events:
//
//   - -mode provenance reports, per client update, the origin server,
//     every server its contribution reached, the broadcast hop and sync
//     round it arrived through, and the end-to-end propagation latency
//     distribution across all updates.
//   - -mode critpath ranks the slowest fully-propagated update journeys
//     and breaks each down hop by hop, plus a hop-pair frequency table —
//     the protocol's critical paths.
//
// It can also convert the JSONL trace into a Chrome trace_event file for
// chrome://tracing or Perfetto; update journeys become flow arrows linking
// the origin merge to every server it reached.
//
// Example:
//
//	spyker-sim -alg spyker -horizon 20 -trace run.jsonl
//	spyker-trace run.jsonl
//	spyker-trace -mode provenance run.jsonl
//	spyker-trace -mode critpath -top 5 run.jsonl
//	spyker-trace -chrome run.json run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/spyker-fl/spyker/internal/obs"
)

func main() {
	chromePath := flag.String("chrome", "", "also convert the trace to a Chrome trace_event file at this path")
	mode := flag.String("mode", "summary", "analysis mode: summary, provenance, or critpath")
	top := flag.Int("top", 10, "number of journeys/paths to show in provenance and critpath modes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spyker-trace [-mode summary|provenance|critpath] [-top n] [-chrome out.json] <trace.jsonl>\n")
		fmt.Fprintf(os.Stderr, "       spyker-trace reads stdin when no file is given\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := run(flag.Args(), *mode, *top, *chromePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(paths []string, mode string, top int, chromePath string) error {
	var in io.Reader = os.Stdin
	name := "stdin"
	switch len(paths) {
	case 0:
	case 1:
		f, err := os.Open(paths[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = paths[0]
	default:
		return fmt.Errorf("spyker-trace: expected one trace file, got %d", len(paths))
	}

	events, err := obs.ReadJSONL(in)
	if err != nil {
		return fmt.Errorf("spyker-trace: read %s: %w", name, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("spyker-trace: %s holds no events", name)
	}

	switch mode {
	case "summary":
		obs.Summarize(events).WriteText(os.Stdout)
	case "provenance":
		obs.BuildLineage(events).WriteProvenance(os.Stdout, top)
	case "critpath":
		obs.BuildLineage(events).WriteCritPath(os.Stdout, top)
	default:
		return fmt.Errorf("spyker-trace: unknown mode %q (want summary, provenance, or critpath)", mode)
	}

	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, events); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nchrome trace written to %s (load in chrome://tracing or Perfetto)\n", chromePath)
	}
	return nil
}
