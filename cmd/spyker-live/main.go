// Command spyker-live runs Spyker over real TCP on this machine.
//
// The default role ("cluster") hosts n servers on ephemeral localhost
// ports and m clients training a real CNN in one process, exchanging
// models with the exact protocol messages of the paper (client updates,
// model replies, server broadcasts, age announcements, token).
//
// The "server" and "clients" roles split the same deployment across real
// OS processes, which is what makes process-level failure injection
// possible: kill -9 a server, then relaunch it with -resume to restore
// from its checkpoint file while token-loss recovery (-token-timeout,
// -sync-retry) keeps the surviving ring synchronizing.
//
// Example:
//
//	spyker-live -servers 4 -clients 16 -duration 5s
//	spyker-live -servers 2 -clients 8 -stats-every 1s -trace run.jsonl
//	spyker-live -debug-addr 127.0.0.1:6060   # expvar + Prometheus text + pprof
//
//	# one real process per server, plus one process for all clients:
//	spyker-live -role server -id 0 -addr 127.0.0.1:7070 \
//	    -peers 127.0.0.1:7070,127.0.0.1:7071 -token \
//	    -clients 8 -checkpoint s0.gob -checkpoint-every 300ms \
//	    -token-timeout 2 -sync-retry 1
//	spyker-live -role clients -peers 127.0.0.1:7070,127.0.0.1:7071 -clients 8
//	# after killing server 0:
//	spyker-live -role server -id 0 -addr 127.0.0.1:7070 \
//	    -peers 127.0.0.1:7070,127.0.0.1:7071 -clients 8 \
//	    -checkpoint s0.gob -resume -token-timeout 2 -sync-retry 1
//	# hot-add a third server to the running ring (the sponsor assigns
//	# its ID and ships model + membership in the join reply):
//	spyker-live -role server -join 127.0.0.1:7070 -token-timeout 2 -sync-retry 1
package main

import (
	"expvar"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/nn"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

func main() {
	role := flag.String("role", "cluster", "cluster | server | clients (see package comment)")
	servers := flag.Int("servers", 2, "number of TCP servers (cluster role)")
	clients := flag.Int("clients", 8, "number of clients in the whole deployment")
	duration := flag.Duration("duration", 3*time.Second, "wall-clock training duration (0 in server/clients role = run until killed)")
	seed := flag.Int64("seed", 1, "seed")
	peerLatency := flag.Duration("peer-latency", 0, "injected one-way latency on server-server links")
	clientLatency := flag.Duration("client-latency", 0, "injected one-way latency on client links")
	statsEvery := flag.Duration("stats-every", 0, "log a one-line per-server stats snapshot at this period (0 = off)")
	tracePath := flag.String("trace", "", "write the protocol event trace to this JSONL file (see spyker-trace)")
	auditOn := flag.Bool("audit", false, "arm the per-client contribution audit plane: anomaly verdicts go to the trace and /debug/telemetry (cluster and server roles)")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars), pprof (/debug/pprof), Prometheus text (/debug/metrics) and — in server role — the telemetry snapshot (/debug/telemetry) on this address")

	// Multi-process roles.
	id := flag.Int("id", 0, "this server's ID (server role)")
	addr := flag.String("addr", "", "listen address (server role); must match the -peers entry for -id")
	peerList := flag.String("peers", "", "comma-separated server addresses indexed by server ID (server/clients roles)")
	token := flag.Bool("token", false, "this server holds the initial token (server role)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file path (server role)")
	ckptEvery := flag.Duration("checkpoint-every", 500*time.Millisecond, "periodic checkpoint interval (server role)")
	resume := flag.Bool("resume", false, "restore protocol state from -checkpoint instead of starting fresh (server role)")
	tokenTimeout := flag.Float64("token-timeout", 0, "seconds of ring silence before regenerating the token (0 = recovery off)")
	syncRetry := flag.Float64("sync-retry", 0, "seconds before re-broadcasting a stuck synchronization round (0 = off)")
	reconnectEvery := flag.Duration("reconnect-every", 500*time.Millisecond, "peer redial period (server role)")
	join := flag.String("join", "", "join a running ring through the server at this address (server role); the sponsor assigns the ID")
	flag.Parse()

	var err error
	switch *role {
	case "cluster":
		err = run(*servers, *clients, *duration, *seed, *peerLatency, *clientLatency,
			*statsEvery, *tracePath, *debugAddr, *tokenTimeout, *syncRetry, *auditOn)
	case "server":
		err = runServer(serverOpts{
			id: *id, addr: *addr, peers: splitPeers(*peerList), clients: *clients,
			seed: *seed, token: *token, ckptPath: *ckptPath, ckptEvery: *ckptEvery,
			resume: *resume, tokenTimeout: *tokenTimeout, syncRetry: *syncRetry,
			reconnectEvery: *reconnectEvery, statsEvery: *statsEvery, duration: *duration,
			join: *join, debugAddr: *debugAddr, tracePath: *tracePath, audit: *auditOn,
		})
	case "clients":
		err = runClients(splitPeers(*peerList), *clients, *seed, *duration)
	default:
		err = fmt.Errorf("unknown -role %q (cluster | server | clients)", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// deployment derives the shared, deterministic pieces every process of a
// multi-process run must agree on: the dataset, the model factory, the
// client shards, and the hyper parameters. All of it is a pure function
// of (clients, servers, seed), so separate OS processes started with the
// same flags build bit-identical initial models.
func deployment(clients, servers int, seed int64, tokenTimeout, syncRetry float64) (fl.ModelFactory, [][]int, *data.Images, fl.Hyper) {
	ds := data.GenerateImages(data.MNISTLike(10*clients, 300, seed))
	factory := func(s int64) fl.Model {
		rng := rand.New(rand.NewSource(s))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 6, 3, rng)
		pool := nn.NewMaxPool2D(6, 10, 10)
		net := nn.NewNetwork(
			conv, nn.NewReLU(conv.OutSize()), pool,
			nn.NewDense(pool.OutSize(), 32, rng), nn.NewReLU(32),
			nn.NewDense(32, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, s)
	}
	hyper := fl.DefaultHyper(clients, servers)
	hyper.HInter = 5
	hyper.HIntra = 100
	hyper.TokenTimeout = tokenTimeout
	hyper.SyncRetry = syncRetry
	return factory, data.PartitionByLabel(ds, clients, 2, seed), ds, hyper
}

type serverOpts struct {
	id             int
	addr           string
	peers          []string
	clients        int
	seed           int64
	token          bool
	ckptPath       string
	ckptEvery      time.Duration
	resume         bool
	tokenTimeout   float64
	syncRetry      float64
	reconnectEvery time.Duration
	statsEvery     time.Duration
	duration       time.Duration
	join           string
	debugAddr      string
	tracePath      string
	audit          bool
}

// runServer hosts exactly one live server in this process — the unit a
// failure-injection harness kills and restarts.
func runServer(o serverOpts) error {
	n := len(o.peers)
	if o.join == "" && (n < 1 || o.id < 0 || o.id >= n) {
		return fmt.Errorf("server role needs -peers with the -id'th entry (got %d peers, id %d)", n, o.id)
	}
	if o.addr == "" {
		if o.join != "" {
			o.addr = "127.0.0.1:0" // the sponsor learns our address from the handshake
		} else {
			o.addr = o.peers[o.id]
		}
	}

	var srv *live.Server
	if o.join != "" {
		// Hot-add: ask the sponsor for admission; identity, model, and
		// membership all arrive in the join reply.
		var err error
		srv, err = live.JoinCluster(o.join, o.addr)
		if err != nil {
			return err
		}
		fmt.Printf("server %d joined the ring via %s (membership %v)\n",
			srv.ID, o.join, srv.Membership())
	} else if o.resume {
		if o.ckptPath == "" {
			return fmt.Errorf("-resume needs -checkpoint")
		}
		f, err := os.Open(o.ckptPath)
		if err != nil {
			return err
		}
		st, err := live.ReadCheckpoint(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		srv, err = live.NewServerFromCheckpoint(o.addr, st)
		if err != nil {
			return err
		}
		fmt.Printf("server %d resumed from %s (age %.1f, syncs %d)\n",
			srv.ID, o.ckptPath, st.Age, st.SyncsTriggered)
	} else {
		factory, _, _, hyper := deployment(o.clients, n, o.seed, o.tokenTimeout, o.syncRetry)
		perServer := o.clients / n
		clientsHere := perServer
		if o.id == n-1 {
			clientsHere = o.clients - perServer*(n-1)
		}
		cfg := live.ServerConfig(o.id, n, clientsHere, hyper)
		var err error
		srv, err = live.NewServer(o.id, o.addr, cfg, factory(o.seed).Params(), o.token)
		if err != nil {
			return err
		}
	}
	defer srv.Close()

	// Observability: the metrics registry and the derived-metrics sink
	// always run in server role (they feed the telemetry endpoint); the
	// ring-buffer tracer rides along when -trace or -debug-addr asks for
	// it. Instrument before peers or clients connect.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	sink := obs.Sink(obs.NewMetricsSink(reg))
	if o.tracePath != "" || o.debugAddr != "" {
		tracer = obs.NewTracer(1 << 18)
		sink = obs.Multi(tracer, sink)
	}
	srv.Instrument(sink, reg)
	if o.audit {
		srv.ArmAudit(audit.Config{})
	}
	if o.debugAddr != "" {
		srv.SetDebugAddr(o.debugAddr)
		serveServerDebug(o.debugAddr, srv, reg, tracer)
	}

	if o.tokenTimeout > 0 || o.syncRetry > 0 {
		shortest := o.tokenTimeout
		if o.syncRetry > 0 && (shortest == 0 || o.syncRetry < shortest) {
			shortest = o.syncRetry
		}
		srv.StartTokenTicker(time.Duration(shortest / 4 * float64(time.Second)))
	}
	srv.StartPeerReconnect(o.reconnectEvery, func(peer int) string {
		if peer >= 0 && peer < len(o.peers) {
			return o.peers[peer]
		}
		return "" // joined peers: fall back to the learned address book
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if o.ckptPath != "" && o.ckptEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(o.ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := srv.CheckpointToFile(o.ckptPath); err != nil {
						fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
					}
				}
			}
		}()
	}
	fmt.Printf("server %d listening on %s\n", srv.ID, srv.Addr())

	if o.duration > 0 {
		if o.statsEvery > 0 {
			for elapsed := time.Duration(0); elapsed < o.duration; elapsed += o.statsEvery {
				time.Sleep(o.statsEvery)
				fmt.Fprintln(os.Stderr, srv.StatsLine())
			}
		} else {
			time.Sleep(o.duration)
		}
	} else {
		select {} // run until killed — the failure-injection mode
	}
	close(stop)
	wg.Wait()
	fmt.Println(srv.StatsLine())
	if o.tracePath != "" && tracer != nil {
		if err := writeTraceFile(o.tracePath, tracer); err != nil {
			return err
		}
	}
	return nil
}

// serveServerDebug starts the server-role debug endpoint: expvar
// (/debug/vars), pprof (/debug/pprof), the Prometheus text exposition
// (/debug/metrics), the health-plane telemetry snapshot
// (/debug/telemetry, consumed by spyker-mon), and — when tracing — the
// live event buffer as JSONL (/debug/trace, mergeable across processes
// with spyker-trace).
func serveServerDebug(addr string, srv *live.Server, reg *obs.Registry, tracer *obs.Tracer) {
	expvar.Publish("spyker", expvar.Func(func() any { return reg.Snapshot() }))
	http.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteTelemetry(w, srv.Telemetry()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	http.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		srv.Telemetry() // refresh the health gauges before rendering
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if tracer != nil {
		http.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/jsonl")
			_ = tracer.WriteJSONL(w)
		})
	}
	//spyker:detached(debug HTTP endpoint serves for the process lifetime; the kernel reclaims the listener on exit)
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
		}
	}()
	fmt.Printf("debug endpoint: http://%s/debug/telemetry, /debug/metrics, /debug/vars, /debug/pprof\n", addr)
}

func writeTraceFile(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// runClients runs the whole deployment's client population in this
// process, each on a redialing loop so server restarts are survived.
func runClients(peers []string, clients int, seed int64, duration time.Duration) error {
	n := len(peers)
	if n < 1 || clients < n {
		return fmt.Errorf("clients role needs -peers and -clients >= len(peers)")
	}
	factory, shards, _, hyper := deployment(clients, n, seed, 0, 0)
	perServer := clients / n

	stop := make(chan struct{})
	var wg sync.WaitGroup
	cs := make([]*live.Client, clients)
	for ci := 0; ci < clients; ci++ {
		home := ci / perServer
		if home >= n {
			home = n - 1
		}
		c := &live.Client{
			ID:     ci,
			Model:  factory(seed + int64(1000+ci)),
			Shard:  shards[ci],
			Epochs: hyper.LocalEpochs,
		}
		cs[ci] = c
		addr := peers[home]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.RunLoop(func() string { return addr }, 200*time.Millisecond, stop)
		}()
	}
	if duration > 0 {
		time.Sleep(duration)
		close(stop)
	}
	wg.Wait()
	total := 0
	for _, c := range cs {
		total += c.Updates()
	}
	fmt.Printf("clients done: %d local trainings across %d clients\n", total, clients)
	return nil
}

func run(servers, clients int, duration time.Duration, seed int64, peerLat, clientLat time.Duration,
	statsEvery time.Duration, tracePath, debugAddr string, tokenTimeout, syncRetry float64, auditOn bool) error {
	factory, shards, _, hyper := deployment(clients, servers, seed, tokenTimeout, syncRetry)

	// Observability: a metrics registry always runs (it backs /debug/vars);
	// the event tracer only when a trace file is requested.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	var sink obs.Sink
	if tracePath != "" {
		tracer = obs.NewTracer(0)
		sink = tracer
	}
	var auditCfg *audit.Config
	if auditOn {
		auditCfg = &audit.Config{}
	}
	if debugAddr != "" {
		expvar.Publish("spyker", expvar.Func(func() any { return reg.Snapshot() }))
		// Prometheus-style plaintext exposition of the same registry, for
		// scrapers that speak the text format rather than expvar JSON.
		http.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		//spyker:detached(debug HTTP endpoint serves for the process lifetime; the kernel reclaims the listener on exit)
		go func() {
			// DefaultServeMux already carries /debug/pprof (via the pprof
			// import) and /debug/vars (via expvar).
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoint: http://%s/debug/vars, /debug/metrics and /debug/pprof\n", debugAddr)
	}

	fmt.Printf("spyker-live: %d TCP servers, %d clients, %s\n", servers, clients, duration)
	stats, err := live.RunCluster(live.ClusterConfig{
		NumServers:    servers,
		NumClients:    clients,
		Hyper:         hyper,
		NewModel:      factory,
		Shards:        shards,
		Seed:          seed,
		PeerLatency:   peerLat,
		ClientLatency: clientLat,
		Trace:         sink,
		Metrics:       reg,
		Audit:         auditCfg,
		StatsEvery:    statsEvery,
		StatsOut:      os.Stderr,
	}, duration)
	if err != nil {
		return err
	}

	fmt.Printf("total client updates aggregated: %d\n", stats.TotalUpdates())
	for i, u := range stats.UpdatesPerServer {
		fmt.Printf("  server %d: %6d updates, final age %.1f\n", i, u, stats.FinalAges[i])
	}
	fmt.Printf("token synchronizations triggered: %d\n", stats.SyncsTriggered)
	fmt.Printf("final server-model spread (max pairwise L2): %.4f\n", stats.ModelSpread)

	// Evaluate the average of the final server models on the held-out set.
	avg := make([]float64, len(stats.FinalParams[0]))
	for _, p := range stats.FinalParams {
		for i, v := range p {
			avg[i] += v / float64(len(stats.FinalParams))
		}
	}
	eval := factory(seed)
	eval.SetParams(avg)
	loss, acc := eval.Evaluate()
	fmt.Printf("global model after %s of real training: loss %.4f, accuracy %.1f%%\n",
		duration, loss, 100*acc)

	fmt.Printf("runtime metrics: %s\n", reg.StatsLine())
	if tracer != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("event trace (%d events) written to %s\n", tracer.Len(), tracePath)
	}
	return nil
}
