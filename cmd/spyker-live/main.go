// Command spyker-live runs Spyker over real TCP on this machine: n server
// processes (goroutines) on ephemeral localhost ports and m clients
// training a real CNN, exchanging models with the exact protocol messages
// of the paper (client updates, model replies, server broadcasts, age
// announcements, token).
//
// Example:
//
//	spyker-live -servers 4 -clients 16 -duration 5s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/nn"
)

func main() {
	servers := flag.Int("servers", 2, "number of TCP servers")
	clients := flag.Int("clients", 8, "number of clients")
	duration := flag.Duration("duration", 3*time.Second, "wall-clock training duration")
	seed := flag.Int64("seed", 1, "seed")
	peerLatency := flag.Duration("peer-latency", 0, "injected one-way latency on server-server links")
	clientLatency := flag.Duration("client-latency", 0, "injected one-way latency on client links")
	flag.Parse()

	if err := run(*servers, *clients, *duration, *seed, *peerLatency, *clientLatency); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(servers, clients int, duration time.Duration, seed int64, peerLat, clientLat time.Duration) error {
	ds := data.GenerateImages(data.MNISTLike(10*clients, 300, seed))
	factory := func(s int64) fl.Model {
		rng := rand.New(rand.NewSource(s))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 6, 3, rng)
		pool := nn.NewMaxPool2D(6, 10, 10)
		net := nn.NewNetwork(
			conv, nn.NewReLU(conv.OutSize()), pool,
			nn.NewDense(pool.OutSize(), 32, rng), nn.NewReLU(32),
			nn.NewDense(32, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, s)
	}

	hyper := fl.DefaultHyper(clients, servers)
	hyper.HInter = 5
	hyper.HIntra = 100

	fmt.Printf("spyker-live: %d TCP servers, %d clients, %s\n", servers, clients, duration)
	stats, err := live.RunCluster(live.ClusterConfig{
		NumServers:    servers,
		NumClients:    clients,
		Hyper:         hyper,
		NewModel:      factory,
		Shards:        data.PartitionByLabel(ds, clients, 2, seed),
		Seed:          seed,
		PeerLatency:   peerLat,
		ClientLatency: clientLat,
	}, duration)
	if err != nil {
		return err
	}

	fmt.Printf("total client updates aggregated: %d\n", stats.TotalUpdates())
	for i, u := range stats.UpdatesPerServer {
		fmt.Printf("  server %d: %6d updates, final age %.1f\n", i, u, stats.FinalAges[i])
	}
	fmt.Printf("token synchronizations triggered: %d\n", stats.SyncsTriggered)
	fmt.Printf("final server-model spread (max pairwise L2): %.4f\n", stats.ModelSpread)

	// Evaluate the average of the final server models on the held-out set.
	avg := make([]float64, len(stats.FinalParams[0]))
	for _, p := range stats.FinalParams {
		for i, v := range p {
			avg[i] += v / float64(len(stats.FinalParams))
		}
	}
	eval := factory(seed)
	eval.SetParams(avg)
	loss, acc := eval.Evaluate()
	fmt.Printf("global model after %s of real training: loss %.4f, accuracy %.1f%%\n",
		duration, loss, 100*acc)
	return nil
}
