// Command spyker-live runs Spyker over real TCP on this machine: n server
// processes (goroutines) on ephemeral localhost ports and m clients
// training a real CNN, exchanging models with the exact protocol messages
// of the paper (client updates, model replies, server broadcasts, age
// announcements, token).
//
// Example:
//
//	spyker-live -servers 4 -clients 16 -duration 5s
//	spyker-live -servers 2 -clients 8 -stats-every 1s -trace run.jsonl
//	spyker-live -debug-addr 127.0.0.1:6060   # expvar + Prometheus text + pprof
package main

import (
	"expvar"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/nn"
	"github.com/spyker-fl/spyker/internal/obs"
)

func main() {
	servers := flag.Int("servers", 2, "number of TCP servers")
	clients := flag.Int("clients", 8, "number of clients")
	duration := flag.Duration("duration", 3*time.Second, "wall-clock training duration")
	seed := flag.Int64("seed", 1, "seed")
	peerLatency := flag.Duration("peer-latency", 0, "injected one-way latency on server-server links")
	clientLatency := flag.Duration("client-latency", 0, "injected one-way latency on client links")
	statsEvery := flag.Duration("stats-every", 0, "log a one-line per-server stats snapshot at this period (0 = off)")
	tracePath := flag.String("trace", "", "write the protocol event trace to this JSONL file (see spyker-trace)")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address while running")
	flag.Parse()

	if err := run(*servers, *clients, *duration, *seed, *peerLatency, *clientLatency,
		*statsEvery, *tracePath, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(servers, clients int, duration time.Duration, seed int64, peerLat, clientLat time.Duration,
	statsEvery time.Duration, tracePath, debugAddr string) error {
	ds := data.GenerateImages(data.MNISTLike(10*clients, 300, seed))
	factory := func(s int64) fl.Model {
		rng := rand.New(rand.NewSource(s))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 6, 3, rng)
		pool := nn.NewMaxPool2D(6, 10, 10)
		net := nn.NewNetwork(
			conv, nn.NewReLU(conv.OutSize()), pool,
			nn.NewDense(pool.OutSize(), 32, rng), nn.NewReLU(32),
			nn.NewDense(32, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, s)
	}

	hyper := fl.DefaultHyper(clients, servers)
	hyper.HInter = 5
	hyper.HIntra = 100

	// Observability: a metrics registry always runs (it backs /debug/vars);
	// the event tracer only when a trace file is requested.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	var sink obs.Sink
	if tracePath != "" {
		tracer = obs.NewTracer(0)
		sink = tracer
	}
	if debugAddr != "" {
		expvar.Publish("spyker", expvar.Func(func() any { return reg.Snapshot() }))
		// Prometheus-style plaintext exposition of the same registry, for
		// scrapers that speak the text format rather than expvar JSON.
		http.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			// DefaultServeMux already carries /debug/pprof (via the pprof
			// import) and /debug/vars (via expvar).
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoint: http://%s/debug/vars, /debug/metrics and /debug/pprof\n", debugAddr)
	}

	fmt.Printf("spyker-live: %d TCP servers, %d clients, %s\n", servers, clients, duration)
	stats, err := live.RunCluster(live.ClusterConfig{
		NumServers:    servers,
		NumClients:    clients,
		Hyper:         hyper,
		NewModel:      factory,
		Shards:        data.PartitionByLabel(ds, clients, 2, seed),
		Seed:          seed,
		PeerLatency:   peerLat,
		ClientLatency: clientLat,
		Trace:         sink,
		Metrics:       reg,
		StatsEvery:    statsEvery,
		StatsOut:      os.Stderr,
	}, duration)
	if err != nil {
		return err
	}

	fmt.Printf("total client updates aggregated: %d\n", stats.TotalUpdates())
	for i, u := range stats.UpdatesPerServer {
		fmt.Printf("  server %d: %6d updates, final age %.1f\n", i, u, stats.FinalAges[i])
	}
	fmt.Printf("token synchronizations triggered: %d\n", stats.SyncsTriggered)
	fmt.Printf("final server-model spread (max pairwise L2): %.4f\n", stats.ModelSpread)

	// Evaluate the average of the final server models on the held-out set.
	avg := make([]float64, len(stats.FinalParams[0]))
	for _, p := range stats.FinalParams {
		for i, v := range p {
			avg[i] += v / float64(len(stats.FinalParams))
		}
	}
	eval := factory(seed)
	eval.SetParams(avg)
	loss, acc := eval.Evaluate()
	fmt.Printf("global model after %s of real training: loss %.4f, accuracy %.1f%%\n",
		duration, loss, 100*acc)

	fmt.Printf("runtime metrics: %s\n", reg.StatsLine())
	if tracer != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("event trace (%d events) written to %s\n", tracer.Len(), tracePath)
	}
	return nil
}
