// Package ring defines the epoch-versioned server membership that the
// Spyker token ring (PAPER.md Alg. 2) runs over. A Membership is the
// single source of truth for "who is in the ring right now": an epoch
// number plus the ordered list of stable server IDs. It is carried on
// the token and in every inter-server message header, so any server can
// adopt a newer ring the moment it hears about one — no separate
// consensus round, the token ring itself is the gossip channel.
//
// Immutability contract: a Membership's Members slice is never mutated
// in place. Every mutation (WithMember, WithoutMember) allocates a fresh
// slice, so a Membership value may be aliased freely across wire
// buffers, outboxes, and cores without defensive copies.
package ring

import (
	"fmt"
	"sort"
	"strings"
)

// Membership is an epoch-versioned server ring. Members holds the stable
// server IDs in strictly ascending order; the ring successor of a member
// is the next ID in the list, wrapping to the first. The zero value
// (nil Members) means "no membership information" — message headers from
// legacy senders decode to it, and receivers ignore it.
type Membership struct {
	Epoch   int
	Members []int
}

// Fixed is the construction-time ring of the pre-elastic world: epoch 0
// with members 0..n-1. Legacy checkpoints and fixed-size deployments
// restore to exactly this value.
func Fixed(n int) Membership {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return Membership{Epoch: 0, Members: m}
}

// New builds a membership at the given epoch from an arbitrary member
// set; the IDs are copied, deduplicated, and sorted ascending. It panics
// on negative IDs — server identities are array-indexable by design.
func New(epoch int, members []int) Membership {
	out := make([]int, 0, len(members))
	seen := make(map[int]bool, len(members))
	for _, id := range members {
		if id < 0 {
			panic(fmt.Sprintf("ring: negative member ID %d", id))
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return Membership{Epoch: epoch, Members: out}
}

// IsZero reports whether m carries no membership information (the state
// of a header from a sender that predates elastic membership).
func (m Membership) IsZero() bool { return m.Members == nil }

// Count is the number of ring members — the denominator of every
// "all servers have broadcast" check.
func (m Membership) Count() int { return len(m.Members) }

// Slots is the dense array size needed to index per-server state by
// stable ID: max(Members)+1. Slots ≥ Count, with equality exactly when
// the ring is the fixed 0..n-1 prefix; IDs of departed members keep
// their slots so ages and frontiers never need re-indexing.
func (m Membership) Slots() int {
	if len(m.Members) == 0 {
		return 0
	}
	return m.Members[len(m.Members)-1] + 1
}

// Contains reports whether id is a current ring member.
func (m Membership) Contains(id int) bool {
	i := sort.SearchInts(m.Members, id)
	return i < len(m.Members) && m.Members[i] == id
}

// Index returns id's position in the ordered member list, or -1 if id is
// not a member.
func (m Membership) Index(id int) int {
	i := sort.SearchInts(m.Members, id)
	if i < len(m.Members) && m.Members[i] == id {
		return i
	}
	return -1
}

// Successor returns the ring successor of id: the smallest member ID
// greater than id, wrapping to the first member. This generalizes the
// fixed-ring (id+1) % n. In a singleton ring the successor of the sole
// member is itself. id need not be a member — a server that was just
// excluded still computes the member its token should go to.
func (m Membership) Successor(id int) int {
	if len(m.Members) == 0 {
		return id
	}
	i := sort.SearchInts(m.Members, id+1)
	if i == len(m.Members) {
		i = 0
	}
	return m.Members[i]
}

// RegenBid is the bid a member mints when regenerating a lost token:
// maxBidSeen + Count + 1 + Index(id). Offsetting by the member *index*
// (not the raw ID) keeps regenerated bids distinct per member and
// totally ordered above every bid any server has seen, and reduces to
// the pre-elastic maxBidSeen + NumServers + 1 + ID on fixed rings.
// Panics if id is not a member — only members may regenerate.
func (m Membership) RegenBid(maxBidSeen, id int) int {
	idx := m.Index(id)
	if idx < 0 {
		panic(fmt.Sprintf("ring: RegenBid for non-member %d of %s", id, m))
	}
	return maxBidSeen + len(m.Members) + 1 + idx
}

// NextID is the smallest stable ID never used by this ring:
// max(Members)+1. Joiners are assigned NextID so departed members' IDs
// are never recycled within a run (recycling would corrupt age/frontier
// slots that still carry the departed member's state).
func (m Membership) NextID() int { return m.Slots() }

// WithMember returns a new membership at Epoch+1 that includes id.
// The receiver is not modified. Adding an existing member still bumps
// the epoch — callers wanting idempotence check Contains first.
func (m Membership) WithMember(id int) Membership {
	if id < 0 {
		panic(fmt.Sprintf("ring: negative member ID %d", id))
	}
	i := sort.SearchInts(m.Members, id)
	out := make([]int, 0, len(m.Members)+1)
	out = append(out, m.Members[:i]...)
	if i == len(m.Members) || m.Members[i] != id {
		out = append(out, id)
	}
	out = append(out, m.Members[i:]...)
	return Membership{Epoch: m.Epoch + 1, Members: out}
}

// WithoutMember returns a new membership at Epoch+1 that excludes id.
// The receiver is not modified.
func (m Membership) WithoutMember(id int) Membership {
	out := make([]int, 0, len(m.Members))
	for _, v := range m.Members {
		if v != id {
			out = append(out, v)
		}
	}
	return Membership{Epoch: m.Epoch + 1, Members: out}
}

// Compare totally orders memberships so every server adopts the same
// winner regardless of arrival order. a beats b (returns > 0) when:
//
//  1. a.Epoch > b.Epoch — newer epochs always win; or, at equal epoch,
//  2. a has fewer members — concurrent reconfigurations at the same
//     epoch are resolved "leave beats join": the safety-critical
//     exclusion of a dead server must not lose to an optimistic add; or
//  3. lexicographically larger member sequence — an arbitrary but
//     deterministic tiebreak between same-size sets.
//
// Returns 0 exactly when the two are Equal. The zero Membership carries
// no information and loses to every non-zero one, whatever the epochs.
func Compare(a, b Membership) int {
	if a.IsZero() || b.IsZero() {
		switch {
		case a.IsZero() && b.IsZero():
			return 0
		case a.IsZero():
			return -1
		}
		return 1
	}
	if a.Epoch != b.Epoch {
		if a.Epoch > b.Epoch {
			return 1
		}
		return -1
	}
	if len(a.Members) != len(b.Members) {
		if len(a.Members) < len(b.Members) {
			return 1
		}
		return -1
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			if a.Members[i] > b.Members[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}

// Equal reports whether a and b have the same epoch and member list.
func Equal(a, b Membership) bool { return Compare(a, b) == 0 }

// Equal reports whether m and o have the same epoch and member list.
func (m Membership) Equal(o Membership) bool { return Compare(m, o) == 0 }

// Clone returns a deep copy whose Members slice shares no storage with
// the receiver. Cores clone on adoption so retaining a membership never
// pins (or races with) a transport's recycled wire buffer.
func (m Membership) Clone() Membership {
	if m.Members == nil {
		return Membership{Epoch: m.Epoch}
	}
	return Membership{Epoch: m.Epoch, Members: append([]int(nil), m.Members...)}
}

// String renders the membership as "e3{0,2,4}" for logs and panics.
func (m Membership) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%d{", m.Epoch)
	for i, id := range m.Members {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}
