package ring

import "testing"

func TestFixed(t *testing.T) {
	m := Fixed(4)
	if m.Epoch != 0 || m.Count() != 4 || m.Slots() != 4 {
		t.Fatalf("Fixed(4) = %s, want e0{0,1,2,3}", m)
	}
	for i := 0; i < 4; i++ {
		if !m.Contains(i) || m.Index(i) != i {
			t.Fatalf("Fixed(4) missing member %d", i)
		}
	}
	if Fixed(0).Count() != 0 || Fixed(0).Slots() != 0 {
		t.Fatalf("Fixed(0) not empty")
	}
	if Fixed(0).IsZero() {
		t.Fatalf("Fixed(0) must not be zero: empty ring != absent header")
	}
	if !(Membership{}).IsZero() {
		t.Fatalf("zero Membership must report IsZero")
	}
}

func TestNewSortsAndDedups(t *testing.T) {
	m := New(3, []int{5, 1, 5, 3, 1})
	want := []int{1, 3, 5}
	if m.Epoch != 3 || len(m.Members) != len(want) {
		t.Fatalf("New = %s", m)
	}
	for i, id := range want {
		if m.Members[i] != id {
			t.Fatalf("New members = %v, want %v", m.Members, want)
		}
	}
	if m.Slots() != 6 || m.NextID() != 6 {
		t.Fatalf("Slots/NextID of %s = %d/%d, want 6/6", m, m.Slots(), m.NextID())
	}
}

// TestSuccessor pins the generalized ring arithmetic: on fixed rings it
// must match the historical (id+1) % n, on sparse rings it skips holes,
// and a singleton ring is its own successor.
func TestSuccessor(t *testing.T) {
	tests := []struct {
		name string
		m    Membership
		id   int
		want int
	}{
		{"fixed-mid", Fixed(4), 1, 2},
		{"fixed-wrap", Fixed(4), 3, 0},
		{"fixed-matches-modulo", Fixed(5), 2, (2 + 1) % 5},
		{"sparse-skips-hole", New(1, []int{0, 2, 3}), 0, 2},
		{"sparse-wrap", New(1, []int{0, 2, 3}), 3, 0},
		{"nonmember-id", New(1, []int{0, 2, 3}), 1, 2},
		{"singleton", New(2, []int{4}), 4, 4},
		{"empty", New(9, nil), 7, 7},
	}
	for _, tt := range tests {
		if got := tt.m.Successor(tt.id); got != tt.want {
			t.Errorf("%s: %s.Successor(%d) = %d, want %d", tt.name, tt.m, tt.id, got, tt.want)
		}
	}
}

// TestRegenBid pins the regeneration-bid formula against the historical
// maxBidSeen + NumServers + 1 + ID on fixed rings, and checks sparse
// rings use the member index so bids stay dense and distinct.
func TestRegenBid(t *testing.T) {
	tests := []struct {
		name       string
		m          Membership
		maxBid, id int
		want       int
	}{
		{"fixed-s0", Fixed(4), 10, 0, 10 + 4 + 1 + 0},
		{"fixed-s3", Fixed(4), 10, 3, 10 + 4 + 1 + 3},
		{"sparse-uses-index", New(1, []int{0, 2, 5}), 7, 5, 7 + 3 + 1 + 2},
		{"singleton", New(2, []int{3}), 0, 3, 0 + 1 + 1 + 0},
	}
	for _, tt := range tests {
		if got := tt.m.RegenBid(tt.maxBid, tt.id); got != tt.want {
			t.Errorf("%s: RegenBid(%d, %d) = %d, want %d", tt.name, tt.maxBid, tt.id, got, tt.want)
		}
	}
	// Distinctness: every member of a ring regenerating against the same
	// maxBidSeen must mint a different bid.
	m := New(1, []int{0, 2, 5, 9})
	seen := map[int]int{}
	for _, id := range m.Members {
		b := m.RegenBid(42, id)
		if prev, dup := seen[b]; dup {
			t.Fatalf("members %d and %d both mint bid %d", prev, id, b)
		}
		seen[b] = id
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("RegenBid for non-member did not panic")
		}
	}()
	m.RegenBid(0, 1)
}

func TestWithMember(t *testing.T) {
	base := Fixed(2)
	m := base.WithMember(2)
	if m.Epoch != 1 || m.Count() != 3 || !m.Contains(2) {
		t.Fatalf("WithMember(2) = %s", m)
	}
	if base.Count() != 2 {
		t.Fatalf("WithMember mutated receiver: %s", base)
	}
	// Insert into the middle keeps ascending order.
	mid := New(4, []int{0, 5}).WithMember(3)
	if mid.Members[0] != 0 || mid.Members[1] != 3 || mid.Members[2] != 5 {
		t.Fatalf("middle insert = %v", mid.Members)
	}
	// Re-adding an existing member bumps the epoch but not the set.
	again := m.WithMember(2)
	if again.Epoch != 2 || again.Count() != 3 {
		t.Fatalf("re-add = %s", again)
	}
}

func TestWithoutMember(t *testing.T) {
	base := Fixed(4)
	m := base.WithoutMember(1)
	if m.Epoch != 1 || m.Count() != 3 || m.Contains(1) {
		t.Fatalf("WithoutMember(1) = %s", m)
	}
	if base.Count() != 4 {
		t.Fatalf("WithoutMember mutated receiver: %s", base)
	}
	// Slots keep the departed member's hole: IDs are never recycled.
	hole := Fixed(4).WithoutMember(3)
	if hole.Slots() != 3 || hole.NextID() != 3 {
		// Removing the max member shrinks Slots; that is fine, the hole
		// rule only matters for interior members.
		t.Fatalf("WithoutMember(3) Slots = %d", hole.Slots())
	}
	interior := Fixed(4).WithoutMember(1)
	if interior.Slots() != 4 || interior.NextID() != 4 {
		t.Fatalf("interior hole Slots = %d, want 4", interior.Slots())
	}
	// Removing a non-member still bumps the epoch (callers guard).
	same := base.WithoutMember(9)
	if same.Epoch != 1 || same.Count() != 4 {
		t.Fatalf("remove non-member = %s", same)
	}
}

// TestCompare pins the total order every server resolves concurrent
// reconfigurations with: epoch first, then leave-beats-join (fewer
// members win at equal epoch), then a deterministic element tiebreak.
func TestCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Membership
		want int // sign
	}{
		{"higher-epoch-wins", New(2, []int{0}), New(1, []int{0, 1, 2}), 1},
		{"lower-epoch-loses", New(0, []int{0, 1, 2, 3}), New(1, []int{0}), -1},
		{"equal", Fixed(3), New(0, []int{0, 1, 2}), 0},
		{"leave-beats-join", New(1, []int{0, 1}), New(1, []int{0, 1, 2}), 1},
		{"element-tiebreak", New(1, []int{0, 3}), New(1, []int{0, 2}), 1},
		{"zero-loses-to-fixed", Membership{}, Fixed(2), -1},
	}
	for _, tt := range tests {
		got := Compare(tt.a, tt.b)
		if sign(got) != tt.want {
			t.Errorf("%s: Compare(%s, %s) = %d, want sign %d", tt.name, tt.a, tt.b, got, tt.want)
		}
		if sign(Compare(tt.b, tt.a)) != -tt.want {
			t.Errorf("%s: Compare not antisymmetric", tt.name)
		}
		if (tt.want == 0) != tt.a.Equal(tt.b) {
			t.Errorf("%s: Equal disagrees with Compare", tt.name)
		}
	}
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func TestCloneIsDeep(t *testing.T) {
	m := Fixed(3)
	c := m.Clone()
	if !c.Equal(m) {
		t.Fatalf("Clone = %s, want %s", c, m)
	}
	c.Members[0] = 99
	if m.Members[0] != 0 {
		t.Fatalf("Clone shares storage with receiver")
	}
	z := (Membership{}).Clone()
	if !z.IsZero() {
		t.Fatalf("Clone of zero must stay zero (nil Members)")
	}
}

func TestString(t *testing.T) {
	if got := New(3, []int{0, 2, 4}).String(); got != "e3{0,2,4}" {
		t.Fatalf("String = %q", got)
	}
}
