package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix backed by a flat slice, so a matrix's
// storage can be aliased into a model's flat parameter vector without
// copying.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFrom wraps an existing slice as a Rows x Cols matrix. The slice is
// aliased, not copied; it must have exactly rows*cols elements.
func MatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set writes v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the slice aliasing row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols. dst may not alias x.
func (m *Matrix) MatVec(dst, x []float64) {
	mustSameLen(len(dst), m.Rows)
	mustSameLen(len(x), m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float64
		for c, w := range row {
			s += w * x[c]
		}
		dst[r] = s
	}
}

// MatVecT computes dst = m^T * x (x has length m.Rows, dst length m.Cols).
// It is the backward pass of MatVec.
func (m *Matrix) MatVecT(dst, x []float64) {
	mustSameLen(len(dst), m.Cols)
	mustSameLen(len(x), m.Rows)
	Zero(dst)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xv := x[r]
		if xv == 0 {
			continue
		}
		for c, w := range row {
			dst[c] += w * xv
		}
	}
}

// AddOuter accumulates the outer product a*b^T into m:
// m[r][c] += alpha * a[r] * b[c]. It is the weight-gradient kernel of a
// dense layer.
func (m *Matrix) AddOuter(alpha float64, a, b []float64) {
	mustSameLen(len(a), m.Rows)
	mustSameLen(len(b), m.Cols)
	for r := 0; r < m.Rows; r++ {
		av := alpha * a[r]
		if av == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c := range row {
			row[c] += av * b[c]
		}
	}
}

// XavierInit fills m with samples from U(-limit, limit) where
// limit = sqrt(6/(fanIn+fanOut)), the Glorot uniform initializer.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}
