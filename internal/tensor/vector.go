// Package tensor provides the dense vector and matrix kernels that the
// neural-network library is built on. All operations work on flat
// []float64 slices so that federated-learning aggregation code can treat a
// whole model as a single parameter vector.
package tensor

import (
	"fmt"
	"math"
)

// Add returns a new vector containing a + b element-wise.
func Add(a, b []float64) []float64 {
	mustSameLen(len(a), len(b))
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector containing a - b element-wise.
func Sub(a, b []float64) []float64 {
	mustSameLen(len(a), len(b))
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddInPlace accumulates b into a element-wise.
func AddInPlace(a, b []float64) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] += b[i]
	}
}

// SubInPlace subtracts b from a element-wise.
func SubInPlace(a, b []float64) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] -= b[i]
	}
}

// AXPY computes a[i] += alpha*b[i], the classic saxpy kernel. This is the
// hot path of every federated aggregation rule (W += eta*w*(Wk - W)).
func AXPY(alpha float64, a, b []float64) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] += alpha * b[i]
	}
}

// Lerp moves a toward b by fraction t in place: a = a + t*(b-a).
// t=0 leaves a unchanged; t=1 replaces a with b.
func Lerp(a, b []float64, t float64) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] += t * (b[i] - a[i])
	}
}

// Scale returns a new vector alpha*a.
func Scale(alpha float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = alpha * a[i]
	}
	return out
}

// ScaleInPlace multiplies every element of a by alpha.
func ScaleInPlace(alpha float64, a []float64) {
	for i := range a {
		a[i] *= alpha
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Zero sets every element of a to 0.
func Zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// WeightedMean returns sum(w[i]*a[i]) / sum(w). It panics if the weight sum
// is zero.
func WeightedMean(a, w []float64) float64 {
	mustSameLen(len(a), len(w))
	var num, den float64
	for i := range a {
		num += w[i] * a[i]
		den += w[i]
	}
	if den == 0 {
		panic("tensor: WeightedMean with zero total weight")
	}
	return num / den
}

// ClipInPlace clamps every element of a to [-bound, bound]. It is used to
// keep SGD numerically stable on aggressive learning rates.
func ClipInPlace(a []float64, bound float64) {
	for i := range a {
		if a[i] > bound {
			a[i] = bound
		} else if a[i] < -bound {
			a[i] = -bound
		}
	}
}

// ArgMax returns the index of the largest element, or -1 for an empty slice.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(a); i++ {
		if a[i] > a[best] {
			best = i
		}
	}
	return best
}

// Softmax returns the softmax of a, computed with the max-subtraction trick
// for numerical stability.
func Softmax(a []float64) []float64 {
	out := make([]float64, len(a))
	SoftmaxTo(out, a)
	return out
}

// SoftmaxTo writes the softmax of a into dst, which must have the same
// length. It avoids allocation on hot paths.
func SoftmaxTo(dst, a []float64) {
	mustSameLen(len(dst), len(a))
	if len(a) == 0 {
		return
	}
	maxv := a[0]
	for _, v := range a[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range a {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", a, b))
	}
}
