package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddSub(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(a, b); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	// inputs untouched
	if a[0] != 1 || b[0] != 4 {
		t.Error("Add/Sub modified inputs")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := []float64{1, 2}
	AddInPlace(a, []float64{10, 20})
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("AddInPlace = %v", a)
	}
	SubInPlace(a, []float64{1, 2})
	if a[0] != 10 || a[1] != 20 {
		t.Errorf("SubInPlace = %v", a)
	}
	AXPY(0.5, a, []float64{2, 4})
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("AXPY = %v", a)
	}
	ScaleInPlace(2, a)
	if a[0] != 22 || a[1] != 44 {
		t.Errorf("ScaleInPlace = %v", a)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{7, 8, 9}
	c := Clone(a)
	Lerp(c, b, 0)
	for i := range c {
		if c[i] != a[i] {
			t.Fatalf("Lerp t=0 moved a: %v", c)
		}
	}
	c = Clone(a)
	Lerp(c, b, 1)
	for i := range c {
		if !almostEq(c[i], b[i], 1e-12) {
			t.Fatalf("Lerp t=1 != b: %v", c)
		}
	}
}

func TestLerpMidpointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		c := Clone(a)
		Lerp(c, b, 0.5)
		for i := range c {
			if !almostEq(c[i], (a[i]+b[i])/2, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotNorm(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2(a); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestMeanWeightedMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if !almostEq(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v", got)
	}
}

func TestWeightedMeanZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero total weight")
		}
	}()
	WeightedMean([]float64{1}, []float64{0})
}

func TestClip(t *testing.T) {
	a := []float64{-10, -1, 0, 1, 10}
	ClipInPlace(a, 2)
	want := []float64{-2, -1, 0, 1, 2}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("ClipInPlace = %v", a)
		}
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) != -1")
	}
	if got := ArgMax([]float64{1, 5, 3, 5}); got != 1 {
		t.Errorf("ArgMax ties should pick first: %d", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
		}
		s := Softmax(a)
		var sum float64
		for _, v := range s {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxExtremeValuesStable(t *testing.T) {
	s := Softmax([]float64{1000, 999, -1000})
	if math.IsNaN(s[0]) || s[0] < s[1] {
		t.Errorf("softmax unstable: %v", s)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestZeroFillClone(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	Zero(a)
	if a[0] != 0 || a[1] != 0 {
		t.Error("Zero failed")
	}
	if b[0] != 1 || b[1] != 2 {
		t.Error("Clone aliased storage")
	}
	Fill(b, 7)
	if b[0] != 7 || b[1] != 7 {
		t.Error("Fill failed")
	}
}
