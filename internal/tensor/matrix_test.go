package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(0, 1) != 5 || m.At(1, 2) != 7 {
		t.Error("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone aliased storage")
	}
}

func TestMatrixFromValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong data length")
		}
	}()
	MatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestMatVec(t *testing.T) {
	m := MatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MatVec(dst, []float64{1, 0, -1})
	if dst[0] != -2 || dst[1] != -2 {
		t.Errorf("MatVec = %v", dst)
	}
}

// TestMatVecTAdjoint checks the adjoint identity <Ax, y> == <x, A^T y>,
// which is exactly what backprop correctness depends on.
func TestMatVecTAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		x := make([]float64, c)
		y := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, r)
		m.MatVec(ax, x)
		aty := make([]float64, c)
		m.MatVecT(aty, y)
		return math.Abs(Dot(ax, y)-Dot(x, aty)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, []float64{1, 3}, []float64{5, 7})
	want := []float64{10, 14, 30, 42}
	for i, v := range m.Data {
		if v != want[i] {
			t.Fatalf("AddOuter = %v", m.Data)
		}
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(10, 10)
	m.XavierInit(rng, 10, 10)
	limit := math.Sqrt(6.0 / 20.0)
	var nonzero int
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Errorf("only %d of 100 weights nonzero", nonzero)
	}
}
