package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionIIDCoversExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		k := 1 + rng.Intn(10)
		shards := PartitionIID(n, k, seed)
		if len(shards) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, s := range shards {
			for _, i := range s {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionIIDBalanced(t *testing.T) {
	shards := PartitionIID(103, 10, 1)
	for _, s := range shards {
		if len(s) < 10 || len(s) > 11 {
			t.Fatalf("shard size %d not in {10,11}", len(s))
		}
	}
}

func TestPartitionIIDInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PartitionIID(10, 0, 1)
}

func TestPartitionByLabelRespectsL(t *testing.T) {
	ds := GenerateImages(MNISTLike(500, 0, 1))
	shards := PartitionByLabel(ds, 20, 2, 1)
	if len(shards) != 20 {
		t.Fatalf("got %d shards", len(shards))
	}
	allLabels := make(map[int]bool)
	for c, s := range shards {
		if len(s) == 0 {
			t.Fatalf("client %d got an empty shard", c)
		}
		labels := LabelSet(ds, s)
		if len(labels) > 2 {
			t.Errorf("client %d has %d labels, want <= 2", c, len(labels))
		}
		for _, l := range labels {
			allLabels[l] = true
		}
	}
	if len(allLabels) != ds.NumClasses() {
		t.Errorf("only %d of %d labels covered across clients", len(allLabels), ds.NumClasses())
	}
}

func TestPartitionByLabelNoDuplicates(t *testing.T) {
	ds := GenerateImages(MNISTLike(300, 0, 2))
	shards := PartitionByLabel(ds, 10, 2, 3)
	seen := make(map[int]bool)
	for _, s := range shards {
		for _, i := range s {
			if seen[i] {
				t.Fatalf("example %d assigned twice", i)
			}
			seen[i] = true
		}
	}
}

func TestPartitionByLabelInvalidPanics(t *testing.T) {
	ds := GenerateImages(MNISTLike(100, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PartitionByLabel(ds, 5, 0, 1)
}

func TestGenerateImagesShape(t *testing.T) {
	ds := GenerateImages(MNISTLike(200, 50, 1))
	if ds.Len() != 200 {
		t.Errorf("Len = %d", ds.Len())
	}
	if ds.Dim() != 144 {
		t.Errorf("Dim = %d", ds.Dim())
	}
	if got := len(ds.Input(0)); got != 144 {
		t.Errorf("input dim = %d", got)
	}
	if l := ds.Label(3); l < 0 || l >= 10 {
		t.Errorf("label out of range: %d", l)
	}
	test := ds.TestSet()
	if test.Len() != 50 {
		t.Errorf("test len = %d", test.Len())
	}
	if test.NumClasses() != 10 {
		t.Errorf("test classes = %d", test.NumClasses())
	}
}

func TestGenerateImagesLabelBalance(t *testing.T) {
	ds := GenerateImages(MNISTLike(1000, 0, 4))
	counts := make([]int, ds.NumClasses())
	for i := 0; i < ds.Len(); i++ {
		counts[ds.Label(i)]++
	}
	for l, c := range counts {
		if c != 100 {
			t.Errorf("label %d has %d examples, want 100", l, c)
		}
	}
}

func TestGenerateImagesDeterministic(t *testing.T) {
	a := GenerateImages(MNISTLike(50, 10, 9))
	b := GenerateImages(MNISTLike(50, 10, 9))
	for i := 0; i < a.Len(); i++ {
		xa, xb := a.Input(i), b.Input(i)
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := GenerateImages(MNISTLike(50, 10, 10))
	diff := false
	for j, v := range a.Input(0) {
		if v != c.Input(0)[j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestCIFARLikeIsThreeChannel(t *testing.T) {
	ds := GenerateImages(CIFARLike(100, 10, 1))
	ch, h, w := ds.Shape()
	if ch != 3 || h != 12 || w != 12 {
		t.Errorf("shape = %d,%d,%d", ch, h, w)
	}
}

func TestGenerateImagesInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GenerateImages(ImageConfig{Classes: 1, Train: 10})
}

// TestImagesLearnable: a trivial nearest-template classifier must beat
// chance by a wide margin, otherwise the FL tasks are unlearnable noise.
func TestImagesLearnable(t *testing.T) {
	ds := GenerateImages(MNISTLike(300, 100, 5))
	test := ds.TestSet()
	correct := 0
	for i := 0; i < test.Len(); i++ {
		x := test.Input(i)
		best, bestDist := -1, 0.0
		for c := 0; c < ds.NumClasses(); c++ {
			var dist float64
			for j, v := range ds.templates[c] {
				d := x[j] - v
				dist += d * d
			}
			if best == -1 || dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == test.Label(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Errorf("nearest-template accuracy %.2f, dataset too noisy", acc)
	}
}

func TestPartitionDirichletCoversExactly(t *testing.T) {
	ds := GenerateImages(MNISTLike(400, 0, 1))
	shards := PartitionDirichlet(ds, 16, 0.3, 1)
	if len(shards) != 16 {
		t.Fatalf("shards = %d", len(shards))
	}
	seen := make(map[int]bool)
	for _, s := range shards {
		for _, i := range s {
			if seen[i] {
				t.Fatalf("example %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != ds.Len() {
		t.Errorf("covered %d of %d examples", len(seen), ds.Len())
	}
}

func TestPartitionDirichletSkewDependsOnAlpha(t *testing.T) {
	ds := GenerateImages(MNISTLike(1000, 0, 2))
	skew := func(alpha float64) float64 {
		shards := PartitionDirichlet(ds, 10, alpha, 3)
		// Average per-client max-label share: 1.0 = single-label clients,
		// 0.1 = perfectly uniform over 10 labels.
		var total float64
		var counted int
		for _, s := range shards {
			if len(s) == 0 {
				continue
			}
			counts := make([]int, ds.NumClasses())
			for _, i := range s {
				counts[ds.Label(i)]++
			}
			maxc := 0
			for _, c := range counts {
				if c > maxc {
					maxc = c
				}
			}
			total += float64(maxc) / float64(len(s))
			counted++
		}
		return total / float64(counted)
	}
	low := skew(0.1)  // strongly non-IID
	high := skew(100) // nearly IID
	if low <= high {
		t.Errorf("alpha=0.1 skew %v should exceed alpha=100 skew %v", low, high)
	}
	if high > 0.3 {
		t.Errorf("alpha=100 should be near-IID, got max-label share %v", high)
	}
}

func TestPartitionDirichletInvalidPanics(t *testing.T) {
	ds := GenerateImages(MNISTLike(50, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PartitionDirichlet(ds, 5, 0, 1)
}

func TestGammaSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range []float64{0.3, 1, 2.5} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		// Gamma(shape,1) has mean = shape.
		if mean < shape*0.9 || mean > shape*1.1 {
			t.Errorf("Gamma(%v) sample mean %v", shape, mean)
		}
	}
}
