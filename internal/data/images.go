package data

import (
	"fmt"
	"math/rand"
)

// ImageConfig describes a synthetic image-classification dataset.
type ImageConfig struct {
	Classes  int     // number of labels
	Channels int     // 1 for MNIST-like, 3 for CIFAR-like
	Height   int     // image height
	Width    int     // image width
	Train    int     // number of training examples
	Test     int     // number of held-out test examples
	Noise    float64 // per-pixel Gaussian noise stddev
	Warp     float64 // per-example random shift intensity (structure noise)
	Seed     int64
}

// MNISTLike returns the configuration used throughout the experiments as a
// stand-in for MNIST: single-channel 12x12 images, 10 classes. The reduced
// resolution keeps the emulation fast while preserving the learning
// dynamics the paper studies.
func MNISTLike(train, test int, seed int64) ImageConfig {
	return ImageConfig{
		Classes: 10, Channels: 1, Height: 12, Width: 12,
		Train: train, Test: test, Noise: 0.25, Warp: 0.6, Seed: seed,
	}
}

// CIFARLike returns a 3-channel, 12x12, 10-class configuration standing in
// for CIFAR-10. It uses more noise than MNISTLike, making the task harder,
// mirroring the relative difficulty of CIFAR-10 vs MNIST.
func CIFARLike(train, test int, seed int64) ImageConfig {
	return ImageConfig{
		Classes: 10, Channels: 3, Height: 12, Width: 12,
		Train: train, Test: test, Noise: 0.45, Warp: 1.0, Seed: seed,
	}
}

// Images is a synthetic image dataset: each class is defined by a smooth
// random template; an example is its class template randomly shifted and
// perturbed with Gaussian pixel noise. A small CNN separates the classes
// after a modest number of SGD updates, which is exactly the regime the
// paper's emulation operates in.
type Images struct {
	cfg       ImageConfig
	templates [][]float64
	inputs    [][]float64
	labels    []int
	testStart int
}

var _ Classification = (*Images)(nil)

// GenerateImages materializes the dataset described by cfg.
func GenerateImages(cfg ImageConfig) *Images {
	if cfg.Classes < 2 || cfg.Train < cfg.Classes || cfg.Test < 0 {
		panic(fmt.Sprintf("data: invalid image config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Images{cfg: cfg, testStart: cfg.Train}
	dim := cfg.Channels * cfg.Height * cfg.Width

	d.templates = make([][]float64, cfg.Classes)
	for c := range d.templates {
		d.templates[c] = smoothTemplate(rng, cfg.Channels, cfg.Height, cfg.Width)
	}

	total := cfg.Train + cfg.Test
	d.inputs = make([][]float64, total)
	d.labels = make([]int, total)
	for i := 0; i < total; i++ {
		label := i % cfg.Classes
		d.labels[i] = label
		x := make([]float64, dim)
		shiftY := int(rng.NormFloat64() * cfg.Warp)
		shiftX := int(rng.NormFloat64() * cfg.Warp)
		shifted(x, d.templates[label], cfg.Channels, cfg.Height, cfg.Width, shiftY, shiftX)
		for j := range x {
			x[j] += rng.NormFloat64() * cfg.Noise
		}
		d.inputs[i] = x
	}
	return d
}

// smoothTemplate builds a class prototype by summing a few random low
// frequency bumps, so nearby pixels correlate the way real images do.
func smoothTemplate(rng *rand.Rand, ch, h, w int) []float64 {
	t := make([]float64, ch*h*w)
	for c := 0; c < ch; c++ {
		for b := 0; b < 4; b++ {
			cy := rng.Float64() * float64(h)
			cx := rng.Float64() * float64(w)
			amp := rng.NormFloat64() * 1.5
			sigma := 1.5 + rng.Float64()*2
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					dy := float64(y) - cy
					dx := float64(x) - cx
					t[c*h*w+y*w+x] += amp * gauss2(dy, dx, sigma)
				}
			}
		}
	}
	return t
}

func gauss2(dy, dx, sigma float64) float64 {
	return exp(-(dy*dy + dx*dx) / (2 * sigma * sigma))
}

// shifted writes src translated by (dy,dx) into dst, zero-padding exposed
// borders, per channel.
func shifted(dst, src []float64, ch, h, w, dy, dx int) {
	for c := 0; c < ch; c++ {
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				dst[c*h*w+y*w+x] = src[c*h*w+sy*w+sx]
			}
		}
	}
}

// Len implements Classification over the training split.
func (d *Images) Len() int { return d.cfg.Train }

// Input implements Classification.
func (d *Images) Input(i int) []float64 { return d.inputs[i] }

// Label implements Classification.
func (d *Images) Label(i int) int { return d.labels[i] }

// NumClasses implements Classification.
func (d *Images) NumClasses() int { return d.cfg.Classes }

// TestSet returns the held-out split as its own Classification view.
func (d *Images) TestSet() Classification {
	return &imageTestView{d}
}

// Dim returns the flattened input dimensionality.
func (d *Images) Dim() int { return d.cfg.Channels * d.cfg.Height * d.cfg.Width }

// Shape returns (channels, height, width).
func (d *Images) Shape() (ch, h, w int) { return d.cfg.Channels, d.cfg.Height, d.cfg.Width }

type imageTestView struct{ d *Images }

func (v *imageTestView) Len() int              { return v.d.cfg.Test }
func (v *imageTestView) Input(i int) []float64 { return v.d.inputs[v.d.testStart+i] }
func (v *imageTestView) Label(i int) int       { return v.d.labels[v.d.testStart+i] }
func (v *imageTestView) NumClasses() int       { return v.d.cfg.Classes }
