// Package data provides the datasets the experiments train on and the
// partitioning schemes that distribute them over federated clients.
//
// The paper evaluates on MNIST, CIFAR-10 and WikiText-2. Those corpora are
// not available in this offline environment, so the package generates
// synthetic stand-ins of the same shape (see DESIGN.md, "Substitutions"):
// class-template images plus Gaussian noise for the two vision tasks, and a
// Markov-chain character stream for the language-modeling task. Both are
// learnable by the same model families the paper uses and support the
// label-skewed non-IID splits (l labels per client) the paper evaluates.
package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Thin aliases keep the sampling code readable.
func pow(x, y float64) float64 { return math.Pow(x, y) }
func sqrt(x float64) float64   { return math.Sqrt(x) }
func logf(x float64) float64   { return math.Log(x) }

// Classification is a labeled vector dataset.
type Classification interface {
	// Len reports the number of examples.
	Len() int
	// Input returns the feature vector of example i. The returned slice
	// must not be modified.
	Input(i int) []float64
	// Label returns the class of example i.
	Label(i int) int
	// NumClasses reports how many distinct labels exist.
	NumClasses() int
}

// PartitionIID splits n examples into numClients equal-size shards after a
// seeded shuffle, mimicking an IID split. Remainder examples go to the
// first shards.
func PartitionIID(n, numClients int, seed int64) [][]int {
	if numClients <= 0 {
		panic("data: PartitionIID with non-positive client count")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	shards := make([][]int, numClients)
	base := n / numClients
	rem := n % numClients
	pos := 0
	for c := 0; c < numClients; c++ {
		size := base
		if c < rem {
			size++
		}
		shards[c] = append([]int(nil), perm[pos:pos+size]...)
		pos += size
	}
	return shards
}

// PartitionByLabel produces the paper's non-IID split: each client receives
// examples drawn from exactly labelsPerClient distinct labels, with the
// dataset split into equal-size shards. Labels are assigned round-robin so
// every label is covered when numClients*labelsPerClient >= NumClasses.
func PartitionByLabel(ds Classification, numClients, labelsPerClient int, seed int64) [][]int {
	if labelsPerClient <= 0 || labelsPerClient > ds.NumClasses() {
		panic(fmt.Sprintf("data: labelsPerClient %d out of range 1..%d",
			labelsPerClient, ds.NumClasses()))
	}
	rng := rand.New(rand.NewSource(seed))

	// Bucket example indices per label, shuffled within each bucket.
	byLabel := make([][]int, ds.NumClasses())
	for i := 0; i < ds.Len(); i++ {
		l := ds.Label(i)
		byLabel[l] = append(byLabel[l], i)
	}
	for _, b := range byLabel {
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	}

	// Assign labelsPerClient labels to each client, cycling through a
	// shuffled label order so label popularity stays balanced.
	labelOrder := rng.Perm(ds.NumClasses())
	clientLabels := make([][]int, numClients)
	li := 0
	for c := 0; c < numClients; c++ {
		for k := 0; k < labelsPerClient; k++ {
			clientLabels[c] = append(clientLabels[c], labelOrder[li%len(labelOrder)])
			li++
		}
	}

	// Count how many clients want each label, then split each label bucket
	// into that many contiguous chunks.
	demand := make([]int, ds.NumClasses())
	for _, ls := range clientLabels {
		for _, l := range ls {
			demand[l]++
		}
	}
	next := make([]int, ds.NumClasses()) // next chunk index per label
	shards := make([][]int, numClients)
	for c := 0; c < numClients; c++ {
		for _, l := range clientLabels[c] {
			bucket := byLabel[l]
			chunk := len(bucket) / demand[l]
			start := next[l] * chunk
			end := start + chunk
			if next[l] == demand[l]-1 {
				end = len(bucket) // last taker absorbs the remainder
			}
			shards[c] = append(shards[c], bucket[start:end]...)
			next[l]++
		}
	}
	return shards
}

// PartitionDirichlet produces the other standard non-IID split of the FL
// literature: for every label, the examples are divided over clients with
// proportions drawn from a symmetric Dirichlet(alpha) distribution. Small
// alpha (e.g. 0.1) gives extreme skew; large alpha approaches IID. Unlike
// PartitionByLabel, every client can hold every label, just in very
// different proportions.
func PartitionDirichlet(ds Classification, numClients int, alpha float64, seed int64) [][]int {
	if numClients <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("data: PartitionDirichlet(%d clients, alpha=%v)", numClients, alpha))
	}
	rng := rand.New(rand.NewSource(seed))

	byLabel := make([][]int, ds.NumClasses())
	for i := 0; i < ds.Len(); i++ {
		l := ds.Label(i)
		byLabel[l] = append(byLabel[l], i)
	}
	shards := make([][]int, numClients)
	for _, bucket := range byLabel {
		rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
		props := dirichlet(rng, numClients, alpha)
		// Convert proportions to cumulative cut points over the bucket.
		pos := 0
		var acc float64
		for c := 0; c < numClients; c++ {
			acc += props[c]
			end := int(acc*float64(len(bucket)) + 0.5)
			if c == numClients-1 {
				end = len(bucket)
			}
			if end > len(bucket) {
				end = len(bucket)
			}
			if end > pos {
				shards[c] = append(shards[c], bucket[pos:end]...)
				pos = end
			}
		}
	}
	return shards
}

// dirichlet samples a symmetric Dirichlet(alpha) vector of length n using
// the Gamma(alpha,1) construction (Marsaglia-Tsang for alpha >= 1, with
// the boost transform for alpha < 1).
func dirichlet(rng *rand.Rand, n int, alpha float64) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Numerically degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * pow(u, 1/shape)
	}
	// Marsaglia & Tsang (2000).
	d := shape - 1.0/3
	c := 1 / sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && logf(u) < 0.5*x*x+d*(1-v+logf(v)) {
			return d * v
		}
	}
}

// LabelSet returns the sorted distinct labels present in shard.
func LabelSet(ds Classification, shard []int) []int {
	seen := make(map[int]bool)
	for _, i := range shard {
		seen[ds.Label(i)] = true
	}
	out := make([]int, 0, len(seen))
	for l := 0; l < ds.NumClasses(); l++ {
		if seen[l] {
			out = append(out, l)
		}
	}
	return out
}
