package data

import (
	"testing"
)

func TestGenerateTextBasics(t *testing.T) {
	txt := GenerateText(WikiTextLike(2000, 300, 1))
	if txt.Vocab() != 32 {
		t.Errorf("Vocab = %d", txt.Vocab())
	}
	if txt.Len() <= 0 {
		t.Fatal("no training windows")
	}
	for i := 0; i < txt.Len(); i++ {
		w := txt.Window(i)
		if len(w) < 2 {
			t.Fatalf("window %d has length %d", i, len(w))
		}
		for _, c := range w {
			if c < 0 || c >= txt.Vocab() {
				t.Fatalf("character %d out of vocab", c)
			}
		}
	}
	if txt.UniformPerplexity() != 32 {
		t.Errorf("UniformPerplexity = %v", txt.UniformPerplexity())
	}
}

func TestTextWindowsOverlap(t *testing.T) {
	cfg := WikiTextLike(1000, 100, 2)
	txt := GenerateText(cfg)
	w0 := txt.Window(0)
	w1 := txt.Window(1)
	// Hop is Window/2, so the second half of w0 equals the first half of w1.
	hop := cfg.Window / 2
	for i := 0; i < hop; i++ {
		if w0[hop+i] != w1[i] {
			t.Fatal("windows do not overlap as documented")
		}
	}
}

func TestTestWindows(t *testing.T) {
	cfg := WikiTextLike(1000, 200, 3)
	txt := GenerateText(cfg)
	tw := txt.TestWindows()
	if len(tw) == 0 {
		t.Fatal("no test windows")
	}
	for _, w := range tw {
		if len(w) != cfg.Window+1 {
			t.Fatalf("test window length %d, want %d", len(w), cfg.Window+1)
		}
	}
}

func TestTextDeterministic(t *testing.T) {
	a := GenerateText(WikiTextLike(500, 100, 7))
	b := GenerateText(WikiTextLike(500, 100, 7))
	for i := 0; i < a.Len(); i++ {
		wa, wb := a.Window(i), b.Window(i)
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatal("same seed produced different text")
			}
		}
	}
}

// TestTextHasStructure: the Markov stream must be far from uniform — a
// bigram model's empirical conditional entropy should be well below
// log2(vocab), otherwise the LM task cannot show perplexity improvements.
func TestTextHasStructure(t *testing.T) {
	txt := GenerateText(WikiTextLike(20000, 100, 4))
	// Count bigrams over the training stream via windows 0..Len-1.
	counts := make(map[[2]int]int)
	prevCounts := make(map[int]int)
	for i := 0; i < txt.Len(); i++ {
		w := txt.Window(i)
		// Use only the first hop of each window to avoid double counting.
		for j := 0; j+1 < len(w)/2; j++ {
			counts[[2]int{w[j], w[j+1]}]++
			prevCounts[w[j]]++
		}
	}
	// Most-likely-successor accuracy: structured text should beat 1/vocab
	// by a large factor.
	best := make(map[int]int)
	bestC := make(map[int]int)
	for bg, c := range counts {
		if c > bestC[bg[0]] {
			bestC[bg[0]] = c
			best[bg[0]] = bg[1]
		}
	}
	var hit, total int
	for bg, c := range counts {
		if best[bg[0]] == bg[1] {
			hit += c
		}
		total += c
	}
	accuracy := float64(hit) / float64(total)
	if accuracy < 0.2 { // uniform would give ~1/32 = 0.03
		t.Errorf("best-successor accuracy %.3f, text lacks structure", accuracy)
	}
}

func TestGenerateTextInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GenerateText(TextConfig{Vocab: 1, Length: 100, Window: 10})
}
