package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spyker-fl/spyker/internal/data"
)

// separablePoints builds k well-separated Gaussian blobs.
func separablePoints(rng *rand.Rand, k, perBlob, dim int) ([][]float64, []int) {
	points := make([][]float64, 0, k*perBlob)
	truth := make([]int, 0, k*perBlob)
	for b := 0; b < k; b++ {
		center := make([]float64, dim)
		center[b%dim] = 10 * float64(b+1)
		for i := 0; i < perBlob; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = center[d] + rng.NormFloat64()*0.3
			}
			points = append(points, p)
			truth = append(truth, b)
		}
	}
	return points, truth
}

func TestKMeansRecoversSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := separablePoints(rng, 3, 20, 4)
	_, assign := KMeans(points, 3, 1, 50)

	// Cluster labels are arbitrary; check that each true blob maps to a
	// single cluster and distinct blobs map to distinct clusters.
	blobCluster := map[int]int{}
	for i, a := range assign {
		b := truth[i]
		if prev, ok := blobCluster[b]; ok {
			if prev != a {
				t.Fatalf("blob %d split across clusters %d and %d", b, prev, a)
			}
		} else {
			blobCluster[b] = a
		}
	}
	seen := map[int]bool{}
	for _, c := range blobCluster {
		if seen[c] {
			t.Fatal("two blobs merged into one cluster")
		}
		seen[c] = true
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _ := separablePoints(rng, 4, 10, 3)
	_, a1 := KMeans(points, 4, 7, 50)
	_, a2 := KMeans(points, 4, 7, 50)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different clustering")
		}
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	points := [][]float64{{1, 0}, {0, 1}}
	centroids, assign := KMeans(points, 5, 1, 10)
	if len(centroids) != 2 || len(assign) != 2 {
		t.Errorf("k should clamp to n: %d centroids", len(centroids))
	}
}

func TestKMeansInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	KMeans(nil, 3, 1, 10)
}

func TestBalancedGroupsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		k := 2 + rng.Intn(4)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		groups := BalancedGroups(points, k, seed)
		if len(groups) != k {
			return false
		}
		seen := make(map[int]bool)
		maxSize := (n + k - 1) / k
		for _, g := range groups {
			if len(g) > maxSize {
				return false // balance violated
			}
			for _, p := range g {
				if p < 0 || p >= n || seen[p] {
					return false // not a partition
				}
				seen[p] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBalancedGroupsKeepSimilarTogether(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, truth := separablePoints(rng, 4, 10, 4)
	groups := BalancedGroups(points, 4, 3)
	// With equal blob sizes the balanced assignment should equal the
	// unconstrained clustering: each group holds exactly one blob.
	for _, g := range groups {
		if len(g) != 10 {
			t.Fatalf("group size %d, want 10", len(g))
		}
		blob := truth[g[0]]
		for _, p := range g {
			if truth[p] != blob {
				t.Fatalf("group mixes blobs %d and %d", blob, truth[p])
			}
		}
	}
}

func TestLabelHistograms(t *testing.T) {
	ds := data.GenerateImages(data.MNISTLike(100, 0, 1))
	shards := data.PartitionByLabel(ds, 10, 2, 1)
	hists := LabelHistograms(ds, shards)
	if len(hists) != 10 {
		t.Fatalf("hists = %d", len(hists))
	}
	for c, h := range hists {
		var sum float64
		nonzero := 0
		for _, v := range h {
			sum += v
			if v > 0 {
				nonzero++
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("client %d histogram sums to %v", c, sum)
		}
		if nonzero > 2 {
			t.Errorf("client %d has %d labels, partition promised <= 2", c, nonzero)
		}
	}
}
