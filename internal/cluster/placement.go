package cluster

import "github.com/spyker-fl/spyker/internal/geo"

// NearestBalanced places each client (given by its region) on its
// nearest server by modeled latency, breaking latency ties toward the
// least-loaded server. It is the shared placement heuristic of the
// geo-spread client assignment (internal/experiments) and of elastic
// client re-homing after a server leaves the ring (internal/spyker).
//
// servers lists the candidate server IDs (any stable IDs, not
// necessarily contiguous), serverRegion maps an ID to its region, and
// load carries each server's pre-existing client count — the function
// increments it as it assigns, so balancing accounts for both the
// existing population and the clients placed during this call. A nil
// load starts every server at zero. Returns one server ID per region
// entry (-1 if servers is empty).
func NearestBalanced(regions []geo.Region, servers []int, serverRegion func(int) geo.Region, latency geo.LatencyFunc, load map[int]int) []int {
	out := make([]int, len(regions))
	if len(servers) == 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	if load == nil {
		load = make(map[int]int, len(servers))
	}
	for i, r := range regions {
		best := servers[0]
		for _, si := range servers[1:] {
			ls := latency(r, serverRegion(si))
			lb := latency(r, serverRegion(best))
			if ls < lb-1e-12 || (ls < lb+1e-12 && load[si] < load[best]) {
				best = si
			}
		}
		out[i] = best
		load[best]++
	}
	return out
}
