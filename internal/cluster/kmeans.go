// Package cluster implements the client-clustering extension the paper
// names as future work (Sec. 7): grouping clients by the similarity of
// their data distributions so the client→server assignment can take data
// heterogeneity into account, not just geography. Clients are embedded as
// label histograms of their local shards and clustered with balanced
// k-means.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/spyker-fl/spyker/internal/data"
)

// LabelHistograms embeds every client as the normalized label histogram
// of its shard — the natural "data distribution" fingerprint for
// label-skewed federated data.
func LabelHistograms(ds data.Classification, shards [][]int) [][]float64 {
	out := make([][]float64, len(shards))
	for c, shard := range shards {
		h := make([]float64, ds.NumClasses())
		for _, i := range shard {
			h[ds.Label(i)]++
		}
		if len(shard) > 0 {
			for l := range h {
				h[l] /= float64(len(shard))
			}
		}
		out[c] = h
	}
	return out
}

// KMeans runs Lloyd's algorithm with k-means++ seeding and returns the
// final centroids and the cluster index of every point. It is
// deterministic for a given seed.
func KMeans(points [][]float64, k int, seed int64, iters int) (centroids [][]float64, assign []int) {
	if k <= 0 || len(points) == 0 {
		panic(fmt.Sprintf("cluster: KMeans with k=%d over %d points", k, len(points)))
	}
	if k > len(points) {
		k = len(points)
	}
	if iters <= 0 {
		iters = 50
	}
	rng := rand.New(rand.NewSource(seed))
	dim := len(points[0])
	centroids = seedPlusPlus(points, k, rng)
	assign = make([]int, len(points))

	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best := nearest(centroids, p)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids; empty clusters grab the farthest point.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[assign[i]]++
			for d, v := range p {
				sums[assign[i]][d] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far := farthestPoint(points, centroids, assign)
				assign[far] = c
				copy(centroids[c], points[far])
				changed = true
				continue
			}
			for d := range sums[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	return centroids, assign
}

// seedPlusPlus picks k initial centroids with the k-means++ scheme.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, clone(first))
	for len(centroids) < k {
		dists := make([]float64, len(points))
		var total float64
		for i, p := range points {
			d := dist2(p, centroids[nearest(centroids, p)])
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with existing centroids: duplicate one.
			centroids = append(centroids, clone(points[rng.Intn(len(points))]))
			continue
		}
		u := rng.Float64() * total
		var acc float64
		pick := len(points) - 1
		for i, d := range dists {
			acc += d
			if u < acc {
				pick = i
				break
			}
		}
		centroids = append(centroids, clone(points[pick]))
	}
	return centroids
}

// BalancedGroups clusters points into k groups of (near-)equal size:
// k-means establishes the geometry, then points are assigned greedily in
// order of assignment confidence with per-group capacity ceil(n/k). The
// balance constraint is what a multi-server deployment needs — every
// server must carry a similar client load (the paper's Tab. 7 shows what
// imbalance costs).
func BalancedGroups(points [][]float64, k int, seed int64) [][]int {
	if k <= 0 {
		panic("cluster: BalancedGroups with non-positive k")
	}
	n := len(points)
	if n == 0 {
		return make([][]int, k)
	}
	centroids, _ := KMeans(points, k, seed, 50)
	cap0 := (n + k - 1) / k

	// Order points by how strongly they prefer their best centroid over
	// their second-best; decisive points claim their cluster first.
	type pref struct {
		point  int
		margin float64
	}
	prefs := make([]pref, n)
	for i, p := range points {
		d := make([]float64, len(centroids))
		for c := range centroids {
			d[c] = dist2(p, centroids[c])
		}
		sorted := append([]float64(nil), d...)
		sort.Float64s(sorted)
		margin := math.Inf(1)
		if len(sorted) > 1 {
			margin = sorted[1] - sorted[0]
		}
		prefs[i] = pref{point: i, margin: margin}
	}
	sort.Slice(prefs, func(a, b int) bool {
		if prefs[a].margin != prefs[b].margin {
			return prefs[a].margin > prefs[b].margin
		}
		return prefs[a].point < prefs[b].point
	})

	groups := make([][]int, k)
	for _, pr := range prefs {
		p := points[pr.point]
		// Best centroid with remaining capacity.
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			if len(groups[c]) >= cap0 {
				continue
			}
			if d := dist2(p, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if best == -1 { // all full (can happen with rounding); take smallest
			for c := range groups {
				if best == -1 || len(groups[c]) < len(groups[best]) {
					best = c
				}
			}
		}
		groups[best] = append(groups[best], pr.point)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

func nearest(centroids [][]float64, p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ct := range centroids {
		if d := dist2(p, ct); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func farthestPoint(points, centroids [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		if d := dist2(p, centroids[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(a []float64) []float64 {
	return append([]float64(nil), a...)
}
