package fault_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// freePorts reserves n distinct localhost TCP ports by binding and
// immediately releasing them. Mildly racy by nature, but the window
// before the servers re-bind is milliseconds.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	ls := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range ls {
		_ = l.Close()
	}
	return addrs
}

// readCkpt loads one server's checkpoint file; ok is false while the
// file does not exist yet or a write races the read (CheckpointToFile
// renames atomically, so a successful decode is always a full snapshot).
func readCkpt(path string) (spyker.State, bool) {
	f, err := os.Open(path)
	if err != nil {
		return spyker.State{}, false
	}
	defer f.Close()
	st, err := live.ReadCheckpoint(f)
	if err != nil {
		return spyker.State{}, false
	}
	return st, true
}

// TestE2EProcessFailover is the multi-process acceptance scenario: three
// real spyker-live server processes plus one client process, all over
// TCP. The harness finds the token-holding server via its checkpoint
// file, SIGKILLs that OS process, waits for a surviving process to
// regenerate the token (visible as TokenRegens in its checkpoint),
// restarts the victim with -resume from its last checkpoint, and then
// requires cluster-wide SyncsTriggered to advance past the rejoin — full
// rounds need all three servers, so advancement proves the restarted
// process is back in the ring.
func TestE2EProcessFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process TCP test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "spyker-live")
	build := exec.Command("go", "build", "-o", bin, "github.com/spyker-fl/spyker/cmd/spyker-live")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building spyker-live: %v\n%s", err, out)
	}

	const n = 3
	addrs := freePorts(t, n)
	peers := strings.Join(addrs, ",")
	ckpt := func(i int) string { return filepath.Join(dir, fmt.Sprintf("s%d.gob", i)) }

	procs := make([]*fault.Proc, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-role", "server", "-id", fmt.Sprint(i), "-addr", addrs[i],
			"-peers", peers, "-clients", "6", "-seed", "1",
			"-checkpoint", ckpt(i), "-checkpoint-every", "150ms",
			"-token-timeout", "1.5", "-sync-retry", "0.75",
			"-reconnect-every", "200ms", "-duration", "0",
		}
		if i == 0 {
			args = append(args, "-token")
		}
		p, err := fault.StartProc(bin, args, filepath.Join(dir, fmt.Sprintf("s%d.log", i)))
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		defer p.Stop()
	}
	clients, err := fault.StartProc(bin, []string{
		"-role", "clients", "-peers", peers, "-clients", "6", "-seed", "1", "-duration", "0",
	}, filepath.Join(dir, "clients.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer clients.Stop()

	waitCkpt := func(what string, timeout time.Duration, cond func() (int, bool)) int {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			if v, ok := cond(); ok {
				return v
			}
			if time.Now().After(deadline) {
				for i := 0; i < n; i++ {
					if log, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("s%d.log", i))); err == nil {
						t.Logf("server %d log:\n%s", i, log)
					}
				}
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	totalSyncs := func() (int, int) { // (sum, number of readable checkpoints)
		sum, seen := 0, 0
		for i := 0; i < n; i++ {
			if st, ok := readCkpt(ckpt(i)); ok {
				sum += st.SyncsTriggered
				seen++
			}
		}
		return sum, seen
	}

	// Let the deployment synchronize a few times, then locate the token
	// holder through the checkpoint files.
	waitCkpt("initial synchronizations", 60*time.Second, func() (int, bool) {
		sum, seen := totalSyncs()
		return sum, seen == n && sum >= 3
	})
	victim := waitCkpt("a checkpoint showing the token holder", 30*time.Second, func() (int, bool) {
		for i := 0; i < n; i++ {
			if st, ok := readCkpt(ckpt(i)); ok && st.Token != nil {
				return i, true
			}
		}
		return 0, false
	})

	t.Logf("killing token-holding server process %d", victim)
	if err := procs[victim].Kill(); err != nil {
		t.Fatal(err)
	}

	// A surviving process must detect the silent ring and mint a
	// replacement token — observable in its periodic checkpoint.
	waitCkpt("token regeneration by a survivor", 30*time.Second, func() (int, bool) {
		for i := 0; i < n; i++ {
			if i == victim {
				continue
			}
			if st, ok := readCkpt(ckpt(i)); ok && st.TokenRegens > 0 {
				return st.TokenRegens, true
			}
		}
		return 0, false
	})
	syncsAtRestart, _ := totalSyncs()

	t.Logf("restarting process %d with -resume", victim)
	if err := procs[victim].Restart("-resume"); err != nil {
		t.Fatal(err)
	}

	// Post-rejoin: full rounds need all three processes again, so the
	// cluster-wide sync count must move past its downtime plateau.
	final := waitCkpt("synchronization to advance past the rejoin", 60*time.Second, func() (int, bool) {
		sum, seen := totalSyncs()
		return sum, seen == n && sum > syncsAtRestart+1
	})
	t.Logf("e2e failover: syncs %d (was %d when the victim restarted)", final, syncsAtRestart)
}
