package fault

import (
	"reflect"
	"testing"

	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/simulation"
	"github.com/spyker-fl/spyker/internal/transport"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"crash", Plan{Events: []Event{{At: 1, Kind: KindCrash, Server: 2, Duration: 5}}}, true},
		{"crash holder", Plan{Events: []Event{{At: 1, Kind: KindCrash, Server: TokenHolder}}}, true},
		{"crash out of range", Plan{Events: []Event{{At: 1, Kind: KindCrash, Server: 4}}}, false},
		{"negative at", Plan{Events: []Event{{At: -1, Kind: KindCrash, Server: 0}}}, false},
		{"unknown kind", Plan{Events: []Event{{At: 1, Kind: Kind(99)}}}, false},
		{"partition", Plan{Events: []Event{{At: 1, Kind: KindPartition, Src: 0, Dst: 1, Duration: 3}}}, true},
		{"partition zero window", Plan{Events: []Event{{At: 1, Kind: KindPartition, Src: 0, Dst: 1}}}, false},
		{"drop bad p", Plan{Events: []Event{{At: 1, Kind: KindLinkDrop, Src: 0, Dst: 1, Duration: 3, P: 1.5}}}, false},
		{"wildcard link", Plan{Events: []Event{{At: 1, Kind: KindLinkDelay, Src: Any, Dst: Any, Duration: 3, Extra: 0.2}}}, true},
		{"negative checkpoint", Plan{CheckpointEvery: -1}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate(4)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCrashPlanDeterministicAndSorted(t *testing.T) {
	a := CrashPlan(7, 4, 600, 30)
	b := CrashPlan(7, 4, 600, 30)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if len(a.Events) != 4 {
		t.Fatalf("got %d events", len(a.Events))
	}
	prev := 0.0
	for _, e := range a.Events {
		if e.Kind != KindCrash || e.Server != TokenHolder || e.Duration != 30 {
			t.Fatalf("unexpected event %+v", e)
		}
		if e.At < 0.2*600 || e.At >= 0.85*600 {
			t.Fatalf("crash at %v outside the middle window", e.At)
		}
		if e.At < prev {
			t.Fatalf("events not sorted: %v after %v", e.At, prev)
		}
		prev = e.At
	}
	if c := CrashPlan(8, 4, 600, 30); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}

// fakeCluster records injector calls.
type fakeCluster struct {
	n           int
	holder      int
	checkpoints []int
	crashes     []int
	restarts    []int
	drops       []int
	holds       bool
}

func (f *fakeCluster) NumServers() int  { return f.n }
func (f *fakeCluster) TokenHolder() int { return f.holder }
func (f *fakeCluster) Checkpoint(i int) { f.checkpoints = append(f.checkpoints, i) }
func (f *fakeCluster) Crash(i int)      { f.crashes = append(f.crashes, i) }
func (f *fakeCluster) Restart(i int)    { f.restarts = append(f.restarts, i) }
func (f *fakeCluster) DropToken(i int) bool {
	f.drops = append(f.drops, i)
	return f.holds
}

func TestSimInjectorCrashRestartCycle(t *testing.T) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	cl := &fakeCluster{n: 3, holder: 2}
	rec := obs.NewTracer(128)
	in, err := NewSimInjector(Plan{Events: []Event{
		{At: 10, Kind: KindCrash, Server: TokenHolder, Duration: 5},
	}}, sim, net, cl)
	if err != nil {
		t.Fatal(err)
	}
	in.Instrument(rec)
	in.Arm()
	sim.Run(100)

	// Crash-consistent mode (CheckpointEvery 0): checkpoint right before
	// the crash, restart Duration later.
	if !reflect.DeepEqual(cl.checkpoints, []int{2}) {
		t.Fatalf("checkpoints = %v", cl.checkpoints)
	}
	if !reflect.DeepEqual(cl.crashes, []int{2}) {
		t.Fatalf("crashes = %v", cl.crashes)
	}
	if !reflect.DeepEqual(cl.restarts, []int{2}) {
		t.Fatalf("restarts = %v", cl.restarts)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2 (crash+restart)", in.Injected())
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Note != "crash" || evs[1].Note != "restart" {
		t.Fatalf("fault events = %+v", evs)
	}
	if evs[0].Time != 10 || evs[1].Time != 15 {
		t.Fatalf("fault times = %v, %v", evs[0].Time, evs[1].Time)
	}
}

func TestSimInjectorPermanentCrashAndPeriodicCheckpoints(t *testing.T) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	cl := &fakeCluster{n: 2, holder: -1} // token in flight: falls back to 0
	in, err := NewSimInjector(Plan{
		CheckpointEvery: 40,
		Events:          []Event{{At: 50, Kind: KindCrash, Server: TokenHolder}},
	}, sim, net, cl)
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()
	sim.Run(100)

	if !reflect.DeepEqual(cl.crashes, []int{0}) {
		t.Fatalf("crashes = %v (holder fallback broken)", cl.crashes)
	}
	if len(cl.restarts) != 0 {
		t.Fatalf("zero-duration crash restarted: %v", cl.restarts)
	}
	// Periodic checkpoints at t=40 and t=80, all servers each time; no
	// crash-consistent snapshot since CheckpointEvery > 0.
	if !reflect.DeepEqual(cl.checkpoints, []int{0, 1, 0, 1}) {
		t.Fatalf("checkpoints = %v", cl.checkpoints)
	}
}

func TestSimInjectorTokenDrop(t *testing.T) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	cl := &fakeCluster{n: 3, holder: 1, holds: true}
	in, err := NewSimInjector(Plan{Events: []Event{
		{At: 5, Kind: KindTokenDrop, Server: TokenHolder},
	}}, sim, net, cl)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewTracer(16)
	in.Instrument(rec)
	in.Arm()
	sim.Run(10)
	if !reflect.DeepEqual(cl.drops, []int{1}) {
		t.Fatalf("drops = %v", cl.drops)
	}
	if evs := rec.Events(); len(evs) != 1 || evs[0].Note != "token-drop" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestSimInjectorPartitionWindow(t *testing.T) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	cl := &fakeCluster{n: 3}
	in, err := NewSimInjector(Plan{Events: []Event{
		{At: 10, Kind: KindPartition, Src: 0, Dst: 1, Duration: 10},
	}}, sim, net, cl)
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()

	s0 := geo.Endpoint{ID: obs.ServerNode + 0, Region: geo.Paris}
	s1 := geo.Endpoint{ID: obs.ServerNode + 1, Region: geo.Paris}
	s2 := geo.Endpoint{ID: obs.ServerNode + 2, Region: geo.Paris}
	c0 := geo.Endpoint{ID: 0, Region: geo.Paris}
	var got []string
	send := func(at float64, from, to geo.Endpoint, tag string) {
		sim.ScheduleAt(at, func() {
			net.Send(from, to, 10, geo.ServerServer, func() { got = append(got, tag) })
		})
	}
	send(5, s0, s1, "before")  // window not yet open
	send(15, s0, s1, "fwd")    // partitioned
	send(15, s1, s0, "rev")    // partition is bidirectional
	send(15, s0, s2, "other")  // different link, unaffected
	send(15, c0, s0, "client") // client traffic never matches server rules
	send(25, s0, s1, "after")  // window closed
	sim.Run(100)

	want := []string{"before", "other", "client", "after"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

func TestSimInjectorLinkDropDeterministic(t *testing.T) {
	run := func() []bool {
		sim := simulation.New()
		net := geo.NewNetwork(sim, geo.Config{})
		cl := &fakeCluster{n: 2}
		in, err := NewSimInjector(Plan{Seed: 42, Events: []Event{
			{At: 0, Kind: KindLinkDrop, Src: Any, Dst: Any, Duration: 1000, P: 0.5},
		}}, sim, net, cl)
		if err != nil {
			t.Fatal(err)
		}
		in.Arm()
		s0 := geo.Endpoint{ID: obs.ServerNode + 0, Region: geo.Paris}
		s1 := geo.Endpoint{ID: obs.ServerNode + 1, Region: geo.Paris}
		delivered := make([]bool, 40)
		for i := 0; i < 40; i++ {
			i := i
			sim.ScheduleAt(float64(i), func() {
				net.Send(s0, s1, 10, geo.ServerServer, func() { delivered[i] = true })
			})
		}
		sim.Run(2000)
		return delivered
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different drop patterns")
	}
	n := 0
	for _, d := range a {
		if d {
			n++
		}
	}
	if n == 0 || n == 40 {
		t.Fatalf("p=0.5 drop delivered %d/40 — rule not applied", n)
	}
}

func TestSimInjectorArmTwicePanics(t *testing.T) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	in, err := NewSimInjector(Plan{}, sim, net, &fakeCluster{n: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	in.Arm()
}

// sinkSender records sends for the live Conn wrapper tests.
type sinkSender struct {
	sent   []transport.Kind
	closed bool
}

func (s *sinkSender) Send(m *transport.Msg) error {
	s.sent = append(s.sent, m.Kind)
	return nil
}
func (s *sinkSender) Close() error {
	s.closed = true
	return nil
}

func TestConnForwardsByDefault(t *testing.T) {
	inner := &sinkSender{}
	c := WrapConn(inner, 1)
	if err := c.Send(&transport.Msg{Kind: transport.KindServerModel}); err != nil {
		t.Fatal(err)
	}
	if len(inner.sent) != 1 {
		t.Fatalf("sent %d", len(inner.sent))
	}
}

func TestConnDropAndSever(t *testing.T) {
	inner := &sinkSender{}
	c := WrapConn(inner, 1)
	c.SetDrop(1.0)
	for i := 0; i < 5; i++ {
		if err := c.Send(&transport.Msg{}); err != nil {
			t.Fatalf("drop must look like success, got %v", err)
		}
	}
	if len(inner.sent) != 0 {
		t.Fatalf("p=1 drop let %d through", len(inner.sent))
	}
	if err := c.Sever(); err != nil {
		t.Fatal(err)
	}
	if !inner.closed {
		t.Fatal("sever did not close the inner connection")
	}
	if err := c.Send(&transport.Msg{}); err != ErrSevered {
		t.Fatalf("post-sever Send = %v, want ErrSevered", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close after Sever = %v", err)
	}
}
