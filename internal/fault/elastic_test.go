package fault_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// desElastic is one small DES run with an optional membership plan: the
// elastic scenario starts with two servers and admits two more mid-run.
type desElastic struct {
	finalAcc   float64
	bestAcc    float64
	endServers int
	finalEpoch int
	syncsAfter int // sync rounds completed by the joiners
	params     [][]float64
	bytes      int
	events     []obs.Event
	accTrace   []float64
}

const (
	elasticHorizon = 50.0
	elasticJoin1At = 12.0
	elasticJoin2At = 18.0
)

func runDESElastic(t *testing.T, servers int, grow bool) desElastic {
	t.Helper()
	hyper := fl.DefaultHyper(16, servers)
	hyper.TokenTimeout = 5
	hyper.SyncRetry = 2.5
	tracer := obs.NewTracer(1 << 19)
	setup := experiments.Setup{
		Task: experiments.TaskMNIST, NumServers: servers, NumClients: 16,
		NonIIDLabels: 2, Seed: 11, Horizon: elasticHorizon, EvalEvery: 50,
		Hyper: &hyper, Trace: tracer, Metrics: obs.NewRegistry(),
	}
	if grow {
		plan := fault.Plan{Seed: 11, Events: []fault.Event{
			{At: elasticJoin1At, Kind: fault.KindJoin, Server: 0},
			{At: elasticJoin2At, Kind: fault.KindJoin, Server: 1},
		}}
		setup.Faults = &plan
	}
	env, rec, err := experiments.BuildEnv(setup)
	if err != nil {
		t.Fatal(err)
	}
	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	if setup.Faults != nil {
		inj, err := fault.NewSimInjector(*setup.Faults, env.Sim, env.Net, alg)
		if err != nil {
			t.Fatal(err)
		}
		inj.Instrument(env.Trace)
		inj.Arm()
	}
	env.Sim.Run(elasticHorizon)

	out := desElastic{
		finalAcc: rec.TraceData.Final().Acc,
		bestAcc:  rec.TraceData.BestAcc(),
		bytes:    env.Net.AllBytes(),
		events:   tracer.Events(),
	}
	for i, c := range alg.Servers() {
		if e := c.Epoch(); e > out.finalEpoch {
			out.finalEpoch = e
		}
		if m := c.Membership(); m.Count() > out.endServers {
			out.endServers = m.Count()
		}
		if i >= servers {
			out.syncsAfter += c.SyncsJoined()
		}
		out.params = append(out.params, append([]float64(nil), c.Params()...))
	}
	for _, p := range rec.TraceData {
		out.accTrace = append(out.accTrace, p.Acc)
	}
	return out
}

// TestDESElasticScaleOut is the elastic-membership acceptance scenario:
// a two-server ring admits two joiners mid-run. Both joins must actually
// fire, every server must converge on the same epoch-2 four-member ring,
// the joiners must participate in completed sync rounds after admission,
// and the run must end within 2 accuracy points of a fixed four-server
// ring trained under the identical workload.
func TestDESElasticScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	fixed4 := runDESElastic(t, 4, false)
	elastic := runDESElastic(t, 2, true)

	var joins int
	lastSyncEnd := 0.0
	for _, e := range elastic.events {
		switch e.Kind {
		case obs.KindFault:
			if strings.HasPrefix(e.Note, "join s") {
				joins++
			}
			if strings.Contains(e.Note, "join-miss") {
				t.Fatalf("planned join degraded to a miss: %q", e.Note)
			}
		case obs.KindSyncEnd:
			if e.Time > lastSyncEnd {
				lastSyncEnd = e.Time
			}
		}
	}
	if joins != 2 {
		t.Fatalf("join events = %d, want 2", joins)
	}
	if elastic.endServers != 4 {
		t.Fatalf("elastic ring ended with %d members, want 4", elastic.endServers)
	}
	if elastic.finalEpoch != 2 {
		t.Fatalf("final membership epoch = %d, want 2 (one bump per join)", elastic.finalEpoch)
	}
	if elastic.syncsAfter == 0 {
		t.Fatal("joiners never participated in a completed sync round")
	}
	if lastSyncEnd <= elasticJoin2At {
		t.Fatalf("last completed sync at %.1fs; none after the second join at %.1fs",
			lastSyncEnd, elasticJoin2At)
	}
	if diff := fixed4.bestAcc - elastic.bestAcc; diff > 0.02 {
		t.Fatalf("elastic best accuracy %.3f trails fixed-4 %.3f by %.3f (> 0.02)",
			elastic.bestAcc, fixed4.bestAcc, diff)
	}
	t.Logf("fixed-4 acc %.3f, elastic acc %.3f, joiner syncs %d, last sync %.1fs",
		fixed4.bestAcc, elastic.bestAcc, elastic.syncsAfter, lastSyncEnd)
}

// TestDESElasticDeterministic: the whole elastic run — both joins,
// snapshot bootstraps, client re-homing, every merged update — must be
// byte-reproducible from the seed.
func TestDESElasticDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	a := runDESElastic(t, 2, true)
	b := runDESElastic(t, 2, true)
	if a.bytes != b.bytes || a.finalEpoch != b.finalEpoch || a.endServers != b.endServers {
		t.Fatalf("run outcomes differ: bytes %d/%d, epoch %d/%d, members %d/%d",
			a.bytes, b.bytes, a.finalEpoch, b.finalEpoch, a.endServers, b.endServers)
	}
	if !reflect.DeepEqual(a.accTrace, b.accTrace) {
		t.Fatal("accuracy traces differ between identical elastic runs")
	}
	if !reflect.DeepEqual(a.params, b.params) {
		t.Fatal("final model parameters differ between identical elastic runs")
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		if !reflect.DeepEqual(a.events[i], b.events[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
}
