// Package fault is the failure-injection subsystem: a declarative,
// seeded fault plan (who fails, when, how, for how long) plus injectors
// that execute it against either runtime.
//
// In the discrete-event simulator the SimInjector schedules server
// crash/restart, token drops, and link partitions/latency-spikes/message
// drop-or-duplication through internal/simulation and internal/geo — the
// whole faulty run stays byte-deterministic given Plan.Seed, because every
// random draw comes from one seeded generator consumed in schedule order.
// In the live TCP runtime, Conn wraps a transport.Sender to drop, delay,
// or sever real connections, and Proc drives process-level kill and
// checkpoint-restore restart of spyker-live servers.
//
// Injection is one half of the story; the matching recovery machinery
// (silence-timeout token-loss detection, bid-based token regeneration,
// stuck-round retry) lives in internal/spyker — see Config.TokenTimeout
// and Config.SyncRetry there.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// Kind discriminates fault events.
type Kind int

// The fault vocabulary.
const (
	// KindCrash takes Server down at At: its volatile state (including a
	// held token) is lost and every message addressed to it while down is
	// discarded. It restarts Duration seconds later from its most recent
	// checkpoint (or from the initial model if none was taken); Duration 0
	// means the server never comes back.
	KindCrash Kind = iota + 1
	// KindTokenDrop silently discards the token held by Server at At — the
	// pure token-loss fault, isolating recovery from crash effects.
	KindTokenDrop
	// KindPartition drops every message between Src and Dst (both
	// directions) during [At, At+Duration).
	KindPartition
	// KindLinkDelay adds Extra seconds of one-way latency on the directed
	// link Src->Dst during [At, At+Duration).
	KindLinkDelay
	// KindLinkDrop drops each message on the directed link Src->Dst with
	// probability P during [At, At+Duration).
	KindLinkDrop
	// KindLinkDup duplicates each message on the directed link Src->Dst
	// with probability P during [At, At+Duration).
	KindLinkDup
	// KindJoin adds a new server to the ring at At, sponsored by Server
	// (or by whichever server holds the token, with the TokenHolder
	// sentinel): the sponsor hands the newcomer its model plus age
	// knowledge, bumps the membership epoch, and re-homes part of its
	// clients. Requires a cluster implementing Elastic.
	KindJoin
	// KindLeave removes Server from the ring at At: the token is handed
	// off or dropped, a survivor announces the epoch bump excluding it,
	// and its clients re-home to their nearest surviving servers.
	// Requires a cluster implementing Elastic.
	KindLeave
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindTokenDrop:
		return "token-drop"
	case KindPartition:
		return "partition"
	case KindLinkDelay:
		return "link-delay"
	case KindLinkDrop:
		return "link-drop"
	case KindLinkDup:
		return "link-dup"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TokenHolder is a sentinel for Event.Server: resolve the target to
// whichever server holds the token at injection time (falling back to
// server 0 if the token is in flight at that instant).
const TokenHolder = -1

// Any is a wildcard for Event.Src / Event.Dst: the link rule applies to
// every server on that side.
const Any = -1

// Event is one planned fault. Which fields are meaningful depends on
// Kind: Server targets crash/token faults (or TokenHolder), Src/Dst name
// the servers of a link fault (or Any), Duration bounds the fault window,
// Extra is KindLinkDelay's added latency, and P the per-message
// probability for KindLinkDrop/KindLinkDup.
type Event struct {
	At       float64
	Kind     Kind
	Server   int
	Src, Dst int
	Duration float64
	Extra    float64
	P        float64
}

// Plan is a declarative fault schedule. The zero plan injects nothing.
type Plan struct {
	// Seed feeds the injector's private generator; equal plans with equal
	// seeds reproduce the exact same faulty run.
	Seed int64
	// CheckpointEvery > 0 makes the sim injector checkpoint every server
	// periodically, so a crashed server restarts from its last periodic
	// snapshot and loses the progress since. Zero means crash-consistent:
	// a snapshot is taken immediately before each crash, isolating
	// token-loss recovery from state loss.
	CheckpointEvery float64
	Events          []Event
}

// Validate rejects structurally impossible plans: negative times or
// windows, probabilities outside [0,1], unknown kinds.
func (p *Plan) Validate(numServers int) error {
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("fault: negative CheckpointEvery %v", p.CheckpointEvery)
	}
	// Join events enlarge the server set at runtime, so later events may
	// legitimately reference IDs past the construction-time count.
	maxID := numServers
	for _, e := range p.Events {
		if e.Kind == KindJoin {
			maxID++
		}
	}
	for i, e := range p.Events {
		if e.At < 0 || e.Duration < 0 {
			return fmt.Errorf("fault: event %d has negative time window (at=%v dur=%v)", i, e.At, e.Duration)
		}
		switch e.Kind {
		case KindCrash, KindTokenDrop:
			if e.Server != TokenHolder && (e.Server < 0 || e.Server >= numServers) {
				return fmt.Errorf("fault: event %d targets server %d of %d", i, e.Server, numServers)
			}
		case KindJoin, KindLeave:
			if e.Server != TokenHolder && (e.Server < 0 || e.Server >= maxID) {
				return fmt.Errorf("fault: event %d targets server %d of at most %d (with joins)", i, e.Server, maxID)
			}
		case KindPartition, KindLinkDelay, KindLinkDrop, KindLinkDup:
			for _, s := range [2]int{e.Src, e.Dst} {
				if s != Any && (s < 0 || s >= numServers) {
					return fmt.Errorf("fault: event %d link endpoint %d of %d servers", i, s, numServers)
				}
			}
			if e.P < 0 || e.P > 1 {
				return fmt.Errorf("fault: event %d probability %v outside [0,1]", i, e.P)
			}
			if e.Duration == 0 {
				return fmt.Errorf("fault: event %d link fault with zero duration", i)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// CrashPlan generates a plan with `crashes` token-holder crashes spread
// over the middle of [0, horizon): crash times are drawn uniformly from
// [0.2·horizon, 0.85·horizon) by a generator seeded with seed, sorted,
// and each takes down whichever server holds the token at that moment for
// `downtime` seconds. Deterministic: equal arguments, equal plan.
func CrashPlan(seed int64, crashes int, horizon, downtime float64) Plan {
	rng := rand.New(rand.NewSource(seed))
	times := make([]float64, crashes)
	for i := range times {
		times[i] = (0.2 + 0.65*rng.Float64()) * horizon
	}
	sort.Float64s(times)
	p := Plan{Seed: seed}
	for _, at := range times {
		p.Events = append(p.Events, Event{
			At: at, Kind: KindCrash, Server: TokenHolder, Duration: downtime,
		})
	}
	return p
}
