package fault_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/fault"
)

// TestE2EMonitorFailover is the cluster-monitoring acceptance scenario:
// three spyker-live server processes (each serving /debug/telemetry) and
// one spyker-mon process watching them. The harness SIGKILLs the
// token-holding server; the monitor must flip healthy -> stalled with a
// token-silence alert while the ring is stuck, and back to healthy after
// the victim restarts with -resume.
func TestE2EMonitorFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process TCP test skipped in -short mode")
	}
	dir := t.TempDir()
	liveBin := filepath.Join(dir, "spyker-live")
	monBin := filepath.Join(dir, "spyker-mon")
	for bin, pkg := range map[string]string{
		liveBin: "github.com/spyker-fl/spyker/cmd/spyker-live",
		monBin:  "github.com/spyker-fl/spyker/cmd/spyker-mon",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const n = 3
	ports := freePorts(t, 2*n) // transport + debug per server
	addrs, debugs := ports[:n], ports[n:]
	peers := strings.Join(addrs, ",")
	ckpt := func(i int) string { return filepath.Join(dir, fmt.Sprintf("s%d.gob", i)) }

	procs := make([]*fault.Proc, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-role", "server", "-id", fmt.Sprint(i), "-addr", addrs[i],
			"-peers", peers, "-clients", "6", "-seed", "1",
			"-checkpoint", ckpt(i), "-checkpoint-every", "150ms",
			"-token-timeout", "1.5", "-sync-retry", "0.75",
			"-reconnect-every", "200ms", "-duration", "0",
			"-debug-addr", debugs[i],
		}
		if i == 0 {
			args = append(args, "-token")
		}
		p, err := fault.StartProc(liveBin, args, filepath.Join(dir, fmt.Sprintf("s%d.log", i)))
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		defer p.Stop()
	}
	clients, err := fault.StartProc(liveBin, []string{
		"-role", "clients", "-peers", peers, "-clients", "6", "-seed", "1", "-duration", "0",
	}, filepath.Join(dir, "clients.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer clients.Stop()

	monLog := filepath.Join(dir, "mon.log")
	mon, err := fault.StartProc(monBin, []string{
		"-targets", strings.Join(debugs, ","),
		"-every", "200ms", "-token-timeout", "1.5", "-duration", "0",
	}, monLog)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	waitLog := func(what, substr string, timeout time.Duration) string {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			log, _ := os.ReadFile(monLog)
			if strings.Contains(string(log), substr) {
				return string(log)
			}
			if time.Now().After(deadline) {
				t.Logf("monitor log:\n%s", log)
				for i := 0; i < n; i++ {
					if sl, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("s%d.log", i))); err == nil {
						t.Logf("server %d log:\n%s", i, sl)
					}
				}
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// The ring must circulate and the monitor must see it (no transition
	// line yet — the monitor starts healthy and stays there).
	victim := -1
	deadline := time.Now().Add(60 * time.Second)
	for victim < 0 {
		for i := 0; i < n; i++ {
			if st, ok := readCkpt(ckpt(i)); ok && st.Token != nil && st.SyncsTriggered >= 2 {
				victim = i
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for a token-holding checkpoint")
		}
		time.Sleep(100 * time.Millisecond)
	}

	t.Logf("killing token-holding server process %d", victim)
	if err := procs[victim].Kill(); err != nil {
		t.Fatal(err)
	}

	// Silence threshold = 2 x 1.5s: the monitor must call the stall and
	// name the rule.
	out := waitLog("stall detection", "health: healthy -> stalled", 30*time.Second)
	if !strings.Contains(out, "token-silence") {
		t.Fatalf("stall transition does not name token-silence:\n%s", out)
	}

	t.Logf("restarting process %d with -resume", victim)
	if err := procs[victim].Restart("-resume"); err != nil {
		t.Fatal(err)
	}

	out = waitLog("recovery detection", "health: stalled -> healthy", 60*time.Second)
	stalledAt := strings.Index(out, "health: healthy -> stalled")
	healthyAt := strings.Index(out, "health: stalled -> healthy")
	if stalledAt < 0 || healthyAt < stalledAt {
		t.Fatalf("transitions out of order:\n%s", out)
	}
	t.Logf("monitor arc complete:\n%s", out)
}
