package fault_test

import (
	"math"
	"reflect"
	"testing"

	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// desFailover is one small DES run with token-loss recovery armed,
// optionally crashing the token holder mid-run.
type desFailover struct {
	finalAcc float64
	bestAcc  float64
	regens   int
	params   [][]float64
	bytes    int
	events   []obs.Event
	accTrace []float64
}

const (
	desHorizon  = 40.0
	desCrashAt  = 15.0
	desDowntime = 8.0
)

func runDESFailover(t *testing.T, crash bool) desFailover {
	t.Helper()
	hyper := fl.DefaultHyper(12, 3)
	hyper.TokenTimeout = 4
	hyper.SyncRetry = 2
	tracer := obs.NewTracer(1 << 15)
	setup := experiments.Setup{
		Task: experiments.TaskMNIST, NumServers: 3, NumClients: 12,
		NonIIDLabels: 2, Seed: 7, Horizon: desHorizon, EvalEvery: 50,
		Hyper: &hyper, Trace: tracer, Metrics: obs.NewRegistry(),
	}
	if crash {
		plan := fault.Plan{Seed: 7, Events: []fault.Event{
			{At: desCrashAt, Kind: fault.KindCrash, Server: fault.TokenHolder, Duration: desDowntime},
		}}
		setup.Faults = &plan
	}
	env, rec, err := experiments.BuildEnv(setup)
	if err != nil {
		t.Fatal(err)
	}
	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	if setup.Faults != nil {
		inj, err := fault.NewSimInjector(*setup.Faults, env.Sim, env.Net, alg)
		if err != nil {
			t.Fatal(err)
		}
		inj.Instrument(env.Trace)
		inj.Arm()
	}
	env.Sim.Run(desHorizon)

	out := desFailover{
		finalAcc: rec.TraceData.Final().Acc,
		bestAcc:  rec.TraceData.BestAcc(),
		bytes:    env.Net.AllBytes(),
		events:   tracer.Events(),
	}
	for _, c := range alg.Servers() {
		out.regens += c.TokenRegens()
		out.params = append(out.params, append([]float64(nil), c.Params()...))
	}
	for _, p := range rec.TraceData {
		out.accTrace = append(out.accTrace, p.Acc)
	}
	return out
}

// TestDESFailoverScenario is the tentpole acceptance scenario: crash the
// token holder mid-run, and the ring must detect the silence, regenerate
// the token with a strictly higher bid, discard the stale survivor when
// the restarted server resurfaces it from its checkpoint, and keep
// synchronizing — at an accuracy within 2 points of the fault-free run.
func TestDESFailoverScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	clean := runDESFailover(t, false)
	faulty := runDESFailover(t, true)

	// The fault actually fired: crash + restart events at the planned times.
	var crashes, restarts, regenEvents, retireEvents int
	maxBidBeforeCrash, minRegenBid := 0, math.MaxInt
	lastSyncEnd := 0.0
	for _, e := range faulty.events {
		switch e.Kind {
		case obs.KindFault:
			switch e.Note {
			case "crash":
				crashes++
			case "restart":
				restarts++
			}
		case obs.KindTokenRegen:
			regenEvents++
			if e.Bid < minRegenBid {
				minRegenBid = e.Bid
			}
		case obs.KindTokenRetire:
			retireEvents++
		case obs.KindSyncEnd:
			if e.Time > lastSyncEnd {
				lastSyncEnd = e.Time
			}
			if e.Time < desCrashAt && e.Bid > maxBidBeforeCrash {
				maxBidBeforeCrash = e.Bid
			}
		}
	}
	if crashes != 1 || restarts != 1 {
		t.Fatalf("crash/restart events = %d/%d, want 1/1", crashes, restarts)
	}
	if regenEvents == 0 || faulty.regens == 0 {
		t.Fatal("token loss was never detected: no regeneration happened")
	}
	if minRegenBid <= maxBidBeforeCrash {
		t.Fatalf("regenerated bid %d does not exceed the pre-crash round bid %d",
			minRegenBid, maxBidBeforeCrash)
	}
	if retireEvents == 0 {
		t.Fatal("no stale token was ever retired — the pre-crash survivor leaked")
	}
	// Synchronization resumed after the restart, not just before the crash.
	if rejoined := desCrashAt + desDowntime; lastSyncEnd <= rejoined {
		t.Fatalf("last completed sync at %.1fs; none after the restart at %.1fs",
			lastSyncEnd, rejoined)
	}
	// Accuracy within 2 points of the fault-free reference.
	if diff := clean.bestAcc - faulty.bestAcc; diff > 0.02 {
		t.Fatalf("faulty best accuracy %.3f trails fault-free %.3f by %.3f (> 0.02)",
			faulty.bestAcc, clean.bestAcc, diff)
	}
	t.Logf("clean acc %.3f, faulty acc %.3f, regens %d, retires %d",
		clean.bestAcc, faulty.bestAcc, faulty.regens, retireEvents)
}

// nopOutbound absorbs a restored core's sends; the equivalence test only
// inspects state, never traffic.
type nopOutbound struct{}

func (nopOutbound) ReplyClient(int, []float64, float64, float64)                     {}
func (nopOutbound) BroadcastModel([]float64, float64, int, []int64, ring.Membership) {}
func (nopOutbound) BroadcastAge(float64, ring.Membership)                            {}
func (nopOutbound) SendToken(spyker.Token, int)                                      {}

// TestCheckpointRestoreEquivalence snapshots a DES server in the middle
// of a faulty run — mid-synchronization, recovery armed, real traffic in
// flight — restores a fresh core from the snapshot, and requires the
// restored core's own snapshot to round-trip exactly: model, ages,
// token, dedup sets, decay counters, frontier, and the recovery state.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	hyper := fl.DefaultHyper(12, 3)
	hyper.TokenTimeout = 4
	hyper.SyncRetry = 2
	setup := experiments.Setup{
		Task: experiments.TaskMNIST, NumServers: 3, NumClients: 12,
		NonIIDLabels: 2, Seed: 7, Horizon: 20, EvalEvery: 50, Hyper: &hyper,
	}
	env, _, err := experiments.BuildEnv(setup)
	if err != nil {
		t.Fatal(err)
	}
	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	// Sample until the token is at rest at some server (it spends much of
	// its time in flight between rounds); the first such instant freezes
	// all three states.
	var snaps []spyker.State
	capture := func() {
		if snaps != nil {
			return
		}
		held := false
		for _, core := range alg.Servers() {
			if core.HasToken() {
				held = true
			}
		}
		if !held {
			return
		}
		for _, core := range alg.Servers() {
			var st spyker.State
			core.SnapshotInto(&st)
			snaps = append(snaps, st)
		}
	}
	for at := 5.0; at < 18; at += 0.25 {
		env.Sim.ScheduleAt(at, capture)
	}
	env.Sim.Run(20)
	if len(snaps) != 3 {
		t.Fatalf("captured %d mid-run snapshots, want 3", len(snaps))
	}
	sawToken := false
	for i, st := range snaps {
		if st.Token != nil {
			sawToken = true
		}
		restored, err := spyker.RestoreServerCore(st, nopOutbound{})
		if err != nil {
			t.Fatalf("restore server %d: %v", i, err)
		}
		var again spyker.State
		restored.SnapshotInto(&again)
		if !reflect.DeepEqual(st, again) {
			t.Errorf("server %d state does not round-trip through restore:\n before %+v\n after  %+v",
				i, st, again)
		}
	}
	if !sawToken {
		t.Error("no mid-run snapshot held the token — the round-trip never covered the token path")
	}
}

// TestDESFailoverDeterministic: the whole faulty run — crash, recovery,
// every merged update — must be byte-reproducible from the seed.
func TestDESFailoverDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	a := runDESFailover(t, true)
	b := runDESFailover(t, true)
	if a.regens != b.regens || a.bytes != b.bytes {
		t.Fatalf("run outcomes differ: regens %d/%d, bytes %d/%d",
			a.regens, b.regens, a.bytes, b.bytes)
	}
	if !reflect.DeepEqual(a.accTrace, b.accTrace) {
		t.Fatal("accuracy traces differ between identical faulty runs")
	}
	if !reflect.DeepEqual(a.params, b.params) {
		t.Fatal("final model parameters differ between identical faulty runs")
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		ea, eb := a.events[i], b.events[i]
		// Front is a per-event slice; compare the full structs via
		// DeepEqual to cover it too.
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}
