package fault_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/fault"
)

// TestE2EProcessHotAdd is the multi-process elastic-membership smoke:
// two real spyker-live server processes train with a client process,
// then a third server process hot-adds itself with -join, knowing only
// the sponsor's address. The harness watches the periodic checkpoint
// files: every process — the sponsor, the server the joiner never
// dialed first, and the joiner itself — must converge on the same
// three-member epoch-1 ring, and the joiner must complete sync rounds
// of its own, which proves it was wired into full token rounds.
func TestE2EProcessHotAdd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process TCP test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "spyker-live")
	build := exec.Command("go", "build", "-o", bin, "github.com/spyker-fl/spyker/cmd/spyker-live")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building spyker-live: %v\n%s", err, out)
	}

	const n = 2
	addrs := freePorts(t, n)
	peers := strings.Join(addrs, ",")
	ckpt := func(i int) string { return filepath.Join(dir, fmt.Sprintf("s%d.gob", i)) }
	logf := func(name string) string { return filepath.Join(dir, name+".log") }

	for i := 0; i < n; i++ {
		args := []string{
			"-role", "server", "-id", fmt.Sprint(i), "-addr", addrs[i],
			"-peers", peers, "-clients", "6", "-seed", "1",
			"-checkpoint", ckpt(i), "-checkpoint-every", "150ms",
			"-token-timeout", "1.5", "-sync-retry", "0.75",
			"-reconnect-every", "200ms", "-duration", "0",
		}
		if i == 0 {
			args = append(args, "-token")
		}
		p, err := fault.StartProc(bin, args, logf(fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
	}
	clients, err := fault.StartProc(bin, []string{
		"-role", "clients", "-peers", peers, "-clients", "6", "-seed", "1", "-duration", "0",
	}, logf("clients"))
	if err != nil {
		t.Fatal(err)
	}
	defer clients.Stop()

	wait := func(what string, timeout time.Duration, cond func() (int, bool)) int {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			if v, ok := cond(); ok {
				return v
			}
			if time.Now().After(deadline) {
				for _, name := range []string{"s0", "s1", "joiner"} {
					if log, err := os.ReadFile(logf(name)); err == nil {
						t.Logf("%s log:\n%s", name, log)
					}
				}
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Let the fixed 2-ring synchronize before growing it.
	syncsBefore := wait("initial synchronizations", 60*time.Second, func() (int, bool) {
		sum, seen := 0, 0
		for i := 0; i < n; i++ {
			if st, ok := readCkpt(ckpt(i)); ok {
				sum += st.SyncsTriggered
				seen++
			}
		}
		return sum, seen == n && sum >= 3
	})

	// Hot-add: the joiner process knows only the sponsor's address — the
	// sponsor assigns its ID and ships model + membership in the reply.
	jckpt := filepath.Join(dir, "joiner.gob")
	joiner, err := fault.StartProc(bin, []string{
		"-role", "server", "-join", addrs[0],
		"-checkpoint", jckpt, "-checkpoint-every", "150ms",
		"-reconnect-every", "200ms", "-duration", "0",
	}, logf("joiner"))
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()

	ckpts := []string{ckpt(0), ckpt(1), jckpt}
	wait("all three processes to adopt the epoch-1 three-member ring", 30*time.Second, func() (int, bool) {
		for _, path := range ckpts {
			st, ok := readCkpt(path)
			if !ok || st.Mem == nil || st.Mem.Epoch != 1 || st.Mem.Count() != 3 {
				return 0, false
			}
		}
		return 0, true
	})

	// Full rounds now need all three broadcasts, so joiner participation
	// plus cluster-wide advancement proves the grown ring is complete.
	wait("the joiner to complete sync rounds", 30*time.Second, func() (int, bool) {
		st, ok := readCkpt(jckpt)
		return st.SyncsJoined, ok && st.SyncsJoined > 0
	})
	final := wait("the grown ring to keep synchronizing", 60*time.Second, func() (int, bool) {
		sum, seen := 0, 0
		for _, path := range ckpts {
			if st, ok := readCkpt(path); ok {
				sum += st.SyncsTriggered
				seen++
			}
		}
		return sum, seen == len(ckpts) && sum > syncsBefore+1
	})
	st, _ := readCkpt(jckpt)
	t.Logf("e2e hot-add: ring %v, joiner id %d, joiner syncs %d, cluster syncs %d (was %d)",
		st.Mem, st.Config.ID, st.SyncsJoined, final, syncsBefore)
}
