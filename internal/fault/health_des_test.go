package fault_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/health"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// runDESFailoverWithHealth mirrors runDESFailover(t, true) but attaches
// the online health evaluator as an extra passive sink next to the
// tracer — the DES-consumer deployment mode of the health plane.
func runDESFailoverWithHealth(t *testing.T) ([]obs.Event, *health.Sink) {
	t.Helper()
	hyper := fl.DefaultHyper(12, 3)
	hyper.TokenTimeout = 4
	hyper.SyncRetry = 2
	tracer := obs.NewTracer(1 << 15)
	sink := health.NewSink(health.New(health.Config{TokenTimeout: hyper.TokenTimeout}))
	setup := experiments.Setup{
		Task: experiments.TaskMNIST, NumServers: 3, NumClients: 12,
		NonIIDLabels: 2, Seed: 7, Horizon: desHorizon, EvalEvery: 50,
		Hyper: &hyper, Trace: obs.Multi(tracer, sink), Metrics: obs.NewRegistry(),
	}
	plan := fault.Plan{Seed: 7, Events: []fault.Event{
		{At: desCrashAt, Kind: fault.KindCrash, Server: fault.TokenHolder, Duration: desDowntime},
	}}
	setup.Faults = &plan
	env, _, err := experiments.BuildEnv(setup)
	if err != nil {
		t.Fatal(err)
	}
	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewSimInjector(plan, env.Sim, env.Net, alg)
	if err != nil {
		t.Fatal(err)
	}
	inj.Instrument(env.Trace)
	inj.Arm()
	env.Sim.Run(desHorizon)
	return tracer.Events(), sink
}

// TestDESHealthStallDetection crashes the token holder in the DES and
// checks the health plane end to end: attached online as a passive sink
// it must raise the token-silence stall while the ring is stuck on the
// dead member's round, clear it once the restarted server lets the
// round finish, and — being passive — leave the protocol's event stream
// byte-identical to a run without it. The offline path (health.Run over
// the recorded trace) must reach the same verdict.
func TestDESHealthStallDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	baseline := runDESFailover(t, true)
	events, sink := runDESFailoverWithHealth(t)

	// Passivity: the evaluator observed everything without perturbing
	// the schedule — identical traces with and without it attached.
	if !reflect.DeepEqual(baseline.events, events) {
		t.Fatalf("attaching the health sink changed the event stream (%d vs %d events)",
			len(baseline.events), len(events))
	}

	checkStall := func(name string, alerts []health.Alert) {
		t.Helper()
		var stall *health.Alert
		for i := range alerts {
			if alerts[i].Rule == health.RuleTokenSilence && alerts[i].Raised > desCrashAt {
				stall = &alerts[i]
				break
			}
		}
		if stall == nil {
			t.Fatalf("%s: no token-silence alert after the crash (alerts: %+v)", name, alerts)
		}
		if stall.Severity != health.Stalled {
			t.Errorf("%s: stall severity = %v", name, stall.Severity)
		}
		// The ring stops circulating at the crash; the alert fires once
		// silence exceeds 2 x TokenTimeout, i.e. within the downtime
		// window, never before the crash.
		if stall.Raised <= desCrashAt || stall.Raised > desCrashAt+desDowntime+2 {
			t.Errorf("%s: stall raised at %.2fs, want in (%.0f, %.0f]",
				name, stall.Raised, desCrashAt, desCrashAt+desDowntime+2)
		}
		if stall.Active {
			t.Errorf("%s: stall never cleared", name)
		} else if stall.Cleared < desCrashAt+desDowntime {
			t.Errorf("%s: stall cleared at %.2fs, before the victim restarted at %.0fs",
				name, stall.Cleared, desCrashAt+desDowntime)
		}
		if !strings.Contains(stall.Detail, "token") {
			t.Errorf("%s: alert detail does not name the token: %q", name, stall.Detail)
		}
	}

	// Online (sink) and offline (replay) must agree.
	checkStall("online sink", sink.Alerts())
	if got := sink.State(); got != health.Healthy {
		t.Errorf("online state after recovery = %v", got)
	}
	offline := health.Run(events, health.Config{TokenTimeout: 4})
	checkStall("offline replay", offline.Alerts())
	if got := offline.State(); got != health.Healthy {
		t.Errorf("offline state after recovery = %v", got)
	}

	// Offline calibration from the trace alone must land near the
	// configured 4s timeout's detection behaviour: the calibrated run
	// still sees the stall.
	calibrated := health.Run(events, health.Config{})
	checkStall("calibrated replay", calibrated.Alerts())
}
