package fault

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Proc drives one real spyker-live server process for live failure
// injection: start it, kill it without warning, and restart it (the
// caller passes -resume flags pointing at its checkpoint). This is the
// process-level counterpart of SimInjector's KindCrash.
type Proc struct {
	bin string
	log *os.File

	mu   sync.Mutex
	args []string   //spyker:guardedby(mu) — Restart appends; start snapshots
	cmd  *exec.Cmd  //spyker:guardedby(mu)
	done chan error //spyker:guardedby(mu)
}

// StartProc launches bin with args, appending stdout+stderr to logPath
// (created if missing), and returns a handle for killing and restarting
// it.
func StartProc(bin string, args []string, logPath string) (*Proc, error) {
	log, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: open log: %w", err)
	}
	p := &Proc{bin: bin, args: args, log: log}
	if err := p.start(); err != nil {
		log.Close()
		return nil, err
	}
	return p, nil
}

func (p *Proc) start() error {
	// Snapshot the argument list under the lock: Restart appends to it
	// concurrently with nothing else, but the discipline is uniform.
	p.mu.Lock()
	args := append([]string(nil), p.args...)
	p.mu.Unlock()
	cmd := exec.Command(p.bin, args...)
	cmd.Stdout = p.log
	cmd.Stderr = p.log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fault: start %s: %w", p.bin, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	p.mu.Lock()
	p.cmd, p.done = cmd, done
	p.mu.Unlock()
	return nil
}

// Kill sends SIGKILL — no shutdown handshake, no flush; the process dies
// exactly like a machine losing power — and reaps the process.
func (p *Proc) Kill() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("fault: kill: process not running")
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("fault: kill: %w", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("fault: kill: process did not exit")
	}
	return nil
}

// Restart relaunches the process with extra arguments appended to the
// original ones (typically a -resume flag pointing at the checkpoint the
// killed instance left behind).
func (p *Proc) Restart(extraArgs ...string) error {
	p.mu.Lock()
	p.args = append(p.args, extraArgs...)
	p.mu.Unlock()
	return p.start()
}

// Stop terminates the process if still running and releases the log
// file. Safe to call after Kill.
func (p *Proc) Stop() {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Signal(syscall.SIGKILL)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
		}
	}
	p.log.Close()
}
