package fault

import (
	"fmt"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/simulation"
)

// Cluster is the control surface a simulated server cluster exposes to
// the injector. spyker.Algorithm implements it.
type Cluster interface {
	// NumServers reports the cluster size.
	NumServers() int
	// TokenHolder reports which server currently holds the token, or -1
	// if none does (token in flight, or lost).
	TokenHolder() int
	// Checkpoint snapshots server i's current state as its restart point.
	Checkpoint(i int)
	// Crash takes server i down: volatile state (held token included) is
	// lost and deliveries addressed to it are discarded until Restart.
	Crash(i int)
	// Restart brings a crashed server i back from its latest checkpoint,
	// or from its initial state if it was never checkpointed.
	Restart(i int)
	// DropToken discards the token if server i holds it, reporting
	// whether it did.
	DropToken(i int) bool
}

// Elastic is the optional membership control surface for KindJoin and
// KindLeave events. A cluster that also implements it can grow and
// shrink its server ring at runtime; spyker.Algorithm does.
type Elastic interface {
	// Join adds a new server sponsored by the given member (falling back
	// to any live member if it is gone) and returns its stable ID, or -1
	// when no live sponsor exists.
	Join(sponsor int) int
	// Leave removes server target from the ring for good, reporting
	// whether it was live to remove.
	Leave(target int) bool
}

// linkRule is one compiled time-windowed link fault.
type linkRule struct {
	kind     Kind
	src, dst int // server indices, or Any
	from, to float64
	extra    float64
	p        float64
}

// matches reports whether the rule covers a message from endpoint src to
// endpoint dst (geo endpoint IDs; servers carry the obs.ServerNode
// offset). Link rules only ever cover server-server traffic; partitions
// match both directions.
func (r *linkRule) matches(srcID, dstID int) bool {
	if srcID < obs.ServerNode || dstID < obs.ServerNode {
		return false
	}
	s, d := srcID-obs.ServerNode, dstID-obs.ServerNode
	fwd := (r.src == Any || r.src == s) && (r.dst == Any || r.dst == d)
	if r.kind == KindPartition {
		rev := (r.src == Any || r.src == d) && (r.dst == Any || r.dst == s)
		return fwd || rev
	}
	return fwd
}

// SimInjector executes a Plan against the discrete-event runtime: crash,
// restart, checkpoint, and token-drop events are scheduled on the
// simulator, and link faults are applied through the geo network's
// perturb hook. All randomness comes from one generator seeded with
// Plan.Seed and consumed in schedule order, so runs are byte-reproducible.
type SimInjector struct {
	plan    Plan
	sim     *simulation.Sim
	net     *geo.Network
	cluster Cluster
	rng     *rand.Rand
	rules   []linkRule
	sink    obs.Sink

	injected int
	armed    bool
}

// NewSimInjector builds an injector for the given runtime. The plan is
// validated against the cluster size. Nothing is scheduled until Arm.
func NewSimInjector(plan Plan, sim *simulation.Sim, net *geo.Network, cluster Cluster) (*SimInjector, error) {
	if err := plan.Validate(cluster.NumServers()); err != nil {
		return nil, err
	}
	if _, ok := cluster.(Elastic); !ok {
		for i, e := range plan.Events {
			if e.Kind == KindJoin || e.Kind == KindLeave {
				return nil, fmt.Errorf("fault: event %d is %v but the cluster does not support elastic membership", i, e.Kind)
			}
		}
	}
	return &SimInjector{
		plan:    plan,
		sim:     sim,
		net:     net,
		cluster: cluster,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		sink:    obs.Nop{},
	}, nil
}

// Instrument makes the injector emit obs.KindFault events as faults are
// applied. Must be called before Arm to cover everything.
func (in *SimInjector) Instrument(sink obs.Sink) {
	if sink == nil {
		sink = obs.Nop{}
	}
	in.sink = sink
}

// Injected reports how many fault events have been applied so far.
func (in *SimInjector) Injected() int { return in.injected }

// Arm schedules every planned event and installs the network perturb
// hook if the plan contains link faults. Call once, before Sim.Run.
func (in *SimInjector) Arm() {
	if in.armed {
		panic("fault: SimInjector armed twice")
	}
	in.armed = true
	for _, e := range in.plan.Events {
		switch e.Kind {
		case KindCrash:
			ev := e
			in.sim.ScheduleAt(ev.At, func() { in.crash(ev) })
		case KindTokenDrop:
			ev := e
			in.sim.ScheduleAt(ev.At, func() { in.dropToken(ev) })
		case KindJoin, KindLeave:
			ev := e
			in.sim.ScheduleAt(ev.At, func() { in.elastic(ev) })
		case KindPartition, KindLinkDelay, KindLinkDrop, KindLinkDup:
			in.rules = append(in.rules, linkRule{
				kind: e.Kind, src: e.Src, dst: e.Dst,
				from: e.At, to: e.At + e.Duration,
				extra: e.Extra, p: e.P,
			})
			ev := e
			in.sim.ScheduleAt(ev.At, func() { in.noteLinkFault(ev) })
		}
	}
	if len(in.rules) > 0 {
		in.net.SetPerturb(in.perturb)
	}
	if every := in.plan.CheckpointEvery; every > 0 {
		in.sim.ScheduleAt(every, func() { in.periodicCheckpoint(every) })
	}
}

// resolve maps a target (possibly the TokenHolder sentinel) to a concrete
// server index at injection time.
func (in *SimInjector) resolve(target int) int {
	if target != TokenHolder {
		return target
	}
	if h := in.cluster.TokenHolder(); h >= 0 {
		return h
	}
	return 0 // token in flight: fall back to the ring head
}

func (in *SimInjector) crash(e Event) {
	target := in.resolve(e.Server)
	if in.plan.CheckpointEvery == 0 {
		// Crash-consistent mode: snapshot the instant before the crash.
		in.cluster.Checkpoint(target)
	}
	in.cluster.Crash(target)
	in.injected++
	in.emit(obs.Event{
		Time: in.sim.Now(), Kind: obs.KindFault,
		Node: target, Peer: obs.NoPeer, Note: "crash",
	})
	if e.Duration > 0 {
		in.sim.ScheduleAt(in.sim.Now()+e.Duration, func() {
			in.cluster.Restart(target)
			in.injected++
			in.emit(obs.Event{
				Time: in.sim.Now(), Kind: obs.KindFault,
				Node: target, Peer: obs.NoPeer, Note: "restart",
			})
		})
	}
}

func (in *SimInjector) dropToken(e Event) {
	target := in.resolve(e.Server)
	held := in.cluster.DropToken(target)
	in.injected++
	note := "token-drop"
	if !held {
		note = "token-drop-miss"
	}
	in.emit(obs.Event{
		Time: in.sim.Now(), Kind: obs.KindFault,
		Node: target, Peer: obs.NoPeer, Note: note,
	})
}

// elastic applies a membership event (KindJoin/KindLeave). The cluster's
// Elastic support was verified at construction time.
func (in *SimInjector) elastic(e Event) {
	el := in.cluster.(Elastic)
	target := in.resolve(e.Server)
	in.injected++
	var note string
	switch e.Kind {
	case KindJoin:
		newID := el.Join(target)
		if newID < 0 {
			note = fmt.Sprintf("join-miss (sponsor %d)", target)
			target = obs.NoPeer
		} else {
			note = fmt.Sprintf("join s%d (sponsor %d)", newID, target)
			target = newID
		}
	case KindLeave:
		if el.Leave(target) {
			note = fmt.Sprintf("leave s%d", target)
		} else {
			note = fmt.Sprintf("leave-miss s%d", target)
		}
	}
	in.emit(obs.Event{
		Time: in.sim.Now(), Kind: obs.KindFault,
		Node: target, Peer: obs.NoPeer, Note: note,
	})
}

func (in *SimInjector) noteLinkFault(e Event) {
	in.injected++
	in.emit(obs.Event{
		Time: in.sim.Now(), Kind: obs.KindFault,
		Node: obs.NoPeer, Peer: obs.NoPeer,
		Note: fmt.Sprintf("%v %d->%d", e.Kind, e.Src, e.Dst),
	})
}

func (in *SimInjector) periodicCheckpoint(every float64) {
	for i := 0; i < in.cluster.NumServers(); i++ {
		in.cluster.Checkpoint(i)
	}
	in.sim.ScheduleAt(in.sim.Now()+every, func() { in.periodicCheckpoint(every) })
}

func (in *SimInjector) emit(e obs.Event) {
	if in.sink.Enabled() {
		in.sink.Emit(e)
	}
}

// perturb is the geo.PerturbFunc: it scans the compiled link rules for
// ones whose window covers now and whose link matches, accumulating a
// verdict. It runs synchronously in schedule order, so the rng draws are
// deterministic.
func (in *SimInjector) perturb(src, dst geo.Endpoint, size int, kind geo.Traffic) geo.Verdict {
	now := in.sim.Now()
	var v geo.Verdict
	for i := range in.rules {
		r := &in.rules[i]
		if now < r.from || now >= r.to || !r.matches(src.ID, dst.ID) {
			continue
		}
		switch r.kind {
		case KindPartition:
			v.Drop = true
		case KindLinkDelay:
			v.ExtraDelay += r.extra
		case KindLinkDrop:
			if in.rng.Float64() < r.p {
				v.Drop = true
			}
		case KindLinkDup:
			if in.rng.Float64() < r.p {
				v.Dup = true
			}
		}
	}
	return v
}
