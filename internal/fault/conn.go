package fault

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/spyker-fl/spyker/internal/transport"
)

// ErrSevered is returned by Conn.Send after Sever: the link behaves like
// a cut cable — every send fails until the connection is rebuilt.
var ErrSevered = errors.New("fault: connection severed")

// Conn interposes send-side faults on a live transport connection. It
// implements transport.Sender, so it slips between a server's outbox and
// the wire: messages can be silently dropped with a set probability,
// delayed by a fixed amount, or the link severed outright. The zero
// configuration forwards everything untouched.
//
// Unlike the simulator's injector, a live Conn is subject to goroutine
// scheduling, so runs are not reproducible — it exists to exercise the
// same recovery paths under real concurrency.
type Conn struct {
	inner transport.Sender

	mu      sync.Mutex
	rng     *rand.Rand    //spyker:guardedby(mu)
	dropP   float64       //spyker:guardedby(mu)
	delay   time.Duration //spyker:guardedby(mu)
	severed bool          //spyker:guardedby(mu)
}

// WrapConn interposes a fault layer over inner. The seed feeds the
// private drop-probability generator.
func WrapConn(inner transport.Sender, seed int64) *Conn {
	return &Conn{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetDrop makes each subsequent Send vanish with probability p (the send
// reports success, the message never reaches the wire — a lossy link,
// not a broken one).
func (c *Conn) SetDrop(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropP = p
}

// SetDelay makes each subsequent Send sleep d before writing.
func (c *Conn) SetDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay = d
}

// Sever cuts the link: the underlying connection is closed and every
// later Send fails with ErrSevered.
func (c *Conn) Sever() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return nil
	}
	c.severed = true
	return c.inner.Close()
}

// Send implements transport.Sender.
func (c *Conn) Send(m *transport.Msg) error {
	c.mu.Lock()
	if c.severed {
		c.mu.Unlock()
		return ErrSevered
	}
	drop := c.dropP > 0 && c.rng.Float64() < c.dropP
	delay := c.delay
	c.mu.Unlock()
	if drop {
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.inner.Send(m)
}

// Close implements transport.Sender.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return nil
	}
	c.severed = true
	return c.inner.Close()
}
