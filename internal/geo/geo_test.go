package geo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/spyker-fl/spyker/internal/simulation"
)

func TestLatencyMatrixMatchesPaper(t *testing.T) {
	// Spot-check paper Tab. 4 entries (converted to seconds).
	cases := []struct {
		src, dst Region
		want     float64
	}{
		{HongKong, HongKong, 0.00141},
		{HongKong, Paris, 0.1949},
		{Paris, Sydney, 0.27883},
		{Sydney, Paris, 0.28011},
		{California, California, 0.00214},
	}
	for _, c := range cases {
		if got := AWSLatency(c.src, c.dst); got != c.want {
			t.Errorf("AWSLatency(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestMeanAWSLatencyExcludesDiagonal(t *testing.T) {
	m := MeanAWSLatency()
	if m < 0.1 || m > 0.3 {
		t.Errorf("mean off-diagonal latency %v looks wrong", m)
	}
}

func TestUniformLatency(t *testing.T) {
	lat := UniformLatency(0.1)
	if got := lat(Paris, Sydney); got != 0.1 {
		t.Errorf("uniform cross-region = %v", got)
	}
	if got := lat(Paris, Paris); got != AWSLatency(Paris, Paris) {
		t.Errorf("uniform intra-region should keep AWS diagonal, got %v", got)
	}
}

func TestRegionString(t *testing.T) {
	for _, r := range Regions {
		if r.String() == "" {
			t.Errorf("region %d has empty name", int(r))
		}
	}
	if Region(99).String() != "Region(99)" {
		t.Error("unknown region String")
	}
	if ClientServer.String() == "" || ServerServer.String() == "" {
		t.Error("traffic String broken")
	}
}

func TestSendDeliversAfterLatencyAndBandwidth(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{Bandwidth: 1000}) // 1000 B/s to make it visible
	src := Endpoint{ID: 1, Region: Paris}
	dst := Endpoint{ID: 2, Region: Sydney}
	var deliveredAt float64
	net.Send(src, dst, 500, ClientServer, func() { deliveredAt = sim.Now() })
	sim.Run(10)
	want := AWSLatency(Paris, Sydney) + 0.5
	if diff := deliveredAt - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestFIFOPerLink(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{Bandwidth: 100}) // slow link
	src := Endpoint{ID: 1, Region: Paris}
	dst := Endpoint{ID: 2, Region: Paris}
	var order []int
	// First message is big (10s serialization), second tiny: without FIFO
	// the second would arrive first.
	net.Send(src, dst, 1000, ClientServer, func() { order = append(order, 1) })
	net.Send(src, dst, 1, ClientServer, func() { order = append(order, 2) })
	sim.Run(100)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("FIFO violated: %v", order)
	}
}

func TestByteAccounting(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{})
	a := Endpoint{ID: 1, Region: HongKong}
	b := Endpoint{ID: 2, Region: Paris}
	net.Send(a, b, 100, ClientServer, func() {})
	net.Send(b, a, 200, ClientServer, func() {})
	net.Send(a, b, 50, ServerServer, func() {})
	if got := net.TotalBytes(ClientServer); got != 300 {
		t.Errorf("client-server bytes = %d", got)
	}
	if got := net.TotalBytes(ServerServer); got != 50 {
		t.Errorf("server-server bytes = %d", got)
	}
	if got := net.AllBytes(); got != 350 {
		t.Errorf("all bytes = %d", got)
	}
	if got := len(net.Transfers()); got != 3 {
		t.Errorf("transfer log has %d entries", got)
	}
}

func TestBytesUntil(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{})
	a := Endpoint{ID: 1, Region: HongKong}
	b := Endpoint{ID: 2, Region: Paris}
	net.Send(a, b, 100, ClientServer, func() {})
	sim.Schedule(5, func() {
		net.Send(a, b, 200, ServerServer, func() {})
	})
	sim.Run(10)
	if got := net.BytesUntil(1, 0); got != 100 {
		t.Errorf("BytesUntil(1) = %d", got)
	}
	if got := net.BytesUntil(10, 0); got != 300 {
		t.Errorf("BytesUntil(10) = %d", got)
	}
	if got := net.BytesUntil(10, ServerServer); got != 200 {
		t.Errorf("BytesUntil(10, server) = %d", got)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	net.Send(Endpoint{}, Endpoint{}, -1, ClientServer, func() {})
}

func TestDefaultBandwidthIs100Mbps(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{})
	src := Endpoint{ID: 1, Region: Paris}
	dst := Endpoint{ID: 2, Region: Paris}
	var at float64
	net.Send(src, dst, 12_500_000, ClientServer, func() { at = sim.Now() }) // 1s at 100 Mbps
	sim.Run(10)
	want := AWSLatency(Paris, Paris) + 1
	if diff := at - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

// TestFIFOPropertyRandomTraffic: under arbitrary interleavings of sends
// with random sizes, deliveries on every directed link must preserve send
// order — the protocol correctness assumption of Alg. 2.
func TestFIFOPropertyRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := simulation.New()
		net := NewNetwork(sim, Config{Bandwidth: 1000})
		eps := []Endpoint{
			{ID: 0, Region: HongKong}, {ID: 1, Region: Paris},
			{ID: 2, Region: Sydney},
		}
		type planned struct {
			src, dst Endpoint
			at       float64
			size     int
			link     int
			seq      int
		}
		n := 5 + rng.Intn(40)
		plan := make([]planned, n)
		for i := range plan {
			src := eps[rng.Intn(len(eps))]
			dst := eps[rng.Intn(len(eps))]
			plan[i] = planned{
				src: src, dst: dst,
				at:   rng.Float64() * 2,
				size: rng.Intn(5000),
				link: src.ID*10 + dst.ID,
			}
		}
		// Sequence numbers follow actual send order (FIFO is a per-link
		// send-order property), so assign them after sorting by send time;
		// the stable sort matches the simulator's same-time tie-breaking
		// because events are scheduled in slice order.
		sort.SliceStable(plan, func(a, b int) bool { return plan[a].at < plan[b].at })
		seqs := map[int]int{}
		for i := range plan {
			plan[i].seq = seqs[plan[i].link]
			seqs[plan[i].link]++
		}
		type rec struct{ link, seq int }
		var got []rec
		for i := range plan {
			p := plan[i]
			sim.Schedule(p.at, func() {
				net.Send(p.src, p.dst, p.size, ClientServer, func() {
					got = append(got, rec{p.link, p.seq})
				})
			})
		}
		sim.Run(1e6)
		perLink := map[int]int{}
		for _, r := range got {
			if r.seq != perLink[r.link] {
				return false
			}
			perLink[r.link]++
		}
		return len(got) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
