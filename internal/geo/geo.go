// Package geo models the geo-distributed network the paper emulates:
// AWS inter-region latencies (paper Tab. 4), 100 Mbps links, FIFO message
// delivery, and per-category byte accounting used for the bandwidth
// evaluation (paper Fig. 12).
package geo

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/simulation"
)

// Region is one of the four AWS regions of the paper's evaluation.
type Region int

// The four regions from paper Tab. 4.
const (
	HongKong Region = iota
	Paris
	Sydney
	California
	numRegions
)

// Regions lists all modeled regions in matrix order.
var Regions = [...]Region{HongKong, Paris, Sydney, California}

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case HongKong:
		return "HongKong"
	case Paris:
		return "Paris"
	case Sydney:
		return "Sydney"
	case California:
		return "California"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// awsLatencySeconds is paper Tab. 4 converted from milliseconds to seconds.
// Row = source, column = destination. The diagonal is the intra-region
// latency used between a client and its nearest server.
var awsLatencySeconds = [numRegions][numRegions]float64{
	{0.00141, 0.1949, 0.13228, 0.15513},
	{0.19791, 0.0009, 0.27883, 0.14225},
	{0.13206, 0.28011, 0.00256, 0.13847},
	{0.15496, 0.14279, 0.13857, 0.00214},
}

// AWSLatency returns the one-way latency in seconds from src to dst.
func AWSLatency(src, dst Region) float64 {
	return awsLatencySeconds[src][dst]
}

// MeanAWSLatency returns the average off-diagonal AWS latency; the paper's
// "No lat." configuration replaces the matrix with a uniform latency of
// equal average so total delay budgets match.
func MeanAWSLatency() float64 {
	var sum float64
	var n int
	for i := Region(0); i < numRegions; i++ {
		for j := Region(0); j < numRegions; j++ {
			if i == j {
				continue
			}
			sum += awsLatencySeconds[i][j]
			n++
		}
	}
	return sum / float64(n)
}

// Traffic categorizes transfers for the bandwidth evaluation.
type Traffic int

// Traffic categories.
const (
	ClientServer Traffic = iota + 1 // model up/down between clients and servers
	ServerServer                    // model broadcasts, ages, token
)

// String implements fmt.Stringer.
func (t Traffic) String() string {
	switch t {
	case ClientServer:
		return "client-server"
	case ServerServer:
		return "server-server"
	default:
		return fmt.Sprintf("Traffic(%d)", int(t))
	}
}

// LatencyFunc maps an ordered region pair to a one-way latency in seconds.
type LatencyFunc func(src, dst Region) float64

// UniformLatency returns a LatencyFunc with constant latency l between
// distinct regions and the AWS intra-region latency on the diagonal.
func UniformLatency(l float64) LatencyFunc {
	return func(src, dst Region) float64 {
		if src == dst {
			return awsLatencySeconds[src][dst]
		}
		return l
	}
}

// ConstantLatency returns a LatencyFunc that charges the same latency on
// every link, including intra-region ones. It models the paper's "No
// lat." configuration (Tab. 6): "we set all network latencies to the same
// value", isolating resource heterogeneity from geography.
func ConstantLatency(l float64) LatencyFunc {
	return func(Region, Region) float64 { return l }
}

// Verdict is a perturbation decision for one message in flight: drop it,
// deliver a duplicate copy, and/or add extra one-way delay in seconds.
// The zero Verdict delivers the message untouched.
type Verdict struct {
	Drop       bool
	Dup        bool
	ExtraDelay float64
}

// PerturbFunc inspects one outgoing message and decides its fate. It runs
// synchronously inside Send, i.e. in schedule order, so a seeded
// implementation keeps the whole simulation deterministic. Returning the
// zero Verdict leaves scheduling byte-identical to an unperturbed network.
type PerturbFunc func(src, dst Endpoint, size int, kind Traffic) Verdict

// Transfer is one byte-accounting record.
type Transfer struct {
	Time  float64 // virtual send time, seconds
	Bytes int
	Kind  Traffic
}

// Network delivers messages between endpoints over the simulator with
// region-dependent latency, a shared per-link bandwidth, FIFO ordering per
// directed link, and byte accounting.
type Network struct {
	sim       *simulation.Sim
	latency   LatencyFunc
	bandwidth float64 // bytes per second

	lastDelivery map[linkKey]float64
	transfers    []Transfer
	totalBytes   map[Traffic]int

	sink    obs.Sink
	perturb PerturbFunc
}

type linkKey struct{ src, dst int }

// Config parameterizes a Network.
type Config struct {
	Latency   LatencyFunc // defaults to AWSLatency
	Bandwidth float64     // bytes/second; defaults to 100 Mbps
}

// NewNetwork creates a network on the given simulator.
func NewNetwork(sim *simulation.Sim, cfg Config) *Network {
	lat := cfg.Latency
	if lat == nil {
		lat = AWSLatency
	}
	bw := cfg.Bandwidth
	if bw <= 0 {
		bw = 100e6 / 8 // 100 Mbps in bytes/second
	}
	return &Network{
		sim:          sim,
		latency:      lat,
		bandwidth:    bw,
		lastDelivery: make(map[linkKey]float64),
		totalBytes:   make(map[Traffic]int),
		sink:         obs.Nop{},
	}
}

// Instrument makes the network emit obs.KindMsgSend at send time and
// obs.KindMsgRecv at delivery time for every message (node IDs are the
// endpoint IDs, so servers carry their 1e6 offset). The sink only
// records; arrival times and FIFO order are untouched.
func (n *Network) Instrument(sink obs.Sink) {
	if sink == nil {
		sink = obs.Nop{}
	}
	n.sink = sink
}

// SetPerturb installs (or, with nil, removes) the failure-injection hook
// consulted on every Send. The hook's cost when installed is one call per
// message; when nil the only cost is a nil check, so an unfaulted network
// stays on the exact schedule it had before this hook existed.
func (n *Network) SetPerturb(f PerturbFunc) { n.perturb = f }

// Endpoint identifies a network attachment point: an integer node ID plus
// its region.
type Endpoint struct {
	ID     int
	Region Region
}

// Send schedules deliver to run after the modeled transfer of size bytes
// from src to dst: latency + size/bandwidth, never before a previously
// sent message on the same directed link (FIFO).
func (n *Network) Send(src, dst Endpoint, size int, kind Traffic, deliver func()) {
	n.SendTraced(src, dst, size, kind, 0, deliver)
}

// SendTraced is Send carrying a causal trace context: uid is the ID of
// the update or broadcast riding in the message (obs.UID; zero for
// untraced messages) and is stamped on both the msg-send and the msg-recv
// event, so a message's two endpoints link into one journey across the
// trace. Scheduling is identical to Send — trace context never perturbs
// delivery.
func (n *Network) SendTraced(src, dst Endpoint, size int, kind Traffic, uid obs.UID, deliver func()) {
	if size < 0 {
		panic(fmt.Sprintf("geo: negative message size %d", size))
	}
	n.transfers = append(n.transfers, Transfer{Time: n.sim.Now(), Bytes: size, Kind: kind})
	n.totalBytes[kind] += size

	var v Verdict
	if n.perturb != nil {
		v = n.perturb(src, dst, size, kind)
	}
	if v.Drop {
		// The sender transmitted (bytes stay accounted) but the message
		// vanishes on the wire: no delivery, and no FIFO watermark update
		// since nothing will arrive.
		if n.sink.Enabled() {
			n.sink.Emit(obs.Event{
				Time: n.sim.Now(), Kind: obs.KindMsgSend,
				Node: src.ID, Peer: dst.ID, Bytes: size, UID: uid,
				Note: "dropped",
			})
		}
		return
	}

	arrive := n.sim.Now() + n.latency(src.Region, dst.Region) + float64(size)/n.bandwidth + v.ExtraDelay
	key := linkKey{src.ID, dst.ID}
	if last := n.lastDelivery[key]; arrive < last {
		arrive = last
	}
	n.lastDelivery[key] = arrive
	if n.sink.Enabled() {
		n.sink.Emit(obs.Event{
			Time: n.sim.Now(), Kind: obs.KindMsgSend,
			Node: src.ID, Peer: dst.ID, Bytes: size, UID: uid,
		})
		inner := deliver
		deliver = func() {
			n.sink.Emit(obs.Event{
				Time: n.sim.Now(), Kind: obs.KindMsgRecv,
				Node: dst.ID, Peer: src.ID, Bytes: size, UID: uid,
			})
			inner()
		}
	}
	n.sim.ScheduleAt(arrive, deliver)
	if v.Dup {
		// The duplicate lands at the same instant; the simulator's
		// insertion-order tiebreak delivers it deterministically right
		// after the original.
		n.sim.ScheduleAt(arrive, deliver)
	}
}

// TotalBytes reports the cumulative bytes sent for a traffic category.
func (n *Network) TotalBytes(kind Traffic) int { return n.totalBytes[kind] }

// AllBytes reports cumulative bytes across categories.
func (n *Network) AllBytes() int {
	var s int
	//lint:sorted integer sum is exactly commutative; order cannot matter
	for _, v := range n.totalBytes {
		s += v
	}
	return s
}

// Transfers returns the transfer log (aliased; callers must not modify).
func (n *Network) Transfers() []Transfer { return n.transfers }

// BytesUntil reports cumulative bytes sent at or before virtual time t,
// optionally filtered by kind (pass 0 for all).
func (n *Network) BytesUntil(t float64, kind Traffic) int {
	var s int
	for _, tr := range n.transfers {
		if tr.Time > t {
			break // transfers are appended in time order
		}
		if kind == 0 || tr.Kind == kind {
			s += tr.Bytes
		}
	}
	return s
}
