package geo

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/simulation"
)

func TestPerturbDropSkipsDeliveryButAccountsBytes(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{})
	net.SetPerturb(func(src, dst Endpoint, size int, kind Traffic) Verdict {
		return Verdict{Drop: true}
	})
	a := Endpoint{ID: 1, Region: Paris}
	b := Endpoint{ID: 2, Region: Sydney}
	delivered := 0
	net.Send(a, b, 100, ClientServer, func() { delivered++ })
	sim.Run(10)
	if delivered != 0 {
		t.Fatalf("dropped message delivered %d times", delivered)
	}
	if got := net.TotalBytes(ClientServer); got != 100 {
		t.Fatalf("dropped message not accounted: %d bytes", got)
	}
}

func TestPerturbDropDoesNotAdvanceFIFOWatermark(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{Bandwidth: 100}) // slow link
	drop := true
	net.SetPerturb(func(src, dst Endpoint, size int, kind Traffic) Verdict {
		return Verdict{Drop: drop}
	})
	a := Endpoint{ID: 1, Region: Paris}
	b := Endpoint{ID: 2, Region: Paris}
	// Drop a big message (10s serialization would push the watermark to
	// ~10s), then send a tiny one clean: it must arrive on its own
	// schedule, not behind the ghost of the dropped one.
	net.Send(a, b, 1000, ClientServer, func() {})
	drop = false
	var deliveredAt float64
	net.Send(a, b, 1, ClientServer, func() { deliveredAt = sim.Now() })
	sim.Run(100)
	want := AWSLatency(Paris, Paris) + 0.01
	if diff := deliveredAt - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("delivered at %v, want %v (dropped message left a FIFO shadow)", deliveredAt, want)
	}
}

func TestPerturbDupDeliversTwice(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{})
	net.SetPerturb(func(src, dst Endpoint, size int, kind Traffic) Verdict {
		return Verdict{Dup: true}
	})
	a := Endpoint{ID: 1, Region: Paris}
	b := Endpoint{ID: 2, Region: Sydney}
	delivered := 0
	net.Send(a, b, 100, ClientServer, func() { delivered++ })
	sim.Run(10)
	if delivered != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", delivered)
	}
}

func TestPerturbExtraDelayShiftsArrival(t *testing.T) {
	sim := simulation.New()
	net := NewNetwork(sim, Config{Bandwidth: 1000})
	net.SetPerturb(func(src, dst Endpoint, size int, kind Traffic) Verdict {
		return Verdict{ExtraDelay: 2.5}
	})
	src := Endpoint{ID: 1, Region: Paris}
	dst := Endpoint{ID: 2, Region: Sydney}
	var deliveredAt float64
	net.Send(src, dst, 500, ClientServer, func() { deliveredAt = sim.Now() })
	sim.Run(10)
	want := AWSLatency(Paris, Sydney) + 0.5 + 2.5
	if diff := deliveredAt - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestZeroVerdictMatchesUnperturbedSchedule(t *testing.T) {
	run := func(hook bool) (times []float64) {
		sim := simulation.New()
		net := NewNetwork(sim, Config{Bandwidth: 1000})
		if hook {
			net.SetPerturb(func(src, dst Endpoint, size int, kind Traffic) Verdict {
				return Verdict{}
			})
		}
		a := Endpoint{ID: 1, Region: Paris}
		b := Endpoint{ID: 2, Region: Sydney}
		for i := 0; i < 5; i++ {
			size := 100 * (i + 1)
			net.Send(a, b, size, ClientServer, func() { times = append(times, sim.Now()) })
			net.Send(b, a, size, ServerServer, func() { times = append(times, sim.Now()) })
		}
		sim.Run(100)
		return times
	}
	plain, hooked := run(false), run(true)
	if len(plain) != len(hooked) {
		t.Fatalf("delivery counts differ: %d vs %d", len(plain), len(hooked))
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("delivery %d at %v with hook vs %v without", i, hooked[i], plain[i])
		}
	}
}
