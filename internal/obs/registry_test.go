package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("Counter must return the same handle for the same name")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	// <=1: 0.5 and 1; <=2: 1.5; <=4: 3; overflow: 100.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("p100 = %v, want 4 (overflow reports last bound)", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h", nil).Observe(float64(i))
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestSnapshotAndStatsLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.depth").Set(7)
	r.Histogram("c.lat", []float64{1, 10}).Observe(0.5)
	snap := r.Snapshot()
	if snap["a.count"] != int64(3) {
		t.Fatalf("snapshot counter = %v", snap["a.count"])
	}
	line := r.StatsLine()
	for _, want := range []string{"a.count=3", "b.depth=7", "c.lat{"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line %q missing %q", line, want)
		}
	}
}

func TestMetricsSinkDerivesMetrics(t *testing.T) {
	r := NewRegistry()
	ms := NewMetricsSink(r)
	if !ms.Enabled() {
		t.Fatal("metrics sink must be enabled")
	}
	ms.Emit(Event{Time: 1, Kind: KindClientUpdate, Node: 0, Peer: 5, Age: 2, Stale: 3})
	ms.Emit(Event{Time: 1.5, Kind: KindServerAgg, Node: 0, Peer: 1, Age: 2.5})
	ms.Emit(Event{Time: 2, Kind: KindSyncStart, Node: 0, Bid: 1, Note: "trigger"})
	ms.Emit(Event{Time: 2.75, Kind: KindSyncEnd, Node: 0, Bid: 1})
	ms.Emit(Event{Time: 3, Kind: KindTokenPass, Node: 0, Peer: 1, Bid: 2})
	ms.Emit(Event{Time: 3, Kind: KindMsgSend, Node: 0, Peer: 1, Bytes: 100})
	ms.Emit(Event{Time: 3.1, Kind: KindMsgRecv, Node: 1, Peer: 0, Bytes: 100})
	ms.Emit(Event{Time: 4, Kind: KindCheckpoint, Node: 0, Bytes: 999})

	if got := r.Counter(MetricUpdates).Value(); got != 1 {
		t.Fatalf("updates = %d", got)
	}
	if got := r.Histogram(MetricStaleness, nil).Mean(); got != 3 {
		t.Fatalf("staleness mean = %v, want 3", got)
	}
	h := r.Histogram(MetricSyncDuration, nil)
	if h.Count() != 1 {
		t.Fatalf("sync duration count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got < 0.74 || got > 0.76 {
		t.Fatalf("sync duration = %v, want 0.75", got)
	}
	if got := r.Counter(MetricBytesSent).Value(); got != 100 {
		t.Fatalf("bytes sent = %d", got)
	}
	if got := r.Counter(MetricCheckpoints).Value(); got != 1 {
		t.Fatalf("checkpoints = %d", got)
	}
	// A SyncEnd without a matching start must not record a duration.
	ms.Emit(Event{Time: 9, Kind: KindSyncEnd, Node: 3, Bid: 7})
	if h.Count() != 1 {
		t.Fatal("unmatched sync-end must be ignored")
	}
}

func TestMetricsSinkLinkDelay(t *testing.T) {
	r := NewRegistry()
	ms := NewMetricsSink(r)

	// Two messages on the 0->1 link; FIFO delivery matches them in send
	// order, so delays are 0.3s and 0.5s.
	ms.Emit(Event{Time: 1.0, Kind: KindMsgSend, Node: 0, Peer: 1, Bytes: 10})
	ms.Emit(Event{Time: 1.1, Kind: KindMsgSend, Node: 0, Peer: 1, Bytes: 10})
	ms.Emit(Event{Time: 1.3, Kind: KindMsgRecv, Node: 1, Peer: 0, Bytes: 10})
	ms.Emit(Event{Time: 1.6, Kind: KindMsgRecv, Node: 1, Peer: 0, Bytes: 10})
	// A different directed link gets its own histogram.
	ms.Emit(Event{Time: 2.0, Kind: KindMsgSend, Node: 1, Peer: 0, Bytes: 10})
	ms.Emit(Event{Time: 2.2, Kind: KindMsgRecv, Node: 0, Peer: 1, Bytes: 10})

	h01 := r.Histogram(LinkDelayMetric(0, 1), nil)
	if h01.Count() != 2 {
		t.Fatalf("0->1 delay count = %d, want 2", h01.Count())
	}
	if got := h01.Sum(); got < 0.79 || got > 0.81 {
		t.Fatalf("0->1 delay sum = %v, want ~0.8", got)
	}
	h10 := r.Histogram(LinkDelayMetric(1, 0), nil)
	if h10.Count() != 1 {
		t.Fatalf("1->0 delay count = %d, want 1", h10.Count())
	}
	if got := r.Counter(MetricLinkUnmatched).Value(); got != 0 {
		t.Fatalf("unmatched = %d, want 0", got)
	}

	// A recv with no pending send on that link counts as unmatched.
	ms.Emit(Event{Time: 3, Kind: KindMsgRecv, Node: 5, Peer: 9, Bytes: 1})
	if got := r.Counter(MetricLinkUnmatched).Value(); got != 1 {
		t.Fatalf("unmatched = %d, want 1", got)
	}
}

func TestMetricsSinkLinkDelayEvictsOnOverflow(t *testing.T) {
	r := NewRegistry()
	ms := NewMetricsSink(r)
	// One-sided instrumentation (sends observed, receives never): the
	// pending queue must cap and count evictions instead of growing
	// without bound.
	for i := 0; i < maxPendingSends+10; i++ {
		ms.Emit(Event{Time: float64(i), Kind: KindMsgSend, Node: 0, Peer: 1, Bytes: 1})
	}
	if got := r.Counter(MetricLinkUnmatched).Value(); got != 10 {
		t.Fatalf("evictions = %d, want 10", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.msgs_sent").Add(7)
	r.Gauge("queue.depth").Set(3.5)
	h := r.Histogram("lat", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE net_msgs_sent counter\nnet_msgs_sent 7\n",
		"# TYPE queue_depth gauge\nqueue_depth 3.5\n",
		"# TYPE lat histogram",
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Names with characters outside the metric alphabet must be sanitized
	// (the link-delay metrics contain '>' and '-').
	r2 := NewRegistry()
	r2.Histogram(LinkDelayMetric(ServerNode+1, 4), nil).Observe(0.2)
	var b2 strings.Builder
	if err := r2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "net_link_delay_s_s1__c4_count 1") {
		t.Fatalf("sanitized link metric missing:\n%s", b2.String())
	}
}
