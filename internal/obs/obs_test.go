package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestKindJSONRoundtrip(t *testing.T) {
	for k := KindClientUpdate; k <= KindCheckpoint; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back EventKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("roundtrip %v -> %v", k, back)
		}
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bad); err == nil {
		t.Fatal("unknown kind name must fail to unmarshal")
	}
	if _, err := json.Marshal(EventKind(99)); err == nil {
		t.Fatal("unknown kind value must fail to marshal")
	}
}

func TestNopDisabled(t *testing.T) {
	var s Sink = Nop{}
	if s.Enabled() {
		t.Fatal("Nop must report disabled")
	}
	s.Emit(Event{}) // must not panic
}

func TestMultiCollapses(t *testing.T) {
	if _, ok := Multi().(Nop); !ok {
		t.Fatal("empty Multi must be Nop")
	}
	if _, ok := Multi(nil, Nop{}, nil).(Nop); !ok {
		t.Fatal("Multi of nop/nil must be Nop")
	}
	tr := NewTracer(8)
	if got := Multi(Nop{}, tr); got != Sink(tr) {
		t.Fatal("single live sink must be returned unwrapped")
	}
	tr2 := NewTracer(8)
	m := Multi(tr, tr2)
	if !m.Enabled() {
		t.Fatal("multi of live sinks must be enabled")
	}
	m.Emit(Event{Kind: KindTokenPass, Peer: NoPeer})
	if tr.Len() != 1 || tr2.Len() != 1 {
		t.Fatalf("fanout missed a sink: %d/%d", tr.Len(), tr2.Len())
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Time: float64(i), Kind: KindMsgSend, Node: i, Peer: NoPeer})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := 6 + i; e.Node != want {
			t.Fatalf("event %d has node %d, want %d (oldest-first order)", i, e.Node, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("Reset must clear the buffer")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: KindMsgRecv, Node: g, Peer: i})
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("Total = %d, want 800", tr.Total())
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	tr := NewTracer(16)
	want := []Event{
		{Time: 0.5, Kind: KindClientUpdate, Node: 1, Peer: 7, Age: 3, Stale: 1.5,
			UID: UpdateUID(7, 12), Front: []int64{3, 12, 0}},
		{Time: 1.25, Kind: KindTokenPass, Node: 0, Peer: 1, Bid: 4},
		{Time: 2, Kind: KindMsgSend, Node: 1_000_000, Peer: 3, Bytes: 4096, UID: RoundUID(0, 4)},
		{Time: 2.5, Kind: KindServerAgg, Node: 2, Peer: 0, Bid: 4, Front: []int64{3, 12, 1}},
		{Time: 3, Kind: KindSyncStart, Node: 2, Peer: NoPeer, Bid: 5, Note: "trigger"},
	}
	for _, e := range want {
		tr.Emit(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	in := "{\"t\":1,\"kind\":\"msg-send\",\"node\":0,\"peer\":1}\n\n"
	evs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line must error")
	}
}

func TestReadJSONLRejectsNonEventJSON(t *testing.T) {
	// Valid JSON that is not a protocol event must fail loudly, not decode
	// to a zero Event and silently dilute the analysis.
	for _, in := range []string{"{}\n", "null\n", `{"foo": 1}` + "\n"} {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Fatalf("non-event line %q must error", in)
		}
	}
	// A malformed line after valid ones must still fail (no silent
	// prefix summarization).
	in := `{"t":1,"kind":"client-update","node":0,"peer":1}` + "\n{}\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("malformed suffix must error")
	}
}

// TestReadJSONLForwardCompat pins the on-disk format of a pre-provenance
// trace: events without uid/front fields must load, summarize, and build
// an (untracked) lineage without error.
func TestReadJSONLForwardCompat(t *testing.T) {
	old := `{"t":0.5,"kind":"client-update","node":0,"peer":3,"age":2,"stale":1}
{"t":1,"kind":"msg-send","node":0,"peer":1,"bytes":128}
{"t":1.5,"kind":"server-agg","node":1,"peer":0,"bid":1}
`
	evs, err := ReadJSONL(strings.NewReader(old))
	if err != nil {
		t.Fatalf("legacy trace failed to load: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for _, e := range evs {
		if e.UID != 0 || e.Front != nil {
			t.Fatalf("legacy event grew trace context: %+v", e)
		}
	}
	var b bytes.Buffer
	Summarize(evs).WriteText(&b)
	if b.Len() == 0 {
		t.Fatal("legacy trace did not summarize")
	}
	l := BuildLineage(evs)
	if len(l.Updates) != 0 || l.Untracked != 1 {
		t.Fatalf("legacy lineage: %d updates, %d untracked", len(l.Updates), l.Untracked)
	}
}
