package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric (queue depth, model age).
// The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= bounds[i]; one extra overflow bucket counts the rest.
// Observation is two atomic adds plus a binary search over the bounds.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// DefBuckets is a generic exponential bucket layout covering sub-ms
// durations up to minutes as well as small counts.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100}

// StalenessBuckets is tuned to update staleness in model-age units: a
// fresh update has staleness ~0, stragglers reach hundreds.
var StalenessBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newv) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean reports the average observation (0 with no samples).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (aliased; do not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts; the last
// entry is the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0..1) assuming observations sit at
// their bucket's upper bound; the overflow bucket reports the largest
// finite bound. Crude but fine for one-line stats.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a name-indexed collection of metrics. Get-or-create lookups
// take a lock; hot paths should look a metric up once and keep the handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   //spyker:guardedby(mu)
	gauges     map[string]*Gauge     //spyker:guardedby(mu)
	histograms map[string]*Histogram //spyker:guardedby(mu)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later callers get the existing one regardless of
// bounds; nil bounds mean DefBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns a plain map of every metric's current value, suitable
// for expvar.Func publication or JSON dumps. Histograms appear as
// {count, sum, mean, p50, p99}.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.histograms {
		out[n] = map[string]any{
			"count": h.Count(),
			"sum":   h.Sum(),
			"mean":  h.Mean(),
			"p50":   h.Quantile(0.50),
			"p99":   h.Quantile(0.99),
		}
	}
	return out
}

// StatsLine renders every metric on one sorted key=value line — the
// periodic log line of the live runtime.
func (r *Registry) StatsLine() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch v := snap[k].(type) {
		case map[string]any:
			fmt.Fprintf(&b, "%s{n=%v mean=%.3g p99=%.3g}", k, v["count"], v["mean"], v["p99"])
		case float64:
			fmt.Fprintf(&b, "%s=%.4g", k, v)
		default:
			fmt.Fprintf(&b, "%s=%v", k, v)
		}
	}
	return b.String()
}

// Standard metric names fed by the MetricsSink bridge. Runtime-specific
// metrics (per-peer bytes, per-server queue depth) use prefixed names
// built with fmt.Sprintf at instrumentation sites.
const (
	MetricUpdates       = "spyker.updates_aggregated"
	MetricServerAggs    = "spyker.server_aggs"
	MetricTokenPasses   = "spyker.token_passes"
	MetricSyncs         = "spyker.syncs_started"
	MetricStaleness     = "spyker.staleness"
	MetricSyncDuration  = "spyker.sync_duration_s"
	MetricBytesSent     = "net.bytes_sent"
	MetricBytesRecv     = "net.bytes_recv"
	MetricMsgsSent      = "net.msgs_sent"
	MetricMsgsRecv      = "net.msgs_recv"
	MetricCheckpoints   = "live.checkpoints"
	MetricSimEvents     = "sim.events_processed"
	MetricSimQueueDepth = "sim.queue_depth"
	// MetricLinkUnmatched counts msg-recv events with no pending msg-send
	// on their link (one-sided instrumentation, ring-buffer loss) plus
	// sends evicted from an over-full pending queue.
	MetricLinkUnmatched = "net.link_delay_unmatched"
)

// LinkDelayMetric names the per-link delay histogram derived from matched
// msg-send/msg-recv pairs. src and dst are node IDs in the trace's ID
// space (servers carry the ServerNode offset).
func LinkDelayMetric(src, dst int) string {
	return fmt.Sprintf("net.link_delay_s.%s->%s", NodeName(src), NodeName(dst))
}

// MetricsSink bridges the event stream into a Registry, so every runtime
// that traces also gets counters/histograms for free: updates aggregated,
// staleness distribution, sync count and duration, token passes,
// message/byte totals, and a per-link queueing-delay histogram derived
// from matching each msg-recv to its msg-send (FIFO per directed link).
type MetricsSink struct {
	updates     *Counter
	serverAggs  *Counter
	tokenPasses *Counter
	syncs       *Counter
	checkpoints *Counter
	msgsSent    *Counter
	msgsRecv    *Counter
	bytesSent   *Counter
	bytesRecv   *Counter
	staleness   *Histogram
	syncDur     *Histogram
	unmatched   *Counter
	reg         *Registry

	mu        sync.Mutex
	syncStart map[int]float64        //spyker:guardedby(mu) — node -> time of its open sync round
	links     map[linkKey]*linkState //spyker:guardedby(mu)
}

// linkKey identifies a directed link between two trace node IDs.
type linkKey struct{ src, dst int }

// maxPendingSends bounds the per-link queue of unmatched send times. The
// live runtime only instruments the server side, so server->client sends
// never see a matching recv; the cap keeps one-sided links from growing
// without bound (evictions count as unmatched).
const maxPendingSends = 1024

// linkState matches msg-send to msg-recv on one directed link. Links are
// FIFO in both runtimes, so matching is a queue: the oldest pending send
// pairs with the next recv.
type linkState struct {
	pending []float64 // send times awaiting their recv
	head    int
	hist    *Histogram
}

func (ls *linkState) push(t float64) (evicted bool) {
	if len(ls.pending)-ls.head >= maxPendingSends {
		ls.head++ // evict the oldest pending send
		evicted = true
	}
	// Compact once the consumed prefix dominates the slice.
	if ls.head > 0 && ls.head*2 >= len(ls.pending) {
		n := copy(ls.pending, ls.pending[ls.head:])
		ls.pending = ls.pending[:n]
		ls.head = 0
	}
	ls.pending = append(ls.pending, t)
	return evicted
}

func (ls *linkState) pop() (float64, bool) {
	if ls.head >= len(ls.pending) {
		return 0, false
	}
	t := ls.pending[ls.head]
	ls.head++
	if ls.head == len(ls.pending) {
		ls.pending = ls.pending[:0]
		ls.head = 0
	}
	return t, true
}

// NewMetricsSink creates the bridge and registers its metrics in reg.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		updates:     reg.Counter(MetricUpdates),
		serverAggs:  reg.Counter(MetricServerAggs),
		tokenPasses: reg.Counter(MetricTokenPasses),
		syncs:       reg.Counter(MetricSyncs),
		checkpoints: reg.Counter(MetricCheckpoints),
		msgsSent:    reg.Counter(MetricMsgsSent),
		msgsRecv:    reg.Counter(MetricMsgsRecv),
		bytesSent:   reg.Counter(MetricBytesSent),
		bytesRecv:   reg.Counter(MetricBytesRecv),
		staleness:   reg.Histogram(MetricStaleness, StalenessBuckets),
		syncDur:     reg.Histogram(MetricSyncDuration, DefBuckets),
		unmatched:   reg.Counter(MetricLinkUnmatched),
		reg:         reg,
		syncStart:   make(map[int]float64),
		links:       make(map[linkKey]*linkState),
	}
}

// Enabled implements Sink.
func (m *MetricsSink) Enabled() bool { return true }

// Emit implements Sink.
func (m *MetricsSink) Emit(e Event) {
	switch e.Kind {
	case KindClientUpdate:
		m.updates.Inc()
		m.staleness.Observe(e.Stale)
	case KindServerAgg:
		m.serverAggs.Inc()
	case KindTokenPass:
		m.tokenPasses.Inc()
	case KindSyncStart:
		m.syncs.Inc()
		m.mu.Lock()
		m.syncStart[e.Node] = e.Time
		m.mu.Unlock()
	case KindSyncEnd:
		m.mu.Lock()
		start, ok := m.syncStart[e.Node]
		delete(m.syncStart, e.Node)
		m.mu.Unlock()
		if ok {
			m.syncDur.Observe(e.Time - start)
		}
	case KindMsgSend:
		m.msgsSent.Inc()
		m.bytesSent.Add(int64(e.Bytes))
		m.mu.Lock()
		ls := m.link(e.Node, e.Peer)
		evicted := ls.push(e.Time)
		m.mu.Unlock()
		if evicted {
			m.unmatched.Inc()
		}
	case KindMsgRecv:
		m.msgsRecv.Inc()
		m.bytesRecv.Add(int64(e.Bytes))
		// Match against the oldest pending send on the (sender ->
		// receiver) link: links are FIFO in both runtimes, so the pair is
		// exact under the simulator and wall-clock-skew-accurate in the
		// live runtime (each server stamps with its own start-relative
		// clock). The observed delay covers outbox queueing plus the wire.
		m.mu.Lock()
		ls := m.link(e.Peer, e.Node)
		sent, ok := ls.pop()
		hist := ls.hist
		m.mu.Unlock()
		if ok {
			if d := e.Time - sent; d >= 0 {
				hist.Observe(d)
			}
		} else {
			m.unmatched.Inc()
		}
	case KindCheckpoint:
		m.checkpoints.Inc()
	}
}

// link returns the matcher state of the directed link src -> dst;
// callers hold m.mu.
//
//spyker:locked(mu)
func (m *MetricsSink) link(src, dst int) *linkState {
	k := linkKey{src, dst}
	ls, ok := m.links[k]
	if !ok {
		ls = &linkState{hist: m.reg.Histogram(LinkDelayMetric(src, dst), DefBuckets)}
		m.links[k] = ls
	}
	return ls
}
