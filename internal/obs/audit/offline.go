package audit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/spyker-fl/spyker/internal/obs"
)

// ClientReport is the offline audit verdict timeline of one client as
// reconstructed from a trace's KindAudit events.
type ClientReport struct {
	Client int
	// Servers lists every server that flagged the client, sorted.
	Servers []int
	// Raises/Clears count verdict transitions and reasserts per rule
	// name; FirstFlag/LastFlag bound the flagged timeline.
	Raises    map[string]int
	Clears    map[string]int
	FirstFlag float64
	LastFlag  float64
	// Active lists the rules still flagging the client at end of trace
	// (per last raise/clear transition, any server), in rule order.
	Active []string
	// LastScore is the score of the client's most recent raise event.
	LastScore float64
}

// Report is the offline audit analysis of a (possibly merged
// multi-process) trace.
type Report struct {
	// Events counts the trace's KindAudit events; Audited is how many
	// distinct clients were ever flagged.
	Events  int
	Clients []ClientReport // sorted by client ID
}

// Replay reconstructs per-client audit verdicts from a time-ordered
// event stream — the offline twin of the online recorder, used by
// spyker-trace -mode audit over merged multi-process traces.
func Replay(events []obs.Event) *Report {
	rep := &Report{}
	perClient := map[int]*ClientReport{}
	var order []int
	active := map[[2]int]map[string]bool{} // (server, client) -> rules
	for i := range events {
		e := &events[i]
		if e.Kind != obs.KindAudit {
			continue
		}
		rep.Events++
		c, ok := perClient[e.Peer]
		if !ok {
			c = &ClientReport{
				Client: e.Peer,
				Raises: map[string]int{},
				Clears: map[string]int{},
			}
			perClient[e.Peer] = c
			order = append(order, e.Peer)
		}
		key := [2]int{e.Node, e.Peer}
		if active[key] == nil {
			active[key] = map[string]bool{}
		}
		if rule, cleared := strings.CutPrefix(e.Note, ClearPrefix); cleared {
			c.Clears[rule]++
			delete(active[key], rule)
			continue
		}
		if sumCounts(c.Raises) == 0 {
			c.FirstFlag = e.Time
		}
		c.Raises[e.Note]++
		c.LastFlag = e.Time
		c.LastScore = e.Score
		active[key][e.Note] = true
		found := false
		for _, s := range c.Servers {
			if s == e.Node {
				found = true
				break
			}
		}
		if !found {
			c.Servers = append(c.Servers, e.Node)
		}
	}
	sort.Ints(order)
	for _, id := range order {
		c := perClient[id]
		sort.Ints(c.Servers)
		// Active rules: union over this client's (server, rule) states,
		// reported in the fixed rule order.
		for _, rule := range ruleNames {
			on := false
			for _, s := range c.Servers {
				if active[[2]int{s, id}][rule] {
					on = true
					break
				}
			}
			if on {
				c.Active = append(c.Active, rule)
			}
		}
		rep.Clients = append(rep.Clients, *c)
	}
	return rep
}

func sumCounts(m map[string]int) int {
	n := 0
	//lint:sorted only summed, order-independent
	for _, v := range m {
		n += v
	}
	return n
}

// FlaggedClients returns the IDs of every client the trace flagged,
// sorted.
func (r *Report) FlaggedClients() []int {
	var out []int
	for i := range r.Clients {
		out = append(out, r.Clients[i].Client)
	}
	return out
}

// FirstFlagTime reports when a client was first flagged (ok=false if it
// never was).
func (r *Report) FirstFlagTime(client int) (float64, bool) {
	for i := range r.Clients {
		if r.Clients[i].Client == client {
			return r.Clients[i].FirstFlag, true
		}
	}
	return 0, false
}

// WriteReport renders the per-client verdict table.
func (r *Report) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "audit events: %d, flagged clients: %d\n", r.Events, len(r.Clients)); err != nil {
		return err
	}
	if len(r.Clients) == 0 {
		_, err := fmt.Fprintln(w, "no audit verdicts in this trace (audit plane disarmed, or every client looked honest)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %-10s %-38s %10s %10s %9s\n",
		"client", "servers", "rules (raises/clears)", "first", "last", "score"); err != nil {
		return err
	}
	for i := range r.Clients {
		c := &r.Clients[i]
		srv := make([]string, 0, len(c.Servers))
		for _, s := range c.Servers {
			srv = append(srv, fmt.Sprintf("s%d", s))
		}
		var rules []string
		for _, rule := range ruleNames {
			if c.Raises[rule] == 0 && c.Clears[rule] == 0 {
				continue
			}
			mark := ""
			for _, a := range c.Active {
				if a == rule {
					mark = "*"
					break
				}
			}
			rules = append(rules, fmt.Sprintf("%s%s %d/%d", rule, mark, c.Raises[rule], c.Clears[rule]))
		}
		if _, err := fmt.Fprintf(w, "c%-7d %-10s %-38s %9.2fs %9.2fs %9.3f\n",
			c.Client, strings.Join(srv, ","), strings.Join(rules, " "),
			c.FirstFlag, c.LastFlag, c.LastScore); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "\n* = rule still active at end of trace")
	return err
}
