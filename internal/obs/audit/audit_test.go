package audit

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

// memSink collects every emitted event in order.
type memSink struct{ events []obs.Event }

func (s *memSink) Enabled() bool    { return true }
func (s *memSink) Emit(e obs.Event) { s.events = append(s.events, e) }
func (s *memSink) kind(k obs.EventKind) []obs.Event {
	var out []obs.Event
	for _, e := range s.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

const dim = 96

// randUnit returns a fresh random direction of the given norm.
func randUnit(rng *rand.Rand, norm float64) []float64 {
	v := make([]float64, dim)
	var n float64
	for i := range v {
		v[i] = rng.NormFloat64()
		n += v[i] * v[i]
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] *= norm / n
	}
	return v
}

// feedRounds drives nClients clients round-robin for rounds rounds; mk
// builds client c's delta for round t. The model is held at zero so the
// staleness-drift correction is identically zero and the deltas reach
// the statistics unmodified.
func feedRounds(rec *Recorder, nClients, rounds int, mk func(c, t int) []float64) {
	now := 0.0
	model := make([]float64, dim)
	for t := 0; t < rounds; t++ {
		for c := 0; c < nClients; c++ {
			now += 0.01
			age := float64(t*nClients + c)
			rec.Observe(now, c, mk(c, t), model, age, age+1)
		}
	}
}

func hasFlag(flags []string, rule string) bool {
	for _, f := range flags {
		if f == rule {
			return true
		}
	}
	return false
}

func TestNormOutlierFlagged(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{}, 0, sink)
	rng := rand.New(rand.NewSource(1))
	feedRounds(rec, 6, 20, func(c, t int) []float64 {
		if c == 0 {
			return randUnit(rng, 12) // attacker: 12x the honest norm
		}
		return randUnit(rng, 0.9+0.2*rng.Float64())
	})
	if !hasFlag(rec.Flags(0), RuleNormOutlier) {
		t.Fatalf("attacker not flagged as norm outlier: flags %v", rec.Flags(0))
	}
	for c := 1; c < 6; c++ {
		if len(rec.Flags(c)) != 0 {
			t.Fatalf("honest client %d flagged: %v", c, rec.Flags(c))
		}
	}
	raises := sink.kind(obs.KindAudit)
	if len(raises) == 0 {
		t.Fatal("no audit events emitted")
	}
	if e := raises[0]; e.Node != 0 || e.Peer != 0 || e.Note != RuleNormOutlier || e.Score <= 0 {
		t.Fatalf("bad first raise event: %+v", e)
	}
}

func TestDirectionInversionFlagged(t *testing.T) {
	rec := NewRecorder(Config{}, 0, nil)
	rng := rand.New(rand.NewSource(2))
	common := randUnit(rng, 1)
	mk := func(c, t int) []float64 {
		if c == 0 {
			// Sign-flip attacker: an outsized steady push against the
			// honest drift. The magnitude makes it a norm outlier first;
			// the inversion rule then refines the conviction by direction.
			v := make([]float64, dim)
			for i := range v {
				v[i] = -6 * common[i]
			}
			return v
		}
		// Honest: shared drift plus dominant fresh noise, so the reference
		// direction forms without the honest clients looking colluded.
		v := randUnit(rng, 1.2)
		for i := range v {
			v[i] += 0.5 * common[i]
		}
		return v
	}
	feedRounds(rec, 6, 30, mk)
	if !hasFlag(rec.Flags(0), RuleDirectionInversion) {
		t.Fatalf("sign-flip attacker not flagged for inversion: flags %v", rec.Flags(0))
	}
	for c := 1; c < 6; c++ {
		if len(rec.Flags(c)) != 0 {
			t.Fatalf("honest client %d flagged: %v", c, rec.Flags(c))
		}
	}
}

func TestCollusionFlaggedPairwise(t *testing.T) {
	rec := NewRecorder(Config{}, 0, nil)
	rng := rand.New(rand.NewSource(3))
	attack := randUnit(rng, 1) // fixed shared attack direction, honest-sized norm
	mk := func(c, t int) []float64 {
		if c == 0 || c == 1 {
			v := make([]float64, dim)
			copy(v, attack)
			return v
		}
		return randUnit(rng, 1)
	}
	feedRounds(rec, 6, 20, mk)
	for _, c := range []int{0, 1} {
		if !hasFlag(rec.Flags(c), RuleCollusion) {
			t.Fatalf("colluder %d not flagged: flags %v", c, rec.Flags(c))
		}
	}
	for c := 2; c < 6; c++ {
		if len(rec.Flags(c)) != 0 {
			t.Fatalf("honest client %d flagged: %v", c, rec.Flags(c))
		}
	}
	if got := rec.Flagged(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Flagged() = %v, want [0 1]", got)
	}
}

func TestCleanRunNoFlags(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{}, 0, sink)
	rng := rand.New(rand.NewSource(4))
	feedRounds(rec, 8, 50, func(c, t int) []float64 {
		return randUnit(rng, 0.7+0.6*rng.Float64())
	})
	if got := rec.Flagged(); len(got) != 0 {
		t.Fatalf("honest run flagged clients %v", got)
	}
	if n := len(sink.events); n != 0 {
		t.Fatalf("honest run emitted %d audit events", n)
	}
}

func TestFlagClearsWhenBehaviorNormalizes(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{}, 0, sink)
	rng := rand.New(rand.NewSource(5))
	phase2 := false
	mk := func(c, t int) []float64 {
		if c == 0 && !phase2 {
			return randUnit(rng, 12)
		}
		return randUnit(rng, 1)
	}
	feedRounds(rec, 6, 20, mk)
	if !hasFlag(rec.Flags(0), RuleNormOutlier) {
		t.Fatal("attacker not flagged during attack phase")
	}
	phase2 = true
	feedRounds(rec, 6, 30, mk)
	if flags := rec.Flags(0); len(flags) != 0 {
		t.Fatalf("flag did not clear after behavior normalized: %v", flags)
	}
	var clears int
	for _, e := range sink.events {
		if strings.HasPrefix(e.Note, ClearPrefix) {
			clears++
		}
	}
	if clears == 0 {
		t.Fatal("no clear event emitted")
	}
}

func TestReassertEmitsPeriodically(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{ReassertEvery: 4}, 0, sink)
	rng := rand.New(rand.NewSource(6))
	feedRounds(rec, 6, 40, func(c, t int) []float64 {
		if c == 0 {
			return randUnit(rng, 12)
		}
		return randUnit(rng, 1)
	})
	var raises int
	for _, e := range sink.events {
		if e.Peer == 0 && e.Note == RuleNormOutlier {
			raises++
		}
	}
	if raises < 3 {
		t.Fatalf("sustained anomaly produced only %d raise events, want reasserts", raises)
	}
}

// TestObserveDeterminism feeds the identical stream twice and demands
// byte-identical verdict sequences and snapshots.
func TestObserveDeterminism(t *testing.T) {
	run := func() ([]obs.Event, *obs.TelemetryAudit) {
		sink := &memSink{}
		rec := NewRecorder(Config{}, 0, sink)
		rng := rand.New(rand.NewSource(7))
		feedRounds(rec, 6, 25, func(c, t int) []float64 {
			if c == 0 {
				return randUnit(rng, 10)
			}
			return randUnit(rng, 1)
		})
		return sink.events, rec.Snapshot()
	}
	ev1, snap1 := run()
	ev2, snap2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event streams differ across identical runs:\n%v\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Fatal("snapshots differ across identical runs")
	}
}

func TestSnapshotShape(t *testing.T) {
	rec := NewRecorder(Config{}, 3, nil)
	rng := rand.New(rand.NewSource(8))
	feedRounds(rec, 4, 10, func(c, t int) []float64 {
		return randUnit(rng, 1)
	})
	snap := rec.Snapshot()
	if snap == nil || snap.Updates != 40 || len(snap.Clients) != 4 {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	for i, c := range snap.Clients {
		if c.Client != i {
			t.Fatalf("snapshot rows not sorted by client: %+v", snap.Clients)
		}
		if c.Updates != 10 || c.MedianNorm <= 0 || len(c.LayerNorms) == 0 {
			t.Fatalf("bad client row: %+v", c)
		}
		if c.MeanGap <= 0 {
			t.Fatalf("client %d mean gap not tracked: %+v", i, c)
		}
	}
	var nilRec *Recorder
	if nilRec.Snapshot() != nil {
		t.Fatal("nil recorder must snapshot to nil")
	}
}

func TestNopSinkSuppressesEmissionKeepsStats(t *testing.T) {
	rec := NewRecorder(Config{}, 0, obs.Nop{})
	rng := rand.New(rand.NewSource(9))
	feedRounds(rec, 6, 20, func(c, t int) []float64 {
		if c == 0 {
			return randUnit(rng, 12)
		}
		return randUnit(rng, 1)
	})
	if !hasFlag(rec.Flags(0), RuleNormOutlier) {
		t.Fatal("statistics must keep running under a Nop sink")
	}
	if rec.Updates() != 120 {
		t.Fatalf("updates = %d, want 120", rec.Updates())
	}
}
