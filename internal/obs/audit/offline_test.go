package audit

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

func TestReplayReconstructsVerdicts(t *testing.T) {
	events := []obs.Event{
		{Time: 1.0, Kind: obs.KindAudit, Node: 0, Peer: 5, Note: RuleNormOutlier, Score: 8.5},
		{Time: 1.2, Kind: obs.KindClientUpdate, Node: 0, Peer: 5}, // ignored
		{Time: 2.0, Kind: obs.KindAudit, Node: 1, Peer: 5, Note: RuleNormOutlier, Score: 7.0},
		{Time: 3.0, Kind: obs.KindAudit, Node: 0, Peer: 5, Note: ClearPrefix + RuleNormOutlier},
		{Time: 4.0, Kind: obs.KindAudit, Node: 0, Peer: 2, Note: RuleCollusion, Score: 0.97},
		{Time: 4.0, Kind: obs.KindAudit, Node: 0, Peer: 3, Note: RuleCollusion, Score: 0.97},
	}
	rep := Replay(events)
	if rep.Events != 5 {
		t.Fatalf("Events = %d, want 5", rep.Events)
	}
	if got := rep.FlaggedClients(); !reflect.DeepEqual(got, []int{2, 3, 5}) {
		t.Fatalf("FlaggedClients = %v, want [2 3 5]", got)
	}

	var c5 *ClientReport
	for i := range rep.Clients {
		if rep.Clients[i].Client == 5 {
			c5 = &rep.Clients[i]
		}
	}
	if c5 == nil {
		t.Fatal("client 5 missing from report")
	}
	if c5.Raises[RuleNormOutlier] != 2 || c5.Clears[RuleNormOutlier] != 1 {
		t.Fatalf("client 5 counts wrong: raises %v clears %v", c5.Raises, c5.Clears)
	}
	if c5.FirstFlag != 1.0 || c5.LastFlag != 2.0 {
		t.Fatalf("client 5 flag window [%v, %v], want [1, 2]", c5.FirstFlag, c5.LastFlag)
	}
	if !reflect.DeepEqual(c5.Servers, []int{0, 1}) {
		t.Fatalf("client 5 servers %v, want [0 1]", c5.Servers)
	}
	// Server 0 cleared but server 1 never did: the rule is still active.
	if !reflect.DeepEqual(c5.Active, []string{RuleNormOutlier}) {
		t.Fatalf("client 5 active %v, want [norm-outlier]", c5.Active)
	}
	if ff, ok := rep.FirstFlagTime(2); !ok || ff != 4.0 {
		t.Fatalf("FirstFlagTime(2) = %v %v, want 4.0 true", ff, ok)
	}
	if _, ok := rep.FirstFlagTime(99); ok {
		t.Fatal("FirstFlagTime of an unflagged client must report ok=false")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	rep := Replay([]obs.Event{{Time: 1, Kind: obs.KindClientUpdate}})
	if rep.Events != 0 || len(rep.Clients) != 0 {
		t.Fatalf("non-audit trace produced report %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no audit verdicts") {
		t.Fatalf("empty report text: %q", buf.String())
	}
}

// TestReplayMatchesOnlineRecorder round-trips the live verdict stream
// through the offline analyzer: every client the recorder flags must
// appear in the replayed report with the same active rules.
func TestReplayMatchesOnlineRecorder(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{}, 2, sink)
	rng := rand.New(rand.NewSource(10))
	feedRounds(rec, 6, 25, func(c, t int) []float64 {
		if c == 0 {
			return randUnit(rng, 12)
		}
		return randUnit(rng, 1)
	})
	rep := Replay(sink.events)
	if !reflect.DeepEqual(rep.FlaggedClients(), rec.Flagged()) {
		t.Fatalf("offline flagged %v, online flagged %v", rep.FlaggedClients(), rec.Flagged())
	}
	for _, id := range rec.Flagged() {
		var cr *ClientReport
		for i := range rep.Clients {
			if rep.Clients[i].Client == id {
				cr = &rep.Clients[i]
			}
		}
		if cr == nil || !reflect.DeepEqual(cr.Active, rec.Flags(id)) {
			t.Fatalf("client %d: offline active %v, online flags %v", id, cr.Active, rec.Flags(id))
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "c0") || !strings.Contains(out, RuleNormOutlier) {
		t.Fatalf("report text missing flagged client:\n%s", out)
	}
}
