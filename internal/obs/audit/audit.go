// Package audit implements the per-client contribution audit plane: a
// streaming profiler a ServerCore feeds the delta of every client update
// it merges (internal/spyker arms it at delta-apply time), which
// maintains windowed robust statistics per client and emits typed
// anomaly verdicts as obs.KindAudit events.
//
// The observed delta of an asynchronous merge is dominated by staleness
// drift: delta = (model(base) - model(now)) + trainingStep, and the
// first term — how far the server model moved while the update was in
// flight — is shared by every concurrent update and says nothing about
// the client. The Recorder therefore snapshots the model's chunk
// signature at every observed age and, per update, adds the signed
// model movement since the update's base age back onto the update's
// signature (chunking is linear, so the correction is exact whenever
// the base age is still in the snapshot ring). What remains is the
// signature of the client's own training step — the only part the
// client chose — and every rule judges THAT:
//
//   - norm-outlier: the client's windowed median contribution norm is a
//     robust (median/MAD) z-score outlier against the other clients of
//     the same server AND a clear multiple of the population median
//     (currently-flagged clients are excluded from the baseline).
//     Catches noise-style attacks whose magnitude does not track honest
//     updates.
//   - direction-inversion: while the norm flag is armed, a windowed
//     median cosine against the reference direction (an EMA of
//     honest-looking contributions) that is strongly negative refines
//     the conviction: the outlier is pushing the model backwards
//     (sign-flip poisoning), not merely somewhere random (noise).
//     Direction alone never convicts — under non-IID data an honest
//     minority label group legitimately anti-correlates with the
//     population mixture.
//   - collusion: two or more clients inject the SAME chosen direction.
//     Each client keeps a chunked signature of its normalized
//     contribution (an EMA and the raw latest one), residualized
//     against the population's per-chunk median with the remaining
//     common mode projected out. A client whose residual EMA stays long
//     (a persistent private direction) is a candidate; a candidate
//     whose best pairwise cosine of residual instantaneous signatures
//     sustains a windowed median at near-exact 1 is flagged. The
//     near-exactness threshold is the separator: honest clients sharing
//     a label shard reach 0.999x, but only drift-corrected payloads
//     that are literally the same vector scaled survive at 1.0.
//
// The package obeys the same passivity contract as obs.Sink: the
// Recorder only observes, never feeds back into the protocol, and a core
// with no recorder armed skips the computation entirely (one nil check).
// All state updates are deterministic — fixed-order iteration, no wall
// clock, no global randomness — and the package is registered in
// spyker-lint's DeterministicPkgs. Steady-state observation is
// allocation-free: windows are fixed ring buffers and the sort/signature
// scratch is reused across calls.
package audit

import (
	"math"
	"sort"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
)

// Anomaly rule names: the stable wire strings carried in the Note of
// KindAudit events (prefixed ClearPrefix when an anomaly subsides).
const (
	RuleNormOutlier        = "norm-outlier"
	RuleDirectionInversion = "direction-inversion"
	RuleCollusion          = "collusion"

	// ClearPrefix marks verdict-clear events: Note = ClearPrefix + rule.
	ClearPrefix = "clear:"
)

// rule indices into the fixed rule order (flag bit = 1<<index).
const (
	ruleNorm = iota
	ruleInvert
	ruleCollude
	numRules
)

// ruleNames maps rule index to wire name, in the fixed rule order.
var ruleNames = [numRules]string{RuleNormOutlier, RuleDirectionInversion, RuleCollusion}

// snapRing is how many (age, model signature) snapshots the recorder
// retains for staleness-drift compensation — it must cover the largest
// plausible staleness in merges (typically the client count of one
// server; see Recorder.snapAges).
const snapRing = 128

// Config tunes the audit plane. The zero value is usable: every field
// defaults as documented.
type Config struct {
	// Window is the per-client ring of recent norm/cosine samples the
	// robust statistics are computed over (default 16).
	Window int
	// MinSamples is how many samples a client needs before any rule may
	// judge it (default 6) — fresh clients are never flagged on noise.
	MinSamples int
	// MinPeers is how many clients (including the judged one) must have
	// reached MinSamples before the cross-client norm rule arms
	// (default 4): a robust z-score over two clients is meaningless.
	MinPeers int
	// NormZ is the robust z-score (median/MAD, consistency-scaled) a
	// client's median norm must exceed to be a norm outlier (default 6);
	// NormRatio the multiple of the population median it must also
	// exceed (default 2.5). Both conditions must hold — the ratio floor
	// keeps tightly clustered honest populations (tiny MAD) from turning
	// ordinary heterogeneity into huge z-scores.
	NormZ     float64
	NormRatio float64
	// CosInvert flags a client whose windowed median cosine against the
	// reference direction sits at or below this (default -0.25), but
	// only while the client's norm-outlier flag is armed: inversion
	// refines an already-convicted magnitude outlier by direction
	// (sign-flip pushes backwards, noise pushes nowhere). Direction
	// alone cannot convict under non-IID data — an honest minority label
	// group legitimately anti-correlates with the population's mixture
	// direction, so an ungated cosine rule would flag exactly the
	// clients whose data is rarest.
	CosInvert float64
	// SimThreshold is the windowed-median pairwise similarity of
	// residual instantaneous signatures at or above which a candidate
	// client is deemed colluding (default 0.9999). The threshold sits at
	// near-exactness deliberately: honest clients sharing a label shard
	// reach 0.999x similarity of their drift-corrected contributions,
	// but only coordinated payloads — the same chosen direction injected
	// every round — sustain a windowed median at 1.0 (to float rounding).
	// SimConsistency is the minimum length of a client's residual EMA
	// signature (its direction EMA minus the population's per-chunk
	// median, common mode projected out) for the client to enter pairing
	// at all (default 0.5) — honest residuals are averaged-out rotation
	// noise and stay well below it, so tiny residuals never compare as
	// pure noise.
	SimThreshold   float64
	SimConsistency float64
	// RefRate is the EMA rate of the reference direction (default 0.05).
	RefRate float64
	// SigChunks is the dimensionality of the chunked direction signature
	// (default 16). LayerBounds, when set, are the cumulative end
	// offsets of the model's layers and select the layer-norm profile's
	// segmentation; otherwise the delta is profiled over SigChunks equal
	// segments.
	SigChunks   int
	LayerBounds []int
	// ReassertEvery re-emits the raise event of a still-flagged client
	// every that many of its updates (default 16), so downstream
	// consumers (the health evaluator's sustained-anomaly rule) can tell
	// persistent anomalies from one-off blips.
	ReassertEvery int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 6
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.MinPeers <= 0 {
		c.MinPeers = 4
	}
	if c.NormZ <= 0 {
		c.NormZ = 6
	}
	if c.NormRatio <= 0 {
		c.NormRatio = 2.5
	}
	if c.CosInvert == 0 {
		c.CosInvert = -0.25
	}
	if c.SimThreshold <= 0 {
		c.SimThreshold = 0.9999
	}
	if c.SimConsistency <= 0 {
		c.SimConsistency = 0.5
	}
	if c.RefRate <= 0 {
		c.RefRate = 0.05
	}
	if c.SigChunks <= 0 {
		c.SigChunks = 64
	}
	if c.ReassertEvery <= 0 {
		c.ReassertEvery = 16
	}
	return c
}

// profile is the streaming state of one audited client.
type profile struct {
	id    int
	count int64

	// norm window (ring buffer of size cfg.Window) and its cached median.
	norms    []float64
	normHead int
	normN    int
	median   float64

	// raw wire-norm window: the un-corrected L2 of the delta. Chunk sums
	// cancel for incoherent payloads (a random direction's components
	// alternate sign within every chunk), so a noise injection can be
	// huge on the wire yet ordinary in signature space; this window is
	// the magnitude rule's second eye. See judge.
	rawNorms  []float64
	rawHead   int
	rawMedian float64

	// cosine-vs-reference window and its cached median (the reference
	// needs a few merges before it exists, so this ring fills later).
	coss    []float64
	cosHead int
	cosN    int
	medCos  float64

	// cadence: mean gap between this client's updates.
	lastAt    float64
	lastValid bool
	gapSum    float64
	gapN      int64

	// sig is the EMA of the chunked signature of the client's normalized
	// delta direction; its length approaches 1 only for clients that keep
	// pushing the same way.
	sig  []float64
	sigN int64

	// inst is the raw chunked signature of the client's latest delta —
	// the un-smoothed counterpart of sig the collusion rule compares
	// pairwise (EMAs of honest clients converge to the shared gradient
	// direction and look alike; single updates differ by minibatch
	// noise unless the payloads actually coincide).
	inst      []float64
	instValid bool

	// sims is the window of best pairwise instantaneous-residual
	// cosines and its cached median.
	sims    []float64
	simHead int
	simN    int
	medSim  float64

	// layers is the EMA of the per-segment share of the delta norm.
	layers []float64

	lastNorm  float64 // raw wire L2 norm of the last delta
	lastCNorm float64 // drift-corrected contribution magnitude (chunk space)
	lastStale float64
	lastZ     float64
	lastSim   float64

	flags     uint8
	sinceEmit [numRules]int
}

// Recorder is one server's audit plane. It is not safe for concurrent
// use on its own; both runtimes call it while holding the same
// serialization that guards the ServerCore (the DES is single-threaded,
// the live runtime holds the server mutex).
type Recorder struct {
	cfg    Config
	server int
	sink   obs.Sink

	updates int64
	raises  int64

	// ref is the reference direction in chunk-signature space: an EMA of
	// the normalized drift-corrected contributions of currently-unflagged
	// clients. refNorm caches its length.
	ref      []float64
	refNorm  float64
	refMin   int64 // merges before the reference is trusted
	refSeen  int64
	profiles map[int]*profile
	order    []int // sorted client IDs: every iteration walks this

	// Staleness-drift compensation: a ring of (model age, model chunk
	// signature) snapshots taken at each observation. An update based on
	// age B arrives when the model has moved to age A; the difference of
	// the two snapshots is exactly the drift the client could not have
	// known about, and subtracting it from the update's signature leaves
	// the client's pure training contribution (chunking is linear, so
	// signature-space subtraction equals chunking the param-space
	// difference). Without it every honest update is dominated by the
	// same drift and all direction statistics collapse together.
	snapAges []float64
	snapSigs [][]float64
	snapHead int
	snapN    int

	// reusable scratch (steady-state observation allocates nothing).
	modelSig   []float64 // chunk signature of the current model
	contrib    []float64 // drift-corrected contribution signature
	layScratch []float64
	medScratch []float64
	popScratch []float64
	popSig     []float64 // per-chunk median EMA signature of the population
	popNorm    float64   // cached length of popSig
	popInst    []float64 // per-chunk median of the latest raw signatures
	popInstN   float64   // cached length of popInst
	residA     []float64 // residual EMA signature of the judged client
	residB     []float64 // residual EMA signature of the compared client
	instA      []float64 // residual instantaneous signature (judged)
	instB      []float64 // residual instantaneous signature (compared)
	simScratch []float64 // per-chunk values while computing popSig
}

// NewRecorder builds a recorder for one server. Verdict events are
// emitted into sink (stamped with the clock value the caller passes to
// Observe); obs.Nop suppresses emission but keeps the statistics, which
// live telemetry still surfaces.
func NewRecorder(cfg Config, server int, sink obs.Sink) *Recorder {
	if sink == nil {
		sink = obs.Nop{}
	}
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:        cfg,
		server:     server,
		sink:       sink,
		refMin:     3,
		profiles:   make(map[int]*profile),
		ref:        make([]float64, cfg.SigChunks),
		modelSig:   make([]float64, cfg.SigChunks),
		contrib:    make([]float64, cfg.SigChunks),
		medScratch: make([]float64, 0, cfg.Window),
		popSig:     make([]float64, cfg.SigChunks),
		popInst:    make([]float64, cfg.SigChunks),
		residA:     make([]float64, cfg.SigChunks),
		residB:     make([]float64, cfg.SigChunks),
		instA:      make([]float64, cfg.SigChunks),
		instB:      make([]float64, cfg.SigChunks),
		snapAges:   make([]float64, snapRing),
		snapSigs:   make([][]float64, snapRing),
	}
	for i := range r.snapSigs {
		r.snapSigs[i] = make([]float64, cfg.SigChunks)
	}
	return r
}

// Server reports the ID of the server this recorder audits for.
func (r *Recorder) Server() int { return r.server }

// Updates reports how many client updates were audited.
func (r *Recorder) Updates() int64 { return r.updates }

func (r *Recorder) profile(id int) *profile {
	if p, ok := r.profiles[id]; ok {
		return p
	}
	p := &profile{
		id:       id,
		norms:    make([]float64, r.cfg.Window),
		rawNorms: make([]float64, r.cfg.Window),
		coss:     make([]float64, r.cfg.Window),
		sims:     make([]float64, r.cfg.Window),
		sig:      make([]float64, r.cfg.SigChunks),
		inst:     make([]float64, r.cfg.SigChunks),
	}
	r.profiles[id] = p
	r.order = append(r.order, id)
	sort.Ints(r.order)
	return p
}

// Observe folds one merged client-update delta into the audit state.
// now is the runtime's clock (virtual or wall seconds), client the
// sender, delta the raw pre-clip difference between the client's update
// and the server model, model the server's current (pre-merge)
// parameter vector, baseAge the age of the model the client trained
// from, age the server's current model age. delta and model are borrows
// valid only for the duration of the call (delta is the core's scratch
// buffer); the recorder never retains them.
func (r *Recorder) Observe(now float64, client int, delta, model []float64, baseAge, age float64) {
	p := r.profile(client)
	r.updates++
	p.count++

	staleness := age - baseAge
	norm := paramvec.Vec(delta).L2Norm()
	p.lastNorm = norm
	p.lastStale = staleness

	// Inter-update cadence.
	if p.lastValid && now >= p.lastAt {
		p.gapSum += now - p.lastAt
		p.gapN++
	}
	p.lastAt, p.lastValid = now, true

	// Snapshot the model's chunk signature at its current age — before
	// the correction lookup, so a zero-staleness update (baseAge == age)
	// subtracts an exactly-zero drift.
	chunkInto(r.modelSig, model)
	r.snapshot(age)

	// Drift-corrected contribution. The observed delta is
	// (update - model(now)) = (model(base) - model(now)) + trainingStep:
	// it carries a NEGATIVE copy of how far the model moved since the
	// client's base age. Adding that movement back in signature space
	// (chunking is linear, so signature differences equal chunked
	// param-space differences) leaves the signature of the client's own
	// training step — the only part the client actually chose.
	chunkInto(r.contrib, delta)
	if base, ok := r.lookup(baseAge); ok {
		for i := range r.contrib {
			r.contrib[i] += r.modelSig[i] - base[i]
		}
	}
	cNorm := sigLen(r.contrib)
	p.lastCNorm = cNorm
	if cNorm > 0 {
		inv := 1 / cNorm
		for i := range r.contrib {
			r.contrib[i] *= inv
		}
	}

	// Cosine of the contribution against the reference direction (once
	// the reference exists).
	if r.refSeen >= r.refMin && r.refNorm > 0 && cNorm > 0 {
		cos := sigDot(r.ref, r.contrib) / r.refNorm
		p.coss[p.cosHead] = cos
		p.cosHead = (p.cosHead + 1) % r.cfg.Window
		if p.cosN < r.cfg.Window {
			p.cosN++
		}
		p.medCos = r.windowMedian(p.coss, p.cosN)
	}

	// Contribution direction signature (instantaneous + EMA) and the
	// per-layer norm profile of the raw delta.
	copy(p.inst, r.contrib)
	p.instValid = cNorm > 0
	sigRate := 0.2
	for i, s := range r.contrib {
		p.sig[i] = (1-sigRate)*p.sig[i] + sigRate*s
	}
	p.sigN++
	r.layerProfile(delta, norm)
	if p.layers == nil {
		p.layers = append(p.layers, r.layScratch...)
	} else {
		for i, s := range r.layScratch {
			p.layers[i] = 0.9*p.layers[i] + 0.1*s
		}
	}

	// Norm window holds the drift-corrected contribution magnitudes:
	// the raw delta norm scales with how stale an update happens to be,
	// which is scheduling luck, not client behaviour.
	p.norms[p.normHead] = cNorm
	p.normHead = (p.normHead + 1) % r.cfg.Window
	if p.normN < r.cfg.Window {
		p.normN++
	}
	p.median = r.windowMedian(p.norms, p.normN)
	// The raw wire norm rides a parallel window (same fill count).
	p.rawNorms[p.rawHead] = norm
	p.rawHead = (p.rawHead + 1) % r.cfg.Window
	p.rawMedian = r.windowMedian(p.rawNorms, p.normN)

	r.judge(now, p)

	// The reference direction averages the contributions of clients that
	// currently look honest — judged first, so a flagged client stops
	// steering the baseline it is compared against.
	if cNorm > 0 && p.flags == 0 {
		for i, s := range r.contrib {
			r.ref[i] = (1-r.cfg.RefRate)*r.ref[i] + r.cfg.RefRate*s
		}
		r.refNorm = sigLen(r.ref)
		r.refSeen++
	}
}

// snapshot records (age, modelSig) in the ring, overwriting the oldest
// entry once full.
func (r *Recorder) snapshot(age float64) {
	copy(r.snapSigs[r.snapHead], r.modelSig)
	r.snapAges[r.snapHead] = age
	r.snapHead = (r.snapHead + 1) % snapRing
	if r.snapN < snapRing {
		r.snapN++
	}
}

// lookup finds the snapshot whose age is nearest to baseAge. Reply
// stamps come from the same counter the snapshots key on, so the match
// is usually exact; server-to-server merges nudge ages between client
// merges, in which case the nearest snapshot bounds the error by one
// inter-merge window.
func (r *Recorder) lookup(baseAge float64) ([]float64, bool) {
	bestD := math.Inf(1)
	best := -1
	for i := 0; i < r.snapN; i++ {
		d := math.Abs(r.snapAges[i] - baseAge)
		if d < bestD {
			bestD, best = d, i
		}
	}
	if best < 0 {
		return nil, false
	}
	return r.snapSigs[best], true
}

// windowMedian computes the median of the first n live entries of a ring
// buffer using the reusable sort scratch.
func (r *Recorder) windowMedian(ring []float64, n int) float64 {
	if n == 0 {
		return 0
	}
	r.medScratch = append(r.medScratch[:0], ring[:n]...)
	sort.Float64s(r.medScratch)
	return r.medScratch[n/2]
}

// chunkInto fills dst with the raw chunk sums of v — a cheap fixed
// LINEAR projection into signature space (linearity is what makes
// snapshot-difference drift subtraction exact). An empty v yields the
// zero signature.
func chunkInto(dst []float64, v []float64) {
	for i := range dst {
		dst[i] = 0
	}
	if len(v) == 0 {
		return
	}
	per := (len(v) + len(dst) - 1) / len(dst)
	for i, d := range v {
		dst[i/per] += d
	}
}

func sigDot(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// layerProfile fills layScratch with each segment's share of the delta
// norm: LayerBounds segments when configured, SigChunks equal segments
// otherwise.
func (r *Recorder) layerProfile(delta []float64, norm float64) {
	nSeg := len(r.cfg.LayerBounds)
	if nSeg == 0 {
		nSeg = r.cfg.SigChunks
	}
	if cap(r.layScratch) < nSeg {
		r.layScratch = make([]float64, nSeg)
	}
	r.layScratch = r.layScratch[:nSeg]
	for i := range r.layScratch {
		r.layScratch[i] = 0
	}
	if norm <= 0 || len(delta) == 0 {
		return
	}
	if len(r.cfg.LayerBounds) > 0 {
		lo := 0
		for i, hi := range r.cfg.LayerBounds {
			if hi > len(delta) {
				hi = len(delta)
			}
			var s float64
			for _, d := range delta[lo:hi] {
				s += d * d
			}
			r.layScratch[i] = math.Sqrt(s) / norm
			lo = hi
		}
		return
	}
	per := (len(delta) + nSeg - 1) / nSeg
	for i, d := range delta {
		r.layScratch[i/per] += d * d
	}
	for i := range r.layScratch {
		r.layScratch[i] = math.Sqrt(r.layScratch[i]) / norm
	}
}

// judge re-evaluates every rule for the client that just sent an update.
func (r *Recorder) judge(now float64, p *profile) {
	if p.normN < r.cfg.MinSamples {
		return
	}

	// Norm outlier: robust z of the client's windowed median magnitude
	// against the population of per-client medians, judged in BOTH
	// magnitude spaces — the drift-corrected chunk norm (coherent
	// payloads: sign-flip, amplification) and the raw wire L2 (incoherent
	// payloads: noise injections whose random components cancel inside
	// every chunk sum and vanish from signature space). Either space
	// raising convicts; the flag holds while either holds. The rule waits
	// for the client's FULL window: partial warm-up windows differ across
	// clients in exactly the way this rule would misread as outliers.
	popMed, spread, popOK := r.popStats(p, false)
	rawMed, rawSpread, rawOK := r.popStats(p, true)
	if popOK && p.normN >= r.cfg.Window {
		z := (p.median - popMed) / spread
		raise := z >= r.cfg.NormZ && p.median >= r.cfg.NormRatio*popMed
		hold := z >= 0.8*r.cfg.NormZ && p.median >= 0.8*r.cfg.NormRatio*popMed
		if rawOK {
			zRaw := (p.rawMedian - rawMed) / rawSpread
			if zRaw > z {
				z = zRaw
			}
			raise = raise || (zRaw >= r.cfg.NormZ && p.rawMedian >= r.cfg.NormRatio*rawMed)
			hold = hold || (zRaw >= 0.8*r.cfg.NormZ && p.rawMedian >= 0.8*r.cfg.NormRatio*rawMed)
		}
		p.lastZ = z
		r.setFlag(now, p, ruleNorm, raise, hold, z)
	}

	// Direction inversion: refines an armed norm-outlier flag by
	// direction (see Config.CosInvert for why direction alone cannot
	// convict under non-IID data). Gating on the norm flag makes the
	// rule inherit its false-positive behaviour: it can never flag a
	// client the magnitude rule would not.
	if p.cosN >= r.cfg.MinSamples {
		normArmed := p.flags&(1<<ruleNorm) != 0
		raise := normArmed && p.medCos <= r.cfg.CosInvert
		hold := normArmed && p.medCos <= r.cfg.CosInvert+0.15
		r.setFlag(now, p, ruleInvert, raise, hold, p.medCos)
	}

	// Collusion. Two layers separate a colluding clique from honest
	// non-IID heterogeneity:
	//
	// Candidate gate — the client's residual EMA signature (direction
	// EMA minus the population's per-chunk median, with the remaining
	// common-mode component projected out) must be long: the client
	// persistently pushes a private direction. Honest clients' residuals
	// are rotating noise the EMA averages out.
	//
	// Pairing statistic — the windowed MEDIAN of the best pairwise
	// cosine between candidates' residual INSTANTANEOUS signatures.
	// EMAs are useless here: honest clients training one model (or
	// sharing a label subset) have near-identical smoothed directions.
	// Single updates differ by minibatch noise unless the payloads
	// actually coincide — only a clique sending the same direction every
	// round sustains a near-1 instantaneous match for a whole window.
	if r.popSignature() {
		if r.colludeCandidate(p, r.residA) {
			residualize(p.inst, r.instA, r.popInst, r.popInstN)
			best := -1.0
			for _, id := range r.order {
				if id == p.id {
					continue
				}
				q := r.profiles[id]
				if !q.instValid || !r.colludeCandidate(q, r.residB) {
					continue
				}
				residualize(q.inst, r.instB, r.popInst, r.popInstN)
				if s := sigCosine(r.instA, r.instB); s > best {
					best = s
				}
			}
			p.lastSim = best
			if best > -1 {
				p.sims[p.simHead] = best
				p.simHead = (p.simHead + 1) % r.cfg.Window
				if p.simN < r.cfg.Window {
					p.simN++
				}
				p.medSim = r.windowMedian(p.sims, p.simN)
			}
			sustained := p.simN >= r.cfg.MinSamples
			raise := sustained && p.medSim >= r.cfg.SimThreshold
			// Hysteresis margin scales with the threshold's distance
			// from exactness (2T-1 = T - (1-T)): a near-1 threshold gets
			// a correspondingly tight hold band.
			hold := sustained && p.medSim >= 2*r.cfg.SimThreshold-1
			r.setFlag(now, p, ruleCollude, raise, hold, p.medSim)
		} else if p.flags&(1<<ruleCollude) != 0 {
			r.setFlag(now, p, ruleCollude, false, false, p.medSim)
		}
	}
}

// popStats computes the population baseline for one magnitude space
// (raw wire norms or drift-corrected chunk norms): the median and the
// MAD-derived spread of per-client windowed medians. Currently-flagged
// clients other than the judged one are excluded — mirroring the
// reference direction, an attacker's inflated norms must not become the
// yardstick anyone (including itself) is measured against. ok is false
// until MinPeers clients contribute.
func (r *Recorder) popStats(p *profile, raw bool) (popMed, spread float64, ok bool) {
	r.popScratch = r.popScratch[:0]
	for _, id := range r.order {
		q := r.profiles[id]
		if q.normN >= r.cfg.MinSamples && (q.flags == 0 || q == p) {
			if raw {
				r.popScratch = append(r.popScratch, q.rawMedian)
			} else {
				r.popScratch = append(r.popScratch, q.median)
			}
		}
	}
	if len(r.popScratch) < r.cfg.MinPeers {
		return 0, 0, false
	}
	sort.Float64s(r.popScratch)
	popMed = r.popScratch[len(r.popScratch)/2]
	for i, m := range r.popScratch {
		r.popScratch[i] = math.Abs(m - popMed)
	}
	sort.Float64s(r.popScratch)
	mad := r.popScratch[len(r.popScratch)/2]
	spread = 1.4826 * mad
	// Floor the spread at a fraction of the median: a tightly clustered
	// honest population must not make every ripple an outlier.
	if floor := 0.1*popMed + 1e-12; spread < floor {
		spread = floor
	}
	return popMed, spread, true
}

// popSignature computes the population's per-chunk median signature
// into popSig. The median (not mean) keeps a colluding minority from
// dragging the baseline toward its own direction, which would both mute
// the colluders' residuals and imprint an anti-attack component on
// every honest residual. Reports false — collusion disarmed — until
// MinPeers clients have mature signatures.
func (r *Recorder) popSignature() bool {
	mature := 0
	for _, id := range r.order {
		if r.profiles[id].sigN >= int64(r.cfg.MinSamples) {
			mature++
		}
	}
	if mature < r.cfg.MinPeers {
		return false
	}
	for c := range r.popSig {
		r.simScratch = r.simScratch[:0]
		for _, id := range r.order {
			q := r.profiles[id]
			if q.sigN >= int64(r.cfg.MinSamples) {
				r.simScratch = append(r.simScratch, q.sig[c])
			}
		}
		sort.Float64s(r.simScratch)
		r.popSig[c] = r.simScratch[len(r.simScratch)/2]

		// The same median over the LATEST raw signatures: a zero-lag
		// tracker of what every update looks like right now. The staleness
		// drift (server model movement between a client's receive and its
		// send) is a time-local common mode all concurrent updates share;
		// the EMA median above lags it, this one does not.
		r.simScratch = r.simScratch[:0]
		for _, id := range r.order {
			q := r.profiles[id]
			if q.instValid && q.sigN >= int64(r.cfg.MinSamples) {
				r.simScratch = append(r.simScratch, q.inst[c])
			}
		}
		if len(r.simScratch) > 0 {
			sort.Float64s(r.simScratch)
			r.popInst[c] = r.simScratch[len(r.simScratch)/2]
		} else {
			r.popInst[c] = 0
		}
	}
	r.popNorm = sigLen(r.popSig)
	r.popInstN = sigLen(r.popInst)
	return true
}

// colludeCandidate fills dst with the client's residual EMA signature
// and reports whether the client enters collusion pairing: a mature
// signature whose residual is long enough to encode a persistent
// private direction.
func (r *Recorder) colludeCandidate(p *profile, dst []float64) bool {
	if p.sigN < int64(r.cfg.MinSamples) {
		return false
	}
	residualize(p.sig, dst, r.popSig, r.popNorm)
	return sigLen(dst) >= r.cfg.SimConsistency
}

// residualize writes src minus the base population signature into dst,
// then projects out any remaining component along the base direction:
// clients absorb the common mode in different amounts (they train at
// different phases and staleness), and those scalar differences would
// otherwise correlate every honest pair at ±1.
func residualize(src, dst, base []float64, baseNorm float64) {
	for i := range dst {
		dst[i] = src[i] - base[i]
	}
	if baseNorm > 1e-9 {
		var dot float64
		for i := range dst {
			dot += dst[i] * base[i]
		}
		dot /= baseNorm * baseNorm
		for i := range dst {
			dst[i] -= dot * base[i]
		}
	}
}

func sigLen(s []float64) float64 {
	var n float64
	for _, x := range s {
		n += x * x
	}
	return math.Sqrt(n)
}

func sigCosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// setFlag applies one rule's verdict with hysteresis: raise arms the
// flag, hold keeps an armed flag armed, and a still-armed flag re-emits
// its raise event every ReassertEvery updates so sustained anomalies
// stay visible downstream.
func (r *Recorder) setFlag(now float64, p *profile, ri int, raise, hold bool, score float64) {
	bit := uint8(1) << ri
	switch {
	case raise && p.flags&bit == 0:
		p.flags |= bit
		p.sinceEmit[ri] = 0
		r.emit(now, p, ri, score, false)
	case (raise || hold) && p.flags&bit != 0:
		p.sinceEmit[ri]++
		if p.sinceEmit[ri] >= r.cfg.ReassertEvery {
			p.sinceEmit[ri] = 0
			r.emit(now, p, ri, score, false)
		}
	case !hold && p.flags&bit != 0:
		p.flags &^= bit
		r.emit(now, p, ri, score, true)
	}
}

func (r *Recorder) emit(now float64, p *profile, ri int, score float64, clearEv bool) {
	note := ruleNames[ri]
	if clearEv {
		note = ClearPrefix + note
	} else {
		r.raises++
	}
	if !r.sink.Enabled() {
		return
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindAudit,
		Node: r.server, Peer: p.id,
		Stale: p.lastStale, Score: score, Note: note,
	})
}

// Flags reports the rules currently flagging a client, in the fixed rule
// order (nil for unknown or honest-looking clients).
func (r *Recorder) Flags(client int) []string {
	p, ok := r.profiles[client]
	if !ok || p.flags == 0 {
		return nil
	}
	return flagNames(p.flags)
}

func flagNames(flags uint8) []string {
	var out []string
	for ri := 0; ri < numRules; ri++ {
		if flags&(1<<ri) != 0 {
			out = append(out, ruleNames[ri])
		}
	}
	return out
}

// Flagged returns the IDs of every currently-flagged client, sorted.
func (r *Recorder) Flagged() []int {
	var out []int
	for _, id := range r.order {
		if r.profiles[id].flags != 0 {
			out = append(out, id)
		}
	}
	return out
}

// Snapshot renders the audit state as the telemetry section served on
// /debug/telemetry. Rows are sorted by client ID. Nil-safe: a disarmed
// (nil) recorder yields no section.
func (r *Recorder) Snapshot() *obs.TelemetryAudit {
	if r == nil {
		return nil
	}
	a := &obs.TelemetryAudit{Updates: r.updates}
	for _, id := range r.order {
		p := r.profiles[id]
		row := obs.TelemetryAuditClient{
			Client:     id,
			Updates:    p.count,
			MedianNorm: p.median,
			NormZ:      p.lastZ,
			MedianCos:  p.medCos,
			LastStale:  p.lastStale,
			LayerNorms: append([]float64(nil), p.layers...),
			Flags:      flagNames(p.flags),
		}
		if p.gapN > 0 {
			row.MeanGap = p.gapSum / float64(p.gapN)
		}
		if p.flags != 0 {
			a.Flagged++
		}
		a.Clients = append(a.Clients, row)
	}
	return a
}
