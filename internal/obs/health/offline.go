package health

import (
	"fmt"
	"io"
	"sort"

	"github.com/spyker-fl/spyker/internal/obs"
)

// CalibrateTokenTimeout estimates a plausible token regeneration timeout
// from a trace when the run's configuration is not at hand: four times
// the median gap between consecutive token passes. The median is robust
// to the very outage being hunted (a stall contributes one huge gap,
// not many), and the 4x margin — 8x once the silence rule's 2x factor
// is applied — keeps the occasional long-but-healthy handoff (a round
// that waits on slow training) from reading as a stall on rings whose
// rounds run much faster than their configured timeout. Returns 0 when
// the trace holds fewer than two passes (nothing to calibrate on).
func CalibrateTokenTimeout(events []obs.Event) float64 {
	var gaps []float64
	last, valid := 0.0, false
	for i := range events {
		if events[i].Kind != obs.KindTokenPass {
			continue
		}
		if valid && events[i].Time > last {
			gaps = append(gaps, events[i].Time-last)
		}
		last, valid = events[i].Time, true
	}
	if len(gaps) == 0 {
		return 0
	}
	sort.Float64s(gaps)
	return 4 * gaps[len(gaps)/2]
}

// Run evaluates a complete, time-ordered event stream (a DES trace or a
// merged multi-process trace) offline. When cfg.TokenTimeout is unset it
// is calibrated from the trace itself.
func Run(events []obs.Event, cfg Config) *Evaluator {
	if cfg.TokenTimeout <= 0 {
		cfg.TokenTimeout = CalibrateTokenTimeout(events)
	}
	e := New(cfg)
	for i := range events {
		e.Observe(events[i])
	}
	return e
}

// WriteReport renders the evaluator's verdict: final state, effective
// thresholds, and the full alert timeline.
func (e *Evaluator) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "state: %s\n", e.State()); err != nil {
		return err
	}
	tmo := "unknown"
	if e.tokenTmo > 0 {
		tmo = fmt.Sprintf("%.2fs (stall after %.2fs of silence)",
			e.tokenTmo, e.cfg.SilenceFactor*e.tokenTmo)
	}
	if _, err := fmt.Fprintf(w, "stream time: %.2fs   token timeout: %s\n", e.now, tmo); err != nil {
		return err
	}
	if len(e.alerts) == 0 {
		_, err := fmt.Fprintln(w, "no alerts raised")
		return err
	}
	if _, err := fmt.Fprintf(w, "alerts (%d raised):\n", len(e.alerts)); err != nil {
		return err
	}
	for i := range e.alerts {
		a := &e.alerts[i]
		scope := "cluster"
		if a.Node != obs.NoPeer {
			scope = fmt.Sprintf("s%d", a.Node)
			if a.Peer != obs.NoPeer {
				scope += fmt.Sprintf("->s%d", a.Peer)
			}
		}
		end := "active"
		if !a.Active {
			end = fmt.Sprintf("cleared %.2fs", a.Cleared)
		}
		if _, err := fmt.Fprintf(w, "  %8.2fs  %-16s %-8s %-8s %s  [%s]\n",
			a.Raised, a.Rule, a.Severity, scope, a.Detail, end); err != nil {
			return err
		}
	}
	return nil
}
