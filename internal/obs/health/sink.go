package health

import (
	"sync"

	"github.com/spyker-fl/spyker/internal/obs"
)

// Sink adapts an Evaluator to the obs.Sink interface so the health
// model can ride along a DES run or a live server as one more passive
// consumer: it only folds events into the evaluator's own state and
// never calls back into the instrumented system. The mutex makes it
// safe for concurrent emitters (the live runtime); under the DES it
// merely serializes an already-serial stream.
type Sink struct {
	mu sync.Mutex
	ev *Evaluator //spyker:guardedby(mu)
}

// NewSink wraps ev; ev must not be used directly while the sink is
// attached (use the locked accessors below).
func NewSink(ev *Evaluator) *Sink { return &Sink{ev: ev} }

// Enabled reports true: an attached health sink always listens.
func (s *Sink) Enabled() bool { return true }

// Emit folds one event into the evaluator.
func (s *Sink) Emit(ev obs.Event) {
	s.mu.Lock()
	s.ev.Observe(ev)
	s.mu.Unlock()
}

// State reports the evaluator's current classification.
func (s *Sink) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ev.State()
}

// Alerts returns a copy of every alert raised so far.
func (s *Sink) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ev.Alerts()
}

// ActiveAlerts returns the alerts still active.
func (s *Sink) ActiveAlerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ev.ActiveAlerts()
}

// AdvanceTo forwards stream time to the evaluator (the DES driver calls
// this between event batches so purely time-based rules can fire).
func (s *Sink) AdvanceTo(now float64) {
	s.mu.Lock()
	s.ev.AdvanceTo(now)
	s.mu.Unlock()
}
