package health

import (
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

func pass(t float64, from, to int) obs.Event {
	return obs.Event{Time: t, Kind: obs.KindTokenPass, Node: from, Peer: to}
}

func update(t float64, srv int, stale float64) obs.Event {
	return obs.Event{Time: t, Kind: obs.KindClientUpdate, Node: srv, Peer: 7, Stale: stale}
}

func syncStart(t float64, srv int) obs.Event {
	return obs.Event{Time: t, Kind: obs.KindSyncStart, Node: srv, Peer: obs.NoPeer, Bid: 1}
}

func epoch(t float64, srv, ep int) obs.Event {
	return obs.Event{Time: t, Kind: obs.KindMembership, Node: srv, Peer: obs.NoPeer, Bid: ep, Note: "observed"}
}

func findAlert(alerts []Alert, r Rule) *Alert {
	for i := range alerts {
		if alerts[i].Rule == r {
			return &alerts[i]
		}
	}
	return nil
}

// Each rule: drive the evaluator into the alert, assert the typed alert
// and state, then drive recovery and assert the clear.

func TestTokenSilenceRule(t *testing.T) {
	e := New(Config{TokenTimeout: 2}) // stall threshold 4s
	for i := 0; i < 5; i++ {
		e.Observe(pass(float64(i), i%2, (i+1)%2))
	}
	if got := e.State(); got != Healthy {
		t.Fatalf("state after regular passes = %v", got)
	}
	e.AdvanceTo(8) // last pass t=4, silence 4s: at the threshold, not past
	if got := e.State(); got != Healthy {
		t.Fatalf("state at exactly the threshold = %v", got)
	}
	e.AdvanceTo(8.5)
	if got := e.State(); got != Stalled {
		t.Fatalf("state past the threshold = %v", got)
	}
	a := findAlert(e.ActiveAlerts(), RuleTokenSilence)
	if a == nil {
		t.Fatal("no token-silence alert")
	}
	if a.Severity != Stalled || a.Raised != 8 || a.Node != obs.NoPeer {
		t.Errorf("alert = %+v", *a)
	}
	if !strings.Contains(a.Detail, "token") {
		t.Errorf("detail does not name token silence: %q", a.Detail)
	}
	e.Observe(pass(9, 0, 1)) // the ring moves again
	if got := e.State(); got != Healthy {
		t.Fatalf("state after recovery = %v", got)
	}
	a = findAlert(e.Alerts(), RuleTokenSilence)
	if a.Active || a.Cleared != 9 {
		t.Errorf("alert not cleared at recovery: %+v", *a)
	}
}

func TestTokenSilenceFromTelemetry(t *testing.T) {
	e := New(Config{}) // TokenTimeout adopted from snapshots
	snap := func(srv int, at, silence, tmo float64) {
		e.ObserveTelemetry(&obs.Telemetry{
			Version: obs.TelemetryVersion, Server: srv,
			TokenSilence: silence, TokenTimeout: tmo,
		}, at)
	}
	snap(0, 1, 0.1, 1.5)
	snap(1, 1, 0.4, 1.5)
	if e.TokenTimeout() != 1.5 {
		t.Fatalf("adopted timeout = %v", e.TokenTimeout())
	}
	if got := e.State(); got != Healthy {
		t.Fatalf("state = %v", got)
	}
	// every server goes quiet: silences grow past 2x1.5 = 3s
	snap(0, 5, 4.1, 1.5)
	snap(1, 5, 4.4, 1.5)
	if got := e.State(); got != Stalled {
		t.Fatalf("state with cluster-wide silence = %v", got)
	}
	// one server vouches for fresh movement: cleared
	snap(1, 6, 0.2, 1.5)
	if got := e.State(); got != Healthy {
		t.Fatalf("state after movement = %v", got)
	}
}

func TestEpochDivergenceRule(t *testing.T) {
	e := New(Config{EpochGrace: 3})
	e.Observe(epoch(0, 0, 1))
	e.Observe(epoch(0, 1, 1))
	e.AdvanceTo(10)
	if got := e.State(); got != Healthy {
		t.Fatalf("agreeing epochs flagged: %v", got)
	}
	e.Observe(epoch(10, 1, 2)) // server 1 moves to epoch 2, server 0 lags
	e.AdvanceTo(12)
	if got := e.State(); got != Healthy {
		t.Fatalf("divergence inside grace flagged: %v", got)
	}
	e.AdvanceTo(14)
	a := findAlert(e.ActiveAlerts(), RuleEpochDivergence)
	if a == nil || e.State() != Degraded {
		t.Fatalf("no divergence alert: state=%v alerts=%+v", e.State(), e.Alerts())
	}
	if a.Node != 0 || a.Raised != 13 {
		t.Errorf("alert = %+v", *a)
	}
	e.Observe(epoch(15, 0, 2)) // laggard catches up
	if got := e.State(); got != Healthy {
		t.Fatalf("state after convergence = %v", got)
	}
}

func TestOutboxBacklogRule(t *testing.T) {
	e := New(Config{BacklogRise: 3, BacklogMin: 8})
	snap := func(at float64, depth int) {
		e.ObserveTelemetry(&obs.Telemetry{
			Version: obs.TelemetryVersion, Server: 0,
			Peers: []obs.TelemetryPeer{{Peer: 1, OutboxDepth: depth}},
		}, at)
	}
	for i, d := range []int{2, 9, 10, 11} { // rising but streak only 3 at i=3
		snap(float64(i), d)
	}
	if got := e.State(); got != Degraded {
		t.Fatalf("state after monotone backlog growth = %v", got)
	}
	a := findAlert(e.ActiveAlerts(), RuleOutboxBacklog)
	if a == nil || a.Node != 0 || a.Peer != 1 {
		t.Fatalf("alert = %+v", a)
	}
	snap(4, 3) // queue drained
	if got := e.State(); got != Healthy {
		t.Fatalf("state after drain = %v", got)
	}
	// shallow queues may rise forever without alerting
	e2 := New(Config{BacklogRise: 3, BacklogMin: 8})
	for i, d := range []int{1, 2, 3, 4, 5, 6, 7} {
		e2.ObserveTelemetry(&obs.Telemetry{
			Version: obs.TelemetryVersion, Server: 0,
			Peers: []obs.TelemetryPeer{{Peer: 1, OutboxDepth: d}},
		}, float64(i))
	}
	if got := e2.State(); got != Healthy {
		t.Fatalf("shallow rising queue flagged: %v", got)
	}
}

func TestStalenessBlowupRule(t *testing.T) {
	e := New(Config{StalenessChunk: 4, StalenessRise: 3, StalenessFactor: 2})
	at := 0.0
	chunk := func(mean float64) {
		for i := 0; i < 4; i++ {
			e.Observe(update(at, 0, mean))
			at += 0.1
		}
	}
	chunk(1) // baseline
	chunk(1)
	chunk(2)
	chunk(3)
	if got := e.State(); got != Healthy {
		t.Fatalf("state before the full rise streak = %v", got)
	}
	chunk(4) // third consecutive rise, 4x the best chunk
	if got := e.State(); got != Degraded {
		t.Fatalf("state after staleness blow-up = %v", got)
	}
	a := findAlert(e.ActiveAlerts(), RuleStalenessBlowup)
	if a == nil || !strings.Contains(a.Detail, "staleness") {
		t.Fatalf("alert = %+v", a)
	}
	chunk(1.5) // distribution falls back
	if got := e.State(); got != Healthy {
		t.Fatalf("state after staleness recovery = %v", got)
	}
}

func TestSyncFlatlineRule(t *testing.T) {
	e := New(Config{FlatlineFactor: 4})
	for i := 0; i < 4; i++ { // cadence ~1s
		e.Observe(syncStart(float64(i), 0))
	}
	// updates keep arriving, no further rounds: threshold 3+4x1 = 7
	at := 3.5
	for at < 6.9 {
		e.Observe(update(at, 0, 0.5))
		at += 0.5
	}
	if got := e.State(); got != Healthy {
		t.Fatalf("state inside the cadence allowance = %v", got)
	}
	e.Observe(update(7.5, 0, 0.5))
	if got := e.State(); got != Degraded {
		t.Fatalf("state after flatline = %v", got)
	}
	a := findAlert(e.ActiveAlerts(), RuleSyncFlatline)
	if a == nil || a.Raised != 7 {
		t.Fatalf("alert = %+v", a)
	}
	e.Observe(syncStart(8, 1))
	if got := e.State(); got != Healthy {
		t.Fatalf("state after rounds resume = %v", got)
	}

	// a quiet cluster (no updates flowing) never flatlines
	e2 := New(Config{FlatlineFactor: 4})
	for i := 0; i < 4; i++ {
		e2.Observe(syncStart(float64(i), 0))
	}
	e2.AdvanceTo(100)
	if got := e2.State(); got != Healthy {
		t.Fatalf("idle cluster flagged: %v", got)
	}
}

func TestOfflineRunAndReport(t *testing.T) {
	// a healthy prefix, a 20s hole in token movement, recovery
	var events []obs.Event
	at := 0.0
	for i := 0; i < 10; i++ {
		events = append(events, pass(at, i%3, (i+1)%3))
		at += 1.0
	}
	events = append(events, pass(at+20, 0, 1), pass(at+21, 1, 2))

	ev := Run(events, Config{}) // TokenTimeout calibrated: 4 x median gap 1s
	if ev.TokenTimeout() != 4 {
		t.Fatalf("calibrated timeout = %v", ev.TokenTimeout())
	}
	alerts := ev.Alerts()
	a := findAlert(alerts, RuleTokenSilence)
	if a == nil {
		t.Fatal("offline run missed the stall")
	}
	if a.Active {
		t.Errorf("stall not cleared by recovery: %+v", *a)
	}
	if ev.State() != Healthy {
		t.Errorf("final state = %v", ev.State())
	}

	var b strings.Builder
	if err := ev.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"state: healthy", "token-silence", "cleared"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSinkAdapter(t *testing.T) {
	s := NewSink(New(Config{TokenTimeout: 2}))
	if !s.Enabled() {
		t.Fatal("sink disabled")
	}
	s.Emit(pass(0, 0, 1))
	s.Emit(pass(1, 1, 0))
	s.AdvanceTo(10)
	if got := s.State(); got != Stalled {
		t.Fatalf("state through sink = %v", got)
	}
	if len(s.ActiveAlerts()) != 1 || len(s.Alerts()) != 1 {
		t.Fatalf("alerts through sink: %+v", s.Alerts())
	}
}

func auditEvent(t float64, srv, client int, note string) obs.Event {
	return obs.Event{Time: t, Kind: obs.KindAudit, Node: srv, Peer: client, Note: note, Score: 8.5}
}

// TestClientAnomalyRuleFromEvents drives each audit sub-rule through the
// verdict-event path: AuditSustain verdicts raise the per-(server,
// client) alert, and the alert clears only once every still-armed
// sub-rule has emitted its clear.
func TestClientAnomalyRuleFromEvents(t *testing.T) {
	for _, rule := range []string{"norm-outlier", "direction-inversion", "collusion"} {
		rule := rule
		t.Run(rule, func(t *testing.T) {
			e := New(Config{}) // AuditSustain default 2
			e.Observe(auditEvent(1, 0, 5, rule))
			if a := findAlert(e.ActiveAlerts(), RuleClientAnomaly); a != nil {
				t.Fatalf("single verdict raised an alert: %+v", *a)
			}
			e.Observe(auditEvent(2, 0, 5, rule))
			a := findAlert(e.ActiveAlerts(), RuleClientAnomaly)
			if a == nil {
				t.Fatal("sustained verdicts raised no client-anomaly alert")
			}
			if a.Severity != Degraded || a.Node != 0 || a.Peer != 5 {
				t.Errorf("alert = %+v", *a)
			}
			if !strings.Contains(a.Detail, rule) {
				t.Errorf("detail does not name the audit rule: %q", a.Detail)
			}
			if got := e.State(); got != Degraded {
				t.Fatalf("state with anomalous client = %v", got)
			}

			e.Observe(auditEvent(3, 0, 5, "clear:"+rule))
			if a := findAlert(e.ActiveAlerts(), RuleClientAnomaly); a != nil {
				t.Fatalf("alert survived the clear verdict: %+v", *a)
			}
			if got := e.State(); got != Healthy {
				t.Fatalf("state after clear = %v", got)
			}
		})
	}
}

// TestClientAnomalyMultiRuleClear: with two sub-rules armed on the same
// client, clearing one keeps the alert active; clearing the second
// retires it.
func TestClientAnomalyMultiRuleClear(t *testing.T) {
	e := New(Config{})
	e.Observe(auditEvent(1, 2, 9, "norm-outlier"))
	e.Observe(auditEvent(2, 2, 9, "collusion"))
	a := findAlert(e.ActiveAlerts(), RuleClientAnomaly)
	if a == nil || a.Node != 2 || a.Peer != 9 {
		t.Fatalf("no alert after two verdicts: %+v", e.ActiveAlerts())
	}
	e.Observe(auditEvent(3, 2, 9, "clear:norm-outlier"))
	if findAlert(e.ActiveAlerts(), RuleClientAnomaly) == nil {
		t.Fatal("alert cleared while collusion still armed")
	}
	e.Observe(auditEvent(4, 2, 9, "clear:collusion"))
	if a := findAlert(e.ActiveAlerts(), RuleClientAnomaly); a != nil {
		t.Fatalf("alert survived full clear: %+v", *a)
	}
}

// TestClientAnomalyScopedPerClient: verdicts for different clients of
// the same server raise independent alerts.
func TestClientAnomalyScopedPerClient(t *testing.T) {
	e := New(Config{})
	for _, c := range []int{3, 4} {
		e.Observe(auditEvent(1, 0, c, "norm-outlier"))
		e.Observe(auditEvent(2, 0, c, "norm-outlier"))
	}
	var got int
	for _, a := range e.ActiveAlerts() {
		if a.Rule == RuleClientAnomaly {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("expected 2 per-client alerts, got %d: %+v", got, e.ActiveAlerts())
	}
	e.Observe(auditEvent(3, 0, 3, "clear:norm-outlier"))
	if len(e.ActiveAlerts()) != 1 {
		t.Fatalf("clearing client 3 should leave client 4 flagged: %+v", e.ActiveAlerts())
	}
}

// TestClientAnomalyFromTelemetry drives the poll path: consecutive
// flagged telemetry polls raise the alert, an unflagged poll (and a
// poll no longer reporting the client at all) clears it.
func TestClientAnomalyFromTelemetry(t *testing.T) {
	flagged := func(flags ...string) *obs.Telemetry {
		return &obs.Telemetry{
			Server: 1,
			Audit: &obs.TelemetryAudit{
				Updates: 10,
				Clients: []obs.TelemetryAuditClient{{Client: 6, Updates: 10, Flags: flags}},
			},
		}
	}
	e := New(Config{})
	e.ObserveTelemetry(flagged("norm-outlier"), 1)
	if a := findAlert(e.ActiveAlerts(), RuleClientAnomaly); a != nil {
		t.Fatalf("single flagged poll raised an alert: %+v", *a)
	}
	e.ObserveTelemetry(flagged("norm-outlier"), 2)
	a := findAlert(e.ActiveAlerts(), RuleClientAnomaly)
	if a == nil {
		t.Fatal("sustained flagged polls raised no alert")
	}
	if a.Node != 1 || a.Peer != 6 || a.Severity != Degraded {
		t.Errorf("alert = %+v", *a)
	}

	e.ObserveTelemetry(flagged(), 3) // same client polled, no flags
	if a := findAlert(e.ActiveAlerts(), RuleClientAnomaly); a != nil {
		t.Fatalf("alert survived an unflagged poll: %+v", *a)
	}

	// Re-raise, then drop the client from the report entirely.
	e.ObserveTelemetry(flagged("collusion"), 4)
	e.ObserveTelemetry(flagged("collusion"), 5)
	if findAlert(e.ActiveAlerts(), RuleClientAnomaly) == nil {
		t.Fatal("re-raise failed")
	}
	e.ObserveTelemetry(&obs.Telemetry{Server: 1, Audit: &obs.TelemetryAudit{Updates: 12}}, 6)
	if a := findAlert(e.ActiveAlerts(), RuleClientAnomaly); a != nil {
		t.Fatalf("alert survived the client vanishing from telemetry: %+v", *a)
	}
}
