package health

import "github.com/spyker-fl/spyker/internal/obs"

// ObserveTelemetry folds one server's telemetry snapshot into the model.
// at is the collector's own stream time for the snapshot (NOT the
// snapshot's Time field — each server stamps telemetry with its private
// process clock, so only durations inside the snapshot are meaningful
// across servers). Counters are diffed against the previous snapshot of
// the same server; a counter running backwards (the process restarted)
// re-baselines instead of producing garbage deltas.
func (e *Evaluator) ObserveTelemetry(t *obs.Telemetry, at float64) {
	e.AdvanceTo(at)
	s := e.server(t.Server)

	if e.cfg.TokenTimeout <= 0 && t.TokenTimeout > e.tokenTmo {
		e.tokenTmo = t.TokenTimeout
	}

	s.epochValid = true
	s.epoch = t.Epoch
	e.checkEpochs(at)

	// TokenSilence is a duration on the reporting server's clock; the
	// most recent movement any server vouches for wins. A server that
	// stops reporting stops vouching, so cluster silence keeps growing.
	if t.TokenSilence >= 0 {
		e.noteTokenMove(at - t.TokenSilence)
	}

	syncs := t.SyncsTriggered + t.SyncsJoined
	staleN := t.StalenessTotal()
	if s.telValid &&
		t.Updates >= s.updates && syncs >= s.syncs &&
		staleN >= s.stalenessN && t.StalenessSum >= s.stalenessSum {
		if syncs > s.syncs {
			e.noteSync(at)
		}
		e.updSinceSync += t.Updates - s.updates
		e.noteStaleness(t.StalenessSum-s.stalenessSum, staleN-s.stalenessN, at)
	}
	s.telValid = true
	s.updates = t.Updates
	s.syncs = syncs
	s.stalenessN = staleN
	s.stalenessSum = t.StalenessSum

	for _, p := range t.Peers {
		e.noteBacklog(t.Server, p.Peer, p.OutboxDepth, at)
	}

	// Audit standing: a flagged client extends its anomaly streak each
	// poll; a client reported without flags (or no longer reported at
	// all) clears it.
	if t.Audit != nil {
		polled := map[int]bool{}
		for i := range t.Audit.Clients {
			c := &t.Audit.Clients[i]
			polled[c.Client] = true
			e.noteAuditFlags(t.Server, c.Client, c.Flags, at)
		}
		for k, a := range e.audits { //lint:sorted clears only, order-independent
			if k[0] == t.Server && !polled[k[1]] && (a.streak != 0 || len(a.rules) != 0) {
				e.noteAuditFlags(t.Server, k[1], nil, at)
			}
		}
	}

	e.AdvanceTo(at)
}
