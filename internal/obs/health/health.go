// Package health implements the cluster health model: a deterministic
// evaluator that folds a stream of protocol events (DES or merged
// traces) and/or telemetry snapshots (live polling) into a
// healthy/degraded/stalled classification with typed alerts.
//
// The evaluator is a pure function of its input stream — it never reads
// the wall clock or draws randomness, and it iterates no maps — so the
// same stream always yields the same alerts, and fault-plan tests can
// assert that injected failures are *detected*, not just survived. The
// package is registered in spyker-lint's deterministic set.
package health

import (
	"fmt"
	"sort"
	"strings"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

// State classifies the cluster. Ordering is severity: a higher value is
// strictly worse, and the cluster state is the maximum severity of the
// active alerts.
type State int

const (
	// Healthy: no active alerts.
	Healthy State = iota
	// Degraded: progress continues but some resource or invariant is
	// slipping (epoch divergence, backlog growth, staleness blow-up,
	// sync-cadence flatline).
	Degraded
	// Stalled: the synchronization ring itself has stopped moving.
	Stalled
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Stalled:
		return "stalled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Rule identifies which detection rule raised an alert.
type Rule string

const (
	// RuleTokenSilence: no token movement anywhere in the cluster for
	// longer than SilenceFactor x TokenTimeout. A healthy ring hands the
	// token off at least once per regeneration timeout (silence past
	// TokenTimeout mints a replacement token), so silence past a multiple
	// of it means even recovery is not restoring circulation. Stalled.
	RuleTokenSilence Rule = "token-silence"
	// RuleEpochDivergence: servers report different membership epochs for
	// longer than EpochGrace. Transient divergence is normal while an
	// epoch propagates; a persistent split means part of the ring is
	// partitioned from membership news. Degraded.
	RuleEpochDivergence Rule = "epoch-divergence"
	// RuleOutboxBacklog: a peer link's outbox depth grew monotonically
	// across BacklogRise consecutive snapshots and sits at or above
	// BacklogMin — the receiver is slower than the sender or gone.
	// Telemetry-only (traces do not carry queue depths). Degraded.
	RuleOutboxBacklog Rule = "outbox-backlog"
	// RuleStalenessBlowup: the mean staleness of aggregated client
	// updates rose across StalenessRise consecutive chunks and exceeds
	// StalenessFactor x the best chunk mean seen — updates are aging
	// faster than the ring refreshes models. Degraded.
	RuleStalenessBlowup Rule = "staleness-blowup"
	// RuleSyncFlatline: client updates keep flowing but no
	// synchronization round has started for FlatlineFactor x the
	// observed round cadence. Degraded.
	RuleSyncFlatline Rule = "sync-flatline"
	// RuleClientAnomaly: the contribution audit plane
	// (internal/obs/audit) has flagged a client AuditSustain or more
	// times in a row — from KindAudit verdict events (traces, DES) or
	// from consecutive flagged telemetry polls — without an intervening
	// full clear. One anomalous client degrades the server merging it,
	// not the whole cluster. Degraded.
	RuleClientAnomaly Rule = "client-anomaly"
)

// Alert is one raised detection. An alert stays active until its clear
// condition holds; Cleared then records when.
type Alert struct {
	Rule     Rule
	Severity State
	// Raised is when the rule's condition was crossed (stream time).
	Raised float64
	// Node is the offending server, or obs.NoPeer for cluster-wide
	// alerts; Peer narrows link-scoped alerts (obs.NoPeer otherwise).
	Node int
	Peer int
	// Detail is a human-readable explanation naming the rule's inputs.
	Detail string
	// Active is true until the condition clears; Cleared is the clear
	// time once it does.
	Active  bool
	Cleared float64
}

// Config tunes the detection rules. The zero value is usable: every
// field defaults as documented, and rules whose inputs are absent
// (e.g. TokenTimeout unknown and uncalibrated) stay silent rather than
// guessing.
type Config struct {
	// TokenTimeout is the cluster's token regeneration timeout in stream
	// seconds. 0 means unknown: the evaluator adopts the largest value
	// self-reported in telemetry, or an offline caller calibrates it from
	// the trace (CalibrateTokenTimeout).
	TokenTimeout float64
	// SilenceFactor scales TokenTimeout into the stall threshold
	// (default 2).
	SilenceFactor float64
	// EpochGrace is how long membership epochs may diverge before the
	// alert (default 2 x TokenTimeout, or 5s when that is unknown).
	EpochGrace float64
	// FlatlineFactor scales the observed sync cadence into the flatline
	// threshold (default 4).
	FlatlineFactor float64
	// BacklogRise is how many consecutive strictly-rising snapshots of
	// one outbox arm the backlog alert (default 3); BacklogMin is the
	// minimum depth that may alert (default 8).
	BacklogRise int
	BacklogMin  int
	// StalenessRise is how many consecutive rising staleness chunks arm
	// the blow-up alert (default 4); StalenessFactor the multiple of the
	// best chunk mean that must be exceeded (default 4); StalenessChunk
	// the number of aggregated updates per chunk (default 32).
	StalenessRise   int
	StalenessFactor float64
	StalenessChunk  int
	// AuditSustain is how many consecutive audit verdicts (raise or
	// reassert events, or flagged telemetry polls) a client must
	// accumulate before the anomaly alert raises (default 2 — a single
	// transient verdict is the audit plane's hysteresis to manage, not
	// an operator page).
	AuditSustain int
}

func (c Config) withDefaults() Config {
	if c.SilenceFactor <= 0 {
		c.SilenceFactor = 2
	}
	if c.EpochGrace <= 0 {
		if c.TokenTimeout > 0 {
			c.EpochGrace = 2 * c.TokenTimeout
		} else {
			c.EpochGrace = 5
		}
	}
	if c.FlatlineFactor <= 0 {
		c.FlatlineFactor = 4
	}
	if c.BacklogRise <= 0 {
		c.BacklogRise = 3
	}
	if c.BacklogMin <= 0 {
		c.BacklogMin = 8
	}
	if c.StalenessRise <= 0 {
		c.StalenessRise = 4
	}
	if c.StalenessFactor <= 0 {
		c.StalenessFactor = 4
	}
	if c.StalenessChunk <= 0 {
		c.StalenessChunk = 32
	}
	if c.AuditSustain <= 0 {
		c.AuditSustain = 2
	}
	return c
}

type serverState struct {
	epochValid bool
	epoch      int
	// telemetry deltas
	telValid     bool
	updates      int64
	syncs        int
	stalenessSum float64
	stalenessN   int64
}

type linkState struct {
	valid  bool
	depth  int
	streak int
}

// auditState tracks one (server, client) pair's standing with the audit
// plane: which rules currently flag it and how many consecutive
// verdicts it has accumulated since the last full clear.
type auditState struct {
	rules  map[string]bool
	streak int
}

type alertKey struct {
	rule Rule
	node int
	peer int
}

// Evaluator folds events and telemetry snapshots into a health state.
// Feed it obs.Events (Observe), telemetry snapshots (ObserveTelemetry),
// and time (AdvanceTo) in non-decreasing stream order; it is not
// goroutine-safe — wrap it in Sink for concurrent emitters.
type Evaluator struct {
	cfg Config
	now float64

	servers  []int // sorted IDs of every server seen in the stream
	perSrv   map[int]*serverState
	links    map[[2]int]*linkState
	audits   map[[2]int]*auditState // (server, client) -> audit standing
	tokenTmo float64                // effective TokenTimeout (cfg or adopted)

	lastMoveValid bool
	lastMove      float64 // last token movement anywhere

	lastSyncValid bool
	lastSync      float64
	syncGaps      []float64 // last few inter-sync gaps, cadence estimate
	updSinceSync  int64

	divergedValid bool
	divergedSince float64
	divergedLag   int
	divergedSpan  [2]int

	chunkSum  float64
	chunkN    int64
	bestMean  float64
	bestValid bool
	prevMean  float64
	prevValid bool
	riseRun   int

	alerts []Alert
	active map[alertKey]int // -> index into alerts
}

// New returns an evaluator with cfg's defaults applied.
func New(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	return &Evaluator{
		cfg:      cfg,
		perSrv:   map[int]*serverState{},
		links:    map[[2]int]*linkState{},
		audits:   map[[2]int]*auditState{},
		tokenTmo: cfg.TokenTimeout,
		active:   map[alertKey]int{},
	}
}

// TokenTimeout reports the effective regeneration timeout the evaluator
// is judging silence against (configured, adopted, or 0 if unknown).
func (e *Evaluator) TokenTimeout() float64 { return e.tokenTmo }

// Now reports the latest stream time the evaluator has advanced to.
func (e *Evaluator) Now() float64 { return e.now }

// State reports the current classification: the maximum severity of the
// active alerts.
func (e *Evaluator) State() State {
	s := Healthy
	for i := range e.alerts {
		a := &e.alerts[i]
		if a.Active && a.Severity > s {
			s = a.Severity
		}
	}
	return s
}

// Alerts returns a copy of every alert raised so far, in raise order,
// including cleared ones.
func (e *Evaluator) Alerts() []Alert {
	return append([]Alert(nil), e.alerts...)
}

// ActiveAlerts returns the alerts still active, in raise order.
func (e *Evaluator) ActiveAlerts() []Alert {
	var out []Alert
	for i := range e.alerts {
		if e.alerts[i].Active {
			out = append(out, e.alerts[i])
		}
	}
	return out
}

func (e *Evaluator) server(id int) *serverState {
	if s, ok := e.perSrv[id]; ok {
		return s
	}
	s := &serverState{}
	e.perSrv[id] = s
	e.servers = append(e.servers, id)
	sort.Ints(e.servers)
	return s
}

func (e *Evaluator) raise(rule Rule, sev State, at float64, node, peer int, detail string) {
	k := alertKey{rule, node, peer}
	if _, ok := e.active[k]; ok {
		return
	}
	e.alerts = append(e.alerts, Alert{
		Rule: rule, Severity: sev, Raised: at,
		Node: node, Peer: peer, Detail: detail, Active: true,
	})
	e.active[k] = len(e.alerts) - 1
}

func (e *Evaluator) clear(rule Rule, at float64, node, peer int) {
	k := alertKey{rule, node, peer}
	i, ok := e.active[k]
	if !ok {
		return
	}
	delete(e.active, k)
	e.alerts[i].Active = false
	e.alerts[i].Cleared = at
}

// Observe folds one protocol event (from a DES sink, a single live
// trace, or a merged cluster trace) into the model. Time advances to the
// event's stamp and the threshold checks run BEFORE the event is
// ingested, so a recovery event (the first token pass after a stall)
// first exposes the silence window it ends, then clears the alert — the
// raise and the clear both appear in the timeline.
func (e *Evaluator) Observe(ev obs.Event) {
	e.AdvanceTo(ev.Time)
	switch ev.Kind {
	case obs.KindTokenPass:
		e.noteTokenMove(ev.Time)
	case obs.KindSyncStart:
		e.noteSync(ev.Time)
	case obs.KindClientUpdate:
		node := ev.Node
		if node >= obs.ServerNode {
			node = node - obs.ServerNode
		}
		e.server(node)
		e.updSinceSync++
		e.noteStaleness(ev.Stale, 1, ev.Time)
	case obs.KindMembership:
		e.server(ev.Node).epochValid = true
		e.perSrv[ev.Node].epoch = ev.Bid
		e.checkEpochs(ev.Time)
	case obs.KindAudit:
		e.noteAudit(ev)
	}
}

// noteAudit folds one audit verdict event. Raise and reassert events
// grow the (server, client) streak; a clear event retires its rule and,
// once no rule still flags the pair, clears the alert and resets the
// streak.
func (e *Evaluator) noteAudit(ev obs.Event) {
	e.server(ev.Node)
	k := [2]int{ev.Node, ev.Peer}
	a, ok := e.audits[k]
	if !ok {
		a = &auditState{rules: map[string]bool{}}
		e.audits[k] = a
	}
	if rule, cleared := strings.CutPrefix(ev.Note, audit.ClearPrefix); cleared {
		delete(a.rules, rule)
		if len(a.rules) == 0 {
			a.streak = 0
			e.clear(RuleClientAnomaly, ev.Time, ev.Node, ev.Peer)
		}
		return
	}
	a.rules[ev.Note] = true
	a.streak++
	if a.streak >= e.cfg.AuditSustain {
		e.raise(RuleClientAnomaly, Degraded, ev.Time, ev.Node, ev.Peer,
			fmt.Sprintf("server %d audit flagged client %d: %s (%d verdicts, score %.3f)",
				ev.Node, ev.Peer, ev.Note, a.streak, ev.Score))
	}
}

// noteAuditFlags folds one telemetry poll's audit standing for a client:
// a flagged poll extends the streak, an unflagged poll clears it.
func (e *Evaluator) noteAuditFlags(server, client int, flags []string, at float64) {
	k := [2]int{server, client}
	a, ok := e.audits[k]
	if !ok {
		if len(flags) == 0 {
			return
		}
		a = &auditState{rules: map[string]bool{}}
		e.audits[k] = a
	}
	if len(flags) == 0 {
		if a.streak != 0 || len(a.rules) != 0 {
			a.rules = map[string]bool{}
			a.streak = 0
			e.clear(RuleClientAnomaly, at, server, client)
		}
		return
	}
	a.rules = map[string]bool{}
	for _, f := range flags {
		a.rules[f] = true
	}
	a.streak++
	if a.streak >= e.cfg.AuditSustain {
		e.raise(RuleClientAnomaly, Degraded, at, server, client,
			fmt.Sprintf("server %d audit flagged client %d: %s (%d polls)",
				server, client, strings.Join(flags, ","), a.streak))
	}
}

// AdvanceTo moves stream time forward and runs the purely time-based
// checks (silence and flatline thresholds crossing with no event to
// trigger them). Time never moves backwards.
func (e *Evaluator) AdvanceTo(now float64) {
	if now > e.now {
		e.now = now
	}
	e.checkSilence()
	e.checkFlatline()
	e.checkDivergence()
}

func (e *Evaluator) noteTokenMove(at float64) {
	if !e.lastMoveValid || at > e.lastMove {
		e.lastMove = at
		e.lastMoveValid = true
	}
	if at > e.now {
		e.now = at
	}
	if thr := e.silenceThreshold(); thr <= 0 || e.now-e.lastMove <= thr {
		e.clear(RuleTokenSilence, at, obs.NoPeer, obs.NoPeer)
	}
}

func (e *Evaluator) silenceThreshold() float64 {
	if e.tokenTmo <= 0 {
		return 0
	}
	return e.cfg.SilenceFactor * e.tokenTmo
}

func (e *Evaluator) checkSilence() {
	thr := e.silenceThreshold()
	if thr <= 0 || !e.lastMoveValid {
		return
	}
	if e.now-e.lastMove > thr {
		e.raise(RuleTokenSilence, Stalled, e.lastMove+thr, obs.NoPeer, obs.NoPeer,
			fmt.Sprintf("no token movement for %.2fs (> %.1fx token timeout %.2fs)",
				e.now-e.lastMove, e.cfg.SilenceFactor, e.tokenTmo))
	}
}

func (e *Evaluator) noteSync(at float64) {
	if e.lastSyncValid && at > e.lastSync {
		e.syncGaps = append(e.syncGaps, at-e.lastSync)
		if len(e.syncGaps) > 9 {
			e.syncGaps = e.syncGaps[1:]
		}
	}
	if !e.lastSyncValid || at > e.lastSync {
		e.lastSync = at
		e.lastSyncValid = true
	}
	e.updSinceSync = 0
	e.clear(RuleSyncFlatline, at, obs.NoPeer, obs.NoPeer)
}

// cadence estimates the normal inter-sync gap: the median of recent
// gaps, floored by TokenTimeout when known (regeneration bounds how
// long a healthy ring can go without starting a round).
func (e *Evaluator) cadence() float64 {
	if len(e.syncGaps) == 0 {
		return e.tokenTmo
	}
	gaps := append([]float64(nil), e.syncGaps...)
	sort.Float64s(gaps)
	med := gaps[len(gaps)/2]
	if e.tokenTmo > med {
		return e.tokenTmo
	}
	return med
}

func (e *Evaluator) checkFlatline() {
	if !e.lastSyncValid || e.updSinceSync == 0 {
		return
	}
	cad := e.cadence()
	if cad <= 0 {
		return
	}
	thr := e.cfg.FlatlineFactor * cad
	if e.now-e.lastSync > thr {
		e.raise(RuleSyncFlatline, Degraded, e.lastSync+thr, obs.NoPeer, obs.NoPeer,
			fmt.Sprintf("%d updates merged but no sync round for %.2fs (cadence ~%.2fs)",
				e.updSinceSync, e.now-e.lastSync, cad))
	}
}

// checkEpochs recomputes the divergence window from the per-server
// epoch views.
func (e *Evaluator) checkEpochs(at float64) {
	lo, hi, n := 0, 0, 0
	loNode := obs.NoPeer
	for _, id := range e.servers {
		s := e.perSrv[id]
		if !s.epochValid {
			continue
		}
		if n == 0 || s.epoch < lo {
			lo = s.epoch
			loNode = id
		}
		if n == 0 || s.epoch > hi {
			hi = s.epoch
		}
		n++
	}
	if n < 2 || lo == hi {
		if e.divergedValid {
			e.divergedValid = false
			e.clear(RuleEpochDivergence, at, e.divergedLag, obs.NoPeer)
		}
		return
	}
	if !e.divergedValid {
		e.divergedValid = true
		e.divergedSince = at
		e.divergedLag = loNode
		e.divergedSpan = [2]int{lo, hi}
	}
}

func (e *Evaluator) checkDivergence() {
	if !e.divergedValid {
		return
	}
	if e.now-e.divergedSince > e.cfg.EpochGrace {
		e.raise(RuleEpochDivergence, Degraded, e.divergedSince+e.cfg.EpochGrace,
			e.divergedLag, obs.NoPeer,
			fmt.Sprintf("membership epochs split %d..%d for %.2fs (server %d lagging)",
				e.divergedSpan[0], e.divergedSpan[1], e.now-e.divergedSince, e.divergedLag))
	}
}

// noteStaleness accumulates n aggregated updates totalling sum staleness
// and evaluates completed chunks.
func (e *Evaluator) noteStaleness(sum float64, n int64, at float64) {
	if n <= 0 {
		return
	}
	e.chunkSum += sum
	e.chunkN += n
	if e.chunkN < int64(e.cfg.StalenessChunk) {
		return
	}
	mean := e.chunkSum / float64(e.chunkN)
	e.chunkSum, e.chunkN = 0, 0

	if e.prevValid && mean > e.prevMean {
		e.riseRun++
	} else if e.prevValid {
		e.riseRun = 0
		e.clear(RuleStalenessBlowup, at, obs.NoPeer, obs.NoPeer)
	}
	e.prevMean, e.prevValid = mean, true
	if !e.bestValid || mean < e.bestMean {
		e.bestMean, e.bestValid = mean, true
	}
	// The multiplicative baseline is floored at one age unit: staleness
	// can be negative or near zero in healthy runs (a client may train
	// on a model newer than the merging server's), and "N x of ~0" would
	// call any drift a blow-up. Below one unit of mean staleness the
	// ring is refreshing models faster than updates age — never a
	// blow-up, whatever the ratio.
	base := e.bestMean
	if base < 1 {
		base = 1
	}
	if e.riseRun >= e.cfg.StalenessRise && mean >= e.cfg.StalenessFactor*base {
		e.raise(RuleStalenessBlowup, Degraded, at, obs.NoPeer, obs.NoPeer,
			fmt.Sprintf("mean staleness rose %d chunks to %.3f (%.1fx the floored best chunk %.3f)",
				e.riseRun, mean, mean/base, base))
	}
}

// noteBacklog folds one snapshot of a peer link's outbox depth.
func (e *Evaluator) noteBacklog(node, peer, depth int, at float64) {
	k := [2]int{node, peer}
	l, ok := e.links[k]
	if !ok {
		l = &linkState{}
		e.links[k] = l
	}
	if l.valid && depth > l.depth {
		l.streak++
	} else if l.valid {
		l.streak = 0
	}
	prev := l.depth
	l.depth, l.valid = depth, true
	if l.streak >= e.cfg.BacklogRise && depth >= e.cfg.BacklogMin {
		e.raise(RuleOutboxBacklog, Degraded, at, node, peer,
			fmt.Sprintf("outbox s%d->s%d grew %d polls to depth %d", node, peer, l.streak, depth))
	} else if depth <= prev || depth < e.cfg.BacklogMin {
		e.clear(RuleOutboxBacklog, at, node, peer)
	}
}
