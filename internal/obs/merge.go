package obs

import (
	"fmt"
	"math"
	"sort"
)

// MergedTrace is the result of aligning several per-process traces onto
// one timeline.
type MergedTrace struct {
	// Events is the merged, time-sorted event stream with every input
	// trace's timestamps shifted onto the reference clock (input 0).
	Events []Event
	// Sources[i] is the server ID inferred as the emitter of input i.
	Sources []int
	// Offsets[i] is the clock offset (seconds) subtracted from every
	// timestamp of input i to map it onto the reference clock: input i's
	// clock read Offsets[i] more than input 0's at the same instant.
	Offsets []float64
	// Matched[i] is how many send/recv pairs constrained input i's offset
	// (0 for the reference trace).
	Matched []int
}

// MergeTraces aligns per-process JSONL traces onto one timeline. Each
// live spyker-live server process stamps its events with its own
// wall-seconds-since-start clock, so traces of one deployment are
// mutually skewed by the processes' start times. The offsets are
// estimated pairwise from matched message send/recv pairs on the
// inter-server links (token handoffs and model/age broadcasts): a frame
// a->b observed as KindMsgSend at a and KindMsgRecv at b bounds the
// clock offset d_ab (b's clock minus a's) from above by recv-send, and a
// frame b->a bounds it from below by send-recv; the midpoint of the
// tightest bounds is the estimate — the classic NTP derivation. Matching
// is FIFO per directed link, which stays a valid bound even when frames
// were lost (a lost frame only loosens the upper bound, never corrupts
// it), so merging traces of a run with crashes still works.
//
// The estimate errs by at most the asymmetry of the fastest frame's
// one-way delays, and by construction every directly matched pair stays
// causally ordered after the shift: a token handoff's recv never
// precedes its send on the merged timeline.
//
// Every input must be a single-process trace (all events from one
// server); offsets are propagated from trace 0 across the pairwise
// estimates, so every input must be connected to the reference through
// observed traffic. A single input is returned unchanged with offset 0.
func MergeTraces(traces [][]Event) (*MergedTrace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("obs: merge of zero traces")
	}
	m := &MergedTrace{
		Sources: make([]int, len(traces)),
		Offsets: make([]float64, len(traces)),
		Matched: make([]int, len(traces)),
	}
	for i, tr := range traces {
		id, err := traceSource(tr)
		if err != nil {
			return nil, fmt.Errorf("obs: merge input %d: %w", i, err)
		}
		m.Sources[i] = id
	}
	for i, a := range m.Sources {
		for j := 0; j < i; j++ {
			if m.Sources[j] == a {
				return nil, fmt.Errorf("obs: merge inputs %d and %d both emitted by server %d", j, i, a)
			}
		}
	}

	if len(traces) > 1 {
		if err := m.solveOffsets(traces); err != nil {
			return nil, err
		}
	}

	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	m.Events = make([]Event, 0, total)
	for i, tr := range traces {
		off := m.Offsets[i]
		for _, e := range tr {
			e.Time -= off
			m.Events = append(m.Events, e)
		}
	}
	sort.SliceStable(m.Events, func(i, j int) bool { return m.Events[i].Time < m.Events[j].Time })
	return m, nil
}

// traceSource infers which server emitted a single-process trace: every
// message event carries the emitter as its ServerNode-offset Node, and
// every protocol event carries it as a raw index. All events must agree.
func traceSource(events []Event) (int, error) {
	id, found := 0, false
	for i := range events {
		e := &events[i]
		var cand int
		switch {
		case e.Node >= ServerNode:
			cand = e.Node - ServerNode
		case e.Kind == KindMsgSend || e.Kind == KindMsgRecv:
			continue // client-side message event (client IDs are ambiguous)
		default:
			cand = e.Node
		}
		if !found {
			id, found = cand, true
			continue
		}
		if cand != id {
			return 0, fmt.Errorf("events from servers %d and %d: not a single-process trace", id, cand)
		}
	}
	if !found {
		return 0, fmt.Errorf("cannot infer the emitting server (no events)")
	}
	return id, nil
}

// linkBounds extracts the offset bounds between traces a (emitter ida)
// and b (emitter idb): hi = min over matched a->b frames of recv-send,
// lo = max over matched b->a frames of send-recv, so lo <= d_ab <= hi
// where d_ab is b's clock minus a's.
func linkBounds(a, b []Event, ida, idb int) (lo, hi float64, n int) {
	lo, hi = math.Inf(-1), math.Inf(1)
	fwd := matchedDeltas(a, b, ida, idb) // recv_b - send_a per matched frame
	for _, d := range fwd {
		if d < hi {
			hi = d
		}
	}
	rev := matchedDeltas(b, a, idb, ida) // recv_a - send_b
	for _, d := range rev {
		if -d > lo {
			lo = -d
		}
	}
	return lo, hi, len(fwd) + len(rev)
}

// matchedDeltas FIFO-matches the sender's KindMsgSend events to the
// receiver's KindMsgRecv events on the directed link ids->idr and
// returns recv-send per pair.
func matchedDeltas(sender, receiver []Event, ids, idr int) []float64 {
	var sends, recvs []float64
	for i := range sender {
		e := &sender[i]
		if e.Kind == KindMsgSend && e.Node == ServerNode+ids && e.Peer == ServerNode+idr {
			sends = append(sends, e.Time)
		}
	}
	for i := range receiver {
		e := &receiver[i]
		if e.Kind == KindMsgRecv && e.Node == ServerNode+idr && e.Peer == ServerNode+ids {
			recvs = append(recvs, e.Time)
		}
	}
	n := len(sends)
	if len(recvs) < n {
		n = len(recvs)
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = recvs[k] - sends[k]
	}
	return out
}

// solveOffsets propagates clock offsets from trace 0 across the pairwise
// bound graph (breadth-first over traces connected by matched traffic).
func (m *MergedTrace) solveOffsets(traces [][]Event) error {
	n := len(traces)
	type edge struct {
		to  int
		d   float64
		cnt int
	}
	adj := make([][]edge, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lo, hi, cnt := linkBounds(traces[i], traces[j], m.Sources[i], m.Sources[j])
			if cnt == 0 {
				continue
			}
			var d float64
			switch {
			case !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
				d = (lo + hi) / 2
			case !math.IsInf(hi, 1):
				d = hi // one-directional traffic: assume the fastest frame was instant
			default:
				d = lo
			}
			adj[i] = append(adj[i], edge{to: j, d: d, cnt: cnt})
			adj[j] = append(adj[j], edge{to: i, d: -d, cnt: cnt})
		}
	}

	seen := make([]bool, n)
	seen[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if seen[e.to] {
				continue
			}
			seen[e.to] = true
			m.Offsets[e.to] = m.Offsets[cur] + e.d
			m.Matched[e.to] = e.cnt
			queue = append(queue, e.to)
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("obs: merge input %d (server %d) shares no matched traffic with the reference trace",
				i, m.Sources[i])
		}
	}
	return nil
}
