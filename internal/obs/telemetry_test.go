package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTelemetryRoundTrip(t *testing.T) {
	in := &Telemetry{
		Version:      TelemetryVersion,
		Time:         12.5,
		Server:       2,
		Addr:         "127.0.0.1:9102",
		DebugAddr:    "127.0.0.1:8102",
		Epoch:        3,
		Members:      []int{0, 1, 2},
		Addrs:        []string{"127.0.0.1:9100", "", "127.0.0.1:9102"},
		HoldsToken:   true,
		TokenSilence: 0.25,
		TokenTimeout: 1.5,
		SyncRetry:    0.75,
		Age:          4.5,
		Ages:         []float64{4.5, 4.25, 4.5},
		Frontier:     []int64{10, 7, 9},
		Updates:      26,
		TokenRegens:  1,
		MaxBidSeen:   5,
		Peers: []TelemetryPeer{
			{Peer: 0, OutboxDepth: 2},
			{Peer: 1, OutboxDepth: 0, Failed: true},
		},
		FailedOutboxes:  1,
		PeerReconnects:  3,
		StalenessBounds: []float64{1, 2, 4},
		StalenessCounts: []int64{5, 3, 1, 0},
		StalenessSum:    11.5,
	}
	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Server != in.Server || out.Epoch != in.Epoch || !out.HoldsToken ||
		out.TokenSilence != in.TokenSilence || out.Updates != in.Updates {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if len(out.Peers) != 2 || !out.Peers[1].Failed || out.Peers[0].OutboxDepth != 2 {
		t.Errorf("peers mismatch: %+v", out.Peers)
	}
	if got := out.StalenessTotal(); got != 9 {
		t.Errorf("StalenessTotal = %d, want 9", got)
	}
	if len(out.Addrs) != len(out.Members) {
		t.Errorf("address book misaligned: %d addrs for %d members", len(out.Addrs), len(out.Members))
	}
}

func TestReadTelemetryRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"future version", `{"version":99,"t":1,"server":0}`},
		{"zero version", `{"t":1,"server":0}`},
		{"negative server", `{"version":1,"t":1,"server":-3}`},
		{"histogram shape", `{"version":1,"server":0,"staleness_bounds":[1,2],"staleness_counts":[1,2]}`},
		{"not json", `nope`},
	}
	for _, c := range cases {
		if _, err := ReadTelemetry(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.in)
		}
	}
}
