package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// AgePoint is one sample of a server's model-age timeline.
type AgePoint struct {
	Time float64
	Age  float64
}

// RTTStats summarizes the token ring round-trip times observed at one
// server (the gaps between its consecutive token forwards).
type RTTStats struct {
	Count    int
	Min, Max float64
	Mean     float64
}

// Summary is the digest cmd/spyker-trace prints: per-kind counts, the
// staleness distribution of aggregated client updates, per-server age
// timelines, token round-trip times, and traffic totals.
type Summary struct {
	Events    int
	Span      [2]float64 // first/last event time
	Counts    map[EventKind]int
	Servers   []int // node IDs that aggregated updates or models, sorted
	AgeSeries map[int][]AgePoint

	StalenessBounds []float64
	StalenessCounts []int64 // len(bounds)+1, last = overflow
	StalenessMean   float64
	StalenessMax    float64

	TokenRTT map[int]RTTStats // per forwarding node

	BytesSent, BytesRecv int64
	SyncRounds           int // distinct (node,bid) sync participations

	// Incidents is the fault/recovery/membership timeline: every
	// KindFault, KindTokenRegen, KindTokenRetire, and KindMembership
	// event in time order.
	Incidents  []Incident
	EpochSpan  [2]int // lowest/highest membership epoch adopted (when any)
	EpochMoves int    // KindMembership events

	// Audit verdict totals (KindAudit events): raise/reassert vs clear
	// transitions, and the sorted IDs of every client ever flagged.
	AuditRaises  int
	AuditClears  int
	AuditClients []int
}

// Incident is one entry of the fault/recovery/membership timeline.
type Incident struct {
	Time float64
	Kind EventKind
	Node int
	Bid  int    // token bid or membership epoch, kind-dependent
	Note string // "crash", "restart", "stale-incoming", "admit", ...
}

// Summarize digests a trace. Events need not be sorted; they are ordered
// by time first (stable on the input order for ties, which preserves the
// emission order of equal-timestamp simulator events).
func Summarize(events []Event) *Summary {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })

	s := &Summary{
		Events:          len(evs),
		Counts:          make(map[EventKind]int),
		AgeSeries:       make(map[int][]AgePoint),
		StalenessBounds: StalenessBuckets,
		StalenessCounts: make([]int64, len(StalenessBuckets)+1),
		TokenRTT:        make(map[int]RTTStats),
	}
	if len(evs) > 0 {
		s.Span = [2]float64{evs[0].Time, evs[len(evs)-1].Time}
	}

	lastPass := make(map[int]float64)
	rttSum := make(map[int]float64)
	flaggedClients := make(map[int]bool)
	var staleSum float64
	var staleN int
	for i := range evs {
		e := &evs[i]
		s.Counts[e.Kind]++
		switch e.Kind {
		case KindClientUpdate, KindServerAgg:
			s.AgeSeries[e.Node] = append(s.AgeSeries[e.Node], AgePoint{Time: e.Time, Age: e.Age})
			if e.Kind == KindClientUpdate {
				s.StalenessCounts[sort.SearchFloat64s(s.StalenessBounds, e.Stale)]++
				staleSum += e.Stale
				staleN++
				if e.Stale > s.StalenessMax {
					s.StalenessMax = e.Stale
				}
			}
		case KindTokenPass:
			if prev, ok := lastPass[e.Node]; ok {
				rtt := e.Time - prev
				st := s.TokenRTT[e.Node]
				if st.Count == 0 || rtt < st.Min {
					st.Min = rtt
				}
				if rtt > st.Max {
					st.Max = rtt
				}
				st.Count++
				rttSum[e.Node] += rtt
				s.TokenRTT[e.Node] = st
			}
			lastPass[e.Node] = e.Time
		case KindSyncStart:
			s.SyncRounds++
		case KindMsgSend:
			s.BytesSent += int64(e.Bytes)
		case KindMsgRecv:
			s.BytesRecv += int64(e.Bytes)
		case KindAudit:
			// "clear:" is audit.ClearPrefix; the audit package imports obs,
			// so the prefix is matched literally here.
			if strings.HasPrefix(e.Note, "clear:") {
				s.AuditClears++
			} else {
				s.AuditRaises++
				flaggedClients[e.Peer] = true
			}
		case KindFault, KindTokenRegen, KindTokenRetire, KindMembership:
			s.Incidents = append(s.Incidents, Incident{
				Time: e.Time, Kind: e.Kind, Node: e.Node, Bid: e.Bid, Note: e.Note,
			})
			if e.Kind == KindMembership {
				if s.EpochMoves == 0 || e.Bid < s.EpochSpan[0] {
					s.EpochSpan[0] = e.Bid
				}
				if s.EpochMoves == 0 || e.Bid > s.EpochSpan[1] {
					s.EpochSpan[1] = e.Bid
				}
				s.EpochMoves++
			}
		}
	}
	if staleN > 0 {
		s.StalenessMean = staleSum / float64(staleN)
	}
	for node, st := range s.TokenRTT {
		st.Mean = rttSum[node] / float64(st.Count)
		s.TokenRTT[node] = st
	}
	for node := range s.AgeSeries {
		s.Servers = append(s.Servers, node)
	}
	sort.Ints(s.Servers)
	for c := range flaggedClients {
		s.AuditClients = append(s.AuditClients, c)
	}
	sort.Ints(s.AuditClients)
	return s
}

// downsample picks at most n points spread evenly over the series,
// always keeping the first and last.
func downsample(pts []AgePoint, n int) []AgePoint {
	if len(pts) <= n || n < 2 {
		return pts
	}
	out := make([]AgePoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(pts) - 1) / (n - 1)
		out = append(out, pts[idx])
	}
	return out
}

// WriteText renders the summary for terminals.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events over [%.3fs, %.3fs]\n", s.Events, s.Span[0], s.Span[1])

	kinds := make([]EventKind, 0, len(s.Counts))
	for k := range s.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-14s %8d\n", k, s.Counts[k])
	}

	if n := s.Counts[KindClientUpdate]; n > 0 {
		fmt.Fprintf(w, "\nstaleness of aggregated client updates (mean %.2f, max %.2f):\n",
			s.StalenessMean, s.StalenessMax)
		var total, maxC int64
		for _, c := range s.StalenessCounts {
			total += c
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range s.StalenessCounts {
			if c == 0 {
				continue
			}
			label := fmt.Sprintf("> %g", s.StalenessBounds[len(s.StalenessBounds)-1])
			if i < len(s.StalenessBounds) {
				label = fmt.Sprintf("<= %g", s.StalenessBounds[i])
			}
			bar := strings.Repeat("#", int(math.Ceil(40*float64(c)/float64(maxC))))
			fmt.Fprintf(w, "  %8s %8d (%5.1f%%) %s\n", label, c, 100*float64(c)/float64(total), bar)
		}
	}

	if len(s.Servers) > 0 {
		fmt.Fprintf(w, "\nper-server model-age timeline:\n")
		for _, node := range s.Servers {
			pts := downsample(s.AgeSeries[node], 8)
			fmt.Fprintf(w, "  node %d:", node)
			for _, p := range pts {
				fmt.Fprintf(w, "  %.1fs→%.1f", p.Time, p.Age)
			}
			fmt.Fprintln(w)
		}
	}

	if len(s.TokenRTT) > 0 {
		fmt.Fprintf(w, "\ntoken ring round-trips (per forwarding server):\n")
		nodes := make([]int, 0, len(s.TokenRTT))
		for n := range s.TokenRTT {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			st := s.TokenRTT[n]
			fmt.Fprintf(w, "  node %d: %d round-trips, mean %.3fs, min %.3fs, max %.3fs\n",
				n, st.Count, st.Mean, st.Min, st.Max)
		}
	}

	if len(s.Incidents) > 0 {
		fmt.Fprintf(w, "\nfaults, recovery, and membership (%d incidents):\n", len(s.Incidents))
		const maxLines = 24
		shown := s.Incidents
		if len(shown) > maxLines {
			shown = shown[:maxLines]
		}
		for _, inc := range shown {
			extra := inc.Note
			switch inc.Kind {
			case KindTokenRegen, KindTokenRetire:
				if extra != "" {
					extra = fmt.Sprintf("bid %d (%s)", inc.Bid, extra)
				} else {
					extra = fmt.Sprintf("bid %d", inc.Bid)
				}
			case KindMembership:
				extra = fmt.Sprintf("epoch %d (%s)", inc.Bid, inc.Note)
			}
			fmt.Fprintf(w, "  %9.3fs %-13s node %-3d %s\n", inc.Time, inc.Kind, inc.Node, extra)
		}
		if n := len(s.Incidents) - len(shown); n > 0 {
			fmt.Fprintf(w, "  ... and %d more\n", n)
		}
		if s.EpochMoves > 0 {
			fmt.Fprintf(w, "  membership epochs %d -> %d across %d adoption events\n",
				s.EpochSpan[0], s.EpochSpan[1], s.EpochMoves)
		}
	}

	if s.AuditRaises > 0 || s.AuditClears > 0 {
		clients := make([]string, 0, len(s.AuditClients))
		for _, c := range s.AuditClients {
			clients = append(clients, fmt.Sprintf("c%d", c))
		}
		fmt.Fprintf(w, "\naudit verdicts: %d raised, %d cleared, %d clients flagged (%s) — see -mode audit\n",
			s.AuditRaises, s.AuditClears, len(s.AuditClients), strings.Join(clients, ","))
	}

	if s.BytesSent > 0 || s.BytesRecv > 0 {
		fmt.Fprintf(w, "\ntraffic: %.2f MB sent, %.2f MB received\n",
			float64(s.BytesSent)/1e6, float64(s.BytesRecv)/1e6)
	}
	if s.SyncRounds > 0 {
		fmt.Fprintf(w, "sync participations: %d\n", s.SyncRounds)
	}
}
