package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// This file reconstructs causal update lineage from a protocol event
// trace: for every client update, which servers its contribution reached,
// through which synchronization rounds, and how long end-to-end
// propagation took. It is runtime-agnostic — the simulator and the live
// TCP runtime emit the same frontier-carrying events, so the same
// analysis applies to both.
//
// The reconstruction rests on the merged-updates frontier the Spyker core
// maintains (spyker.ServerCore): a vector clock, indexed by origin
// server, counting how many client updates are incorporated into a
// model. A client-update event at server i advances coordinate i and
// names the update (origin i, seq = Front[i]); a server-agg event at
// server j max-merges the broadcast's frontier, and every coordinate it
// advances identifies updates whose influence just reached j through
// that broadcast. Aggregation is a weighted average, so "reached" means
// causal influence, not verbatim inclusion — exactly the propagation
// guarantee the protocol's convergence argument relies on.

// Arrival is one hop of an update's journey: its influence reached Server
// at Time, carried by Via's model broadcast of synchronization round Bid.
type Arrival struct {
	Server int
	Via    int
	Bid    int
	Time   float64
}

// UpdateLineage is the reconstructed journey of one client update.
type UpdateLineage struct {
	UID    UID   // trace context minted at the client (zero in legacy traces)
	Client int   // contributing client
	Origin int   // server that merged the update first
	Seq    int64 // per-origin merge sequence number (1-based)
	Merged float64
	// Arrivals lists the servers the update's influence reached after the
	// origin, in time order. A server appears at most once (first reach).
	Arrivals []Arrival
}

// Name renders the update's identity: its UID when traced end to end,
// otherwise the server-side (origin, seq) coordinate.
func (u *UpdateLineage) Name() string {
	if u.UID != 0 {
		return u.UID.String()
	}
	return fmt.Sprintf("s%d@%d", u.Origin, u.Seq)
}

// ReachedAll reports whether the update reached all n servers.
func (u *UpdateLineage) ReachedAll(n int) bool { return len(u.Arrivals) >= n-1 }

// PropagationLatency reports the time from the origin merge to the last
// recorded arrival (0 when the update never left its origin).
func (u *UpdateLineage) PropagationLatency() float64 {
	if len(u.Arrivals) == 0 {
		return 0
	}
	return u.Arrivals[len(u.Arrivals)-1].Time - u.Merged
}

// Lineage is the causal digest of a trace.
type Lineage struct {
	NumServers int // distinct servers observed aggregating
	Updates    []*UpdateLineage
	// Untracked counts client-update events without a frontier (legacy
	// traces, or cores instrumented before the provenance extension).
	Untracked int

	byKey map[lineageKey]*UpdateLineage
}

type lineageKey struct {
	origin int
	seq    int64
}

// BuildLineage reconstructs update lineage from a trace. Events need not
// be sorted. Traces without frontier information yield an empty lineage
// with Untracked set, never an error — old traces stay loadable.
func BuildLineage(events []Event) *Lineage {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })

	l := &Lineage{byKey: make(map[lineageKey]*UpdateLineage)}
	known := make(map[int][]int64) // per-server reconstructed frontier
	servers := make(map[int]bool)
	adopt := func(node int, front []int64) {
		dst := known[node]
		if len(dst) < len(front) {
			dst = append(dst, make([]int64, len(front)-len(dst))...)
		}
		for o, v := range front {
			if v > dst[o] {
				dst[o] = v
			}
		}
		known[node] = dst
	}

	for i := range evs {
		e := &evs[i]
		switch e.Kind {
		case KindClientUpdate:
			servers[e.Node] = true
			if len(e.Front) <= e.Node {
				l.Untracked++
				continue
			}
			seq := e.Front[e.Node]
			u := &UpdateLineage{
				UID: e.UID, Client: e.Peer, Origin: e.Node, Seq: seq, Merged: e.Time,
			}
			l.Updates = append(l.Updates, u)
			l.byKey[lineageKey{e.Node, seq}] = u
			adopt(e.Node, e.Front)
		case KindServerAgg:
			servers[e.Node] = true
			if len(e.Front) == 0 {
				continue
			}
			prev := known[e.Node]
			for o, v := range e.Front {
				var p int64
				if o < len(prev) {
					p = prev[o]
				}
				for seq := p + 1; seq <= v; seq++ {
					if u, ok := l.byKey[lineageKey{o, seq}]; ok && o != e.Node {
						u.Arrivals = append(u.Arrivals, Arrival{
							Server: e.Node, Via: e.Peer, Bid: e.Bid, Time: e.Time,
						})
					}
				}
			}
			adopt(e.Node, e.Front)
		}
	}
	for s := range servers {
		if s+1 > l.NumServers {
			l.NumServers = s + 1
		}
	}
	return l
}

// Update looks a journey up by its UID (nil when absent or untraced).
func (l *Lineage) Update(uid UID) *UpdateLineage {
	for _, u := range l.Updates {
		if u.UID == uid && uid != 0 {
			return u
		}
	}
	return nil
}

// HopChain reconstructs the causal path an update took to reach server:
// the sequence of arrivals, origin-side first, ending at server. It
// follows each arrival's Via pointer backwards — influence reached
// `server` through `via`, which itself received it earlier (or is the
// origin). A nil return means the update never reached server.
func (u *UpdateLineage) HopChain(server int) []Arrival {
	at := make(map[int]*Arrival, len(u.Arrivals))
	for i := range u.Arrivals {
		at[u.Arrivals[i].Server] = &u.Arrivals[i]
	}
	var chain []Arrival
	cur := server
	for cur != u.Origin {
		a, ok := at[cur]
		if !ok || len(chain) > len(u.Arrivals) { // unreachable or cycle guard
			return nil
		}
		chain = append(chain, *a)
		cur = a.Via
	}
	// Reverse into origin-first order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// PropagationLatencies returns the full-propagation latency of every
// update that reached all servers, sorted ascending.
func (l *Lineage) PropagationLatencies() []float64 {
	var out []float64
	for _, u := range l.Updates {
		if u.ReachedAll(l.NumServers) {
			out = append(out, u.PropagationLatency())
		}
	}
	sort.Float64s(out)
	return out
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteProvenance renders the lineage digest: propagation coverage, the
// latency distribution, and the full journey of up to maxJourneys updates
// (slowest fully-propagated first, so the interesting tail leads).
func (l *Lineage) WriteProvenance(w io.Writer, maxJourneys int) {
	fmt.Fprintf(w, "provenance: %d traced updates across %d servers\n", len(l.Updates), l.NumServers)
	if l.Untracked > 0 {
		fmt.Fprintf(w, "  (%d client-update events carried no frontier and are excluded)\n", l.Untracked)
	}
	if len(l.Updates) == 0 {
		fmt.Fprintf(w, "  no provenance data — trace predates causal tracing or no updates flowed\n")
		return
	}

	full := 0
	for _, u := range l.Updates {
		if u.ReachedAll(l.NumServers) {
			full++
		}
	}
	fmt.Fprintf(w, "  fully propagated: %d/%d (%.1f%%)\n",
		full, len(l.Updates), 100*float64(full)/float64(len(l.Updates)))
	if lat := l.PropagationLatencies(); len(lat) > 0 {
		var sum float64
		for _, v := range lat {
			sum += v
		}
		fmt.Fprintf(w, "  propagation latency: mean %.3fs  p50 %.3fs  p99 %.3fs  max %.3fs\n",
			sum/float64(len(lat)), quantile(lat, 0.50), quantile(lat, 0.99), lat[len(lat)-1])
	}

	if maxJourneys <= 0 {
		return
	}
	// Slowest fully-propagated journeys first; partial journeys after.
	ordered := append([]*UpdateLineage(nil), l.Updates...)
	sort.SliceStable(ordered, func(i, j int) bool {
		fi, fj := ordered[i].ReachedAll(l.NumServers), ordered[j].ReachedAll(l.NumServers)
		if fi != fj {
			return fi
		}
		return ordered[i].PropagationLatency() > ordered[j].PropagationLatency()
	})
	if len(ordered) > maxJourneys {
		ordered = ordered[:maxJourneys]
	}
	fmt.Fprintf(w, "\nupdate journeys (slowest fully-propagated first):\n")
	for _, u := range ordered {
		fmt.Fprintf(w, "  %s: origin s%d @ %.3fs", u.Name(), u.Origin, u.Merged)
		if !u.ReachedAll(l.NumServers) {
			fmt.Fprintf(w, "  [reached %d/%d servers]", 1+len(u.Arrivals), l.NumServers)
		}
		fmt.Fprintln(w)
		for _, a := range u.Arrivals {
			fmt.Fprintf(w, "    -> s%d @ %.3fs (+%.3fs, via s%d broadcast, sync #%d)\n",
				a.Server, a.Time, a.Time-u.Merged, a.Via, a.Bid)
		}
	}
}

// WriteCritPath renders the critical-path analysis: for the top slowest
// fully-propagated updates, the hop chain to their last-reached server
// with per-hop dwell times, plus the hop pairs that appear most often on
// critical paths — the links to optimize first.
func (l *Lineage) WriteCritPath(w io.Writer, top int) {
	type slow struct {
		u   *UpdateLineage
		lat float64
	}
	var slows []slow
	for _, u := range l.Updates {
		if u.ReachedAll(l.NumServers) && len(u.Arrivals) > 0 {
			slows = append(slows, slow{u, u.PropagationLatency()})
		}
	}
	fmt.Fprintf(w, "critical paths: %d fully-propagated updates across %d servers\n",
		len(slows), l.NumServers)
	if len(slows) == 0 {
		fmt.Fprintf(w, "  no update propagated to every server in this trace\n")
		return
	}
	sort.SliceStable(slows, func(i, j int) bool { return slows[i].lat > slows[j].lat })

	hopCount := make(map[[2]int]int)
	hopDwell := make(map[[2]int]float64)
	for _, s := range slows {
		last := s.u.Arrivals[len(s.u.Arrivals)-1]
		chain := s.u.HopChain(last.Server)
		prevT := s.u.Merged
		for _, a := range chain {
			k := [2]int{a.Via, a.Server}
			hopCount[k]++
			hopDwell[k] += a.Time - prevT
			prevT = a.Time
		}
	}

	if top > len(slows) {
		top = len(slows)
	}
	fmt.Fprintf(w, "\nslowest %d end-to-end propagations:\n", top)
	for _, s := range slows[:top] {
		last := s.u.Arrivals[len(s.u.Arrivals)-1]
		chain := s.u.HopChain(last.Server)
		fmt.Fprintf(w, "  %s  %.3fs total: s%d @ %.3fs", s.u.Name(), s.lat, s.u.Origin, s.u.Merged)
		prevT := s.u.Merged
		for _, a := range chain {
			fmt.Fprintf(w, " ->(+%.3fs sync #%d) s%d", a.Time-prevT, a.Bid, a.Server)
			prevT = a.Time
		}
		fmt.Fprintln(w)
	}

	type hopStat struct {
		hop   [2]int
		count int
		mean  float64
	}
	var hs []hopStat
	for k, c := range hopCount {
		hs = append(hs, hopStat{k, c, hopDwell[k] / float64(c)})
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].count != hs[j].count {
			return hs[i].count > hs[j].count
		}
		return hs[i].hop[0]*1e6+hs[i].hop[1] < hs[j].hop[0]*1e6+hs[j].hop[1]
	})
	fmt.Fprintf(w, "\ncritical-path hops (count x mean segment time):\n")
	for _, h := range hs {
		fmt.Fprintf(w, "  s%d -> s%d: %d paths, mean %.3fs\n", h.hop[0], h.hop[1], h.count, h.mean)
	}
}
