package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TelemetryVersion is the current wire version of the Telemetry snapshot.
// Decoders accept snapshots of the same major shape (unknown fields are
// ignored by JSON) but reject versions newer than they understand, so a
// monitor talking to a newer server fails loudly instead of mis-reading.
const TelemetryVersion = 1

// TelemetryPeer is one outbound peer link of the reporting server.
type TelemetryPeer struct {
	// Peer is the remote server's stable ID.
	Peer int `json:"peer"`
	// OutboxDepth is the number of frames queued on the link right now.
	OutboxDepth int `json:"outbox_depth"`
	// Failed reports a severed link awaiting the reconnect loop.
	Failed bool `json:"failed,omitempty"`
}

// Telemetry is one server's self-reported health snapshot, served by
// spyker-live's /debug/telemetry endpoint and consumed by cmd/spyker-mon.
// All times are seconds on the reporting process's own clock (wall
// seconds since process start — the same clock that stamps its trace
// events), so cross-server comparisons must be made on durations
// (TokenSilence), never on absolute values.
type Telemetry struct {
	Version int `json:"version"`
	// Time is the snapshot instant on the reporting server's clock.
	Time float64 `json:"t"`
	// Server is the reporting server's stable ID.
	Server int `json:"server"`
	// Addr is the server's protocol listen address; DebugAddr (when the
	// server knows it) the address of its debug HTTP endpoint.
	Addr      string `json:"addr,omitempty"`
	DebugAddr string `json:"debug_addr,omitempty"`

	// Ring membership view: epoch, member IDs, and the learned address
	// book aligned with Members (empty string where unknown). Monitors
	// use Members/Addrs to discover servers that joined after they
	// started.
	Epoch   int      `json:"epoch"`
	Members []int    `json:"members,omitempty"`
	Addrs   []string `json:"addrs,omitempty"`

	// Token state: whether this server holds the synchronization token,
	// and how long ago it last saw the token move (a token frame sent or
	// received). A healthy ring hands the token around continuously, so
	// every server's TokenSilence stays bounded by the ring round-trip;
	// cluster-wide min(TokenSilence) blowing up is the stall signal.
	HoldsToken   bool    `json:"holds_token,omitempty"`
	TokenSilence float64 `json:"token_silence"`
	TokenTimeout float64 `json:"token_timeout,omitempty"`
	SyncRetry    float64 `json:"sync_retry,omitempty"`

	// Protocol progress: model age, the per-member age vector as known
	// here, and the merged-updates frontier (vector clock).
	Age      float64   `json:"age"`
	Ages     []float64 `json:"ages,omitempty"`
	Frontier []int64   `json:"frontier,omitempty"`

	Updates        int64 `json:"updates"`
	SyncsTriggered int   `json:"syncs_triggered"`
	SyncsJoined    int   `json:"syncs_joined"`
	TokenRegens    int   `json:"token_regens"`
	MaxBidSeen     int   `json:"max_bid_seen"`

	// Peer links, sorted by peer ID; FailedOutboxes counts the severed
	// ones, PeerReconnects successful redials since process start.
	Peers          []TelemetryPeer `json:"peers,omitempty"`
	FailedOutboxes int             `json:"failed_outboxes"`
	PeerReconnects int64           `json:"peer_reconnects"`

	// Cumulative staleness histogram of aggregated client updates since
	// process start (bounds as in StalenessBuckets, counts with one
	// overflow bucket). Monitors diff consecutive snapshots to recover
	// the staleness distribution of each polling interval.
	StalenessBounds []float64 `json:"staleness_bounds,omitempty"`
	StalenessCounts []int64   `json:"staleness_counts,omitempty"`
	StalenessSum    float64   `json:"staleness_sum,omitempty"`

	// Audit is the contribution audit plane's per-client view (nil when
	// auditing is disarmed). The field is additive — version 1 decoders
	// that predate it simply ignore it.
	Audit *TelemetryAudit `json:"audit,omitempty"`
}

// TelemetryAuditClient is one audited client's windowed statistics as
// maintained by internal/obs/audit: robust per-client norm/direction
// profiles plus the anomaly rules currently flagging the client.
type TelemetryAuditClient struct {
	Client  int   `json:"client"`
	Updates int64 `json:"updates"`
	// MedianNorm is the median L2 norm of the client's recent update
	// deltas; NormZ its robust (median/MAD) z-score against the other
	// clients of the same server.
	MedianNorm float64 `json:"median_norm"`
	NormZ      float64 `json:"norm_z"`
	// MedianCos is the windowed median cosine similarity of the client's
	// deltas against the server's reference direction (EMA of recently
	// merged deltas).
	MedianCos float64 `json:"median_cos"`
	// MeanGap is the client's inter-update cadence in stream seconds;
	// LastStale the staleness of its latest update.
	MeanGap   float64 `json:"mean_gap,omitempty"`
	LastStale float64 `json:"last_stale,omitempty"`
	// LayerNorms is the EMA of the per-layer (or per-segment) share of
	// the delta norm — the update's "shape" profile.
	LayerNorms []float64 `json:"layer_norms,omitempty"`
	// Flags lists the anomaly rules currently flagging this client, in
	// the audit package's fixed rule order; empty for honest-looking
	// clients.
	Flags []string `json:"flags,omitempty"`
}

// TelemetryAudit is the audit section of a telemetry snapshot.
type TelemetryAudit struct {
	// Updates counts audited client updates since process start; Flagged
	// the clients with at least one active anomaly flag.
	Updates int64 `json:"updates"`
	Flagged int   `json:"flagged"`
	// Clients holds one row per audited client, sorted by client ID.
	Clients []TelemetryAuditClient `json:"clients,omitempty"`
}

// StalenessTotal sums the histogram counts (number of aggregated updates
// with a recorded staleness).
func (t *Telemetry) StalenessTotal() int64 {
	var n int64
	for _, c := range t.StalenessCounts {
		n += c
	}
	return n
}

// WriteTelemetry encodes one snapshot as JSON (one object, trailing
// newline).
func WriteTelemetry(w io.Writer, t *Telemetry) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadTelemetry decodes one snapshot, rejecting unknown future versions
// and structurally impossible snapshots.
func ReadTelemetry(r io.Reader) (*Telemetry, error) {
	var t Telemetry
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: decode telemetry: %w", err)
	}
	if t.Version <= 0 || t.Version > TelemetryVersion {
		return nil, fmt.Errorf("obs: telemetry version %d (this build understands <= %d)",
			t.Version, TelemetryVersion)
	}
	if t.Server < 0 {
		return nil, fmt.Errorf("obs: telemetry with negative server ID %d", t.Server)
	}
	if len(t.StalenessCounts) != 0 && len(t.StalenessCounts) != len(t.StalenessBounds)+1 {
		return nil, fmt.Errorf("obs: telemetry staleness histogram shape %d counts for %d bounds",
			len(t.StalenessCounts), len(t.StalenessBounds))
	}
	return &t, nil
}
