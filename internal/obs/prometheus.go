package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus plaintext
// exposition format (text/plain; version=0.0.4): counters and gauges as
// single samples, histograms as cumulative _bucket series plus _sum and
// _count. Metric names are sanitized to the Prometheus charset — dots,
// arrows, and other separators become underscores.
//
// The output is a point-in-time snapshot under the registry lock, so it
// is consistent; scrape handlers can call it directly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, r.counters[n].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, r.gauges[n].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		counts := h.BucketCounts()
		for i, b := range h.Bounds() {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, b, cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum(), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus metric
// charset; see PromName.
func promName(name string) string { return PromName(name) }

// PromName maps an arbitrary metric name onto the Prometheus metric
// charset [a-zA-Z0-9_:]; every other rune becomes an underscore, a
// leading digit gets an underscore prefix, and the empty name renders as
// a single underscore (the exposition format has no empty identifiers).
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromLabelName maps an arbitrary label name onto the Prometheus label
// charset [a-zA-Z0-9_] — like PromName but without ':', which is
// reserved for metric names.
func PromLabelName(name string) string {
	return strings.ReplaceAll(PromName(name), ":", "_")
}

// PromLabelValue escapes a label value per the exposition format: label
// values may contain any UTF-8, but backslash, double quote, and newline
// must be escaped as \\, \", and \n. Carriage returns and tabs are
// folded into \n and a space so a hostile value can never break out of
// the quoted position or inject a second sample line.
func PromLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n', '\r':
			b.WriteString(`\n`)
		case '\t':
			b.WriteByte(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// PromLabel is one label of an exposition sample.
type PromLabel struct{ Name, Value string }

// WritePromSample writes one exposition sample with sanitized name and
// labels and escaped label values: name{l1="v1",l2="v2"} value.
func WritePromSample(w io.Writer, name string, labels []PromLabel, value float64) error {
	if _, err := io.WriteString(w, PromName(name)); err != nil {
		return err
	}
	if len(labels) > 0 {
		sep := "{"
		for _, l := range labels {
			if _, err := fmt.Fprintf(w, `%s%s="%s"`, sep, PromLabelName(l.Name), PromLabelValue(l.Value)); err != nil {
				return err
			}
			sep = ","
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, " %g\n", value)
	return err
}
