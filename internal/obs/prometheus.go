package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus plaintext
// exposition format (text/plain; version=0.0.4): counters and gauges as
// single samples, histograms as cumulative _bucket series plus _sum and
// _count. Metric names are sanitized to the Prometheus charset — dots,
// arrows, and other separators become underscores.
//
// The output is a point-in-time snapshot under the registry lock, so it
// is consistent; scrape handlers can call it directly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, r.counters[n].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, r.gauges[n].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		counts := h.BucketCounts()
		for i, b := range h.Bounds() {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, b, cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum(), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus metric
// charset [a-zA-Z0-9_:]; every other rune becomes an underscore, and a
// leading digit gets an underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
