package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// syntheticTrace builds a tiny two-server run: client updates with
// varying staleness, a sync round, and three token passes by node 0.
func syntheticTrace() []Event {
	return []Event{
		{Time: 0.1, Kind: KindMsgSend, Node: 5, Peer: 1_000_000, Bytes: 1000},
		{Time: 0.3, Kind: KindMsgRecv, Node: 1_000_000, Peer: 5, Bytes: 1000},
		{Time: 0.3, Kind: KindClientUpdate, Node: 0, Peer: 5, Age: 1, Stale: 0},
		{Time: 0.6, Kind: KindClientUpdate, Node: 0, Peer: 6, Age: 2, Stale: 1},
		{Time: 0.9, Kind: KindClientUpdate, Node: 1, Peer: 7, Age: 1, Stale: 5},
		{Time: 1.0, Kind: KindSyncStart, Node: 0, Bid: 2, Note: "trigger"},
		{Time: 1.2, Kind: KindServerAgg, Node: 0, Peer: 1, Age: 1.5, Stale: -1},
		{Time: 1.3, Kind: KindSyncEnd, Node: 0, Bid: 2},
		{Time: 1.3, Kind: KindTokenPass, Node: 0, Peer: 1, Bid: 2},
		{Time: 2.3, Kind: KindTokenPass, Node: 0, Peer: 1, Bid: 4},
		{Time: 3.8, Kind: KindTokenPass, Node: 0, Peer: 1, Bid: 6},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(syntheticTrace())
	if s.Events != 11 {
		t.Fatalf("events = %d, want 11", s.Events)
	}
	if s.Span != [2]float64{0.1, 3.8} {
		t.Fatalf("span = %v", s.Span)
	}
	if s.Counts[KindClientUpdate] != 3 || s.Counts[KindTokenPass] != 3 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if len(s.Servers) != 2 || s.Servers[0] != 0 || s.Servers[1] != 1 {
		t.Fatalf("servers = %v", s.Servers)
	}
	// Node 0's age series: 1 -> 2 -> 1.5 (two updates plus the merge).
	if got := s.AgeSeries[0]; len(got) != 3 || got[2].Age != 1.5 {
		t.Fatalf("age series node 0 = %v", got)
	}
	if s.StalenessMean != 2 {
		t.Fatalf("staleness mean = %v, want 2", s.StalenessMean)
	}
	if s.StalenessMax != 5 {
		t.Fatalf("staleness max = %v, want 5", s.StalenessMax)
	}
	rtt, ok := s.TokenRTT[0]
	if !ok || rtt.Count != 2 {
		t.Fatalf("token RTT = %+v", s.TokenRTT)
	}
	if math.Abs(rtt.Min-1.0) > 1e-9 || math.Abs(rtt.Max-1.5) > 1e-9 || math.Abs(rtt.Mean-1.25) > 1e-9 {
		t.Fatalf("rtt stats = %+v", rtt)
	}
	if s.BytesSent != 1000 || s.BytesRecv != 1000 {
		t.Fatalf("bytes = %d/%d", s.BytesSent, s.BytesRecv)
	}
	if s.SyncRounds != 1 {
		t.Fatalf("sync rounds = %d", s.SyncRounds)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || len(s.Servers) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	var buf bytes.Buffer
	s.WriteText(&buf) // must not panic on an empty trace
}

func TestWriteTextMentionsSections(t *testing.T) {
	var buf bytes.Buffer
	Summarize(syntheticTrace()).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"staleness", "age timeline", "token ring round-trips", "traffic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	pts := make([]AgePoint, 100)
	for i := range pts {
		pts[i] = AgePoint{Time: float64(i), Age: float64(i)}
	}
	out := downsample(pts, 8)
	if len(out) != 8 {
		t.Fatalf("len = %d, want 8", len(out))
	}
	if out[0] != pts[0] || out[7] != pts[99] {
		t.Fatalf("endpoints not preserved: %v .. %v", out[0], out[7])
	}
	if got := downsample(pts[:3], 8); len(got) != 3 {
		t.Fatal("short series must pass through")
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var begins, ends, counters int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "B":
			begins++
		case "E":
			ends++
		case "C":
			counters++
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("sync slice not exported: B=%d E=%d", begins, ends)
	}
	if counters != 4 { // one age counter sample per update/agg
		t.Fatalf("age counter samples = %d, want 4", counters)
	}
	// Times must be microseconds.
	if doc.TraceEvents[0].TS != 0.1*1e6 {
		t.Fatalf("ts = %v, want %v", doc.TraceEvents[0].TS, 0.1*1e6)
	}
}
