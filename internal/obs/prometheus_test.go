package obs

import (
	"strings"
	"testing"
)

// TestPromNameHostile feeds hostile metric and label names through the
// sanitizers: everything outside the exposition charset must be folded
// away so no input can corrupt the text format.
func TestPromNameHostile(t *testing.T) {
	cases := []struct {
		in, name, label string
	}{
		{"spyker.updates", "spyker_updates", "spyker_updates"},
		{"net.link_delay_s.s1->c4", "net_link_delay_s_s1__c4", "net_link_delay_s_s1__c4"},
		{"a:b", "a:b", "a_b"}, // ':' legal in metric names, not label names
		{"", "_", "_"},
		{"7seconds", "_7seconds", "_7seconds"},
		{"with space", "with_space", "with_space"},
		{"quote\"brace{", "quote_brace_", "quote_brace_"},
		{"new\nline", "new_line", "new_line"},
		{"uni·code™", "uni_code_", "uni_code_"},
		{"back\\slash", "back_slash", "back_slash"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.name {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.name)
		}
		if got := PromLabelName(c.in); got != c.label {
			t.Errorf("PromLabelName(%q) = %q, want %q", c.in, got, c.label)
		}
	}
}

// TestPromLabelValueHostile: label values may hold any UTF-8 but the
// three exposition escapes must be applied, and line breaks must never
// survive verbatim (they would inject a second sample).
func TestPromLabelValueHostile(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"cr\rlf\n", `cr\nlf\n`},
		{"tab\there", "tab here"},
		{`all "three" \ at
once`, `all \"three\" \\ at\nonce`},
		{"uni·code™ stays", "uni·code™ stays"},
	}
	for _, c := range cases {
		got := PromLabelValue(c.in)
		if got != c.want {
			t.Errorf("PromLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
		if strings.ContainsAny(got, "\n\r") {
			t.Errorf("PromLabelValue(%q) leaked a raw line break: %q", c.in, got)
		}
	}
}

func TestWritePromSample(t *testing.T) {
	var b strings.Builder
	err := WritePromSample(&b, "spyker.mon/up", []PromLabel{
		{Name: "server", Value: "s1"},
		{Name: "bad name", Value: "needs \"escaping\"\nhere\\"},
	}, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	want := `spyker_mon_up{server="s1",bad_name="needs \"escaping\"\nhere\\"} 2.5` + "\n"
	if b.String() != want {
		t.Errorf("sample = %q, want %q", b.String(), want)
	}

	b.Reset()
	if err := WritePromSample(&b, "9bare", nil, 1); err != nil {
		t.Fatal(err)
	}
	if b.String() != "_9bare 1\n" {
		t.Errorf("bare sample = %q", b.String())
	}
}
