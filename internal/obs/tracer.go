package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// DefaultTracerCap is the ring capacity used when NewTracer is given a
// non-positive one: 1<<18 events (~20 MB) keeps whole experiment runs
// while bounding memory on endless live deployments.
const DefaultTracerCap = 1 << 18

// Tracer is an append-only ring buffer of events. Emission is a mutex
// acquisition plus one slot write — no allocation — so tracing a run stays
// cheap; when the buffer wraps, the oldest events are overwritten and
// counted in Dropped. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event //spyker:guardedby(mu)
	next    int     //spyker:guardedby(mu) — next write position
	wrapped bool    //spyker:guardedby(mu) — buffer has been overwritten at least once
	total   uint64  //spyker:guardedby(mu) — events ever emitted
}

// NewTracer creates a tracer holding up to capacity events
// (DefaultTracerCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled implements Sink.
func (t *Tracer) Enabled() bool { return true }

// Emit implements Sink.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	t.total++
	t.mu.Unlock()
}

// Len reports how many events the buffer currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.buf)
	}
	return t.next
}

// Total reports how many events were ever emitted.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped reports how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.lenLocked())
}

// lenLocked reports the retained event count; caller holds t.mu.
//
//spyker:locked(mu)
func (t *Tracer) lenLocked() int {
	if t.wrapped {
		return len(t.buf)
	}
	return t.next
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.lenLocked())
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// Reset discards all retained events and counters.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next = 0
	t.wrapped = false
	t.total = 0
	t.mu.Unlock()
}

// WriteJSONL writes the retained events as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Events())
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obs: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events. Blank lines are
// skipped; any malformed line is an error naming the line — including
// valid JSON that is not an event (a missing or unknown kind), so a
// corrupted or truncated trace can never be silently summarized as if it
// were complete. Traces written before the provenance extension (no
// uid/front fields) load fine: absent fields stay zero.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d (%s): %w", line, truncateLine(b), err)
		}
		if e.Kind == 0 {
			return nil, fmt.Errorf("obs: trace line %d (%s): not a protocol event (no kind)",
				line, truncateLine(b))
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace after line %d: %w", line, err)
	}
	return out, nil
}

// truncateLine renders a malformed line for error messages without
// flooding the terminal.
func truncateLine(b []byte) string {
	const max = 60
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
