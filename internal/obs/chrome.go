package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Only the fields the viewers need are emitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`  // instant-event scope
	ID    string         `json:"id,omitempty"` // flow-event binding ID
	Cat   string         `json:"cat,omitempty"`
	BP    string         `json:"bp,omitempty"` // flow binding point
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts a protocol event trace into Chrome
// trace_event JSON (object form), so a run opens directly in
// chrome://tracing or Perfetto. Mapping:
//
//   - every node becomes one process (pid = node ID);
//   - SyncStart/SyncEnd become duration slices ("sync #bid") on the
//     node's timeline;
//   - ClientUpdate and ServerAgg additionally drive an "age" counter
//     track per node, giving the per-server model-age timeline;
//   - everything else becomes thread-scoped instant events carrying its
//     payload in args;
//   - for traces carrying causal provenance (Event.Front, see
//     lineage.go), every update journey becomes a flow: a flow-start at
//     the origin merge, flow steps at each server its influence reaches,
//     so chrome://tracing draws arrows from server to server along the
//     synchronization rounds that carried the update.
//
// Event times (seconds, virtual or wall) map to microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for i := range events {
		e := &events[i]
		ts := e.Time * 1e6
		switch e.Kind {
		case KindSyncStart:
			if err := emit(chromeEvent{
				Name: fmt.Sprintf("sync #%d", e.Bid), Phase: "B",
				TS: ts, PID: e.Node, TID: e.Node,
				Args: map[string]any{"bid": e.Bid, "role": e.Note},
			}); err != nil {
				return err
			}
		case KindSyncEnd:
			if err := emit(chromeEvent{
				Name: fmt.Sprintf("sync #%d", e.Bid), Phase: "E",
				TS: ts, PID: e.Node, TID: e.Node,
			}); err != nil {
				return err
			}
		case KindClientUpdate, KindServerAgg:
			if err := emit(chromeEvent{
				Name: e.Kind.String(), Phase: "i",
				TS: ts, PID: e.Node, TID: e.Node, Scope: "t",
				Args: map[string]any{"peer": e.Peer, "age": e.Age, "stale": e.Stale},
			}); err != nil {
				return err
			}
			if err := emit(chromeEvent{
				Name: "age", Phase: "C",
				TS: ts, PID: e.Node, TID: e.Node,
				Args: map[string]any{"age": e.Age},
			}); err != nil {
				return err
			}
		default:
			args := map[string]any{"peer": e.Peer}
			if e.Bytes != 0 {
				args["bytes"] = e.Bytes
			}
			if e.Bid != 0 {
				args["bid"] = e.Bid
			}
			if e.UID != 0 {
				args["uid"] = e.UID.String()
			}
			if err := emit(chromeEvent{
				Name: e.Kind.String(), Phase: "i",
				TS: ts, PID: e.Node, TID: e.Node, Scope: "t",
				Args: args,
			}); err != nil {
				return err
			}
		}
	}

	// Flow arrows for every reconstructable update journey: start at the
	// origin merge, one step per server reached, the last hop ends the
	// flow. The binding ID keys all segments of one journey together.
	lin := BuildLineage(events)
	for _, u := range lin.Updates {
		if len(u.Arrivals) == 0 {
			continue
		}
		name := "update " + u.Name()
		id := fmt.Sprintf("%d:%d", u.Origin, u.Seq)
		if err := emit(chromeEvent{
			Name: name, Phase: "s", Cat: "provenance", ID: id,
			TS: u.Merged * 1e6, PID: u.Origin, TID: u.Origin,
			Args: map[string]any{"client": u.Client},
		}); err != nil {
			return err
		}
		for i, a := range u.Arrivals {
			phase := "t"
			ce := chromeEvent{
				Name: name, Phase: phase, Cat: "provenance", ID: id,
				TS: a.Time * 1e6, PID: a.Server, TID: a.Server,
				Args: map[string]any{"via": a.Via, "bid": a.Bid},
			}
			if i == len(u.Arrivals)-1 {
				ce.Phase = "f"
				ce.BP = "e"
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
