// Package obs is the observability subsystem shared by both Spyker
// runtimes: a low-overhead structured event tracer (protocol events into a
// ring buffer, exported as JSONL or Chrome trace_event files) and a
// registry of counters, gauges, and fixed-bucket histograms.
//
// The package is deliberately passive: sinks only record what the runtime
// tells them and never schedule, block, or feed anything back, so enabling
// observability can never perturb the discrete-event schedule (see the
// determinism regression test in internal/experiments). The default sink
// is Nop, whose per-call cost is one interface dispatch, so fully
// uninstrumented runs pay effectively nothing.
//
// Time is a plain float64 in seconds. Under the simulator it is virtual
// time (simulation.Sim.Now); in the live TCP runtime it is wall time since
// process start (WallClock). Events never carry absolute wall-clock
// timestamps, which keeps traces reproducible and diffable.
package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// EventKind discriminates protocol events.
type EventKind uint8

// The protocol event vocabulary. The kinds mirror the moving parts of the
// Spyker protocol: client-update aggregation (Alg. 1), server-model
// aggregation and the token ring (Alg. 2), message movement on the
// network, and state checkpoints of the live runtime.
const (
	// KindClientUpdate fires after a server merged one client update.
	// Node = server, Peer = client, Age = server age after the merge,
	// Stale = server age at merge time minus the model age the client
	// trained on.
	KindClientUpdate EventKind = iota + 1
	// KindServerAgg fires after a server merged a peer's model broadcast.
	// Node = local server, Peer = remote server, Age = local age after
	// the merge, Stale = remote age minus local age before the merge.
	KindServerAgg
	// KindTokenPass fires when a server forwards the token to its ring
	// successor. Node = sender, Peer = successor, Bid = token bid.
	KindTokenPass
	// KindSyncStart fires when a server enters a synchronization round,
	// either triggering it as token holder (Note "trigger") or joining on
	// a peer's broadcast (Note "join"). Bid identifies the round.
	KindSyncStart
	// KindSyncEnd fires when the token holder completes a round and
	// releases the token.
	KindSyncEnd
	// KindMsgSend/KindMsgRecv record one message entering/leaving a link.
	// Node = local endpoint, Peer = remote endpoint, Bytes = wire size.
	KindMsgSend
	KindMsgRecv
	// KindCheckpoint fires when the live runtime persists a server
	// snapshot. Node = server, Bytes = encoded size.
	KindCheckpoint
	// KindFault fires when the failure injector (internal/fault) applies
	// one planned fault. Node = targeted server (NoPeer for link faults),
	// Note = a short description like "crash", "restart", or "partition
	// 0->1".
	KindFault
	// KindTokenRegen fires when a server's silence timeout expires and it
	// mints a replacement token. Node = regenerating server, Bid = the
	// fresh (strictly higher) bid the new token carries.
	KindTokenRegen
	// KindTokenRetire fires when a server discards a token: a stale
	// incoming one (Note "stale-incoming"), its own token superseded by a
	// higher-bid round (Note "superseded"), or an injected drop (Note
	// "injected-drop"). Bid = the retired token's bid.
	KindTokenRetire
	// KindMembership fires when a server adopts a new ring membership
	// epoch (elastic membership). Node = adopting server, Bid = the new
	// epoch, Note = why ("admit", "exclude", or "observed" for epochs
	// learned from message headers).
	KindMembership
	// KindAudit fires when the contribution audit plane
	// (internal/obs/audit) changes its verdict about a client: Node =
	// auditing server, Peer = audited client, Note = the rule name
	// ("norm-outlier", "direction-inversion", "collusion" — prefixed
	// "clear:" when the anomaly subsided), Score = the rule's score at
	// the transition (robust z, median cosine, or pairwise similarity),
	// Stale = the staleness of the client's latest update.
	KindAudit
)

// kindNames maps kinds to their stable wire names (used in JSONL traces).
var kindNames = map[EventKind]string{
	KindClientUpdate: "client-update",
	KindServerAgg:    "server-agg",
	KindTokenPass:    "token-pass",
	KindSyncStart:    "sync-start",
	KindSyncEnd:      "sync-end",
	KindMsgSend:      "msg-send",
	KindMsgRecv:      "msg-recv",
	KindCheckpoint:   "checkpoint",
	KindFault:        "fault",
	KindTokenRegen:   "token-regen",
	KindTokenRetire:  "token-retire",
	KindMembership:   "membership",
	KindAudit:        "audit",
}

// kindByName is the inverse of kindNames, built once at init.
var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// MarshalJSON encodes the kind as its stable name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	n, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("obs: cannot marshal unknown event kind %d", int(k))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a kind from its stable name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var n string
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	kind, ok := kindByName[n]
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", n)
	}
	*k = kind
	return nil
}

// Event is one traced protocol event. Which fields are meaningful depends
// on Kind (see the kind constants). Node and Peer are node IDs in the
// emitting runtime's ID space; Peer is NoPeer when there is no other
// party.
//
// UID and Front are the causal-provenance extension (see spans.go and
// lineage.go): UID is the trace context riding with the message or update
// the event belongs to, and Front is the emitting server's merged-updates
// frontier — a vector clock, indexed by origin server, of how many client
// updates are incorporated in its model. Both are optional; traces written
// before the extension load with them zero.
type Event struct {
	Time  float64   `json:"t"`
	Kind  EventKind `json:"kind"`
	Node  int       `json:"node"`
	Peer  int       `json:"peer"`
	Age   float64   `json:"age,omitempty"`
	Stale float64   `json:"stale,omitempty"`
	Bytes int       `json:"bytes,omitempty"`
	Bid   int       `json:"bid,omitempty"`
	Note  string    `json:"note,omitempty"`
	UID   UID       `json:"uid,omitempty"`
	Front []int64   `json:"front,omitempty"`
	// Score carries the triggering rule's score on KindAudit events
	// (zero elsewhere; traces written before the audit extension load
	// with it zero).
	Score float64 `json:"score,omitempty"`
}

// NoPeer marks events without a counterparty.
const NoPeer = -1

// ServerNode is the node-ID offset that keeps servers in a distinct ID
// space from clients in message events (protocol events like
// KindClientUpdate use raw server indices — there Node is always a
// server and Peer always a client or server index, so no offset is
// needed). Both runtimes and the geo network share this convention.
const ServerNode = 1_000_000

// NodeName renders a message-event node ID using the ServerNode
// convention: "s3" for servers, "c17" for clients.
func NodeName(id int) string {
	if id >= ServerNode {
		return fmt.Sprintf("s%d", id-ServerNode)
	}
	return fmt.Sprintf("c%d", id)
}

// Sink receives events. Implementations must be safe for concurrent use
// (the live runtime emits from many goroutines) and must never block on
// the caller: emitting is always fire-and-forget.
//
// Enabled lets hot paths skip building an Event at all; callers are
// expected to guard emissions with it so the disabled cost is a single
// interface call.
type Sink interface {
	Enabled() bool
	Emit(e Event)
}

// Nop is the default sink: disabled, drops everything.
type Nop struct{}

// Enabled implements Sink.
func (Nop) Enabled() bool { return false }

// Emit implements Sink.
func (Nop) Emit(Event) {}

// multi fans one emission out to several sinks.
type multi []Sink

// Multi combines sinks; nil and disabled members are dropped. It returns
// Nop when nothing remains, and the sink itself when exactly one remains.
func Multi(sinks ...Sink) Sink {
	var live multi
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if _, isNop := s.(Nop); isNop {
			continue
		}
		live = append(live, s)
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return live
}

// Enabled implements Sink.
func (m multi) Enabled() bool {
	for _, s := range m {
		if s.Enabled() {
			return true
		}
	}
	return false
}

// Emit implements Sink.
func (m multi) Emit(e Event) {
	for _, s := range m {
		if s.Enabled() {
			s.Emit(e)
		}
	}
}

// Clock reports the current time in seconds; the simulator passes its
// virtual clock, the live runtime a wall clock.
type Clock func() float64

// WallClock returns a Clock measuring seconds since start.
func WallClock(start time.Time) Clock {
	return func() float64 { return time.Since(start).Seconds() }
}
