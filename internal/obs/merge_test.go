package obs

import (
	"math"
	"testing"
)

// synthetic two-server token ring: server a sends the token to server b
// at true time t; b receives it delay later. Each process stamps events
// with its own clock = true time + skew[process].
type ringScribe struct {
	skew   []float64
	traces [][]Event
}

func newRingScribe(skew []float64) *ringScribe {
	return &ringScribe{skew: skew, traces: make([][]Event, len(skew))}
}

func (rs *ringScribe) handoff(from, to int, at, delay float64) {
	rs.traces[from] = append(rs.traces[from], Event{
		Time: at + rs.skew[from], Kind: KindMsgSend,
		Node: ServerNode + from, Peer: ServerNode + to, Bytes: 64, Note: "token",
	})
	rs.traces[to] = append(rs.traces[to], Event{
		Time: at + delay + rs.skew[to], Kind: KindMsgRecv,
		Node: ServerNode + to, Peer: ServerNode + from, Bytes: 64, Note: "token",
	})
	// the protocol core logs the pass with a raw server index
	rs.traces[from] = append(rs.traces[from], Event{
		Time: at + rs.skew[from], Kind: KindTokenPass, Node: from, Peer: to,
	})
}

// TestMergeTracesRoundTrip: two heavily skewed single-process traces of
// one token ring merge onto a timeline where every handoff is causally
// ordered (recv after send) and the recovered offset matches the
// synthetic skew.
func TestMergeTracesRoundTrip(t *testing.T) {
	rs := newRingScribe([]float64{0, 7.25})
	at := 0.0
	for i := 0; i < 20; i++ {
		rs.handoff(0, 1, at, 0.012)
		at += 0.1
		rs.handoff(1, 0, at, 0.018)
		at += 0.1
	}
	m, err := MergeTraces(rs.traces)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sources[0] != 0 || m.Sources[1] != 1 {
		t.Fatalf("sources = %v", m.Sources)
	}
	// the offset can err by at most the delay asymmetry of the two
	// directions (here 6ms), and must recover the 7.25s skew
	if math.Abs(m.Offsets[1]-7.25) > 0.006/2+1e-9 {
		t.Errorf("offset = %v, want ~7.25", m.Offsets[1])
	}
	if m.Matched[1] != 40 {
		t.Errorf("matched pairs = %d, want 40", m.Matched[1])
	}
	assertCausalHandoffs(t, m.Events)
	if len(m.Events) != len(rs.traces[0])+len(rs.traces[1]) {
		t.Errorf("merged %d events, want %d", len(m.Events), len(rs.traces[0])+len(rs.traces[1]))
	}
}

// TestMergeTracesChain: three processes where 2 only ever talks to 1 —
// the offset must propagate transitively through the spanning tree.
func TestMergeTracesChain(t *testing.T) {
	rs := newRingScribe([]float64{0, -3.5, 11})
	at := 0.0
	for i := 0; i < 10; i++ {
		rs.handoff(0, 1, at, 0.01)
		at += 0.1
		rs.handoff(1, 2, at, 0.01)
		at += 0.1
		rs.handoff(2, 1, at, 0.01)
		at += 0.1
		rs.handoff(1, 0, at, 0.01)
		at += 0.1
	}
	m, err := MergeTraces(rs.traces)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, -3.5, 11} {
		if math.Abs(m.Offsets[i]-want) > 1e-9 { // symmetric delays: exact recovery
			t.Errorf("offset[%d] = %v, want %v", i, m.Offsets[i], want)
		}
	}
	assertCausalHandoffs(t, m.Events)
}

// TestMergeTracesLossy: dropping recv events (crashed receiver) must not
// corrupt the estimate — FIFO drop-only matching keeps the bounds valid.
func TestMergeTracesLossy(t *testing.T) {
	rs := newRingScribe([]float64{0, 2})
	at := 0.0
	for i := 0; i < 12; i++ {
		rs.handoff(0, 1, at, 0.01)
		at += 0.1
		rs.handoff(1, 0, at, 0.01)
		at += 0.1
	}
	// lose the tail of trace 1: the last three frames never arrived
	tr1 := rs.traces[1]
	cut := 0
	for i := len(tr1) - 1; i >= 0 && cut < 3; i-- {
		if tr1[i].Kind == KindMsgRecv {
			tr1 = append(tr1[:i], tr1[i+1:]...)
			cut++
		}
	}
	m, err := MergeTraces([][]Event{rs.traces[0], tr1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Offsets[1]-2) > 0.011 {
		t.Errorf("offset = %v, want ~2", m.Offsets[1])
	}
	assertCausalHandoffs(t, m.Events)
}

func TestMergeTracesErrors(t *testing.T) {
	if _, err := MergeTraces(nil); err == nil {
		t.Error("merge of zero traces accepted")
	}
	one := []Event{{Time: 1, Kind: KindTokenPass, Node: 0}}
	if _, err := MergeTraces([][]Event{one, one}); err == nil {
		t.Error("two traces from the same server accepted")
	}
	mixed := []Event{
		{Time: 1, Kind: KindTokenPass, Node: 0},
		{Time: 2, Kind: KindTokenPass, Node: 1},
	}
	if _, err := MergeTraces([][]Event{mixed}); err == nil {
		t.Error("multi-server trace accepted as single-process")
	}
	// no shared traffic: offsets cannot be solved
	a := []Event{{Time: 1, Kind: KindTokenPass, Node: 0}}
	b := []Event{{Time: 1, Kind: KindTokenPass, Node: 1}}
	if _, err := MergeTraces([][]Event{a, b}); err == nil {
		t.Error("disconnected traces accepted")
	}
	// single trace passes through untouched
	m, err := MergeTraces([][]Event{mixedCopy(one)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Offsets[0] != 0 || len(m.Events) != 1 || m.Events[0].Time != 1 {
		t.Errorf("single-trace merge perturbed events: %+v", m)
	}
}

func mixedCopy(ev []Event) []Event { return append([]Event(nil), ev...) }

// assertCausalHandoffs walks the merged stream and checks FIFO pairing
// per directed server link: every matched recv lands at or after its
// send on the merged timeline.
func assertCausalHandoffs(t *testing.T, events []Event) {
	t.Helper()
	type link struct{ from, to int }
	pending := map[link][]float64{}
	matched := 0
	for _, e := range events {
		switch e.Kind {
		case KindMsgSend:
			l := link{e.Node, e.Peer}
			pending[l] = append(pending[l], e.Time)
		case KindMsgRecv:
			l := link{e.Peer, e.Node}
			q := pending[l]
			if len(q) == 0 {
				t.Fatalf("recv before any unmatched send on %v at t=%v", l, e.Time)
			}
			if e.Time < q[0]-1e-9 {
				t.Errorf("handoff inverted: send at %v, recv at %v", q[0], e.Time)
			}
			pending[l] = q[1:]
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no handoffs matched")
	}
}
