package obs

import (
	"strings"
	"testing"
)

func TestUIDEncodeDecode(t *testing.T) {
	u := UpdateUID(17, 3)
	if !u.IsUpdate() || u.IsRound() {
		t.Fatalf("UpdateUID classified wrong: %v", u)
	}
	c, seq, ok := u.Update()
	if !ok || c != 17 || seq != 3 {
		t.Fatalf("Update() = (%d, %d, %v), want (17, 3, true)", c, seq, ok)
	}
	if got := u.String(); got != "c17#3" {
		t.Fatalf("String() = %q, want c17#3", got)
	}

	r := RoundUID(2, 5)
	if !r.IsRound() || r.IsUpdate() {
		t.Fatalf("RoundUID classified wrong: %v", r)
	}
	s, bid, ok := r.Round()
	if !ok || s != 2 || bid != 5 {
		t.Fatalf("Round() = (%d, %d, %v), want (2, 5, true)", s, bid, ok)
	}
	if got := r.String(); got != "s2/sync#5" {
		t.Fatalf("String() = %q, want s2/sync#5", got)
	}

	var zero UID
	if zero.IsUpdate() || zero.IsRound() {
		t.Fatal("zero UID must be neither update nor round")
	}
	if _, _, ok := zero.Update(); ok {
		t.Fatal("zero UID must not decode as update")
	}
	if _, _, ok := zero.Round(); ok {
		t.Fatal("zero UID must not decode as round")
	}
	if zero.String() != "-" {
		t.Fatalf("zero String() = %q, want -", zero.String())
	}
}

// journeyEvents builds a 3-server trace where client 7's first update
// merges at server 0, reaches server 1 via server 0's round-1 broadcast,
// and reaches server 2 only later via server 1's round-2 broadcast — a
// genuine two-hop relay.
func journeyEvents() []Event {
	uid := UpdateUID(7, 1)
	return []Event{
		{Time: 1.0, Kind: KindClientUpdate, Node: 0, Peer: 7, UID: uid, Front: []int64{1, 0, 0}},
		// Round 1: server 0 broadcasts; only server 1 merges it.
		{Time: 2.0, Kind: KindServerAgg, Node: 1, Peer: 0, Bid: 1, UID: RoundUID(0, 1), Front: []int64{1, 0, 0}},
		// Round 2: server 1 relays; server 2 merges and the update arrives
		// there through server 1, not server 0.
		{Time: 3.5, Kind: KindServerAgg, Node: 2, Peer: 1, Bid: 2, UID: RoundUID(1, 2), Front: []int64{1, 0, 0}},
	}
}

func TestBuildLineageTwoHopJourney(t *testing.T) {
	l := BuildLineage(journeyEvents())
	if l.NumServers != 3 {
		t.Fatalf("NumServers = %d, want 3", l.NumServers)
	}
	if len(l.Updates) != 1 || l.Untracked != 0 {
		t.Fatalf("updates = %d untracked = %d, want 1/0", len(l.Updates), l.Untracked)
	}
	u := l.Updates[0]
	if u.Origin != 0 || u.Client != 7 || u.Seq != 1 || u.Merged != 1.0 {
		t.Fatalf("journey header wrong: %+v", u)
	}
	if u.UID != UpdateUID(7, 1) {
		t.Fatalf("UID = %v, want %v", u.UID, UpdateUID(7, 1))
	}
	if !u.ReachedAll(3) {
		t.Fatalf("update should have reached all 3 servers: %+v", u.Arrivals)
	}
	want := []Arrival{
		{Server: 1, Via: 0, Bid: 1, Time: 2.0},
		{Server: 2, Via: 1, Bid: 2, Time: 3.5},
	}
	if len(u.Arrivals) != len(want) {
		t.Fatalf("arrivals = %+v, want %+v", u.Arrivals, want)
	}
	for i, w := range want {
		if u.Arrivals[i] != w {
			t.Fatalf("arrival %d = %+v, want %+v", i, u.Arrivals[i], w)
		}
	}
	if got := u.PropagationLatency(); got != 2.5 {
		t.Fatalf("propagation latency = %v, want 2.5", got)
	}

	// The hop chain to server 2 must pass through server 1.
	chain := u.HopChain(2)
	if len(chain) != 2 || chain[0].Server != 1 || chain[1].Server != 2 {
		t.Fatalf("hop chain = %+v, want s0 -> s1 -> s2", chain)
	}
	if u.HopChain(0) != nil && len(u.HopChain(0)) != 0 {
		t.Fatalf("chain to the origin must be empty, got %+v", u.HopChain(0))
	}

	if got := l.Update(UpdateUID(7, 1)); got != u {
		t.Fatal("Update(uid) lookup failed")
	}
	if l.Update(UpdateUID(9, 9)) != nil {
		t.Fatal("Update of unknown uid must be nil")
	}
}

func TestBuildLineageServerArrivalOnce(t *testing.T) {
	// A re-broadcast carrying an already-merged frontier must not record a
	// second arrival at the same server.
	evs := journeyEvents()
	evs = append(evs, Event{
		Time: 9, Kind: KindServerAgg, Node: 1, Peer: 2, Bid: 3,
		Front: []int64{1, 0, 0},
	})
	l := BuildLineage(evs)
	if n := len(l.Updates[0].Arrivals); n != 2 {
		t.Fatalf("arrivals = %d after duplicate-frontier broadcast, want 2", n)
	}
}

func TestBuildLineageLegacyTraceUntracked(t *testing.T) {
	// Pre-provenance events: no UID, no frontier. Lineage must stay empty
	// and count them, never error.
	evs := []Event{
		{Time: 1, Kind: KindClientUpdate, Node: 0, Peer: 3, Age: 2, Stale: 1},
		{Time: 2, Kind: KindServerAgg, Node: 1, Peer: 0, Bid: 1},
	}
	l := BuildLineage(evs)
	if len(l.Updates) != 0 {
		t.Fatalf("legacy trace produced %d updates", len(l.Updates))
	}
	if l.Untracked != 1 {
		t.Fatalf("untracked = %d, want 1", l.Untracked)
	}
}

func TestWriteProvenanceRendersJourney(t *testing.T) {
	var b strings.Builder
	BuildLineage(journeyEvents()).WriteProvenance(&b, 5)
	out := b.String()
	for _, want := range []string{
		"1 traced updates across 3 servers",
		"fully propagated: 1/1",
		"c7#1: origin s0 @ 1.000s",
		"-> s1 @ 2.000s (+1.000s, via s0 broadcast, sync #1)",
		"-> s2 @ 3.500s (+2.500s, via s1 broadcast, sync #2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("provenance output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCritPathRendersHops(t *testing.T) {
	var b strings.Builder
	BuildLineage(journeyEvents()).WriteCritPath(&b, 5)
	out := b.String()
	for _, want := range []string{
		"slowest 1 end-to-end propagations",
		"c7#1  2.500s total",
		"s0 -> s1: 1 paths",
		"s1 -> s2: 1 paths",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("critpath output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteProvenanceEmptyLineage(t *testing.T) {
	var b strings.Builder
	BuildLineage(nil).WriteProvenance(&b, 5)
	if !strings.Contains(b.String(), "no provenance data") {
		t.Fatalf("empty lineage output: %s", b.String())
	}
}

func TestSyncSpansPairing(t *testing.T) {
	evs := []Event{
		{Time: 1, Kind: KindSyncStart, Node: 0, Bid: 1, Note: "trigger"},
		{Time: 1.2, Kind: KindSyncStart, Node: 1, Bid: 1, Note: "join"},
		{Time: 2, Kind: KindSyncEnd, Node: 0, Bid: 1},
		{Time: 3, Kind: KindTokenPass, Node: 0, Peer: 1},
	}
	spans := SyncSpans(evs)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Node != 0 || spans[0].Start != 1 || spans[0].End != 2 || spans[0].Role != "trigger" {
		t.Fatalf("trigger span = %+v", spans[0])
	}
	// The join span never closes (only the holder emits SyncEnd) and must
	// extend to the last observed event.
	if spans[1].Node != 1 || spans[1].End != 3 || spans[1].Role != "join" {
		t.Fatalf("join span = %+v", spans[1])
	}
}
