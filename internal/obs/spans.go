package obs

import "fmt"

// UID is a stable causal identifier minted at the origin of a traced
// entity and propagated with it end to end, so events emitted by
// different nodes — and by different runtimes — link into one journey.
// Two entity families share the ID space:
//
//   - client updates get a positive UID minted by the client when the
//     trained update leaves it (UpdateUID);
//   - server-model broadcasts of a synchronization round get a negative
//     UID derived from the broadcaster and the round's bid (RoundUID).
//
// Zero means "no trace context" — the value untraced legacy messages and
// pre-extension traces carry.
type UID int64

// uidBase packs the two coordinates of a UID into one int64. 1e9 leaves
// room for a billion updates per client and a billion sync rounds while
// keeping encoded IDs human-decodable in raw JSONL.
const uidBase = 1_000_000_000

// UpdateUID mints the causal ID of client c's seq-th update (1-based).
func UpdateUID(client int, seq int64) UID {
	return UID(int64(client+1)*uidBase + seq)
}

// RoundUID mints the causal ID of the model broadcast server s sends in
// synchronization round bid.
func RoundUID(server, bid int) UID {
	return -UID(int64(server+1)*uidBase + int64(bid))
}

// IsUpdate reports whether the UID names a client update.
func (u UID) IsUpdate() bool { return u > 0 }

// IsRound reports whether the UID names a sync-round broadcast.
func (u UID) IsRound() bool { return u < 0 }

// Update decodes an update UID into (client, seq); ok is false for
// round UIDs and the zero UID.
func (u UID) Update() (client int, seq int64, ok bool) {
	if u <= 0 {
		return 0, 0, false
	}
	return int(int64(u)/uidBase) - 1, int64(u) % uidBase, true
}

// Round decodes a round UID into (server, bid); ok is false for update
// UIDs and the zero UID.
func (u UID) Round() (server, bid int, ok bool) {
	if u >= 0 {
		return 0, 0, false
	}
	v := int64(-u)
	return int(v/uidBase) - 1, int(v % uidBase), true
}

// String renders the UID in journey notation: "c17#3" for client 17's
// third update, "s2/sync#5" for server 2's round-5 broadcast, "-" for
// the zero UID.
func (u UID) String() string {
	if c, seq, ok := u.Update(); ok {
		return fmt.Sprintf("c%d#%d", c, seq)
	}
	if s, bid, ok := u.Round(); ok {
		return fmt.Sprintf("s%d/sync#%d", s, bid)
	}
	return "-"
}

// SyncSpan is one server's participation in a synchronization round,
// reconstructed from a SyncStart/SyncEnd event pair.
type SyncSpan struct {
	Node  int
	Bid   int
	Start float64
	End   float64 // Start of the last observed event when the round never closed
	Role  string  // "trigger" or "join"
}

// SyncSpans pairs SyncStart with SyncEnd events per node. Only the token
// holder emits SyncEnd, so join-role spans close at the trace end; they
// are still useful for timeline rendering. Events must be time-ordered
// (Summarize's ordering); spans come back ordered by start time.
func SyncSpans(events []Event) []SyncSpan {
	var spans []SyncSpan
	open := make(map[int]int) // node -> index into spans
	var last float64
	for i := range events {
		e := &events[i]
		last = e.Time
		switch e.Kind {
		case KindSyncStart:
			open[e.Node] = len(spans)
			spans = append(spans, SyncSpan{Node: e.Node, Bid: e.Bid, Start: e.Time, Role: e.Note})
		case KindSyncEnd:
			if idx, ok := open[e.Node]; ok {
				spans[idx].End = e.Time
				delete(open, e.Node)
			}
		}
	}
	for _, idx := range open {
		spans[idx].End = last
	}
	return spans
}
