package simulation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, func() { order = append(order, d) })
	}
	s.Run(10)
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("ran %d events, want 5", len(order))
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New()
	var at float64
	s.Schedule(2.5, func() { at = s.Now() })
	s.Run(10)
	if at != 2.5 {
		t.Errorf("handler saw Now=%v, want 2.5", at)
	}
	if s.Now() != 10 {
		t.Errorf("drained run should land on horizon, Now=%v", s.Now())
	}
}

func TestHorizonLeavesFutureEventsQueued(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(5, func() { ran = true })
	s.Run(4)
	if ran {
		t.Error("event beyond horizon ran")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run(6)
	if !ran {
		t.Error("event did not run on the next Run call")
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(5, func() { ran = true })
	s.Run(5)
	if !ran {
		t.Error("event exactly at horizon should run")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	// A subsequent Run resumes.
	s.Run(100)
	if count != 10 {
		t.Errorf("resume ran to %d, want 10", count)
	}
}

func TestHandlersCanSchedule(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.Schedule(1, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.Run(100)
	if depth != 5 {
		t.Errorf("depth = %d", depth)
	}
	if s.Processed() != 5 {
		t.Errorf("Processed = %d", s.Processed())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		s.ScheduleAt(1, func() {})
	})
	s.Run(10)
}

// TestOrderProperty: random schedules always execute in nondecreasing
// timestamp order, with ties broken by insertion order.
func TestOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		type stamp struct {
			t   float64
			seq int
		}
		var got []stamp
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			d := float64(rng.Intn(10))
			i := i
			s.Schedule(d, func() { got = append(got, stamp{s.Now(), i}) })
		}
		s.Run(1000)
		if len(got) != n {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].t < got[i-1].t {
				return false
			}
			if got[i].t == got[i-1].t && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStopLeavesQueueIntact pins the draining contract of Stop: the
// remaining events stay queued (Pending), the clock freezes at the last
// dispatched event instead of jumping to the horizon, and a later Run
// drains exactly the leftovers in time order.
func TestStopLeavesQueueIntact(t *testing.T) {
	s := New()
	var order []float64
	for i := 1; i <= 8; i++ {
		tm := float64(i)
		s.Schedule(tm, func() {
			order = append(order, tm)
			if tm == 3 {
				s.Stop()
			}
		})
	}

	end := s.Run(100)
	if end != 3 || s.Now() != 3 {
		t.Errorf("stopped run ended at %v (Now %v), want 3 — must not advance to horizon", end, s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("Pending() = %d after Stop, want 5 queued events", s.Pending())
	}
	if s.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", s.Processed())
	}

	// Resume drains the leftovers in order; nothing was lost or reordered.
	s.Run(100)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if len(order) != len(want) {
		t.Fatalf("drained %d events total, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event %d ran at %v, want %v", i, order[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Errorf("queue not empty after resume: %d", s.Pending())
	}
	if s.Processed() != 8 {
		t.Errorf("Processed() = %d after resume, want 8", s.Processed())
	}
}
