// Package simulation implements the discrete-event simulator that the
// federated-learning emulation runs on. Time is virtual: handlers execute
// instantaneously in wall-clock terms (though they may do real model
// training) and advance the clock only through scheduled delays, exactly
// like the paper's emulation, which maintains per-node logical time and
// advances it by benchmarked computation and network delays.
package simulation

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/spyker-fl/spyker/internal/obs"
)

// Event is a scheduled callback.
type event struct {
	time float64 // seconds of virtual time
	seq  uint64  // tie-breaker preserving schedule order
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all handlers run on the goroutine that calls Run.
type Sim struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	// processed counts events executed, useful for loop guards in tests.
	processed uint64

	// Optional observability hooks (see Instrument). They only record;
	// they can never alter the schedule, so an instrumented run executes
	// the exact same event sequence as a bare one.
	obsEvents *obs.Counter
	obsDepth  *obs.Gauge
}

// New creates an empty simulator at time 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Processed reports how many events have executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Schedule runs fn after delay seconds of virtual time. Negative delays
// are an error in the caller; they panic to surface the bug immediately.
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("simulation: negative or NaN delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t, which must not be in the
// past.
func (s *Sim) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simulation: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
}

// Stop makes Run return after the currently executing event completes.
// Events still queued stay queued: a later Run call resumes and drains
// them in order.
func (s *Sim) Stop() { s.stopped = true }

// Instrument attaches runtime metrics to the event loop: events counts
// dispatched events, depth tracks the queue length after each dispatch.
// Either may be nil. The hooks are passive — two atomic writes per event
// — and never feed back into scheduling.
func (s *Sim) Instrument(events *obs.Counter, depth *obs.Gauge) {
	s.obsEvents = events
	s.obsDepth = depth
}

// Run executes events in timestamp order until the queue drains, the
// horizon is passed, or Stop is called. It returns the final virtual time.
// Events scheduled exactly at the horizon still run; events beyond it stay
// queued.
func (s *Sim) Run(horizon float64) float64 {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.time > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.time
		s.processed++
		e.fn()
		if s.obsEvents != nil {
			s.obsEvents.Inc()
		}
		if s.obsDepth != nil {
			s.obsDepth.Set(float64(len(s.queue)))
		}
	}
	if s.now < horizon && len(s.queue) == 0 {
		// A drained queue still advances the clock to the horizon so that
		// successive Run calls observe monotone time.
		s.now = horizon
	}
	return s.now
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }
