package live

import (
	"fmt"
	"sort"

	"github.com/spyker-fl/spyker/internal/obs"
)

// SetDebugAddr records the address of this process's debug HTTP
// endpoint (where /debug/telemetry is served), echoed in telemetry so a
// monitor that learned this server from the address book can find the
// endpoint too. Call once at startup.
func (s *Server) SetDebugAddr(addr string) {
	s.mu.Lock()
	s.debugAddr = addr
	s.mu.Unlock()
}

// Telemetry assembles this server's health snapshot: membership view,
// token state and silence, protocol progress, per-peer link state, and
// the cumulative staleness histogram (when a metrics registry is
// attached). It also refreshes the health gauges in the registry, so a
// scrape of /debug/metrics right after /debug/telemetry sees the same
// values. All times are seconds on this process's clock.
func (s *Server) Telemetry() *obs.Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	mem := s.core.Membership()
	t := &obs.Telemetry{
		Version:   obs.TelemetryVersion,
		Time:      now,
		Server:    s.ID,
		Addr:      s.listener.Addr(),
		DebugAddr: s.debugAddr,

		Epoch:   mem.Epoch,
		Members: append([]int(nil), mem.Members...),
		Addrs:   s.addrsFor(mem.Members),

		HoldsToken:   s.core.HasToken(),
		TokenTimeout: s.cfg.TokenTimeout,
		SyncRetry:    s.cfg.SyncRetry,

		Age:      s.core.Age(),
		Ages:     s.core.KnownAges(),
		Frontier: s.core.Frontier(),

		Updates:        s.updates.Load(),
		SyncsTriggered: s.core.SyncsTriggered(),
		SyncsJoined:    s.core.SyncsJoined(),
		TokenRegens:    s.core.TokenRegens(),
		MaxBidSeen:     s.core.MaxBidSeen(),

		PeerReconnects: s.reconnects.Load(),
	}
	if s.tokenSeenValid {
		t.TokenSilence = now - s.tokenSeen
	} else {
		t.TokenSilence = now // never saw the token: silent since start
	}

	ids := make([]int, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := s.peers[id]
		if p == nil {
			continue
		}
		tp := obs.TelemetryPeer{Peer: id, OutboxDepth: len(p.ch), Failed: p.failed.Load()}
		if tp.Failed {
			t.FailedOutboxes++
		}
		t.Peers = append(t.Peers, tp)
	}

	t.Audit = s.audit.Snapshot() // nil-safe: nil recorder -> no section

	if s.reg != nil {
		h := s.reg.Histogram(obs.MetricStaleness, obs.StalenessBuckets)
		t.StalenessBounds = h.Bounds()
		t.StalenessCounts = h.BucketCounts()
		t.StalenessSum = h.Sum()
		s.refreshHealthGauges(t)
	}
	return t
}

// refreshHealthGauges mirrors the snapshot's ring/link state into the
// registry as gauges, making epoch, queue depths, failed links, and
// reconnect totals visible on the existing expvar/Prometheus endpoints.
// Caller holds s.mu and has checked s.reg != nil.
//
//spyker:locked(mu)
func (s *Server) refreshHealthGauges(t *obs.Telemetry) {
	pre := fmt.Sprintf("live.server%d.", s.ID)
	s.reg.Gauge(pre + "ring_epoch").Set(float64(t.Epoch))
	s.reg.Gauge(pre + "failed_outboxes").Set(float64(t.FailedOutboxes))
	s.reg.Gauge(pre + "peer_reconnects_total").Set(float64(t.PeerReconnects))
	s.reg.Gauge(pre + "token_silence_s").Set(t.TokenSilence)
	for _, p := range t.Peers {
		s.reg.Gauge(fmt.Sprintf("%soutbox_depth.s%d", pre, p.Peer)).Set(float64(p.OutboxDepth))
	}
}
