package live

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/nn"
)

// liveFactory builds a small classifier over a shared synthetic dataset.
func liveFactory(t *testing.T) (fl.ModelFactory, [][]int, *data.Images) {
	t.Helper()
	ds := data.GenerateImages(data.MNISTLike(120, 60, 1))
	factory := func(seed int64) fl.Model {
		rng := rand.New(rand.NewSource(seed))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 4, 3, rng)
		pool := nn.NewMaxPool2D(4, 10, 10)
		net := nn.NewNetwork(
			conv, nn.NewReLU(conv.OutSize()), pool,
			nn.NewDense(pool.OutSize(), 16, rng), nn.NewReLU(16),
			nn.NewDense(16, 10, rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, seed)
	}
	shards := data.PartitionIID(ds.Len(), 6, 1)
	return factory, shards, ds
}

// TestLiveClusterTrains is the live-runtime integration test: 2 real TCP
// servers and 6 real clients train for one wall-clock second; updates
// must flow, and the asynchronous exchange must keep the server models
// from drifting apart unboundedly.
func TestLiveClusterTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	factory, shards, _ := liveFactory(t)
	hyper := fl.DefaultHyper(6, 2)
	hyper.HInter = 3 // small thresholds so syncs happen within the test window
	hyper.HIntra = 20

	stats, err := RunCluster(ClusterConfig{
		NumServers: 2,
		NumClients: 6,
		Hyper:      hyper,
		NewModel:   factory,
		Shards:     shards,
		Seed:       1,
	}, 1200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUpdates() < 10 {
		t.Errorf("only %d updates flowed over TCP", stats.TotalUpdates())
	}
	for i, u := range stats.UpdatesPerServer {
		if u == 0 {
			t.Errorf("server %d processed no updates", i)
		}
	}
	active := 0
	for _, u := range stats.ClientUpdates {
		if u > 0 {
			active++
		}
	}
	if active < 6 {
		t.Errorf("only %d/6 clients participated", active)
	}
	if stats.SyncsTriggered == 0 {
		t.Error("no token-triggered synchronization happened")
	}
	for i, a := range stats.FinalAges {
		if a <= 0 {
			t.Errorf("server %d age = %v", i, a)
		}
	}
	t.Logf("live cluster: %d updates, %d syncs, spread %.3f, ages %v",
		stats.TotalUpdates(), stats.SyncsTriggered, stats.ModelSpread, stats.FinalAges)
}

func TestClusterValidation(t *testing.T) {
	factory, shards, _ := liveFactory(t)
	hyper := fl.DefaultHyper(6, 2)
	if _, err := RunCluster(ClusterConfig{
		NumServers: 0, NumClients: 6, Hyper: hyper, NewModel: factory, Shards: shards,
	}, time.Millisecond); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := RunCluster(ClusterConfig{
		NumServers: 2, NumClients: 4, Hyper: hyper, NewModel: factory, Shards: shards,
	}, time.Millisecond); err == nil {
		t.Error("shard/client mismatch accepted")
	}
}

// TestServerCloseIdempotent: double Close must not deadlock or panic.
func TestServerCloseIdempotent(t *testing.T) {
	factory, _, _ := liveFactory(t)
	initial := factory(1).Params()
	cfg := clusterServerConfig(0, 1, 3)
	srv, err := NewServer(0, "127.0.0.1:0", cfg, initial, true)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked")
	}
}

// TestLiveClusterWithInjectedLatency emulates geo-distributed links on
// localhost: 60 ms one-way between servers, 5 ms to clients. The protocol
// must still make progress and synchronize.
func TestLiveClusterWithInjectedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	factory, shards, _ := liveFactory(t)
	hyper := fl.DefaultHyper(6, 2)
	hyper.HInter = 3
	hyper.HIntra = 20

	stats, err := RunCluster(ClusterConfig{
		NumServers:    2,
		NumClients:    6,
		Hyper:         hyper,
		NewModel:      factory,
		Shards:        shards,
		Seed:          2,
		PeerLatency:   60 * time.Millisecond,
		ClientLatency: 5 * time.Millisecond,
	}, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUpdates() < 10 {
		t.Errorf("only %d updates with injected latency", stats.TotalUpdates())
	}
	if stats.SyncsTriggered == 0 {
		t.Error("no synchronization completed across the slow peer links")
	}
	t.Logf("latency-injected cluster: %d updates, %d syncs, spread %.3f",
		stats.TotalUpdates(), stats.SyncsTriggered, stats.ModelSpread)
}

// TestCheckpointRestart runs a short live session, checkpoints one
// server, restarts it from the checkpoint on a fresh port, and verifies
// the restored server resumes with the same model, age and decay state.
func TestCheckpointRestart(t *testing.T) {
	factory, _, _ := liveFactory(t)
	initial := factory(1).Params()
	cfg := clusterServerConfig(0, 1, 2)

	srv, err := NewServer(0, "127.0.0.1:0", cfg, initial, true)
	if err != nil {
		t.Fatal(err)
	}

	// Drive a couple of real client updates through TCP.
	client := &Client{ID: 0, Model: factory(2), Shard: []int{0, 1, 2}, Epochs: 1}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Run(srv.Addr())
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Updates() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Updates() < 3 {
		t.Fatal("no updates flowed before checkpoint")
	}

	path := t.TempDir() + "/ckpt.gob"
	if err := srv.CheckpointToFile(path); err != nil {
		t.Fatal(err)
	}
	wantAge := srv.Age()
	wantParams := srv.Params()
	srv.Close()
	<-done

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReadCheckpoint(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewServerFromCheckpoint("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// Age can only have moved by updates processed between snapshot and
	// close; require it to be at least the snapshot value.
	if restored.Age() < wantAge {
		t.Errorf("restored age %v < checkpoint age %v", restored.Age(), wantAge)
	}
	got := restored.Params()
	if len(got) != len(wantParams) {
		t.Fatal("param length changed across restart")
	}
	// The checkpoint was taken at wantAge; if no updates raced in, the
	// params match exactly. Either way a restored server must accept new
	// clients and keep training.
	client2 := &Client{ID: 1, Model: factory(3), Shard: []int{3, 4}, Epochs: 1}
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		_ = client2.Run(restored.Addr())
	}()
	deadline = time.Now().Add(5 * time.Second)
	before := restored.Updates()
	for restored.Updates() < before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if restored.Updates() < before+2 {
		t.Error("restored server did not resume processing updates")
	}
	restored.Close()
	<-done2
}
