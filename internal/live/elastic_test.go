package live

import (
	"sync"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// TestLiveHotAdd is the live-runtime elastic-membership integration test,
// run in-process so -race covers the join paths: a two-server TCP ring
// trains with four clients, then a third server hot-adds itself through
// the join handshake — no restart, no pre-provisioned address. The
// sponsor admits it from a snapshot, bumps the membership epoch, and the
// epoch ripples over the ring until every server — including the one
// that never spoke to the joiner directly — has rewired onto the
// three-member ring and the joiner completes sync rounds of its own.
func TestLiveHotAdd(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	const n = 2
	factory, shards, _ := liveFactory(t)
	initial := factory(1).Params()

	mkCfg := func(id int) spyker.Config {
		cfg := clusterServerConfig(id, n, 2)
		cfg.HInter = 3
		cfg.HIntra = 20
		cfg.TokenTimeout = 1.0 // wall seconds
		cfg.SyncRetry = 0.5
		return cfg
	}

	table := &addrTable{addrs: make([]string, n)}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(i, "127.0.0.1:0", mkCfg(i), initial, i == 0)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		table.set(i, srv.Addr())
	}
	start := func(srv *Server) {
		srv.StartTokenTicker(100 * time.Millisecond)
		// Beyond the seed table the reconnect loop falls back to the
		// learned address book, which is how joiner links self-heal.
		srv.StartPeerReconnect(150*time.Millisecond, func(id int) string {
			if id < n {
				return table.get(id)
			}
			return ""
		})
	}
	for _, srv := range servers {
		if err := srv.ConnectPeers(table.addrs[:n]); err != nil {
			t.Fatal(err)
		}
		start(srv)
	}

	stop := make(chan struct{})
	var clientWG sync.WaitGroup
	for ci := 0; ci < 4; ci++ {
		c := &Client{ID: ci, Model: factory(int64(100 + ci)), Shard: shards[ci], Epochs: 1}
		home := ci / 2
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			c.RunLoop(func() string { return table.get(home) }, 100*time.Millisecond, stop)
		}()
	}

	syncs := func() int {
		total := 0
		for _, srv := range servers {
			total += srv.SyncsTriggered()
		}
		return total
	}
	waitFor(t, "first synchronizations on the 2-ring", 10*time.Second, func() bool {
		return syncs() >= 2
	})

	// Hot-add: the joiner knows only its sponsor's address.
	syncsBefore := syncs()
	joiner, err := JoinCluster(servers[0].Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servers = append(servers, joiner)
	start(joiner)

	want := ring.New(1, []int{0, 1, 2})
	waitFor(t, "every server to adopt the three-member ring", 10*time.Second, func() bool {
		for _, srv := range servers {
			if !srv.Membership().Equal(want) {
				return false
			}
		}
		return true
	})

	// A re-homed client keeps the joiner fed with updates.
	c := &Client{ID: 4, Model: factory(104), Shard: shards[4], Epochs: 1}
	clientWG.Add(1)
	go func() {
		defer clientWG.Done()
		c.RunLoop(func() string { return joiner.Addr() }, 100*time.Millisecond, stop)
	}()

	// The joiner must take part in completed rounds — a full round now
	// needs all three broadcasts, so this proves the 2-ring's members
	// rewired onto it and it rewired onto them.
	waitFor(t, "the joiner to complete sync rounds", 15*time.Second, func() bool {
		return joiner.SyncsJoined() > 0 && joiner.Updates() > 0
	})
	waitFor(t, "the grown ring to keep synchronizing", 15*time.Second, func() bool {
		return syncs() > syncsBefore
	})

	t.Logf("hot-add complete: membership %v, joiner syncs %d, joiner updates %d, ring syncs %d (was %d)",
		joiner.Membership(), joiner.SyncsJoined(), joiner.Updates(), syncs(), syncsBefore)

	close(stop)
	closeAll(servers)
	clientWG.Wait()
}
