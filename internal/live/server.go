// Package live runs the Spyker protocol over real TCP connections instead
// of the discrete-event simulator: one goroutine-backed server process per
// spyker.ServerCore, clients that train real models, and the same message
// vocabulary (internal/transport). It demonstrates that the protocol state
// machine in internal/spyker is transport-agnostic and genuinely
// asynchronous — no component ever blocks waiting for another.
package live

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/spyker"
	"github.com/spyker-fl/spyker/internal/transport"
)

// Roles used in hello frames (Msg.Bid doubles as the role field there).
// Exported so out-of-package harnesses (internal/perf) can register raw
// transport connections against a live Server.
const (
	RoleClient = 1
	RoleServer = 2
)

// outbox decouples protocol handlers from TCP backpressure: handlers
// enqueue, a dedicated goroutine drains in FIFO order and owns the
// connection's write side. Closing the outbox flushes pending frames and
// then closes the connection, which is what unblocks the remote reader.
// failed flips once a send errors; the peer-reconnect loop polls it to
// decide which links need redialing.
type outbox struct {
	conn   transport.Sender
	ch     chan timedMsg
	done   chan struct{}
	delay  time.Duration
	failed atomic.Bool
}

// timedMsg remembers when the frame was enqueued so the injected latency
// is pipelined: every frame leaves at enqueue-time + delay, like a real
// long link, rather than serializing delay per frame. release, when
// non-nil, returns the frame's pooled payload once the frame has left
// (or was dropped); the drain goroutine calls it exactly once per frame.
type timedMsg struct {
	m       *transport.Msg
	at      time.Time
	release func()
}

// newOutbox creates the drain goroutine for conn. A non-zero delay
// injects a one-way link latency (FIFO order is preserved because a
// single goroutine drains); this lets a localhost deployment emulate
// geo-distributed links.
func newOutbox(conn transport.Sender, delay time.Duration) *outbox {
	o := &outbox{conn: conn, ch: make(chan timedMsg, 1024), done: make(chan struct{}), delay: delay}
	go func() {
		defer close(o.done)
		defer func() { _ = conn.Close() }()
		dead := false
		for tm := range o.ch {
			if !dead {
				if o.delay > 0 {
					time.Sleep(time.Until(tm.at.Add(o.delay)))
				}
				if err := conn.Send(tm.m); err != nil {
					dead = true // connection is gone; keep draining to release payloads
					o.failed.Store(true)
				}
			}
			if tm.release != nil {
				tm.release()
			}
		}
	}()
	return o
}

// enqueue queues a frame; it drops the frame if the outbox already
// finished (dead connection). Callers must guarantee no enqueue happens
// after beginClose — the Server serializes both under its mutex.
func (o *outbox) enqueue(m *transport.Msg) { o.enqueueRelease(m, nil) }

// enqueueRelease queues a frame whose payload must be released after the
// drain goroutine is done with it. release runs exactly once — after the
// send attempt, or right here if the outbox is already dead.
func (o *outbox) enqueueRelease(m *transport.Msg, release func()) {
	select {
	case o.ch <- timedMsg{m: m, at: time.Now(), release: release}:
	case <-o.done:
		if release != nil {
			release()
		}
	}
}

// beginClose flushes asynchronously: pending frames are still sent, then
// the connection closes. Use wait to block until that happened.
func (o *outbox) beginClose() { close(o.ch) }

// kill is the non-graceful counterpart of beginClose: it severs the
// connection immediately, so pending frames error out instead of
// flushing. Used by Server.Kill to emulate a process crash.
func (o *outbox) kill() {
	o.failed.Store(true)
	_ = o.conn.Close()
	close(o.ch)
}

// wait blocks until the drain goroutine has exited.
func (o *outbox) wait() { <-o.done }

// Server is one live Spyker server.
type Server struct {
	ID int

	cfg      spyker.Config
	listener *transport.Listener

	mu      sync.Mutex         // serializes core handlers
	core    *spyker.ServerCore //spyker:guardedby(mu)
	clients map[int]*outbox    //spyker:guardedby(mu)
	peers   map[int]*outbox    //spyker:guardedby(mu) — keyed by stable server ID; no entry for self

	// addrBook maps stable server IDs to listen addresses, learned from
	// ConnectPeers, membership headers on incoming frames, and join
	// handshakes. The reconnect loop falls back to it when its addrOf
	// callback has no answer (newly joined peers).
	addrBook map[int]string //spyker:guardedby(mu)

	// memEpoch is the membership epoch the outbox set was last wired
	// for; when the core adopts a newer epoch, a background redial pass
	// reconciles peers with the new ring.
	memEpoch int //spyker:guardedby(mu)

	// conns tracks every inbound connection currently being read, so Kill
	// can sever them without waiting for the remote side.
	conns map[*transport.Conn]struct{} //spyker:guardedby(mu)

	// peerWrap, when set, wraps every dialed peer connection (initial dial
	// and reconnect alike); fault injection harnesses use it to interpose
	// drop/delay/sever shims (internal/fault.WrapConn).
	peerWrap func(peer int, conn transport.Sender) transport.Sender

	// stop ends the background ticker/reconnect loops on Close or Kill.
	stop chan struct{}

	clientLR    float64
	peerDelay   time.Duration // injected one-way latency on peer links
	clientDelay time.Duration // injected one-way latency on client links
	updates     atomic.Int64

	// tokenSeen is the clock() stamp of the last token frame this server
	// sent or received — the raw input of the token-silence health
	// signal. Regenerating a token locally does NOT count: a stuck
	// post-regeneration holder must still read as silent.
	tokenSeen      float64 //spyker:guardedby(mu)
	tokenSeenValid bool    //spyker:guardedby(mu)

	// reconnects counts successful peer redials (reconnect loop, elastic
	// rewiring, join bootstrap); debugAddr is the operator-announced
	// address of this process's debug HTTP endpoint, echoed in telemetry
	// so monitors can discover it.
	reconnects atomic.Int64
	debugAddr  string //spyker:guardedby(mu)

	// pool recycles the model-sized buffers outbound frames are copied
	// into (the core's Outbound contract only lends its vector for the
	// duration of the call); outbox goroutines return them after sending.
	pool paramvec.Pool

	// ckptScratch is the reusable checkpoint snapshot (see
	// WriteCheckpoint); ckptMu serializes checkpoint writers.
	ckptMu      sync.Mutex
	ckptScratch spyker.State //spyker:guardedby(ckptMu)

	// Observability (see Instrument). sink/clock default to no-ops; the
	// byte totals are always maintained (they are two atomic adds per
	// frame). txPeer/rxPeer cache per-remote registry counters; both maps
	// are only touched under mu.
	sink    obs.Sink //spyker:guardedby(mu)
	clock   obs.Clock
	reg     *obs.Registry        //spyker:guardedby(mu)
	txPeer  map[int]*obs.Counter //spyker:guardedby(mu)
	rxPeer  map[int]*obs.Counter //spyker:guardedby(mu)
	txBytes atomic.Int64
	rxBytes atomic.Int64

	// audit is the per-client contribution audit plane (nil unless
	// ArmAudit was called). Its Observe runs inside dispatch and its
	// Snapshot inside Telemetry — both under mu, so the recorder itself
	// needs no locking.
	audit *audit.Recorder //spyker:guardedby(mu)

	wg      sync.WaitGroup
	closing atomic.Bool
}

// newShell builds a Server around an already-listening transport
// listener, without a protocol core; every constructor (fresh,
// checkpoint-restore, cluster join) shares it. The shell's own address
// seeds the address book so join replies and membership headers can
// advertise it.
func newShell(id int, cfg spyker.Config, l *transport.Listener) *Server {
	s := &Server{
		ID:       id,
		cfg:      cfg,
		listener: l,
		clients:  make(map[int]*outbox),
		peers:    make(map[int]*outbox),
		addrBook: make(map[int]string),
		conns:    make(map[*transport.Conn]struct{}),
		clientLR: cfg.ClientLR,
		sink:     obs.Nop{},
		clock:    obs.WallClock(time.Now()),
		txPeer:   make(map[int]*obs.Counter),
		rxPeer:   make(map[int]*obs.Counter),
		stop:     make(chan struct{}),
	}
	s.addrBook[id] = l.Addr()
	return s
}

// NewServer creates a live server listening on addr (use "127.0.0.1:0"
// for an ephemeral port). holdsToken marks the initial token holder.
func NewServer(id int, addr string, cfg spyker.Config, initial []float64, holdsToken bool) (*Server, error) {
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := newShell(id, cfg, l)
	// Hold mu while wiring the core: the lock is uncontended here (accept
	// loop starts below), and it keeps the guarded-field discipline
	// uniform from the first write.
	s.mu.Lock()
	s.core = spyker.NewServerCore(cfg, initial, holdsToken, (*serverOutbound)(s))
	s.memEpoch = s.core.Epoch()
	if holdsToken {
		// The minted token counts as movement: silence starts now.
		s.tokenSeen, s.tokenSeenValid = s.clock(), true
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Instrument attaches an event sink and/or metrics registry. The core's
// protocol events and this server's frame send/recv events go to sink,
// stamped with wall seconds since the server started; per-remote byte
// counters land in reg under "live.server<ID>.{tx,rx}_bytes.<node>".
// Call before ConnectPeers and before any client connects.
func (s *Server) Instrument(sink obs.Sink, reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sink == nil {
		sink = obs.Nop{}
	}
	s.sink = sink
	s.reg = reg
	if reg != nil {
		s.pool.Instrument(
			reg.Gauge(fmt.Sprintf("live.server%d.pool_live_vecs", s.ID)),
			reg.Counter(fmt.Sprintf("live.server%d.pool_recycled_total", s.ID)),
		)
	}
	s.core.Instrument(sink, s.clock)
	if s.audit != nil {
		s.core.ArmAudit(s.audit)
	}
}

// ArmAudit attaches a per-client contribution audit plane
// (internal/obs/audit) to this server: every merged client update is
// profiled, anomaly verdicts are emitted as KindAudit events into the
// instrumented sink, and Telemetry grows an Audit section. Call after
// Instrument (the recorder captures the sink once) and before clients
// connect. Auditing is passive — it never changes what the core merges.
func (s *Server) ArmAudit(cfg audit.Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.audit = audit.NewRecorder(cfg, s.ID, s.sink)
	s.core.ArmAudit(s.audit)
}

// noteSend records one outgoing frame to the remote node (an
// obs.ServerNode-offset server ID or a raw client ID). Callers hold s.mu
// (the counter maps) — true for every enqueue site.
//
//spyker:locked(mu)
func (s *Server) noteSend(remote int, m *transport.Msg) {
	size := transport.MsgWireBytes(m)
	s.txBytes.Add(int64(size))
	if s.reg != nil {
		c, ok := s.txPeer[remote]
		if !ok {
			c = s.reg.Counter(fmt.Sprintf("live.server%d.tx_bytes.%s", s.ID, obs.NodeName(remote)))
			s.txPeer[remote] = c
		}
		c.Add(int64(size))
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindMsgSend,
			Node: obs.ServerNode + s.ID, Peer: remote, Bytes: size,
			Note: m.Kind.String(), UID: m.Trace.UID,
		})
	}
}

// noteRecv records one incoming frame from the remote node; callers hold
// s.mu.
//
//spyker:locked(mu)
func (s *Server) noteRecv(remote int, m *transport.Msg) {
	size := transport.MsgWireBytes(m)
	s.rxBytes.Add(int64(size))
	if s.reg != nil {
		c, ok := s.rxPeer[remote]
		if !ok {
			c = s.reg.Counter(fmt.Sprintf("live.server%d.rx_bytes.%s", s.ID, obs.NodeName(remote)))
			s.rxPeer[remote] = c
		}
		c.Add(int64(size))
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindMsgRecv,
			Node: obs.ServerNode + s.ID, Peer: remote, Bytes: size,
			Note: m.Kind.String(), UID: m.Trace.UID,
		})
	}
}

// StatsLine renders a one-line snapshot of this server's runtime state,
// the unit of the live runtime's periodic stats log.
func (s *Server) StatsLine() string {
	s.mu.Lock()
	age := s.core.Age()
	syncs := s.core.SyncsTriggered()
	joined := s.core.SyncsJoined()
	clients := len(s.clients)
	s.mu.Unlock()
	return fmt.Sprintf("server %d: updates=%d age=%.1f syncs=%d/%d clients=%d tx=%.2fMB rx=%.2fMB",
		s.ID, s.updates.Load(), age, syncs, joined, clients,
		float64(s.txBytes.Load())/1e6, float64(s.rxBytes.Load())/1e6)
}

// Addr reports the server's listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// InjectLatency sets one-way latencies slept before every outgoing frame
// on peer and client links respectively, emulating geo-distributed links
// on localhost. Call before ConnectPeers and before clients connect.
func (s *Server) InjectLatency(peer, client time.Duration) {
	s.peerDelay = peer
	s.clientDelay = client
}

// Updates reports how many client updates this server has aggregated.
func (s *Server) Updates() int { return int(s.updates.Load()) }

// SyncsTriggered reports how many synchronizations this server initiated.
func (s *Server) SyncsTriggered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.SyncsTriggered()
}

// HoldsToken reports whether this server currently holds the sync token.
func (s *Server) HoldsToken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.HasToken()
}

// TokenRegens reports how many replacement tokens this server has minted
// after detecting ring silence (Config.TokenTimeout).
func (s *Server) TokenRegens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.TokenRegens()
}

// SyncsJoined reports how many synchronization rounds this server has
// participated in (its own triggers included).
func (s *Server) SyncsJoined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.SyncsJoined()
}

// Membership returns a snapshot of this server's current view of the
// ring (epoch and member IDs).
func (s *Server) Membership() ring.Membership {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Membership().Clone()
}

// Params returns a snapshot of the server model.
func (s *Server) Params() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.core.Params()...)
}

// Age returns the current model age.
func (s *Server) Age() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Age()
}

// ConnectPeers dials every other server. addrs is indexed by server ID;
// the entry for this server is ignored. Must be called after all servers
// are listening and before any client connects.
func (s *Server) ConnectPeers(addrs []string) error {
	if len(addrs) != s.cfg.NumServers {
		return fmt.Errorf("live: %d peer addresses for %d servers", len(addrs), s.cfg.NumServers)
	}
	for id, addr := range addrs {
		if id == s.ID {
			continue
		}
		ob, err := s.dialPeer(id, addr)
		if err != nil {
			return fmt.Errorf("live: server %d -> %d: %w", s.ID, id, err)
		}
		s.mu.Lock()
		s.addrBook[id] = addr
		s.peers[id] = ob
		s.mu.Unlock()
	}
	return nil
}

// dialPeer dials a peer, sends the server hello, and wraps the
// connection per SetPeerWrapper. The caller installs the outbox.
func (s *Server) dialPeer(id int, addr string) (*outbox, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(&transport.Msg{Kind: transport.KindHello, From: s.ID, Bid: RoleServer}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	var sender transport.Sender = conn
	if s.peerWrap != nil {
		sender = s.peerWrap(id, sender)
	}
	return newOutbox(sender, s.peerDelay), nil
}

// SetPeerWrapper installs a hook applied to every peer connection this
// server dials, after the hello handshake: ConnectPeers and the
// reconnect loop both route new links through it. Fault harnesses use it
// to interpose fault.Conn shims. Call before ConnectPeers.
func (s *Server) SetPeerWrapper(w func(peer int, conn transport.Sender) transport.Sender) {
	s.peerWrap = w
}

// StartTokenTicker drives the core's token-loss recovery clock: every
// period it feeds the wall time into spyker.ServerCore.Tick, which is
// what arms the silence-timeout regeneration and stuck-round retry
// configured by Config.TokenTimeout / Config.SyncRetry. Without a ticker
// a live server never detects a lost token.
func (s *Server) StartTokenTicker(every time.Duration) {
	if every <= 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.mu.Lock()
				if !s.closing.Load() {
					s.core.Tick(s.clock())
				}
				s.mu.Unlock()
			}
		}
	}()
}

// StartPeerReconnect keeps the ring wired through peer crashes: every
// period it redials any peer whose outbox has failed (or was never
// connected), using addrOf to learn the peer's current address — which
// may have changed across a restart. An empty address skips the peer
// this round.
func (s *Server) StartPeerReconnect(every time.Duration, addrOf func(id int) string) {
	if every <= 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.redialFailedPeers(addrOf)
			}
		}
	}()
}

// redialFailedPeers reconciles the outbox set with the current
// membership: members whose link has failed (or was never dialed) are
// redialed — via addrOf when it answers, falling back to the address
// book learned from membership headers — and outboxes of servers no
// longer in the ring are flushed and dropped. addrOf may be nil.
func (s *Server) redialFailedPeers(addrOf func(id int) string) {
	var stale []int
	var dead []*outbox
	s.mu.Lock()
	mem := s.core.Membership().Clone()
	for _, id := range mem.Members {
		if id == s.ID {
			continue
		}
		if p := s.peers[id]; p == nil || p.failed.Load() {
			stale = append(stale, id)
		}
	}
	for id, p := range s.peers {
		if !mem.Contains(id) {
			dead = append(dead, p)
			delete(s.peers, id)
		}
	}
	s.mu.Unlock()
	for _, p := range dead {
		p.beginClose()
	}
	for _, id := range stale {
		var addr string
		if addrOf != nil {
			addr = addrOf(id)
		}
		if addr == "" {
			s.mu.Lock()
			addr = s.addrBook[id]
			s.mu.Unlock()
		}
		if addr == "" {
			continue
		}
		ob, err := s.dialPeer(id, addr)
		if err != nil {
			continue // peer still down; try again next period
		}
		s.reconnects.Add(1)
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			ob.beginClose()
			return
		}
		old := s.peers[id]
		s.peers[id] = ob
		s.mu.Unlock()
		if old != nil {
			old.beginClose()
		}
	}
}

// Close shuts the server down: clients are told to shut down, all
// outboxes flush and close their connections, the listener stops, and
// reader goroutines drain. When tearing down a cluster, call Close on all
// servers concurrently — a server's inbound peer links only terminate
// once the remote side has closed its end.
func (s *Server) Close() {
	if !s.closing.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	s.mu.Lock()
	// After this block no handler will enqueue again: dispatch and
	// registerClient check s.closing under the same mutex.
	for _, c := range s.clients {
		c.enqueue(&transport.Msg{Kind: transport.KindShutdown, From: s.ID})
	}
	outboxes := make([]*outbox, 0, len(s.clients)+len(s.peers))
	for _, c := range s.clients {
		c.beginClose()
		outboxes = append(outboxes, c)
	}
	for _, p := range s.peers {
		if p != nil {
			p.beginClose()
			outboxes = append(outboxes, p)
		}
	}
	s.mu.Unlock()

	_ = s.listener.Close()
	for _, o := range outboxes {
		o.wait()
	}
	s.wg.Wait()
}

// Kill is the crash counterpart of Close: no shutdown frames, no flush —
// every connection is severed immediately and the listener stops, as if
// the process had died. Clients observe a dropped connection (and redial
// if they run via RunLoop); peers observe send failures and mark the
// link for reconnection. The protocol state is abandoned exactly where
// it was, so a failover harness pairs Kill with a prior checkpoint and
// NewServerFromCheckpoint.
func (s *Server) Kill() {
	if !s.closing.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	s.mu.Lock()
	outboxes := make([]*outbox, 0, len(s.clients)+len(s.peers))
	for _, c := range s.clients {
		outboxes = append(outboxes, c)
	}
	for _, p := range s.peers {
		if p != nil {
			outboxes = append(outboxes, p)
		}
	}
	conns := make([]*transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.listener.Close()
	for _, o := range outboxes {
		o.kill()
	}
	for _, c := range conns {
		_ = c.Close() // unblocks the readLoop regardless of the remote side
	}
	for _, o := range outboxes {
		o.wait()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop registers the connection based on its hello frame and then
// dispatches protocol messages into the core.
func (s *Server) readLoop(conn *transport.Conn) {
	defer s.wg.Done()
	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	hello, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	if hello.Kind == transport.KindJoinRequest {
		// One-shot sponsorship handshake instead of a hello: admit the
		// joiner, reply with its identity and snapshot, and close.
		s.handleJoin(conn, hello)
		return
	}
	if hello.Kind != transport.KindHello {
		_ = conn.Close()
		return
	}
	switch hello.Bid {
	case RoleClient:
		s.registerClient(hello.From, conn)
	case RoleServer:
		// Inbound peer link: read-only; our own dialed link sends.
	default:
		_ = conn.Close()
		return
	}
	// One reusable frame per connection: RecvInto recycles the Params
	// backing array across decodes, so a steady-state reader allocates
	// nothing per frame. The core handlers consume Params synchronously
	// (dispatch holds s.mu for the whole handler) and Token.Ages — the one
	// field receivers retain — is never reused (see transport.Msg.Reset).
	var m transport.Msg
	for {
		if err := conn.RecvInto(&m); err != nil {
			return
		}
		s.dispatch(&m)
	}
}

// handleJoin sponsors one joiner into the ring: it assigns the next
// stable ID, admits it through the core (epoch bump plus membership
// announcement ride out on the age broadcast), records its address, and
// replies with the assigned ID, the new membership, the address book,
// and a gob-encoded state snapshot re-keyed for the newcomer. The
// connection is one-shot: the joiner dials members itself afterwards.
func (s *Server) handleJoin(conn *transport.Conn, req *transport.Msg) {
	defer func() { _ = conn.Close() }()
	if len(req.Addrs) != 1 || req.Addrs[0] == "" {
		return
	}
	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		return
	}
	newID := s.core.Membership().NextID()
	st, err := s.core.AdmitMember(newID)
	if err != nil {
		s.mu.Unlock()
		return
	}
	s.addrBook[newID] = req.Addrs[0]
	s.noteRecv(obs.ServerNode+newID, req)
	mem := s.core.Membership().Clone()
	addrs := s.addrsFor(mem.Members)
	s.maybeRewire() // dial the newcomer once it is listening
	s.mu.Unlock()

	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(&st); err != nil {
		return
	}
	reply := &transport.Msg{
		Kind: transport.KindJoinReply, From: s.ID, Bid: newID,
		Epoch: mem.Epoch, Members: mem.Members, Addrs: addrs,
		Blob: blob.Bytes(),
	}
	s.mu.Lock()
	s.noteSend(obs.ServerNode+newID, reply)
	s.mu.Unlock()
	_ = conn.Send(reply)
}

// JoinCluster starts a new live server by joining a running ring: it
// listens on listenAddr, asks the sponsor at sponsorAddr for admission,
// and boots from the state snapshot in the reply — model, age
// knowledge, and membership included. The sponsor assigns the stable
// ID; the joiner then dials every current member.
func JoinCluster(sponsorAddr, listenAddr string) (*Server, error) {
	l, err := transport.Listen(listenAddr)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Server, error) {
		_ = l.Close()
		return nil, err
	}
	conn, err := transport.Dial(sponsorAddr)
	if err != nil {
		return fail(err)
	}
	req := &transport.Msg{Kind: transport.KindJoinRequest, Addrs: []string{l.Addr()}}
	if err := conn.Send(req); err != nil {
		_ = conn.Close()
		return fail(err)
	}
	reply, err := conn.Recv()
	_ = conn.Close()
	if err != nil {
		return fail(err)
	}
	if reply.Kind != transport.KindJoinReply || len(reply.Blob) == 0 {
		return fail(fmt.Errorf("live: join: unexpected reply %v", reply.Kind))
	}
	var st spyker.State
	if err := gob.NewDecoder(bytes.NewReader(reply.Blob)).Decode(&st); err != nil {
		return fail(fmt.Errorf("live: join: decode snapshot: %w", err))
	}
	s := newShell(st.Config.ID, st.Config, l)
	core, err := spyker.RestoreServerCore(st, (*serverOutbound)(s))
	if err != nil {
		return fail(err)
	}
	// Uncontended (the accept loop starts below); keeps the guarded-field
	// discipline uniform from the first write.
	s.mu.Lock()
	s.core = core
	s.memEpoch = core.Epoch()
	if len(reply.Addrs) == len(reply.Members) {
		for i, id := range reply.Members {
			if a := reply.Addrs[i]; a != "" && id != s.ID {
				s.addrBook[id] = a
			}
		}
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	s.redialFailedPeers(nil) // dial every current member
	return s, nil
}

func (s *Server) registerClient(id int, conn *transport.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		_ = conn.Close()
		return
	}
	ob := newOutbox(conn, s.clientDelay)
	s.clients[id] = ob
	// Hand the client the current model so it can start training. The
	// copy rides in a pooled buffer returned after the send.
	buf := s.pool.Get(len(s.core.Params()))
	buf.CopyFrom(s.core.Params())
	m := &transport.Msg{
		Kind:   transport.KindModelReply,
		From:   s.ID,
		Params: buf,
		Age:    s.core.Age(),
		LR:     s.clientLR,
	}
	s.noteSend(id, m)
	ob.enqueueRelease(m, func() { s.pool.Put(buf) })
}

// dispatch routes one received frame into the protocol core — the tail
// of the pooled receive path: readLoop's reusable Msg arrives here and
// the core handlers consume its Params synchronously under s.mu, so the
// steady-state server processes a frame without allocating.
//
//spyker:noalloc
func (s *Server) dispatch(m *transport.Msg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		return
	}
	switch m.Kind {
	case transport.KindClientUpdate:
		s.noteRecv(m.From, m)
		s.core.HandleClientUpdateTraced(m.From, m.Params, m.Age, m.Trace.UID)
		s.updates.Add(1)
	case transport.KindServerModel:
		s.noteRecv(obs.ServerNode+m.From, m)
		s.absorbHeader(m)
		s.core.HandleServerModelTraced(m.From, m.Params, m.Age, m.Bid, m.Trace.Front,
			ring.Membership{Epoch: m.Epoch, Members: m.Members})
		s.maybeRewire()
	case transport.KindAge:
		s.noteRecv(obs.ServerNode+m.From, m)
		s.absorbHeader(m)
		s.core.HandleAgeTagged(m.From, m.Age, ring.Membership{Epoch: m.Epoch, Members: m.Members})
		s.maybeRewire()
	case transport.KindToken:
		s.noteRecv(obs.ServerNode+m.From, m)
		s.tokenSeen, s.tokenSeenValid = s.clock(), true
		s.absorbHeader(m)
		s.core.HandleToken(spyker.Token{
			Bid: m.Bid, Ages: m.Ages,
			Mem: ring.Membership{Epoch: m.Epoch, Members: m.Members},
		})
		s.maybeRewire()
	}
}

// absorbHeader learns peer addresses riding on a frame's elastic
// membership header (Addrs aligned with Members). Caller holds s.mu.
//
//spyker:locked(mu)
func (s *Server) absorbHeader(m *transport.Msg) {
	if len(m.Addrs) != len(m.Members) {
		return
	}
	for i, id := range m.Members {
		if a := m.Addrs[i]; a != "" && id != s.ID {
			s.addrBook[id] = a
		}
	}
}

// maybeRewire reacts to a membership epoch the core adopted during the
// handler that just ran: the outbox set must follow the ring, so a
// background pass dials newly admitted members and drops departed ones.
// Caller holds s.mu.
//
//spyker:locked(mu)
func (s *Server) maybeRewire() {
	e := s.core.Epoch()
	if e == s.memEpoch {
		return
	}
	s.memEpoch = e
	if s.closing.Load() {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.redialFailedPeers(nil)
	}()
}

// serverOutbound adapts Server to spyker.Outbound. All methods run with
// s.mu held (they are invoked from core handlers), so they only enqueue.
type serverOutbound Server

var _ spyker.Outbound = (*serverOutbound)(nil)

// ReplyClient runs inside a core handler with s.mu held.
//
//spyker:locked(mu)
func (o *serverOutbound) ReplyClient(k int, params []float64, age, lr float64) {
	if c, ok := o.clients[k]; ok {
		s := (*Server)(o)
		// params is a borrow of the core's live vector (Outbound
		// contract); the outbox sends asynchronously, so copy into a
		// pooled buffer it returns after the send.
		buf := s.pool.Get(len(params))
		buf.CopyFrom(params)
		m := &transport.Msg{
			Kind: transport.KindModelReply, From: o.ID,
			Params: buf, Age: age, LR: lr,
		}
		s.noteSend(k, m)
		c.enqueueRelease(m, func() { s.pool.Put(buf) })
	}
}

// addrsFor renders the address book aligned with members (empty string
// where unknown); the slice is shared read-only by every frame of one
// broadcast. Caller holds s.mu.
//
//spyker:locked(mu)
func (s *Server) addrsFor(members []int) []string {
	addrs := make([]string, len(members))
	for i, id := range members {
		addrs[i] = s.addrBook[id]
	}
	return addrs
}

// BroadcastModel runs inside a core handler with s.mu held.
//
//spyker:locked(mu)
func (o *serverOutbound) BroadcastModel(params []float64, age float64, bid int, front []int64, mem ring.Membership) {
	s := (*Server)(o)
	// front is a borrow of the core's live frontier and the outboxes encode
	// asynchronously, so snapshot it once here; the copy is shared by every
	// frame (outboxes only read it for gob encoding). mem.Members is safe
	// to share un-copied: ring.Membership slices are never mutated in
	// place (membership changes allocate fresh slices).
	frontCopy := append([]int64(nil), front...)
	addrs := s.addrsFor(mem.Members)
	uid := obs.RoundUID(o.ID, bid)
	for id, p := range o.peers {
		if p == nil || id == o.ID {
			continue
		}
		// One pooled copy per peer: each outbox owns its buffer and
		// returns it independently after its send completes.
		buf := s.pool.Get(len(params))
		buf.CopyFrom(params)
		m := &transport.Msg{
			Kind: transport.KindServerModel, From: o.ID,
			Params: buf, Age: age, Bid: bid,
			Trace: transport.Trace{UID: uid, Front: frontCopy},
			Epoch: mem.Epoch, Members: mem.Members, Addrs: addrs,
		}
		s.noteSend(obs.ServerNode+id, m)
		p.enqueueRelease(m, func() { s.pool.Put(buf) })
	}
}

// BroadcastAge runs inside a core handler with s.mu held.
//
//spyker:locked(mu)
func (o *serverOutbound) BroadcastAge(age float64, mem ring.Membership) {
	addrs := (*Server)(o).addrsFor(mem.Members)
	for id, p := range o.peers {
		if p == nil || id == o.ID {
			continue
		}
		m := &transport.Msg{
			Kind: transport.KindAge, From: o.ID, Age: age,
			Epoch: mem.Epoch, Members: mem.Members, Addrs: addrs,
		}
		(*Server)(o).noteSend(obs.ServerNode+id, m)
		p.enqueue(m)
	}
}

// SendToken runs inside a core handler with s.mu held.
//
//spyker:locked(mu)
func (o *serverOutbound) SendToken(t spyker.Token, next int) {
	if p := o.peers[next]; p != nil {
		s := (*Server)(o)
		m := &transport.Msg{
			Kind: transport.KindToken, From: o.ID, Bid: t.Bid, Ages: t.Ages,
			Trace: transport.Trace{UID: obs.RoundUID(o.ID, t.Bid)},
			Epoch: t.Mem.Epoch, Members: t.Mem.Members,
			Addrs: s.addrsFor(t.Mem.Members),
		}
		s.noteSend(obs.ServerNode+next, m)
		s.tokenSeen, s.tokenSeenValid = s.clock(), true
		p.enqueue(m)
	}
}
