package live

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

// ClusterConfig describes a local live deployment: n servers on ephemeral
// localhost ports, each serving an equal share of the clients.
type ClusterConfig struct {
	NumServers int
	NumClients int
	Hyper      fl.Hyper
	NewModel   fl.ModelFactory
	Shards     [][]int // one shard per client
	Seed       int64

	// PeerLatency/ClientLatency inject one-way link delays so a localhost
	// deployment behaves like a geo-distributed one.
	PeerLatency   time.Duration
	ClientLatency time.Duration

	// Trace receives every server's protocol and message events
	// (internal/obs); nil disables tracing. Metrics, when non-nil, collects
	// runtime counters/gauges/histograms from all servers into one
	// registry.
	Trace   obs.Sink
	Metrics *obs.Registry
	// Audit arms the per-client contribution audit plane
	// (internal/obs/audit) on every server; verdicts land in Trace as
	// KindAudit events. Nil disables auditing.
	Audit *audit.Config

	// StatsEvery > 0 logs a one-line per-server stats snapshot to StatsOut
	// at that period while the cluster runs (StatsOut nil = discard).
	StatsEvery time.Duration
	StatsOut   io.Writer
}

// ClusterStats summarizes a finished live run.
type ClusterStats struct {
	UpdatesPerServer []int
	ClientUpdates    []int
	SyncsTriggered   int
	FinalAges        []float64
	FinalParams      [][]float64 // final model of every server
	// ModelSpread is the maximum pairwise L2 distance between final
	// server models, a measure of how well the asynchronous exchange kept
	// them together.
	ModelSpread float64
}

// TotalUpdates sums the per-server update counts.
func (s ClusterStats) TotalUpdates() int {
	total := 0
	for _, u := range s.UpdatesPerServer {
		total += u
	}
	return total
}

// RunCluster spins up the deployment, lets it train for the given real
// duration, shuts everything down, and reports statistics. It is used by
// the livetcp example and the live integration tests.
func RunCluster(cfg ClusterConfig, duration time.Duration) (*ClusterStats, error) {
	if cfg.NumServers < 1 || cfg.NumClients < cfg.NumServers {
		return nil, fmt.Errorf("live: bad cluster shape %d/%d", cfg.NumServers, cfg.NumClients)
	}
	if len(cfg.Shards) != cfg.NumClients {
		return nil, fmt.Errorf("live: %d shards for %d clients", len(cfg.Shards), cfg.NumClients)
	}

	initial := cfg.NewModel(cfg.Seed).Params()
	perServer := cfg.NumClients / cfg.NumServers

	// Compose the observability sink shared by all servers: the caller's
	// trace plus (when a registry is given) a metrics deriver, so counters
	// like staleness and byte totals fill automatically from the events.
	sink := obs.Sink(nil)
	if cfg.Trace != nil || cfg.Metrics != nil {
		if cfg.Metrics != nil {
			sink = obs.Multi(cfg.Trace, obs.NewMetricsSink(cfg.Metrics))
		} else {
			sink = cfg.Trace
		}
	}

	servers := make([]*Server, cfg.NumServers)
	addrs := make([]string, cfg.NumServers)
	for i := range servers {
		clientsHere := perServer
		if i == cfg.NumServers-1 {
			clientsHere = cfg.NumClients - perServer*(cfg.NumServers-1)
		}
		score := ServerConfig(i, cfg.NumServers, clientsHere, cfg.Hyper)
		srv, err := NewServer(i, "127.0.0.1:0", score, initial, i == 0)
		if err != nil {
			closeAll(servers[:i])
			return nil, err
		}
		srv.InjectLatency(cfg.PeerLatency, cfg.ClientLatency)
		if sink != nil || cfg.Metrics != nil {
			srv.Instrument(sink, cfg.Metrics)
		}
		if cfg.Audit != nil {
			srv.ArmAudit(*cfg.Audit)
		}
		if cfg.Hyper.TokenTimeout > 0 || cfg.Hyper.SyncRetry > 0 {
			srv.StartTokenTicker(tickerPeriod(cfg.Hyper.TokenTimeout, cfg.Hyper.SyncRetry))
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	for _, srv := range servers {
		if err := srv.ConnectPeers(addrs); err != nil {
			closeAll(servers)
			return nil, err
		}
	}

	clients := make([]*Client, cfg.NumClients)
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.NumClients; ci++ {
		server := ci / perServer
		if server >= cfg.NumServers {
			server = cfg.NumServers - 1
		}
		c := &Client{
			ID:     ci,
			Model:  cfg.NewModel(cfg.Seed + int64(1000+ci)),
			Shard:  cfg.Shards[ci],
			Epochs: cfg.Hyper.LocalEpochs,
		}
		clients[ci] = c
		addr := addrs[server]
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Run(addr)
		}()
	}

	// Periodic one-line stats log, the live runtime's progress heartbeat.
	stopStats := make(chan struct{})
	var statsWG sync.WaitGroup
	if cfg.StatsEvery > 0 && cfg.StatsOut != nil {
		statsWG.Add(1)
		go func() {
			defer statsWG.Done()
			tick := time.NewTicker(cfg.StatsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopStats:
					return
				case <-tick.C:
					for _, srv := range servers {
						fmt.Fprintln(cfg.StatsOut, srv.StatsLine())
					}
				}
			}
		}()
	}

	time.Sleep(duration)
	close(stopStats)
	statsWG.Wait()
	closeAll(servers)
	wg.Wait()

	stats := &ClusterStats{
		UpdatesPerServer: make([]int, cfg.NumServers),
		ClientUpdates:    make([]int, cfg.NumClients),
		FinalAges:        make([]float64, cfg.NumServers),
	}
	finals := make([][]float64, cfg.NumServers)
	for i, srv := range servers {
		stats.UpdatesPerServer[i] = srv.Updates()
		stats.SyncsTriggered += srv.SyncsTriggered()
		stats.FinalAges[i] = srv.Age()
		finals[i] = srv.Params()
	}
	for i, c := range clients {
		stats.ClientUpdates[i] = c.Updates()
	}
	for i := range finals {
		for j := i + 1; j < len(finals); j++ {
			if d := l2(finals[i], finals[j]); d > stats.ModelSpread {
				stats.ModelSpread = d
			}
		}
	}
	stats.FinalParams = finals
	return stats, nil
}

// tickerPeriod picks the recovery tick from the armed timeouts: a
// quarter of the shortest one, mirroring the DES runtime's choice.
func tickerPeriod(tokenTimeout, syncRetry float64) time.Duration {
	shortest := tokenTimeout
	if syncRetry > 0 && (shortest == 0 || syncRetry < shortest) {
		shortest = syncRetry
	}
	return time.Duration(shortest / 4 * float64(time.Second))
}

func closeAll(servers []*Server) {
	var wg sync.WaitGroup
	for _, s := range servers {
		if s == nil {
			continue
		}
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
