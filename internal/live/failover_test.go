package live

import (
	"os"
	"sync"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/spyker"
)

// addrTable is the shared "service discovery" of the failover test:
// servers and clients look addresses up per dial attempt, so a restarted
// server can come back on a different port.
type addrTable struct {
	mu    sync.Mutex
	addrs []string
}

func (a *addrTable) get(id int) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.addrs[id]
}

func (a *addrTable) set(id int, addr string) {
	a.mu.Lock()
	a.addrs[id] = addr
	a.mu.Unlock()
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLiveFailover is the live-runtime failover integration test, run
// in-process so -race covers the recovery paths: three real TCP servers
// with token-loss recovery armed, six clients on redialing RunLoops. The
// current token holder is checkpointed and then killed mid-run (no
// shutdown frames, connections severed). The survivors must detect the
// silent ring and regenerate the token; after the killed server restarts
// from its checkpoint on a fresh port, peer reconnection re-wires the
// ring, its clients redial, and synchronization keeps advancing.
func TestLiveFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP failover test skipped in -short mode")
	}
	const n = 3
	factory, shards, _ := liveFactory(t)
	initial := factory(1).Params()

	mkCfg := func(id int) spyker.Config {
		cfg := clusterServerConfig(id, n, 2)
		cfg.HInter = 3
		cfg.HIntra = 20
		cfg.TokenTimeout = 1.0 // wall seconds
		cfg.SyncRetry = 0.5
		return cfg
	}

	table := &addrTable{addrs: make([]string, n)}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(i, "127.0.0.1:0", mkCfg(i), initial, i == 0)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		table.set(i, srv.Addr())
	}
	start := func(srv *Server) {
		srv.StartTokenTicker(100 * time.Millisecond)
		srv.StartPeerReconnect(150*time.Millisecond, table.get)
	}
	for _, srv := range servers {
		if err := srv.ConnectPeers(table.addrs); err != nil {
			t.Fatal(err)
		}
		start(srv)
	}

	// Six clients, two per server, all on redialing loops so the killed
	// server's clients survive its downtime.
	stop := make(chan struct{})
	var clientWG sync.WaitGroup
	for ci := 0; ci < 6; ci++ {
		c := &Client{ID: ci, Model: factory(int64(100 + ci)), Shard: shards[ci], Epochs: 1}
		home := ci / 2
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			c.RunLoop(func() string { return table.get(home) }, 100*time.Millisecond, stop)
		}()
	}

	syncs := func() int {
		total := 0
		for _, srv := range servers {
			if srv != nil {
				total += srv.SyncsTriggered()
			}
		}
		return total
	}
	waitFor(t, "first synchronizations", 10*time.Second, func() bool { return syncs() >= 2 })

	// Kill whichever server holds the token right now (fall back to 0 if
	// it is in flight when the deadline hits — killing any server still
	// exercises recovery, since rounds need all three).
	victim := 0
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		found := false
		for i, srv := range servers {
			if srv.HoldsToken() {
				victim, found = i, true
				break
			}
		}
		if found {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ckpt := t.TempDir() + "/victim.gob"
	if err := servers[victim].CheckpointToFile(ckpt); err != nil {
		t.Fatal(err)
	}
	t.Logf("killing server %d (holds token: %v)", victim, servers[victim].HoldsToken())
	servers[victim].Kill()
	table.set(victim, "") // down: clients and peers skip it until restart
	servers[victim] = nil

	// Survivors must detect the silent ring and mint a replacement token.
	waitFor(t, "token regeneration by a survivor", 10*time.Second, func() bool {
		for _, srv := range servers {
			if srv != nil && srv.TokenRegens() > 0 {
				return true
			}
		}
		return false
	})

	// Restart from the checkpoint on a fresh port and rejoin the ring.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReadCheckpoint(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewServerFromCheckpoint("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	servers[victim] = restored
	table.set(victim, restored.Addr())
	if err := restored.ConnectPeers(table.addrs); err != nil {
		t.Fatal(err)
	}
	start(restored)

	// Post-rejoin: full rounds need all three servers again, so overall
	// synchronization must advance past its pre-restart count, and the
	// restored server must both see its clients come back and take part.
	syncsAtRestart := syncs()
	waitFor(t, "synchronization to advance past the restart", 15*time.Second, func() bool {
		return syncs() > syncsAtRestart
	})
	waitFor(t, "clients to re-engage the restored server", 15*time.Second, func() bool {
		return restored.Updates() > sumUpdates(st.Updates)
	})

	regens := 0
	for _, srv := range servers {
		regens += srv.TokenRegens()
	}
	t.Logf("failover complete: syncs %d (was %d at restart), regens %d, restored updates %d",
		syncs(), syncsAtRestart, regens, restored.Updates())

	close(stop)
	closeAll(servers)
	clientWG.Wait()
}
