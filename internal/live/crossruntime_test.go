package live

import (
	"math/rand"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/metrics"
	"github.com/spyker-fl/spyker/internal/nn"
	"github.com/spyker-fl/spyker/internal/simulation"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// TestCrossRuntimeEquivalence runs the same Spyker deployment (same
// dataset, same model family, same hyper-parameters) once under the
// discrete-event simulator and once over real TCP, and checks that both
// runtimes train the global model to comparable quality. This is the
// strongest evidence that the DES results transfer: the protocol core is
// literally the same code in both.
func TestCrossRuntimeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	const (
		servers = 2
		clients = 6
	)
	ds := data.GenerateImages(data.MNISTLike(10*clients, 150, 9))
	factory := func(s int64) fl.Model {
		rng := rand.New(rand.NewSource(s))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 4, 3, rng)
		pool := nn.NewMaxPool2D(4, 10, 10)
		net := nn.NewNetwork(
			conv, nn.NewReLU(conv.OutSize()), pool,
			nn.NewDense(pool.OutSize(), 16, rng), nn.NewReLU(16),
			nn.NewDense(16, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, s)
	}
	shards := data.PartitionIID(ds.Len(), clients, 9)
	hyper := fl.DefaultHyper(clients, servers)
	hyper.HInter = 3
	hyper.HIntra = 30

	// Live run: ~1.2 wall seconds of real training.
	liveStats, err := RunCluster(ClusterConfig{
		NumServers: servers,
		NumClients: clients,
		Hyper:      hyper,
		NewModel:   factory,
		Shards:     shards,
		Seed:       9,
	}, 1200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	liveAvg := make([]float64, len(liveStats.FinalParams[0]))
	for _, p := range liveStats.FinalParams {
		for i, v := range p {
			liveAvg[i] += v / float64(len(liveStats.FinalParams))
		}
	}
	evalLive := factory(9)
	evalLive.SetParams(liveAvg)
	_, liveAcc := evalLive.Evaluate()

	// DES run with the same pieces, driven to a similar update count.
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	env := &fl.Env{
		Sim: sim, Net: net,
		Servers: []fl.ServerSpec{
			{ID: 0, Region: geo.HongKong},
			{ID: 1, Region: geo.Paris},
		},
		NewModel:   factory,
		ModelBytes: fl.ModelWireBytes(factory(9).NumParams()),
		Hyper:      hyper,
		Seed:       9,
	}
	for ci := 0; ci < clients; ci++ {
		srv := ci % servers
		env.Clients = append(env.Clients, fl.ClientSpec{
			ID: ci, Region: env.Servers[srv].Region, Server: srv,
			Shard: shards[ci], TrainDelay: 0.15, Epochs: 1,
		})
		env.Servers[srv].Clients = append(env.Servers[srv].Clients, ci)
	}
	rec := metrics.NewRecorder(sim, factory(9), 50)
	rec.MaxUpdate = liveStats.TotalUpdates()
	env.Observer = rec

	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	sim.Run(1e6)
	desAcc := rec.TraceData.Final().Acc

	t.Logf("live acc %.3f (after %d updates) vs DES acc %.3f (after %d updates)",
		liveAcc, liveStats.TotalUpdates(), desAcc, rec.Updates())
	// The absolute quality bars only apply when enough updates flowed in
	// the wall-clock window; under the race detector the live run is
	// several times slower, so the matched update budget can land before
	// either runtime has converged. The equivalence check below — both
	// runtimes reach comparable quality from the same amount of work — is
	// the point of the test and always holds.
	if liveStats.TotalUpdates() >= 300 {
		if liveAcc < 0.7 {
			t.Errorf("live runtime failed to train: %.3f", liveAcc)
		}
		if desAcc < 0.7 {
			t.Errorf("DES runtime failed to train: %.3f", desAcc)
		}
	}
	if diff := liveAcc - desAcc; diff > 0.25 || diff < -0.25 {
		t.Errorf("runtimes diverge in quality: live %.3f vs DES %.3f", liveAcc, desAcc)
	}
}
