package live

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/spyker"
	"github.com/spyker-fl/spyker/internal/transport"
)

// TestServerTelemetry boots a 2-server ring, drives one sync round with
// hand-rolled client updates, and checks the telemetry snapshot tracks
// the token's movement, the membership address book, peer link state,
// and the staleness histogram — and that the snapshot survives its own
// wire codec.
func TestServerTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	const n = 2
	initial := make([]float64, 8)
	mk := func(id int) spyker.Config {
		cfg := clusterServerConfig(id, n, 1)
		cfg.HInter = 2 // two updates trigger a sync round
		cfg.TokenTimeout = 5
		cfg.SyncRetry = 2.5
		return cfg
	}
	reg := obs.NewRegistry()
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(i, "127.0.0.1:0", mk(i), initial, i == 0)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	defer func() {
		// Peer links only drain when both ends close: tear down together.
		var wg sync.WaitGroup
		for _, srv := range servers {
			wg.Add(1)
			go func(s *Server) { defer wg.Done(); s.Close() }(srv)
		}
		wg.Wait()
	}()
	servers[0].Instrument(obs.NewMetricsSink(reg), reg)
	servers[0].SetDebugAddr("127.0.0.1:7070")
	addrs := []string{servers[0].Addr(), servers[1].Addr()}
	for _, srv := range servers {
		if err := srv.ConnectPeers(addrs); err != nil {
			t.Fatal(err)
		}
	}

	tel := servers[0].Telemetry()
	if tel.Version != obs.TelemetryVersion || tel.Server != 0 {
		t.Fatalf("snapshot identity: %+v", tel)
	}
	if !tel.HoldsToken || tel.TokenSilence < 0 || tel.TokenSilence > 5 {
		t.Errorf("initial holder token state: holds=%v silence=%v", tel.HoldsToken, tel.TokenSilence)
	}
	if tel.Addr != addrs[0] || tel.DebugAddr != "127.0.0.1:7070" {
		t.Errorf("addresses: %q %q", tel.Addr, tel.DebugAddr)
	}
	if len(tel.Members) != n || len(tel.Addrs) != n || tel.Addrs[1] != addrs[1] {
		t.Errorf("address book: members=%v addrs=%v", tel.Members, tel.Addrs)
	}
	if len(tel.Peers) != 1 || tel.Peers[0].Peer != 1 || tel.Peers[0].Failed {
		t.Errorf("peer links: %+v", tel.Peers)
	}
	if tel.TokenTimeout != 5 || tel.SyncRetry != 2.5 {
		t.Errorf("recovery config: %+v", tel)
	}

	// One hand-rolled client: two updates push server 0 over HInter, the
	// round completes, and the token moves to server 1.
	conn, err := transport.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(&transport.Msg{Kind: transport.KindHello, From: 0, Bid: RoleClient}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Kind != transport.KindModelReply {
			t.Fatalf("expected model reply, got %v", reply.Kind)
		}
		up := &transport.Msg{
			Kind: transport.KindClientUpdate, From: 0,
			Params: append([]float64(nil), reply.Params...), Age: reply.Age,
			Trace: transport.Trace{UID: obs.UpdateUID(0, int64(i+1))},
		}
		if err := conn.Send(up); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "token handoff to server 1", 5*time.Second, func() bool {
		return servers[1].HoldsToken()
	})

	tel = servers[0].Telemetry()
	if tel.HoldsToken {
		t.Error("server 0 still reports the token after the handoff")
	}
	if tel.Updates != 2 {
		t.Errorf("updates = %d, want 2", tel.Updates)
	}
	if tel.SyncsTriggered != 1 {
		t.Errorf("syncs triggered = %d, want 1", tel.SyncsTriggered)
	}
	if tel.TokenSilence > 5 {
		t.Errorf("token silence %v after fresh handoff", tel.TokenSilence)
	}
	if got := tel.StalenessTotal(); got != 2 {
		t.Errorf("staleness histogram holds %d updates, want 2", got)
	}

	// The uninstrumented server snapshots too (no histogram, no gauges).
	tel1 := servers[1].Telemetry()
	if !tel1.HoldsToken || tel1.Server != 1 {
		t.Errorf("server 1 snapshot: %+v", tel1)
	}
	if len(tel1.StalenessCounts) != 0 {
		t.Errorf("uninstrumented server grew a histogram: %+v", tel1.StalenessCounts)
	}

	// Wire round-trip.
	var buf bytes.Buffer
	if err := obs.WriteTelemetry(&buf, tel); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Server != tel.Server || back.Updates != tel.Updates || back.Epoch != tel.Epoch {
		t.Errorf("round trip mismatch: %+v vs %+v", back, tel)
	}

	// The health gauges landed on the registry.
	snap := reg.Snapshot()
	for _, name := range []string{
		"live.server0.ring_epoch", "live.server0.failed_outboxes",
		"live.server0.peer_reconnects_total", "live.server0.outbox_depth.s1",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("gauge %s missing from registry", name)
		}
	}
}

// TestServerTelemetryAudit arms the contribution audit plane on a live
// server and checks the per-client forensics ride the telemetry
// snapshot: an Audit section with per-client rows appears once updates
// flow, survives the wire codec, and stays absent on unarmed servers.
func TestServerTelemetryAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	initial := make([]float64, 8)
	cfg := clusterServerConfig(0, 1, 1)
	cfg.HInter = 100 // never sync: this test only watches client merges
	srv, err := NewServer(0, "127.0.0.1:0", cfg, initial, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sink := obs.NewTracer(256)
	srv.Instrument(sink, nil)
	srv.ArmAudit(audit.Config{})

	if srv.Telemetry().Audit == nil {
		t.Fatal("armed server missing telemetry audit section")
	}

	conn, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(&transport.Msg{Kind: transport.KindHello, From: 3, Bid: RoleClient}); err != nil {
		t.Fatal(err)
	}
	const updates = 4
	for i := 0; i < updates; i++ {
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Kind != transport.KindModelReply {
			t.Fatalf("expected model reply, got %v", reply.Kind)
		}
		up := &transport.Msg{
			Kind: transport.KindClientUpdate, From: 3,
			Params: append([]float64(nil), reply.Params...), Age: reply.Age,
			Trace: transport.Trace{UID: obs.UpdateUID(3, int64(i+1))},
		}
		up.Params[0] += 0.1 // a real (if tiny) contribution
		if err := conn.Send(up); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "audited updates", 5*time.Second, func() bool {
		a := srv.Telemetry().Audit
		return a != nil && a.Updates == updates
	})

	tel := srv.Telemetry()
	a := tel.Audit
	if len(a.Clients) != 1 || a.Clients[0].Client != 3 || a.Clients[0].Updates != updates {
		t.Fatalf("audit client rows: %+v", a.Clients)
	}
	if a.Flagged != 0 {
		t.Errorf("benign client flagged: %+v", a)
	}

	// Wire round-trip keeps the section.
	var buf bytes.Buffer
	if err := obs.WriteTelemetry(&buf, tel); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Audit == nil || len(back.Audit.Clients) != 1 || back.Audit.Clients[0].Client != 3 {
		t.Fatalf("audit section lost in codec round trip: %+v", back.Audit)
	}
}
