package live

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
)

// TestLiveClusterObservability runs a small instrumented cluster and
// checks that the trace carries message events from every layer, that the
// registry fills with derived metrics, and that the periodic stats log
// produces per-server lines. Exercised under -race by CI.
func TestLiveClusterObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	factory, shards, _ := liveFactory(t)
	hyper := fl.DefaultHyper(6, 2)
	hyper.HInter = 3
	hyper.HIntra = 20

	tracer := obs.NewTracer(0)
	reg := obs.NewRegistry()
	var statsBuf bytes.Buffer
	stats, err := RunCluster(ClusterConfig{
		NumServers: 2,
		NumClients: 6,
		Hyper:      hyper,
		NewModel:   factory,
		Shards:     shards,
		Seed:       1,
		Trace:      tracer,
		Metrics:    reg,
		StatsEvery: 200 * time.Millisecond,
		StatsOut:   &statsBuf,
	}, 1200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUpdates() < 5 {
		t.Fatalf("only %d updates flowed", stats.TotalUpdates())
	}

	events := tracer.Events()
	if len(events) == 0 {
		t.Fatal("instrumented cluster produced no events")
	}
	kinds := map[obs.EventKind]int{}
	sawServerMsg := false
	for _, e := range events {
		kinds[e.Kind]++
		if (e.Kind == obs.KindMsgSend || e.Kind == obs.KindMsgRecv) && e.Node >= obs.ServerNode {
			sawServerMsg = true
			if e.Bytes <= 0 {
				t.Errorf("message event without byte size: %+v", e)
			}
		}
	}
	if kinds[obs.KindClientUpdate] == 0 {
		t.Error("no client-update events from the protocol core")
	}
	if kinds[obs.KindMsgSend] == 0 || kinds[obs.KindMsgRecv] == 0 {
		t.Errorf("missing message events: %d sends, %d recvs",
			kinds[obs.KindMsgSend], kinds[obs.KindMsgRecv])
	}
	if !sawServerMsg {
		t.Error("no message event carried a ServerNode-offset node ID")
	}

	// The metrics deriver must have filled the registry from the stream.
	snap := reg.Snapshot()
	if v, ok := snap[obs.MetricUpdates].(int64); !ok || v == 0 {
		t.Errorf("registry %s = %v, want > 0", obs.MetricUpdates, snap[obs.MetricUpdates])
	}
	if v, ok := snap[obs.MetricBytesSent].(int64); !ok || v == 0 {
		t.Errorf("registry %s = %v, want > 0", obs.MetricBytesSent, snap[obs.MetricBytesSent])
	}

	// Periodic stats: at least one snapshot of both servers.
	lines := strings.Split(strings.TrimSpace(statsBuf.String()), "\n")
	if len(lines) < 2 {
		t.Errorf("stats log has %d lines, want at least one per server", len(lines))
	}
	if !strings.Contains(statsBuf.String(), "server 0:") || !strings.Contains(statsBuf.String(), "server 1:") {
		t.Errorf("stats log missing per-server lines:\n%s", statsBuf.String())
	}

	// Causal provenance: live traces must reconstruct the same lineage
	// structure as simulator traces. Every client-update event carries a
	// client-minted UID and a frontier, and at least one update's
	// influence must have propagated to the other server via a traced
	// broadcast hop.
	for _, e := range events {
		if e.Kind == obs.KindClientUpdate {
			if !e.UID.IsUpdate() {
				t.Fatalf("client-update event without update UID: %+v", e)
			}
			if len(e.Front) == 0 {
				t.Fatalf("client-update event without frontier: %+v", e)
			}
		}
	}
	lin := obs.BuildLineage(events)
	if lin.Untracked != 0 {
		t.Errorf("%d untracked updates in a fully instrumented live run", lin.Untracked)
	}
	if len(lin.Updates) == 0 {
		t.Fatal("live trace reconstructed no update lineage")
	}
	var propagated *obs.UpdateLineage
	for _, u := range lin.Updates {
		if u.ReachedAll(2) {
			propagated = u
			break
		}
	}
	if propagated == nil {
		t.Fatal("no update propagated across servers in the live trace")
	}
	a := propagated.Arrivals[0]
	// Each server stamps events with its own start epoch; servers are
	// created sub-millisecond apart, so allow 10ms of clock skew.
	if a.Server == propagated.Origin || a.Time < propagated.Merged-0.01 {
		t.Errorf("implausible arrival %+v for journey %+v", a, propagated)
	}
	if chain := propagated.HopChain(a.Server); len(chain) == 0 {
		t.Errorf("no hop chain to server %d for %s", a.Server, propagated.Name())
	}

	// The per-link queueing-delay histograms must have matched send/recv
	// pairs on at least one server-server link.
	matched := false
	for i := 0; i < 2 && !matched; i++ {
		for j := 0; j < 2; j++ {
			if i == j {
				continue
			}
			h := reg.Histogram(obs.LinkDelayMetric(obs.ServerNode+i, obs.ServerNode+j), nil)
			if h.Count() > 0 {
				matched = true
				break
			}
		}
	}
	if !matched {
		t.Error("no link-delay histogram filled for any server-server link")
	}
}

// TestCheckpointEmitsEvent verifies that persisting a server snapshot
// produces a checkpoint event carrying the encoded size.
func TestCheckpointEmitsEvent(t *testing.T) {
	factory, _, _ := liveFactory(t)
	initial := factory(1).Params()
	cfg := clusterServerConfig(0, 2, 3)
	srv, err := NewServer(0, "127.0.0.1:0", cfg, initial, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tracer := obs.NewTracer(0)
	srv.Instrument(tracer, nil)

	var buf bytes.Buffer
	if err := srv.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var ev *obs.Event
	for _, e := range tracer.Events() {
		if e.Kind == obs.KindCheckpoint {
			e := e
			ev = &e
		}
	}
	if ev == nil {
		t.Fatal("no checkpoint event emitted")
	}
	if ev.Bytes != buf.Len() {
		t.Errorf("checkpoint event reports %d bytes, encoded %d", ev.Bytes, buf.Len())
	}
	if ev.Node != 0 {
		t.Errorf("checkpoint event node = %d, want 0", ev.Node)
	}
}
