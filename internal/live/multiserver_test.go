package live

import (
	"testing"
	"time"

	"github.com/spyker-fl/spyker/internal/fl"
)

// TestLiveFourServerCluster runs the paper-shaped topology over real TCP:
// 4 servers, 12 clients, token circulating the full ring. Verifies the
// token-based synchronization works beyond the 2-server case and that
// load spreads over all servers.
func TestLiveFourServerCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	factory, _, ds := liveFactory(t)
	_ = ds
	hyper := fl.DefaultHyper(12, 4)
	hyper.HInter = 3
	hyper.HIntra = 25

	// 12 clients need 12 shards; regenerate from the shared dataset.
	shards := make([][]int, 12)
	for i := range shards {
		for j := i * 10; j < (i+1)*10; j++ {
			shards[i] = append(shards[i], j)
		}
	}

	stats, err := RunCluster(ClusterConfig{
		NumServers: 4,
		NumClients: 12,
		Hyper:      hyper,
		NewModel:   factory,
		Shards:     shards,
		Seed:       4,
	}, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range stats.UpdatesPerServer {
		if u == 0 {
			t.Errorf("server %d processed no updates", i)
		}
	}
	if stats.SyncsTriggered == 0 {
		t.Error("the token never triggered a synchronization on the 4-ring")
	}
	// The exchange must keep the four models together: spread small
	// relative to model norm (the models are actively training, so allow
	// slack).
	var norm float64
	for _, v := range stats.FinalParams[0] {
		norm += v * v
	}
	if stats.ModelSpread > 2 {
		t.Errorf("model spread %v too large for a synchronized 4-server ring", stats.ModelSpread)
	}
	t.Logf("4-server live: %v updates, %d syncs, spread %.3f",
		stats.UpdatesPerServer, stats.SyncsTriggered, stats.ModelSpread)
}

// TestLiveClientCounts: every client participates and update counts are
// spread reasonably (no client starves).
func TestLiveClientParticipation(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test skipped in -short mode")
	}
	factory, shards, _ := liveFactory(t)
	hyper := fl.DefaultHyper(6, 2)
	stats, err := RunCluster(ClusterConfig{
		NumServers: 2,
		NumClients: 6,
		Hyper:      hyper,
		NewModel:   factory,
		Shards:     shards,
		Seed:       5,
	}, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	min, max := stats.ClientUpdates[0], stats.ClientUpdates[0]
	for _, u := range stats.ClientUpdates {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if min == 0 {
		t.Errorf("a client starved: %v", stats.ClientUpdates)
	}
	if min*20 < max {
		t.Errorf("extreme participation skew on identical hardware: %v", stats.ClientUpdates)
	}
}
