package live

import (
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// clusterServerConfig builds the spyker.Config of one server in an
// n-server deployment with the library defaults (paper Tab. 2).
func clusterServerConfig(id, n, clients int) spyker.Config {
	return spyker.Config{
		ID:           id,
		NumServers:   n,
		NumClients:   clients,
		EtaServer:    0.6,
		Phi:          1.5,
		EtaA:         0.6,
		HInter:       float64(clients*n) / (5 * float64(n)),
		HIntra:       350,
		ClientLR:     0.05,
		DecayEnabled: true,
		Beta:         1,
		EtaMin:       1e-6,
	}
}

// ServerConfig builds the spyker.Config of server id in an n-server
// deployment driven by hyper h, with clientsHere of the deployment's
// clients attached to this server. Multi-process deployments
// (spyker-live -role server) use it so every process derives the same
// protocol parameters from the same hyper flags.
func ServerConfig(id, n, clientsHere int, h fl.Hyper) spyker.Config {
	return spyker.Config{
		ID:           id,
		NumServers:   n,
		NumClients:   clientsHere,
		EtaServer:    h.EtaServer,
		Phi:          h.Phi,
		EtaA:         h.EtaA,
		HInter:       h.HInter,
		HIntra:       h.HIntra,
		ClientLR:     h.ClientLR,
		DecayEnabled: h.DecayEnabled,
		Beta:         h.Beta,
		EtaMin:       h.EtaMin,
		TokenTimeout: h.TokenTimeout,
		SyncRetry:    h.SyncRetry,
	}
}
