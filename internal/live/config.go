package live

import "github.com/spyker-fl/spyker/internal/spyker"

// clusterServerConfig builds the spyker.Config of one server in an
// n-server deployment with the library defaults (paper Tab. 2).
func clusterServerConfig(id, n, clients int) spyker.Config {
	return spyker.Config{
		ID:           id,
		NumServers:   n,
		NumClients:   clients,
		EtaServer:    0.6,
		Phi:          1.5,
		EtaA:         0.6,
		HInter:       float64(clients*n) / (5 * float64(n)),
		HIntra:       350,
		ClientLR:     0.05,
		DecayEnabled: true,
		Beta:         1,
		EtaMin:       1e-6,
	}
}
