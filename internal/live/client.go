package live

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/transport"
)

// Client is one live federated client: it connects to its server, and
// then loops — receive model, train on its local shard, send the update
// back — until the server tells it to shut down or the connection drops.
type Client struct {
	ID     int
	Model  fl.Model
	Shard  []int
	Epochs int

	updates int
}

// Updates reports how many local trainings this client completed.
func (c *Client) Updates() int { return c.updates }

// Run connects to serverAddr and participates until shutdown. It returns
// nil on an orderly shutdown and the transport error otherwise.
func (c *Client) Run(serverAddr string) error {
	conn, err := transport.Dial(serverAddr)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	if err := conn.Send(&transport.Msg{Kind: transport.KindHello, From: c.ID, Bid: roleClient}); err != nil {
		return err
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			// The server closing the connection during teardown is an
			// orderly end of participation.
			return nil
		}
		switch m.Kind {
		case transport.KindShutdown:
			return nil
		case transport.KindModelReply:
			c.Model.SetParams(m.Params)
			c.Model.Train(c.Shard, c.Epochs, m.LR)
			c.updates++
			err := conn.Send(&transport.Msg{
				Kind:   transport.KindClientUpdate,
				From:   c.ID,
				Params: c.Model.Params(),
				Age:    m.Age,
			})
			if err != nil {
				return nil
			}
		default:
			return fmt.Errorf("live: client %d got unexpected %v", c.ID, m.Kind)
		}
	}
}
