package live

import (
	"fmt"
	"time"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/transport"
)

// Client is one live federated client: it connects to its server, and
// then loops — receive model, train on its local shard, send the update
// back — until the server tells it to shut down or the connection drops.
type Client struct {
	ID     int
	Model  fl.Model
	Shard  []int
	Epochs int

	updates int
}

// Updates reports how many local trainings this client completed.
func (c *Client) Updates() int { return c.updates }

// Run connects to serverAddr and participates until shutdown. It returns
// nil on an orderly shutdown and the transport error otherwise.
func (c *Client) Run(serverAddr string) error {
	_, err := c.runOnce(serverAddr)
	return err
}

// RunLoop participates like Run but survives server crashes: whenever the
// connection drops without an orderly KindShutdown frame, it waits retry
// and redials addrOf() — which may return a different address after the
// server restarted, or "" to skip this round. It returns after a
// shutdown frame, or once stop closes (checked between attempts).
func (c *Client) RunLoop(addrOf func() string, retry time.Duration, stop <-chan struct{}) {
	for {
		if addr := addrOf(); addr != "" {
			if shutdown, _ := c.runOnce(addr); shutdown {
				return
			}
		}
		select {
		case <-stop:
			return
		case <-time.After(retry):
		}
	}
}

// runOnce is one connection's worth of participation. shutdown reports
// whether the server ended it with an explicit KindShutdown frame — a
// dropped connection (server crash or teardown) returns false with a nil
// error, which is what lets RunLoop distinguish "redial" from "done".
func (c *Client) runOnce(serverAddr string) (shutdown bool, _ error) {
	conn, err := transport.Dial(serverAddr)
	if err != nil {
		return false, err
	}
	defer func() { _ = conn.Close() }()

	if err := conn.Send(&transport.Msg{Kind: transport.KindHello, From: c.ID, Bid: RoleClient}); err != nil {
		return false, err
	}
	// Both frames are reused across iterations: RecvInto recycles the
	// inbound Params buffer, and the outbound update serializes straight
	// from the model's parameter view — Send gob-encodes synchronously, so
	// the borrow never outlives the call and the loop allocates nothing
	// per round.
	var in, out transport.Msg
	for {
		if err := conn.RecvInto(&in); err != nil {
			// The server closing the connection during teardown is an
			// orderly end of participation.
			return false, nil
		}
		switch in.Kind {
		case transport.KindShutdown:
			return true, nil
		case transport.KindModelReply:
			c.Model.SetParams(in.Params)
			c.Model.Train(c.Shard, c.Epochs, in.LR)
			c.updates++
			// Mint the update's causal ID at its origin — the same scheme
			// the simulator uses, so a live trace and a sim trace yield the
			// same lineage structure.
			out = transport.Msg{
				Kind:   transport.KindClientUpdate,
				From:   c.ID,
				Params: c.Model.ParamsView(),
				Age:    in.Age,
				Trace:  transport.Trace{UID: obs.UpdateUID(c.ID, int64(c.updates))},
			}
			if err := conn.Send(&out); err != nil {
				return false, nil
			}
		default:
			return false, fmt.Errorf("live: client %d got unexpected %v", c.ID, in.Kind)
		}
	}
}
