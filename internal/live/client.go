package live

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/transport"
)

// Client is one live federated client: it connects to its server, and
// then loops — receive model, train on its local shard, send the update
// back — until the server tells it to shut down or the connection drops.
type Client struct {
	ID     int
	Model  fl.Model
	Shard  []int
	Epochs int

	updates int
}

// Updates reports how many local trainings this client completed.
func (c *Client) Updates() int { return c.updates }

// Run connects to serverAddr and participates until shutdown. It returns
// nil on an orderly shutdown and the transport error otherwise.
func (c *Client) Run(serverAddr string) error {
	conn, err := transport.Dial(serverAddr)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	if err := conn.Send(&transport.Msg{Kind: transport.KindHello, From: c.ID, Bid: RoleClient}); err != nil {
		return err
	}
	// Both frames are reused across iterations: RecvInto recycles the
	// inbound Params buffer, and the outbound update serializes straight
	// from the model's parameter view — Send gob-encodes synchronously, so
	// the borrow never outlives the call and the loop allocates nothing
	// per round.
	var in, out transport.Msg
	for {
		if err := conn.RecvInto(&in); err != nil {
			// The server closing the connection during teardown is an
			// orderly end of participation.
			return nil
		}
		switch in.Kind {
		case transport.KindShutdown:
			return nil
		case transport.KindModelReply:
			c.Model.SetParams(in.Params)
			c.Model.Train(c.Shard, c.Epochs, in.LR)
			c.updates++
			// Mint the update's causal ID at its origin — the same scheme
			// the simulator uses, so a live trace and a sim trace yield the
			// same lineage structure.
			out = transport.Msg{
				Kind:   transport.KindClientUpdate,
				From:   c.ID,
				Params: c.Model.ParamsView(),
				Age:    in.Age,
				Trace:  transport.Trace{UID: obs.UpdateUID(c.ID, int64(c.updates))},
			}
			if err := conn.Send(&out); err != nil {
				return nil
			}
		default:
			return fmt.Errorf("live: client %d got unexpected %v", c.ID, in.Kind)
		}
	}
}
