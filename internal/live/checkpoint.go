package live

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/spyker"
	"github.com/spyker-fl/spyker/internal/transport"
)

// countingWriter counts bytes passing through to w, so checkpoint events
// can report the encoded snapshot size.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// WriteCheckpoint persists the server's full protocol state (model, ages,
// token, decay counters) so a restarted process can resume where it left
// off.
func (s *Server) WriteCheckpoint(w io.Writer) error {
	// The scratch State is reused across checkpoints (SnapshotInto only
	// grows it), so periodic checkpointing stops allocating a model-sized
	// vector per tick; ckptMu serializes concurrent checkpoint writers.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	s.core.SnapshotInto(&s.ckptScratch)
	sink := s.sink
	s.mu.Unlock()
	st := &s.ckptScratch
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(st); err != nil {
		return fmt.Errorf("live: encode checkpoint: %w", err)
	}
	if sink.Enabled() {
		sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindCheckpoint,
			Node: s.ID, Peer: obs.NoPeer, Bytes: cw.n, Age: st.Age,
		})
	}
	return nil
}

// CheckpointToFile writes the checkpoint atomically: to a temp file first,
// then renamed into place.
func (s *Server) CheckpointToFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.WriteCheckpoint(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpoint decodes a state previously written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (spyker.State, error) {
	var st spyker.State
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return spyker.State{}, fmt.Errorf("live: decode checkpoint: %w", err)
	}
	return st, nil
}

// NewServerFromCheckpoint starts a live server that resumes from a
// snapshot instead of a fresh model: same ID, same protocol position,
// same decay counters.
func NewServerFromCheckpoint(addr string, st spyker.State) (*Server, error) {
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := newShell(st.Config.ID, st.Config, l)
	core, err := spyker.RestoreServerCore(st, (*serverOutbound)(s))
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	// Uncontended (the accept loop starts below); keeps the guarded-field
	// discipline uniform from the first write.
	s.mu.Lock()
	s.core = core
	s.memEpoch = core.Epoch()
	if core.HasToken() {
		s.tokenSeen, s.tokenSeenValid = s.clock(), true
	}
	s.mu.Unlock()
	s.updates.Store(int64(sumUpdates(st.Updates)))
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func sumUpdates(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
