package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleTrace() Trace {
	return Trace{
		{Time: 1, Updates: 100, Loss: 2.0, Acc: 0.3},
		{Time: 2, Updates: 200, Loss: 1.0, Acc: 0.6},
		{Time: 3, Updates: 300, Loss: 0.5, Acc: 0.85},
		{Time: 4, Updates: 400, Loss: 0.4, Acc: 0.92},
	}
}

func TestTimeToAcc(t *testing.T) {
	tr := sampleTrace()
	if tt, ok := tr.TimeToAcc(0.6); !ok || tt != 2 {
		t.Errorf("TimeToAcc(0.6) = %v,%v", tt, ok)
	}
	if tt, ok := tr.TimeToAcc(0.9); !ok || tt != 4 {
		t.Errorf("TimeToAcc(0.9) = %v,%v", tt, ok)
	}
	if _, ok := tr.TimeToAcc(0.99); ok {
		t.Error("unreached target reported as reached")
	}
	if u, ok := tr.UpdatesToAcc(0.85); !ok || u != 300 {
		t.Errorf("UpdatesToAcc = %v,%v", u, ok)
	}
}

func TestPerplexity(t *testing.T) {
	p := Point{Loss: math.Log(32)}
	if math.Abs(p.Perplexity()-32) > 1e-9 {
		t.Errorf("Perplexity = %v", p.Perplexity())
	}
	tr := sampleTrace()
	if tt, ok := tr.TimeToPerplexity(math.Exp(0.5)); !ok || tt != 3 {
		t.Errorf("TimeToPerplexity = %v,%v", tt, ok)
	}
	if got := tr.BestPerplexity(); math.Abs(got-math.Exp(0.4)) > 1e-9 {
		t.Errorf("BestPerplexity = %v", got)
	}
}

func TestTraceSummary(t *testing.T) {
	tr := sampleTrace()
	if tr.BestAcc() != 0.92 {
		t.Errorf("BestAcc = %v", tr.BestAcc())
	}
	if tr.Final().Time != 4 {
		t.Errorf("Final = %+v", tr.Final())
	}
	var empty Trace
	if empty.Final() != (Point{}) || empty.BestAcc() != 0 {
		t.Error("empty trace summaries wrong")
	}
	if !math.IsInf(empty.BestPerplexity(), 1) {
		t.Error("empty BestPerplexity should be +Inf")
	}
}

func TestQueueTrace(t *testing.T) {
	q := QueueTrace{
		{Time: 0, Length: 0},
		{Time: 1, Length: 4},
		{Time: 3, Length: 2},
		{Time: 4, Length: 0},
	}
	if q.Max() != 4 {
		t.Errorf("Max = %d", q.Max())
	}
	// Mean over [1,4): lengths 4 for 2s, 2 for 1s = 10/3.
	if got := q.MeanAbove(1); math.Abs(got-10.0/3) > 1e-9 {
		t.Errorf("MeanAbove = %v", got)
	}
	if got := (QueueTrace{}).MeanAbove(0); got != 0 {
		t.Errorf("empty MeanAbove = %v", got)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 3
	}
	grid, density := KDE(samples, 0, 256)
	if len(grid) != 256 || len(density) != 256 {
		t.Fatal("grid size wrong")
	}
	step := grid[1] - grid[0]
	var integral float64
	for _, d := range density {
		integral += d * step
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("KDE integrates to %v", integral)
	}
}

func TestKDEBimodalPeaks(t *testing.T) {
	var samples []float64
	for i := 0; i < 100; i++ {
		samples = append(samples, 10+float64(i%5)*0.1)
	}
	for i := 0; i < 40; i++ {
		samples = append(samples, 50+float64(i%5)*0.1)
	}
	grid, density := KDE(samples, 2, 256)
	peaks := Peaks(grid, density, 0.15)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v, want 2", peaks)
	}
	if math.Abs(peaks[0]-10) > 2 || math.Abs(peaks[1]-50) > 2 {
		t.Errorf("peak locations %v", peaks)
	}
}

func TestKDEEmptyAndDegenerate(t *testing.T) {
	if g, d := KDE(nil, 1, 10); g != nil || d != nil {
		t.Error("empty samples should return nil")
	}
	// All-identical samples: Silverman bandwidth is 0, must fall back.
	g, d := KDE([]float64{5, 5, 5}, 0, 16)
	if len(g) != 16 || len(d) != 16 {
		t.Error("degenerate samples broke KDE")
	}
	for _, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("KDE produced NaN/Inf")
		}
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{4, 1, 3, 2}
	if q := Quantile(s, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(s, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(s, 0.5); math.Abs(q-2.5) > 1e-9 {
		t.Errorf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if s[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(s, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
