package metrics

import (
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/simulation"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// Recorder observes a running federated-learning algorithm and produces
// the paper's measurements. It evaluates the average of all server models
// every EvalEvery client updates (the paper reports global-model accuracy;
// averaging the server models is the natural global readout of a flat
// multi-server deployment and coincides with the single model of
// single-server baselines).
type Recorder struct {
	Sim       *simulation.Sim
	EvalModel fl.Model // shared evaluation instance; parameters overwritten
	EvalEvery int      // client updates between evaluations
	TargetAcc float64  // stop the simulation at this accuracy; 0 disables
	MaxUpdate int      // stop after this many updates; 0 disables

	TraceData     Trace
	QueueData     map[int]QueueTrace
	ClientUpdates map[int]int

	updates   int
	reached   bool
	reachedAt float64
	avg       []float64
}

var _ fl.Observer = (*Recorder)(nil)

// NewRecorder builds a recorder evaluating on evalModel.
func NewRecorder(sim *simulation.Sim, evalModel fl.Model, evalEvery int) *Recorder {
	if evalEvery <= 0 {
		evalEvery = 25
	}
	return &Recorder{
		Sim:           sim,
		EvalModel:     evalModel,
		EvalEvery:     evalEvery,
		QueueData:     make(map[int]QueueTrace),
		ClientUpdates: make(map[int]int),
	}
}

// ClientUpdateProcessed implements fl.Observer.
func (r *Recorder) ClientUpdateProcessed(now float64, _ int, client int, models func() [][]float64) {
	r.updates++
	r.ClientUpdates[client]++
	if r.updates%r.EvalEvery == 0 {
		r.evaluate(now, models())
	}
	if r.MaxUpdate > 0 && r.updates >= r.MaxUpdate {
		r.Sim.Stop()
	}
}

// QueueLength implements fl.Observer.
func (r *Recorder) QueueLength(now float64, server, length int) {
	r.QueueData[server] = append(r.QueueData[server], QueuePoint{Time: now, Length: length})
}

func (r *Recorder) evaluate(now float64, models [][]float64) {
	if len(models) == 0 {
		return
	}
	if r.avg == nil {
		r.avg = make([]float64, len(models[0]))
	}
	tensor.Zero(r.avg)
	share := 1 / float64(len(models))
	for _, m := range models {
		tensor.AXPY(share, r.avg, m)
	}
	r.EvalModel.SetParams(r.avg)
	loss, acc := r.EvalModel.Evaluate()
	r.TraceData = append(r.TraceData, Point{Time: now, Updates: r.updates, Loss: loss, Acc: acc})
	if r.TargetAcc > 0 && acc >= r.TargetAcc && !r.reached {
		r.reached = true
		r.reachedAt = now
		r.Sim.Stop()
	}
}

// Updates reports the total number of client updates observed.
func (r *Recorder) Updates() int { return r.updates }

// Reached reports whether the target accuracy was hit, and when.
func (r *Recorder) Reached() (bool, float64) { return r.reached, r.reachedAt }

// UpdateCountSamples returns the per-client update counts as float samples
// for the KDE of Fig. 10, ordered by client ID for determinism.
func (r *Recorder) UpdateCountSamples(numClients int) []float64 {
	out := make([]float64, 0, numClients)
	for c := 0; c < numClients; c++ {
		out = append(out, float64(r.ClientUpdates[c]))
	}
	return out
}
