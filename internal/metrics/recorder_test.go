package metrics

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/simulation"
)

// stubModel lets the tests control the reported accuracy and inspect what
// parameters the recorder evaluated.
type stubModel struct {
	lastParams []float64
	acc        float64
}

func (s *stubModel) NumParams() int               { return 2 }
func (s *stubModel) Params() []float64            { return append([]float64(nil), s.lastParams...) }
func (s *stubModel) ParamsView() []float64        { return s.lastParams }
func (s *stubModel) SetParams(p []float64)        { s.lastParams = append([]float64(nil), p...) }
func (s *stubModel) Train([]int, int, float64)    {}
func (s *stubModel) Evaluate() (float64, float64) { return 1.5, s.acc }

func TestRecorderEvaluatesEveryN(t *testing.T) {
	sim := simulation.New()
	m := &stubModel{acc: 0.5}
	r := NewRecorder(sim, m, 3)
	models := func() [][]float64 { return [][]float64{{2, 4}, {4, 8}} }
	for i := 0; i < 7; i++ {
		r.ClientUpdateProcessed(float64(i), 0, i%2, models)
	}
	if len(r.TraceData) != 2 {
		t.Fatalf("trace points = %d, want 2 (updates 3 and 6)", len(r.TraceData))
	}
	if r.TraceData[0].Updates != 3 || r.TraceData[1].Updates != 6 {
		t.Errorf("trace updates = %+v", r.TraceData)
	}
	// The recorder must have evaluated the average of the server models.
	if m.lastParams[0] != 3 || m.lastParams[1] != 6 {
		t.Errorf("evaluated params = %v, want averaged {3,6}", m.lastParams)
	}
	if r.Updates() != 7 {
		t.Errorf("Updates = %d", r.Updates())
	}
	if r.ClientUpdates[0] != 4 || r.ClientUpdates[1] != 3 {
		t.Errorf("per-client counts = %v", r.ClientUpdates)
	}
}

func TestRecorderStopsAtTarget(t *testing.T) {
	sim := simulation.New()
	m := &stubModel{acc: 0.95}
	r := NewRecorder(sim, m, 1)
	r.TargetAcc = 0.9
	stopped := false
	sim.Schedule(10, func() { stopped = false })
	r.ClientUpdateProcessed(1, 0, 0, func() [][]float64 { return [][]float64{{1, 1}} })
	reached, at := r.Reached()
	if !reached || at != 1 {
		t.Errorf("Reached = %v,%v, want true,1", reached, at)
	}
	// The simulator must have been stopped: the scheduled event at t=10
	// stays pending on the next Run because Stop was requested.
	sim.Run(5)
	_ = stopped
	if sim.Pending() != 1 {
		t.Errorf("pending events = %d", sim.Pending())
	}
}

func TestRecorderMaxUpdateStops(t *testing.T) {
	sim := simulation.New()
	m := &stubModel{acc: 0.1}
	r := NewRecorder(sim, m, 100)
	r.MaxUpdate = 5
	for i := 0; i < 5; i++ {
		r.ClientUpdateProcessed(float64(i), 0, 0, func() [][]float64 { return nil })
	}
	if r.Updates() != 5 {
		t.Errorf("Updates = %d", r.Updates())
	}
}

func TestRecorderQueueTraces(t *testing.T) {
	sim := simulation.New()
	r := NewRecorder(sim, &stubModel{}, 10)
	r.QueueLength(1, 0, 3)
	r.QueueLength(2, 0, 2)
	r.QueueLength(1, 1, 7)
	if len(r.QueueData[0]) != 2 || len(r.QueueData[1]) != 1 {
		t.Errorf("queue data = %+v", r.QueueData)
	}
	if r.QueueData[1][0].Length != 7 {
		t.Error("queue sample wrong")
	}
}

func TestUpdateCountSamples(t *testing.T) {
	sim := simulation.New()
	r := NewRecorder(sim, &stubModel{}, 10)
	r.ClientUpdateProcessed(0, 0, 2, func() [][]float64 { return nil })
	r.ClientUpdateProcessed(0, 0, 2, func() [][]float64 { return nil })
	r.ClientUpdateProcessed(0, 0, 0, func() [][]float64 { return nil })
	got := r.UpdateCountSamples(4)
	want := []float64{1, 0, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("samples = %v, want %v", got, want)
		}
	}
}
