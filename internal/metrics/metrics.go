// Package metrics records everything the paper's evaluation reports:
// accuracy/perplexity traces indexed by virtual time and by processed
// client updates (Figs. 3-8), per-server queue-length traces (Fig. 9),
// per-client update counts and their kernel density estimate (Fig. 10),
// and time/updates-to-target-accuracy readouts (Tabs. 5-7).
package metrics

import (
	"math"
	"sort"
)

// Point is one evaluation sample of a training run.
type Point struct {
	Time    float64 // virtual seconds
	Updates int     // client updates processed so far
	Loss    float64 // average held-out loss
	Acc     float64 // held-out accuracy in [0,1]
}

// Perplexity converts the point's loss to perplexity (language models).
func (p Point) Perplexity() float64 { return math.Exp(p.Loss) }

// Trace is a time-ordered series of evaluation points.
type Trace []Point

// TimeToAcc returns the first virtual time at which the trace reaches the
// target accuracy, and whether it ever does.
func (t Trace) TimeToAcc(target float64) (float64, bool) {
	for _, p := range t {
		if p.Acc >= target {
			return p.Time, true
		}
	}
	return 0, false
}

// UpdatesToAcc returns the number of processed updates at the first point
// reaching the target accuracy, and whether it is ever reached.
func (t Trace) UpdatesToAcc(target float64) (int, bool) {
	for _, p := range t {
		if p.Acc >= target {
			return p.Updates, true
		}
	}
	return 0, false
}

// TimeToPerplexity returns the first virtual time at which perplexity
// drops to the target or below.
func (t Trace) TimeToPerplexity(target float64) (float64, bool) {
	for _, p := range t {
		if p.Perplexity() <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// Final returns the last point, or a zero Point for an empty trace.
func (t Trace) Final() Point {
	if len(t) == 0 {
		return Point{}
	}
	return t[len(t)-1]
}

// BestAcc returns the maximum accuracy seen.
func (t Trace) BestAcc() float64 {
	best := 0.0
	for _, p := range t {
		if p.Acc > best {
			best = p.Acc
		}
	}
	return best
}

// BestPerplexity returns the minimum perplexity seen, or +Inf for an empty
// trace.
func (t Trace) BestPerplexity() float64 {
	best := math.Inf(1)
	for _, p := range t {
		if pp := p.Perplexity(); pp < best {
			best = pp
		}
	}
	return best
}

// QueuePoint is one sample of a server's jobs-in-system count.
type QueuePoint struct {
	Time   float64
	Length int
}

// QueueTrace is a time-ordered queue-length series for one server.
type QueueTrace []QueuePoint

// Max returns the maximum observed queue length.
func (q QueueTrace) Max() int {
	best := 0
	for _, p := range q {
		if p.Length > best {
			best = p.Length
		}
	}
	return best
}

// MeanAbove returns the time-weighted mean queue length after time t0,
// integrating the piecewise-constant series.
func (q QueueTrace) MeanAbove(t0 float64) float64 {
	var area, span float64
	for i := 0; i < len(q)-1; i++ {
		a, b := q[i], q[i+1]
		lo := math.Max(a.Time, t0)
		if b.Time <= lo {
			continue
		}
		dt := b.Time - lo
		area += float64(a.Length) * dt
		span += dt
	}
	if span == 0 {
		return 0
	}
	return area / span
}

// KDE computes a Gaussian kernel density estimate of samples on a uniform
// grid of n points spanning [min(samples), max(samples)] padded by one
// bandwidth on each side. Bandwidth <= 0 selects Silverman's rule of
// thumb. It returns the grid and the density values (integrating to ~1).
func KDE(samples []float64, bandwidth float64, n int) (grid, density []float64) {
	if len(samples) == 0 || n <= 1 {
		return nil, nil
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if bandwidth <= 0 {
		bandwidth = silverman(samples)
		if bandwidth <= 0 {
			bandwidth = 1
		}
	}
	lo -= bandwidth
	hi += bandwidth
	grid = make([]float64, n)
	density = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	norm := 1 / (float64(len(samples)) * bandwidth * math.Sqrt(2*math.Pi))
	for i := range grid {
		x := lo + float64(i)*step
		grid[i] = x
		var d float64
		for _, s := range samples {
			z := (x - s) / bandwidth
			d += math.Exp(-0.5 * z * z)
		}
		density[i] = d * norm
	}
	return grid, density
}

// silverman returns Silverman's rule-of-thumb bandwidth.
func silverman(samples []float64) float64 {
	n := float64(len(samples))
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= n
	var varSum float64
	for _, s := range samples {
		varSum += (s - mean) * (s - mean)
	}
	sd := math.Sqrt(varSum / n)
	return 1.06 * sd * math.Pow(n, -0.2)
}

// Peaks returns the grid locations of local maxima of density that exceed
// frac times the global maximum; the paper reads the KDE plot through its
// peaks (slow-client mass vs fast-client mass).
func Peaks(grid, density []float64, frac float64) []float64 {
	if len(grid) != len(density) || len(grid) < 3 {
		return nil
	}
	globalMax := 0.0
	for _, d := range density {
		globalMax = math.Max(globalMax, d)
	}
	var out []float64
	for i := 1; i < len(density)-1; i++ {
		if density[i] >= density[i-1] && density[i] > density[i+1] && density[i] >= frac*globalMax {
			out = append(out, grid[i])
		}
	}
	return out
}

// Quantile returns the q-quantile (0..1) of samples using linear
// interpolation; it copies and sorts internally.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
