package metrics

import "math"

// Crossover returns the first virtual time at which trace a's accuracy
// overtakes trace b's and stays strictly ahead at every later b-sample,
// comparing at b's sample times by step interpolation. A momentary
// overtake that b later reverses does not count; the reported time is the
// start of the final, permanent lead. It reports whether such a crossover
// exists; a trace that is ahead at every sample crosses at b's first
// point.
func Crossover(a, b Trace) (float64, bool) {
	if len(a) == 0 || len(b) == 0 {
		return 0, false
	}
	// Scan backwards: the crossover is the earliest b-sample such that a
	// is strictly ahead there and at every sample after it.
	crossAt := -1
	for i := len(b) - 1; i >= 0; i-- {
		av, ok := ValueAt(a, b[i].Time)
		if !ok || av <= b[i].Acc {
			break
		}
		crossAt = i
	}
	if crossAt < 0 {
		return 0, false
	}
	return b[crossAt].Time, true
}

// ValueAt returns the trace's accuracy at time t using last-sample-holds
// interpolation, and whether the trace has begun by t.
func ValueAt(tr Trace, t float64) (float64, bool) {
	var acc float64
	found := false
	for _, p := range tr {
		if p.Time > t {
			break
		}
		acc = p.Acc
		found = true
	}
	return acc, found
}

// AUC integrates accuracy over time between the trace's first and last
// samples (piecewise constant), normalized by the span — a scalar summary
// of "how high and how early" a curve sits; 1.0 is a run pinned at 100%
// accuracy throughout.
func AUC(tr Trace) float64 {
	if len(tr) < 2 {
		if len(tr) == 1 {
			return tr[0].Acc
		}
		return 0
	}
	var area float64
	for i := 0; i+1 < len(tr); i++ {
		area += tr[i].Acc * (tr[i+1].Time - tr[i].Time)
	}
	span := tr[len(tr)-1].Time - tr[0].Time
	if span <= 0 {
		return tr[0].Acc
	}
	return area / span
}

// Smooth returns an exponential-moving-average copy of the trace's
// accuracy (alpha in (0,1]; 1 = no smoothing). Loss is smoothed the same
// way; times and update counts are preserved.
func Smooth(tr Trace, alpha float64) Trace {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	out := make(Trace, len(tr))
	var acc, loss float64
	for i, p := range tr {
		if i == 0 {
			acc, loss = p.Acc, p.Loss
		} else {
			acc = alpha*p.Acc + (1-alpha)*acc
			loss = alpha*p.Loss + (1-alpha)*loss
		}
		out[i] = Point{Time: p.Time, Updates: p.Updates, Loss: loss, Acc: acc}
	}
	return out
}

// ConvergenceRate fits acc(t) ~ final*(1 - exp(-t/tau)) by estimating tau
// from the time the smoothed trace first reaches 63.2% of its final
// accuracy. Smaller tau = faster convergence. Returns 0 if the trace is
// too short or never reaches the threshold.
func ConvergenceRate(tr Trace) (tau float64) {
	if len(tr) < 3 {
		return 0
	}
	final := tr[len(tr)-1].Acc
	if final <= 0 {
		return 0
	}
	threshold := final * (1 - math.Exp(-1))
	for _, p := range tr {
		if p.Acc >= threshold {
			return p.Time - tr[0].Time
		}
	}
	return 0
}
