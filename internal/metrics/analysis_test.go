package metrics

import (
	"math"
	"testing"
)

func linearTrace(times []float64, accs []float64) Trace {
	tr := make(Trace, len(times))
	for i := range times {
		tr[i] = Point{Time: times[i], Acc: accs[i]}
	}
	return tr
}

func TestValueAt(t *testing.T) {
	tr := linearTrace([]float64{1, 2, 3}, []float64{0.1, 0.5, 0.9})
	if v, ok := ValueAt(tr, 0.5); ok || v != 0 {
		t.Errorf("before start: %v,%v", v, ok)
	}
	if v, ok := ValueAt(tr, 2.5); !ok || v != 0.5 {
		t.Errorf("ValueAt(2.5) = %v,%v", v, ok)
	}
	if v, _ := ValueAt(tr, 100); v != 0.9 {
		t.Errorf("ValueAt(100) = %v", v)
	}
}

func TestCrossover(t *testing.T) {
	fast := linearTrace([]float64{1, 2, 3}, []float64{0.2, 0.6, 0.9})
	slow := linearTrace([]float64{1, 2, 3}, []float64{0.3, 0.4, 0.5})
	// fast is behind at t=1 (0.2 < 0.3) and ahead at t=2 (0.6 > 0.4).
	at, ok := Crossover(fast, slow)
	if !ok || at != 2 {
		t.Errorf("Crossover = %v,%v, want 2,true", at, ok)
	}
	// slow leads only at t=1 and is behind from t=2 on: a transient lead
	// that does not last is not a crossover.
	if at, ok := Crossover(slow, fast); ok {
		t.Errorf("reverse Crossover reported transient lead at %v", at)
	}
	if _, ok := Crossover(nil, fast); ok {
		t.Error("empty trace crossed")
	}
	never := linearTrace([]float64{1, 2, 3}, []float64{0, 0, 0})
	if _, ok := Crossover(never, fast); ok {
		t.Error("flat-zero trace should never overtake")
	}
}

func TestAUC(t *testing.T) {
	// Accuracy 0.5 for 2s then 1.0 for 2s: area = 0.5*2 + 1*2 = 3 over 4s.
	tr := linearTrace([]float64{0, 2, 4}, []float64{0.5, 1.0, 1.0})
	if got := AUC(tr); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
	if AUC(nil) != 0 {
		t.Error("empty AUC != 0")
	}
	if AUC(Trace{{Acc: 0.4}}) != 0.4 {
		t.Error("single-point AUC wrong")
	}
	perfect := linearTrace([]float64{0, 1}, []float64{1, 1})
	if AUC(perfect) != 1 {
		t.Error("pinned-at-1 AUC != 1")
	}
}

func TestSmooth(t *testing.T) {
	tr := linearTrace([]float64{0, 1, 2}, []float64{0, 1, 0})
	sm := Smooth(tr, 0.5)
	if sm[0].Acc != 0 {
		t.Error("first point must be unchanged")
	}
	if math.Abs(sm[1].Acc-0.5) > 1e-12 {
		t.Errorf("smoothed[1] = %v", sm[1].Acc)
	}
	if math.Abs(sm[2].Acc-0.25) > 1e-12 {
		t.Errorf("smoothed[2] = %v", sm[2].Acc)
	}
	// alpha=1 (or invalid) leaves the trace unchanged.
	same := Smooth(tr, 0)
	for i := range tr {
		if same[i] != tr[i] {
			t.Error("alpha fallback changed the trace")
		}
	}
	// Times preserved.
	if sm[2].Time != 2 {
		t.Error("time not preserved")
	}
}

func TestConvergenceRate(t *testing.T) {
	// Reaches 63.2% of its final 1.0 at t=3.
	tr := linearTrace([]float64{0, 1, 2, 3, 4}, []float64{0, 0.2, 0.4, 0.7, 1.0})
	tau := ConvergenceRate(tr)
	if tau != 3 {
		t.Errorf("tau = %v, want 3", tau)
	}
	fast := linearTrace([]float64{0, 1, 2, 3, 4}, []float64{0, 0.8, 0.9, 0.95, 1.0})
	if fastTau := ConvergenceRate(fast); fastTau >= tau {
		t.Errorf("faster curve has tau %v >= %v", fastTau, tau)
	}
	if ConvergenceRate(nil) != 0 || ConvergenceRate(Trace{{Acc: 1}}) != 0 {
		t.Error("degenerate traces should return 0")
	}
}

// TestValueAtBoundaries pins the edge behaviour of the step
// interpolation: empty traces, exact sample-time hits, and duplicate
// timestamps (the last sample at a tied time wins, matching the
// emission order of equal-timestamp simulator events).
func TestValueAtBoundaries(t *testing.T) {
	if v, ok := ValueAt(nil, 1); ok || v != 0 {
		t.Errorf("empty trace: %v,%v, want 0,false", v, ok)
	}
	if v, ok := ValueAt(Trace{}, 0); ok || v != 0 {
		t.Errorf("zero-length trace: %v,%v, want 0,false", v, ok)
	}

	tr := linearTrace([]float64{1, 2, 3}, []float64{0.1, 0.5, 0.9})
	// Exact hits take the sample at that time, not the previous one.
	if v, ok := ValueAt(tr, 1); !ok || v != 0.1 {
		t.Errorf("ValueAt(first sample) = %v,%v, want 0.1,true", v, ok)
	}
	if v, ok := ValueAt(tr, 3); !ok || v != 0.9 {
		t.Errorf("ValueAt(last sample) = %v,%v, want 0.9,true", v, ok)
	}

	// Duplicate timestamps: the later entry at the tied time holds.
	dup := linearTrace([]float64{1, 2, 2, 3}, []float64{0.1, 0.4, 0.6, 0.9})
	if v, _ := ValueAt(dup, 2); v != 0.6 {
		t.Errorf("tied timestamps: ValueAt(2) = %v, want 0.6 (last wins)", v)
	}
	if v, _ := ValueAt(dup, 2.5); v != 0.6 {
		t.Errorf("after tie: ValueAt(2.5) = %v, want 0.6", v)
	}

	// Single-point trace.
	one := Trace{{Time: 5, Acc: 0.7}}
	if v, ok := ValueAt(one, 4.999); ok || v != 0 {
		t.Errorf("before single point: %v,%v, want 0,false", v, ok)
	}
	if v, ok := ValueAt(one, 5); !ok || v != 0.7 {
		t.Errorf("at single point: %v,%v, want 0.7,true", v, ok)
	}
}

// TestCrossoverBoundaries covers the degenerate comparisons: empty
// traces on either side, identical traces (never strictly ahead), exact
// ties at every sample, and a comparison trace that starts before the
// candidate has begun.
func TestCrossoverBoundaries(t *testing.T) {
	tr := linearTrace([]float64{1, 2}, []float64{0.5, 0.8})
	if _, ok := Crossover(nil, nil); ok {
		t.Error("two empty traces crossed")
	}
	if _, ok := Crossover(tr, nil); ok {
		t.Error("crossover against an empty reference")
	}
	if _, ok := Crossover(nil, tr); ok {
		t.Error("empty candidate crossed")
	}

	// Identical traces tie everywhere; ties are not "strictly ahead".
	if at, ok := Crossover(tr, tr); ok {
		t.Errorf("identical traces crossed at %v", at)
	}

	// b's first samples predate a: those comparison points are skipped,
	// and the crossover lands on the first b-sample where a has begun and
	// leads.
	a := linearTrace([]float64{2, 3}, []float64{0.9, 0.95})
	b := linearTrace([]float64{1, 2, 3}, []float64{0.3, 0.4, 0.5})
	at, ok := Crossover(a, b)
	if !ok || at != 2 {
		t.Errorf("late-start crossover = %v,%v, want 2,true", at, ok)
	}

	// A candidate that only ever ties at shared times never crosses.
	tie := linearTrace([]float64{1, 2}, []float64{0.5, 0.8})
	if _, ok := Crossover(tie, tr); ok {
		t.Error("tie-everywhere candidate crossed")
	}
}

// TestCrossoverStaysAhead pins the "stays strictly ahead" promise: a
// momentary overtake that the reference later reverses is not a
// crossover, and the reported time is the start of the permanent lead,
// not the first transient one.
func TestCrossoverStaysAhead(t *testing.T) {
	// a spikes ahead at t=2 but b retakes the lead at t=3 and keeps it.
	a := linearTrace([]float64{1, 2, 3, 4}, []float64{0.1, 0.6, 0.5, 0.5})
	b := linearTrace([]float64{1, 2, 3, 4}, []float64{0.3, 0.4, 0.7, 0.8})
	if at, ok := Crossover(a, b); ok {
		t.Errorf("transient overtake reported as crossover at %v", at)
	}

	// a overtakes at t=2, falls back at t=3, then overtakes for good at
	// t=4: the crossover is the start of the final lead, not the blip.
	a = linearTrace([]float64{1, 2, 3, 4, 5}, []float64{0.1, 0.6, 0.5, 0.8, 0.9})
	b = linearTrace([]float64{1, 2, 3, 4, 5}, []float64{0.3, 0.4, 0.7, 0.7, 0.75})
	at, ok := Crossover(a, b)
	if !ok || at != 4 {
		t.Errorf("overtake-dip-overtake crossover = %v,%v, want 4,true", at, ok)
	}

	// Falling to a tie (not strictly behind) still breaks the lead.
	a = linearTrace([]float64{1, 2, 3}, []float64{0.6, 0.5, 0.5})
	b = linearTrace([]float64{1, 2, 3}, []float64{0.3, 0.5, 0.5})
	if at, ok := Crossover(a, b); ok {
		t.Errorf("lead that decays to a tie crossed at %v", at)
	}
}
