package metrics

import (
	"math"
	"testing"
)

func linearTrace(times []float64, accs []float64) Trace {
	tr := make(Trace, len(times))
	for i := range times {
		tr[i] = Point{Time: times[i], Acc: accs[i]}
	}
	return tr
}

func TestValueAt(t *testing.T) {
	tr := linearTrace([]float64{1, 2, 3}, []float64{0.1, 0.5, 0.9})
	if v, ok := ValueAt(tr, 0.5); ok || v != 0 {
		t.Errorf("before start: %v,%v", v, ok)
	}
	if v, ok := ValueAt(tr, 2.5); !ok || v != 0.5 {
		t.Errorf("ValueAt(2.5) = %v,%v", v, ok)
	}
	if v, _ := ValueAt(tr, 100); v != 0.9 {
		t.Errorf("ValueAt(100) = %v", v)
	}
}

func TestCrossover(t *testing.T) {
	fast := linearTrace([]float64{1, 2, 3}, []float64{0.2, 0.6, 0.9})
	slow := linearTrace([]float64{1, 2, 3}, []float64{0.3, 0.4, 0.5})
	// fast is behind at t=1 (0.2 < 0.3) and ahead at t=2 (0.6 > 0.4).
	at, ok := Crossover(fast, slow)
	if !ok || at != 2 {
		t.Errorf("Crossover = %v,%v, want 2,true", at, ok)
	}
	// slow never overtakes fast after t=2... it is ahead at t=1.
	at, ok = Crossover(slow, fast)
	if !ok || at != 1 {
		t.Errorf("reverse Crossover = %v,%v, want 1,true", at, ok)
	}
	if _, ok := Crossover(nil, fast); ok {
		t.Error("empty trace crossed")
	}
	never := linearTrace([]float64{1, 2, 3}, []float64{0, 0, 0})
	if _, ok := Crossover(never, fast); ok {
		t.Error("flat-zero trace should never overtake")
	}
}

func TestAUC(t *testing.T) {
	// Accuracy 0.5 for 2s then 1.0 for 2s: area = 0.5*2 + 1*2 = 3 over 4s.
	tr := linearTrace([]float64{0, 2, 4}, []float64{0.5, 1.0, 1.0})
	if got := AUC(tr); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
	if AUC(nil) != 0 {
		t.Error("empty AUC != 0")
	}
	if AUC(Trace{{Acc: 0.4}}) != 0.4 {
		t.Error("single-point AUC wrong")
	}
	perfect := linearTrace([]float64{0, 1}, []float64{1, 1})
	if AUC(perfect) != 1 {
		t.Error("pinned-at-1 AUC != 1")
	}
}

func TestSmooth(t *testing.T) {
	tr := linearTrace([]float64{0, 1, 2}, []float64{0, 1, 0})
	sm := Smooth(tr, 0.5)
	if sm[0].Acc != 0 {
		t.Error("first point must be unchanged")
	}
	if math.Abs(sm[1].Acc-0.5) > 1e-12 {
		t.Errorf("smoothed[1] = %v", sm[1].Acc)
	}
	if math.Abs(sm[2].Acc-0.25) > 1e-12 {
		t.Errorf("smoothed[2] = %v", sm[2].Acc)
	}
	// alpha=1 (or invalid) leaves the trace unchanged.
	same := Smooth(tr, 0)
	for i := range tr {
		if same[i] != tr[i] {
			t.Error("alpha fallback changed the trace")
		}
	}
	// Times preserved.
	if sm[2].Time != 2 {
		t.Error("time not preserved")
	}
}

func TestConvergenceRate(t *testing.T) {
	// Reaches 63.2% of its final 1.0 at t=3.
	tr := linearTrace([]float64{0, 1, 2, 3, 4}, []float64{0, 0.2, 0.4, 0.7, 1.0})
	tau := ConvergenceRate(tr)
	if tau != 3 {
		t.Errorf("tau = %v, want 3", tau)
	}
	fast := linearTrace([]float64{0, 1, 2, 3, 4}, []float64{0, 0.8, 0.9, 0.95, 1.0})
	if fastTau := ConvergenceRate(fast); fastTau >= tau {
		t.Errorf("faster curve has tau %v >= %v", fastTau, tau)
	}
	if ConvergenceRate(nil) != 0 || ConvergenceRate(Trace{{Acc: 1}}) != 0 {
		t.Error("degenerate traces should return 0")
	}
}
