package perf

import (
	"math/rand"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/nn"
)

// One SGD mini-batch (forward + backward over 8 samples + parameter
// step) per model of the paper's evaluation. These are the compute
// kernels every simulated or live client burns its training delay on, so
// a slowdown here inflates every experiment's wall-clock.
func init() {
	Register(Scenario{
		Name:  "nn/mnist-cnn-batch",
		Layer: LayerNN,
		Smoke: true,
		Setup: func() (Instance, error) {
			ds := data.GenerateImages(data.MNISTLike(32, 8, 1))
			rng := rand.New(rand.NewSource(4))
			ch, h, w := ds.Shape()
			conv := nn.NewConv2D(ch, h, w, 6, 3, rng)
			pool := nn.NewMaxPool2D(6, 10, 10)
			net := nn.NewNetwork(
				conv, nn.NewReLU(conv.OutSize()), pool,
				nn.NewDense(pool.OutSize(), 32, rng), nn.NewReLU(32),
				nn.NewDense(32, ds.NumClasses(), rng),
			)
			return Instance{
				Step:   func() { trainBatch(net, ds, 8) },
				Extras: func() map[string]float64 { return map[string]float64{"params": float64(net.NumParams())} },
			}, nil
		},
	})
	Register(Scenario{
		Name:  "nn/cifar-cnn-batch",
		Layer: LayerNN,
		Setup: func() (Instance, error) {
			ds := data.GenerateImages(data.CIFARLike(32, 8, 1))
			rng := rand.New(rand.NewSource(5))
			ch, h, w := ds.Shape()
			conv1 := nn.NewConv2D(ch, h, w, 6, 3, rng)
			conv2 := nn.NewConv2D(6, 10, 10, 8, 3, rng)
			pool := nn.NewMaxPool2D(8, 8, 8)
			net := nn.NewNetwork(
				conv1, nn.NewReLU(conv1.OutSize()),
				conv2, nn.NewReLU(conv2.OutSize()), pool,
				nn.NewDense(pool.OutSize(), 32, rng), nn.NewReLU(32),
				nn.NewDense(32, ds.NumClasses(), rng),
			)
			return Instance{
				Step:   func() { trainBatch(net, ds, 8) },
				Extras: func() map[string]float64 { return map[string]float64{"params": float64(net.NumParams())} },
			}, nil
		},
	})
	Register(Scenario{
		Name:  "nn/char-lstm-window",
		Layer: LayerNN,
		Setup: func() (Instance, error) {
			txt := data.GenerateText(data.WikiTextLike(512, 64, 1))
			rng := rand.New(rand.NewSource(6))
			lm := nn.NewCharLM(txt.Vocab(), 8, 16, rng)
			window := txt.Window(0)
			return Instance{
				Step: func() {
					if _, preds := lm.SeqLossAndGrad(window); preds > 0 {
						lm.Step(0.05, preds, 5)
					}
				},
				Extras: func() map[string]float64 { return map[string]float64{"params": float64(lm.NumParams())} },
			}, nil
		},
	})
}

// trainBatch runs one mini-batch of SGD over the first n samples: the
// per-example forward+backward accumulation followed by the clipped step,
// exactly the loop fl.Classifier.Train runs per batch.
func trainBatch(net *nn.Network, ds *data.Images, n int) {
	for i := 0; i < n; i++ {
		net.LossAndGrad(ds.Input(i), ds.Label(i))
	}
	net.Step(0.05, n, 5)
}
