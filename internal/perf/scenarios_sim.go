package perf

import (
	"encoding/binary"
	"math"
	"math/rand"
	"time"

	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/simulation"
)

func nowNs() float64 { return float64(time.Now().UnixNano()) }

func init() {
	// Raw event-loop throughput: heap push/pop plus dispatch for a batch
	// of randomly-timed events, with the runtime counters every
	// experiment run attaches (sim.Instrument). The events/sec extra is
	// the headline figure for "how much simulated work per real second".
	Register(Scenario{
		Name:  "simulation/event-loop",
		Layer: LayerSimulation,
		Smoke: true,
		Setup: func() (Instance, error) {
			const events = 5000
			reg := obs.NewRegistry()
			var lastNs float64
			return Instance{
				Ops: events,
				Step: func() {
					start := nowNs()
					runSimWorkload(11, events, reg, nil)
					lastNs = nowNs() - start
				},
				Extras: func() map[string]float64 {
					ev := float64(reg.Counter(obs.MetricSimEvents).Value())
					out := map[string]float64{"events_dispatched": ev}
					if lastNs > 0 {
						out["events_per_sec"] = float64(events) / (lastNs / 1e9)
					}
					return out
				},
			}, nil
		},
	})

	// Geo-network byte accounting: model-sized sends between four regions
	// through the simulator, paying latency lookup, FIFO bookkeeping, the
	// transfer log append, and delivery scheduling per message.
	Register(Scenario{
		Name:  "geo/send-accounting",
		Layer: LayerGeo,
		Smoke: true,
		Setup: func() (Instance, error) {
			const sends = 200
			const msgBytes = 8 * modelDim // one flat model on the wire
			sim := simulation.New()
			net := geo.NewNetwork(sim, geo.Config{})
			endpoints := make([]geo.Endpoint, len(geo.Regions))
			for i, r := range geo.Regions {
				endpoints[i] = geo.Endpoint{ID: i, Region: r}
			}
			delivered := 0
			return Instance{
				Ops: sends,
				Step: func() {
					for i := 0; i < sends; i++ {
						src := endpoints[i%len(endpoints)]
						dst := endpoints[(i+1)%len(endpoints)]
						kind := geo.ClientServer
						if i%3 == 0 {
							kind = geo.ServerServer
						}
						net.Send(src, dst, msgBytes, kind, func() { delivered++ })
					}
					// Every delivery lands within a second of its send;
					// the growing horizon keeps virtual time finite and
					// monotone across repetitions.
					sim.Run(sim.Now() + 3600)
				},
				Extras: func() map[string]float64 {
					return map[string]float64{
						"delivered":       float64(delivered),
						"bytes_accounted": float64(net.AllBytes()),
					}
				},
			}, nil
		},
	})
}

// runSimWorkload executes the standard event-loop workload: n events at
// deterministic pseudo-random times, each appending its identity and
// execution time to schedule (when non-nil). reg, when non-nil, attaches
// the perf recorder's counters exactly as the event-loop scenario and
// every experiment run do (simulation.Sim.Instrument). It returns the
// final virtual time. The determinism guard compares schedule bytes
// between instrumented and bare runs.
func runSimWorkload(seed int64, n int, reg *obs.Registry, schedule *[]byte) float64 {
	sim := simulation.New()
	if reg != nil {
		sim.Instrument(reg.Counter(obs.MetricSimEvents), reg.Gauge(obs.MetricSimQueueDepth))
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(rng.Float64()*100, func() {
			if schedule != nil {
				var rec [16]byte
				binary.LittleEndian.PutUint64(rec[:8], uint64(i))
				binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(sim.Now()))
				*schedule = append(*schedule, rec[:]...)
			}
		})
	}
	// All events land within 100 virtual seconds; the finite horizon
	// keeps the returned time comparable across runs.
	return sim.Run(1e6)
}
