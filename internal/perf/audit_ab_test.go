package perf

import (
	"math/rand"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// aggCore builds the exact core the spyker/server-aggregate scenario
// measures, so the A/B assertions below gate the same hot path the
// benchmark history (BENCH_*.json) tracks.
func aggCore(seed int64) (*spyker.ServerCore, []float64) {
	cfg := spyker.Config{
		ID: 0, NumServers: 1, NumClients: 8,
		EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
		HInter: 1e18, HIntra: 1e18,
		ClientLR: 0.05,
	}
	rng := rand.New(rand.NewSource(seed))
	core := spyker.NewServerCore(cfg, randVec(rng, modelDim), false, nopOutbound{})
	return core, randVec(rng, modelDim)
}

// TestAuditDisarmedZeroAlloc pins the passivity contract's perf half:
// with no auditor armed, the client-update hot path stays at 0
// allocs/op — the audit extension costs exactly one nil check.
func TestAuditDisarmedZeroAlloc(t *testing.T) {
	core, update := aggCore(7)
	k := 0
	step := func() {
		core.HandleClientUpdate(k%8, update, core.Age())
		k++
	}
	// Warm up: the first merge may grow the clip-path scratch once.
	for i := 0; i < 16; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("disarmed server-aggregate: %.1f allocs/op, want 0", allocs)
	}
}

// TestAuditArmedZeroAllocSteadyState checks the armed path too: once
// every client's profile exists, auditing a merge reuses pooled scratch
// and allocates nothing.
func TestAuditArmedZeroAllocSteadyState(t *testing.T) {
	core, update := aggCore(7)
	core.ArmAudit(audit.NewRecorder(audit.Config{}, 0, obs.Nop{}))
	k := 0
	step := func() {
		core.HandleClientUpdate(k%8, update, core.Age())
		k++
	}
	// Warm up past profile creation and window fills for all 8 clients.
	for i := 0; i < 8*24; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("armed server-aggregate: %.1f allocs/op, want 0", allocs)
	}
}

// TestAuditArmedByteIdenticalModel is the passivity contract's
// correctness half: an armed core merges to the byte-identical model an
// unarmed core does, update for update.
func TestAuditArmedByteIdenticalModel(t *testing.T) {
	// A small dimension keeps 300 merges fast; the merge math is
	// dimension-uniform.
	const dim = 512
	cfg := spyker.Config{
		ID: 0, NumServers: 1, NumClients: 8,
		EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
		HInter: 1e18, HIntra: 1e18,
		ClientLR: 0.05,
	}
	mk := func() *spyker.ServerCore {
		r := rand.New(rand.NewSource(7))
		return spyker.NewServerCore(cfg, randVec(r, dim), false, nopOutbound{})
	}
	plain := mk()
	armed := mk()
	armed.ArmAudit(audit.NewRecorder(audit.Config{}, 0, obs.Nop{}))

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		u := randVec(rng, dim)
		plain.HandleClientUpdate(i%8, u, plain.Age())
		armed.HandleClientUpdate(i%8, u, armed.Age())
	}
	if plain.Age() != armed.Age() {
		t.Fatalf("ages diverged: plain %v armed %v", plain.Age(), armed.Age())
	}
	pw, aw := plain.Params(), armed.Params()
	for i := range pw {
		if pw[i] != aw[i] {
			t.Fatalf("model diverged at [%d]: plain %v armed %v", i, pw[i], aw[i])
		}
	}
}
