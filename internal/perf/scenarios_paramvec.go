package perf

import (
	"math/rand"

	"github.com/spyker-fl/spyker/internal/paramvec"
)

// modelDim matches the realistic flat-model size the aggregation
// benchmarks of PR 2 standardized on (~25k parameters, the MNIST CNN).
const modelDim = 25000

// The two fused kernels every aggregation rule reduces to: saxpy
// accumulation and the staleness-weighted convex merge. Both must stay
// allocation-free — the comparator's alloc gate protects that invariant.
func init() {
	Register(Scenario{
		Name:  "paramvec/axpy",
		Layer: LayerParamvec,
		Smoke: true,
		Setup: func() (Instance, error) {
			rng := rand.New(rand.NewSource(2))
			v := paramvec.Vec(randVec(rng, modelDim))
			x := randVec(rng, modelDim)
			return Instance{Step: func() { v.AxpyInto(1e-6, x) }}, nil
		},
	})
	Register(Scenario{
		Name:  "paramvec/weighted-merge",
		Layer: LayerParamvec,
		Smoke: true,
		Setup: func() (Instance, error) {
			rng := rand.New(rand.NewSource(3))
			v := paramvec.Vec(randVec(rng, modelDim))
			x := randVec(rng, modelDim)
			return Instance{Step: func() { v.WeightedMergeInto(1e-6, x) }}, nil
		},
	})
}
