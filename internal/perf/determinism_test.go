package perf

import (
	"bytes"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

// TestPerfRecorderDoesNotPerturbSimulation is the determinism guard for
// the perf suite (companion to obs's TestTracingDoesNotPerturbSimulation):
// attaching the recorder's counters to a simulation must leave the event
// schedule byte-identical — same events, same order, same virtual
// timestamps — to an uninstrumented run. If instrumentation ever steals a
// tiebreak or reorders the heap, the measured system is no longer the
// shipped system and every perf number is suspect.
func TestPerfRecorderDoesNotPerturbSimulation(t *testing.T) {
	const seed, n = 11, 5000

	var bare []byte
	tBare := runSimWorkload(seed, n, nil, &bare)

	reg := obs.NewRegistry()
	var instrumented []byte
	tInst := runSimWorkload(seed, n, reg, &instrumented)

	if tBare != tInst {
		t.Errorf("final virtual time diverged: bare %v, instrumented %v", tBare, tInst)
	}
	if len(bare) != 16*n {
		t.Fatalf("bare run recorded %d bytes, want %d", len(bare), 16*n)
	}
	if !bytes.Equal(bare, instrumented) {
		// Locate the first diverging event for the failure message.
		at := -1
		for i := 0; i < len(bare) && i < len(instrumented); i++ {
			if bare[i] != instrumented[i] {
				at = i / 16
				break
			}
		}
		t.Fatalf("event schedule diverged under instrumentation (first divergence at event record %d)", at)
	}

	// And the recorder must actually have observed the run — a guard that
	// passes because instrumentation silently no-opped proves nothing.
	if got := reg.Counter(obs.MetricSimEvents).Value(); got != int64(n) {
		t.Errorf("instrumented run counted %d events, want %d", got, n)
	}
}
