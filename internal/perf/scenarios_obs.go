package perf

import (
	"math/rand"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

func init() {
	// The cost of observing: emit a representative protocol-event mix
	// through the full instrumented-path sink (ring-buffer tracer + the
	// derived-metrics bridge), the exact composition every traced sim or
	// live run attaches. This bounds the overhead tracing adds per event
	// — the no-op path is already covered by BenchmarkObsOverhead's
	// end-to-end ratio.
	Register(Scenario{
		Name:  "obs/emit-traced",
		Layer: LayerObs,
		Smoke: true,
		Setup: func() (Instance, error) {
			const batch = 1000
			tracer := obs.NewTracer(4096)
			reg := obs.NewRegistry()
			sink := obs.Multi(tracer, obs.NewMetricsSink(reg))
			front := []int64{3, 1, 4, 1}
			events := make([]obs.Event, batch)
			for i := range events {
				t := float64(i) * 0.001
				switch i % 5 {
				case 0:
					events[i] = obs.Event{Time: t, Kind: obs.KindClientUpdate,
						Node: i % 4, Peer: i % 32, Age: float64(i), Stale: 1,
						UID: obs.UpdateUID(i%32, int64(i)), Front: front}
				case 1:
					events[i] = obs.Event{Time: t, Kind: obs.KindMsgSend,
						Node: i % 32, Peer: obs.ServerNode + i%4, Bytes: 8 * modelDim}
				case 2:
					events[i] = obs.Event{Time: t, Kind: obs.KindMsgRecv,
						Node: obs.ServerNode + i%4, Peer: i % 32, Bytes: 8 * modelDim}
				case 3:
					events[i] = obs.Event{Time: t, Kind: obs.KindServerAgg,
						Node: i % 4, Peer: (i + 1) % 4, Age: float64(i), Bid: i / 5,
						UID: obs.RoundUID(i%4, i/5), Front: front}
				default:
					events[i] = obs.Event{Time: t, Kind: obs.KindTokenPass,
						Node: i % 4, Peer: (i + 1) % 4, Bid: i / 5}
				}
			}
			return Instance{
				Ops: batch,
				Step: func() {
					for _, e := range events {
						sink.Emit(e)
					}
				},
				Extras: func() map[string]float64 {
					return map[string]float64{
						"events_emitted": float64(tracer.Total()),
						"ring_dropped":   float64(tracer.Dropped()),
					}
				},
			}, nil
		},
	})

	// The cost of auditing one merged client update at model scale: L2
	// norm, cosine against the reference direction, chunk signature and
	// layer-profile EMAs, windowed robust statistics, and the three
	// anomaly rules. This is the marginal per-update price a server pays
	// for arming the contribution audit plane (the disarmed price is one
	// nil check, gated by TestAuditDisarmedZeroAlloc).
	Register(Scenario{
		Name:  "obs/audit-stats",
		Layer: LayerObs,
		Smoke: true,
		Setup: func() (Instance, error) {
			const clients = 8
			rng := rand.New(rand.NewSource(11))
			rec := audit.NewRecorder(audit.Config{}, 0, obs.Nop{})
			deltas := make([][]float64, clients)
			for i := range deltas {
				deltas[i] = randVec(rng, modelDim)
			}
			model := randVec(rng, modelDim)
			k := 0
			return Instance{
				Step: func() {
					age := float64(k)
					rec.Observe(float64(k)*0.01, k%clients, deltas[k%clients], model, age, age+1)
					k++
				},
				Extras: func() map[string]float64 {
					return map[string]float64{
						"updates_audited": float64(rec.Updates()),
						"clients_flagged": float64(len(rec.Flagged())),
					}
				},
			}, nil
		},
	})
}
