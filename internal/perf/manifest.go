package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

// SchemaVersion identifies the manifest layout. Readers reject manifests
// with a different major schema so a comparator never silently diffs
// incompatible records.
const SchemaVersion = 1

// Result is the measured outcome of one scenario.
type Result struct {
	Name  string `json:"name"`
	Layer string `json:"layer"`
	Smoke bool   `json:"smoke,omitempty"`
	Reps  int    `json:"reps"`
	// Ops is the number of logical operations per timed repetition; the
	// per-op figures below are already divided by it.
	Ops int `json:"ops_per_rep"`
	// NsPerOp is the median per-rep duration over Ops — robust to
	// descheduling spikes on shared machines, which is what the comparator
	// gates across runs. StddevNs is the mean-based spread, the noise
	// indicator to read the comparison ratio against.
	NsPerOp     float64 `json:"ns_per_op"`
	StddevNs    float64 `json:"stddev_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Extras carries scenario-specific counters (events/sec, bytes
	// accounted, obs totals); they are informational, never gated.
	Extras map[string]float64 `json:"extras,omitempty"`
}

// StddevPct is the per-rep standard deviation as a percentage of the
// mean — the noise figure printed next to every timing.
func (r Result) StddevPct() float64 {
	if r.NsPerOp == 0 {
		return 0
	}
	return 100 * r.StddevNs / r.NsPerOp
}

// Manifest is one recorded perf-suite run: environment fingerprint plus
// per-scenario results. BENCH_<pr>.json at the repo root is the checked-in
// baseline of this shape.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	GitRev        string `json:"git_rev,omitempty"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	Scenarios []Result `json:"scenarios"`
}

// NewManifest creates an empty manifest stamped with the current
// environment. GitRev is left for the caller (the CLI shells out to git;
// the library does not).
func NewManifest() *Manifest {
	return &Manifest{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
	}
}

// Find returns the result with the given scenario name, or nil.
func (m *Manifest) Find(name string) *Result {
	for i := range m.Scenarios {
		if m.Scenarios[i].Name == name {
			return &m.Scenarios[i]
		}
	}
	return nil
}

// WriteFile marshals the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if m.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema version %d, this build reads %d",
			path, m.SchemaVersion, SchemaVersion)
	}
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("perf: %s contains no scenarios", path)
	}
	return &m, nil
}

// MarkdownTable renders the manifest as the table EXPERIMENTS.md embeds.
func (m *Manifest) MarkdownTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| scenario | layer | ns/op | ±%% | allocs/op | B/op | extras |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---|\n")
	for _, r := range m.Scenarios {
		fmt.Fprintf(&b, "| %s | %s | %s | %.1f | %.1f | %s | %s |\n",
			r.Name, r.Layer, groupDigits(r.NsPerOp), r.StddevPct(),
			r.AllocsPerOp, groupDigits(r.BytesPerOp), renderExtras(r.Extras))
	}
	return b.String()
}

func renderExtras(extras map[string]float64) string {
	if len(extras) == 0 {
		return ""
	}
	keys := make([]string, 0, len(extras))
	for k := range extras {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, trimFloat(extras[k])))
	}
	return strings.Join(parts, ", ")
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// groupDigits formats a non-negative value with thousands separators
// ("1234567.8" -> "1,234,568"), keeping big ns/op figures readable.
func groupDigits(v float64) string {
	s := fmt.Sprintf("%.0f", v)
	if len(s) <= 3 || strings.HasPrefix(s, "-") {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
