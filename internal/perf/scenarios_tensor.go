package perf

import (
	"math/rand"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// Dense-layer kernel triple on a 256x256 matrix: forward MatVec, backward
// MatVecT, and the AddOuter weight-gradient accumulation — the GEMM-shaped
// inner loops every Dense layer spends its time in.
func init() {
	Register(Scenario{
		Name:  "tensor/matvec-kernels",
		Layer: LayerTensor,
		Smoke: true,
		Setup: func() (Instance, error) {
			const rows, cols = 256, 256
			rng := rand.New(rand.NewSource(1))
			m := tensor.NewMatrix(rows, cols)
			m.XavierInit(rng, cols, rows)
			x := randVec(rng, cols)
			dy := randVec(rng, rows)
			fwd := make([]float64, rows)
			bwd := make([]float64, cols)
			return Instance{
				Step: func() {
					m.MatVec(fwd, x)
					m.MatVecT(bwd, dy)
					m.AddOuter(1e-3, dy, x)
				},
			}, nil
		},
	})
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
