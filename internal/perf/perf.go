// Package perf is the repository's performance-observability harness: a
// registry of micro- and macro-scenarios covering every hot layer of the
// stack (tensor kernels, paramvec fused kernels, nn training steps, the
// Spyker protocol core, the discrete-event simulator, the geo network,
// the live TCP runtime, and the obs subsystem itself), a common timed
// runner that records ns/op, allocs/op, bytes/op and scenario-specific
// counters, and a machine-readable manifest plus regression comparator.
//
// The point is to make performance a versioned, gated artifact: every
// hot-path win (e.g. the PR 2 flat-parameter plane taking ServerAggregate
// to 0 allocs/op) is recorded in a BENCH manifest that cmd/spyker-perf
// can diff against a fresh run, so the next refactor cannot silently
// regress it.
package perf

import (
	"fmt"
	"sort"
)

// Layer names used by the built-in scenarios. A scenario's Layer places
// it in the stack for reporting and for regex selection (-run matches
// layers as well as names).
const (
	LayerTensor     = "tensor"
	LayerParamvec   = "paramvec"
	LayerNN         = "nn"
	LayerSpyker     = "spyker"
	LayerSimulation = "simulation"
	LayerGeo        = "geo"
	LayerLive       = "live"
	LayerObs        = "obs"
	LayerLint       = "lint"
)

// Instance is one set-up scenario ready to be timed.
type Instance struct {
	// Step executes one timed repetition. Required.
	Step func()
	// Ops is the number of logical operations one Step performs (e.g. a
	// step that emits 1000 events has Ops = 1000); per-op figures divide
	// by it. Zero means 1.
	Ops int
	// Extras, when non-nil, is sampled once after the timed reps and its
	// values land in the result verbatim (e.g. derived throughput or obs
	// counter readings).
	Extras func() map[string]float64
	// Cleanup, when non-nil, tears the fixture down (closes sockets,
	// stops servers) after measurement.
	Cleanup func()
}

// Scenario is one registered performance scenario.
type Scenario struct {
	// Name uniquely identifies the scenario, conventionally "layer/what"
	// (e.g. "paramvec/axpy"). Matched by the runner's filter.
	Name string
	// Layer is the stack layer the scenario exercises (Layer* constants).
	Layer string
	// Smoke marks the scenario as part of the quick subset selected by
	// the filter "smoke" (CI runs it on every push). Smoke scenarios must
	// be fast and low-variance; the wall-clock-noisy ones (live TCP) stay
	// out.
	Smoke bool
	// Reps overrides the runner's timed repetition count (0 = default).
	Reps int
	// Warmup overrides the runner's warmup repetition count (0 = default).
	Warmup int
	// Setup builds the fixture and returns the instance to time.
	Setup func() (Instance, error)
}

var (
	registry []Scenario
	byName   = map[string]int{}
)

// Register adds a scenario to the global registry. It panics on a
// duplicate or unnamed scenario — both are programming errors in an
// init-time-populated registry.
func Register(s Scenario) {
	if s.Name == "" || s.Layer == "" {
		panic("perf: scenario needs a name and a layer")
	}
	if s.Setup == nil {
		panic(fmt.Sprintf("perf: scenario %q has no Setup", s.Name))
	}
	if _, dup := byName[s.Name]; dup {
		panic(fmt.Sprintf("perf: duplicate scenario %q", s.Name))
	}
	byName[s.Name] = len(registry)
	registry = append(registry, s)
}

// Scenarios returns the registered scenarios sorted by name.
func Scenarios() []Scenario {
	out := append([]Scenario(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Layers returns the distinct layers of the registered scenarios, sorted.
func Layers() []string {
	seen := map[string]bool{}
	for _, s := range registry {
		seen[s.Layer] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
