package perf

import (
	"fmt"
	"strings"
)

// DefaultThreshold is the relative ns/op slowdown beyond which a
// scenario counts as regressed (15%).
const DefaultThreshold = 0.15

// Delta is the old-vs-new comparison of one scenario present in both
// manifests.
type Delta struct {
	Name string
	Old  Result
	New  Result
	// TimeRatio is new/old ns per op (>1 = slower).
	TimeRatio float64
	// TimeRegressed is set when the slowdown exceeds the threshold.
	TimeRegressed bool
	// AllocRegressed is set when allocs/op grew beyond both the relative
	// threshold and half an allocation in absolute terms. The absolute
	// guard keeps counter jitter from flagging, while a genuine 0->1
	// allocs/op regression (losing an allocation-free hot path) always
	// fails.
	AllocRegressed bool
}

// Regressed reports whether the scenario regressed on any gated axis.
func (d Delta) Regressed() bool { return d.TimeRegressed || d.AllocRegressed }

// Report is the outcome of comparing a new manifest against a baseline.
type Report struct {
	Threshold float64
	Deltas    []Delta
	// MissingInNew lists baseline scenarios the new manifest does not
	// cover (informational: a smoke run compared against a full baseline
	// legitimately covers a subset).
	MissingInNew []string
	// NewScenarios lists scenarios with no baseline entry.
	NewScenarios []string
}

// Compare diffs fresh results against a baseline. Only scenarios present
// in both manifests are gated; coverage differences are reported but
// never fail the comparison. threshold <= 0 selects DefaultThreshold.
func Compare(baseline, fresh *Manifest, threshold float64) *Report {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &Report{Threshold: threshold}
	for _, old := range baseline.Scenarios {
		nu := fresh.Find(old.Name)
		if nu == nil {
			rep.MissingInNew = append(rep.MissingInNew, old.Name)
			continue
		}
		d := Delta{Name: old.Name, Old: old, New: *nu}
		if old.NsPerOp > 0 {
			d.TimeRatio = nu.NsPerOp / old.NsPerOp
			d.TimeRegressed = d.TimeRatio > 1+threshold
		}
		allocGuard := old.AllocsPerOp * threshold
		if allocGuard < 0.5 {
			allocGuard = 0.5
		}
		d.AllocRegressed = nu.AllocsPerOp > old.AllocsPerOp+allocGuard
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, nu := range fresh.Scenarios {
		if baseline.Find(nu.Name) == nil {
			rep.NewScenarios = append(rep.NewScenarios, nu.Name)
		}
	}
	return rep
}

// Regressed reports whether any gated scenario regressed.
func (r *Report) Regressed() bool {
	for _, d := range r.Deltas {
		if d.Regressed() {
			return true
		}
	}
	return false
}

// RegressedNames lists the regressed scenarios.
func (r *Report) RegressedNames() []string {
	var out []string
	for _, d := range r.Deltas {
		if d.Regressed() {
			out = append(out, d.Name)
		}
	}
	return out
}

// Render formats the per-scenario delta report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf comparison (threshold %.0f%% slower = regression)\n", 100*r.Threshold)
	fmt.Fprintf(&b, "%-28s %14s %14s %8s %10s  %s\n",
		"scenario", "old ns/op", "new ns/op", "ratio", "allocs", "verdict")
	for _, d := range r.Deltas {
		verdict := "ok"
		switch {
		case d.TimeRegressed && d.AllocRegressed:
			verdict = "REGRESSED (time, allocs)"
		case d.TimeRegressed:
			verdict = "REGRESSED (time)"
		case d.AllocRegressed:
			verdict = "REGRESSED (allocs)"
		case d.TimeRatio > 0 && d.TimeRatio < 1-r.Threshold:
			verdict = "improved"
		}
		fmt.Fprintf(&b, "%-28s %14.0f %14.0f %7.2fx %4.1f→%-4.1f  %s\n",
			d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.TimeRatio,
			d.Old.AllocsPerOp, d.New.AllocsPerOp, verdict)
	}
	for _, name := range r.MissingInNew {
		fmt.Fprintf(&b, "%-28s (not in new manifest — not gated)\n", name)
	}
	for _, name := range r.NewScenarios {
		fmt.Fprintf(&b, "%-28s (new scenario — no baseline)\n", name)
	}
	if names := r.RegressedNames(); len(names) > 0 {
		fmt.Fprintf(&b, "FAIL: %d scenario(s) regressed: %s\n",
			len(names), strings.Join(names, ", "))
	} else {
		fmt.Fprintf(&b, "PASS: no scenario regressed beyond %.0f%%\n", 100*r.Threshold)
	}
	return b.String()
}
