package perf

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestRegistryCoverage checks the registered suite meets the coverage
// contract: at least eight scenarios spanning the tensor, paramvec, nn,
// spyker, simulation, and live layers, every scenario well-formed, and a
// non-empty smoke subset.
func TestRegistryCoverage(t *testing.T) {
	scens := Scenarios()
	if len(scens) < 8 {
		t.Fatalf("registered %d scenarios, want >= 8", len(scens))
	}
	layers := map[string]bool{}
	smoke := 0
	for _, s := range scens {
		if s.Name == "" || s.Layer == "" || s.Setup == nil {
			t.Errorf("malformed scenario %+v", s)
		}
		if !strings.HasPrefix(s.Name, s.Layer+"/") {
			t.Errorf("scenario %q not namespaced under its layer %q", s.Name, s.Layer)
		}
		layers[s.Layer] = true
		if s.Smoke {
			smoke++
		}
	}
	for _, want := range []string{
		LayerTensor, LayerParamvec, LayerNN, LayerSpyker, LayerSimulation, LayerLive,
	} {
		if !layers[want] {
			t.Errorf("no scenario covers layer %q", want)
		}
	}
	if smoke == 0 {
		t.Error("smoke subset is empty; CI has nothing to gate on")
	}
	if !sort.SliceIsSorted(scens, func(i, j int) bool { return scens[i].Name < scens[j].Name }) {
		t.Error("Scenarios() is not sorted by name")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	for _, bad := range []Scenario{
		{Name: "", Layer: LayerTensor, Setup: func() (Instance, error) { return Instance{}, nil }},
		{Name: "tensor/matvec-kernels", Layer: LayerTensor, Setup: func() (Instance, error) { return Instance{}, nil }},
		{Name: "x/y", Layer: "x"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", bad.Name)
				}
			}()
			Register(bad)
		}()
	}
}

func TestMatches(t *testing.T) {
	s := Scenario{Name: "paramvec/axpy", Layer: LayerParamvec, Smoke: true}
	cases := []struct {
		pat  string
		want bool
	}{
		{"", true}, {"axpy", true}, {"paramvec", true}, {"smoke", true},
		{"^nn/", false}, {"live", false},
	}
	for _, c := range cases {
		var re *regexp.Regexp
		if c.pat != "" {
			re = regexp.MustCompile(c.pat)
		}
		if got := s.Matches(re); got != c.want {
			t.Errorf("Matches(%q) = %v, want %v", c.pat, got, c.want)
		}
	}
	// Non-smoke scenario must not match the smoke tag.
	ns := Scenario{Name: "live/update-roundtrip", Layer: LayerLive}
	if ns.Matches(regexp.MustCompile("smoke")) {
		t.Error("non-smoke scenario matched the smoke tag")
	}
}

// TestRunProducesManifest exercises the full measurement protocol on one
// cheap real scenario, including pprof emission.
func TestRunProducesManifest(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	m, err := Run(Options{
		Filter:   regexp.MustCompile(`^paramvec/axpy$`),
		Reps:     3,
		Warmup:   1,
		PprofDir: dir,
		Log:      &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(m.Scenarios))
	}
	r := m.Scenarios[0]
	if r.Name != "paramvec/axpy" || r.Reps != 3 || r.NsPerOp <= 0 {
		t.Errorf("unexpected result %+v", r)
	}
	if m.SchemaVersion != SchemaVersion || m.GoVersion == "" || m.NumCPU <= 0 {
		t.Errorf("manifest env fingerprint incomplete: %+v", m)
	}
	if !strings.Contains(log.String(), "paramvec/axpy") {
		t.Error("progress log missing scenario line")
	}
	for _, want := range []string{"paramvec-axpy.cpu.pprof", "paramvec-axpy.heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(dir, want)); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", want, err)
		}
	}
}

func TestRunNoMatchErrors(t *testing.T) {
	if _, err := Run(Options{Filter: regexp.MustCompile("no-such-scenario")}); err == nil {
		t.Fatal("Run with an unmatched filter succeeded")
	}
}

func TestMeanStddev(t *testing.T) {
	mean, std := meanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if want := math.Sqrt(32.0 / 7.0); math.Abs(std-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", std, want)
	}
	if m, s := meanStddev([]float64{3}); m != 3 || s != 0 {
		t.Errorf("single sample: mean %v std %v", m, s)
	}
}

// TestMedian: the gated figure must shrug off a single contention spike.
func TestMedian(t *testing.T) {
	if got := median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v, want 3", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
	// One 100x outlier rep leaves the median where the quiet reps sit.
	spiky := []float64{10, 11, 9, 1000, 10}
	if got := median(spiky); got != 10 {
		t.Errorf("spiky median = %v, want 10", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest()
	m.GitRev = "abc1234"
	m.Scenarios = []Result{{
		Name: "x/y", Layer: "x", Smoke: true, Reps: 5, Ops: 10,
		NsPerOp: 123.4, StddevNs: 5.6, AllocsPerOp: 0, BytesPerOp: 80,
		Extras: map[string]float64{"k": 1.5},
	}}
	p := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitRev != "abc1234" || len(got.Scenarios) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	r := got.Find("x/y")
	if r == nil || r.NsPerOp != 123.4 || r.Extras["k"] != 1.5 {
		t.Fatalf("Find: %+v", r)
	}
	if got.Find("missing") != nil {
		t.Error("Find returned a result for an unknown name")
	}
}

func TestReadManifestValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"garbage.json": "{not json",
		"schema.json":  `{"schema_version": 99, "scenarios": [{"name":"a"}]}`,
		"empty.json":   `{"schema_version": 1, "scenarios": []}`,
	}
	for name, body := range cases {
		if _, err := ReadManifest(write(name, body)); err == nil {
			t.Errorf("ReadManifest(%s) accepted invalid input", name)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := &Manifest{SchemaVersion: SchemaVersion, Scenarios: []Result{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "b", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "gone", NsPerOp: 10},
	}}
	fresh := &Manifest{SchemaVersion: SchemaVersion, Scenarios: []Result{
		{Name: "a", NsPerOp: 500, AllocsPerOp: 0},    // improved
		{Name: "b", NsPerOp: 1100, AllocsPerOp: 130}, // time ok at 15%, allocs +30% regressed
		{Name: "fresh-face", NsPerOp: 10},
	}}
	rep := Compare(base, fresh, 0) // 0 selects DefaultThreshold
	if rep.Threshold != DefaultThreshold {
		t.Errorf("threshold = %v", rep.Threshold)
	}
	if len(rep.Deltas) != 2 {
		t.Fatalf("gated %d scenarios, want 2", len(rep.Deltas))
	}
	a, b := rep.Deltas[0], rep.Deltas[1]
	if a.Regressed() || a.TimeRatio != 0.5 {
		t.Errorf("delta a: %+v", a)
	}
	if b.TimeRegressed || !b.AllocRegressed {
		t.Errorf("delta b: %+v", b)
	}
	if !rep.Regressed() || len(rep.RegressedNames()) != 1 || rep.RegressedNames()[0] != "b" {
		t.Errorf("report verdict wrong: %v", rep.RegressedNames())
	}
	if len(rep.MissingInNew) != 1 || rep.MissingInNew[0] != "gone" {
		t.Errorf("MissingInNew = %v", rep.MissingInNew)
	}
	if len(rep.NewScenarios) != 1 || rep.NewScenarios[0] != "fresh-face" {
		t.Errorf("NewScenarios = %v", rep.NewScenarios)
	}
	out := rep.Render()
	for _, want := range []string{"improved", "REGRESSED (allocs)", "FAIL: 1 scenario", "not gated"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestCompareAllocJitterTolerated: the absolute half-allocation guard
// keeps sub-allocation counter noise from gating, while 0 -> 1 fails.
func TestCompareAllocJitterTolerated(t *testing.T) {
	base := &Manifest{SchemaVersion: SchemaVersion,
		Scenarios: []Result{{Name: "a", NsPerOp: 100, AllocsPerOp: 0}}}
	jitter := &Manifest{SchemaVersion: SchemaVersion,
		Scenarios: []Result{{Name: "a", NsPerOp: 100, AllocsPerOp: 0.3}}}
	if Compare(base, jitter, 0).Regressed() {
		t.Error("0.3 allocs/op jitter flagged as regression")
	}
	leak := &Manifest{SchemaVersion: SchemaVersion,
		Scenarios: []Result{{Name: "a", NsPerOp: 100, AllocsPerOp: 1}}}
	if !Compare(base, leak, 0).Regressed() {
		t.Error("0 -> 1 allocs/op not flagged")
	}
}

func TestMarkdownTable(t *testing.T) {
	m := &Manifest{SchemaVersion: SchemaVersion, Scenarios: []Result{{
		Name: "spyker/server-aggregate", Layer: "spyker",
		NsPerOp: 1234567.8, AllocsPerOp: 0, BytesPerOp: 12,
		Extras: map[string]float64{"rounds": 20, "ratio": 1.25},
	}}}
	out := m.MarkdownTable()
	for _, want := range []string{
		"| spyker/server-aggregate | spyker | 1,234,568 |",
		"ratio=1.25, rounds=20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestGroupDigits(t *testing.T) {
	cases := map[float64]string{0: "0", 999: "999", 1000: "1,000", 1234567.8: "1,234,568"}
	for in, want := range cases {
		if got := groupDigits(in); got != want {
			t.Errorf("groupDigits(%v) = %q, want %q", in, got, want)
		}
	}
}
