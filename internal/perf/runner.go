package perf

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// Options parameterize a suite run.
type Options struct {
	// Filter selects scenarios: it is matched against each scenario's
	// name, its layer, and the literal tag "smoke" for smoke scenarios.
	// Nil runs everything.
	Filter *regexp.Regexp
	// Reps is the default number of timed repetitions per scenario
	// (0 = 20). Per-rep durations feed the mean and stddev.
	Reps int
	// Warmup is the default number of untimed repetitions executed before
	// measurement (0 = 2); they populate caches, pools and JIT-warm the
	// branch predictors so the timed reps measure steady state.
	Warmup int
	// PprofDir, when set, receives one <scenario>.cpu.pprof profile
	// covering the timed loop and one <scenario>.heap.pprof written after
	// it, per scenario (slashes in names become dashes).
	PprofDir string
	// Log receives one progress line per scenario (nil = silent).
	Log io.Writer
}

// Matches reports whether the scenario is selected by the filter: the
// pattern is tried against the name, the layer, and the "smoke" tag.
func (s Scenario) Matches(filter *regexp.Regexp) bool {
	if filter == nil {
		return true
	}
	if filter.MatchString(s.Name) || filter.MatchString(s.Layer) {
		return true
	}
	return s.Smoke && filter.MatchString("smoke")
}

// Run executes every selected scenario under the common measurement
// protocol and assembles the manifest. Scenario setup errors abort the
// run — a perf suite with silently missing scenarios would compare clean
// against a baseline that covers more.
func Run(opts Options) (*Manifest, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 20
	}
	warmup := opts.Warmup
	if warmup <= 0 {
		warmup = 2
	}
	if opts.PprofDir != "" {
		if err := os.MkdirAll(opts.PprofDir, 0o755); err != nil {
			return nil, fmt.Errorf("perf: pprof dir: %w", err)
		}
	}

	m := NewManifest()
	for _, s := range Scenarios() {
		if !s.Matches(opts.Filter) {
			continue
		}
		r, err := runScenario(s, reps, warmup, opts.PprofDir)
		if err != nil {
			return nil, fmt.Errorf("perf: scenario %s: %w", s.Name, err)
		}
		m.Scenarios = append(m.Scenarios, r)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-28s %12.0f ns/op  ±%6.1f%%  %8.1f allocs/op  %10.0f B/op\n",
				r.Name, r.NsPerOp, r.StddevPct(), r.AllocsPerOp, r.BytesPerOp)
		}
	}
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("perf: no scenario matches the filter")
	}
	return m, nil
}

// runScenario applies the measurement protocol to one scenario: setup,
// warmup, GC fence, allocation-counter snapshot, per-rep wall timing,
// extras sampling, optional profiles, cleanup.
func runScenario(s Scenario, reps, warmup int, pprofDir string) (Result, error) {
	inst, err := s.Setup()
	if err != nil {
		return Result{}, err
	}
	if inst.Step == nil {
		return Result{}, fmt.Errorf("instance has no Step")
	}
	if inst.Cleanup != nil {
		defer inst.Cleanup()
	}
	if s.Reps > 0 {
		reps = s.Reps
	}
	if s.Warmup > 0 {
		warmup = s.Warmup
	}
	ops := inst.Ops
	if ops <= 0 {
		ops = 1
	}

	for i := 0; i < warmup; i++ {
		inst.Step()
	}

	var cpuFile *os.File
	if pprofDir != "" {
		f, err := os.Create(profilePath(pprofDir, s.Name, "cpu"))
		if err != nil {
			return Result{}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return Result{}, err
		}
		cpuFile = f
	}

	// The GC fence plus monotonic Mallocs/TotalAlloc deltas make the
	// allocation figures independent of collection timing; the two
	// ReadMemStats stop-the-worlds sit outside the timed region.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	samples := make([]float64, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		inst.Step()
		samples[i] = float64(time.Since(start).Nanoseconds())
	}

	runtime.ReadMemStats(&after)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		_ = cpuFile.Close()
	}
	if pprofDir != "" {
		if err := writeHeapProfile(profilePath(pprofDir, s.Name, "heap")); err != nil {
			return Result{}, err
		}
	}

	totalOps := float64(reps * ops)
	// NsPerOp is the per-rep median: one descheduling spike in a rep
	// shifts a mean by its full cost but leaves the median untouched, and
	// the comparator gates on this figure across runs on shared machines.
	// The mean-based stddev is kept as the noise indicator.
	_, std := meanStddev(samples)
	r := Result{
		Name:        s.Name,
		Layer:       s.Layer,
		Smoke:       s.Smoke,
		Reps:        reps,
		Ops:         ops,
		NsPerOp:     median(samples) / float64(ops),
		StddevNs:    std / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / totalOps,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / totalOps,
	}
	if inst.Extras != nil {
		r.Extras = inst.Extras()
	}
	return r, nil
}

func meanStddev(samples []float64) (mean, std float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	if len(samples) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(samples)-1))
}

func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

func profilePath(dir, scenario, kind string) string {
	name := strings.ReplaceAll(scenario, "/", "-")
	return filepath.Join(dir, name+"."+kind+".pprof")
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // flush garbage so the profile shows live allocations
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
