package perf

import (
	"errors"
	"os"
	"path/filepath"

	"github.com/spyker-fl/spyker/internal/lint"
)

func init() {
	// The cost of enforcement: one full spyker-lint pass (all 7
	// analyzers, CFG + dataflow included) over the whole repository —
	// the exact work the CI lint step pays on every push, which that
	// step guards with a 30s timeout. Tracking it in BENCH manifests
	// catches a CFG-engine regression (say, a fixpoint that stops
	// converging early) before it turns the lint step into the slowest
	// thing in CI. The escape gate is off: it shells out to the
	// compiler, which would measure `go tool compile`, not the engine.
	// Not in the smoke subset — parsing and type-checking the tree is
	// seconds, not microseconds.
	Register(Scenario{
		Name:   "lint/analyze-tree",
		Layer:  LayerLint,
		Smoke:  false,
		Reps:   3,
		Warmup: 1,
		Setup: func() (Instance, error) {
			root, err := moduleRootDir()
			if err != nil {
				return Instance{}, err
			}
			cfg := lint.DefaultConfig()
			cfg.EscapeGate = false
			var findings int
			return Instance{
				Step: func() {
					diags, err := lint.Run(cfg, root, nil, "./...")
					if err != nil {
						panic(err)
					}
					findings = len(diags)
				},
				Extras: func() map[string]float64 {
					return map[string]float64{"findings": float64(findings)}
				},
			}, nil
		},
	})
}

// moduleRootDir walks up from the working directory to go.mod, so the
// scenario lints the repository wherever the runner was invoked from.
func moduleRootDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("perf: go.mod not found above working directory")
		}
		dir = parent
	}
}
