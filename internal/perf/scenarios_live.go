package perf

import (
	"fmt"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/spyker"
	"github.com/spyker-fl/spyker/internal/transport"
)

func init() {
	// Full client-update round trip over real TCP: gob-encode a
	// model-sized update, cross the loopback socket, dispatch through the
	// server's read loop and mutex-serialized core, aggregate, and
	// receive the pooled model reply. This is the live runtime's
	// end-to-end hot path; per-op allocations are process-wide (they
	// include the server goroutines serving the request).
	//
	// Deliberately not in the smoke subset: loopback TCP round trips are
	// the most scheduler-sensitive timing in the suite, and the CI gate
	// wants low-variance scenarios.
	Register(Scenario{
		Name:  "live/update-roundtrip",
		Layer: LayerLive,
		Setup: func() (Instance, error) {
			cfg := spyker.Config{
				ID: 0, NumServers: 1, NumClients: 1,
				EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
				HInter: 1e18, HIntra: 1e18,
				ClientLR: 0.05,
			}
			rng := rand.New(rand.NewSource(9))
			initial := randVec(rng, modelDim)
			srv, err := live.NewServer(0, "127.0.0.1:0", cfg, initial, true)
			if err != nil {
				return Instance{}, err
			}
			conn, err := transport.Dial(srv.Addr())
			if err != nil {
				srv.Close()
				return Instance{}, err
			}
			cleanup := func() {
				_ = conn.Close()
				srv.Close()
			}
			if err := conn.Send(&transport.Msg{
				Kind: transport.KindHello, From: 0, Bid: live.RoleClient,
			}); err != nil {
				cleanup()
				return Instance{}, err
			}
			// Registration hands back the initial model; consume it so
			// the timed loop starts from a quiet connection.
			var reply transport.Msg
			if err := conn.RecvInto(&reply); err != nil {
				cleanup()
				return Instance{}, err
			}
			if reply.Kind != transport.KindModelReply {
				cleanup()
				return Instance{}, fmt.Errorf("handshake reply kind %v", reply.Kind)
			}

			update := randVec(rng, modelDim)
			age := 0.0
			rtts := 0
			return Instance{
				Step: func() {
					if err := conn.Send(&transport.Msg{
						Kind: transport.KindClientUpdate, From: 0,
						Params: update, Age: age,
					}); err != nil {
						panic(fmt.Sprintf("perf: live send: %v", err))
					}
					if err := conn.RecvInto(&reply); err != nil {
						panic(fmt.Sprintf("perf: live recv: %v", err))
					}
					age = reply.Age
					rtts++
				},
				Extras: func() map[string]float64 {
					st := conn.Stats()
					return map[string]float64{
						"round_trips": float64(rtts),
						"wire_bytes_per_rtt": float64(st.BytesSent+st.BytesRecv) /
							float64(st.FramesSent),
					}
				},
				Cleanup: cleanup,
			}, nil
		},
	})
}
