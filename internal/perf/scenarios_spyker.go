package perf

import (
	"fmt"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// nopOutbound swallows everything a ServerCore emits, so the aggregation
// scenario measures the protocol math itself, not a transport.
type nopOutbound struct{}

func (nopOutbound) ReplyClient(int, []float64, float64, float64)                     {}
func (nopOutbound) BroadcastModel([]float64, float64, int, []int64, ring.Membership) {}
func (nopOutbound) BroadcastAge(float64, ring.Membership)                            {}
func (nopOutbound) SendToken(spyker.Token, int)                                      {}

func init() {
	// The client-update hot path: staleness-weighted merge plus reply.
	// PR 2 took this to 0 allocs/op; the comparator's alloc gate keeps it
	// there.
	Register(Scenario{
		Name:  "spyker/server-aggregate",
		Layer: LayerSpyker,
		Smoke: true,
		Setup: func() (Instance, error) {
			cfg := spyker.Config{
				ID: 0, NumServers: 1, NumClients: 8,
				EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
				HInter: 1e18, HIntra: 1e18, // never trigger a sync mid-measurement
				ClientLR: 0.05,
			}
			rng := rand.New(rand.NewSource(7))
			core := spyker.NewServerCore(cfg, randVec(rng, modelDim), false, nopOutbound{})
			update := randVec(rng, modelDim)
			k := 0
			return Instance{
				Step: func() {
					core.HandleClientUpdate(k%8, update, core.Age())
					k++
				},
			}, nil
		},
	})

	// One full token-triggered synchronization round (Alg. 2) across four
	// servers wired memory-to-memory: trigger at the token holder, N
	// model broadcasts, N*(N-1) sigmoid merges, token forwarded around
	// the ring. This is the protocol's collective hot path; the transport
	// cost is measured separately by geo/ and live/ scenarios.
	Register(Scenario{
		Name:  "spyker/token-sync-round",
		Layer: LayerSpyker,
		Smoke: true,
		Setup: func() (Instance, error) {
			const n = 4
			const hInter = 10.0
			mail := &ringMail{}
			rng := rand.New(rand.NewSource(8))
			for i := 0; i < n; i++ {
				cfg := spyker.Config{
					ID: i, NumServers: n, NumClients: 8,
					EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
					HInter: hInter, HIntra: 1e18,
					ClientLR: 0.05,
				}
				mail.cores = append(mail.cores,
					spyker.NewServerCore(cfg, randVec(rng, modelDim), i == 0, &mailOutbound{ring: mail, id: i}))
			}
			rounds := 0
			return Instance{
				Step: func() {
					holder := mail.holder()
					// Feigning a drifted peer age trips the h_inter
					// trigger; the round's own direct reports overwrite it
					// with the true ages, so exactly one round runs.
					peer := (holderID(mail) + 1) % n
					holder.HandleAge(peer, holder.Age()+hInter+1)
					mail.pump()
					rounds++
				},
				Extras: func() map[string]float64 {
					syncs := 0
					for _, c := range mail.cores {
						syncs += c.SyncsTriggered()
					}
					return map[string]float64{
						"rounds":           float64(rounds),
						"syncs_triggered":  float64(syncs),
						"merges_per_round": float64(n * (n - 1)),
					}
				},
			}, nil
		},
	})
}

// ringMail wires N ServerCores memory-to-memory with a FIFO mailbox, so a
// synchronization round executes its message cascade in delivery order
// without a transport (and without unbounded recursion).
type ringMail struct {
	cores []*spyker.ServerCore
	queue []func()
}

func (r *ringMail) holder() *spyker.ServerCore {
	return r.cores[holderID(r)]
}

func holderID(r *ringMail) int {
	for i, c := range r.cores {
		if c.HasToken() {
			return i
		}
	}
	panic("perf: no core holds the token")
}

func (r *ringMail) pump() {
	for len(r.queue) > 0 {
		fn := r.queue[0]
		r.queue = r.queue[1:]
		fn()
	}
}

// mailOutbound implements spyker.Outbound by enqueueing deliveries into
// the shared mailbox. Params and frontier are borrows of the sender's
// live state (Outbound contract), so they are copied at send time exactly
// like a real transport would. The membership passes through uncopied,
// like the DES does: ring.Membership slices are immutable by contract.
type mailOutbound struct {
	ring *ringMail
	id   int
}

var _ spyker.Outbound = (*mailOutbound)(nil)

func (o *mailOutbound) ReplyClient(int, []float64, float64, float64) {}

func (o *mailOutbound) BroadcastModel(params []float64, age float64, bid int, front []int64, mem ring.Membership) {
	p := append([]float64(nil), params...)
	f := append([]int64(nil), front...)
	from := o.id
	for j := range o.ring.cores {
		if j == from {
			continue
		}
		j := j
		o.ring.queue = append(o.ring.queue, func() {
			o.ring.cores[j].HandleServerModelTraced(from, p, age, bid, f, mem)
		})
	}
}

func (o *mailOutbound) BroadcastAge(age float64, mem ring.Membership) {
	from := o.id
	for j := range o.ring.cores {
		if j == from {
			continue
		}
		j := j
		o.ring.queue = append(o.ring.queue, func() {
			o.ring.cores[j].HandleAgeTagged(from, age, mem)
		})
	}
}

func (o *mailOutbound) SendToken(t spyker.Token, next int) {
	if next < 0 || next >= len(o.ring.cores) {
		panic(fmt.Sprintf("perf: token to unknown server %d", next))
	}
	o.ring.queue = append(o.ring.queue, func() {
		o.ring.cores[next].HandleToken(t)
	})
}
