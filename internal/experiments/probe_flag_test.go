package experiments

import "flag"

// probeFlag gates the manual calibration probes in this package.
var probeFlag bool

func init() {
	flag.BoolVar(&probeFlag, "decayprobe", false, "run manual calibration probes")
}
