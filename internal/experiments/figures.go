package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/metrics"
	"github.com/spyker-fl/spyker/internal/plot"
)

// Comparison holds the five-algorithm convergence comparison behind
// Figs. 3-8: one trace per algorithm on one task.
type Comparison struct {
	Task    Task
	Results []*Result
}

// RunComparison reproduces the accuracy/perplexity-versus-time-and-updates
// figures (Fig. 3/4 for WikiText, 5/6 for MNIST, 7/8 for CIFAR). The
// deployment is the paper's: 100 clients evenly spread over 4 servers in
// the four AWS regions, non-IID data. scale in (0,1] shrinks the client
// count and horizon proportionally for quick runs; pass 1 for the full
// deployment.
func RunComparison(task Task, scale float64, seed int64) (*Comparison, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	setup := Setup{
		Task:         task,
		NumServers:   4,
		NumClients:   clients,
		NonIIDLabels: 2,
		Seed:         seed,
		Horizon:      60,
		MaxUpdates:   int(12000 * scale),
		EvalEvery:    25,
	}
	results, err := RunAll(ComparisonAlgorithms, setup)
	if err != nil {
		return nil, err
	}
	return &Comparison{Task: task, Results: results}, nil
}

// Render prints the traces as aligned series, one block per algorithm:
// the same data the paper plots.
func (c *Comparison) Render() string {
	var b strings.Builder
	perplexity := c.Task == TaskWiki
	metricName := "acc%"
	if perplexity {
		metricName = "ppl"
	}
	fmt.Fprintf(&b, "=== %s: convergence vs time and vs #updates (%s) ===\n",
		c.Task, metricName)
	for _, r := range c.Results {
		fmt.Fprintf(&b, "\n-- %s --\n%10s %9s %9s\n", r.Algorithm, "time(s)", "updates", metricName)
		for _, p := range thinTrace(r.Trace, 12) {
			if perplexity {
				fmt.Fprintf(&b, "%10.2f %9d %9.2f\n", p.Time, p.Updates, p.Perplexity())
			} else {
				fmt.Fprintf(&b, "%10.2f %9d %8.1f%%\n", p.Time, p.Updates, 100*p.Acc)
			}
		}
		final := r.Trace.Final()
		if perplexity {
			fmt.Fprintf(&b, "best ppl %.2f after %.1fs / %d updates\n",
				r.Trace.BestPerplexity(), final.Time, final.Updates)
		} else {
			fmt.Fprintf(&b, "best acc %.1f%% after %.1fs / %d updates\n",
				100*r.Trace.BestAcc(), final.Time, final.Updates)
		}
	}
	b.WriteString("\n" + c.Summary())
	b.WriteString("\n" + c.Plot())
	return b.String()
}

// Plot draws the convergence-vs-time curves as an ASCII chart — the
// terminal rendition of Figs. 3, 5 and 7.
func (c *Comparison) Plot() string {
	perplexity := c.Task == TaskWiki
	series := make([]plot.Series, 0, len(c.Results))
	for _, r := range c.Results {
		s := plot.Series{Name: r.Algorithm}
		for _, p := range r.Trace {
			s.X = append(s.X, p.Time)
			if perplexity {
				s.Y = append(s.Y, p.Perplexity())
			} else {
				s.Y = append(s.Y, 100*p.Acc)
			}
		}
		series = append(series, s)
	}
	yLabel := "accuracy %"
	if perplexity {
		yLabel = "perplexity"
	}
	return plot.Chart{
		Title:  fmt.Sprintf("%s: convergence vs virtual time", c.Task),
		XLabel: "seconds",
		YLabel: yLabel,
	}.Render(series)
}

// Summary reports, per algorithm, the time to reach a common milestone —
// the "who wins in wall-clock time" headline of Figs. 3, 5 and 7.
func (c *Comparison) Summary() string {
	var b strings.Builder
	if c.Task == TaskWiki {
		target := c.commonPerplexity()
		fmt.Fprintf(&b, "time to reach perplexity <= %.2f:\n", target)
		for _, r := range c.Results {
			if tt, ok := r.Trace.TimeToPerplexity(target); ok {
				fmt.Fprintf(&b, "  %-14s %8.2fs\n", r.Algorithm, tt)
			} else {
				fmt.Fprintf(&b, "  %-14s  (not reached)\n", r.Algorithm)
			}
		}
		return b.String()
	}
	target := c.commonAccuracy()
	fmt.Fprintf(&b, "time to reach accuracy >= %.1f%% (auc = time-normalized area under the curve,\ntau = time to 63%% of final accuracy):\n", 100*target)
	for _, r := range c.Results {
		auc := metrics.AUC(r.Trace)
		tau := metrics.ConvergenceRate(r.Trace)
		if tt, ok := r.Trace.TimeToAcc(target); ok {
			fmt.Fprintf(&b, "  %-14s %8.2fs   auc=%.3f tau=%.1fs\n", r.Algorithm, tt, auc, tau)
		} else {
			fmt.Fprintf(&b, "  %-14s  (not reached)  auc=%.3f tau=%.1fs\n", r.Algorithm, auc, tau)
		}
	}
	return b.String()
}

// commonAccuracy picks the highest accuracy every algorithm reached, so
// the time-to-target comparison is well defined for all of them.
func (c *Comparison) commonAccuracy() float64 {
	best := 1.0
	for _, r := range c.Results {
		if a := r.Trace.BestAcc(); a < best {
			best = a
		}
	}
	// Compare slightly below the weakest best so every curve crosses it.
	return best * 0.98
}

func (c *Comparison) commonPerplexity() float64 {
	worst := 0.0
	for _, r := range c.Results {
		if p := r.Trace.BestPerplexity(); p > worst {
			worst = p
		}
	}
	return worst * 1.02
}

// traceSeries converts an accuracy trace into a plottable series.
func traceSeries(name string, tr metrics.Trace) plot.Series {
	s := plot.Series{Name: name}
	for _, p := range tr {
		s.X = append(s.X, p.Time)
		s.Y = append(s.Y, 100*p.Acc)
	}
	return s
}

// thinTrace subsamples a trace to at most n evenly spaced points (always
// keeping the last).
func thinTrace(t metrics.Trace, n int) metrics.Trace {
	if len(t) <= n || n < 2 {
		return t
	}
	out := make(metrics.Trace, 0, n)
	step := float64(len(t)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, t[int(float64(i)*step)])
	}
	return out
}

// QueueStudy is the data behind Fig. 9: queue-length traces of Spyker's
// four servers versus FedAsync's single server under 200 clients with
// strongly heterogeneous training delays (N(150ms, 60ms)).
type QueueStudy struct {
	Spyker   *Result
	FedAsync *Result
	Clients  int
}

// RunQueueStudy reproduces Fig. 9. scale shrinks the client count.
func RunQueueStudy(scale float64, seed int64) (*QueueStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(200 * scale)
	if clients < 8 {
		clients = 8
	}
	setup := Setup{
		Task:           TaskMNIST,
		NumServers:     4,
		NumClients:     clients,
		NonIIDLabels:   2,
		TrainDelayMean: 0.150,
		TrainDelayStd:  0.060,
		Seed:           seed,
		Horizon:        10,
		EvalEvery:      1000, // evaluation is irrelevant here; keep it cheap
	}
	sp, err := Run("spyker", setup)
	if err != nil {
		return nil, err
	}
	fa, err := Run("fedasync", setup)
	if err != nil {
		return nil, err
	}
	return &QueueStudy{Spyker: sp, FedAsync: fa, Clients: clients}, nil
}

// Render prints max and time-averaged queue lengths plus a coarse
// timeline, mirroring what Fig. 9 shows: FedAsync's single queue grows
// far beyond any of Spyker's four.
func (q *QueueStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Fig. 9: update queueing, %d clients ===\n", q.Clients)
	fmt.Fprintf(&b, "%-22s %8s %10s\n", "server", "max", "mean(t>1s)")
	for s := 0; s < 4; s++ {
		tr := q.Spyker.Queues[s]
		fmt.Fprintf(&b, "Spyker server %-8d %8d %10.2f\n", s, tr.Max(), tr.MeanAbove(1))
	}
	fa := q.FedAsync.Queues[0]
	fmt.Fprintf(&b, "FedAsync (single)      %8d %10.2f\n", fa.Max(), fa.MeanAbove(1))
	series := []plot.Series{
		queueSeries("FedAsync", q.FedAsync.Queues[0]),
		queueSeries("Spyker s0", q.Spyker.Queues[0]),
	}
	b.WriteString("\n" + plot.Chart{XLabel: "seconds", YLabel: "queued updates"}.Render(series))
	return b.String()
}

// queueSeries converts a queue trace into a plottable series, thinned to
// keep the chart legible.
func queueSeries(name string, tr metrics.QueueTrace) plot.Series {
	s := plot.Series{Name: name}
	step := len(tr)/256 + 1
	for i := 0; i < len(tr); i += step {
		s.X = append(s.X, tr[i].Time)
		s.Y = append(s.Y, float64(tr[i].Length))
	}
	return s
}

// MaxSpykerQueue returns the worst queue length across Spyker's servers.
func (q *QueueStudy) MaxSpykerQueue() int {
	best := 0
	for _, tr := range q.Spyker.Queues {
		if m := tr.Max(); m > best {
			best = m
		}
	}
	return best
}

// KDEStudy is the data behind Fig. 10: the distribution of per-client
// update counts for Spyker and FedAsync.
type KDEStudy struct {
	SpykerCounts   []float64
	FedAsyncCounts []float64
}

// RunKDEStudy reproduces Fig. 10 with the same deployment as Fig. 9.
func RunKDEStudy(scale float64, seed int64) (*KDEStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(200 * scale)
	if clients < 8 {
		clients = 8
	}
	setup := Setup{
		Task:           TaskMNIST,
		NumServers:     4,
		NumClients:     clients,
		NonIIDLabels:   2,
		TrainDelayMean: 0.150,
		TrainDelayStd:  0.060,
		Seed:           seed,
		Horizon:        30,
		EvalEvery:      1000,
	}
	sp, err := Run("spyker", setup)
	if err != nil {
		return nil, err
	}
	fa, err := Run("fedasync", setup)
	if err != nil {
		return nil, err
	}
	return &KDEStudy{
		SpykerCounts:   sp.ClientUpdateCounts,
		FedAsyncCounts: fa.ClientUpdateCounts,
	}, nil
}

// Render prints summary statistics and KDE peaks of both distributions.
func (k *KDEStudy) Render() string {
	var b strings.Builder
	b.WriteString("=== Fig. 10: per-client update-count distribution ===\n")
	for _, row := range []struct {
		name    string
		samples []float64
	}{{"Spyker", k.SpykerCounts}, {"FedAsync", k.FedAsyncCounts}} {
		grid, density := metrics.KDE(row.samples, 0, 128)
		peaks := metrics.Peaks(grid, density, 0.15)
		fmt.Fprintf(&b, "%-9s median=%.0f p10=%.0f p90=%.0f peaks at ~%s\n",
			row.name,
			metrics.Quantile(row.samples, 0.5),
			metrics.Quantile(row.samples, 0.1),
			metrics.Quantile(row.samples, 0.9),
			fmtPeaks(peaks))
	}
	return b.String()
}

func fmtPeaks(p []float64) string {
	if len(p) == 0 {
		return "(none)"
	}
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%.0f", v)
	}
	return strings.Join(parts, ", ")
}

// DecayStudy is the data behind Fig. 11: Spyker with and without the
// learning-rate decay on non-IID MNIST.
type DecayStudy struct {
	WithDecay    *Result
	WithoutDecay *Result
	Target       float64
}

// RunDecayStudy reproduces Fig. 11 (4 servers, 100 clients, 25 per
// server, non-IID).
func RunDecayStudy(scale float64, seed int64) (*DecayStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	setup := Setup{
		// The paper runs this ablation on MNIST; our synthetic MNIST
		// stand-in is easy enough that both variants converge before the
		// fast-client bias binds, so the ablation uses the harder
		// CIFAR-like task where the mechanism is visible (DESIGN.md
		// deviation 7).
		Task:            TaskCIFAR,
		NumServers:      4,
		NumClients:      clients,
		NonIIDLabels:    2,
		TrainDelayMean:  0.150,
		TrainDelayStd:   0.0075,
		CorrelatedSpeed: true, // fast clients hold a biased label subset
		Seed:            seed,
		Horizon:         60,
		EvalEvery:       100,
	}
	with, err := Run("spyker", setup)
	if err != nil {
		return nil, err
	}
	without, err := Run("spyker-nodecay", setup)
	if err != nil {
		return nil, err
	}
	return &DecayStudy{WithDecay: with, WithoutDecay: without, Target: 0.85}, nil
}

// Render prints both curves and the time each takes to the common target.
func (d *DecayStudy) Render() string {
	var b strings.Builder
	b.WriteString("=== Fig. 11: learning-rate decay ablation (non-IID CIFAR-like) ===\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "time(s)", "with decay", "without decay")
	wt := thinTrace(d.WithDecay.Trace, 10)
	wo := thinTrace(d.WithoutDecay.Trace, 10)
	for i := 0; i < len(wt) && i < len(wo); i++ {
		fmt.Fprintf(&b, "%10.2f %13.1f%% %13.1f%%\n", wt[i].Time, 100*wt[i].Acc, 100*wo[i].Acc)
	}
	fmt.Fprintf(&b, "best: with=%.1f%%  without=%.1f%%\n",
		100*d.WithDecay.Trace.BestAcc(), 100*d.WithoutDecay.Trace.BestAcc())
	series := []plot.Series{traceSeries("with decay", d.WithDecay.Trace), traceSeries("without decay", d.WithoutDecay.Trace)}
	b.WriteString("\n" + plot.Chart{XLabel: "seconds", YLabel: "accuracy %"}.Render(series))
	return b.String()
}

// BandwidthStudy is the data behind Fig. 12: bytes transferred by every
// algorithm over a fixed virtual window.
type BandwidthStudy struct {
	WindowSeconds float64
	Rows          []BandwidthRow
}

// BandwidthRow is one algorithm's traffic split. Series holds cumulative
// total bytes sampled at ten evenly spaced times across the window — the
// over-time curve the paper's Fig. 12 plots.
type BandwidthRow struct {
	Algorithm         string
	ClientServerBytes int
	ServerServerBytes int
	Series            []int
}

// Total returns the row's combined byte count.
func (r BandwidthRow) Total() int { return r.ClientServerBytes + r.ServerServerBytes }

// RunBandwidthStudy reproduces Fig. 12: MNIST, 4 servers, 100 clients,
// traffic measured over a 110-virtual-second window.
func RunBandwidthStudy(scale float64, seed int64) (*BandwidthStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	window := 110 * scale
	setup := Setup{
		Task:         TaskMNIST,
		NumServers:   4,
		NumClients:   clients,
		NonIIDLabels: 2,
		Seed:         seed,
		Horizon:      window,
		EvalEvery:    1000,
	}
	study := &BandwidthStudy{WindowSeconds: window}
	for _, name := range ComparisonAlgorithms {
		r, err := Run(name, setup)
		if err != nil {
			return nil, err
		}
		study.Rows = append(study.Rows, BandwidthRow{
			Algorithm:         r.Algorithm,
			ClientServerBytes: r.BytesClientServer,
			ServerServerBytes: r.BytesServerServer,
			Series:            r.BandwidthSeries,
		})
	}
	return study, nil
}

// Render prints the per-algorithm traffic table of Fig. 12.
func (s *BandwidthStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Fig. 12: network consumption over %.0f virtual seconds ===\n", s.WindowSeconds)
	fmt.Fprintf(&b, "%-14s %14s %14s %14s\n", "algorithm", "client-server", "server-server", "total")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-14s %13.1fMB %13.1fMB %13.1fMB\n",
			r.Algorithm, mb(r.ClientServerBytes), mb(r.ServerServerBytes), mb(r.Total()))
	}
	b.WriteString("\ncumulative MB over time (10 samples across the window):\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-14s", r.Algorithm)
		for _, v := range r.Series {
			fmt.Fprintf(&b, " %7.0f", mb(v))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func mb(bytes int) float64 { return float64(bytes) / 1e6 }

// latencyForStudy returns nil (the AWS matrix) or the "No lat." network.
func latencyForStudy(uniform bool) geo.LatencyFunc {
	if uniform {
		return UniformMeanLatency()
	}
	return nil
}

// UniformMeanLatency returns the "No lat." network of Tab. 6: the paper
// sets "all network latencies to the same value" to isolate resource
// heterogeneity, so every link gets the mean AWS intra-region latency
// (~2 ms).
func UniformMeanLatency() geo.LatencyFunc {
	return geo.ConstantLatency(0.002)
}
