package experiments

import (
	"fmt"
	"strings"
)

// ServerScalingStudy completes the paper's scalability story: Sec. 5
// promises an evaluation of scaling "with the numbers of clients and
// servers", but only the client dimension gets a table (Tab. 5). Here the
// client population is fixed and the server count varies; more servers
// shorten client-server distances and split the aggregation load, at the
// price of more server-server synchronization traffic.
type ServerScalingStudy struct {
	Target  float64
	Clients int
	Rows    []ServerScalingRow
}

// ServerScalingRow is one server-count configuration.
type ServerScalingRow struct {
	Servers           int
	TimeToTarget      float64 // 0 = not reached
	Updates           int
	ServerServerBytes int
}

// RunServerScalingStudy runs Spyker with 1, 2, 4 and 8 servers over the
// same fixed client population.
func RunServerScalingStudy(scale float64, seed int64) (*ServerScalingStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(120 * scale)
	if clients < 16 {
		clients = 16
	}
	const target = 0.92
	study := &ServerScalingStudy{Target: target, Clients: clients}
	for _, servers := range []int{1, 2, 4, 8} {
		setup := Setup{
			Task:                TaskMNIST,
			NumServers:          servers,
			NumClients:          clients,
			NonIIDLabels:        2,
			SpreadClientRegions: true, // clients stay geo-distributed even with 1 server
			Seed:                seed,
			TargetAcc:           target,
			Horizon:             180,
		}
		res, err := Run("spyker", setup)
		if err != nil {
			return nil, err
		}
		tt, ok := res.Trace.TimeToAcc(target)
		if !ok {
			tt = 0
		}
		upd, _ := res.Trace.UpdatesToAcc(target)
		study.Rows = append(study.Rows, ServerScalingRow{
			Servers:           servers,
			TimeToTarget:      tt,
			Updates:           upd,
			ServerServerBytes: res.BytesServerServer,
		})
	}
	return study, nil
}

// Render prints the study.
func (s *ServerScalingStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== server-count scaling: %d clients, target %.0f%%%% ===\n",
		s.Clients, 100*s.Target)
	fmt.Fprintf(&b, "%8s %12s %10s %16s\n", "servers", "t(target)", "updates", "srv-srv bytes")
	for _, r := range s.Rows {
		tt := "(n/r)"
		if r.TimeToTarget > 0 {
			tt = fmt.Sprintf("%.2fs", r.TimeToTarget)
		}
		fmt.Fprintf(&b, "%8d %12s %10d %15.2fMB\n",
			r.Servers, tt, r.Updates, float64(r.ServerServerBytes)/1e6)
	}
	b.WriteString("\nmore servers shorten client-server paths and split the aggregation\n" +
		"load, at the cost of more synchronization traffic.\n")
	return b.String()
}
