package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/compress"
)

// CompressionStudy extends the paper's bandwidth evaluation (Fig. 12):
// Spyker is the most traffic-hungry algorithm of the comparison, so we
// measure what client-update compression buys — raw float64 vs 8-bit
// quantization vs top-10% delta sparsification — and what it costs in
// accuracy and convergence time. The lossy reconstruction is applied
// inside the simulation, so the accuracy numbers are real.
type CompressionStudy struct {
	Target float64
	Rows   []CompressionRow
}

// CompressionRow is one codec's outcome.
type CompressionRow struct {
	Codec             string
	TimeToTarget      float64 // 0 = not reached
	FinalAcc          float64
	ClientServerBytes int
	ServerServerBytes int
}

// RunCompressionStudy runs Spyker on non-IID MNIST under each codec.
func RunCompressionStudy(scale float64, seed int64) (*CompressionStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	const target = 0.92
	study := &CompressionStudy{Target: target}
	codecs := []compress.Codec{
		compress.Raw{},
		compress.Quantize8{},
		compress.TopK{Fraction: 0.10},
	}
	for _, codec := range codecs {
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   4,
			NumClients:   clients,
			NonIIDLabels: 2,
			Codec:        codec,
			Seed:         seed,
			TargetAcc:    target,
			Horizon:      120,
		}
		res, err := Run("spyker", setup)
		if err != nil {
			return nil, err
		}
		tt, ok := res.Trace.TimeToAcc(target)
		if !ok {
			tt = 0
		}
		study.Rows = append(study.Rows, CompressionRow{
			Codec:             codec.Name(),
			TimeToTarget:      tt,
			FinalAcc:          res.Trace.BestAcc(),
			ClientServerBytes: res.BytesClientServer,
			ServerServerBytes: res.BytesServerServer,
		})
	}
	return study, nil
}

// Render prints the codec comparison.
func (c *CompressionStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== update-compression extension (Spyker, target %.0f%%%%) ===\n", 100*c.Target)
	fmt.Fprintf(&b, "%-10s %12s %10s %16s %14s\n",
		"codec", "t(target)", "best acc", "client-server", "server-server")
	for _, r := range c.Rows {
		tt := "(n/r)"
		if r.TimeToTarget > 0 {
			tt = fmt.Sprintf("%.2fs", r.TimeToTarget)
		}
		fmt.Fprintf(&b, "%-10s %12s %9.1f%% %15.1fMB %13.1fMB\n",
			r.Codec, tt, 100*r.FinalAcc,
			float64(r.ClientServerBytes)/1e6, float64(r.ServerServerBytes)/1e6)
	}
	b.WriteString("\nclient->server traffic shrinks ~8x under q8 and further under top-k;\n" +
		"server->client and server<->server traffic is unchanged (updates only).\n")
	return b.String()
}
