package experiments

import (
	"math/rand"
	"testing"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/nn"
)

// TestParamsViewMatchesParams is the property test behind the flat-vector
// memory plane: for every model family of the paper's evaluation, the
// zero-copy ParamsView must be element-identical to the copying Params —
// at initialization and after real local training — and Params must stay
// an independent copy. Gradient correctness of the flat layouts is
// covered by the gradcheck tests in internal/nn.
func TestParamsViewMatchesParams(t *testing.T) {
	cases := []struct {
		name  string
		build func() (fl.Model, []int)
	}{
		{"mnist-cnn", func() (fl.Model, []int) {
			ds := data.GenerateImages(data.MNISTLike(40, 20, 1))
			rng := rand.New(rand.NewSource(2))
			ch, h, w := ds.Shape()
			conv := nn.NewConv2D(ch, h, w, 6, 3, rng)
			pool := nn.NewMaxPool2D(6, 10, 10)
			net := nn.NewNetwork(
				conv,
				nn.NewReLU(conv.OutSize()),
				pool,
				nn.NewDense(pool.OutSize(), 32, rng),
				nn.NewReLU(32),
				nn.NewDense(32, ds.NumClasses(), rng),
			)
			return fl.NewClassifier(net, ds, ds.TestSet(), 10, 3), seqShard(ds.Len())
		}},
		{"cifar-cnn", func() (fl.Model, []int) {
			ds := data.GenerateImages(data.CIFARLike(40, 20, 4))
			rng := rand.New(rand.NewSource(5))
			ch, h, w := ds.Shape()
			conv1 := nn.NewConv2D(ch, h, w, 6, 3, rng)
			conv2 := nn.NewConv2D(6, 10, 10, 8, 3, rng)
			pool := nn.NewMaxPool2D(8, 8, 8)
			net := nn.NewNetwork(
				conv1,
				nn.NewReLU(conv1.OutSize()),
				conv2,
				nn.NewReLU(conv2.OutSize()),
				pool,
				nn.NewDense(pool.OutSize(), 32, rng),
				nn.NewReLU(32),
				nn.NewDense(32, ds.NumClasses(), rng),
			)
			return fl.NewClassifier(net, ds, ds.TestSet(), 10, 6), seqShard(ds.Len())
		}},
		{"char-lstm", func() (fl.Model, []int) {
			txt := data.GenerateText(data.WikiTextLike(2000, 256, 7))
			rng := rand.New(rand.NewSource(8))
			lm := nn.NewCharLM(txt.Vocab(), 8, 16, rng)
			n := txt.Len()
			if n > 8 {
				n = 8
			}
			return fl.NewLanguageModel(lm, txt, 9), seqShard(n)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, shard := tc.build()
			check := func(stage string) {
				view, copied := m.ParamsView(), m.Params()
				if len(view) != m.NumParams() || len(copied) != m.NumParams() {
					t.Fatalf("%s: lengths view=%d copy=%d want %d",
						stage, len(view), len(copied), m.NumParams())
				}
				for i := range view {
					if view[i] != copied[i] {
						t.Fatalf("%s: view[%d]=%v != copy[%d]=%v",
							stage, i, view[i], i, copied[i])
					}
				}
			}
			check("init")
			m.Train(shard, 1, 0.05)
			check("after train")
			// Params must be a genuine copy: mutating it cannot reach the
			// live plane behind ParamsView.
			copied := m.Params()
			copied[0] += 42
			if m.ParamsView()[0] == copied[0] {
				t.Fatalf("Params aliases the live parameter plane")
			}
		})
	}
}

func seqShard(n int) []int {
	shard := make([]int, n)
	for i := range shard {
		shard[i] = i
	}
	return shard
}
