package experiments

import (
	"math/rand"
	"testing"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/nn"
	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// nopOutbound swallows everything a ServerCore emits, so the benchmarks
// below measure the aggregation math itself, not a transport.
type nopOutbound struct{}

func (nopOutbound) ReplyClient(int, []float64, float64, float64)                     {}
func (nopOutbound) BroadcastModel([]float64, float64, int, []int64, ring.Membership) {}
func (nopOutbound) BroadcastAge(float64, ring.Membership)                            {}
func (nopOutbound) SendToken(t spyker.Token, next int)                               {}

func benchModel(b *testing.B) fl.Model {
	b.Helper()
	ds := data.GenerateImages(data.MNISTLike(20, 30, 1))
	rng := rand.New(rand.NewSource(1))
	ch, h, w := ds.Shape()
	conv := nn.NewConv2D(ch, h, w, 6, 3, rng)
	pool := nn.NewMaxPool2D(6, 10, 10)
	net := nn.NewNetwork(
		conv, nn.NewReLU(conv.OutSize()), pool,
		nn.NewDense(pool.OutSize(), 32, rng), nn.NewReLU(32),
		nn.NewDense(32, ds.NumClasses(), rng),
	)
	return fl.NewClassifier(net, ds, ds.TestSet(), 10, 1)
}

// BenchmarkParamsRoundTrip measures the cost of one full model
// export/import cycle — the unit of every simulated or live model
// exchange.
func BenchmarkParamsRoundTrip(b *testing.B) {
	m := benchModel(b)
	p := m.Params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = m.Params()
		m.SetParams(p)
	}
	_ = p
}

// BenchmarkServerAggregate measures the Spyker server's client-update hot
// path: staleness-weighted merge plus the model reply, over a
// realistically sized (25k-parameter) flat vector.
func BenchmarkServerAggregate(b *testing.B) {
	const n = 25000
	cfg := spyker.Config{
		ID: 0, NumServers: 1, NumClients: 8,
		EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
		HInter: 1e18, HIntra: 1e18, // never trigger a sync mid-benchmark
		ClientLR: 0.05,
	}
	initial := make([]float64, n)
	update := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range update {
		initial[i] = rng.NormFloat64()
		update[i] = rng.NormFloat64()
	}
	core := spyker.NewServerCore(cfg, initial, false, nopOutbound{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.HandleClientUpdate(i%8, update, core.Age())
	}
}

// BenchmarkServerAggregateClipped is the same hot path with
// Byzantine-robust norm clipping enabled, which additionally computes the
// update delta and its norm per update.
func BenchmarkServerAggregateClipped(b *testing.B) {
	const n = 25000
	cfg := spyker.Config{
		ID: 0, NumServers: 1, NumClients: 8,
		EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
		HInter: 1e18, HIntra: 1e18,
		ClientLR:         0.05,
		RobustClipFactor: 3,
	}
	initial := make([]float64, n)
	update := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range update {
		initial[i] = rng.NormFloat64()
		update[i] = rng.NormFloat64()
	}
	core := spyker.NewServerCore(cfg, initial, false, nopOutbound{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.HandleClientUpdate(i%8, update, core.Age())
	}
}
