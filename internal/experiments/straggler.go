package experiments

import (
	"fmt"
	"strings"
)

// StragglerStudy puts one slow machine under one of the four servers
// (processing delays x20) and measures how much each multi-server
// protocol suffers — the sharpest test of the paper's claim that Spyker's
// servers "never postpone interactions with clients": the asynchronous
// exchange lets the healthy servers run at full speed, while synchronous
// coordination (Sync-Spyker's exchange barrier, HierFAVG's cloud round)
// drags everyone down to the straggler's pace.
type StragglerStudy struct {
	SlowFactor float64
	Rows       []StragglerRow
}

// StragglerRow compares one algorithm's healthy and straggled runs.
type StragglerRow struct {
	Algorithm     string
	HealthyTime   float64 // time to target with uniform hardware (0 = n/r)
	StraggledTime float64 // time to target with server 0 slowed (0 = n/r)
}

// Slowdown returns StraggledTime/HealthyTime, or 0 when either run missed
// the target.
func (r StragglerRow) Slowdown() float64 {
	if r.HealthyTime <= 0 || r.StraggledTime <= 0 {
		return 0
	}
	return r.StraggledTime / r.HealthyTime
}

// RunStragglerStudy compares Spyker, Sync-Spyker and HierFAVG with and
// without a 20x-slow server 0.
func RunStragglerStudy(scale float64, seed int64) (*StragglerStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 12 {
		clients = 12
	}
	const (
		target = 0.92
		factor = 20.0
	)
	study := &StragglerStudy{SlowFactor: factor}
	for _, name := range []string{"spyker", "sync-spyker", "hierfavg"} {
		row := StragglerRow{}
		for _, slow := range []bool{false, true} {
			setup := Setup{
				Task:         TaskMNIST,
				NumServers:   4,
				NumClients:   clients,
				NonIIDLabels: 2,
				Seed:         seed,
				TargetAcc:    target,
				Horizon:      240,
			}
			env, rec, err := BuildEnv(setup)
			if err != nil {
				return nil, err
			}
			if slow {
				env.ServerProcMult = []float64{factor, 1, 1, 1}
			}
			alg, err := NewAlgorithm(name)
			if err != nil {
				return nil, err
			}
			if err := alg.Build(env); err != nil {
				return nil, err
			}
			env.Sim.Run(setup.Horizon)
			row.Algorithm = alg.Name()
			tt, ok := rec.TraceData.TimeToAcc(target)
			if !ok {
				tt = 0
			}
			if slow {
				row.StraggledTime = tt
			} else {
				row.HealthyTime = tt
			}
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// Render prints the study.
func (s *StragglerStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== straggler server extension: server 0 processing x%.0f slower ===\n", s.SlowFactor)
	fmt.Fprintf(&b, "%-14s %12s %14s %10s\n", "algorithm", "healthy", "straggled", "slowdown")
	for _, r := range s.Rows {
		h, st := "(n/r)", "(n/r)"
		if r.HealthyTime > 0 {
			h = fmt.Sprintf("%.2fs", r.HealthyTime)
		}
		if r.StraggledTime > 0 {
			st = fmt.Sprintf("%.2fs", r.StraggledTime)
		}
		sd := "-"
		if v := r.Slowdown(); v > 0 {
			sd = fmt.Sprintf("%.2fx", v)
		}
		fmt.Fprintf(&b, "%-14s %12s %14s %10s\n", r.Algorithm, h, st, sd)
	}
	b.WriteString("\nexpected: Spyker degrades least (only the straggler's own clients slow\n" +
		"down); synchronous coordination spreads the damage to everyone.\n")
	return b.String()
}
