package experiments

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

// BenchmarkObsOverhead measures the cost of the observability subsystem on
// a full (small) Spyker emulation: "nop" runs with the default disabled
// sink, "traced" with a ring-buffer tracer plus the derived-metrics sink
// attached. The nop/traced ratio is recorded in EXPERIMENTS.md; the no-op
// path must stay within a few percent of an uninstrumented build.
func BenchmarkObsOverhead(b *testing.B) {
	base := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		NonIIDLabels: 2, Seed: 42, MaxUpdates: 300, Horizon: 60,
	}
	b.Run("nop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run("spyker", base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			setup := base
			setup.Trace = obs.NewTracer(0)
			setup.Metrics = obs.NewRegistry()
			if _, err := Run("spyker", setup); err != nil {
				b.Fatal(err)
			}
		}
	})
}
