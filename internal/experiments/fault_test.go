package experiments

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/fault"
)

// TestFaultPlumbingDoesNotPerturbSimulation is the zero-cost-when-disarmed
// regression test: arming the fault machinery with an EMPTY plan — which
// flips every defensive path (per-server submit epochs, unpooled owned
// copies, client update copying) without injecting a single fault — must
// produce an experiment trace byte-identical to a plain nil-Faults run.
// Failure injection is opt-in; merely wiring it may never change results.
func TestFaultPlumbingDoesNotPerturbSimulation(t *testing.T) {
	setup := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		NonIIDLabels: 2, Seed: 42, MaxUpdates: 300, Horizon: 60,
	}
	plain, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}

	armed := setup
	armed.Faults = &fault.Plan{}
	faulty, err := Run("spyker", armed)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain.Trace) != len(faulty.Trace) {
		t.Fatalf("trace lengths differ: %d plain vs %d armed", len(plain.Trace), len(faulty.Trace))
	}
	for i := range plain.Trace {
		if plain.Trace[i] != faulty.Trace[i] {
			t.Fatalf("trace point %d differs with empty fault plan armed: %+v vs %+v",
				i, plain.Trace[i], faulty.Trace[i])
		}
	}
	if plain.FinalTime != faulty.FinalTime || plain.Updates != faulty.Updates {
		t.Errorf("run outcome differs: %.6f/%d plain vs %.6f/%d armed",
			plain.FinalTime, plain.Updates, faulty.FinalTime, faulty.Updates)
	}
	if plain.BytesClientServer != faulty.BytesClientServer ||
		plain.BytesServerServer != faulty.BytesServerServer {
		t.Error("byte accounting differs with empty fault plan armed")
	}
}

// TestRunRejectsFaultsOnUnsupportedAlgorithm: only algorithms implementing
// fault.Cluster accept a fault plan; everything else must fail loudly
// rather than silently running fault-free.
func TestRunRejectsFaultsOnUnsupportedAlgorithm(t *testing.T) {
	setup := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		Seed: 1, MaxUpdates: 10, Horizon: 5,
	}
	setup.Faults = &fault.Plan{}
	if _, err := Run("fedavg", setup); err == nil {
		t.Fatal("Run accepted a fault plan for an algorithm without injection support")
	}
}
