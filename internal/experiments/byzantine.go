package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

// ByzantineStudy exercises the "Byzantine Learning" keyword the paper
// lists but never evaluates: a fraction of the clients poison the
// training with sign-flipped (reversed, amplified) updates, and Spyker's
// norm-clipping defense (spyker.Config.RobustClipFactor) is compared
// against the undefended protocol and an all-honest reference. Every
// run also arms the contribution audit plane (internal/obs/audit), so
// the table doubles as a detection-quality study: precision, recall,
// and time-to-first-flag against the known attacker set.
type ByzantineStudy struct {
	MaliciousFraction float64

	// DetectionWindow is the virtual-time deadline at which the
	// detection columns are scored: a client counts as flagged iff an
	// audit verdict is STANDING (raised, not since cleared) at this
	// instant — exactly what an operator's dashboard shows. The audit
	// plane is passive, so an undefended attack compounds until the
	// model degenerates, after which every honest client's gradients
	// explode heterogeneously and cross-client baselines stop meaning
	// anything — flags in that regime measure the wreckage, not the
	// detector. Every attacker variant's flags stand well before the
	// deadline (first raises at t≈1.7-4.6 here), while honest reactive
	// blow-ups are transient raises the hysteresis clears.
	DetectionWindow float64

	Rows []ByzantineRow
}

// ByzantineRow is one configuration's outcome.
type ByzantineRow struct {
	Name     string
	FinalAcc float64
	BestAcc  float64

	// Detection quality of the audit plane on this run: Attackers is the
	// ground-truth malicious population, Flagged how many clients had a
	// verdict standing at the detection deadline, TruePos their
	// intersection. Precision and Recall follow; MeanTTFF is the mean
	// virtual time from run start to a true positive's first flag.
	Attackers int
	Flagged   int
	TruePos   int
	Precision float64
	Recall    float64
	MeanTTFF  float64
}

// auditCollector is a passive sink that keeps only the audit verdict
// events of a run — the study replays them against ground truth. A
// plain slice (instead of obs.Tracer's ring) cannot drop verdicts on
// long runs.
type auditCollector struct {
	events []obs.Event
}

func (c *auditCollector) Enabled() bool { return true }

func (c *auditCollector) Emit(e obs.Event) {
	if e.Kind == obs.KindAudit {
		c.events = append(c.events, e)
	}
}

// RunByzantineStudy runs the attack configurations on non-IID MNIST.
func RunByzantineStudy(scale float64, seed int64) (*ByzantineStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 10 {
		clients = 10
	}
	const fraction = 0.2
	const detectionWindow = 5 // see ByzantineStudy.DetectionWindow
	study := &ByzantineStudy{MaliciousFraction: fraction, DetectionWindow: detectionWindow}

	run := func(name string, attack fl.Byzantine, clip float64) error {
		hyper := fl.DefaultHyper(clients, 4)
		hyper.RobustClipFactor = clip
		collector := &auditCollector{}
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   4,
			NumClients:   clients,
			NonIIDLabels: 2,
			Seed:         seed,
			Horizon:      45,
			EvalEvery:    100,
			Hyper:        &hyper,
			Trace:        collector,
			Audit:        &audit.Config{},
		}
		env, rec, err := BuildEnv(setup)
		if err != nil {
			return err
		}
		truth := map[int]bool{}
		if attack != fl.ByzantineNone {
			stride := int(1 / fraction)
			for ci := range env.Clients {
				if ci%stride == 0 {
					env.Clients[ci].Byzantine = attack
					truth[ci] = true
				}
			}
		}
		alg, err := NewAlgorithm("spyker")
		if err != nil {
			return err
		}
		if err := alg.Build(env); err != nil {
			return err
		}
		env.Sim.Run(setup.Horizon)

		row := ByzantineRow{
			Name:      name,
			FinalAcc:  rec.TraceData.Final().Acc,
			BestAcc:   rec.TraceData.BestAcc(),
			Attackers: len(truth),
		}
		// Score detection at the deadline: replay the verdicts up to the
		// window and count the clients whose flags are still standing —
		// the dashboard view at the instant the model is still worth
		// defending.
		var windowed []obs.Event
		for _, e := range collector.events {
			if e.Time <= detectionWindow {
				windowed = append(windowed, e)
			}
		}
		rep := audit.Replay(windowed)
		var ttff float64
		for i := range rep.Clients {
			c := &rep.Clients[i]
			if len(c.Active) == 0 {
				continue // transient raise, cleared before the deadline
			}
			row.Flagged++
			if truth[c.Client] {
				row.TruePos++
				ttff += c.FirstFlag
			}
		}
		if row.Flagged > 0 {
			row.Precision = float64(row.TruePos) / float64(row.Flagged)
		}
		if row.Attackers > 0 {
			row.Recall = float64(row.TruePos) / float64(row.Attackers)
		}
		if row.TruePos > 0 {
			row.MeanTTFF = ttff / float64(row.TruePos)
		}
		study.Rows = append(study.Rows, row)
		return nil
	}

	if err := run("honest reference", fl.ByzantineNone, 0); err != nil {
		return nil, err
	}
	if err := run("sign-flip, undefended", fl.ByzantineSignFlip, 0); err != nil {
		return nil, err
	}
	if err := run("sign-flip, norm clip x1.2", fl.ByzantineSignFlip, 1.2); err != nil {
		return nil, err
	}
	if err := run("noise, undefended", fl.ByzantineNoise, 0); err != nil {
		return nil, err
	}
	if err := run("noise, norm clip x1.2", fl.ByzantineNoise, 1.2); err != nil {
		return nil, err
	}
	if err := run("scaled noise, undefended", fl.ByzantineScaledNoise, 0); err != nil {
		return nil, err
	}
	if err := run("scaled noise, norm clip x1.2", fl.ByzantineScaledNoise, 1.2); err != nil {
		return nil, err
	}
	if err := run("collusion, undefended", fl.ByzantineCollude, 0); err != nil {
		return nil, err
	}
	if err := run("collusion, norm clip x1.2", fl.ByzantineCollude, 1.2); err != nil {
		return nil, err
	}
	return study, nil
}

// Render prints the comparison.
func (b *ByzantineStudy) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Byzantine extension: %.0f%%%% malicious clients (Spyker) ===\n",
		100*b.MaliciousFraction)
	fmt.Fprintf(&sb, "detection columns: flags standing at the t=%gs deadline\n",
		b.DetectionWindow)
	fmt.Fprintf(&sb, "%-28s %10s %10s %9s %8s %10s %8s %8s\n",
		"configuration", "final acc", "best acc", "attackers", "flagged", "precision", "recall", "ttff")
	for _, r := range b.Rows {
		prec, rec, ttff := "-", "-", "-"
		if r.Flagged > 0 {
			prec = fmt.Sprintf("%.2f", r.Precision)
		}
		if r.Attackers > 0 {
			rec = fmt.Sprintf("%.2f", r.Recall)
		}
		if r.TruePos > 0 {
			ttff = fmt.Sprintf("%.1fs", r.MeanTTFF)
		}
		fmt.Fprintf(&sb, "%-28s %9.1f%% %9.1f%% %9d %8d %10s %8s %8s\n",
			r.Name, 100*r.FinalAcc, 100*r.BestAcc, r.Attackers, r.Flagged, prec, rec, ttff)
	}
	sb.WriteString("\nnorm clipping bounds each update's influence, containing poisoning\n" +
		"that collapses the undefended run; the audit plane (internal/obs/audit)\n" +
		"independently flags the attackers from their update statistics while\n" +
		"the model is still intact (ttff = mean time to an attacker's first flag).\n")
	return sb.String()
}
