package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/fl"
)

// ByzantineStudy exercises the "Byzantine Learning" keyword the paper
// lists but never evaluates: a fraction of the clients poison the
// training with sign-flipped (reversed, amplified) updates, and Spyker's
// norm-clipping defense (spyker.Config.RobustClipFactor) is compared
// against the undefended protocol and an all-honest reference.
type ByzantineStudy struct {
	MaliciousFraction float64
	Rows              []ByzantineRow
}

// ByzantineRow is one configuration's outcome.
type ByzantineRow struct {
	Name     string
	FinalAcc float64
	BestAcc  float64
}

// RunByzantineStudy runs the three configurations on non-IID MNIST.
func RunByzantineStudy(scale float64, seed int64) (*ByzantineStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 10 {
		clients = 10
	}
	const fraction = 0.2
	study := &ByzantineStudy{MaliciousFraction: fraction}

	run := func(name string, attack fl.Byzantine, clip float64) error {
		hyper := fl.DefaultHyper(clients, 4)
		hyper.RobustClipFactor = clip
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   4,
			NumClients:   clients,
			NonIIDLabels: 2,
			Seed:         seed,
			Horizon:      45,
			EvalEvery:    100,
			Hyper:        &hyper,
		}
		env, rec, err := BuildEnv(setup)
		if err != nil {
			return err
		}
		if attack != fl.ByzantineNone {
			stride := int(1 / fraction)
			for ci := range env.Clients {
				if ci%stride == 0 {
					env.Clients[ci].Byzantine = attack
				}
			}
		}
		alg, err := NewAlgorithm("spyker")
		if err != nil {
			return err
		}
		if err := alg.Build(env); err != nil {
			return err
		}
		env.Sim.Run(setup.Horizon)
		study.Rows = append(study.Rows, ByzantineRow{
			Name:     name,
			FinalAcc: rec.TraceData.Final().Acc,
			BestAcc:  rec.TraceData.BestAcc(),
		})
		return nil
	}

	if err := run("honest reference", fl.ByzantineNone, 0); err != nil {
		return nil, err
	}
	if err := run("sign-flip, undefended", fl.ByzantineSignFlip, 0); err != nil {
		return nil, err
	}
	if err := run("sign-flip, norm clip x1.2", fl.ByzantineSignFlip, 1.2); err != nil {
		return nil, err
	}
	if err := run("noise, undefended", fl.ByzantineNoise, 0); err != nil {
		return nil, err
	}
	if err := run("noise, norm clip x1.2", fl.ByzantineNoise, 1.2); err != nil {
		return nil, err
	}
	if err := run("scaled noise, undefended", fl.ByzantineScaledNoise, 0); err != nil {
		return nil, err
	}
	if err := run("scaled noise, norm clip x1.2", fl.ByzantineScaledNoise, 1.2); err != nil {
		return nil, err
	}
	if err := run("collusion, undefended", fl.ByzantineCollude, 0); err != nil {
		return nil, err
	}
	if err := run("collusion, norm clip x1.2", fl.ByzantineCollude, 1.2); err != nil {
		return nil, err
	}
	return study, nil
}

// Render prints the comparison.
func (b *ByzantineStudy) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Byzantine extension: %.0f%%%% malicious clients (Spyker) ===\n",
		100*b.MaliciousFraction)
	fmt.Fprintf(&sb, "%-26s %10s %10s\n", "configuration", "final acc", "best acc")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-26s %9.1f%% %9.1f%%\n", r.Name, 100*r.FinalAcc, 100*r.BestAcc)
	}
	sb.WriteString("\nnorm clipping bounds each update's influence, containing poisoning\n" +
		"that collapses the undefended run.\n")
	return sb.String()
}
