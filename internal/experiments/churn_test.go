package experiments

import (
	"strings"
	"testing"
)

func TestChurnStudyRecovers(t *testing.T) {
	c, err := RunChurnStudy(0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both systems must keep making progress while a third of the clients
	// are away, and must not crash on the stale updates when they rejoin.
	for _, r := range []*Result{c.Spyker, c.FedAsync} {
		final := r.Trace.Final().Acc
		if final < 0.60 {
			t.Errorf("%s final accuracy %.2f after churn", r.Algorithm, final)
		}
		if dip := c.AccuracyDip(r); dip > 0.30 {
			t.Errorf("%s dipped %.2f after churn onset", r.Algorithm, dip)
		}
	}
	if !strings.Contains(c.Render(), "churn") {
		t.Error("render incomplete")
	}
}

// TestChurnedClientsPauseAndResume verifies the mechanism directly: a
// churned client contributes strictly fewer updates than its always-on
// twin, but contributes again after the window.
func TestChurnedClientsPauseAndResume(t *testing.T) {
	setup := Setup{
		Task:          TaskMNIST,
		NumServers:    2,
		NumClients:    8,
		ChurnFraction: 0.25, // stride 4: clients 0 and 4 churn
		ChurnFrom:     2,
		ChurnUntil:    6,
		Seed:          3,
		Horizon:       10,
		EvalEvery:     1000,
	}
	res, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}
	churned := res.ClientUpdateCounts[0]
	steady := res.ClientUpdateCounts[1]
	if churned >= steady {
		t.Errorf("churned client sent %v updates, steady twin %v", churned, steady)
	}
	if churned == 0 {
		t.Error("churned client never contributed at all (should resume)")
	}
	// With 4s of a 10s horizon offline, the churned client should have
	// roughly 60% of the steady client's updates.
	if churned < steady*0.3 {
		t.Errorf("churned client only sent %v of %v updates", churned, steady)
	}
}

func TestAblationsStructure(t *testing.T) {
	a, err := RunAblations(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.HInter) != 4 || len(a.EtaA) != 4 || len(a.Phi) != 4 {
		t.Fatalf("sweep sizes: %d %d %d", len(a.HInter), len(a.EtaA), len(a.Phi))
	}
	// Frequent synchronization (small h_inter) must cost at least as much
	// server-server bandwidth as rare synchronization.
	if a.HInter[0].ServerBytes < a.HInter[len(a.HInter)-1].ServerBytes {
		t.Errorf("h_inter sweep bandwidth not monotone-ish: %d < %d",
			a.HInter[0].ServerBytes, a.HInter[len(a.HInter)-1].ServerBytes)
	}
	if !strings.Contains(a.Render(), "h_inter sweep") {
		t.Error("render incomplete")
	}
}
