package experiments

import (
	"fmt"
	"io"

	"github.com/spyker-fl/spyker/internal/metrics"
)

// WriteTraceCSV writes an evaluation trace as CSV with a header, ready
// for plotting: time_s, updates, loss, accuracy, perplexity.
func WriteTraceCSV(w io.Writer, trace metrics.Trace) error {
	if _, err := fmt.Fprintln(w, "time_s,updates,loss,accuracy,perplexity"); err != nil {
		return err
	}
	for _, p := range trace {
		if _, err := fmt.Fprintf(w, "%.6f,%d,%.6f,%.6f,%.6f\n",
			p.Time, p.Updates, p.Loss, p.Acc, p.Perplexity()); err != nil {
			return err
		}
	}
	return nil
}

// WriteQueueCSV writes the queue-length traces of all servers as CSV:
// server, time_s, length.
func WriteQueueCSV(w io.Writer, queues map[int]metrics.QueueTrace) error {
	if _, err := fmt.Fprintln(w, "server,time_s,length"); err != nil {
		return err
	}
	for s := 0; s < len(queues); s++ {
		for _, p := range queues[s] {
			if _, err := fmt.Fprintf(w, "%d,%.6f,%d\n", s, p.Time, p.Length); err != nil {
				return err
			}
		}
	}
	return nil
}
