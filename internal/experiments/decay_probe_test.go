package experiments

import "testing"

// TestDecayProbe is a manual calibration probe for the Fig. 11 ablation.
// Run with: go test ./internal/experiments -run TestDecayProbe -v -decayprobe
func TestDecayProbe(t *testing.T) {
	if !probeFlag {
		t.Skip("calibration probe; enable with -decayprobe")
	}
	setup := Setup{
		Task:            TaskMNIST,
		NumServers:      4,
		NumClients:      32,
		NonIIDLabels:    2,
		TrainDelayMean:  0.150,
		TrainDelayStd:   0.0075,
		CorrelatedSpeed: true,
		Seed:            3,
		Horizon:         50,
		MaxUpdates:      15000,
		EvalEvery:       200,
	}
	for _, name := range []string{"spyker", "spyker-nodecay"} {
		res, err := Run(name, setup)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("-- %s --", res.Algorithm)
		for _, p := range thinTrace(res.Trace, 20) {
			t.Logf("t=%7.2f upd=%6d acc=%5.1f%%", p.Time, p.Updates, 100*p.Acc)
		}
		t.Logf("best=%5.1f%%", 100*res.Trace.BestAcc())
	}
}
