package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// FailoverStudy sweeps token-holder crash rates against accuracy and
// synchronization latency: each faulty run repeatedly crashes whichever
// server holds the token (internal/fault.CrashPlan), with Spyker's
// token-loss recovery armed (silence-timeout regeneration plus stuck-round
// retry). The paper never evaluates server failure; this extension shows
// the ring surviving exactly the loss mode that would otherwise silence
// synchronization forever.
type FailoverStudy struct {
	Downtime float64
	Rows     []FailoverRow
}

// FailoverRow is one crash-rate configuration's outcome.
type FailoverRow struct {
	Name            string
	Crashes         int
	FinalAcc        float64
	BestAcc         float64
	SyncsTriggered  int // summed over servers, post-run
	TokenRegens     int // summed over servers, post-run
	MeanSyncLatency float64
	FaultEvents     int // faults actually applied (crashes + restarts)
}

// RunFailoverStudy runs the crash-rate sweep on non-IID MNIST: a
// fault-free reference, then 1, 2, and 4 token-holder crashes with 10
// virtual seconds of downtime each. Every run is deterministic given the
// seed, faults included.
func RunFailoverStudy(scale float64, seed int64) (*FailoverStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 10 {
		clients = 10
	}
	const (
		horizon  = 60.0
		downtime = 10.0
	)
	study := &FailoverStudy{Downtime: downtime}

	run := func(name string, crashes int) error {
		hyper := fl.DefaultHyper(clients, 4)
		hyper.TokenTimeout = 5
		hyper.SyncRetry = 2.5
		reg := obs.NewRegistry()
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   4,
			NumClients:   clients,
			NonIIDLabels: 2,
			Seed:         seed,
			Horizon:      horizon,
			EvalEvery:    100,
			Hyper:        &hyper,
			// Tracing feeds the metrics bridge that measures sync latency.
			Trace:   obs.NewTracer(1 << 15),
			Metrics: reg,
		}
		if crashes > 0 {
			plan := fault.CrashPlan(seed, crashes, horizon, downtime)
			setup.Faults = &plan
		}
		env, rec, err := BuildEnv(setup)
		if err != nil {
			return err
		}
		alg := &spyker.Algorithm{}
		if err := alg.Build(env); err != nil {
			return err
		}
		var inj *fault.SimInjector
		if env.Faults != nil {
			inj, err = fault.NewSimInjector(*env.Faults, env.Sim, env.Net, alg)
			if err != nil {
				return err
			}
			inj.Instrument(env.Trace)
			inj.Arm()
		}
		env.Sim.Run(horizon)

		row := FailoverRow{
			Name:            name,
			Crashes:         crashes,
			FinalAcc:        rec.TraceData.Final().Acc,
			BestAcc:         rec.TraceData.BestAcc(),
			MeanSyncLatency: reg.Histogram(obs.MetricSyncDuration, obs.DefBuckets).Mean(),
		}
		for _, c := range alg.Servers() {
			row.SyncsTriggered += c.SyncsTriggered()
			row.TokenRegens += c.TokenRegens()
		}
		if inj != nil {
			row.FaultEvents = inj.Injected()
		}
		study.Rows = append(study.Rows, row)
		return nil
	}

	if err := run("fault-free", 0); err != nil {
		return nil, err
	}
	for _, crashes := range []int{1, 2, 4} {
		name := fmt.Sprintf("%d crash", crashes)
		if crashes > 1 {
			name += "es"
		}
		if err := run(name, crashes); err != nil {
			return nil, err
		}
	}
	return study, nil
}

// Render prints the sweep.
func (f *FailoverStudy) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Failover extension: token-holder crashes, %.0fs downtime (Spyker) ===\n",
		f.Downtime)
	fmt.Fprintf(&sb, "%-12s %10s %10s %7s %7s %10s %7s\n",
		"crashes", "final acc", "best acc", "syncs", "regens", "sync lat", "faults")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-12s %9.1f%% %9.1f%% %7d %7d %9.2fs %7d\n",
			r.Name, 100*r.FinalAcc, 100*r.BestAcc,
			r.SyncsTriggered, r.TokenRegens, r.MeanSyncLatency, r.FaultEvents)
	}
	sb.WriteString("\neach crash kills the current token holder; the ring detects the silence,\n" +
		"regenerates a higher-bid token, and discards the stale one when the\n" +
		"restarted server resurfaces it — synchronization keeps advancing.\n")
	return sb.String()
}
