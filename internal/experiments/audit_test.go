package experiments

import (
	"reflect"
	"testing"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
)

// auditSetup is the small DES deployment the audit tests share: 12
// clients per server, so the stride-5 attacker placement used below
// co-locates colluders on the same server (pairwise similarity is a
// per-server statistic).
//
// The horizon matters for the attack runs: the audit plane is passive,
// so an unmitigated attack compounds for the whole run, and once the
// model degenerates (around t≈13 for noise-style attacks at this
// scale, t≈22 for collusion) every honest client's gradients explode
// heterogeneously and cross-client magnitude baselines stop meaning
// anything. Detection quality is therefore measured over a window in
// which there is still a model to defend — every attacker of every
// variant flags by t≤9, so horizon 12 keeps a margin on both sides —
// while the attack-free zero-false-positive guard runs 2.5x longer.
func auditSetup(seed int64, horizon float64) Setup {
	return Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 24,
		NonIIDLabels: 2, Seed: seed, Horizon: horizon, EvalEvery: 100,
	}
}

// runAudited builds the setup, marks every fifth client with the attack
// (none for ByzantineNone), runs it with the audit plane armed, and
// returns the verdict stream plus the ground-truth attacker set.
func runAudited(t *testing.T, setup Setup, attack fl.Byzantine) ([]obs.Event, map[int]bool) {
	t.Helper()
	collector := &auditCollector{}
	setup.Trace = collector
	setup.Audit = &audit.Config{}
	env, _, err := BuildEnv(setup)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]bool{}
	if attack != fl.ByzantineNone {
		for ci := range env.Clients {
			if ci%5 == 0 {
				env.Clients[ci].Byzantine = attack
				truth[ci] = true
			}
		}
	}
	alg, err := NewAlgorithm("spyker")
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(setup.Horizon)
	return collector.events, truth
}

// TestAuditDoesNotPerturbSimulation is the audit plane's passivity
// regression test (referenced by Setup.Audit's doc): arming per-client
// contribution auditing on every server must leave the experiment trace
// byte-identical to an unaudited run. The recorder only observes merged
// deltas; it never feeds back into the schedule or the models.
func TestAuditDoesNotPerturbSimulation(t *testing.T) {
	setup := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		NonIIDLabels: 2, Seed: 42, MaxUpdates: 300, Horizon: 60,
	}
	plain, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}
	audited := setup
	audited.Audit = &audit.Config{}
	armed, err := Run("spyker", audited)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != len(armed.Trace) {
		t.Fatalf("trace lengths differ: %d plain vs %d audited", len(plain.Trace), len(armed.Trace))
	}
	for i := range plain.Trace {
		if plain.Trace[i] != armed.Trace[i] {
			t.Fatalf("trace point %d differs with audit armed: %+v vs %+v",
				i, plain.Trace[i], armed.Trace[i])
		}
	}
	if plain.FinalTime != armed.FinalTime || plain.Updates != armed.Updates {
		t.Errorf("run outcome differs: %.6f/%d plain vs %.6f/%d audited",
			plain.FinalTime, plain.Updates, armed.FinalTime, armed.Updates)
	}
	if plain.BytesClientServer != armed.BytesClientServer ||
		plain.BytesServerServer != armed.BytesServerServer {
		t.Error("byte accounting differs with audit armed")
	}
}

// TestAuditDetectsByzantineVariants runs each attack of the Byzantine
// extension through the full DES stack and demands that, at the
// detection horizon, every attacker's flag is standing and no honest
// client's is — the dashboard view an operator would act on. (Honest
// clients reacting to a poisoned model can earn a transient raise that
// the hysteresis clears within a few updates; a standing flag is the
// conviction.) Collusion must be caught by the pairwise-similarity
// rule specifically — the colluders' norms are calibrated to honest
// scale, so nothing else should see them.
func TestAuditDetectsByzantineVariants(t *testing.T) {
	cases := []struct {
		name     string
		attack   fl.Byzantine
		mustRule string // "" = any rule suffices
	}{
		{"sign-flip", fl.ByzantineSignFlip, ""},
		{"noise", fl.ByzantineNoise, ""},
		{"scaled-noise", fl.ByzantineScaledNoise, ""},
		{"collude", fl.ByzantineCollude, audit.RuleCollusion},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			events, truth := runAudited(t, auditSetup(42, 12), tc.attack)
			rep := audit.Replay(events)
			flagged := map[int]bool{}
			for i := range rep.Clients {
				if len(rep.Clients[i].Active) > 0 {
					flagged[rep.Clients[i].Client] = true
				}
			}
			for ci := range truth {
				if !flagged[ci] {
					t.Errorf("attacker %d never flagged", ci)
				}
			}
			for ci := range flagged {
				if !truth[ci] {
					t.Errorf("honest client %d falsely flagged", ci)
				}
			}
			if tc.mustRule != "" {
				for i := range rep.Clients {
					c := &rep.Clients[i]
					if truth[c.Client] && c.Raises[tc.mustRule] == 0 {
						t.Errorf("attacker %d flagged without the %s rule: raises %v",
							c.Client, tc.mustRule, c.Raises)
					}
				}
			}
			if len(rep.Clients) > 0 {
				if ff, ok := rep.FirstFlagTime(rep.Clients[0].Client); !ok || ff <= 0 {
					t.Errorf("bad first-flag time %v %v", ff, ok)
				}
			}
			t.Logf("%s: %d attackers, flagged %v", tc.name, len(truth), rep.FlaggedClients())
		})
	}
}

// TestAuditCleanRunZeroFalsePositives is the precision floor: an
// attack-free run over the same non-IID deployment must produce no
// audit verdicts at all. Honest geo-distributed clients with disjoint
// label shards are exactly the population the robust statistics must
// not confuse with attackers.
func TestAuditCleanRunZeroFalsePositives(t *testing.T) {
	events, _ := runAudited(t, auditSetup(42, 30), fl.ByzantineNone)
	if len(events) != 0 {
		t.Fatalf("attack-free run emitted %d audit verdicts: first %+v", len(events), events[0])
	}
}

// TestAuditEventDeterminism: two identical attacked runs must emit
// byte-identical verdict streams — the audit plane sits in the
// deterministic layer (spyker-lint's DeterministicPkgs) and its scores
// are pure functions of the update sequence.
func TestAuditEventDeterminism(t *testing.T) {
	a, _ := runAudited(t, auditSetup(7, 20), fl.ByzantineSignFlip)
	b, _ := runAudited(t, auditSetup(7, 20), fl.ByzantineSignFlip)
	if len(a) == 0 {
		t.Fatal("attacked run emitted no audit verdicts")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("audit verdict streams differ across identical runs: %d vs %d events", len(a), len(b))
	}
}
