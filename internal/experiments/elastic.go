package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// ElasticStudy compares a ring that scales out at runtime against fixed
// rings: the elastic run starts with two servers and admits two more
// mid-training (epoch-versioned membership, snapshot bootstrap, client
// re-homing), bracketed by fixed-2 and fixed-4 baselines. The paper
// fixes the server set for each experiment; this extension shows the
// token ring absorbing capacity changes without restarting training.
type ElasticStudy struct {
	Rows []ElasticRow
}

// ElasticRow is one ring configuration's outcome.
type ElasticRow struct {
	Name           string
	StartServers   int
	EndServers     int // ring members at the end of the run
	FinalEpoch     int // highest membership epoch reached
	FinalAcc       float64
	BestAcc        float64
	SyncsTriggered int // summed over servers, post-run
	FaultEvents    int // membership events actually applied
}

// RunElasticStudy runs the scale-out comparison on non-IID MNIST:
// fixed-2, elastic 2->4 (joins at 25% and 35% of the horizon, sponsored
// by servers 0 and 1), and fixed-4. Every run is deterministic given
// the seed, membership events included.
func RunElasticStudy(scale float64, seed int64) (*ElasticStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 10 {
		clients = 10
	}
	const horizon = 60.0
	study := &ElasticStudy{}

	run := func(name string, servers int, plan *fault.Plan) error {
		hyper := fl.DefaultHyper(clients, servers)
		hyper.TokenTimeout = 5
		hyper.SyncRetry = 2.5
		reg := obs.NewRegistry()
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   servers,
			NumClients:   clients,
			NonIIDLabels: 2,
			Seed:         seed,
			Horizon:      horizon,
			EvalEvery:    100,
			Hyper:        &hyper,
			Trace:        obs.NewTracer(1 << 15),
			Metrics:      reg,
			Faults:       plan,
		}
		env, rec, err := BuildEnv(setup)
		if err != nil {
			return err
		}
		alg := &spyker.Algorithm{}
		if err := alg.Build(env); err != nil {
			return err
		}
		var inj *fault.SimInjector
		if env.Faults != nil {
			inj, err = fault.NewSimInjector(*env.Faults, env.Sim, env.Net, alg)
			if err != nil {
				return err
			}
			inj.Instrument(env.Trace)
			inj.Arm()
		}
		env.Sim.Run(horizon)

		row := ElasticRow{
			Name:         name,
			StartServers: servers,
			FinalAcc:     rec.TraceData.Final().Acc,
			BestAcc:      rec.TraceData.BestAcc(),
		}
		for _, c := range alg.Servers() {
			row.SyncsTriggered += c.SyncsTriggered()
			if e := c.Epoch(); e > row.FinalEpoch {
				row.FinalEpoch = e
			}
			if m := c.Membership(); m.Count() > row.EndServers {
				row.EndServers = m.Count()
			}
		}
		if inj != nil {
			row.FaultEvents = inj.Injected()
		}
		study.Rows = append(study.Rows, row)
		return nil
	}

	if err := run("fixed-2", 2, nil); err != nil {
		return nil, err
	}
	grow := fault.Plan{Seed: seed, Events: []fault.Event{
		{At: 0.25 * horizon, Kind: fault.KindJoin, Server: 0},
		{At: 0.35 * horizon, Kind: fault.KindJoin, Server: 1},
	}}
	if err := run("elastic 2->4", 2, &grow); err != nil {
		return nil, err
	}
	if err := run("fixed-4", 4, nil); err != nil {
		return nil, err
	}
	return study, nil
}

// Render prints the comparison.
func (e *ElasticStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("=== Elastic extension: runtime 2→4 scale-out vs fixed rings (Spyker) ===\n")
	fmt.Fprintf(&sb, "%-12s %7s %7s %7s %10s %10s %7s\n",
		"ring", "start", "end", "epoch", "final acc", "best acc", "syncs")
	for _, r := range e.Rows {
		fmt.Fprintf(&sb, "%-12s %7d %7d %7d %9.1f%% %9.1f%% %7d\n",
			r.Name, r.StartServers, r.EndServers, r.FinalEpoch,
			100*r.FinalAcc, 100*r.BestAcc, r.SyncsTriggered)
	}
	sb.WriteString("\nthe elastic run admits two servers mid-training: each joiner boots from\n" +
		"its sponsor's snapshot, the membership epoch bumps ripple over the age\n" +
		"broadcasts, and half the sponsor's clients re-home to the newcomer —\n" +
		"training never stops and the final ring matches the fixed-4 baseline.\n")
	return sb.String()
}
