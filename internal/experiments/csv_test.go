package experiments

import (
	"strings"
	"testing"

	"github.com/spyker-fl/spyker/internal/metrics"
)

func TestWriteTraceCSV(t *testing.T) {
	var b strings.Builder
	trace := metrics.Trace{
		{Time: 1.5, Updates: 10, Loss: 0.5, Acc: 0.8},
		{Time: 2.5, Updates: 20, Loss: 0.25, Acc: 0.9},
	}
	if err := WriteTraceCSV(&b, trace); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "time_s,updates,loss,accuracy,perplexity" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.500000,10,0.500000,0.800000,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteQueueCSV(t *testing.T) {
	var b strings.Builder
	queues := map[int]metrics.QueueTrace{
		0: {{Time: 1, Length: 2}},
		1: {{Time: 2, Length: 3}, {Time: 4, Length: 0}},
	}
	if err := WriteQueueCSV(&b, queues); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0,1.000000,2") || !strings.Contains(out, "1,4.000000,0") {
		t.Errorf("csv = %q", out)
	}
}
