package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/metrics"
)

// ScalabilityStudy is the data behind Tab. 5: how the time and update
// count needed to reach the target accuracy grow as the client population
// grows, per algorithm, normalized by the 1x population run.
type ScalabilityStudy struct {
	Target      float64
	Populations []int // client counts; the first is the baseline
	Rows        []ScalabilityRow
}

// ScalabilityRow is one algorithm's scaling factors.
type ScalabilityRow struct {
	Algorithm string
	// BaseTime/BaseUpdates are the absolute cost at the baseline
	// population; TimeFactor[i]/UpdateFactor[i] are multiplicative factors
	// for Populations[i+1] relative to the baseline. A factor of 0 means
	// the target was never reached.
	BaseTime      float64
	BaseUpdates   int
	TimeFactors   []float64
	UpdateFactors []float64
}

// RunScalabilityStudy reproduces Tab. 5 (MNIST, 4 servers, populations of
// 100/200/300 clients at scale 1). scale shrinks all populations.
func RunScalabilityStudy(scale float64, target float64, seed int64) (*ScalabilityStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if target <= 0 {
		target = 0.90
	}
	pops := []int{int(100 * scale), int(200 * scale), int(300 * scale)}
	for i := range pops {
		if pops[i] < 8 {
			pops[i] = 8 * (i + 1)
		}
	}
	study := &ScalabilityStudy{Target: target, Populations: pops}

	for _, name := range ComparisonAlgorithms {
		row := ScalabilityRow{}
		for pi, pop := range pops {
			setup := Setup{
				Task:         TaskMNIST,
				NumServers:   4,
				NumClients:   pop,
				NonIIDLabels: 2,
				Seed:         seed,
				TargetAcc:    target,
				Horizon:      420,
			}
			res, err := Run(name, setup)
			if err != nil {
				return nil, err
			}
			row.Algorithm = res.Algorithm
			tt, tok := res.Trace.TimeToAcc(target)
			uu, _ := res.Trace.UpdatesToAcc(target)
			if pi == 0 {
				if !tok {
					// Baseline never reached the target; factors are
					// meaningless, record zeros.
					row.BaseTime, row.BaseUpdates = 0, 0
				} else {
					row.BaseTime, row.BaseUpdates = tt, uu
				}
				continue
			}
			if !tok || row.BaseTime == 0 {
				row.TimeFactors = append(row.TimeFactors, 0)
				row.UpdateFactors = append(row.UpdateFactors, 0)
				continue
			}
			row.TimeFactors = append(row.TimeFactors, tt/row.BaseTime)
			row.UpdateFactors = append(row.UpdateFactors, float64(uu)/float64(row.BaseUpdates))
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// Render prints the table in the paper's layout.
func (s *ScalabilityStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Tab. 5: scaling factors to reach %.0f%%%% accuracy (baseline: %d clients) ===\n",
		100*s.Target, s.Populations[0])
	fmt.Fprintf(&b, "%-14s", "algorithm")
	for _, p := range s.Populations[1:] {
		fmt.Fprintf(&b, " | %4d cl: time  upd", p)
	}
	fmt.Fprintf(&b, " | base: time  upd\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-14s", r.Algorithm)
		for i := range r.TimeFactors {
			if r.TimeFactors[i] == 0 {
				fmt.Fprintf(&b, " |       (n/r)     ")
			} else {
				fmt.Fprintf(&b, " |      %5.2f %5.2f", r.TimeFactors[i], r.UpdateFactors[i])
			}
		}
		fmt.Fprintf(&b, " | %6.1fs %5d\n", r.BaseTime, r.BaseUpdates)
	}
	return b.String()
}

// LatencyStudy is the data behind Tab. 6: time for FedAsync and Spyker to
// reach 90%/95% accuracy with AWS latencies versus a uniform latency of
// equal average.
type LatencyStudy struct {
	Rows []LatencyRow
}

// LatencyRow is one (network, algorithm) cell pair of Tab. 6.
type LatencyRow struct {
	Network   string // "Lat." or "No lat."
	Algorithm string
	Time90    float64 // 0 if not reached
	Time95    float64
}

// RunLatencyStudy reproduces Tab. 6. The accuracy targets can be lowered
// (target90/target95) when running at reduced scale.
func RunLatencyStudy(scale, target90, target95 float64, seed int64) (*LatencyStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if target90 <= 0 {
		target90 = 0.90
	}
	if target95 <= 0 {
		target95 = 0.95
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	study := &LatencyStudy{}
	for _, uniform := range []bool{false, true} {
		network := "Lat."
		if uniform {
			network = "No lat."
		}
		for _, name := range []string{"fedasync", "spyker"} {
			setup := Setup{
				Task:         TaskMNIST,
				NumServers:   4,
				NumClients:   clients,
				NonIIDLabels: 2,
				Latency:      latencyForStudy(uniform),
				Seed:         seed,
				TargetAcc:    target95,
				Horizon:      420,
			}
			res, err := Run(name, setup)
			if err != nil {
				return nil, err
			}
			t90, _ := res.Trace.TimeToAcc(target90)
			t95, _ := res.Trace.TimeToAcc(target95)
			study.Rows = append(study.Rows, LatencyRow{
				Network: network, Algorithm: res.Algorithm, Time90: t90, Time95: t95,
			})
		}
	}
	return study, nil
}

// Improvement returns Spyker's relative speedup over FedAsync for the
// given network label at the 90% target: (fedasync-spyker)/fedasync.
func (s *LatencyStudy) Improvement(network string) float64 {
	var fa, sp float64
	for _, r := range s.Rows {
		if r.Network != network {
			continue
		}
		switch r.Algorithm {
		case "FedAsync":
			fa = r.Time90
		case "Spyker":
			sp = r.Time90
		}
	}
	if fa == 0 {
		return 0
	}
	return (fa - sp) / fa
}

// Render prints the table in the paper's layout.
func (s *LatencyStudy) Render() string {
	var b strings.Builder
	b.WriteString("=== Tab. 6: time to target accuracy, AWS latency vs uniform ===\n")
	fmt.Fprintf(&b, "%-8s %-10s %10s %10s\n", "network", "method", "t(90%)", "t(95%)")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-8s %-10s %9.1fs %9.1fs\n", r.Network, r.Algorithm, r.Time90, r.Time95)
	}
	fmt.Fprintf(&b, "improvement with latency:    %5.1f%%\n", 100*s.Improvement("Lat."))
	fmt.Fprintf(&b, "improvement without latency: %5.1f%%\n", 100*s.Improvement("No lat."))
	return b.String()
}

// ImbalanceStudy is the data behind Tab. 7: the effect of concentrating
// clients on one server.
type ImbalanceStudy struct {
	Scenarios []ImbalanceScenario
}

// ImbalanceScenario is one column of Tab. 7.
type ImbalanceScenario struct {
	HotClients int     // clients on the hot server
	Accuracy   float64 // final accuracy
	Duration   float64 // time to the evaluation milestone (virtual s)
}

// RunImbalanceStudy reproduces Tab. 7: 4 servers with a growing client
// hotspot on server 0 (balanced, then 52%, 63% and 70% of the population,
// the paper's shares). The population (140 at scale 1) is chosen so the
// hottest scenario saturates the 2 ms aggregation service rate of a
// single server — the bottleneck mechanism behind the paper's growing
// convergence times. Accuracy is reported at a fixed update budget, so
// the queueing-induced staleness of the imbalanced scenarios shows up as
// an accuracy delta, as in the paper's table.
func RunImbalanceStudy(scale float64, seed int64) (*ImbalanceStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	total := int(140 * scale)
	if total < 12 {
		total = 12
	}
	const target = 0.95
	hotShares := []float64{0.25, 0.52, 0.63, 0.70}
	study := &ImbalanceStudy{}
	var deadline float64
	for i, share := range hotShares {
		hot := int(float64(total) * share)
		rest := evenSplit(total-hot, 3)
		per := append([]int{hot}, rest...)
		setup := Setup{
			Task:             TaskMNIST,
			NumServers:       4,
			NumClients:       total,
			ClientsPerServer: per,
			NonIIDLabels:     2,
			Seed:             seed,
			Horizon:          90,
			TargetAcc:        target,
		}
		res, err := Run("spyker", setup)
		if err != nil {
			return nil, err
		}
		dur, reached := res.Trace.TimeToAcc(target)
		if !reached {
			dur = res.FinalTime
		}
		if i == 0 {
			// The balanced run's convergence time is the deadline at
			// which every scenario's accuracy is compared, so the
			// queueing penalty of a hotspot shows up as an accuracy
			// delta, as in the paper's table.
			deadline = dur
		}
		study.Scenarios = append(study.Scenarios, ImbalanceScenario{
			HotClients: hot,
			Accuracy:   accAt(res.Trace, deadline),
			Duration:   dur,
		})
	}
	return study, nil
}

// accAt returns the last accuracy at or before virtual time t (0 if the
// trace has no point that early).
func accAt(tr metrics.Trace, t float64) float64 {
	var acc float64
	for _, p := range tr {
		if p.Time > t {
			break
		}
		acc = p.Acc
	}
	return acc
}

// Render prints the table in the paper's delta layout: the balanced
// scenario in absolute terms, the others as differences.
func (s *ImbalanceStudy) Render() string {
	var b strings.Builder
	b.WriteString("=== Tab. 7: imbalanced clients per server (Spyker) ===\n")
	fmt.Fprintf(&b, "%-16s", "hot-server size")
	for _, sc := range s.Scenarios {
		fmt.Fprintf(&b, " %10d", sc.HotClients)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s", "accuracy")
	for i, sc := range s.Scenarios {
		if i == 0 {
			fmt.Fprintf(&b, " %9.1f%%", 100*sc.Accuracy)
		} else {
			fmt.Fprintf(&b, " %+9.1f%%", 100*(sc.Accuracy-s.Scenarios[0].Accuracy))
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s", "duration (s)")
	for i, sc := range s.Scenarios {
		if i == 0 {
			fmt.Fprintf(&b, " %10.1f", sc.Duration)
		} else {
			fmt.Fprintf(&b, " %+10.1f", sc.Duration-s.Scenarios[0].Duration)
		}
	}
	b.WriteString("\n")
	return b.String()
}
