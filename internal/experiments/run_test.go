package experiments

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

// TestAllAlgorithmsConverge is the end-to-end integration test: every
// algorithm of the paper's comparison must train the MNIST-like task to a
// nontrivial accuracy on a small geo-distributed deployment without
// deadlocking the simulator.
func TestAllAlgorithmsConverge(t *testing.T) {
	for _, name := range ComparisonAlgorithms {
		name := name
		t.Run(name, func(t *testing.T) {
			setup := Setup{
				Task: TaskMNIST, NumServers: 4, NumClients: 20,
				NonIIDLabels: 2, Seed: 1, TargetAcc: 0.80, Horizon: 90,
			}
			res, err := Run(name, setup)
			if err != nil {
				t.Fatal(err)
			}
			if res.Updates == 0 {
				t.Fatal("no client updates were processed")
			}
			if best := res.Trace.BestAcc(); best < 0.60 {
				t.Errorf("best accuracy %.3f, want >= 0.60", best)
			}
			if res.BytesClientServer == 0 {
				t.Error("no client-server traffic recorded")
			}
			t.Logf("%s: updates=%d vt=%.2fs best=%.1f%% reached=%v",
				res.Algorithm, res.Updates, res.FinalTime,
				100*res.Trace.BestAcc(), res.ReachedTarget)
		})
	}
}

// TestRunDeterminism: two runs with the same seed must produce identical
// traces — the whole emulation is deterministic by construction.
func TestRunDeterminism(t *testing.T) {
	setup := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		NonIIDLabels: 2, Seed: 42, MaxUpdates: 300, Horizon: 60,
	}
	a, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace point %d differs: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.BytesClientServer != b.BytesClientServer || a.BytesServerServer != b.BytesServerServer {
		t.Error("byte accounting differs between identical runs")
	}
}

// TestTracingDoesNotPerturbSimulation is the observability determinism
// regression test: a run with full event tracing enabled must produce an
// experiment trace byte-identical to the same run with the no-op sink.
// Sinks are passive by contract (they only record), so attaching one can
// never change what the simulator schedules.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	setup := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		NonIIDLabels: 2, Seed: 42, MaxUpdates: 300, Horizon: 60,
	}
	plain, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}

	traced := setup
	tracer := obs.NewTracer(0)
	traced.Trace = tracer
	traced.Metrics = obs.NewRegistry()
	instr, err := Run("spyker", traced)
	if err != nil {
		t.Fatal(err)
	}

	if tracer.Total() == 0 {
		t.Fatal("tracer saw no events — instrumentation is not wired")
	}
	if len(plain.Trace) != len(instr.Trace) {
		t.Fatalf("trace lengths differ: %d plain vs %d traced", len(plain.Trace), len(instr.Trace))
	}
	for i := range plain.Trace {
		if plain.Trace[i] != instr.Trace[i] {
			t.Fatalf("trace point %d differs with tracing on: %+v vs %+v",
				i, plain.Trace[i], instr.Trace[i])
		}
	}
	if plain.FinalTime != instr.FinalTime || plain.Updates != instr.Updates {
		t.Errorf("run outcome differs: %.6f/%d plain vs %.6f/%d traced",
			plain.FinalTime, plain.Updates, instr.FinalTime, instr.Updates)
	}
	if plain.BytesClientServer != instr.BytesClientServer ||
		plain.BytesServerServer != instr.BytesServerServer {
		t.Error("byte accounting differs with tracing on")
	}

	// The registry must have filled from the derived metrics sink.
	if v, ok := traced.Metrics.Snapshot()[obs.MetricUpdates].(int64); !ok || v == 0 {
		t.Errorf("derived metric %s missing from registry", obs.MetricUpdates)
	}

	// Provenance: the traced run's events must reconstruct full update
	// lineage — the frontier and UIDs are protocol state the events only
	// observe, so tracing them cannot have perturbed the byte-identical
	// schedules verified above.
	lin := obs.BuildLineage(tracer.Events())
	if lin.Untracked != 0 {
		t.Errorf("%d untracked updates in an instrumented run", lin.Untracked)
	}
	if len(lin.Updates) == 0 {
		t.Fatal("traced run reconstructed no update lineage")
	}
	full := 0
	for _, u := range lin.Updates {
		if !u.UID.IsUpdate() {
			t.Fatalf("update lineage without client-minted UID: %+v", u)
		}
		if u.ReachedAll(setup.NumServers) {
			full++
			if lat := u.PropagationLatency(); lat <= 0 {
				t.Errorf("%s fully propagated with non-positive latency %v", u.Name(), lat)
			}
		}
	}
	if full == 0 {
		t.Error("no update propagated to every server over 60 virtual seconds")
	}
}
