package experiments

import (
	"testing"
)

// TestAllAlgorithmsConverge is the end-to-end integration test: every
// algorithm of the paper's comparison must train the MNIST-like task to a
// nontrivial accuracy on a small geo-distributed deployment without
// deadlocking the simulator.
func TestAllAlgorithmsConverge(t *testing.T) {
	for _, name := range ComparisonAlgorithms {
		name := name
		t.Run(name, func(t *testing.T) {
			setup := Setup{
				Task: TaskMNIST, NumServers: 4, NumClients: 20,
				NonIIDLabels: 2, Seed: 1, TargetAcc: 0.80, Horizon: 90,
			}
			res, err := Run(name, setup)
			if err != nil {
				t.Fatal(err)
			}
			if res.Updates == 0 {
				t.Fatal("no client updates were processed")
			}
			if best := res.Trace.BestAcc(); best < 0.60 {
				t.Errorf("best accuracy %.3f, want >= 0.60", best)
			}
			if res.BytesClientServer == 0 {
				t.Error("no client-server traffic recorded")
			}
			t.Logf("%s: updates=%d vt=%.2fs best=%.1f%% reached=%v",
				res.Algorithm, res.Updates, res.FinalTime,
				100*res.Trace.BestAcc(), res.ReachedTarget)
		})
	}
}

// TestRunDeterminism: two runs with the same seed must produce identical
// traces — the whole emulation is deterministic by construction.
func TestRunDeterminism(t *testing.T) {
	setup := Setup{
		Task: TaskMNIST, NumServers: 2, NumClients: 8,
		NonIIDLabels: 2, Seed: 42, MaxUpdates: 300, Horizon: 60,
	}
	a, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("spyker", setup)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace point %d differs: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.BytesClientServer != b.BytesClientServer || a.BytesServerServer != b.BytesServerServer {
		t.Error("byte accounting differs between identical runs")
	}
}
