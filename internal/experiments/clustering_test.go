package experiments

import (
	"strings"
	"testing"
)

func TestClusteringStudyStructure(t *testing.T) {
	s, err := RunClusteringStudy(0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 3 {
		t.Fatalf("results = %d", len(s.Results))
	}
	for _, r := range s.Results {
		if r.FinalAcc < 0.5 {
			t.Errorf("%v placement only reached %.2f", r.Assignment, r.FinalAcc)
		}
		if r.BytesTotal == 0 {
			t.Errorf("%v placement recorded no traffic", r.Assignment)
		}
	}
	if !strings.Contains(s.Render(), "stratified") {
		t.Error("render incomplete")
	}
}

// TestAssignmentsChangeTopology checks the mechanics: the three
// strategies produce different client→server maps, the cluster-based
// ones keep servers balanced, and similar-placement servers hold fewer
// distinct labels than stratified ones.
func TestAssignmentsChangeTopology(t *testing.T) {
	base := Setup{
		Task:         TaskMNIST,
		NumServers:   4,
		NumClients:   24,
		NonIIDLabels: 2,
		Seed:         5,
	}

	build := func(a Assignment) ([]int, [][]int) {
		s := base
		s.Assignment = a
		env, _, err := BuildEnv(s)
		if err != nil {
			t.Fatal(err)
		}
		serverOf := make([]int, len(env.Clients))
		perServer := make([][]int, len(env.Servers))
		for ci, c := range env.Clients {
			serverOf[ci] = c.Server
			perServer[c.Server] = append(perServer[c.Server], ci)
		}
		return serverOf, perServer
	}

	geoMap, geoPer := build(AssignGeo)
	simMap, simPer := build(AssignSimilar)
	strMap, strPer := build(AssignStratified)

	differs := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !differs(geoMap, simMap) || !differs(simMap, strMap) {
		t.Error("assignment strategies produced identical topologies")
	}
	for _, per := range [][][]int{geoPer, simPer, strPer} {
		for si, g := range per {
			if len(g) < 4 || len(g) > 8 {
				t.Errorf("server %d has %d clients, want balanced ~6", si, len(g))
			}
		}
	}
}

func TestClusterAssignmentRejectsTextTask(t *testing.T) {
	_, _, err := BuildEnv(Setup{
		Task:       TaskWiki,
		NumServers: 2,
		NumClients: 8,
		Assignment: AssignSimilar,
		Seed:       1,
	})
	if err == nil {
		t.Error("text task has no label histograms; similar assignment must fail")
	}
}

func TestAssignmentString(t *testing.T) {
	if AssignGeo.String() != "geo" || AssignSimilar.String() != "similar" ||
		AssignStratified.String() != "stratified" {
		t.Error("assignment names wrong")
	}
}

func TestCompressionStudyStructure(t *testing.T) {
	s, err := RunCompressionStudy(0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	var raw, q8 CompressionRow
	for _, r := range s.Rows {
		if r.FinalAcc < 0.5 {
			t.Errorf("%s codec only reached %.2f", r.Codec, r.FinalAcc)
		}
		switch r.Codec {
		case "raw":
			raw = r
		case "q8":
			q8 = r
		}
	}
	// Per-update traffic must shrink under quantization. Compare bytes per
	// achieved... simplest robust check: if both ran to the same target in
	// similar time, q8 moves fewer client-server bytes.
	if raw.TimeToTarget > 0 && q8.TimeToTarget > 0 &&
		q8.TimeToTarget < raw.TimeToTarget*2 &&
		q8.ClientServerBytes >= raw.ClientServerBytes {
		t.Errorf("q8 client-server bytes %d >= raw %d", q8.ClientServerBytes, raw.ClientServerBytes)
	}
	if !strings.Contains(s.Render(), "codec") {
		t.Error("render incomplete")
	}
}

func TestServerScalingStudyShape(t *testing.T) {
	s, err := RunServerScalingStudy(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// More servers must produce more server-server traffic, and a single
	// server none at all.
	if s.Rows[0].ServerServerBytes != 0 {
		t.Errorf("1-server deployment produced %d server bytes", s.Rows[0].ServerServerBytes)
	}
	for i := 1; i < len(s.Rows); i++ {
		if s.Rows[i].ServerServerBytes <= s.Rows[i-1].ServerServerBytes {
			t.Errorf("server-server bytes not increasing: %d then %d",
				s.Rows[i-1].ServerServerBytes, s.Rows[i].ServerServerBytes)
		}
	}
	// The headline: multi-server deployments reach the target faster than
	// the single geo-handicapped server.
	single := s.Rows[0].TimeToTarget
	multi := s.Rows[2].TimeToTarget // 4 servers
	if single > 0 && multi > 0 && multi >= single {
		t.Errorf("4 servers (%.2fs) not faster than 1 server (%.2fs)", multi, single)
	}
	if !strings.Contains(s.Render(), "servers") {
		t.Error("render incomplete")
	}
}

func TestSpreadClientRegionsNearestAssignment(t *testing.T) {
	env, _, err := BuildEnv(Setup{
		Task:                TaskMNIST,
		NumServers:          4,
		NumClients:          16,
		SpreadClientRegions: true,
		Seed:                2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With one server per region, every client must be served in-region.
	for _, c := range env.Clients {
		if env.Servers[c.Server].Region != c.Region {
			t.Errorf("client %d in %v assigned to server in %v",
				c.ID, c.Region, env.Servers[c.Server].Region)
		}
	}
}

func TestByzantineStudyShape(t *testing.T) {
	s, err := RunByzantineStudy(0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 9 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	byName := map[string]ByzantineRow{}
	for _, r := range s.Rows {
		byName[r.Name] = r
	}
	honest := byName["honest reference"]
	if honest.BestAcc < 0.6 {
		t.Fatalf("honest reference only reached %.2f", honest.BestAcc)
	}
	// The defense must recover a meaningful share of what the attack
	// destroys (tiny populations are noisy, so require improvement, not
	// parity).
	if def, att := byName["noise, norm clip x1.2"], byName["noise, undefended"]; def.FinalAcc <= att.FinalAcc {
		t.Errorf("noise defense %.2f not better than undefended %.2f", def.FinalAcc, att.FinalAcc)
	}
	for _, name := range []string{"scaled noise, undefended", "scaled noise, norm clip x1.2",
		"collusion, undefended", "collusion, norm clip x1.2"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing row %q", name)
		}
	}
	if !strings.Contains(s.Render(), "Byzantine") {
		t.Error("render incomplete")
	}
}

func TestStragglerStudyShape(t *testing.T) {
	s, err := RunStragglerStudy(0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	var spyker, hier StragglerRow
	for _, r := range s.Rows {
		switch r.Algorithm {
		case "Spyker":
			spyker = r
		case "HierFAVG":
			hier = r
		}
	}
	if spyker.Slowdown() == 0 {
		t.Fatal("Spyker runs did not reach the target")
	}
	// The headline: asynchronous Spyker suffers (much) less from the
	// straggler than the synchronous hierarchy.
	if hier.Slowdown() > 0 && spyker.Slowdown() >= hier.Slowdown() {
		t.Errorf("Spyker slowdown %.2f >= HierFAVG %.2f", spyker.Slowdown(), hier.Slowdown())
	}
	if !strings.Contains(s.Render(), "straggler") {
		t.Error("render incomplete")
	}
}

func TestProcForMultiplier(t *testing.T) {
	env, _, err := BuildEnv(Setup{Task: TaskMNIST, NumServers: 2, NumClients: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := env.ProcFor(0, 0.002); got != 0.002 {
		t.Errorf("default multiplier changed delay: %v", got)
	}
	env.ServerProcMult = []float64{10, 0}
	if got := env.ProcFor(0, 0.002); got != 0.02 {
		t.Errorf("x10 multiplier = %v", got)
	}
	// Zero multiplier means "unset" and keeps the baseline.
	if got := env.ProcFor(1, 0.002); got != 0.002 {
		t.Errorf("zero multiplier = %v", got)
	}
	// Out-of-range server keeps the baseline.
	if got := env.ProcFor(5, 0.002); got != 0.002 {
		t.Errorf("out-of-range = %v", got)
	}
}
