package experiments

import (
	"fmt"
	"strings"
)

// ChurnStudy goes beyond the paper's evaluation (an extension exercising
// the staleness machinery): a third of the clients go offline mid-run and
// rejoin later, sending updates based on models from before the outage.
// A robust asynchronous system must neither stall while they are away nor
// regress when their stale updates land.
type ChurnStudy struct {
	Fraction   float64
	From, Till float64
	Spyker     *Result
	FedAsync   *Result
}

// RunChurnStudy trains MNIST with 100*scale clients; Fraction of them are
// offline during the middle third of the horizon.
func RunChurnStudy(scale float64, seed int64) (*ChurnStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 9 {
		clients = 9
	}
	const (
		horizon  = 36.0
		from     = 12.0
		till     = 24.0
		fraction = 1.0 / 3
	)
	setup := Setup{
		Task:          TaskMNIST,
		NumServers:    4,
		NumClients:    clients,
		NonIIDLabels:  2,
		ChurnFraction: fraction,
		ChurnFrom:     from,
		ChurnUntil:    till,
		Seed:          seed,
		Horizon:       horizon,
		EvalEvery:     50,
	}
	sp, err := Run("spyker", setup)
	if err != nil {
		return nil, err
	}
	fa, err := Run("fedasync", setup)
	if err != nil {
		return nil, err
	}
	return &ChurnStudy{Fraction: fraction, From: from, Till: till, Spyker: sp, FedAsync: fa}, nil
}

// AccuracyDip returns, for the given result, the largest accuracy drop
// from the running maximum during and after the churn window — the
// regression a stale-update storm could cause.
func (c *ChurnStudy) AccuracyDip(r *Result) float64 {
	var runMax, dip float64
	for _, p := range r.Trace {
		if p.Acc > runMax {
			runMax = p.Acc
		}
		if p.Time >= c.From {
			if d := runMax - p.Acc; d > dip {
				dip = d
			}
		}
	}
	return dip
}

// Render prints both traces with the churn window marked.
func (c *ChurnStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== churn extension: %.0f%%%% of clients offline during [%.0fs, %.0fs) ===\n",
		100*c.Fraction, c.From, c.Till)
	fmt.Fprintf(&b, "%10s %12s %12s\n", "time(s)", "Spyker", "FedAsync")
	sp := thinTrace(c.Spyker.Trace, 14)
	fa := thinTrace(c.FedAsync.Trace, 14)
	for i := 0; i < len(sp) && i < len(fa); i++ {
		marker := " "
		if sp[i].Time >= c.From && sp[i].Time < c.Till {
			marker = "*" // churn window
		}
		fmt.Fprintf(&b, "%9.2f%s %11.1f%% %11.1f%%\n", sp[i].Time, marker, 100*sp[i].Acc, 100*fa[i].Acc)
	}
	fmt.Fprintf(&b, "max accuracy dip after churn onset: Spyker %.1f%%, FedAsync %.1f%%\n",
		100*c.AccuracyDip(c.Spyker), 100*c.AccuracyDip(c.FedAsync))
	fmt.Fprintf(&b, "final: Spyker %.1f%%, FedAsync %.1f%%\n",
		100*c.Spyker.Trace.Final().Acc, 100*c.FedAsync.Trace.Final().Acc)
	return b.String()
}
