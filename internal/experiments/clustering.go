package experiments

import (
	"fmt"
	"strings"
)

// ClusteringStudy implements the paper's future-work proposal (Sec. 7):
// use clustering over client data distributions when assigning clients to
// servers, instead of pure geographic proximity. Three placements are
// compared on non-IID MNIST:
//
//   - geo: the paper's nearest-server rule (baseline);
//   - similar: each server gets one cluster of look-alike clients —
//     maximally biased server models that lean hard on the exchange;
//   - stratified: every server gets a slice of every cluster — server
//     models start unbiased, at the price of cross-region client links.
type ClusteringStudy struct {
	Target  float64
	Results []*ClusteringRow
}

// ClusteringRow is one placement's outcome.
type ClusteringRow struct {
	Assignment   Assignment
	TimeToTarget float64 // 0 = not reached
	FinalAcc     float64
	BytesTotal   int
}

// RunClusteringStudy runs Spyker under the three placements.
func RunClusteringStudy(scale float64, seed int64) (*ClusteringStudy, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	const target = 0.92
	study := &ClusteringStudy{Target: target}
	for _, a := range []Assignment{AssignGeo, AssignSimilar, AssignStratified} {
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   4,
			NumClients:   clients,
			NonIIDLabels: 2,
			Assignment:   a,
			Seed:         seed,
			TargetAcc:    target,
			Horizon:      120,
		}
		res, err := Run("spyker", setup)
		if err != nil {
			return nil, err
		}
		tt, ok := res.Trace.TimeToAcc(target)
		if !ok {
			tt = 0
		}
		study.Results = append(study.Results, &ClusteringRow{
			Assignment:   a,
			TimeToTarget: tt,
			FinalAcc:     res.Trace.BestAcc(),
			BytesTotal:   res.BytesClientServer + res.BytesServerServer,
		})
	}
	return study, nil
}

// Render prints the comparison.
func (c *ClusteringStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== clustering extension (paper Sec. 7 future work), target %.0f%%%% ===\n", 100*c.Target)
	fmt.Fprintf(&b, "%-12s %12s %10s %12s\n", "placement", "t(target)", "best acc", "total MB")
	for _, r := range c.Results {
		tt := "(n/r)"
		if r.TimeToTarget > 0 {
			tt = fmt.Sprintf("%.2fs", r.TimeToTarget)
		}
		fmt.Fprintf(&b, "%-12s %12s %9.1f%% %11.1fMB\n",
			r.Assignment, tt, 100*r.FinalAcc, float64(r.BytesTotal)/1e6)
	}
	b.WriteString("\nstratified placement trades cross-region client latency for unbiased\n" +
		"server models; similar placement maximizes per-server bias.\n")
	return b.String()
}
