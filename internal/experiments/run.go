package experiments

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/baselines"
	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/metrics"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// Result is the outcome of one algorithm run on one setup.
type Result struct {
	Algorithm string
	Trace     metrics.Trace
	Queues    map[int]metrics.QueueTrace
	// ClientUpdateCounts[i] is how many updates client i contributed.
	ClientUpdateCounts []float64
	BytesClientServer  int
	BytesServerServer  int
	// BandwidthSeries samples cumulative total bytes at ten evenly spaced
	// virtual times across the run (paper Fig. 12 plots traffic over time).
	BandwidthSeries []int
	FinalTime       float64
	Updates         int
	ReachedTarget   bool
	TimeToTarget    float64
}

// NewAlgorithm instantiates an algorithm by its paper name. Valid names:
// "spyker", "spyker-nodecay", "sync-spyker", "fedavg", "fedasync",
// "hierfavg", and the extension baseline "fedbuff".
func NewAlgorithm(name string) (fl.Algorithm, error) {
	switch name {
	case "spyker":
		return &spyker.Algorithm{}, nil
	case "spyker-nodecay":
		return &spyker.Algorithm{DisableDecay: true}, nil
	case "sync-spyker":
		return &baselines.SyncSpyker{}, nil
	case "fedavg":
		return &baselines.FedAvg{}, nil
	case "fedasync":
		return &baselines.FedAsync{}, nil
	case "hierfavg":
		return &baselines.HierFAVG{}, nil
	case "fedbuff":
		return &baselines.FedBuff{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// ComparisonAlgorithms is the paper's five-way comparison set in the order
// figures list them.
var ComparisonAlgorithms = []string{"fedavg", "fedasync", "hierfavg", "spyker", "sync-spyker"}

// Run executes one algorithm on one setup and collects every measurement.
func Run(algName string, s Setup) (*Result, error) {
	alg, err := NewAlgorithm(algName)
	if err != nil {
		return nil, err
	}
	env, rec, err := BuildEnv(s)
	if err != nil {
		return nil, err
	}
	if err := alg.Build(env); err != nil {
		return nil, fmt.Errorf("build %s: %w", alg.Name(), err)
	}
	if env.Faults != nil {
		cl, ok := alg.(fault.Cluster)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support failure injection", alg.Name())
		}
		inj, err := fault.NewSimInjector(*env.Faults, env.Sim, env.Net, cl)
		if err != nil {
			return nil, err
		}
		inj.Instrument(env.Trace)
		inj.Arm()
	}
	horizon := s.withDefaults().Horizon
	final := env.Sim.Run(horizon)

	series := make([]int, 10)
	for i := range series {
		t := final * float64(i+1) / float64(len(series))
		series[i] = env.Net.BytesUntil(t, 0)
	}

	reached, at := rec.Reached()
	return &Result{
		Algorithm:          alg.Name(),
		Trace:              rec.TraceData,
		Queues:             rec.QueueData,
		ClientUpdateCounts: rec.UpdateCountSamples(len(env.Clients)),
		BytesClientServer:  env.Net.TotalBytes(geo.ClientServer),
		BytesServerServer:  env.Net.TotalBytes(geo.ServerServer),
		BandwidthSeries:    series,
		FinalTime:          final,
		Updates:            rec.Updates(),
		ReachedTarget:      reached,
		TimeToTarget:       at,
	}, nil
}

// RunAll executes every algorithm in names on the same setup.
func RunAll(names []string, s Setup) ([]*Result, error) {
	out := make([]*Result, 0, len(names))
	for _, n := range names {
		r, err := Run(n, s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
