// Package experiments assembles the paper's evaluation: it builds
// simulated geo-distributed deployments (datasets, models, topology,
// delays), runs any fl.Algorithm on them, and contains one entry point per
// table and figure of the paper (see DESIGN.md's per-experiment index).
package experiments

import (
	"fmt"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/cluster"
	"github.com/spyker-fl/spyker/internal/compress"
	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/metrics"
	"github.com/spyker-fl/spyker/internal/nn"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/simulation"
)

// Task selects the learning workload.
type Task int

// The three workloads of the paper's evaluation.
const (
	TaskMNIST Task = iota + 1 // MNIST-like image classification (CNN)
	TaskCIFAR                 // CIFAR-like image classification (deeper CNN)
	TaskWiki                  // WikiText-like char language modeling (LSTM)
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskMNIST:
		return "mnist"
	case TaskCIFAR:
		return "cifar"
	case TaskWiki:
		return "wikitext"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Setup describes one experimental deployment.
type Setup struct {
	Task       Task
	NumServers int
	NumClients int
	// ClientsPerServer optionally overrides the even client split
	// (Tab. 7's imbalanced scenarios). Its entries must sum to NumClients.
	ClientsPerServer []int

	// NonIIDLabels > 0 gives each client that many labels (paper: l=2);
	// 0 means IID. Ignored for the text task, whose shards are contiguous
	// stretches of the stream (naturally non-IID).
	NonIIDLabels int

	// DirichletAlpha > 0 selects the Dirichlet(alpha) label-skew split
	// instead of the paper's fixed-labels-per-client split; it takes
	// precedence over NonIIDLabels. Image tasks only.
	DirichletAlpha float64

	// TrainDelayMean/Std parameterize the per-client Gaussian training
	// delay (paper: N(150ms, 7.5ms); N(150ms, 60ms) for Figs. 9-10).
	TrainDelayMean float64
	TrainDelayStd  float64

	// CorrelatedSpeed makes client speed depend on the data a client
	// holds: clients whose labels fall in the lower half of the label
	// space train ~10x faster than the rest. This reproduces the failure
	// mode the learning-rate decay targets (fast clients biasing server
	// models toward their data distribution, Sec. 5.5) and is used by the
	// Fig. 11 ablation. Ignored for the text task.
	CorrelatedSpeed bool

	// SpreadClientRegions homes clients over all four AWS regions in
	// equal blocks regardless of the server count, and (under AssignGeo)
	// assigns each client to the lowest-latency server with balancing.
	// Without it, client regions follow the servers (the paper's layout,
	// where every deployment has one server per region). Used by the
	// server-count scaling study so a 1-server deployment still faces
	// geo-distributed clients.
	SpreadClientRegions bool

	// Assignment selects how clients are mapped to servers; the default
	// (AssignGeo) is the paper's nearest-server rule. The clustering
	// strategies implement the paper's future-work idea (Sec. 7) of
	// grouping clients by data-distribution similarity; they may assign a
	// client to a server outside its region, paying real cross-region
	// latency for the data-aware placement.
	Assignment Assignment

	// Churn: ChurnFraction of the clients (spread evenly over servers)
	// go offline during [ChurnFrom, ChurnUntil) and resume afterwards,
	// sending updates based on models from before the outage.
	ChurnFraction float64
	ChurnFrom     float64
	ChurnUntil    float64

	// Codec applies lossy client-update compression on the wire (nil =
	// raw float64); see internal/compress.
	Codec compress.Codec

	// Latency overrides the network latency function (nil = AWS Tab. 4).
	Latency geo.LatencyFunc

	// DatasetScale scales the default dataset sizes; 0 means 1.0.
	DatasetScale float64

	Seed       int64
	EvalEvery  int     // updates between evaluations (default 25)
	TargetAcc  float64 // stop once reached (0 = run to horizon)
	MaxUpdates int     // stop after this many updates (0 = unlimited)
	Horizon    float64 // virtual-seconds budget (default 600)

	// Hyper overrides the default paper hyper-parameters when non-nil.
	Hyper *fl.Hyper

	// Faults declares a failure-injection plan (internal/fault): crashes,
	// token drops, partitions, lossy links. Run arms an injector for it
	// when the algorithm supports injection (Spyker does). Nil — the
	// default — leaves the schedule byte-identical to a pre-fault run;
	// see TestFaultPlumbingDoesNotPerturbSimulation.
	Faults *fault.Plan

	// Trace receives protocol and network events from the run
	// (internal/obs); nil disables tracing. Sinks are passive, so the
	// simulated schedule is identical with and without one (see
	// TestTracingDoesNotPerturbSimulation).
	Trace obs.Sink
	// Audit arms the per-client contribution audit plane
	// (internal/obs/audit) on every server; verdicts are emitted as
	// KindAudit events into Trace. Nil disables auditing entirely —
	// like Trace, the audit plane is passive and leaves the schedule
	// byte-identical (see TestAuditDoesNotPerturbSimulation).
	Audit *audit.Config
	// Metrics collects runtime counters/gauges/histograms; nil creates a
	// private registry. When tracing is enabled the event stream is also
	// bridged into the registry (staleness distribution, sync durations,
	// byte totals) via obs.NewMetricsSink.
	Metrics *obs.Registry
}

// withDefaults fills unset fields.
func (s Setup) withDefaults() Setup {
	if s.NumServers == 0 {
		s.NumServers = 4
	}
	if s.NumClients == 0 {
		s.NumClients = 100
	}
	if s.TrainDelayMean == 0 {
		s.TrainDelayMean = 0.150
	}
	if s.TrainDelayStd == 0 {
		s.TrainDelayStd = 0.0075
	}
	if s.DatasetScale == 0 {
		s.DatasetScale = 1
	}
	if s.EvalEvery == 0 {
		s.EvalEvery = 25
	}
	if s.Horizon == 0 {
		s.Horizon = 600
	}
	return s
}

// Assignment is a client-to-server placement strategy.
type Assignment int

// Placement strategies.
const (
	// AssignGeo (default) assigns every client to its nearest server,
	// the paper's rule.
	AssignGeo Assignment = iota
	// AssignSimilar groups clients with similar label distributions onto
	// the same server (balanced k-means over label histograms).
	AssignSimilar
	// AssignStratified spreads each similarity cluster across all
	// servers, so every server sees every data distribution.
	AssignStratified
)

// String implements fmt.Stringer.
func (a Assignment) String() string {
	switch a {
	case AssignGeo:
		return "geo"
	case AssignSimilar:
		return "similar"
	case AssignStratified:
		return "stratified"
	default:
		return fmt.Sprintf("Assignment(%d)", int(a))
	}
}

// workload bundles the dataset-specific pieces of an environment.
type workload struct {
	factory fl.ModelFactory
	shards  [][]int
	// labelOf reports a representative label for a client's shard (nil
	// for the text task); used by the CorrelatedSpeed option.
	labelOf func(client int) int
	// hists holds per-client label histograms (nil for the text task);
	// used by the clustering assignment strategies.
	hists [][]float64
}

// buildWorkload materializes the task's dataset and model factory and
// splits the data over clients.
func buildWorkload(s Setup) workload {
	switch s.Task {
	case TaskMNIST:
		return buildMNIST(s)
	case TaskCIFAR:
		return buildCIFAR(s)
	case TaskWiki:
		return buildWiki(s)
	default:
		panic(fmt.Sprintf("experiments: unknown task %v", s.Task))
	}
}

func scale(base int, f float64) int {
	n := int(float64(base) * f)
	if n < 1 {
		n = 1
	}
	return n
}

func buildMNIST(s Setup) workload {
	train := scale(10*s.NumClients, s.DatasetScale)
	ds := data.GenerateImages(data.MNISTLike(train, 300, s.Seed))
	factory := func(seed int64) fl.Model {
		rng := rand.New(rand.NewSource(seed))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 6, 3, rng) // 6 x 10 x 10
		pool := nn.NewMaxPool2D(6, 10, 10)        // 6 x 5 x 5
		net := nn.NewNetwork(
			conv,
			nn.NewReLU(conv.OutSize()),
			pool,
			nn.NewDense(pool.OutSize(), 32, rng),
			nn.NewReLU(32),
			nn.NewDense(32, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, seed)
	}
	shards := imageShards(ds, s)
	return workload{factory: factory, shards: shards,
		labelOf: shardLabeler(ds, shards), hists: cluster.LabelHistograms(ds, shards)}
}

func buildCIFAR(s Setup) workload {
	train := scale(10*s.NumClients, s.DatasetScale)
	ds := data.GenerateImages(data.CIFARLike(train, 300, s.Seed))
	factory := func(seed int64) fl.Model {
		rng := rand.New(rand.NewSource(seed))
		ch, h, w := ds.Shape()
		conv1 := nn.NewConv2D(ch, h, w, 6, 3, rng)  // 6 x 10 x 10
		conv2 := nn.NewConv2D(6, 10, 10, 8, 3, rng) // 8 x 8 x 8
		pool := nn.NewMaxPool2D(8, 8, 8)            // 8 x 4 x 4
		net := nn.NewNetwork(
			conv1,
			nn.NewReLU(conv1.OutSize()),
			conv2,
			nn.NewReLU(conv2.OutSize()),
			pool,
			nn.NewDense(pool.OutSize(), 32, rng),
			nn.NewReLU(32),
			nn.NewDense(32, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, seed)
	}
	shards := imageShards(ds, s)
	return workload{factory: factory, shards: shards,
		labelOf: shardLabeler(ds, shards), hists: cluster.LabelHistograms(ds, shards)}
}

func imageShards(ds data.Classification, s Setup) [][]int {
	if s.DirichletAlpha > 0 {
		return data.PartitionDirichlet(ds, s.NumClients, s.DirichletAlpha, s.Seed+7)
	}
	if s.NonIIDLabels > 0 {
		return data.PartitionByLabel(ds, s.NumClients, s.NonIIDLabels, s.Seed+7)
	}
	return data.PartitionIID(ds.Len(), s.NumClients, s.Seed+7)
}

// shardLabeler returns a function mapping a client to the first label of
// its shard.
func shardLabeler(ds data.Classification, shards [][]int) func(int) int {
	return func(client int) int {
		if client >= len(shards) || len(shards[client]) == 0 {
			return 0
		}
		return ds.Label(shards[client][0])
	}
}

func buildWiki(s Setup) workload {
	// Eight training windows per client keeps one local epoch around the
	// same compute budget as the vision tasks.
	windowsWanted := 8 * s.NumClients
	cfg := data.WikiTextLike(0, 1024, s.Seed)
	cfg.Length = windowsWanted*(cfg.Window/2) + cfg.Window + 1
	cfg.Length = scale(cfg.Length, s.DatasetScale)
	txt := data.GenerateText(cfg)

	factory := func(seed int64) fl.Model {
		rng := rand.New(rand.NewSource(seed))
		lm := nn.NewCharLM(txt.Vocab(), 8, 16, rng)
		return fl.NewLanguageModel(lm, txt, seed)
	}

	// Contiguous shards: each client models a different stretch of the
	// stream, the natural non-IIDness of federated text.
	n := txt.Len()
	shards := make([][]int, s.NumClients)
	per := n / s.NumClients
	if per < 1 {
		per = 1
	}
	for c := 0; c < s.NumClients; c++ {
		lo := c * per
		hi := lo + per
		if c == s.NumClients-1 {
			hi = n
		}
		if lo >= n {
			lo, hi = n-1, n
		}
		for i := lo; i < hi; i++ {
			shards[c] = append(shards[c], i)
		}
	}
	return workload{factory: factory, shards: shards}
}

// BuildEnv constructs the full simulation environment for a setup. It is
// exported so examples and tests can assemble custom runs.
func BuildEnv(s Setup) (*fl.Env, *metrics.Recorder, error) {
	s = s.withDefaults()
	if s.NumServers < 1 || s.NumClients < s.NumServers {
		return nil, nil, fmt.Errorf("experiments: bad topology %d servers / %d clients",
			s.NumServers, s.NumClients)
	}
	perServer := s.ClientsPerServer
	if perServer == nil {
		perServer = evenSplit(s.NumClients, s.NumServers)
	}
	if len(perServer) != s.NumServers {
		return nil, nil, fmt.Errorf("experiments: ClientsPerServer has %d entries for %d servers",
			len(perServer), s.NumServers)
	}
	total := 0
	for _, c := range perServer {
		total += c
	}
	if total != s.NumClients {
		return nil, nil, fmt.Errorf("experiments: ClientsPerServer sums to %d, want %d",
			total, s.NumClients)
	}

	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{Latency: s.Latency})
	wl := buildWorkload(s)

	hyper := fl.DefaultHyper(s.NumClients, s.NumServers)
	if s.Hyper != nil {
		hyper = *s.Hyper
	}

	// Home region per client: contiguous geo blocks of perServer sizes
	// (client k lives next to geo server k's region, the paper's layout),
	// or equal blocks over all four regions when SpreadClientRegions is
	// set.
	regionOf := make([]geo.Region, 0, s.NumClients)
	if s.SpreadClientRegions {
		blocks := evenSplit(s.NumClients, len(geo.Regions))
		for ri, n := range blocks {
			for k := 0; k < n; k++ {
				regionOf = append(regionOf, geo.Regions[ri])
			}
		}
	} else {
		for si := 0; si < s.NumServers; si++ {
			region := geo.Regions[si%len(geo.Regions)]
			for k := 0; k < perServer[si]; k++ {
				regionOf = append(regionOf, region)
			}
		}
	}

	serverOf, err := assignServers(s, wl, perServer, regionOf)
	if err != nil {
		return nil, nil, err
	}

	rng := rand.New(rand.NewSource(s.Seed + 99))
	servers := make([]fl.ServerSpec, s.NumServers)
	for si := range servers {
		servers[si] = fl.ServerSpec{ID: si, Region: geo.Regions[si%len(geo.Regions)]}
	}
	clients := make([]fl.ClientSpec, 0, s.NumClients)
	for ci := 0; ci < s.NumClients; ci++ {
		delay := s.TrainDelayMean + rng.NormFloat64()*s.TrainDelayStd
		if s.CorrelatedSpeed && wl.labelOf != nil {
			// Clients holding low labels are fast, the rest slow (both
			// image tasks have 10 classes); see the Setup field docs.
			if wl.labelOf(ci) < 5 {
				delay *= 0.25
			} else {
				delay *= 2.50
			}
		}
		if delay < 0.010 {
			delay = 0.010
		}
		spec := fl.ClientSpec{
			ID:         ci,
			Region:     regionOf[ci],
			Server:     serverOf[ci],
			Shard:      wl.shards[ci],
			TrainDelay: delay,
			Epochs:     hyper.LocalEpochs,
		}
		if s.ChurnFraction > 0 && s.ChurnUntil > s.ChurnFrom {
			// Every stride-th client churns; the contiguous geo layout
			// spreads them over all servers.
			stride := int(1 / s.ChurnFraction)
			if stride < 1 {
				stride = 1
			}
			if ci%stride == 0 {
				spec.Absences = []fl.Absence{{From: s.ChurnFrom, Until: s.ChurnUntil}}
			}
		}
		clients = append(clients, spec)
		servers[serverOf[ci]].Clients = append(servers[serverOf[ci]].Clients, ci)
	}

	evalModel := wl.factory(s.Seed)
	rec := metrics.NewRecorder(sim, evalModel, s.EvalEvery)
	rec.TargetAcc = s.TargetAcc
	rec.MaxUpdate = s.MaxUpdates

	reg := s.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sim.Instrument(reg.Counter(obs.MetricSimEvents), reg.Gauge(obs.MetricSimQueueDepth))
	// The metrics bridge rides along whenever tracing is on, so a traced
	// run also fills the registry's protocol metrics.
	sink := obs.Sink(obs.Nop{})
	if s.Trace != nil && s.Trace.Enabled() {
		sink = obs.Multi(s.Trace, obs.NewMetricsSink(reg))
	}
	net.Instrument(sink)

	env := &fl.Env{
		Sim:        sim,
		Net:        net,
		Servers:    servers,
		Clients:    clients,
		NewModel:   wl.factory,
		ModelBytes: fl.ModelWireBytes(evalModel.NumParams()),
		Hyper:      hyper,
		Observer:   rec,
		Seed:       s.Seed,
		Trace:      sink,
		Metrics:    reg,
		Faults:     s.Faults,
		Audit:      s.Audit,
	}
	if s.Codec != nil {
		env.Codec = s.Codec
		env.UpdateBytes = s.Codec.WireBytes(evalModel.NumParams())
	}
	return env, rec, nil
}

// assignServers maps each client to a server per the setup's strategy.
func assignServers(s Setup, wl workload, perServer []int, regionOf []geo.Region) ([]int, error) {
	serverOf := make([]int, s.NumClients)
	switch s.Assignment {
	case AssignGeo:
		if s.SpreadClientRegions {
			// Nearest server by latency, balanced: among the servers with
			// the lowest latency from the client's region, pick the least
			// loaded one (cluster.NearestBalanced, shared with elastic
			// client re-homing).
			servers := make([]int, s.NumServers)
			for si := range servers {
				servers[si] = si
			}
			assign := cluster.NearestBalanced(regionOf[:s.NumClients], servers,
				func(si int) geo.Region { return geo.Regions[si%len(geo.Regions)] },
				geo.AWSLatency, nil)
			copy(serverOf, assign)
			break
		}
		ci := 0
		for si := range perServer {
			for k := 0; k < perServer[si]; k++ {
				serverOf[ci] = si
				ci++
			}
		}
	case AssignSimilar:
		if wl.hists == nil {
			return nil, fmt.Errorf("experiments: %v assignment needs label histograms (image tasks only)", s.Assignment)
		}
		groups := cluster.BalancedGroups(wl.hists, s.NumServers, s.Seed+13)
		for si, g := range groups {
			for _, ci := range g {
				serverOf[ci] = si
			}
		}
	case AssignStratified:
		if wl.hists == nil {
			return nil, fmt.Errorf("experiments: %v assignment needs label histograms (image tasks only)", s.Assignment)
		}
		groups := cluster.BalancedGroups(wl.hists, s.NumServers, s.Seed+13)
		// Deal each similarity group round-robin over the servers, so
		// every server receives a slice of every distribution.
		next := 0
		for _, g := range groups {
			for _, ci := range g {
				serverOf[ci] = next % s.NumServers
				next++
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown assignment %v", s.Assignment)
	}
	return serverOf, nil
}

func evenSplit(total, parts int) []int {
	out := make([]int, parts)
	base := total / parts
	rem := total % parts
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
