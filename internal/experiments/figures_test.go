package experiments

import (
	"strings"
	"testing"
)

// Tiny scales keep these runner tests fast; they verify structure and the
// qualitative invariants that hold at any scale, not the paper's numbers
// (those are checked at full scale via cmd/spyker-bench; see
// EXPERIMENTS.md).

func TestRunComparisonStructure(t *testing.T) {
	c, err := RunComparison(TaskMNIST, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != len(ComparisonAlgorithms) {
		t.Fatalf("results = %d", len(c.Results))
	}
	for _, r := range c.Results {
		if len(r.Trace) == 0 {
			t.Errorf("%s produced no trace", r.Algorithm)
		}
		if r.BytesClientServer == 0 {
			t.Errorf("%s recorded no traffic", r.Algorithm)
		}
	}
	out := c.Render()
	for _, want := range []string{"FedAvg", "FedAsync", "HierFAVG", "Spyker", "Sync-Spyker", "time to reach"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunComparisonWikiUsesPerplexity(t *testing.T) {
	c, err := RunComparison(TaskWiki, 0.08, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "ppl") || !strings.Contains(out, "perplexity") {
		t.Error("wikitext render does not report perplexity")
	}
	// Perplexity must end below the uniform baseline (vocab=32) for at
	// least the asynchronous algorithms.
	for _, r := range c.Results {
		if p := r.Trace.BestPerplexity(); p >= 32 {
			t.Errorf("%s best perplexity %.2f not below uniform", r.Algorithm, p)
		}
	}
}

func TestQueueStudyShape(t *testing.T) {
	// Queueing needs volume: at 100 clients the single FedAsync server
	// visibly out-queues each of Spyker's four (at smaller populations
	// both queues are a handful of jobs and the comparison is noise).
	q, err := RunQueueStudy(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.FedAsync.Queues[0].Max() == 0 {
		t.Error("FedAsync queue never formed")
	}
	// The headline of Fig. 9: the single FedAsync server queues at least
	// as much as any single Spyker server.
	if q.FedAsync.Queues[0].Max() < q.MaxSpykerQueue() {
		t.Errorf("FedAsync max queue %d < Spyker max %d",
			q.FedAsync.Queues[0].Max(), q.MaxSpykerQueue())
	}
	if !strings.Contains(q.Render(), "FedAsync") {
		t.Error("render incomplete")
	}
}

func TestKDEStudyShape(t *testing.T) {
	k, err := RunKDEStudy(0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.SpykerCounts) != len(k.FedAsyncCounts) || len(k.SpykerCounts) == 0 {
		t.Fatal("count vectors wrong")
	}
	// Spyker's multi-server deployment processes more updates in the same
	// virtual window (shorter client-server distance), Fig. 10's setup.
	var sp, fa float64
	for i := range k.SpykerCounts {
		sp += k.SpykerCounts[i]
		fa += k.FedAsyncCounts[i]
	}
	if sp <= fa {
		t.Errorf("Spyker total updates %v <= FedAsync %v", sp, fa)
	}
	if !strings.Contains(k.Render(), "median") {
		t.Error("render incomplete")
	}
}

func TestDecayStudyStructure(t *testing.T) {
	d, err := RunDecayStudy(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.WithDecay.Trace) == 0 || len(d.WithoutDecay.Trace) == 0 {
		t.Fatal("missing traces")
	}
	if d.WithDecay.Algorithm == d.WithoutDecay.Algorithm {
		t.Error("both runs used the same variant")
	}
	if !strings.Contains(d.Render(), "decay") {
		t.Error("render incomplete")
	}
}

func TestBandwidthStudyOrdering(t *testing.T) {
	s, err := RunBandwidthStudy(0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(ComparisonAlgorithms) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	byName := map[string]BandwidthRow{}
	for _, r := range s.Rows {
		if r.Total() <= 0 {
			t.Errorf("%s consumed no bandwidth", r.Algorithm)
		}
		byName[r.Algorithm] = r
	}
	// Fig. 12's ordering: synchronous single-server FedAvg consumes the
	// least; fully asynchronous multi-server Spyker the most.
	if byName["FedAvg"].Total() >= byName["Spyker"].Total() {
		t.Errorf("FedAvg %d >= Spyker %d", byName["FedAvg"].Total(), byName["Spyker"].Total())
	}
	if byName["FedAvg"].Total() >= byName["FedAsync"].Total() {
		t.Errorf("FedAvg %d >= FedAsync %d", byName["FedAvg"].Total(), byName["FedAsync"].Total())
	}
	// Only the multi-server systems produce server-server traffic.
	if byName["FedAvg"].ServerServerBytes != 0 || byName["FedAsync"].ServerServerBytes != 0 {
		t.Error("single-server systems recorded server-server traffic")
	}
	if byName["Spyker"].ServerServerBytes == 0 || byName["HierFAVG"].ServerServerBytes == 0 {
		t.Error("multi-server systems recorded no server-server traffic")
	}
}

func TestScalabilityStudyStructure(t *testing.T) {
	s, err := RunScalabilityStudy(0.12, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(ComparisonAlgorithms) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if len(r.TimeFactors) != 2 || len(r.UpdateFactors) != 2 {
			t.Errorf("%s factors incomplete: %+v", r.Algorithm, r)
		}
	}
	if !strings.Contains(s.Render(), "Tab. 5") {
		t.Error("render incomplete")
	}
}

func TestLatencyStudyStructure(t *testing.T) {
	s, err := RunLatencyStudy(0.12, 0.6, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	out := s.Render()
	if !strings.Contains(out, "Lat.") || !strings.Contains(out, "No lat.") {
		t.Error("render incomplete")
	}
}

func TestImbalanceStudyStructure(t *testing.T) {
	s, err := RunImbalanceStudy(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(s.Scenarios))
	}
	if s.Scenarios[0].HotClients >= s.Scenarios[3].HotClients {
		t.Error("hotspot sizes not increasing")
	}
	if !strings.Contains(s.Render(), "hot-server size") {
		t.Error("render incomplete")
	}
}

func TestBuildEnvValidation(t *testing.T) {
	if _, _, err := BuildEnv(Setup{Task: TaskMNIST, NumServers: 4, NumClients: 2}); err == nil {
		t.Error("fewer clients than servers accepted")
	}
	if _, _, err := BuildEnv(Setup{Task: TaskMNIST, NumServers: 2, NumClients: 8,
		ClientsPerServer: []int{4, 4, 4}}); err == nil {
		t.Error("wrong ClientsPerServer length accepted")
	}
	if _, _, err := BuildEnv(Setup{Task: TaskMNIST, NumServers: 2, NumClients: 8,
		ClientsPerServer: []int{4, 5}}); err == nil {
		t.Error("ClientsPerServer sum mismatch accepted")
	}
}

func TestNewAlgorithmUnknown(t *testing.T) {
	if _, err := NewAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, name := range append([]string{"spyker-nodecay"}, ComparisonAlgorithms...) {
		if _, err := NewAlgorithm(name); err != nil {
			t.Errorf("NewAlgorithm(%q): %v", name, err)
		}
	}
}

func TestTaskString(t *testing.T) {
	if TaskMNIST.String() != "mnist" || TaskCIFAR.String() != "cifar" || TaskWiki.String() != "wikitext" {
		t.Error("task names wrong")
	}
}

func TestDirichletSetupRuns(t *testing.T) {
	res, err := Run("spyker", Setup{
		Task:           TaskMNIST,
		NumServers:     2,
		NumClients:     8,
		DirichletAlpha: 0.3,
		Seed:           1,
		Horizon:        8,
		EvalEvery:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 || res.Trace.BestAcc() < 0.2 {
		t.Errorf("Dirichlet split run broken: %d updates, best %.2f",
			res.Updates, res.Trace.BestAcc())
	}
}
