package experiments

import (
	"fmt"
	"strings"

	"github.com/spyker-fl/spyker/internal/fl"
)

// Ablations sweeps the Spyker design knobs the paper calls out in
// Sec. 4 — the synchronization triggers (h_inter, h_intra), the
// server-aggregation rate eta_a, and the sigmoid activation rate phi —
// and reports how each setting trades convergence time against
// server-server bandwidth. This goes beyond the paper's evaluation, which
// fixes these at the Tab. 2 values.
type Ablations struct {
	Target float64
	HInter []AblationPoint
	EtaA   []AblationPoint
	Phi    []AblationPoint
}

// AblationPoint is one sweep setting and its outcome.
type AblationPoint struct {
	Value        float64
	TimeToTarget float64 // 0 = not reached
	Updates      int
	ServerBytes  int // server-server traffic, the cost of synchronizing
	Syncs        int // updates-triggered evaluations are not counted
}

// RunAblations executes all three sweeps on the MNIST task.
func RunAblations(scale float64, seed int64) (*Ablations, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	clients := int(100 * scale)
	if clients < 8 {
		clients = 8
	}
	const target = 0.92
	a := &Ablations{Target: target}

	run := func(mod func(h *fl.Hyper)) (AblationPoint, error) {
		hyper := fl.DefaultHyper(clients, 4)
		mod(&hyper)
		setup := Setup{
			Task:         TaskMNIST,
			NumServers:   4,
			NumClients:   clients,
			NonIIDLabels: 2,
			Seed:         seed,
			TargetAcc:    target,
			Horizon:      120,
			Hyper:        &hyper,
		}
		res, err := Run("spyker", setup)
		if err != nil {
			return AblationPoint{}, err
		}
		tt, ok := res.Trace.TimeToAcc(target)
		if !ok {
			tt = 0
		}
		upd, _ := res.Trace.UpdatesToAcc(target)
		return AblationPoint{
			TimeToTarget: tt,
			Updates:      upd,
			ServerBytes:  res.BytesServerServer,
		}, nil
	}

	base := fl.DefaultHyper(clients, 4)
	for _, v := range []float64{base.HInter / 4, base.HInter, base.HInter * 4, base.HInter * 16} {
		v := v
		p, err := run(func(h *fl.Hyper) { h.HInter = v })
		if err != nil {
			return nil, err
		}
		p.Value = v
		a.HInter = append(a.HInter, p)
	}
	for _, v := range []float64{0.15, 0.3, 0.6, 0.9} {
		v := v
		p, err := run(func(h *fl.Hyper) { h.EtaA = v })
		if err != nil {
			return nil, err
		}
		p.Value = v
		a.EtaA = append(a.EtaA, p)
	}
	for _, v := range []float64{0.5, 1.5, 3, 6} {
		v := v
		p, err := run(func(h *fl.Hyper) { h.Phi = v })
		if err != nil {
			return nil, err
		}
		p.Value = v
		a.Phi = append(a.Phi, p)
	}
	return a, nil
}

// Render prints the three sweep tables.
func (a *Ablations) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Spyker design-knob ablations (target %.0f%%%% accuracy) ===\n", 100*a.Target)
	render := func(name string, pts []AblationPoint) {
		fmt.Fprintf(&b, "\n-- %s sweep --\n%10s %12s %10s %14s\n",
			name, name, "t(target)", "updates", "srv-srv bytes")
		for _, p := range pts {
			tt := "(n/r)"
			if p.TimeToTarget > 0 {
				tt = fmt.Sprintf("%.2fs", p.TimeToTarget)
			}
			fmt.Fprintf(&b, "%10.3f %12s %10d %13.2fMB\n",
				p.Value, tt, p.Updates, float64(p.ServerBytes)/1e6)
		}
	}
	render("h_inter", a.HInter)
	render("eta_a", a.EtaA)
	render("phi", a.Phi)
	b.WriteString("\nexpected: small h_inter = frequent syncs = more server-server bytes;\n" +
		"too-large eta_a or too-small h_inter can slow convergence (paper Sec. 4.3).\n")
	return b.String()
}
