// Package paramvec makes the flat model-parameter vector — the unit every
// federated-learning exchange in this repository moves — a first-class,
// reusable piece of memory. It provides Vec, a view over a contiguous
// []float64 with the fused in-place kernels aggregation rules need, and
// Pool, a size-keyed sync.Pool-backed free-list so hot paths recycle
// buffers instead of allocating a model-sized slice per message.
//
// Every kernel works in place and panics on length mismatch, mirroring the
// internal/tensor conventions; none of them allocate.
package paramvec

import "math"

// Vec is a flat parameter (or gradient, or delta) vector. It is an alias
// view: converting a []float64 to Vec shares storage, so the kernels below
// mutate the underlying array directly.
type Vec []float64

// New allocates a zeroed vector of length n.
func New(n int) Vec { return make(Vec, n) }

// CopyFrom overwrites v with src. Lengths must match.
func (v Vec) CopyFrom(src []float64) {
	mustSameLen(len(v), len(src))
	copy(v, src)
}

// Zero sets every element to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// AxpyInto computes v += alpha*x, the classic saxpy accumulation.
//
//spyker:noalloc
func (v Vec) AxpyInto(alpha float64, x []float64) {
	mustSameLen(len(v), len(x))
	for i := range v {
		v[i] += alpha * x[i]
	}
}

// ScaleAdd computes v = alpha*v + beta*x in one fused pass.
func (v Vec) ScaleAdd(alpha float64, beta float64, x []float64) {
	mustSameLen(len(v), len(x))
	for i := range v {
		v[i] = alpha*v[i] + beta*x[i]
	}
}

// WeightedMergeInto moves v toward x by weight w: v += w*(x - v). This is
// the staleness-weighted client merge (Alg. 1) and the sigmoid-weighted
// server merge (Alg. 2) of the Spyker protocol, and the convex-combination
// step of every baseline aggregation rule. w=0 leaves v unchanged, w=1
// replaces v with x.
//
//spyker:noalloc
func (v Vec) WeightedMergeInto(w float64, x []float64) {
	mustSameLen(len(v), len(x))
	for i := range v {
		v[i] += w * (x[i] - v[i])
	}
}

// AddScaledDiff computes v += alpha*(x - y) without materializing the
// difference — the buffered-delta accumulation of FedBuff-style rules.
//
//spyker:noalloc
func (v Vec) AddScaledDiff(alpha float64, x, y []float64) {
	mustSameLen(len(v), len(x))
	mustSameLen(len(v), len(y))
	for i := range v {
		v[i] += alpha * (x[i] - y[i])
	}
}

// DiffInto computes v = x - y.
//
//spyker:noalloc
func (v Vec) DiffInto(x, y []float64) {
	mustSameLen(len(v), len(x))
	mustSameLen(len(v), len(y))
	for i := range v {
		v[i] = x[i] - y[i]
	}
}

// Dot returns the inner product of v and x — the projection kernel the
// contribution audit plane uses to compare update directions.
//
//spyker:noalloc
func (v Vec) Dot(x []float64) float64 {
	mustSameLen(len(v), len(x))
	var s float64
	for i := range v {
		s += v[i] * x[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of v.
func (v Vec) L2Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// ClipNorm rescales v in place so its L2 norm does not exceed max, and
// returns the pre-clip norm. max <= 0 disables clipping. The scale is
// applied only when the norm actually exceeds max, so vectors inside the
// ball are untouched bit-for-bit.
//
//spyker:noalloc
func (v Vec) ClipNorm(max float64) (norm float64) {
	norm = v.L2Norm()
	if max > 0 && norm > max {
		scale := max / norm
		for i := range v {
			v[i] *= scale
		}
	}
	return norm
}

func mustSameLen(a, b int) {
	if a != b {
		panic("paramvec: length mismatch")
	}
}
