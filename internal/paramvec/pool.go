package paramvec

import (
	"sync"
	"sync/atomic"
)

// GaugeSetter receives the current number of live (checked-out) vectors;
// obs.Gauge satisfies it. Declared locally so paramvec stays
// dependency-free.
type GaugeSetter interface{ Set(v float64) }

// CounterAdder receives recycle increments; obs.Counter satisfies it.
type CounterAdder interface{ Add(n int64) }

// Pool is a size-keyed free-list of parameter vectors backed by one
// sync.Pool per distinct length. Get returns a vector of exactly the
// requested length whose contents are UNSPECIFIED (callers must fully
// overwrite it — CopyFrom or Zero — before reading); Put recycles it.
//
// Ownership is strict: after Put, the caller must not touch the vector
// again, and a pooled buffer must never be reachable from two goroutines
// at once (the live runtime's race tests enforce this). The zero Pool is
// ready to use and safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	classes map[int]*sync.Pool //spyker:guardedby(mu)

	live     atomic.Int64 // vectors handed out and not yet returned
	recycled atomic.Int64 // Gets served from the free-list rather than fresh

	// instrumentation targets; set via Instrument, read atomically.
	gauge   atomic.Pointer[gaugeBox]
	counter atomic.Pointer[counterBox]
}

type gaugeBox struct{ g GaugeSetter }
type counterBox struct{ c CounterAdder }

// Instrument wires the pool's occupancy metrics into external gauges: live
// receives the checked-out vector count after every Get/Put, recycled is
// incremented whenever a Get is served from the free-list. Either may be
// nil. Safe to call while the pool is in use.
func (p *Pool) Instrument(live GaugeSetter, recycled CounterAdder) {
	if live != nil {
		p.gauge.Store(&gaugeBox{g: live})
	}
	if recycled != nil {
		p.counter.Store(&counterBox{c: recycled})
	}
}

func (p *Pool) class(n int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.classes == nil {
		p.classes = make(map[int]*sync.Pool)
	}
	sp, ok := p.classes[n]
	if !ok {
		sp = &sync.Pool{}
		p.classes[n] = sp
	}
	return sp
}

// Get returns a vector of length n with unspecified contents.
func (p *Pool) Get(n int) Vec {
	var v Vec
	if got := p.class(n).Get(); got != nil {
		v = *(got.(*Vec))
		p.recycled.Add(1)
		if cb := p.counter.Load(); cb != nil {
			cb.c.Add(1)
		}
	} else {
		v = make(Vec, n)
	}
	live := p.live.Add(1)
	if gb := p.gauge.Load(); gb != nil {
		gb.g.Set(float64(live))
	}
	return v
}

// Put returns v to the pool. v must have come from Get (any Pool instance
// works — classes are keyed purely by length) and must not be used
// afterwards. Putting a nil vector is a no-op.
func (p *Pool) Put(v Vec) {
	if v == nil {
		return
	}
	p.class(len(v)).Put(&v)
	live := p.live.Add(-1)
	if gb := p.gauge.Load(); gb != nil {
		gb.g.Set(float64(live))
	}
}

// Live reports the number of vectors currently checked out.
func (p *Pool) Live() int64 { return p.live.Load() }

// Recycled reports how many Gets were served from the free-list.
func (p *Pool) Recycled() int64 { return p.recycled.Load() }
