package paramvec

import (
	"math"
	"sync"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestKernels(t *testing.T) {
	v := Vec{1, 2, 3}
	v.AxpyInto(2, []float64{1, 1, 1})
	if v[0] != 3 || v[1] != 4 || v[2] != 5 {
		t.Fatalf("AxpyInto: %v", v)
	}

	v = Vec{1, 2, 3}
	v.ScaleAdd(2, 3, []float64{1, 0, 1})
	if v[0] != 5 || v[1] != 4 || v[2] != 9 {
		t.Fatalf("ScaleAdd: %v", v)
	}

	v = Vec{0, 0}
	v.WeightedMergeInto(0.25, []float64{4, 8})
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("WeightedMergeInto: %v", v)
	}
	v.WeightedMergeInto(1, []float64{7, 7})
	if v[0] != 7 || v[1] != 7 {
		t.Fatalf("WeightedMergeInto w=1 must replace: %v", v)
	}

	v = Vec{1, 1}
	v.AddScaledDiff(0.5, []float64{5, 3}, []float64{1, 1})
	if v[0] != 3 || v[1] != 2 {
		t.Fatalf("AddScaledDiff: %v", v)
	}

	v = Vec{0, 0}
	v.DiffInto([]float64{5, 1}, []float64{2, 4})
	if v[0] != 3 || v[1] != -3 {
		t.Fatalf("DiffInto: %v", v)
	}

	v = Vec{3, 4}
	if n := v.L2Norm(); !almost(n, 5) {
		t.Fatalf("L2Norm = %v", n)
	}

	v = Vec{9, 9}
	v.CopyFrom([]float64{1, 2})
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("CopyFrom: %v", v)
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("Zero: %v", v)
	}
}

func TestClipNorm(t *testing.T) {
	v := Vec{3, 4} // norm 5
	if n := v.ClipNorm(10); !almost(n, 5) || v[0] != 3 || v[1] != 4 {
		t.Fatalf("inside the ball must be untouched: norm=%v v=%v", n, v)
	}
	if n := v.ClipNorm(2.5); !almost(n, 5) {
		t.Fatalf("pre-clip norm = %v", n)
	}
	if got := v.L2Norm(); !almost(got, 2.5) {
		t.Fatalf("post-clip norm = %v", got)
	}
	v = Vec{3, 4}
	v.ClipNorm(0) // disabled
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("ClipNorm(0) must be a no-op: %v", v)
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1, 2}.AxpyInto(1, []float64{1})
}

func TestPoolRecycles(t *testing.T) {
	var p Pool
	v := p.Get(16)
	if len(v) != 16 {
		t.Fatalf("Get(16) len = %d", len(v))
	}
	if p.Live() != 1 {
		t.Fatalf("live = %d", p.Live())
	}
	v[0] = 42
	p.Put(v)
	if p.Live() != 0 {
		t.Fatalf("live after Put = %d", p.Live())
	}
	// sync.Pool may drop items (it always does so with some probability
	// under -race), so recycling is asserted over repeated round-trips.
	for i := 0; i < 100 && p.Recycled() == 0; i++ {
		p.Put(p.Get(16))
	}
	if p.Recycled() == 0 {
		t.Fatalf("no Get was ever served from the free-list")
	}
	// Different length -> different class, fresh allocation.
	u := p.Get(8)
	if len(u) != 8 {
		t.Fatalf("Get(8) len = %d", len(u))
	}
}

func TestPoolInstrument(t *testing.T) {
	var p Pool
	g := &fakeGauge{}
	c := &fakeCounter{}
	p.Instrument(g, c)
	v := p.Get(4)
	if g.last != 1 {
		t.Fatalf("gauge after Get = %v", g.last)
	}
	p.Put(v)
	if g.last != 0 {
		t.Fatalf("gauge after Put = %v", g.last)
	}
	for i := 0; i < 100 && c.total == 0; i++ {
		p.Put(p.Get(4))
	}
	if c.total == 0 {
		t.Fatalf("recycled counter never incremented")
	}
}

type fakeGauge struct {
	mu   sync.Mutex
	last float64
}

func (f *fakeGauge) Set(v float64) { f.mu.Lock(); f.last = v; f.mu.Unlock() }

type fakeCounter struct{ total int64 }

func (f *fakeCounter) Add(n int64) { f.total += n }

// TestPoolConcurrent hammers the pool from many goroutines; run under
// -race this verifies handed-out buffers are never shared.
func TestPoolConcurrent(t *testing.T) {
	var p Pool
	p.Instrument(&fakeGauge{}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := p.Get(256)
				for j := range v {
					v[j] = float64(id)
				}
				for j := range v {
					if v[j] != float64(id) {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				p.Put(v)
			}
		}(g)
	}
	wg.Wait()
	if p.Live() != 0 {
		t.Fatalf("live after drain = %d", p.Live())
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	var p Pool
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Put(p.Get(25000))
	}
}
