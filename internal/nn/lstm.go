package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// CharLM is a character-level language model: an embedding layer, a single
// LSTM layer, and a dense projection back to the vocabulary, matching the
// WikiText-2 model described in the paper (embedding -> LSTM -> fully
// connected over the character vocabulary). It trains with truncated
// backpropagation through time over fixed-length windows. For a deeper
// recurrent stack, see StackedCharLM.
type CharLM struct {
	vocab, embDim, hidden int

	// backing/gradBacking are the contiguous parameter and gradient
	// planes all blocks below alias, in paramBlocks order.
	backing     []float64
	gradBacking []float64

	emb *tensor.Matrix // vocab x embDim
	wx  *tensor.Matrix // 4H x embDim, gate order i,f,g,o
	wh  *tensor.Matrix // 4H x H
	bg  []float64      // 4H
	wy  *tensor.Matrix // vocab x H
	by  []float64

	gEmb *tensor.Matrix
	gWx  *tensor.Matrix
	gWh  *tensor.Matrix
	gBg  []float64
	gWy  *tensor.Matrix
	gBy  []float64

	// step caches, grown to the longest sequence seen
	steps []lstmStep
}

type lstmStep struct {
	x          []float64 // embedding input
	i, f, g, o []float64
	c, tc, h   []float64 // cell, tanh(cell), hidden
	probs      []float64
}

// NewCharLM builds a character LM for the given vocabulary size, embedding
// dimension and LSTM hidden size.
func NewCharLM(vocab, embDim, hidden int, rng *rand.Rand) *CharLM {
	h := hidden
	total := vocab*embDim + 4*h*embDim + 4*h*h + 4*h + vocab*h + vocab
	m := &CharLM{
		vocab: vocab, embDim: embDim, hidden: hidden,
		backing:     make([]float64, total),
		gradBacking: make([]float64, total),
	}
	// Carve every block out of the contiguous planes, in paramBlocks
	// order, so the flat layout matches Params() exactly.
	cur := &flatCursor{params: m.backing, grads: m.gradBacking}
	p, g := cur.claim(vocab * embDim)
	m.emb, m.gEmb = tensor.MatrixFrom(vocab, embDim, p), tensor.MatrixFrom(vocab, embDim, g)
	p, g = cur.claim(4 * h * embDim)
	m.wx, m.gWx = tensor.MatrixFrom(4*h, embDim, p), tensor.MatrixFrom(4*h, embDim, g)
	p, g = cur.claim(4 * h * h)
	m.wh, m.gWh = tensor.MatrixFrom(4*h, h, p), tensor.MatrixFrom(4*h, h, g)
	m.bg, m.gBg = cur.claim(4 * h)
	p, g = cur.claim(vocab * h)
	m.wy, m.gWy = tensor.MatrixFrom(vocab, h, p), tensor.MatrixFrom(vocab, h, g)
	m.by, m.gBy = cur.claim(vocab)
	cur.done()

	m.emb.XavierInit(rng, vocab, embDim)
	m.wx.XavierInit(rng, embDim, hidden)
	m.wh.XavierInit(rng, hidden, hidden)
	m.wy.XavierInit(rng, hidden, vocab)
	// Standard trick: bias the forget gate open so early training does not
	// immediately wipe the cell state.
	for i := m.hidden; i < 2*m.hidden; i++ {
		m.bg[i] = 1
	}
	return m
}

func (m *CharLM) paramBlocks() [][]float64 {
	return [][]float64{m.emb.Data, m.wx.Data, m.wh.Data, m.bg, m.wy.Data, m.by}
}

func (m *CharLM) gradBlocks() [][]float64 {
	return [][]float64{m.gEmb.Data, m.gWx.Data, m.gWh.Data, m.gBg, m.gWy.Data, m.gBy}
}

// NumParams returns the total trainable parameter count.
func (m *CharLM) NumParams() int { return len(m.backing) }

// Params returns a copy of all parameters as one flat vector.
func (m *CharLM) Params() []float64 {
	out := make([]float64, len(m.backing))
	copy(out, m.backing)
	return out
}

// ParamsView returns the live flat parameter vector — a zero-copy
// read-only borrow of the contiguous backing plane. Callers must not
// modify it and must copy whatever they retain across a training step.
func (m *CharLM) ParamsView() []float64 { return m.backing }

// SetParams loads a flat parameter vector produced by Params.
func (m *CharLM) SetParams(p []float64) {
	if len(p) != len(m.backing) {
		panic(fmt.Sprintf("nn: CharLM.SetParams length %d != %d", len(p), len(m.backing)))
	}
	copy(m.backing, p)
}

// Grads returns a copy of the accumulated gradients flattened the same way
// as Params; primarily for gradient-checking tests.
func (m *CharLM) Grads() []float64 {
	out := make([]float64, len(m.gradBacking))
	copy(out, m.gradBacking)
	return out
}

func (m *CharLM) ensureSteps(n int) {
	for len(m.steps) < n {
		h := m.hidden
		m.steps = append(m.steps, lstmStep{
			x: make([]float64, m.embDim),
			i: make([]float64, h), f: make([]float64, h),
			g: make([]float64, h), o: make([]float64, h),
			c: make([]float64, h), tc: make([]float64, h), h: make([]float64, h),
			probs: make([]float64, m.vocab),
		})
	}
}

// SeqLossAndGrad runs truncated BPTT over seq (a window of character ids),
// predicting seq[t+1] from seq[0..t], accumulates gradients, and returns
// the total cross-entropy loss and the number of predictions made.
// Sequences shorter than 2 characters contribute nothing.
func (m *CharLM) SeqLossAndGrad(seq []int) (loss float64, preds int) {
	T := len(seq) - 1
	if T < 1 {
		return 0, 0
	}
	m.ensureSteps(T)
	h := m.hidden

	hPrev := make([]float64, h)
	cPrev := make([]float64, h)
	z := make([]float64, 4*h)
	zh := make([]float64, 4*h)
	logits := make([]float64, m.vocab)

	// Forward.
	for t := 0; t < T; t++ {
		st := &m.steps[t]
		copy(st.x, m.emb.Row(seq[t]))
		m.wx.MatVec(z, st.x)
		m.wh.MatVec(zh, hPrev)
		for j := range z {
			z[j] += zh[j] + m.bg[j]
		}
		for j := 0; j < h; j++ {
			st.i[j] = sigmoid(z[j])
			st.f[j] = sigmoid(z[h+j])
			st.g[j] = tanh(z[2*h+j])
			st.o[j] = sigmoid(z[3*h+j])
			st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
			st.tc[j] = tanh(st.c[j])
			st.h[j] = st.o[j] * st.tc[j]
		}
		m.wy.MatVec(logits, st.h)
		tensor.AddInPlace(logits, m.by)
		tensor.SoftmaxTo(st.probs, logits)
		loss += -math.Log(math.Max(st.probs[seq[t+1]], 1e-12))
		hPrev, cPrev = st.h, st.c
	}

	// Backward through time.
	dh := make([]float64, h)
	dc := make([]float64, h)
	dz := make([]float64, 4*h)
	dhRec := make([]float64, h)
	dLogits := make([]float64, m.vocab)
	dx := make([]float64, m.embDim)
	for t := T - 1; t >= 0; t-- {
		st := &m.steps[t]
		copy(dLogits, st.probs)
		dLogits[seq[t+1]] -= 1
		m.gWy.AddOuter(1, dLogits, st.h)
		tensor.AddInPlace(m.gBy, dLogits)
		m.wy.MatVecT(dhRec, dLogits)
		for j := 0; j < h; j++ {
			dh[j] += dhRec[j]
		}

		var hp, cp []float64
		if t > 0 {
			hp, cp = m.steps[t-1].h, m.steps[t-1].c
		} else {
			hp, cp = make([]float64, h), make([]float64, h)
		}
		for j := 0; j < h; j++ {
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tc[j]*st.tc[j])
			doj := dh[j] * st.tc[j]
			dij := dcj * st.g[j]
			dfj := dcj * cp[j]
			dgj := dcj * st.i[j]
			dz[j] = dij * st.i[j] * (1 - st.i[j])
			dz[h+j] = dfj * st.f[j] * (1 - st.f[j])
			dz[2*h+j] = dgj * (1 - st.g[j]*st.g[j])
			dz[3*h+j] = doj * st.o[j] * (1 - st.o[j])
			dc[j] = dcj * st.f[j]
		}
		m.gWx.AddOuter(1, dz, st.x)
		m.gWh.AddOuter(1, dz, hp)
		tensor.AddInPlace(m.gBg, dz)

		m.wh.MatVecT(dh, dz) // dh for t-1
		m.wx.MatVecT(dx, dz)
		tensor.AddInPlace(m.gEmb.Row(seq[t]), dx)
	}
	return loss, T
}

// Step applies accumulated gradients with SGD, scaling by 1/count and
// clipping each coordinate to [-clip, clip] (clip <= 0 disables clipping),
// then zeroes the gradients.
func (m *CharLM) Step(lr float64, count int, clip float64) {
	if count <= 0 {
		panic("nn: CharLM.Step with non-positive count")
	}
	scale := 1 / float64(count)
	sgdStepFlat(m.backing, m.gradBacking, lr, scale, clip)
}

// SeqLoss evaluates the model on seq without touching gradients, returning
// the summed cross-entropy, the number of predictions, and the number of
// correct next-character argmax predictions.
func (m *CharLM) SeqLoss(seq []int) (loss float64, preds, correct int) {
	T := len(seq) - 1
	if T < 1 {
		return 0, 0, 0
	}
	h := m.hidden
	hPrev := make([]float64, h)
	cPrev := make([]float64, h)
	hCur := make([]float64, h)
	cCur := make([]float64, h)
	z := make([]float64, 4*h)
	zh := make([]float64, 4*h)
	logits := make([]float64, m.vocab)
	probs := make([]float64, m.vocab)
	x := make([]float64, m.embDim)

	for t := 0; t < T; t++ {
		copy(x, m.emb.Row(seq[t]))
		m.wx.MatVec(z, x)
		m.wh.MatVec(zh, hPrev)
		for j := range z {
			z[j] += zh[j] + m.bg[j]
		}
		for j := 0; j < h; j++ {
			ig := sigmoid(z[j])
			fg := sigmoid(z[h+j])
			gg := tanh(z[2*h+j])
			og := sigmoid(z[3*h+j])
			cCur[j] = fg*cPrev[j] + ig*gg
			hCur[j] = og * tanh(cCur[j])
		}
		m.wy.MatVec(logits, hCur)
		tensor.AddInPlace(logits, m.by)
		tensor.SoftmaxTo(probs, logits)
		loss += -math.Log(math.Max(probs[seq[t+1]], 1e-12))
		if tensor.ArgMax(probs) == seq[t+1] {
			correct++
		}
		hPrev, hCur = hCur, hPrev
		cPrev, cCur = cCur, cPrev
	}
	return loss, T, correct
}

// Vocab returns the vocabulary size the model was built for.
func (m *CharLM) Vocab() int { return m.vocab }

// String describes the architecture.
func (m *CharLM) String() string {
	return fmt.Sprintf("CharLM(vocab=%d, emb=%d, hidden=%d, params=%d)",
		m.vocab, m.embDim, m.hidden, m.NumParams())
}
