package nn

import (
	"fmt"
	"math"
)

// Optimizer applies accumulated gradients to parameters. The Network and
// CharLM Step methods implement plain SGD inline; these optimizers offer
// the classic alternatives for local training studies (momentum, Adam)
// behind one interface operating on flat vectors.
type Optimizer interface {
	// Apply performs one update step: params -= f(grads). grads are
	// consumed (zeroed) by the call. Both slices must keep the same
	// length across calls.
	Apply(params, grads []float64)
	// Reset clears any internal state (moment estimates).
	Reset()
}

// SGD is plain stochastic gradient descent with optional gradient
// clipping (per coordinate; Clip <= 0 disables).
type SGD struct {
	LR   float64
	Clip float64
}

var _ Optimizer = (*SGD)(nil)

// Apply implements Optimizer.
func (o *SGD) Apply(params, grads []float64) {
	checkLens(len(params), len(grads))
	for i, g := range grads {
		if o.Clip > 0 {
			g = clipVal(g, o.Clip)
		}
		params[i] -= o.LR * g
		grads[i] = 0
	}
}

// Reset implements Optimizer (SGD is stateless).
func (o *SGD) Reset() {}

// Momentum is SGD with classical momentum: v = mu*v + g; p -= lr*v.
type Momentum struct {
	LR   float64
	Mu   float64 // momentum coefficient, typically 0.9
	Clip float64

	velocity []float64
}

var _ Optimizer = (*Momentum)(nil)

// Apply implements Optimizer.
func (o *Momentum) Apply(params, grads []float64) {
	checkLens(len(params), len(grads))
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	checkLens(len(o.velocity), len(params))
	for i, g := range grads {
		if o.Clip > 0 {
			g = clipVal(g, o.Clip)
		}
		o.velocity[i] = o.Mu*o.velocity[i] + g
		params[i] -= o.LR * o.velocity[i]
		grads[i] = 0
	}
}

// Reset implements Optimizer.
func (o *Momentum) Reset() { o.velocity = nil }

// Adam implements Kingma & Ba (2015) with bias correction.
type Adam struct {
	LR    float64 // typically 1e-3
	Beta1 float64 // 0 selects the default 0.9
	Beta2 float64 // 0 selects the default 0.999
	Eps   float64 // 0 selects the default 1e-8

	m, v []float64
	t    int
}

var _ Optimizer = (*Adam)(nil)

// Apply implements Optimizer.
func (o *Adam) Apply(params, grads []float64) {
	checkLens(len(params), len(grads))
	b1, b2, eps := o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = make([]float64, len(params))
		o.v = make([]float64, len(params))
	}
	checkLens(len(o.m), len(params))
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	for i, g := range grads {
		o.m[i] = b1*o.m[i] + (1-b1)*g
		o.v[i] = b2*o.v[i] + (1-b2)*g*g
		mHat := o.m[i] / c1
		vHat := o.v[i] / c2
		params[i] -= o.LR * mHat / (math.Sqrt(vHat) + eps)
		grads[i] = 0
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.m, o.v, o.t = nil, nil, 0
}

// StepWith applies the accumulated network gradients with an arbitrary
// optimizer instead of the built-in SGD: gradients are flattened, scaled
// by 1/batchSize, passed through opt, and the resulting parameters loaded
// back.
func (n *Network) StepWith(opt Optimizer, batchSize int) {
	if batchSize <= 0 {
		panic("nn: StepWith with non-positive batch size")
	}
	scale := 1 / float64(batchSize)
	if n.backing != nil {
		// Contiguous planes: apply directly, no export/import round trip.
		// Apply consumes (zeroes) the gradients, so no ZeroGrads needed.
		for i := range n.gradBacking {
			n.gradBacking[i] *= scale
		}
		opt.Apply(n.backing, n.gradBacking)
		return
	}
	params := n.Params()
	grads := n.Grads()
	for i := range grads {
		grads[i] *= scale
	}
	opt.Apply(params, grads)
	n.SetParams(params)
	n.ZeroGrads()
}

func clipVal(g, clip float64) float64 {
	if g > clip {
		return clip
	}
	if g < -clip {
		return -clip
	}
	return g
}

func checkLens(a, b int) {
	if a != b {
		panic(fmt.Sprintf("nn: optimizer length mismatch %d != %d", a, b))
	}
}
