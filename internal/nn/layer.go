// Package nn is a small, dependency-free neural-network library built for
// the federated-learning experiments in this repository. It provides dense,
// convolutional, pooling, embedding and LSTM layers with explicit
// backpropagation, plain SGD, and — crucially for federated learning — the
// ability to flatten any model into a single []float64 parameter vector and
// load one back.
//
// The library trades raw performance for clarity: all kernels are naive
// loops, which is more than enough for the laptop-scale emulations used in
// the paper's evaluation.
package nn

import (
	"math/rand"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// Layer is one differentiable stage of a feed-forward network. Forward and
// Backward are stateful: Backward must be called with the gradient of the
// loss with respect to the output of the immediately preceding Forward
// call, and it accumulates parameter gradients internally until Step or
// ZeroGrads is invoked by the owning network.
type Layer interface {
	// Forward computes the layer output for input x. The returned slice
	// is owned by the layer and is overwritten by the next call.
	Forward(x []float64) []float64
	// Backward takes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients as a side effect.
	Backward(dy []float64) []float64
	// ParamBlocks returns the layer's parameter storage blocks (possibly
	// empty). The slices alias live storage.
	ParamBlocks() [][]float64
	// GradBlocks returns gradient storage matching ParamBlocks.
	GradBlocks() [][]float64
	// OutSize reports the length of the Forward output vector.
	OutSize() int
}

// Dense is a fully connected layer computing y = W*x + b.
type Dense struct {
	in, out int
	w       *tensor.Matrix
	b       []float64
	gw      *tensor.Matrix
	gb      []float64

	lastX []float64
	outV  []float64
	dx    []float64
}

// NewDense creates a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		in:  in,
		out: out,
		w:   tensor.NewMatrix(out, in),
		b:   make([]float64, out),
		gw:  tensor.NewMatrix(out, in),
		gb:  make([]float64, out),

		lastX: make([]float64, in),
		outV:  make([]float64, out),
		dx:    make([]float64, in),
	}
	d.w.XavierInit(rng, in, out)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	copy(d.lastX, x)
	d.w.MatVec(d.outV, x)
	tensor.AddInPlace(d.outV, d.b)
	return d.outV
}

// Backward implements Layer.
func (d *Dense) Backward(dy []float64) []float64 {
	d.gw.AddOuter(1, dy, d.lastX)
	tensor.AddInPlace(d.gb, dy)
	d.w.MatVecT(d.dx, dy)
	return d.dx
}

// rebind implements rebinder: weight and bias storage move into the
// network-owned contiguous planes.
func (d *Dense) rebind(claim func(int) ([]float64, []float64)) {
	d.w.Data, d.gw.Data = adopt(claim, d.w.Data, d.gw.Data)
	d.b, d.gb = adopt(claim, d.b, d.gb)
}

// ParamBlocks implements Layer.
func (d *Dense) ParamBlocks() [][]float64 { return [][]float64{d.w.Data, d.b} }

// GradBlocks implements Layer.
func (d *Dense) GradBlocks() [][]float64 { return [][]float64{d.gw.Data, d.gb} }

// OutSize implements Layer.
func (d *Dense) OutSize() int { return d.out }

// ReLU is the rectified-linear activation.
type ReLU struct {
	size int
	outV []float64
	dx   []float64
}

// NewReLU creates a ReLU over vectors of the given size.
func NewReLU(size int) *ReLU {
	return &ReLU{size: size, outV: make([]float64, size), dx: make([]float64, size)}
}

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	for i, v := range x {
		if v > 0 {
			r.outV[i] = v
		} else {
			r.outV[i] = 0
		}
	}
	return r.outV
}

// Backward implements Layer.
func (r *ReLU) Backward(dy []float64) []float64 {
	for i, v := range r.outV {
		if v > 0 {
			r.dx[i] = dy[i]
		} else {
			r.dx[i] = 0
		}
	}
	return r.dx
}

// ParamBlocks implements Layer.
func (r *ReLU) ParamBlocks() [][]float64 { return nil }

// GradBlocks implements Layer.
func (r *ReLU) GradBlocks() [][]float64 { return nil }

// OutSize implements Layer.
func (r *ReLU) OutSize() int { return r.size }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	size int
	outV []float64
	dx   []float64
}

// NewTanh creates a Tanh over vectors of the given size.
func NewTanh(size int) *Tanh {
	return &Tanh{size: size, outV: make([]float64, size), dx: make([]float64, size)}
}

// Forward implements Layer.
func (t *Tanh) Forward(x []float64) []float64 {
	for i, v := range x {
		t.outV[i] = tanh(v)
	}
	return t.outV
}

// Backward implements Layer.
func (t *Tanh) Backward(dy []float64) []float64 {
	for i, y := range t.outV {
		t.dx[i] = dy[i] * (1 - y*y)
	}
	return t.dx
}

// ParamBlocks implements Layer.
func (t *Tanh) ParamBlocks() [][]float64 { return nil }

// GradBlocks implements Layer.
func (t *Tanh) GradBlocks() [][]float64 { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize() int { return t.size }
