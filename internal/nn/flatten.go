package nn

import "fmt"

// flattenLen returns the total length of all blocks.
func flattenLen(blocks [][]float64) int {
	n := 0
	for _, b := range blocks {
		n += len(b)
	}
	return n
}

// flattenCopy concatenates all blocks into a fresh vector.
func flattenCopy(blocks [][]float64) []float64 {
	out := make([]float64, flattenLen(blocks))
	i := 0
	for _, b := range blocks {
		i += copy(out[i:], b)
	}
	return out
}

// unflattenInto scatters src back into blocks; src must have exactly the
// flattened length.
func unflattenInto(blocks [][]float64, src []float64) {
	want := flattenLen(blocks)
	if len(src) != want {
		panic(fmt.Sprintf("nn: unflatten length %d != %d", len(src), want))
	}
	i := 0
	for _, b := range blocks {
		i += copy(b, src[i:i+len(b)])
	}
}

// flatCursor hands out successive non-overlapping (param, grad) view pairs
// of two contiguous backing arrays. Models built over one cursor therefore
// store every parameter block inside a single []float64, which is what
// lets Params become a single copy and ParamsView a zero-copy borrow. The
// full-slice expressions keep an append on one view from bleeding into the
// next block.
type flatCursor struct {
	params, grads []float64
	off           int
}

func (c *flatCursor) claim(n int) (p, g []float64) {
	p = c.params[c.off : c.off+n : c.off+n]
	g = c.grads[c.off : c.off+n : c.off+n]
	c.off += n
	return p, g
}

// done asserts the cursor consumed its backing exactly.
func (c *flatCursor) done() {
	if c.off != len(c.params) {
		panic(fmt.Sprintf("nn: flat layout claimed %d of %d params", c.off, len(c.params)))
	}
}
