package nn

import "fmt"

// flattenLen returns the total length of all blocks.
func flattenLen(blocks [][]float64) int {
	n := 0
	for _, b := range blocks {
		n += len(b)
	}
	return n
}

// flattenCopy concatenates all blocks into a fresh vector.
func flattenCopy(blocks [][]float64) []float64 {
	out := make([]float64, flattenLen(blocks))
	i := 0
	for _, b := range blocks {
		i += copy(out[i:], b)
	}
	return out
}

// unflattenInto scatters src back into blocks; src must have exactly the
// flattened length.
func unflattenInto(blocks [][]float64, src []float64) {
	want := flattenLen(blocks)
	if len(src) != want {
		panic(fmt.Sprintf("nn: unflatten length %d != %d", len(src), want))
	}
	i := 0
	for _, b := range blocks {
		i += copy(b, src[i:i+len(b)])
	}
}
