package nn

import (
	"fmt"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// Dropout randomly zeroes a fraction of activations during training and
// scales the survivors by 1/(1-rate) (inverted dropout), so inference
// needs no rescaling. Call SetTraining(false) for evaluation.
type Dropout struct {
	size     int
	rate     float64
	training bool
	rng      *rand.Rand

	mask []bool
	outV []float64
	dx   []float64
}

// NewDropout creates a dropout layer. rate must lie in [0, 1).
func NewDropout(size int, rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{
		size: size, rate: rate, training: true, rng: rng,
		mask: make([]bool, size),
		outV: make([]float64, size),
		dx:   make([]float64, size),
	}
}

// SetTraining toggles between training (random masking) and inference
// (identity) behavior.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward implements Layer.
func (d *Dropout) Forward(x []float64) []float64 {
	if !d.training || d.rate == 0 {
		copy(d.outV, x)
		for i := range d.mask {
			d.mask[i] = true
		}
		return d.outV
	}
	scale := 1 / (1 - d.rate)
	for i, v := range x {
		if d.rng.Float64() < d.rate {
			d.mask[i] = false
			d.outV[i] = 0
		} else {
			d.mask[i] = true
			d.outV[i] = v * scale
		}
	}
	return d.outV
}

// Backward implements Layer.
func (d *Dropout) Backward(dy []float64) []float64 {
	scale := 1.0
	if d.training && d.rate > 0 {
		scale = 1 / (1 - d.rate)
	}
	for i := range dy {
		if d.mask[i] {
			d.dx[i] = dy[i] * scale
		} else {
			d.dx[i] = 0
		}
	}
	return d.dx
}

// ParamBlocks implements Layer.
func (d *Dropout) ParamBlocks() [][]float64 { return nil }

// GradBlocks implements Layer.
func (d *Dropout) GradBlocks() [][]float64 { return nil }

// OutSize implements Layer.
func (d *Dropout) OutSize() int { return d.size }

// AvgPool2D is a non-overlapping 2x2 average-pooling layer over CHW
// input. Input height and width must be even.
type AvgPool2D struct {
	ch, inH, inW int
	outH, outW   int

	outV []float64
	dx   []float64
}

// NewAvgPool2D creates a 2x2 average pool over (ch,inH,inW) feature maps.
func NewAvgPool2D(ch, inH, inW int) *AvgPool2D {
	if inH%2 != 0 || inW%2 != 0 {
		panic(fmt.Sprintf("nn: AvgPool2D input %dx%d not even", inH, inW))
	}
	outH, outW := inH/2, inW/2
	return &AvgPool2D{
		ch: ch, inH: inH, inW: inW, outH: outH, outW: outW,
		outV: make([]float64, ch*outH*outW),
		dx:   make([]float64, ch*inH*inW),
	}
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x []float64) []float64 {
	for c := 0; c < p.ch; c++ {
		for oy := 0; oy < p.outH; oy++ {
			for ox := 0; ox < p.outW; ox++ {
				base := c*p.inH*p.inW + 2*oy*p.inW + 2*ox
				sum := x[base] + x[base+1] + x[base+p.inW] + x[base+p.inW+1]
				p.outV[c*p.outH*p.outW+oy*p.outW+ox] = sum / 4
			}
		}
	}
	return p.outV
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(dy []float64) []float64 {
	tensor.Zero(p.dx)
	for c := 0; c < p.ch; c++ {
		for oy := 0; oy < p.outH; oy++ {
			for ox := 0; ox < p.outW; ox++ {
				g := dy[c*p.outH*p.outW+oy*p.outW+ox] / 4
				base := c*p.inH*p.inW + 2*oy*p.inW + 2*ox
				p.dx[base] += g
				p.dx[base+1] += g
				p.dx[base+p.inW] += g
				p.dx[base+p.inW+1] += g
			}
		}
	}
	return p.dx
}

// ParamBlocks implements Layer.
func (p *AvgPool2D) ParamBlocks() [][]float64 { return nil }

// GradBlocks implements Layer.
func (p *AvgPool2D) GradBlocks() [][]float64 { return nil }

// OutSize implements Layer.
func (p *AvgPool2D) OutSize() int { return p.ch * p.outH * p.outW }

// OutShape reports the (channels, height, width) of the pooled output.
func (p *AvgPool2D) OutShape() (ch, h, w int) { return p.ch, p.outH, p.outW }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	size int
	outV []float64
	dx   []float64
}

// NewSigmoid creates a Sigmoid over vectors of the given size.
func NewSigmoid(size int) *Sigmoid {
	return &Sigmoid{size: size, outV: make([]float64, size), dx: make([]float64, size)}
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x []float64) []float64 {
	for i, v := range x {
		s.outV[i] = sigmoid(v)
	}
	return s.outV
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dy []float64) []float64 {
	for i, y := range s.outV {
		s.dx[i] = dy[i] * y * (1 - y)
	}
	return s.dx
}

// ParamBlocks implements Layer.
func (s *Sigmoid) ParamBlocks() [][]float64 { return nil }

// GradBlocks implements Layer.
func (s *Sigmoid) GradBlocks() [][]float64 { return nil }

// OutSize implements Layer.
func (s *Sigmoid) OutSize() int { return s.size }
