package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// lstmLayer is one reusable LSTM layer operating on whole sequences. It
// caches its activations during forward so backward can run truncated
// BPTT; a layer instance is therefore not safe for concurrent use.
type lstmLayer struct {
	in, hidden int

	wx *tensor.Matrix // 4H x in, gate order i,f,g,o
	wh *tensor.Matrix // 4H x H
	bg []float64      // 4H

	gWx *tensor.Matrix
	gWh *tensor.Matrix
	gBg []float64

	// per-timestep caches, re-sliced per sequence
	xs, is, fs, gs, os, cs, tcs, hs [][]float64
}

// lstmParamCount is the flat parameter count of one LSTM layer.
func lstmParamCount(in, hidden int) int {
	return 4*hidden*in + 4*hidden*hidden + 4*hidden
}

// newLSTMLayer carves the layer's blocks out of the owning model's
// contiguous planes via cur, in paramBlocks order.
func newLSTMLayer(in, hidden int, rng *rand.Rand, cur *flatCursor) *lstmLayer {
	l := &lstmLayer{in: in, hidden: hidden}
	p, g := cur.claim(4 * hidden * in)
	l.wx, l.gWx = tensor.MatrixFrom(4*hidden, in, p), tensor.MatrixFrom(4*hidden, in, g)
	p, g = cur.claim(4 * hidden * hidden)
	l.wh, l.gWh = tensor.MatrixFrom(4*hidden, hidden, p), tensor.MatrixFrom(4*hidden, hidden, g)
	l.bg, l.gBg = cur.claim(4 * hidden)
	l.wx.XavierInit(rng, in, hidden)
	l.wh.XavierInit(rng, hidden, hidden)
	for i := hidden; i < 2*hidden; i++ {
		l.bg[i] = 1 // forget-gate bias open
	}
	return l
}

func (l *lstmLayer) paramBlocks() [][]float64 {
	return [][]float64{l.wx.Data, l.wh.Data, l.bg}
}

func (l *lstmLayer) gradBlocks() [][]float64 {
	return [][]float64{l.gWx.Data, l.gWh.Data, l.gBg}
}

func (l *lstmLayer) ensure(T int) {
	grow := func(buf *[][]float64, dim int) {
		for len(*buf) < T {
			*buf = append(*buf, make([]float64, dim))
		}
	}
	grow(&l.xs, l.in)
	h := l.hidden
	for _, buf := range []*[][]float64{&l.is, &l.fs, &l.gs, &l.os, &l.cs, &l.tcs, &l.hs} {
		grow(buf, h)
	}
}

// forward consumes the input sequence and returns the hidden-state
// sequence (aliased caches, valid until the next forward call).
func (l *lstmLayer) forward(xs [][]float64) [][]float64 {
	T := len(xs)
	l.ensure(T)
	h := l.hidden
	hPrev := make([]float64, h)
	cPrev := make([]float64, h)
	z := make([]float64, 4*h)
	zh := make([]float64, 4*h)
	for t := 0; t < T; t++ {
		copy(l.xs[t], xs[t])
		l.wx.MatVec(z, xs[t])
		l.wh.MatVec(zh, hPrev)
		for j := range z {
			z[j] += zh[j] + l.bg[j]
		}
		for j := 0; j < h; j++ {
			l.is[t][j] = sigmoid(z[j])
			l.fs[t][j] = sigmoid(z[h+j])
			l.gs[t][j] = tanh(z[2*h+j])
			l.os[t][j] = sigmoid(z[3*h+j])
			l.cs[t][j] = l.fs[t][j]*cPrev[j] + l.is[t][j]*l.gs[t][j]
			l.tcs[t][j] = tanh(l.cs[t][j])
			l.hs[t][j] = l.os[t][j] * l.tcs[t][j]
		}
		hPrev, cPrev = l.hs[t], l.cs[t]
	}
	return l.hs[:T]
}

// backward takes dL/dh per timestep, accumulates parameter gradients, and
// returns dL/dx per timestep.
func (l *lstmLayer) backward(dhs [][]float64) [][]float64 {
	T := len(dhs)
	h := l.hidden
	dxs := make([][]float64, T)
	dh := make([]float64, h)
	dc := make([]float64, h)
	dz := make([]float64, 4*h)
	zero := make([]float64, h)
	for t := T - 1; t >= 0; t-- {
		for j := 0; j < h; j++ {
			dh[j] += dhs[t][j]
		}
		hp, cp := zero, zero
		if t > 0 {
			hp, cp = l.hs[t-1], l.cs[t-1]
		}
		for j := 0; j < h; j++ {
			dcj := dc[j] + dh[j]*l.os[t][j]*(1-l.tcs[t][j]*l.tcs[t][j])
			doj := dh[j] * l.tcs[t][j]
			dij := dcj * l.gs[t][j]
			dfj := dcj * cp[j]
			dgj := dcj * l.is[t][j]
			dz[j] = dij * l.is[t][j] * (1 - l.is[t][j])
			dz[h+j] = dfj * l.fs[t][j] * (1 - l.fs[t][j])
			dz[2*h+j] = dgj * (1 - l.gs[t][j]*l.gs[t][j])
			dz[3*h+j] = doj * l.os[t][j] * (1 - l.os[t][j])
			dc[j] = dcj * l.fs[t][j]
		}
		l.gWx.AddOuter(1, dz, l.xs[t])
		l.gWh.AddOuter(1, dz, hp)
		tensor.AddInPlace(l.gBg, dz)

		dx := make([]float64, l.in)
		l.wx.MatVecT(dx, dz)
		dxs[t] = dx
		l.wh.MatVecT(dh, dz)
	}
	return dxs
}

// StackedCharLM is a character LM with a configurable number of LSTM
// layers between the embedding and the output projection — the deeper
// variant of CharLM for tasks where one recurrent layer underfits.
type StackedCharLM struct {
	vocab, embDim, hidden int

	// backing/gradBacking are the contiguous parameter and gradient
	// planes all blocks below alias, in paramBlocks order.
	backing     []float64
	gradBacking []float64

	emb    *tensor.Matrix
	layers []*lstmLayer
	wy     *tensor.Matrix
	by     []float64

	gEmb *tensor.Matrix
	gWy  *tensor.Matrix
	gBy  []float64
}

// NewStackedCharLM builds a character LM with the given number of LSTM
// layers (>= 1).
func NewStackedCharLM(vocab, embDim, hidden, numLayers int, rng *rand.Rand) *StackedCharLM {
	if numLayers < 1 {
		panic(fmt.Sprintf("nn: StackedCharLM with %d layers", numLayers))
	}
	total := vocab*embDim + vocab*hidden + vocab
	in := embDim
	for i := 0; i < numLayers; i++ {
		total += lstmParamCount(in, hidden)
		in = hidden
	}
	m := &StackedCharLM{
		vocab: vocab, embDim: embDim, hidden: hidden,
		backing:     make([]float64, total),
		gradBacking: make([]float64, total),
	}
	// Carve blocks out of the planes in paramBlocks order: embedding,
	// then each LSTM layer, then the output projection.
	cur := &flatCursor{params: m.backing, grads: m.gradBacking}
	p, g := cur.claim(vocab * embDim)
	m.emb, m.gEmb = tensor.MatrixFrom(vocab, embDim, p), tensor.MatrixFrom(vocab, embDim, g)
	in = embDim
	for i := 0; i < numLayers; i++ {
		m.layers = append(m.layers, newLSTMLayer(in, hidden, rng, cur))
		in = hidden
	}
	p, g = cur.claim(vocab * hidden)
	m.wy, m.gWy = tensor.MatrixFrom(vocab, hidden, p), tensor.MatrixFrom(vocab, hidden, g)
	m.by, m.gBy = cur.claim(vocab)
	cur.done()
	m.emb.XavierInit(rng, vocab, embDim)
	m.wy.XavierInit(rng, hidden, vocab)
	return m
}

func (m *StackedCharLM) paramBlocks() [][]float64 {
	blocks := [][]float64{m.emb.Data}
	for _, l := range m.layers {
		blocks = append(blocks, l.paramBlocks()...)
	}
	return append(blocks, m.wy.Data, m.by)
}

func (m *StackedCharLM) gradBlocks() [][]float64 {
	blocks := [][]float64{m.gEmb.Data}
	for _, l := range m.layers {
		blocks = append(blocks, l.gradBlocks()...)
	}
	return append(blocks, m.gWy.Data, m.gBy)
}

// NumParams returns the total trainable parameter count.
func (m *StackedCharLM) NumParams() int { return flattenLen(m.paramBlocks()) }

// Params returns a copy of all parameters as one flat vector.
func (m *StackedCharLM) Params() []float64 {
	out := make([]float64, len(m.backing))
	copy(out, m.backing)
	return out
}

// ParamsView returns the live flat parameter vector — a zero-copy
// read-only borrow of the contiguous backing plane.
func (m *StackedCharLM) ParamsView() []float64 { return m.backing }

// SetParams loads a flat parameter vector produced by Params.
func (m *StackedCharLM) SetParams(p []float64) {
	if len(p) != len(m.backing) {
		panic(fmt.Sprintf("nn: StackedCharLM.SetParams length %d != %d", len(p), len(m.backing)))
	}
	copy(m.backing, p)
}

// Grads returns a copy of the accumulated gradients, flattened like
// Params.
func (m *StackedCharLM) Grads() []float64 {
	out := make([]float64, len(m.gradBacking))
	copy(out, m.gradBacking)
	return out
}

// NumLayers reports the LSTM stack depth.
func (m *StackedCharLM) NumLayers() int { return len(m.layers) }

// SeqLossAndGrad runs truncated BPTT over seq, accumulating gradients,
// and returns the total cross-entropy and the number of predictions.
func (m *StackedCharLM) SeqLossAndGrad(seq []int) (loss float64, preds int) {
	T := len(seq) - 1
	if T < 1 {
		return 0, 0
	}
	// Embedding lookups.
	xs := make([][]float64, T)
	for t := 0; t < T; t++ {
		xs[t] = m.emb.Row(seq[t])
	}
	// LSTM stack.
	hs := xs
	for _, l := range m.layers {
		hs = l.forward(hs)
	}
	// Output layer + loss, collecting dL/dh for the top layer.
	logits := make([]float64, m.vocab)
	probs := make([]float64, m.vocab)
	dLogits := make([]float64, m.vocab)
	dhs := make([][]float64, T)
	for t := 0; t < T; t++ {
		m.wy.MatVec(logits, hs[t])
		tensor.AddInPlace(logits, m.by)
		tensor.SoftmaxTo(probs, logits)
		loss += -math.Log(math.Max(probs[seq[t+1]], 1e-12))
		copy(dLogits, probs)
		dLogits[seq[t+1]] -= 1
		m.gWy.AddOuter(1, dLogits, hs[t])
		tensor.AddInPlace(m.gBy, dLogits)
		dh := make([]float64, m.hidden)
		m.wy.MatVecT(dh, dLogits)
		dhs[t] = dh
	}
	// Backward through the stack.
	for li := len(m.layers) - 1; li >= 0; li-- {
		dhs = m.layers[li].backward(dhs)
	}
	// Embedding gradients.
	for t := 0; t < T; t++ {
		tensor.AddInPlace(m.gEmb.Row(seq[t]), dhs[t])
	}
	return loss, T
}

// SeqLoss evaluates seq without touching gradients, returning summed
// cross-entropy, prediction count and correct argmax predictions.
func (m *StackedCharLM) SeqLoss(seq []int) (loss float64, preds, correct int) {
	T := len(seq) - 1
	if T < 1 {
		return 0, 0, 0
	}
	xs := make([][]float64, T)
	for t := 0; t < T; t++ {
		xs[t] = m.emb.Row(seq[t])
	}
	hs := xs
	for _, l := range m.layers {
		hs = l.forward(hs)
	}
	logits := make([]float64, m.vocab)
	probs := make([]float64, m.vocab)
	for t := 0; t < T; t++ {
		m.wy.MatVec(logits, hs[t])
		tensor.AddInPlace(logits, m.by)
		tensor.SoftmaxTo(probs, logits)
		loss += -math.Log(math.Max(probs[seq[t+1]], 1e-12))
		if tensor.ArgMax(probs) == seq[t+1] {
			correct++
		}
	}
	return loss, T, correct
}

// Step applies accumulated gradients with SGD, scaled by 1/count and
// clipped per coordinate (clip <= 0 disables), then zeroes them.
func (m *StackedCharLM) Step(lr float64, count int, clip float64) {
	if count <= 0 {
		panic("nn: StackedCharLM.Step with non-positive count")
	}
	scale := 1 / float64(count)
	sgdStepFlat(m.backing, m.gradBacking, lr, scale, clip)
}
