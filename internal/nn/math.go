package nn

import "math"

// tanh is a thin wrapper kept so hot loops read naturally; the compiler
// inlines math.Tanh anyway.
func tanh(x float64) float64 { return math.Tanh(x) }

// sigmoid is the logistic function 1/(1+e^-x).
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
