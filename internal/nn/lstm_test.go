package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestCharLMParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lm := NewCharLM(8, 4, 6, rng)
	want := 8*4 + 4*6*4 + 4*6*6 + 4*6 + 8*6 + 8
	if lm.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", lm.NumParams(), want)
	}
	p := lm.Params()
	for i := range p {
		p[i] = float64(i) / 100
	}
	lm.SetParams(p)
	got := lm.Params()
	for i := range got {
		if got[i] != p[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestCharLMShortSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lm := NewCharLM(4, 3, 3, rng)
	if loss, preds := lm.SeqLossAndGrad([]int{1}); loss != 0 || preds != 0 {
		t.Errorf("single-char sequence should be a no-op, got loss=%v preds=%d", loss, preds)
	}
	if loss, preds := lm.SeqLossAndGrad(nil); loss != 0 || preds != 0 {
		t.Errorf("empty sequence should be a no-op, got loss=%v preds=%d", loss, preds)
	}
	if loss, preds, _ := lm.SeqLoss([]int{2}); loss != 0 || preds != 0 {
		t.Error("SeqLoss on single char should be a no-op")
	}
}

// TestCharLMLearnsDeterministicCycle: on the fully deterministic sequence
// 0,1,2,0,1,2,... the LM must drive per-char loss near zero.
func TestCharLMLearnsDeterministicCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lm := NewCharLM(3, 6, 12, rng)
	seq := make([]int, 30)
	for i := range seq {
		seq[i] = i % 3
	}
	initLoss, preds, _ := lm.SeqLoss(seq)
	initAvg := initLoss / float64(preds)
	for epoch := 0; epoch < 300; epoch++ {
		if _, n := lm.SeqLossAndGrad(seq); n > 0 {
			lm.Step(0.5, n, 5)
		}
	}
	loss, preds, correct := lm.SeqLoss(seq)
	avg := loss / float64(preds)
	if avg >= initAvg {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", initAvg, avg)
	}
	if avg > 0.2 {
		t.Errorf("deterministic cycle not learned, avg loss %.4f", avg)
	}
	if correct != preds {
		t.Errorf("only %d/%d next chars predicted", correct, preds)
	}
	// exp(avg loss) is the perplexity; for a learned deterministic
	// sequence it should be close to 1, far below uniform (3).
	if ppl := math.Exp(avg); ppl > 1.5 {
		t.Errorf("perplexity %.3f, want near 1", ppl)
	}
}

func TestCharLMStepInvalidCountPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lm := NewCharLM(3, 2, 2, rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	lm.Step(0.1, 0, 0)
}

func TestCharLMString(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lm := NewCharLM(8, 4, 6, rng)
	if s := lm.String(); s == "" || lm.Vocab() != 8 {
		t.Errorf("String/Vocab broken: %q %d", s, lm.Vocab())
	}
}

// TestCharLMDeterministicTraining: same seed, same data, same steps →
// byte-identical parameters. FL determinism depends on this.
func TestCharLMDeterministicTraining(t *testing.T) {
	build := func() *CharLM {
		lm := NewCharLM(5, 3, 4, rand.New(rand.NewSource(11)))
		seq := []int{0, 2, 4, 1, 3, 0, 2, 4}
		for i := 0; i < 10; i++ {
			if _, n := lm.SeqLossAndGrad(seq); n > 0 {
				lm.Step(0.1, n, 1)
			}
		}
		return lm
	}
	a := build().Params()
	b := build().Params()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic training at param %d", i)
		}
	}
}
