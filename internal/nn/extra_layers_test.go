package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDropoutInference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(4, 0.5, rng)
	d.SetTraining(false)
	x := []float64{1, 2, 3, 4}
	out := d.Forward(x)
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("inference dropout is not identity: %v", out)
		}
	}
	dx := d.Backward([]float64{1, 1, 1, 1})
	for _, v := range dx {
		if v != 1 {
			t.Fatalf("inference backward is not identity: %v", dx)
		}
	}
}

func TestDropoutTrainingMasksAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	d := NewDropout(n, 0.3, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	out := d.Forward(x)
	zeros := 0
	var sum float64
	for _, v := range out {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	frac := float64(zeros) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("dropped fraction %v, want ~0.3", frac)
	}
	// Inverted dropout keeps the expected activation sum.
	if sum < 0.9*n || sum > 1.1*n {
		t.Errorf("activation mass %v, want ~%v", sum, n)
	}
	// Backward must route gradients only through survivors.
	dy := make([]float64, n)
	for i := range dy {
		dy[i] = 1
	}
	dx := d.Backward(dy)
	for i, v := range out {
		if (v == 0) != (dx[i] == 0) {
			t.Fatal("gradient mask does not match forward mask")
		}
	}
}

func TestDropoutInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDropout(4, 1.0, rand.New(rand.NewSource(1)))
}

func TestAvgPoolForwardBackward(t *testing.T) {
	p := NewAvgPool2D(1, 2, 4)
	x := []float64{
		1, 3, 5, 7,
		1, 3, 5, 7,
	}
	out := p.Forward(x)
	if out[0] != 2 || out[1] != 6 {
		t.Fatalf("avg pool forward = %v", out)
	}
	dx := p.Backward([]float64{4, 8})
	// Each input cell of the first window receives 4/4=1, second 8/4=2.
	want := []float64{1, 1, 2, 2, 1, 1, 2, 2}
	for i := range want {
		if dx[i] != want[i] {
			t.Fatalf("avg pool backward = %v", dx)
		}
	}
}

func TestAvgPoolGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := NewAvgPool2D(2, 6, 6)
	net := NewNetwork(
		NewConv2D(1, 8, 8, 2, 3, rng), // 2 x 6 x 6
		NewTanh(2*6*6),
		pool,
		NewDense(pool.OutSize(), 3, rng),
	)
	x := randVec(rng, 64)
	checkNetworkGradients(t, net, x, 1, 1e-4)
}

func TestAvgPoolOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAvgPool2D(1, 3, 4)
}

func TestSigmoidGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(
		NewDense(4, 6, rng),
		NewSigmoid(6),
		NewDense(6, 3, rng),
	)
	checkNetworkGradients(t, net, randVec(rng, 4), 2, 1e-4)
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid(3)
	out := s.Forward([]float64{-100, 0, 100})
	if out[0] > 1e-10 || math.Abs(out[1]-0.5) > 1e-12 || out[2] < 1-1e-10 {
		t.Errorf("sigmoid = %v", out)
	}
}

func TestDropoutInNetworkTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	drop := NewDropout(16, 0.2, rand.New(rand.NewSource(6)))
	net := NewNetwork(
		NewDense(2, 16, rng),
		NewReLU(16),
		drop,
		NewDense(16, 2, rng),
	)
	xs := [][]float64{{1, 1}, {-1, -1}}
	ys := []int{0, 1}
	for e := 0; e < 400; e++ {
		for i := range xs {
			net.LossAndGrad(xs[i], ys[i])
		}
		net.Step(0.1, len(xs), 5)
	}
	drop.SetTraining(false)
	for i := range xs {
		if net.Predict(xs[i]) != ys[i] {
			t.Errorf("example %d misclassified with dropout net", i)
		}
	}
}
