package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates d loss / d param[i] by central differences for a
// sample of parameter indices and compares against the analytic gradient.
func checkNetworkGradients(t *testing.T, net *Network, x []float64, label int, tol float64) {
	t.Helper()
	net.ZeroGrads()
	net.LossAndGrad(x, label)
	analytic := net.Grads()
	net.ZeroGrads()

	params := net.Params()
	rng := rand.New(rand.NewSource(7))
	const eps = 1e-5
	checks := 60
	if checks > len(params) {
		checks = len(params)
	}
	for c := 0; c < checks; c++ {
		i := rng.Intn(len(params))
		orig := params[i]

		params[i] = orig + eps
		net.SetParams(params)
		lossPlus := lossOnly(net, x, label)

		params[i] = orig - eps
		net.SetParams(params)
		lossMinus := lossOnly(net, x, label)

		params[i] = orig
		net.SetParams(params)

		numeric := (lossPlus - lossMinus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > tol*(1+math.Abs(numeric)) {
			t.Errorf("param %d: numeric %.8f vs analytic %.8f", i, numeric, analytic[i])
		}
	}
}

func lossOnly(net *Network, x []float64, label int) float64 {
	return CrossEntropyFromLogits(net.Forward(x), label)
}

func TestDenseGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(
		NewDense(6, 8, rng),
		NewTanh(8),
		NewDense(8, 4, rng),
	)
	x := randVec(rng, 6)
	checkNetworkGradients(t, net, x, 2, 1e-4)
}

func TestReLUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(
		NewDense(5, 10, rng),
		NewReLU(10),
		NewDense(10, 3, rng),
	)
	x := randVec(rng, 5)
	checkNetworkGradients(t, net, x, 0, 1e-4)
}

func TestConvPoolGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D(2, 8, 8, 3, 3, rng) // 3 x 6 x 6
	pool := NewMaxPool2D(3, 6, 6)         // 3 x 3 x 3
	net := NewNetwork(
		conv,
		NewReLU(conv.OutSize()),
		pool,
		NewDense(pool.OutSize(), 5, rng),
	)
	x := randVec(rng, 2*8*8)
	checkNetworkGradients(t, net, x, 4, 1e-4)
}

func TestDeepCNNGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv1 := NewConv2D(1, 10, 10, 4, 3, rng) // 4 x 8 x 8
	conv2 := NewConv2D(4, 8, 8, 4, 3, rng)   // 4 x 6 x 6
	pool := NewMaxPool2D(4, 6, 6)
	net := NewNetwork(
		conv1,
		NewReLU(conv1.OutSize()),
		conv2,
		NewTanh(conv2.OutSize()),
		pool,
		NewDense(pool.OutSize(), 6, rng),
	)
	x := randVec(rng, 100)
	checkNetworkGradients(t, net, x, 3, 1e-4)
}

func TestCharLMGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lm := NewCharLM(6, 4, 5, rng)
	seq := []int{0, 3, 1, 5, 2, 4, 0, 1}

	lm.SeqLossAndGrad(seq)
	analytic := lm.Grads()
	lm.Step(0, 1, 0) // zero the grads without moving params (lr=0)

	params := lm.Params()
	const eps = 1e-5
	rng2 := rand.New(rand.NewSource(9))
	for c := 0; c < 80; c++ {
		i := rng2.Intn(len(params))
		orig := params[i]

		params[i] = orig + eps
		lm.SetParams(params)
		lossPlus, _, _ := lm.SeqLoss(seq)

		params[i] = orig - eps
		lm.SetParams(params)
		lossMinus, _, _ := lm.SeqLoss(seq)

		params[i] = orig
		lm.SetParams(params)

		numeric := (lossPlus - lossMinus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("param %d: numeric %.8f vs analytic %.8f", i, numeric, analytic[i])
		}
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
