package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense(4, 6, rng), NewReLU(6), NewDense(6, 3, rng))
	p := net.Params()
	if len(p) != net.NumParams() {
		t.Fatalf("Params length %d != NumParams %d", len(p), net.NumParams())
	}
	want := 4*6 + 6 + 6*3 + 3
	if net.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), want)
	}
	for i := range p {
		p[i] = float64(i)
	}
	net.SetParams(p)
	got := net.Params()
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("round trip mismatch at %d: %v", i, got[i])
		}
	}
}

func TestSetParamsWrongLengthPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense(2, 2, rng))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	net.SetParams([]float64{1})
}

// TestTrainingReducesLoss: plain SGD on a separable toy problem must
// reduce the loss and eventually classify the training points.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(NewDense(2, 16, rng), NewReLU(16), NewDense(16, 2, rng))

	xs := [][]float64{{1, 1}, {1, 0.5}, {-1, -1}, {-0.5, -1}}
	ys := []int{0, 0, 1, 1}

	initial := 0.0
	for i := range xs {
		initial += CrossEntropyFromLogits(net.Forward(xs[i]), ys[i])
	}
	for epoch := 0; epoch < 200; epoch++ {
		for i := range xs {
			net.LossAndGrad(xs[i], ys[i])
		}
		net.Step(0.1, len(xs), 5)
	}
	final := 0.0
	for i := range xs {
		final += CrossEntropyFromLogits(net.Forward(xs[i]), ys[i])
		if net.Predict(xs[i]) != ys[i] {
			t.Errorf("example %d misclassified after training", i)
		}
	}
	if final >= initial {
		t.Errorf("loss did not decrease: %.4f -> %.4f", initial, final)
	}
}

func TestStepZeroesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(NewDense(3, 2, rng))
	net.LossAndGrad([]float64{1, 2, 3}, 0)
	net.Step(0.01, 1, 0)
	for _, g := range net.Grads() {
		if g != 0 {
			t.Fatal("gradients not zeroed after Step")
		}
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(NewDense(3, 2, rng))
	net.LossAndGrad([]float64{1, 2, 3}, 1)
	p := net.Params()
	net.ZeroGrads()
	net.Step(1, 1, 0) // stepping zero grads must not move params
	q := net.Params()
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("ZeroGrads did not clear gradients")
		}
	}
}

func TestStepClipBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(NewDense(1, 1, rng))
	before := net.Params()
	// Inject a huge gradient through a large input.
	net.LossAndGrad([]float64{1e9}, 0)
	net.Step(1, 1, 0.5)
	after := net.Params()
	for i := range before {
		if d := math.Abs(after[i] - before[i]); d > 0.5+1e-9 {
			t.Errorf("param %d moved by %v, clip was 0.5", i, d)
		}
	}
}

func TestStepInvalidBatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(NewDense(1, 1, rng))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	net.Step(0.1, 0, 0)
}

func TestConvOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := NewConv2D(3, 12, 12, 8, 3, rng)
	ch, h, w := c.OutShape()
	if ch != 8 || h != 10 || w != 10 {
		t.Errorf("OutShape = %d,%d,%d", ch, h, w)
	}
	if c.OutSize() != 800 {
		t.Errorf("OutSize = %d", c.OutSize())
	}
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D(1, 4, 4)
	x := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out := p.Forward(x)
	want := []float64{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool forward = %v", out)
		}
	}
	// Backward routes gradient to the argmax positions only.
	dx := p.Backward([]float64{1, 1, 1, 1})
	var nonzero int
	for _, v := range dx {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Errorf("pool backward spread to %d cells, want 4", nonzero)
	}
}

func TestMaxPoolOddSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd input")
		}
	}()
	NewMaxPool2D(1, 5, 4)
}

func TestConvKernelTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized kernel")
		}
	}()
	NewConv2D(1, 2, 2, 1, 3, rand.New(rand.NewSource(1)))
}

func TestNewNetworkEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty network")
		}
	}()
	NewNetwork()
}
