package nn

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is the classic optimizer test: minimize f(p) = 0.5*sum(p^2),
// gradient = p. Every optimizer must drive p to zero.
func optimizeQuadratic(opt Optimizer, steps int) []float64 {
	params := []float64{5, -3, 2}
	grads := make([]float64, len(params))
	for s := 0; s < steps; s++ {
		copy(grads, params)
		opt.Apply(params, grads)
	}
	return params
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	params := optimizeQuadratic(&SGD{LR: 0.1}, 200)
	for i, p := range params {
		if math.Abs(p) > 1e-6 {
			t.Errorf("param %d = %v after SGD", i, p)
		}
	}
}

func TestMomentumConvergesOnQuadratic(t *testing.T) {
	params := optimizeQuadratic(&Momentum{LR: 0.05, Mu: 0.9}, 300)
	for i, p := range params {
		if math.Abs(p) > 1e-6 {
			t.Errorf("param %d = %v after momentum", i, p)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := optimizeQuadratic(&Adam{LR: 0.2}, 400)
	for i, p := range params {
		if math.Abs(p) > 1e-4 {
			t.Errorf("param %d = %v after Adam", i, p)
		}
	}
}

func TestOptimizersZeroGrads(t *testing.T) {
	for _, opt := range []Optimizer{&SGD{LR: 0.1}, &Momentum{LR: 0.1, Mu: 0.9}, &Adam{LR: 0.01}} {
		params := []float64{1, 2}
		grads := []float64{3, 4}
		opt.Apply(params, grads)
		if grads[0] != 0 || grads[1] != 0 {
			t.Errorf("%T did not consume gradients", opt)
		}
	}
}

func TestSGDClip(t *testing.T) {
	opt := &SGD{LR: 1, Clip: 0.5}
	params := []float64{0}
	grads := []float64{100}
	opt.Apply(params, grads)
	if params[0] != -0.5 {
		t.Errorf("clipped step = %v, want -0.5", params[0])
	}
}

func TestMomentumAccumulates(t *testing.T) {
	opt := &Momentum{LR: 1, Mu: 0.5}
	params := []float64{0}
	// Two unit gradients: first step -1, second step -(0.5*1 + 1) = -1.5.
	opt.Apply(params, []float64{1})
	if params[0] != -1 {
		t.Fatalf("first step = %v", params[0])
	}
	opt.Apply(params, []float64{1})
	if math.Abs(params[0]-(-2.5)) > 1e-12 {
		t.Fatalf("second step to %v, want -2.5", params[0])
	}
	opt.Reset()
	opt.Apply(params, []float64{1})
	if math.Abs(params[0]-(-3.5)) > 1e-12 {
		t.Fatalf("after Reset, step should be plain gradient: %v", params[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ~LR
	// regardless of gradient scale.
	for _, g := range []float64{0.001, 1, 1000} {
		opt := &Adam{LR: 0.1}
		params := []float64{0}
		opt.Apply(params, []float64{g})
		if math.Abs(math.Abs(params[0])-0.1) > 1e-3 {
			t.Errorf("first Adam step for g=%v moved %v, want ~0.1", g, params[0])
		}
	}
}

func TestOptimizerLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&SGD{LR: 0.1}).Apply([]float64{1}, []float64{1, 2})
}

func TestStepWithMatchesSGD(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(11))
		return NewNetwork(NewDense(3, 4, rng), NewTanh(4), NewDense(4, 2, rng))
	}
	x := []float64{0.5, -1, 2}

	a := build()
	a.LossAndGrad(x, 1)
	a.Step(0.1, 1, 0)

	b := build()
	b.LossAndGrad(x, 1)
	b.StepWith(&SGD{LR: 0.1}, 1)

	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatalf("StepWith(SGD) diverges from Step at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestNetworkTrainsWithAdam(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork(NewDense(2, 16, rng), NewReLU(16), NewDense(16, 2, rng))
	opt := &Adam{LR: 0.01}
	xs := [][]float64{{1, 1}, {-1, -1}}
	ys := []int{0, 1}
	for e := 0; e < 300; e++ {
		for i := range xs {
			net.LossAndGrad(xs[i], ys[i])
		}
		net.StepWith(opt, len(xs))
	}
	for i := range xs {
		if net.Predict(xs[i]) != ys[i] {
			t.Errorf("example %d misclassified after Adam training", i)
		}
	}
}
