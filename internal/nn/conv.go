package nn

import (
	"fmt"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// Conv2D is a 2-D convolution with stride 1 and no padding ("valid"
// convolution). Inputs and outputs are flat CHW-ordered vectors: channel
// major, then rows, then columns.
type Conv2D struct {
	inC, inH, inW    int
	outC, outH, outW int
	k                int

	// w holds outC filters, each inC*k*k long, stored contiguously.
	w  []float64
	b  []float64
	gw []float64
	gb []float64

	lastX []float64
	outV  []float64
	dx    []float64
}

// NewConv2D creates a convolution layer mapping (inC,inH,inW) to
// (outC,inH-k+1,inW-k+1) feature maps with k x k kernels.
func NewConv2D(inC, inH, inW, outC, k int, rng *rand.Rand) *Conv2D {
	if k > inH || k > inW {
		panic(fmt.Sprintf("nn: kernel %d larger than input %dx%d", k, inH, inW))
	}
	outH, outW := inH-k+1, inW-k+1
	c := &Conv2D{
		inC: inC, inH: inH, inW: inW,
		outC: outC, outH: outH, outW: outW,
		k:  k,
		w:  make([]float64, outC*inC*k*k),
		b:  make([]float64, outC),
		gw: make([]float64, outC*inC*k*k),
		gb: make([]float64, outC),

		lastX: make([]float64, inC*inH*inW),
		outV:  make([]float64, outC*outH*outW),
		dx:    make([]float64, inC*inH*inW),
	}
	fanIn := inC * k * k
	fanOut := outC * k * k
	m := tensor.MatrixFrom(1, len(c.w), c.w)
	m.XavierInit(rng, fanIn, fanOut)
	return c
}

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64) []float64 {
	copy(c.lastX, x)
	k := c.k
	for oc := 0; oc < c.outC; oc++ {
		bias := c.b[oc]
		wBase := oc * c.inC * k * k
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				s := bias
				for ic := 0; ic < c.inC; ic++ {
					xBase := ic*c.inH*c.inW + oy*c.inW + ox
					wOff := wBase + ic*k*k
					for ky := 0; ky < k; ky++ {
						xRow := x[xBase+ky*c.inW : xBase+ky*c.inW+k]
						wRow := c.w[wOff+ky*k : wOff+ky*k+k]
						for kx := 0; kx < k; kx++ {
							s += xRow[kx] * wRow[kx]
						}
					}
				}
				c.outV[oc*c.outH*c.outW+oy*c.outW+ox] = s
			}
		}
	}
	return c.outV
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy []float64) []float64 {
	k := c.k
	tensor.Zero(c.dx)
	for oc := 0; oc < c.outC; oc++ {
		wBase := oc * c.inC * k * k
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				g := dy[oc*c.outH*c.outW+oy*c.outW+ox]
				if g == 0 {
					continue
				}
				c.gb[oc] += g
				for ic := 0; ic < c.inC; ic++ {
					xBase := ic*c.inH*c.inW + oy*c.inW + ox
					wOff := wBase + ic*k*k
					for ky := 0; ky < k; ky++ {
						xi := xBase + ky*c.inW
						wi := wOff + ky*k
						for kx := 0; kx < k; kx++ {
							c.gw[wi+kx] += g * c.lastX[xi+kx]
							c.dx[xi+kx] += g * c.w[wi+kx]
						}
					}
				}
			}
		}
	}
	return c.dx
}

// rebind implements rebinder: filter and bias storage move into the
// network-owned contiguous planes.
func (c *Conv2D) rebind(claim func(int) ([]float64, []float64)) {
	c.w, c.gw = adopt(claim, c.w, c.gw)
	c.b, c.gb = adopt(claim, c.b, c.gb)
}

// ParamBlocks implements Layer.
func (c *Conv2D) ParamBlocks() [][]float64 { return [][]float64{c.w, c.b} }

// GradBlocks implements Layer.
func (c *Conv2D) GradBlocks() [][]float64 { return [][]float64{c.gw, c.gb} }

// OutSize implements Layer.
func (c *Conv2D) OutSize() int { return c.outC * c.outH * c.outW }

// OutShape reports the (channels, height, width) of the layer output, which
// callers need to stack further spatial layers.
func (c *Conv2D) OutShape() (ch, h, w int) { return c.outC, c.outH, c.outW }

// MaxPool2D is a non-overlapping 2x2 max-pooling layer over CHW input.
// Input height and width must be even.
type MaxPool2D struct {
	ch, inH, inW int
	outH, outW   int

	argmax []int
	outV   []float64
	dx     []float64
}

// NewMaxPool2D creates a 2x2 max pool over (ch,inH,inW) feature maps.
func NewMaxPool2D(ch, inH, inW int) *MaxPool2D {
	if inH%2 != 0 || inW%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D input %dx%d not even", inH, inW))
	}
	outH, outW := inH/2, inW/2
	n := ch * outH * outW
	return &MaxPool2D{
		ch: ch, inH: inH, inW: inW, outH: outH, outW: outW,
		argmax: make([]int, n),
		outV:   make([]float64, n),
		dx:     make([]float64, ch*inH*inW),
	}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x []float64) []float64 {
	for c := 0; c < p.ch; c++ {
		for oy := 0; oy < p.outH; oy++ {
			for ox := 0; ox < p.outW; ox++ {
				base := c*p.inH*p.inW + 2*oy*p.inW + 2*ox
				bestIdx := base
				best := x[base]
				for _, off := range [3]int{1, p.inW, p.inW + 1} {
					if v := x[base+off]; v > best {
						best = v
						bestIdx = base + off
					}
				}
				o := c*p.outH*p.outW + oy*p.outW + ox
				p.outV[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return p.outV
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dy []float64) []float64 {
	tensor.Zero(p.dx)
	for o, idx := range p.argmax {
		p.dx[idx] += dy[o]
	}
	return p.dx
}

// ParamBlocks implements Layer.
func (p *MaxPool2D) ParamBlocks() [][]float64 { return nil }

// GradBlocks implements Layer.
func (p *MaxPool2D) GradBlocks() [][]float64 { return nil }

// OutSize implements Layer.
func (p *MaxPool2D) OutSize() int { return p.ch * p.outH * p.outW }

// OutShape reports the (channels, height, width) of the pooled output.
func (p *MaxPool2D) OutShape() (ch, h, w int) { return p.ch, p.outH, p.outW }
