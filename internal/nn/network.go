package nn

import (
	"fmt"
	"math"

	"github.com/spyker-fl/spyker/internal/tensor"
)

// rebinder is implemented by parameterized layers that can re-home their
// parameter and gradient storage into network-owned contiguous arrays.
// rebind must claim one (param, grad) view pair per ParamBlocks entry, in
// ParamBlocks order, and adopt the views after moving the current values
// into them (see adopt). All built-in layers implement it; a network
// containing a foreign parameterized layer falls back to per-block copy
// semantics.
type rebinder interface {
	rebind(claim func(n int) (param, grad []float64))
}

// adopt claims a view pair of len(p) and moves the current parameter and
// gradient values into it; layers assign the returned slices over their
// old storage.
func adopt(claim func(int) ([]float64, []float64), p, g []float64) ([]float64, []float64) {
	np, ng := claim(len(p))
	copy(np, p)
	copy(ng, g)
	return np, ng
}

// Network is a feed-forward classifier: a stack of layers followed by an
// implicit softmax-cross-entropy head. It owns the flattening of all layer
// parameters into a single vector, which is the representation federated
// aggregation operates on. When every parameterized layer supports
// rebinding (all built-in ones do), the layer blocks are views into one
// contiguous backing array, so the flat vector exists at all times instead
// of being materialized per exchange.
type Network struct {
	layers  []Layer
	nParams int

	// backing/gradBacking are the contiguous parameter and gradient
	// planes the layer blocks alias; nil when a foreign layer forced the
	// legacy block-by-block representation.
	backing     []float64
	gradBacking []float64

	probs   []float64
	dLogits []float64
}

// NewNetwork assembles a network from layers. The final layer's output is
// interpreted as class logits.
func NewNetwork(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: NewNetwork needs at least one layer")
	}
	n := &Network{layers: layers}
	contiguous := true
	for _, l := range layers {
		blocks := l.ParamBlocks()
		for _, blk := range blocks {
			n.nParams += len(blk)
		}
		if len(blocks) > 0 {
			if _, ok := l.(rebinder); !ok {
				contiguous = false
			}
		}
	}
	if contiguous && n.nParams > 0 {
		n.backing = make([]float64, n.nParams)
		n.gradBacking = make([]float64, n.nParams)
		cur := &flatCursor{params: n.backing, grads: n.gradBacking}
		for _, l := range layers {
			if r, ok := l.(rebinder); ok {
				r.rebind(cur.claim)
			}
		}
		cur.done()
	}
	out := layers[len(layers)-1].OutSize()
	n.probs = make([]float64, out)
	n.dLogits = make([]float64, out)
	return n
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int { return n.nParams }

// Params returns a copy of all parameters flattened into one vector, layer
// by layer, block by block.
func (n *Network) Params() []float64 {
	out := make([]float64, n.nParams)
	if n.backing != nil {
		copy(out, n.backing)
		return out
	}
	i := 0
	for _, l := range n.layers {
		for _, blk := range l.ParamBlocks() {
			i += copy(out[i:], blk)
		}
	}
	return out
}

// ParamsView returns the live flat parameter vector — a zero-copy
// read-only borrow of the contiguous backing array. Callers must not
// modify it and must copy whatever they retain across a training step.
// For a network containing foreign layers (no contiguous backing) it
// degrades to a Params copy.
func (n *Network) ParamsView() []float64 {
	if n.backing != nil {
		return n.backing
	}
	return n.Params()
}

// SetParams loads a flat parameter vector previously produced by Params
// (of a network with identical architecture).
func (n *Network) SetParams(p []float64) {
	if len(p) != n.nParams {
		panic(fmt.Sprintf("nn: SetParams length %d != %d", len(p), n.nParams))
	}
	if n.backing != nil {
		copy(n.backing, p)
		return
	}
	i := 0
	for _, l := range n.layers {
		for _, blk := range l.ParamBlocks() {
			i += copy(blk, p[i:i+len(blk)])
		}
	}
}

// Grads returns a copy of the accumulated gradients flattened the same
// way as Params; primarily for gradient-checking tests.
func (n *Network) Grads() []float64 {
	out := make([]float64, n.nParams)
	if n.gradBacking != nil {
		copy(out, n.gradBacking)
		return out
	}
	i := 0
	for _, l := range n.layers {
		for _, blk := range l.GradBlocks() {
			i += copy(out[i:], blk)
		}
	}
	return out
}

// Forward runs the full stack and returns the logits (aliased layer
// storage; copy before retaining).
func (n *Network) Forward(x []float64) []float64 {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h)
	}
	return h
}

// Predict returns the class with the highest logit for input x.
func (n *Network) Predict(x []float64) int {
	return tensor.ArgMax(n.Forward(x))
}

// LossAndGrad runs forward on one example, accumulates parameter gradients
// for softmax-cross-entropy against the label, and returns the loss.
func (n *Network) LossAndGrad(x []float64, label int) float64 {
	logits := n.Forward(x)
	tensor.SoftmaxTo(n.probs, logits)
	loss := -math.Log(math.Max(n.probs[label], 1e-12))
	copy(n.dLogits, n.probs)
	n.dLogits[label] -= 1
	g := n.dLogits
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return loss
}

// Step applies accumulated gradients with SGD at rate lr, scaled by
// 1/batchSize, then zeroes the gradients. Gradients are clipped to
// [-clip, clip] per coordinate after scaling; pass clip <= 0 to disable.
func (n *Network) Step(lr float64, batchSize int, clip float64) {
	if batchSize <= 0 {
		panic("nn: Step with non-positive batch size")
	}
	scale := 1 / float64(batchSize)
	if n.backing != nil {
		sgdStepFlat(n.backing, n.gradBacking, lr, scale, clip)
		return
	}
	for _, l := range n.layers {
		params := l.ParamBlocks()
		grads := l.GradBlocks()
		for bi, g := range grads {
			sgdStepFlat(params[bi], g, lr, scale, clip)
		}
	}
}

// sgdStepFlat is the shared SGD inner loop over a flat parameter/gradient
// pair: p -= lr*clip(g*scale), then g = 0.
func sgdStepFlat(p, g []float64, lr, scale, clip float64) {
	for i := range g {
		gv := g[i] * scale
		if clip > 0 {
			if gv > clip {
				gv = clip
			} else if gv < -clip {
				gv = -clip
			}
		}
		p[i] -= lr * gv
		g[i] = 0
	}
}

// CrossEntropyFromLogits returns the softmax cross-entropy of logits
// against label without touching any gradient state.
func CrossEntropyFromLogits(logits []float64, label int) float64 {
	probs := tensor.Softmax(logits)
	return -math.Log(math.Max(probs[label], 1e-12))
}

// ZeroGrads clears all accumulated gradients without applying them.
func (n *Network) ZeroGrads() {
	if n.gradBacking != nil {
		tensor.Zero(n.gradBacking)
		return
	}
	for _, l := range n.layers {
		for _, g := range l.GradBlocks() {
			tensor.Zero(g)
		}
	}
}
