package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestStackedCharLMGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewStackedCharLM(5, 4, 6, 2, rng)
	seq := []int{0, 3, 1, 4, 2, 0, 1, 3}

	m.SeqLossAndGrad(seq)
	analytic := m.Grads()
	m.Step(0, 1, 0) // zero grads without moving params

	params := m.Params()
	const eps = 1e-5
	rng2 := rand.New(rand.NewSource(2))
	for c := 0; c < 100; c++ {
		i := rng2.Intn(len(params))
		orig := params[i]

		params[i] = orig + eps
		m.SetParams(params)
		lossPlus, _, _ := m.SeqLoss(seq)

		params[i] = orig - eps
		m.SetParams(params)
		lossMinus, _, _ := m.SeqLoss(seq)

		params[i] = orig
		m.SetParams(params)

		numeric := (lossPlus - lossMinus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("param %d: numeric %.8f vs analytic %.8f", i, numeric, analytic[i])
		}
	}
}

func TestStackedMatchesSingleLayerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	single := NewStackedCharLM(8, 4, 6, 1, rng)
	// emb(8*4) + layer(4*24 + 24*6*... let's just assert against CharLM's
	// count, which uses identical shapes for one layer.
	ref := NewCharLM(8, 4, 6, rand.New(rand.NewSource(3)))
	if single.NumParams() != ref.NumParams() {
		t.Errorf("1-layer stacked has %d params, CharLM %d", single.NumParams(), ref.NumParams())
	}
	deep := NewStackedCharLM(8, 4, 6, 3, rand.New(rand.NewSource(3)))
	if deep.NumLayers() != 3 || deep.NumParams() <= single.NumParams() {
		t.Error("stacking did not add parameters")
	}
}

func TestStackedCharLMLearnsCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewStackedCharLM(3, 6, 10, 2, rng)
	seq := make([]int, 24)
	for i := range seq {
		seq[i] = i % 3
	}
	for epoch := 0; epoch < 250; epoch++ {
		if _, n := m.SeqLossAndGrad(seq); n > 0 {
			m.Step(0.5, n, 5)
		}
	}
	loss, preds, correct := m.SeqLoss(seq)
	if avg := loss / float64(preds); avg > 0.25 {
		t.Errorf("2-layer LM failed to learn the cycle: avg loss %.4f", avg)
	}
	if correct != preds {
		t.Errorf("only %d/%d predictions correct", correct, preds)
	}
}

func TestStackedCharLMParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewStackedCharLM(6, 3, 4, 2, rng)
	p := m.Params()
	for i := range p {
		p[i] = float64(i) / 50
	}
	m.SetParams(p)
	got := m.Params()
	for i := range got {
		if got[i] != p[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestStackedCharLMInvalidLayersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStackedCharLM(4, 2, 2, 0, rand.New(rand.NewSource(1)))
}

func TestStackedCharLMShortSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewStackedCharLM(4, 3, 3, 2, rng)
	if loss, preds := m.SeqLossAndGrad([]int{1}); loss != 0 || preds != 0 {
		t.Error("single-char sequence should be a no-op")
	}
	if loss, preds, _ := m.SeqLoss(nil); loss != 0 || preds != 0 {
		t.Error("empty SeqLoss should be a no-op")
	}
}
