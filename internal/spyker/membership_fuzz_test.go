package spyker

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// memFuzz extends the fuzzNet harness with elastic membership: the core
// set grows on joins (AdmitMember + RestoreServerCore) and shrinks on
// leaves and crashes (dead cores silently discard deliveries, like a
// closed TCP endpoint). Every broadcast carries the sender's membership
// view exactly as the live transport headers do.
type memFuzz struct {
	net  *fuzzNet
	dead []bool
	now  float64
}

func (f *memFuzz) alive(i int) bool {
	return i >= 0 && i < len(f.net.cores) && f.net.cores[i] != nil && !f.dead[i]
}

// aliveIDs returns the live core IDs in ascending order.
func (f *memFuzz) aliveIDs() []int {
	var ids []int
	for i := range f.net.cores {
		if f.alive(i) {
			ids = append(ids, i)
		}
	}
	return ids
}

// memOut adapts one core's outbound calls onto the shared network with
// membership headers attached, delivering through the epoch-tagged
// handlers. Deliveries to dead or not-yet-joined cores are discarded at
// delivery time.
type memOut struct {
	id int
	f  *memFuzz
}

func (o *memOut) ReplyClient(int, []float64, float64, float64) {}

func (o *memOut) BroadcastModel(p []float64, age float64, bid int, front []int64, mem ring.Membership) {
	snap := tensor.Clone(p)
	fr := append([]int64(nil), front...)
	m := mem.Clone()
	for i := range o.f.net.cores {
		if i == o.id {
			continue
		}
		dst := i
		o.f.net.send(o.id, dst, func() {
			if o.f.alive(dst) {
				o.f.net.cores[dst].HandleServerModelTraced(o.id, snap, age, bid, fr, m)
			}
		})
	}
}

func (o *memOut) BroadcastAge(age float64, mem ring.Membership) {
	m := mem.Clone()
	for i := range o.f.net.cores {
		if i == o.id {
			continue
		}
		dst := i
		o.f.net.send(o.id, dst, func() {
			if o.f.alive(dst) {
				o.f.net.cores[dst].HandleAgeTagged(o.id, age, m)
			}
		})
	}
}

func (o *memOut) SendToken(t Token, next int) {
	o.f.net.send(o.id, next, func() {
		if o.f.alive(next) {
			// Token.Ages and Token.Mem are owned by the frame (the core
			// cloned them at send time), so they pass through unchanged.
			o.f.net.cores[next].HandleToken(t)
		}
		// A token addressed to a dead server is lost with it; the
		// survivors recover it through Tick's silence timeout.
	})
}

// TestMembershipFuzz runs randomized interleavings of joins, leaves,
// crashes, token drops, client updates, and recovery-clock ticks over a
// 2-6 server elastic ring, and asserts that once the network quiesces
// every surviving server converged on one membership view — with finite
// ages and non-NaN models throughout.
func TestMembershipFuzz(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMembershipFuzz(t, seed)
		})
	}
}

const memFuzzMaxServers = 6

func runMembershipFuzz(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n0 := 2 + rng.Intn(3) // 2..4 initial servers
	f := &memFuzz{net: newFuzzNet(rng)}
	f.net.cores = make([]*ServerCore, n0)
	f.dead = make([]bool, n0)
	mkCfg := func(id, n int) Config {
		cfg := coreConfig(id, n, 3)
		cfg.HInter = float64(2 + rng.Intn(3))
		cfg.HIntra = float64(10 + rng.Intn(20))
		cfg.TokenTimeout = 5
		cfg.SyncRetry = 3
		return cfg
	}
	for i := 0; i < n0; i++ {
		initial := []float64{rng.NormFloat64(), rng.NormFloat64()}
		f.net.cores[i] = NewServerCore(mkCfg(i, n0), initial, i == 0, &memOut{id: i, f: f})
	}

	clientParams := []float64{1, -1}
	update := func() {
		ids := f.aliveIDs()
		if len(ids) == 0 {
			return
		}
		c := f.net.cores[ids[rng.Intn(len(ids))]]
		c.HandleClientUpdate(rng.Intn(3), clientParams, c.Age())
	}
	tick := func(dt float64) {
		f.now += dt
		for _, id := range f.aliveIDs() {
			f.net.cores[id].Tick(f.now)
		}
	}
	join := func() {
		ids := f.aliveIDs()
		if len(ids) == 0 || len(ids) >= memFuzzMaxServers {
			return
		}
		sponsor := ids[rng.Intn(len(ids))]
		sp := f.net.cores[sponsor]
		if !sp.Membership().Contains(sponsor) {
			return // an excluded server cannot sponsor
		}
		newID := sp.Membership().NextID()
		st, err := sp.AdmitMember(newID)
		if err != nil {
			t.Fatalf("admit %d: %v", newID, err)
		}
		for len(f.net.cores) <= newID {
			f.net.cores = append(f.net.cores, nil)
			f.dead = append(f.dead, true)
		}
		c, err := RestoreServerCore(st, &memOut{id: newID, f: f})
		if err != nil {
			t.Fatalf("restore joiner %d: %v", newID, err)
		}
		f.net.cores[newID] = c
		f.dead[newID] = false
	}
	leave := func(exclude bool) {
		ids := f.aliveIDs()
		if len(ids) < 2 {
			return
		}
		target := ids[rng.Intn(len(ids))]
		tc := f.net.cores[target]
		if exclude {
			// Graceful leave: hand the token off if idle, drop otherwise.
			if tc.HasToken() && !tc.YieldToken() {
				tc.DropToken()
			}
		}
		f.dead[target] = true
		if exclude {
			var coord *ServerCore
			for _, id := range f.aliveIDs() {
				if id != target {
					coord = f.net.cores[id]
					break
				}
			}
			if coord != nil {
				coord.ExcludeMember(target)
			}
		}
	}
	dropToken := func() {
		ids := f.aliveIDs()
		if len(ids) == 0 {
			return
		}
		f.net.cores[ids[rng.Intn(len(ids))]].DropToken()
	}

	ops := 250 + rng.Intn(250)
	for u := 0; u < ops; u++ {
		switch r := rng.Float64(); {
		case r < 0.55:
			update()
		case r < 0.70:
			tick(1)
		case r < 0.80:
			for k := 2 + rng.Intn(4); k > 0; k-- {
				if !f.net.step() {
					break
				}
			}
		case r < 0.87:
			join()
		case r < 0.93:
			leave(true)
		case r < 0.96:
			leave(false) // crash: no exclusion, survivors keep the slot
		default:
			dropToken()
		}
		for k := rng.Intn(3); k > 0; k-- {
			if !f.net.step() {
				break
			}
		}
	}
	for f.net.step() {
	}

	// Quiesce: natural protocol traffic (client updates growing ages, plus
	// recovery ticks) must carry the freshest membership to every
	// survivor — including late joiners that missed earlier announcements.
	agreed := func() bool {
		ids := f.aliveIDs()
		for _, id := range ids[1:] {
			if !f.net.cores[id].Membership().Equal(f.net.cores[ids[0]].Membership()) {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; rounds < 40 && !agreed(); rounds++ {
		for _, id := range f.aliveIDs() {
			c := f.net.cores[id]
			c.HandleClientUpdate(rng.Intn(3), clientParams, c.Age())
		}
		tick(6) // past TokenTimeout: a lost token regenerates
		for f.net.step() {
		}
	}
	if !agreed() {
		ids := f.aliveIDs()
		for _, id := range ids {
			t.Logf("server %d view: %v", id, f.net.cores[id].Membership())
		}
		t.Fatalf("survivors %v never agreed on membership after %d quiesce rounds", ids, rounds)
	}

	// Sanity: every surviving core is numerically sound.
	for _, id := range f.aliveIDs() {
		c := f.net.cores[id]
		if c.Age() < 0 || c.Age() != c.Age() {
			t.Errorf("server %d has bad age %v", id, c.Age())
		}
		for j, a := range c.ages {
			if a < 0 || a != a {
				t.Errorf("server %d tracks bad age %v for %d", id, a, j)
			}
		}
		for _, p := range c.Params() {
			if p != p {
				t.Fatalf("server %d has NaN parameters", id)
			}
		}
	}
}
