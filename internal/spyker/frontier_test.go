package spyker

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/ring"
)

// The merged-updates frontier is plain protocol state: it must advance on
// every client update, merge on every server-model aggregation, and ride
// through snapshots — all without any sink attached (tracing only observes
// it).

func TestFrontierAdvancesOnClientUpdates(t *testing.T) {
	s := NewServerCore(coreConfig(1, 3, 2), []float64{0, 0}, false, &fakeOut{})
	if got := s.Frontier(); len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("initial frontier = %v, want zeros", got)
	}
	s.HandleClientUpdate(0, []float64{1, 1}, 0)
	s.HandleClientUpdate(1, []float64{1, 1}, 1)
	got := s.Frontier()
	if got[1] != 2 || got[0] != 0 || got[2] != 0 {
		t.Fatalf("frontier = %v, want [0 2 0] (own coordinate only)", got)
	}
	// Frontier() must return a copy, not the live vector.
	got[1] = 99
	if s.Frontier()[1] != 2 {
		t.Fatal("Frontier() aliases internal state")
	}
}

func TestFrontierMergesFromBroadcasts(t *testing.T) {
	s := NewServerCore(coreConfig(0, 3, 2), []float64{0, 0}, false, &fakeOut{})
	s.HandleClientUpdate(0, []float64{1, 1}, 0)

	// A peer broadcast carrying front [0 5 2] max-merges into [1 5 2].
	s.HandleServerModelTraced(1, []float64{2, 2}, 1, 1, []int64{0, 5, 2}, ring.Membership{})
	got := s.Frontier()
	if got[0] != 1 || got[1] != 5 || got[2] != 2 {
		t.Fatalf("frontier = %v, want [1 5 2]", got)
	}

	// A stale broadcast (lower coordinates) must not regress the frontier,
	// and untraced broadcasts (nil front) must merge nothing.
	s.HandleServerModelTraced(2, []float64{2, 2}, 1, 2, []int64{0, 3, 1}, ring.Membership{})
	s.HandleServerModelTraced(1, []float64{2, 2}, 1, 3, nil, ring.Membership{})
	got = s.Frontier()
	if got[0] != 1 || got[1] != 5 || got[2] != 2 {
		t.Fatalf("frontier regressed: %v, want [1 5 2]", got)
	}
}

func TestBroadcastCarriesFrontier(t *testing.T) {
	// When a sync triggers, the outbound broadcast must hand the live
	// frontier to the transport layer.
	var gotFront []int64
	out := &frontierOut{onModel: func(front []int64) {
		gotFront = append([]int64(nil), front...)
	}}
	cfg := coreConfig(0, 2, 1)
	cfg.HIntra = 2 // trigger a sync after two local updates
	cfg.HInter = 1e9
	s := NewServerCore(cfg, []float64{0, 0}, true, out)
	s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	if gotFront == nil {
		t.Fatal("sync never triggered a broadcast")
	}
	if gotFront[0] != 2 || gotFront[1] != 0 {
		t.Fatalf("broadcast frontier = %v, want [2 0]", gotFront)
	}
}

type frontierOut struct {
	fakeOut
	onModel func(front []int64)
}

func (f *frontierOut) BroadcastModel(p []float64, age float64, bid int, front []int64, mem ring.Membership) {
	f.onModel(front)
	f.fakeOut.BroadcastModel(p, age, bid, front, mem)
}

func TestTracedEventsCarryUIDAndFrontier(t *testing.T) {
	tr := obs.NewTracer(64)
	s := NewServerCore(coreConfig(0, 2, 1), []float64{0, 0}, false, &fakeOut{})
	s.Instrument(tr, func() float64 { return 1 })

	uid := obs.UpdateUID(4, 1)
	s.HandleClientUpdateTraced(0, []float64{1, 1}, 0, uid)
	s.HandleServerModelTraced(1, []float64{2, 2}, 1, 3, []int64{0, 7}, ring.Membership{})

	evs := tr.Events()
	var sawUpdate, sawAgg bool
	for _, e := range evs {
		switch e.Kind {
		case obs.KindClientUpdate:
			sawUpdate = true
			if e.UID != uid {
				t.Fatalf("client-update UID = %v, want %v", e.UID, uid)
			}
			if len(e.Front) != 2 || e.Front[0] != 1 {
				t.Fatalf("client-update front = %v, want [1 0]", e.Front)
			}
		case obs.KindServerAgg:
			sawAgg = true
			if e.UID != obs.RoundUID(1, 3) {
				t.Fatalf("server-agg UID = %v, want %v", e.UID, obs.RoundUID(1, 3))
			}
			if len(e.Front) != 2 || e.Front[0] != 1 || e.Front[1] != 7 {
				t.Fatalf("server-agg front = %v, want [1 7]", e.Front)
			}
		}
	}
	if !sawUpdate || !sawAgg {
		t.Fatalf("missing events: update=%v agg=%v", sawUpdate, sawAgg)
	}
}

func TestSnapshotRestoresFrontier(t *testing.T) {
	s := NewServerCore(coreConfig(0, 3, 2), []float64{0, 0}, false, &fakeOut{})
	s.HandleClientUpdate(0, []float64{1, 1}, 0)
	s.HandleServerModelTraced(1, []float64{2, 2}, 1, 1, []int64{0, 4, 0}, ring.Membership{})

	st := s.Snapshot()
	if len(st.Frontier) != 3 || st.Frontier[0] != 1 || st.Frontier[1] != 4 {
		t.Fatalf("snapshot frontier = %v, want [1 4 0]", st.Frontier)
	}
	r, err := RestoreServerCore(st, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Frontier()
	if got[0] != 1 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("restored frontier = %v, want [1 4 0]", got)
	}
}

func TestRestoreLegacySnapshotWithoutFrontier(t *testing.T) {
	s := NewServerCore(coreConfig(0, 2, 1), []float64{0, 0}, false, &fakeOut{})
	s.HandleClientUpdate(0, []float64{1, 1}, 0)
	st := s.Snapshot()
	st.Frontier = nil // checkpoint written before the provenance extension
	r, err := RestoreServerCore(st, &fakeOut{})
	if err != nil {
		t.Fatalf("legacy snapshot must restore: %v", err)
	}
	if got := r.Frontier(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("legacy restore frontier = %v, want zeros", got)
	}

	st.Frontier = []int64{1, 2, 3} // wrong length must be rejected
	if _, err := RestoreServerCore(st, &fakeOut{}); err == nil {
		t.Fatal("mismatched frontier length must fail restore")
	}
}
