package spyker

import (
	"fmt"
	"sort"

	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// State is a serializable snapshot of a ServerCore: everything needed to
// resume the protocol after a restart — the model, the age bookkeeping,
// the token (if held), the synchronization dedup sets, and the per-client
// decay counters. It is a plain data struct so it gob/json-encodes
// directly.
type State struct {
	Config Config

	W       []float64
	Age     float64
	AgePrev float64

	Ages             []float64
	Token            *Token // nil if not held
	OngoingSynchro   bool
	DidBroadcast     []int // sorted synchronization IDs already served
	Cnt              map[int]int
	LastAgeBroadcast float64

	Updates map[int]int
	Total   int

	SyncsTriggered int
	SyncsJoined    int

	// MaxBidSeen and TokenRegens are the token-loss recovery state (see
	// Config.TokenTimeout): the freshest round bid witnessed and the
	// number of regenerations performed. Zero in checkpoints written
	// before the recovery extension — restore then re-derives a safe
	// MaxBidSeen floor from the held token's bid.
	MaxBidSeen  int
	TokenRegens int

	// Frontier is the merged-updates vector clock (causal provenance; see
	// ServerCore.Frontier). Nil in checkpoints written before the
	// provenance extension — restore then starts it at zero, which only
	// resets lineage counting, never protocol behaviour.
	Frontier []int64

	// Mem is the epoch-versioned ring membership (the elastic-membership
	// extension). Nil in checkpoints written before the extension —
	// restore then rebuilds the fixed construction-time ring
	// ring.Fixed(Config.NumServers) at epoch 0, exactly the ring such a
	// core was running on.
	Mem *ring.Membership
}

// Snapshot captures the core's full protocol state. The returned State
// shares no storage with the core.
func (s *ServerCore) Snapshot() State {
	var st State
	s.SnapshotInto(&st)
	return st
}

// SnapshotInto is Snapshot writing into a caller-owned State, reusing its
// slices and maps — the allocation-free path for periodic checkpointing
// with a scratch State. The result shares no storage with the core.
func (s *ServerCore) SnapshotInto(st *State) {
	st.Config = s.cfg
	st.W = append(st.W[:0], s.w...)
	st.Age = s.age
	st.AgePrev = s.agePrev
	st.Ages = append(st.Ages[:0], s.ages...)
	st.OngoingSynchro = s.ongoingSynchro
	st.LastAgeBroadcast = s.lastAgeBroadcast
	st.Total = s.total
	st.SyncsTriggered = s.syncsTriggered
	st.SyncsJoined = s.syncsJoined
	st.MaxBidSeen = s.maxBidSeen
	st.TokenRegens = s.tokenRegens
	st.Frontier = append(st.Frontier[:0], s.frontier...)
	if st.Mem == nil {
		st.Mem = &ring.Membership{}
	}
	st.Mem.Epoch = s.mem.Epoch
	st.Mem.Members = append(st.Mem.Members[:0], s.mem.Members...)
	if s.token != nil {
		if st.Token == nil {
			st.Token = &Token{}
		}
		st.Token.Bid = s.token.Bid
		st.Token.Ages = append(st.Token.Ages[:0], s.token.Ages...)
	} else {
		st.Token = nil
	}
	st.DidBroadcast = st.DidBroadcast[:0]
	//lint:sorted keys are collected and sorted just below
	for bid := range s.didBroadcast {
		st.DidBroadcast = append(st.DidBroadcast, bid)
	}
	sort.Ints(st.DidBroadcast)
	if st.Cnt == nil {
		st.Cnt = make(map[int]int, len(s.cnt))
	}
	clear(st.Cnt)
	//lint:sorted map-to-map copy is order-independent
	for k, v := range s.cnt {
		st.Cnt[k] = v
	}
	if st.Updates == nil {
		st.Updates = make(map[int]int, len(s.updates))
	}
	clear(st.Updates)
	//lint:sorted map-to-map copy is order-independent
	for k, v := range s.updates {
		st.Updates[k] = v
	}
}

// RestoreServerCore rebuilds a core from a snapshot, attaching the given
// outbound. The state is copied, not aliased. A legacy snapshot (nil
// Mem, written before the elastic-membership extension) restores onto
// the fixed construction-time ring at epoch 0 under the original strict
// length validations; a membership-carrying snapshot restores onto
// exactly that ring, with the server's stable ID free of the 0..N-1
// constraint as long as it is a member.
func RestoreServerCore(st State, out Outbound) (*ServerCore, error) {
	var mem ring.Membership
	if st.Mem == nil {
		if st.Config.NumServers <= 0 || st.Config.ID < 0 || st.Config.ID >= st.Config.NumServers {
			return nil, fmt.Errorf("spyker: snapshot has invalid config %+v", st.Config)
		}
		if len(st.Ages) != st.Config.NumServers {
			return nil, fmt.Errorf("spyker: snapshot ages length %d != %d servers",
				len(st.Ages), st.Config.NumServers)
		}
		if st.Token != nil && len(st.Token.Ages) != st.Config.NumServers {
			return nil, fmt.Errorf("spyker: snapshot token ages length %d != %d servers",
				len(st.Token.Ages), st.Config.NumServers)
		}
		mem = ring.Fixed(st.Config.NumServers)
	} else {
		mem = st.Mem.Clone()
		if !mem.Contains(st.Config.ID) {
			return nil, fmt.Errorf("spyker: snapshot server %d not a member of %s",
				st.Config.ID, mem)
		}
		if len(st.Ages) < mem.Slots() {
			return nil, fmt.Errorf("spyker: snapshot ages length %d < %d membership slots",
				len(st.Ages), mem.Slots())
		}
	}
	s := newServerCore(st.Config, mem, st.W, false, out)
	s.age = st.Age
	s.agePrev = st.AgePrev
	s.growTo(len(st.Ages))
	copy(s.ages, st.Ages)
	if st.Token != nil {
		t := Token{Bid: st.Token.Bid, Ages: tensor.Clone(st.Token.Ages), Mem: s.mem}
		s.token = &t
		s.hasToken = true
	}
	s.ongoingSynchro = st.OngoingSynchro
	for _, bid := range st.DidBroadcast {
		s.didBroadcast[bid] = true
	}
	//lint:sorted map-to-map copy is order-independent
	for k, v := range st.Cnt {
		s.cnt[k] = v
	}
	s.lastAgeBroadcast = st.LastAgeBroadcast
	//lint:sorted map-to-map copy is order-independent
	for k, v := range st.Updates {
		s.updates[k] = v
	}
	s.total = st.Total
	s.syncsTriggered = st.SyncsTriggered
	s.syncsJoined = st.SyncsJoined
	s.maxBidSeen = st.MaxBidSeen
	s.tokenRegens = st.TokenRegens
	if s.hasToken && s.maxBidSeen < s.token.Bid {
		// Pre-extension checkpoint: the held token's bid is the best
		// available floor for the freshest witnessed round.
		s.maxBidSeen = s.token.Bid
	}
	if st.Frontier != nil {
		if st.Mem == nil && len(st.Frontier) != st.Config.NumServers {
			return nil, fmt.Errorf("spyker: snapshot frontier length %d != %d servers",
				len(st.Frontier), st.Config.NumServers)
		}
		// Elastic snapshots grow ages and frontier in lockstep (growTo),
		// so their lengths must agree.
		if st.Mem != nil && len(st.Frontier) != len(st.Ages) {
			return nil, fmt.Errorf("spyker: snapshot frontier length %d != ages length %d",
				len(st.Frontier), len(st.Ages))
		}
		s.growTo(len(st.Frontier))
		copy(s.frontier, st.Frontier)
	}
	return s, nil
}
