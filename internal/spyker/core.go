// Package spyker implements the paper's primary contribution: the fully
// asynchronous multi-server federated-learning protocol. The protocol
// logic (Alg. 1 client/server interaction and Alg. 2 token-triggered
// server-model exchange) lives in ServerCore, a transport-agnostic state
// machine driven by message-handler calls. The same core is executed both
// under the discrete-event simulator (sim.go) and over real TCP by the
// live runtime (internal/live).
package spyker

import (
	"fmt"
	"math"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// Token is the circulating token of Alg. 2. It carries a synchronization
// ID (bid) and the freshest known age of every server model.
type Token struct {
	Bid  int
	Ages []float64
}

// Outbound is everything a ServerCore needs to talk to the outside world.
// Implementations route over the discrete-event simulator or over TCP.
//
// Borrow contract: the params slice passed to ReplyClient and
// BroadcastModel is the core's live model vector, valid only for the
// duration of the call — the core mutates it on the next handler. An
// implementation that delivers asynchronously (every real transport does)
// must copy the slice before returning; internal/paramvec pools make that
// copy allocation-free.
type Outbound interface {
	// ReplyClient returns the new server model to client k along with the
	// model age and the client's next learning rate (Alg. 1 l. 19).
	ReplyClient(k int, params []float64, age, lr float64)
	// BroadcastModel sends this server's model, age and the current
	// synchronization ID to every other server (Alg. 2 l. 25/35). front is
	// the sender's merged-updates frontier at broadcast time — the causal
	// provenance the receiver max-merges so update lineage is traceable
	// end to end; like params it is a borrow valid only for the duration
	// of the call.
	BroadcastModel(params []float64, age float64, bid int, front []int64)
	// BroadcastAge announces this server's model age to every other
	// server so the token holder can trigger a synchronization
	// (Alg. 2 l. 29).
	BroadcastAge(age float64)
	// SendToken forwards the token to the next server on the ring
	// (Alg. 2 l. 41).
	SendToken(t Token, next int)
}

// Config parameterizes a ServerCore.
type Config struct {
	ID         int // this server's index in 0..N-1
	NumServers int
	NumClients int // clients assigned to THIS server (for the decay average)

	EtaServer float64 // client-update aggregation rate eta_i
	Phi       float64 // sigmoid activation rate
	EtaA      float64 // server-model aggregation rate eta_a
	HInter    float64 // inter-server age-drift threshold
	HIntra    float64 // intra-server age-drift threshold

	ClientLR     float64 // base local learning rate eta_k
	DecayEnabled bool
	Beta         float64 // relative decay per excess update
	EtaMin       float64 // learning-rate floor

	// MinAgeGapForAgeBroadcast rate-limits age announcements from
	// non-token holders: a server only re-broadcasts its age after its
	// model aged by at least this much since the previous announcement.
	// Zero defaults to 1.
	MinAgeGapForAgeBroadcast float64

	// RobustClipFactor > 0 enables Byzantine-robust norm clipping of
	// client updates (an extension; the paper lists "Byzantine Learning"
	// as a keyword but evaluates only honest clients): the delta a client
	// update applies is rescaled so its L2 norm never exceeds
	// RobustClipFactor times the running average of honest delta norms.
	// Sign-flipped or noise updates from malicious clients are thereby
	// bounded to the influence of one ordinary update. 0 disables.
	RobustClipFactor float64

	// TokenTimeout > 0 arms token-loss recovery (the crash/recovery
	// extension, ROADMAP 4(c)): a server that neither holds the token nor
	// has observed fresh ring traffic (a token arrival or a previously
	// unseen sync-round broadcast) for this many clock seconds — as
	// sampled by Tick — regenerates the token with a strictly higher bid,
	// so any stale survivor that later resurfaces is discarded by the bid
	// comparison in HandleToken. 0 (the default) disables recovery and
	// leaves the protocol exactly as specified by Alg. 2. The timeout
	// should be several times the expected gap between synchronizations:
	// a spurious regeneration during a legitimately quiet phase is safe
	// (the bid order retires the losing token) but costs an extra round.
	TokenTimeout float64

	// SyncRetry > 0 makes a token holder whose synchronization round has
	// made no progress for this many clock seconds re-broadcast its model
	// under the same bid. A round stalls permanently when a participant
	// was down (or a broadcast was lost) — the holder's cnt can then never
	// reach NumServers — and the retry lets a restarted server join the
	// round late, completing it. 0 disables.
	SyncRetry float64
}

// ServerCore is the Spyker server state machine. It is not safe for
// concurrent use; callers serialize handler invocations (the simulator is
// single-threaded, the live runtime uses one mutex per server).
type ServerCore struct {
	cfg Config
	out Outbound

	w       []float64
	age     float64
	agePrev float64

	ages             []float64 // freshest known age per server
	token            *Token
	hasToken         bool
	ongoingSynchro   bool
	didBroadcast     map[int]bool
	cnt              map[int]int
	lastAgeBroadcast float64

	updates map[int]int     // u[k]: updates received per client
	rates   map[int]float64 // current learning rate per client
	total   int             // total updates received (for the average)

	// frontier is the merged-updates vector clock: frontier[i] counts how
	// many client updates first merged at server i are incorporated into
	// this model, directly (i == cfg.ID, advanced per HandleClientUpdate)
	// or transitively (max-merged from the frontier riding on every model
	// broadcast). It is plain protocol state, maintained whether or not a
	// sink is attached, so enabling provenance tracing can never change
	// the schedule; the lineage analyzer (obs.BuildLineage) reconstructs
	// every update's server-reach set and hop path from the frontiers
	// stamped on client-update and server-agg events.
	frontier []int64

	// Byzantine-robust clipping state: exponential moving average of the
	// (post-clip) client delta norms. deltaScratch is the persistent
	// model-sized buffer the clip path computes deltas into, so clipping
	// costs no per-update allocation.
	deltaNormEMA float64
	emaReady     bool
	clipped      int // updates whose delta was clipped
	deltaScratch paramvec.Vec

	syncsTriggered int
	syncsJoined    int

	// Token-loss recovery state (see Config.TokenTimeout and Tick).
	// maxBidSeen is the highest sync-round bid this server has witnessed —
	// carried by an adopted token or by a received model broadcast; a
	// token whose post-increment bid does not exceed it is a stale
	// survivor (or wire duplicate) and is discarded. ringSeq counts fresh
	// ring activity; Tick compares it against lastRingSeq to measure
	// silence. stuck* track how long the holder's current round has made
	// no progress (the SyncRetry path).
	maxBidSeen  int
	ringSeq     uint64
	lastRingSeq uint64
	quietSince  float64
	quietValid  bool
	stuckBid    int
	stuckSince  float64
	stuckValid  bool
	tokenRegens int

	// Observability (see Instrument): sink receives protocol events
	// stamped with clock(). Defaults to the no-op sink and a zero clock,
	// so an uninstrumented core pays one interface call per handler.
	sink  obs.Sink
	clock obs.Clock
}

// NewServerCore creates a server with the given initial model. If
// holdsToken is true the server starts as the token holder with bid 1
// (paper: the token initially resides at one randomly chosen server).
func NewServerCore(cfg Config, initial []float64, holdsToken bool, out Outbound) *ServerCore {
	if cfg.NumServers <= 0 || cfg.ID < 0 || cfg.ID >= cfg.NumServers {
		panic(fmt.Sprintf("spyker: bad server id %d of %d", cfg.ID, cfg.NumServers))
	}
	if cfg.MinAgeGapForAgeBroadcast <= 0 {
		cfg.MinAgeGapForAgeBroadcast = 1
	}
	s := &ServerCore{
		cfg:          cfg,
		out:          out,
		w:            tensor.Clone(initial),
		ages:         make([]float64, cfg.NumServers),
		frontier:     make([]int64, cfg.NumServers),
		didBroadcast: make(map[int]bool),
		cnt:          make(map[int]int),
		updates:      make(map[int]int),
		rates:        make(map[int]float64),
		sink:         obs.Nop{},
		clock:        zeroClock,
	}
	if holdsToken {
		s.token = &Token{Bid: 1, Ages: make([]float64, cfg.NumServers)}
		s.hasToken = true
		s.maxBidSeen = 1
	}
	return s
}

// zeroClock stamps events of an uninstrumented core.
func zeroClock() float64 { return 0 }

// Instrument attaches an observability sink and the clock that stamps its
// events (the simulator passes virtual time, the live runtime wall time
// since start). Nil arguments restore the defaults. Call before the first
// handler runs; the core emits KindClientUpdate, KindServerAgg,
// KindSyncStart/KindSyncEnd, and KindTokenPass events.
func (s *ServerCore) Instrument(sink obs.Sink, clock obs.Clock) {
	if sink == nil {
		sink = obs.Nop{}
	}
	if clock == nil {
		clock = zeroClock
	}
	s.sink = sink
	s.clock = clock
}

// Params returns the live parameter vector (callers must not modify).
func (s *ServerCore) Params() []float64 { return s.w }

// Age returns the current model age A_i.
func (s *ServerCore) Age() float64 { return s.age }

// HasToken reports whether this server currently holds the token.
func (s *ServerCore) HasToken() bool { return s.hasToken }

// SyncsTriggered reports how many synchronizations this server initiated
// as token holder.
func (s *ServerCore) SyncsTriggered() int { return s.syncsTriggered }

// SyncsJoined reports how many synchronizations this server participated
// in (including triggered ones).
func (s *ServerCore) SyncsJoined() int { return s.syncsJoined }

// UpdatesFrom reports how many updates client k has contributed.
func (s *ServerCore) UpdatesFrom(k int) int { return s.updates[k] }

// Frontier returns a copy of the merged-updates vector clock: entry i is
// the number of client updates first merged at server i whose influence
// this model has incorporated.
func (s *ServerCore) Frontier() []int64 {
	return append([]int64(nil), s.frontier...)
}

// StalenessWeight implements the dampening weight w_k^t of Alg. 1 l. 14.
// The pseudo-code writes w = A_i - A_k literally, but the text specifies
// the weight must "decrease the impact of the received update" as the age
// difference grows, so — consistent with the FedAsync staleness family the
// paper builds on and evaluates against — we use the polynomial form
// (1 + (A_i - A_k))^(-1/2): a fresh update (equal ages) gets weight 1,
// stale updates are damped. The 1/2 exponent matches the FedAsync
// configuration of the paper's evaluation, keeping the client-update
// aggregation of the two systems directly comparable. Sync-Spyker reuses
// this weight for its client-update aggregation.
func StalenessWeight(serverAge, clientAge float64) float64 {
	tau := serverAge - clientAge
	if tau < 0 {
		tau = 0
	}
	return 1 / math.Sqrt(1+tau)
}

// DecayRate implements the Decay function of Sec. 4.1 given the update
// count uk of a client and the per-server average uBar. Clients at or
// below the average keep the base rate.
//
// The paper's pseudo-formula subtracts beta*(uk-uBar) linearly, but on any
// long horizon the gap of an above-average client grows without bound, so
// the linear rule eventually pins every faster-than-average client at
// etaMin — which contradicts the paper's own stated goal, to "balance the
// overall contribution of clients" (Sec. 5.5), and destroys convergence in
// our emulation. We therefore use the hyperbolic rule the stated goal
// implies: lr = base * (uBar/uk)^beta. With beta=1 a client contributing
// r times the average rate is damped by exactly 1/r, so every client's
// long-run contribution mass is equal; beta=0 disables the decay; etaMin
// still floors the rate.
func DecayRate(base, beta, etaMin, uk, uBar float64) float64 {
	if uk <= uBar || uk <= 0 || uBar <= 0 {
		return base
	}
	lr := base * math.Pow(uBar/uk, beta)
	if lr < etaMin {
		lr = etaMin
	}
	return lr
}

// ServerAggWeight computes the sigmoid aggregation weight of Alg. 2
// ll. 47-48 for merging a remote model of age remoteAge into a local model
// of age localAge with activation rate phi.
func ServerAggWeight(phi, localAge, remoteAge float64) float64 {
	denom := localAge
	if denom < 1 {
		denom = 1 // guard: ages start at 0
	}
	a := phi * (remoteAge - localAge) / denom
	return 1 / (1 + math.Exp(-a))
}

// HandleClientUpdate processes a trained model from client k that was
// based on a server model of age clientAge (Alg. 1, Aggregation).
//
// When the decay is enabled, the update's aggregation weight is scaled by
// the same decay ratio as the client's learning rate. This realizes the
// paper's stated goal — "the impact of the updates that the most active
// clients generate is therefore dampened" — on the server side too:
// without it, a client whose learning rate has been floored at eta_min
// returns an (almost) unchanged copy of an old server model, and merging
// that echo at full weight drags the server back toward its own past.
func (s *ServerCore) HandleClientUpdate(k int, params []float64, clientAge float64) {
	s.HandleClientUpdateTraced(k, params, clientAge, 0)
}

// HandleClientUpdateTraced is HandleClientUpdate carrying the update's
// trace context: uid is the causal ID the client minted when the trained
// update left it (obs.UpdateUID), zero for untraced callers. The merge
// advances this server's own frontier coordinate either way, so lineage
// stays reconstructable from the server-side (origin, seq) identity even
// when clients do not mint IDs.
func (s *ServerCore) HandleClientUpdateTraced(k int, params []float64, clientAge float64, uid obs.UID) {
	s.updates[k]++
	s.total++
	lr := s.decayedRate(k)
	s.rates[k] = lr

	damp := 1.0
	if s.cfg.DecayEnabled && s.cfg.ClientLR > 0 {
		damp = lr / s.cfg.ClientLR
	}
	staleness := s.age - clientAge
	wk := StalenessWeight(s.age, clientAge)
	s.applyClientDelta(params, s.cfg.EtaServer*wk*damp)
	s.age++
	s.ages[s.cfg.ID] = s.age
	s.frontier[s.cfg.ID]++

	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindClientUpdate,
			Node: s.cfg.ID, Peer: k, Age: s.age, Stale: staleness,
			UID: uid, Front: s.Frontier(),
		})
	}
	// Borrow: the Outbound implementation copies if it retains (see the
	// Outbound contract); handing out the live vector keeps this hot path
	// allocation-free.
	s.out.ReplyClient(k, s.w, s.age, lr)
	s.checkSynchronization()
}

// ensureScratch grows the clip-path scratch buffer to hold at least n
// elements. Kept out of applyClientDelta — and pinned out-of-line,
// because the inliner would otherwise re-attribute the make to the call
// site — so the one legitimate allocation of the clip path (first use,
// or a model-size change) stays outside the //spyker:noalloc region.
//
//go:noinline
func (s *ServerCore) ensureScratch(n int) {
	if cap(s.deltaScratch) < n {
		s.deltaScratch = paramvec.New(n)
	}
}

// applyClientDelta merges a client update at the given effective weight:
// W += weight * (params - W). With RobustClipFactor enabled, the delta is
// first rescaled so its norm stays within the factor times the running
// average delta norm, bounding what any single (possibly malicious)
// update can do to the model.
//
//spyker:noalloc
func (s *ServerCore) applyClientDelta(params []float64, weight float64) {
	w := paramvec.Vec(s.w)
	if s.cfg.RobustClipFactor <= 0 {
		w.WeightedMergeInto(weight, params)
		return
	}
	s.ensureScratch(len(s.w))
	delta := s.deltaScratch[:len(s.w)]
	delta.DiffInto(params, s.w)
	norm := delta.L2Norm()
	scale := 1.0
	if s.emaReady {
		if limit := s.cfg.RobustClipFactor * s.deltaNormEMA; norm > limit && norm > 0 {
			scale = limit / norm
			s.clipped++
		}
	}
	w.AxpyInto(weight*scale, delta)
	// The EMA tracks post-clip norms so attackers cannot inflate the
	// clipping threshold by flooding oversized updates.
	post := norm * scale
	if !s.emaReady {
		s.deltaNormEMA = post
		s.emaReady = true
	} else {
		s.deltaNormEMA = 0.9*s.deltaNormEMA + 0.1*post
	}
}

// ReengageClient re-sends the current model to client k without
// processing an update. The restart path uses it to revive clients that
// starved while this server was down: their in-flight updates were
// discarded, so without a fresh model no reply would ever reach them and
// their training loop would stay parked forever.
func (s *ServerCore) ReengageClient(k int) {
	s.out.ReplyClient(k, s.w, s.age, s.decayedRate(k))
}

// ClippedUpdates reports how many client updates were norm-clipped.
func (s *ServerCore) ClippedUpdates() int { return s.clipped }

// decayedRate implements the Decay function of Sec. 4.1: clients that have
// contributed more updates than the per-server average get their learning
// rate reduced proportionally to the excess, floored at EtaMin. Beta is
// interpreted as a relative decay per excess update so the rule is
// invariant to the absolute learning-rate scale.
func (s *ServerCore) decayedRate(k int) float64 {
	if !s.cfg.DecayEnabled {
		return s.cfg.ClientLR
	}
	uk := float64(s.updates[k])
	nClients := s.cfg.NumClients
	if nClients <= 0 {
		nClients = len(s.updates)
	}
	uBar := float64(s.total) / float64(nClients)
	return DecayRate(s.cfg.ClientLR, s.cfg.Beta, s.cfg.EtaMin, uk, uBar)
}

// The paper's pseudo-code merges age knowledge with max(), which is only
// sound if ages grow monotonically — but ServerAgg (Alg. 2 l. 50) moves a
// server's age toward the remote age by a weighted average, so ages can
// DECREASE. With max-merge, a peer's historical peak age then sticks in
// everybody's knowledge map forever, the perceived inter-server drift
// never falls below hInter again, and the deployment synchronizes in an
// infinite loop (our protocol fuzzer found this livelock). Since the
// paper assumes FIFO links, a direct report from a server is always
// causally fresher than any previous one, so knowledge is overwritten
// instead (see DESIGN.md, deviation 10).

// HandleAge processes an age announcement from server j (Alg. 2 RcvAge).
func (s *ServerCore) HandleAge(j int, age float64) {
	s.ages[j] = age
	s.checkSynchronization()
}

// HandleToken processes token arrival (Alg. 2 RcvToken). Token entries
// may be staler than direct knowledge (the token traveled the ring), but
// adopting them is still safe: a wrongly perceived drift at worst
// triggers one extra exchange, whose direct reports refresh the map.
//
// Recovery extension: a token whose post-increment bid does not exceed
// the freshest round bid this server has witnessed is a stale survivor
// (the pre-crash token resurfacing after a regeneration) or a wire
// duplicate, and is discarded — the "Token.Bid dedup" that keeps recovery
// single-token. In fault-free executions the condition never fires: every
// token pass follows a completed round whose broadcasts carried exactly
// maxBidSeen, so the incoming bid is always maxBidSeen+1.
func (s *ServerCore) HandleToken(t Token) {
	s.ringSeq++
	if t.Bid+1 <= s.maxBidSeen {
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindTokenRetire,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: t.Bid, Note: "stale-incoming",
			})
		}
		return
	}
	if s.hasToken {
		// The incoming token outbids ours (a regenerated token overtaking
		// a dormant survivor): ours retires, the higher bid wins.
		s.retireOwnToken()
	}
	for j, a := range t.Ages {
		if j != s.cfg.ID {
			s.ages[j] = a
		}
	}
	s.ages[s.cfg.ID] = s.age
	t.Bid++
	s.token = &t
	s.hasToken = true
	if t.Bid > s.maxBidSeen {
		s.maxBidSeen = t.Bid
	}
	s.checkSynchronization()
}

// retireOwnToken discards the held token (it lost a bid comparison to a
// fresher round or token). Any round it was brokering is abandoned; the
// fresher round that superseded it redistributes the models anyway.
func (s *ServerCore) retireOwnToken() {
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindTokenRetire,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "superseded",
		})
	}
	s.token = nil
	s.hasToken = false
	s.ongoingSynchro = false
}

// DropToken discards a held token without forwarding it, simulating the
// token being lost in flight or with a crashed process — the injected
// fault internal/fault uses to exercise recovery without a full crash.
// It reports whether a token was actually held.
func (s *ServerCore) DropToken() bool {
	if !s.hasToken {
		return false
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindTokenRetire,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "injected-drop",
		})
	}
	s.token = nil
	s.hasToken = false
	s.ongoingSynchro = false
	return true
}

// Tick drives the clock-based recovery paths; now is the same clock that
// stamps this core's events (virtual seconds under the simulator, wall
// seconds since start in the live runtime). Callers invoke it
// periodically — a few times per TokenTimeout — from the same context
// that serializes the other handlers. With recovery disarmed (both
// TokenTimeout and SyncRetry zero, the default) it returns immediately
// and allocates nothing.
func (s *ServerCore) Tick(now float64) {
	if (s.cfg.TokenTimeout <= 0 && s.cfg.SyncRetry <= 0) || s.cfg.NumServers <= 1 {
		return
	}
	if s.cfg.SyncRetry > 0 {
		if s.hasToken && s.ongoingSynchro {
			if !s.stuckValid || s.stuckBid != s.token.Bid {
				s.stuckValid = true
				s.stuckBid = s.token.Bid
				s.stuckSince = now
			} else if now-s.stuckSince >= s.cfg.SyncRetry {
				// The round has not completed for a full retry period: a
				// participant is down or a broadcast was lost. Re-broadcast
				// under the same bid — peers that already served it only
				// re-aggregate, while a restarted server joins late and its
				// broadcast finally completes the count.
				s.stuckSince = now
				if s.sink.Enabled() {
					s.sink.Emit(obs.Event{
						Time: now, Kind: obs.KindSyncStart,
						Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "retry",
					})
				}
				s.out.BroadcastModel(s.w, s.age, s.token.Bid, s.frontier)
			}
		} else {
			s.stuckValid = false
		}
	}
	if s.cfg.TokenTimeout > 0 {
		if s.hasToken || s.ringSeq != s.lastRingSeq || !s.quietValid {
			s.lastRingSeq = s.ringSeq
			s.quietSince = now
			s.quietValid = true
			return
		}
		if now-s.quietSince >= s.cfg.TokenTimeout {
			s.quietSince = now
			s.regenerateToken(now)
		}
	}
}

// regenerateToken mints a replacement token after a silence timeout. The
// bid jumps past everything this server has witnessed by a margin of
// NumServers (covering in-flight increments of a token it may not have
// seen) plus its own ID — so concurrent regenerations at different
// servers mint distinct bids, and the strictly highest one wins every
// later comparison, retiring the others.
func (s *ServerCore) regenerateToken(now float64) {
	bid := s.maxBidSeen + s.cfg.NumServers + 1 + s.cfg.ID
	s.token = &Token{Bid: bid, Ages: tensor.Clone(s.ages)}
	s.hasToken = true
	s.maxBidSeen = bid
	s.tokenRegens++
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindTokenRegen,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: bid,
		})
	}
	s.checkSynchronization()
}

// TokenRegens reports how many times this server regenerated the token.
func (s *ServerCore) TokenRegens() int { return s.tokenRegens }

// MaxBidSeen reports the highest sync-round bid this server has
// witnessed (diagnostics and tests).
func (s *ServerCore) MaxBidSeen() int { return s.maxBidSeen }

// HandleServerModel processes another server's model broadcast
// (Alg. 2 RcvModel).
func (s *ServerCore) HandleServerModel(j int, params []float64, age float64, bid int) {
	s.HandleServerModelTraced(j, params, age, bid, nil)
}

// HandleServerModelTraced is HandleServerModel carrying the broadcast's
// provenance: front is the sender's merged-updates frontier at broadcast
// time (nil from untraced peers or pre-extension checkpoints). The local
// frontier max-merges it, because the weighted model merge incorporates
// the causal influence of every update the remote model had seen.
func (s *ServerCore) HandleServerModelTraced(j int, params []float64, age float64, bid int, front []int64) {
	// Fresh ring traffic resets the silence timer — but a holder's
	// SyncRetry re-broadcast of an already-served round does not, or a
	// stale holder stuck re-broadcasting a dead round would suppress the
	// regeneration that is supposed to supersede it.
	if bid > s.maxBidSeen || !s.didBroadcast[bid] {
		s.ringSeq++
	}
	if bid > s.maxBidSeen {
		s.maxBidSeen = bid
	}
	if s.hasToken && bid > s.token.Bid {
		// A round fresher than our token's exists, so ours is a stale
		// survivor of a regeneration (with a single token no broadcast can
		// outrun the holder's own bid): retire it and join the fresh round
		// below like any non-holder.
		s.retireOwnToken()
	}
	s.ages[j] = age
	if !s.didBroadcast[bid] {
		s.didBroadcast[bid] = true
		s.agePrev = s.age
		s.syncsJoined++
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindSyncStart,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: bid, Note: "join",
			})
		}
		s.out.BroadcastModel(s.w, s.age, bid, s.frontier)
	}
	s.serverAgg(j, params, age, bid, front)
	if s.hasToken && s.token.Bid == bid {
		s.cnt[bid]++
		if s.cnt[bid] == s.cfg.NumServers {
			s.forwardToken()
		}
	}
}

// forwardToken stamps the freshest ages into the token and passes it to
// the ring successor.
func (s *ServerCore) forwardToken() {
	t := *s.token
	t.Ages = tensor.Clone(s.ages)
	next := (s.cfg.ID + 1) % s.cfg.NumServers
	s.token = nil
	s.hasToken = false
	s.ongoingSynchro = false
	if s.sink.Enabled() {
		now := s.clock()
		s.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindSyncEnd,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: t.Bid,
		})
		s.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindTokenPass,
			Node: s.cfg.ID, Peer: next, Bid: t.Bid,
		})
	}
	s.out.SendToken(t, next)
}

// serverAgg merges server from's model into the local one
// (Alg. 2 ServerAgg): the sigmoid of the relative age difference decides
// how much the remote model counts, and the local age moves toward the
// remote age by the same effective weight. The remote frontier (when the
// broadcast carried one) max-merges into the local frontier, and the
// emitted event carries the post-merge frontier plus the round's UID so
// the lineage analyzer can attribute every newly covered update to this
// hop. (The guarded emission may allocate inside its obs callees when a
// sink is attached; the noalloc contract covers this function's own
// statements — see internal/lint.)
//
//spyker:noalloc
func (s *ServerCore) serverAgg(from int, params []float64, remoteAge float64, bid int, front []int64) {
	ageDrift := remoteAge - s.age
	w := ServerAggWeight(s.cfg.Phi, s.age, remoteAge)
	ew := s.cfg.EtaA * w
	paramvec.Vec(s.w).WeightedMergeInto(ew, params)
	s.age = (1-ew)*s.age + ew*remoteAge
	s.ages[s.cfg.ID] = s.age
	for o, v := range front {
		if o < len(s.frontier) && v > s.frontier[o] {
			s.frontier[o] = v
		}
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindServerAgg,
			Node: s.cfg.ID, Peer: from, Age: s.age, Stale: ageDrift,
			Bid: bid, UID: obs.RoundUID(from, bid), Front: s.Frontier(),
		})
	}
}

// checkSynchronization implements Alg. 2 l. 20-29: trigger a model
// exchange when server-model ages drifted apart by more than HInter or
// when this server aged by more than HIntra since the last exchange.
func (s *ServerCore) checkSynchronization() {
	maxA, minA := s.ages[0], s.ages[0]
	for _, a := range s.ages[1:] {
		if a > maxA {
			maxA = a
		}
		if a < minA {
			minA = a
		}
	}
	if maxA-minA < s.cfg.HInter && s.age-s.agePrev < s.cfg.HIntra {
		return
	}
	if s.cfg.NumServers == 1 {
		// A single-server deployment has no peers to exchange with; just
		// reset the intra-server trigger.
		s.agePrev = s.age
		return
	}
	if s.hasToken && !s.ongoingSynchro {
		s.agePrev = s.age
		s.ongoingSynchro = true
		bid := s.token.Bid
		s.didBroadcast[bid] = true
		s.cnt[bid] = 1 // counts our own model
		s.syncsTriggered++
		s.syncsJoined++
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindSyncStart,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: bid, Note: "trigger",
			})
		}
		s.out.BroadcastModel(s.w, s.age, bid, s.frontier)
	} else if !s.hasToken {
		if s.age-s.lastAgeBroadcast >= s.cfg.MinAgeGapForAgeBroadcast {
			s.lastAgeBroadcast = s.age
			s.out.BroadcastAge(s.age)
		}
	}
}
