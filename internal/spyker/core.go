// Package spyker implements the paper's primary contribution: the fully
// asynchronous multi-server federated-learning protocol. The protocol
// logic (Alg. 1 client/server interaction and Alg. 2 token-triggered
// server-model exchange) lives in ServerCore, a transport-agnostic state
// machine driven by message-handler calls. The same core is executed both
// under the discrete-event simulator (sim.go) and over real TCP by the
// live runtime (internal/live).
package spyker

import (
	"fmt"
	"math"

	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// Token is the circulating token of Alg. 2. It carries a synchronization
// ID (bid), the freshest known age of every server model, and — the
// elastic-membership extension — the ring membership the sender believed
// in, so a token pass (or a regenerated token) also propagates membership
// changes. Mem is the zero Membership on tokens from legacy senders and
// checkpoints; receivers ignore it then.
type Token struct {
	Bid  int
	Ages []float64
	Mem  ring.Membership
}

// Outbound is everything a ServerCore needs to talk to the outside world.
// Implementations route over the discrete-event simulator or over TCP.
//
// Borrow contract: the params slice passed to ReplyClient and
// BroadcastModel is the core's live model vector, valid only for the
// duration of the call — the core mutates it on the next handler. An
// implementation that delivers asynchronously (every real transport does)
// must copy the slice before returning; internal/paramvec pools make that
// copy allocation-free.
type Outbound interface {
	// ReplyClient returns the new server model to client k along with the
	// model age and the client's next learning rate (Alg. 1 l. 19).
	ReplyClient(k int, params []float64, age, lr float64)
	// BroadcastModel sends this server's model, age and the current
	// synchronization ID to every other server (Alg. 2 l. 25/35). front is
	// the sender's merged-updates frontier at broadcast time — the causal
	// provenance the receiver max-merges so update lineage is traceable
	// end to end; like params it is a borrow valid only for the duration
	// of the call. mem is the sender's current ring membership, attached
	// to the message header so receivers converge on the freshest epoch;
	// unlike params and front it may be aliased after the call returns
	// (Membership slices are immutable by the ring package's contract).
	BroadcastModel(params []float64, age float64, bid int, front []int64, mem ring.Membership)
	// BroadcastAge announces this server's model age to every other
	// server so the token holder can trigger a synchronization
	// (Alg. 2 l. 29). mem rides the header like on BroadcastModel.
	BroadcastAge(age float64, mem ring.Membership)
	// SendToken forwards the token to the next server on the ring
	// (Alg. 2 l. 41).
	SendToken(t Token, next int)
}

// Config parameterizes a ServerCore.
type Config struct {
	ID         int // this server's index in 0..N-1
	NumServers int
	NumClients int // clients assigned to THIS server (for the decay average)

	EtaServer float64 // client-update aggregation rate eta_i
	Phi       float64 // sigmoid activation rate
	EtaA      float64 // server-model aggregation rate eta_a
	HInter    float64 // inter-server age-drift threshold
	HIntra    float64 // intra-server age-drift threshold

	ClientLR     float64 // base local learning rate eta_k
	DecayEnabled bool
	Beta         float64 // relative decay per excess update
	EtaMin       float64 // learning-rate floor

	// MinAgeGapForAgeBroadcast rate-limits age announcements from
	// non-token holders: a server only re-broadcasts its age after its
	// model aged by at least this much since the previous announcement.
	// Zero defaults to 1.
	MinAgeGapForAgeBroadcast float64

	// RobustClipFactor > 0 enables Byzantine-robust norm clipping of
	// client updates (an extension; the paper lists "Byzantine Learning"
	// as a keyword but evaluates only honest clients): the delta a client
	// update applies is rescaled so its L2 norm never exceeds
	// RobustClipFactor times the running average of honest delta norms.
	// Sign-flipped or noise updates from malicious clients are thereby
	// bounded to the influence of one ordinary update. 0 disables.
	RobustClipFactor float64

	// TokenTimeout > 0 arms token-loss recovery (the crash/recovery
	// extension, ROADMAP 4(c)): a server that neither holds the token nor
	// has observed fresh ring traffic (a token arrival or a previously
	// unseen sync-round broadcast) for this many clock seconds — as
	// sampled by Tick — regenerates the token with a strictly higher bid,
	// so any stale survivor that later resurfaces is discarded by the bid
	// comparison in HandleToken. 0 (the default) disables recovery and
	// leaves the protocol exactly as specified by Alg. 2. The timeout
	// should be several times the expected gap between synchronizations:
	// a spurious regeneration during a legitimately quiet phase is safe
	// (the bid order retires the losing token) but costs an extra round.
	TokenTimeout float64

	// SyncRetry > 0 makes a token holder whose synchronization round has
	// made no progress for this many clock seconds re-broadcast its model
	// under the same bid. A round stalls permanently when a participant
	// was down (or a broadcast was lost) — the holder's cnt can then never
	// reach NumServers — and the retry lets a restarted server join the
	// round late, completing it. 0 disables.
	SyncRetry float64
}

// ServerCore is the Spyker server state machine. It is not safe for
// concurrent use; callers serialize handler invocations (the simulator is
// single-threaded, the live runtime uses one mutex per server).
type ServerCore struct {
	cfg Config
	out Outbound

	// mem is the ring membership this server currently believes in (the
	// elastic-membership extension). Per-server state below (ages,
	// frontier) is indexed by stable server ID and sized mem.Slots();
	// the arrays only ever grow across epoch changes — a departed
	// member's slot keeps its last value, so carried-over ages and
	// frontiers never need re-indexing.
	mem ring.Membership

	w       []float64
	age     float64
	agePrev float64

	ages             []float64 // freshest known age per server (by stable ID)
	token            *Token
	hasToken         bool
	ongoingSynchro   bool
	didBroadcast     map[int]bool
	cnt              map[int]int
	lastAgeBroadcast float64

	updates map[int]int     // u[k]: updates received per client
	rates   map[int]float64 // current learning rate per client
	total   int             // total updates received (for the average)

	// frontier is the merged-updates vector clock: frontier[i] counts how
	// many client updates first merged at server i are incorporated into
	// this model, directly (i == cfg.ID, advanced per HandleClientUpdate)
	// or transitively (max-merged from the frontier riding on every model
	// broadcast). It is plain protocol state, maintained whether or not a
	// sink is attached, so enabling provenance tracing can never change
	// the schedule; the lineage analyzer (obs.BuildLineage) reconstructs
	// every update's server-reach set and hop path from the frontiers
	// stamped on client-update and server-agg events.
	frontier []int64

	// Byzantine-robust clipping state: exponential moving average of the
	// (post-clip) client delta norms. deltaScratch is the persistent
	// model-sized buffer the clip path computes deltas into, so clipping
	// costs no per-update allocation.
	deltaNormEMA float64
	emaReady     bool
	clipped      int // updates whose delta was clipped
	deltaScratch paramvec.Vec

	syncsTriggered int
	syncsJoined    int

	// Token-loss recovery state (see Config.TokenTimeout and Tick).
	// maxBidSeen is the highest sync-round bid this server has witnessed —
	// carried by an adopted token or by a received model broadcast; a
	// token whose post-increment bid does not exceed it is a stale
	// survivor (or wire duplicate) and is discarded. ringSeq counts fresh
	// ring activity; Tick compares it against lastRingSeq to measure
	// silence. stuck* track how long the holder's current round has made
	// no progress (the SyncRetry path).
	maxBidSeen  int
	ringSeq     uint64
	lastRingSeq uint64
	quietSince  float64
	quietValid  bool
	stuckBid    int
	stuckSince  float64
	stuckValid  bool
	tokenRegens int

	// Observability (see Instrument): sink receives protocol events
	// stamped with clock(). Defaults to the no-op sink and a zero clock,
	// so an uninstrumented core pays one interface call per handler.
	sink  obs.Sink
	clock obs.Clock

	// audit, when armed (ArmAudit), receives the raw delta of every
	// client update at delta-apply time. Same passivity contract as
	// sink: the auditor only observes, never feeds back, and a nil
	// auditor skips the statistics entirely — the disarmed hot path is
	// one pointer check, byte-identical to a pre-audit core.
	audit Auditor
}

// Auditor receives every merged client-update delta — the contribution
// audit plane (internal/obs/audit implements it). now is the core's
// clock, delta the raw pre-clip difference between the client's update
// and the server model, model the server's current parameter vector
// (pre-merge), baseAge the age of the model the client trained from,
// and age the server's current model age (staleness = age - baseAge).
// Handing the auditor the model and both ages lets it subtract the
// staleness drift — the server model's movement between the client's
// receive and its send — and recover the client's pure training
// contribution. delta and model are borrows valid only for the
// duration of the call; implementations must not retain or mutate
// them.
type Auditor interface {
	Observe(now float64, client int, delta, model []float64, baseAge, age float64)
}

// NewServerCore creates a server with the given initial model on the
// fixed construction-time ring 0..NumServers-1 at epoch 0. If holdsToken
// is true the server starts as the token holder with bid 1 (paper: the
// token initially resides at one randomly chosen server).
func NewServerCore(cfg Config, initial []float64, holdsToken bool, out Outbound) *ServerCore {
	if cfg.NumServers <= 0 || cfg.ID < 0 || cfg.ID >= cfg.NumServers {
		panic(fmt.Sprintf("spyker: bad server id %d of %d", cfg.ID, cfg.NumServers))
	}
	return newServerCore(cfg, ring.Fixed(cfg.NumServers), initial, holdsToken, out)
}

// newServerCore creates a server on an arbitrary ring membership — the
// elastic path used by checkpoint restore and runtime joins, where the
// server's stable ID need not lie in 0..NumServers-1 as long as it is a
// ring member.
func newServerCore(cfg Config, mem ring.Membership, initial []float64, holdsToken bool, out Outbound) *ServerCore {
	if !mem.Contains(cfg.ID) {
		panic(fmt.Sprintf("spyker: server %d not a member of %s", cfg.ID, mem))
	}
	if cfg.MinAgeGapForAgeBroadcast <= 0 {
		cfg.MinAgeGapForAgeBroadcast = 1
	}
	slots := mem.Slots()
	s := &ServerCore{
		cfg:          cfg,
		out:          out,
		mem:          mem.Clone(),
		w:            tensor.Clone(initial),
		ages:         make([]float64, slots),
		frontier:     make([]int64, slots),
		didBroadcast: make(map[int]bool),
		cnt:          make(map[int]int),
		updates:      make(map[int]int),
		rates:        make(map[int]float64),
		sink:         obs.Nop{},
		clock:        zeroClock,
	}
	if holdsToken {
		s.token = &Token{Bid: 1, Ages: make([]float64, slots), Mem: s.mem}
		s.hasToken = true
		s.maxBidSeen = 1
	}
	return s
}

// zeroClock stamps events of an uninstrumented core.
func zeroClock() float64 { return 0 }

// Instrument attaches an observability sink and the clock that stamps its
// events (the simulator passes virtual time, the live runtime wall time
// since start). Nil arguments restore the defaults. Call before the first
// handler runs; the core emits KindClientUpdate, KindServerAgg,
// KindSyncStart/KindSyncEnd, and KindTokenPass events.
func (s *ServerCore) Instrument(sink obs.Sink, clock obs.Clock) {
	if sink == nil {
		sink = obs.Nop{}
	}
	if clock == nil {
		clock = zeroClock
	}
	s.sink = sink
	s.clock = clock
}

// ArmAudit attaches (or with nil detaches) the contribution audit
// plane. Call before the first handler runs, alongside Instrument; a
// restored or rebuilt core must be re-armed like it must be
// re-instrumented.
func (s *ServerCore) ArmAudit(a Auditor) { s.audit = a }

// Params returns the live parameter vector (callers must not modify).
func (s *ServerCore) Params() []float64 { return s.w }

// Age returns the current model age A_i.
func (s *ServerCore) Age() float64 { return s.age }

// KnownAges returns a copy of this server's age-vector knowledge (what
// it believes every member slot's model age to be, its own included).
func (s *ServerCore) KnownAges() []float64 {
	return append([]float64(nil), s.ages...)
}

// HasToken reports whether this server currently holds the token.
func (s *ServerCore) HasToken() bool { return s.hasToken }

// SyncsTriggered reports how many synchronizations this server initiated
// as token holder.
func (s *ServerCore) SyncsTriggered() int { return s.syncsTriggered }

// SyncsJoined reports how many synchronizations this server participated
// in (including triggered ones).
func (s *ServerCore) SyncsJoined() int { return s.syncsJoined }

// UpdatesFrom reports how many updates client k has contributed.
func (s *ServerCore) UpdatesFrom(k int) int { return s.updates[k] }

// Membership returns the ring membership this server currently believes
// in. The returned value is a borrow: callers must not mutate its
// Members slice (the ring package's immutability contract makes reading
// it safe even while the core adopts newer epochs, because adoption
// replaces the slice rather than mutating it).
func (s *ServerCore) Membership() ring.Membership { return s.mem }

// Epoch returns the membership epoch this server currently believes in.
func (s *ServerCore) Epoch() int { return s.mem.Epoch }

// SetNumClients updates the client count that feeds the decay average —
// the elastic runtime re-homes clients between servers, and the decay
// rule should track the population a server actually serves.
func (s *ServerCore) SetNumClients(n int) { s.cfg.NumClients = n }

// growTo extends the per-server state arrays to at least n slots. They
// never shrink: a departed member's slot keeps its last age/frontier
// value, which is exactly what carry-over across epochs requires.
func (s *ServerCore) growTo(n int) {
	for len(s.ages) < n {
		s.ages = append(s.ages, 0)
	}
	for len(s.frontier) < n {
		s.frontier = append(s.frontier, 0)
	}
}

// observeMembership folds a membership header from any inbound message
// into this server's belief: strictly fresher ones (ring.Compare order)
// are adopted, everything else — including the zero header of legacy
// senders — is ignored.
func (s *ServerCore) observeMembership(mem ring.Membership) {
	if ring.Compare(mem, s.mem) > 0 {
		s.adoptMembership(mem, "observed")
	}
}

// adoptMembership installs a fresher ring membership. The per-server
// arrays grow to the new slot count (carry-over: existing ages and
// frontier entries keep their slots), the silence detector counts the
// adoption as fresh ring activity, and two ring-shape consequences are
// applied immediately: a server that finds itself excluded retires any
// token it holds (it is no longer allowed to broker rounds), and a
// holder whose in-progress round already has enough broadcasts under
// the shrunken ring completes it on the spot — the departed member's
// missing broadcast must not stall the round until SyncRetry.
func (s *ServerCore) adoptMembership(mem ring.Membership, note string) {
	s.mem = mem.Clone() // wire headers alias transport buffers; own it
	s.growTo(s.mem.Slots())
	s.ringSeq++
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindMembership,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.mem.Epoch, Note: note,
		})
	}
	if !s.mem.Contains(s.cfg.ID) {
		if s.hasToken {
			if s.sink.Enabled() {
				s.sink.Emit(obs.Event{
					Time: s.clock(), Kind: obs.KindTokenRetire,
					Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "excluded",
				})
			}
			s.token = nil
			s.hasToken = false
			s.ongoingSynchro = false
		}
		return
	}
	if s.hasToken && s.ongoingSynchro && s.cnt[s.token.Bid] >= s.mem.Count() {
		s.forwardToken()
	}
}

// AdmitMember adds newID to the ring (epoch bump, broadcast to the
// current members) and returns the State a new server with that ID
// should bootstrap from: this server's model, age knowledge and frontier,
// re-keyed to the joiner's identity with the per-identity protocol state
// (token, round participation, client counters) cleared. Admitting an
// existing member is idempotent — no epoch bump, just a fresh snapshot.
func (s *ServerCore) AdmitMember(newID int) (State, error) {
	if newID < 0 {
		return State{}, fmt.Errorf("spyker: admit negative server ID %d", newID)
	}
	if !s.mem.Contains(newID) {
		s.adoptMembership(s.mem.WithMember(newID), "admit")
		// Announce the new ring to the current members right away; the
		// age header is the cheapest membership carrier.
		s.lastAgeBroadcast = s.age
		s.out.BroadcastAge(s.age, s.mem)
	}
	var st State
	s.SnapshotInto(&st)
	st.Config.ID = newID
	st.Config.NumServers = s.mem.Slots()
	st.Config.NumClients = 0
	st.Ages[newID] = st.Age // the joiner starts with this model, at its age
	st.Token = nil
	st.OngoingSynchro = false
	// DidBroadcast and Cnt are cleared rather than copied: membership
	// adoption grows the completion target of in-flight rounds, so the
	// joiner must be free to broadcast into a round the sponsor already
	// served — inheriting the sponsor's dedup set would stall such rounds
	// until SyncRetry.
	st.DidBroadcast = nil
	st.Cnt = nil
	st.Updates = nil
	st.Total = 0
	st.SyncsTriggered = 0
	st.SyncsJoined = 0
	st.TokenRegens = 0
	return st, nil
}

// ExcludeMember removes id from the ring (epoch bump, broadcast to the
// survivors). Call it on any surviving member after a leave or an
// unrecoverable crash; excluding a non-member is a no-op. The excluded
// server may keep running — once the new epoch reaches it, it retires
// any token it holds and stops participating in rounds.
func (s *ServerCore) ExcludeMember(id int) {
	if !s.mem.Contains(id) {
		return
	}
	s.adoptMembership(s.mem.WithoutMember(id), "exclude")
	s.lastAgeBroadcast = s.age
	s.out.BroadcastAge(s.age, s.mem)
}

// YieldToken gracefully hands a held, idle token to the ring successor —
// the leave path: a server about to depart passes the token on instead
// of forcing the survivors through a TokenTimeout regeneration. It
// reports whether the token was sent; a holder mid-synchronization (or a
// singleton ring) returns false, and the caller falls back to DropToken
// plus timeout recovery.
func (s *ServerCore) YieldToken() bool {
	if !s.hasToken || s.ongoingSynchro {
		return false
	}
	next := s.mem.Successor(s.cfg.ID)
	if next == s.cfg.ID {
		return false
	}
	t := *s.token
	t.Ages = tensor.Clone(s.ages)
	t.Mem = s.mem
	s.token = nil
	s.hasToken = false
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindTokenPass,
			Node: s.cfg.ID, Peer: next, Bid: t.Bid, Note: "yield",
		})
	}
	s.out.SendToken(t, next)
	return true
}

// Frontier returns a copy of the merged-updates vector clock: entry i is
// the number of client updates first merged at server i whose influence
// this model has incorporated.
func (s *ServerCore) Frontier() []int64 {
	return append([]int64(nil), s.frontier...)
}

// StalenessWeight implements the dampening weight w_k^t of Alg. 1 l. 14.
// The pseudo-code writes w = A_i - A_k literally, but the text specifies
// the weight must "decrease the impact of the received update" as the age
// difference grows, so — consistent with the FedAsync staleness family the
// paper builds on and evaluates against — we use the polynomial form
// (1 + (A_i - A_k))^(-1/2): a fresh update (equal ages) gets weight 1,
// stale updates are damped. The 1/2 exponent matches the FedAsync
// configuration of the paper's evaluation, keeping the client-update
// aggregation of the two systems directly comparable. Sync-Spyker reuses
// this weight for its client-update aggregation.
func StalenessWeight(serverAge, clientAge float64) float64 {
	tau := serverAge - clientAge
	if tau < 0 {
		tau = 0
	}
	return 1 / math.Sqrt(1+tau)
}

// DecayRate implements the Decay function of Sec. 4.1 given the update
// count uk of a client and the per-server average uBar. Clients at or
// below the average keep the base rate.
//
// The paper's pseudo-formula subtracts beta*(uk-uBar) linearly, but on any
// long horizon the gap of an above-average client grows without bound, so
// the linear rule eventually pins every faster-than-average client at
// etaMin — which contradicts the paper's own stated goal, to "balance the
// overall contribution of clients" (Sec. 5.5), and destroys convergence in
// our emulation. We therefore use the hyperbolic rule the stated goal
// implies: lr = base * (uBar/uk)^beta. With beta=1 a client contributing
// r times the average rate is damped by exactly 1/r, so every client's
// long-run contribution mass is equal; beta=0 disables the decay; etaMin
// still floors the rate.
func DecayRate(base, beta, etaMin, uk, uBar float64) float64 {
	if uk <= uBar || uk <= 0 || uBar <= 0 {
		return base
	}
	lr := base * math.Pow(uBar/uk, beta)
	if lr < etaMin {
		lr = etaMin
	}
	return lr
}

// ServerAggWeight computes the sigmoid aggregation weight of Alg. 2
// ll. 47-48 for merging a remote model of age remoteAge into a local model
// of age localAge with activation rate phi.
func ServerAggWeight(phi, localAge, remoteAge float64) float64 {
	denom := localAge
	if denom < 1 {
		denom = 1 // guard: ages start at 0
	}
	a := phi * (remoteAge - localAge) / denom
	return 1 / (1 + math.Exp(-a))
}

// HandleClientUpdate processes a trained model from client k that was
// based on a server model of age clientAge (Alg. 1, Aggregation).
//
// When the decay is enabled, the update's aggregation weight is scaled by
// the same decay ratio as the client's learning rate. This realizes the
// paper's stated goal — "the impact of the updates that the most active
// clients generate is therefore dampened" — on the server side too:
// without it, a client whose learning rate has been floored at eta_min
// returns an (almost) unchanged copy of an old server model, and merging
// that echo at full weight drags the server back toward its own past.
func (s *ServerCore) HandleClientUpdate(k int, params []float64, clientAge float64) {
	s.HandleClientUpdateTraced(k, params, clientAge, 0)
}

// HandleClientUpdateTraced is HandleClientUpdate carrying the update's
// trace context: uid is the causal ID the client minted when the trained
// update left it (obs.UpdateUID), zero for untraced callers. The merge
// advances this server's own frontier coordinate either way, so lineage
// stays reconstructable from the server-side (origin, seq) identity even
// when clients do not mint IDs.
func (s *ServerCore) HandleClientUpdateTraced(k int, params []float64, clientAge float64, uid obs.UID) {
	s.updates[k]++
	s.total++
	lr := s.decayedRate(k)
	s.rates[k] = lr

	damp := 1.0
	if s.cfg.DecayEnabled && s.cfg.ClientLR > 0 {
		damp = lr / s.cfg.ClientLR
	}
	staleness := s.age - clientAge
	wk := StalenessWeight(s.age, clientAge)
	if s.audit != nil {
		// Audit sees the raw pre-clip delta. The clip path recomputes
		// the same difference into the same scratch below — the model is
		// untouched in between — so arming audit costs one extra diff
		// and never an allocation.
		s.ensureScratch(len(s.w))
		d := s.deltaScratch[:len(s.w)]
		d.DiffInto(params, s.w)
		s.audit.Observe(s.clock(), k, d, s.w, clientAge, s.age)
	}
	s.applyClientDelta(params, s.cfg.EtaServer*wk*damp)
	s.age++
	s.ages[s.cfg.ID] = s.age
	s.frontier[s.cfg.ID]++

	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindClientUpdate,
			Node: s.cfg.ID, Peer: k, Age: s.age, Stale: staleness,
			UID: uid, Front: s.Frontier(),
		})
	}
	// Borrow: the Outbound implementation copies if it retains (see the
	// Outbound contract); handing out the live vector keeps this hot path
	// allocation-free.
	s.out.ReplyClient(k, s.w, s.age, lr)
	s.checkSynchronization()
}

// ensureScratch grows the clip-path scratch buffer to hold at least n
// elements. Kept out of applyClientDelta — and pinned out-of-line,
// because the inliner would otherwise re-attribute the make to the call
// site — so the one legitimate allocation of the clip path (first use,
// or a model-size change) stays outside the //spyker:noalloc region.
//
//go:noinline
func (s *ServerCore) ensureScratch(n int) {
	if cap(s.deltaScratch) < n {
		s.deltaScratch = paramvec.New(n)
	}
}

// applyClientDelta merges a client update at the given effective weight:
// W += weight * (params - W). With RobustClipFactor enabled, the delta is
// first rescaled so its norm stays within the factor times the running
// average delta norm, bounding what any single (possibly malicious)
// update can do to the model.
//
//spyker:noalloc
func (s *ServerCore) applyClientDelta(params []float64, weight float64) {
	w := paramvec.Vec(s.w)
	if s.cfg.RobustClipFactor <= 0 {
		w.WeightedMergeInto(weight, params)
		return
	}
	s.ensureScratch(len(s.w))
	delta := s.deltaScratch[:len(s.w)]
	delta.DiffInto(params, s.w)
	norm := delta.L2Norm()
	scale := 1.0
	if s.emaReady {
		if limit := s.cfg.RobustClipFactor * s.deltaNormEMA; norm > limit && norm > 0 {
			scale = limit / norm
			s.clipped++
		}
	}
	w.AxpyInto(weight*scale, delta)
	// The EMA tracks post-clip norms so attackers cannot inflate the
	// clipping threshold by flooding oversized updates.
	post := norm * scale
	if !s.emaReady {
		s.deltaNormEMA = post
		s.emaReady = true
	} else {
		s.deltaNormEMA = 0.9*s.deltaNormEMA + 0.1*post
	}
}

// ReengageClient re-sends the current model to client k without
// processing an update. The restart path uses it to revive clients that
// starved while this server was down: their in-flight updates were
// discarded, so without a fresh model no reply would ever reach them and
// their training loop would stay parked forever.
func (s *ServerCore) ReengageClient(k int) {
	s.out.ReplyClient(k, s.w, s.age, s.decayedRate(k))
}

// ClippedUpdates reports how many client updates were norm-clipped.
func (s *ServerCore) ClippedUpdates() int { return s.clipped }

// decayedRate implements the Decay function of Sec. 4.1: clients that have
// contributed more updates than the per-server average get their learning
// rate reduced proportionally to the excess, floored at EtaMin. Beta is
// interpreted as a relative decay per excess update so the rule is
// invariant to the absolute learning-rate scale.
func (s *ServerCore) decayedRate(k int) float64 {
	if !s.cfg.DecayEnabled {
		return s.cfg.ClientLR
	}
	uk := float64(s.updates[k])
	nClients := s.cfg.NumClients
	if nClients <= 0 {
		nClients = len(s.updates)
	}
	uBar := float64(s.total) / float64(nClients)
	return DecayRate(s.cfg.ClientLR, s.cfg.Beta, s.cfg.EtaMin, uk, uBar)
}

// The paper's pseudo-code merges age knowledge with max(), which is only
// sound if ages grow monotonically — but ServerAgg (Alg. 2 l. 50) moves a
// server's age toward the remote age by a weighted average, so ages can
// DECREASE. With max-merge, a peer's historical peak age then sticks in
// everybody's knowledge map forever, the perceived inter-server drift
// never falls below hInter again, and the deployment synchronizes in an
// infinite loop (our protocol fuzzer found this livelock). Since the
// paper assumes FIFO links, a direct report from a server is always
// causally fresher than any previous one, so knowledge is overwritten
// instead (see DESIGN.md, deviation 10).

// HandleAge processes an age announcement from server j (Alg. 2 RcvAge).
func (s *ServerCore) HandleAge(j int, age float64) {
	s.HandleAgeTagged(j, age, ring.Membership{})
}

// HandleAgeTagged is HandleAge carrying the sender's membership header
// (zero from legacy senders). The header is observed first, so an age
// announcement from a just-joined server both grows the local arrays
// and installs the new epoch before the age lands.
func (s *ServerCore) HandleAgeTagged(j int, age float64, mem ring.Membership) {
	s.observeMembership(mem)
	if j < 0 {
		return
	}
	s.growTo(j + 1)
	s.ages[j] = age
	s.checkSynchronization()
}

// HandleToken processes token arrival (Alg. 2 RcvToken). Token entries
// may be staler than direct knowledge (the token traveled the ring), but
// adopting them is still safe: a wrongly perceived drift at worst
// triggers one extra exchange, whose direct reports refresh the map.
//
// Recovery extension: a token whose post-increment bid does not exceed
// the freshest round bid this server has witnessed is a stale survivor
// (the pre-crash token resurfacing after a regeneration) or a wire
// duplicate, and is discarded — the "Token.Bid dedup" that keeps recovery
// single-token. In fault-free executions the condition never fires: every
// token pass follows a completed round whose broadcasts carried exactly
// maxBidSeen, so the incoming bid is always maxBidSeen+1.
func (s *ServerCore) HandleToken(t Token) {
	s.ringSeq++
	// The membership header is observed before the bid dedup: even a
	// stale token's ring knowledge may be fresher than ours, and an
	// excluded receiver must learn of its exclusion no matter which
	// token incarnation brings the news.
	s.observeMembership(t.Mem)
	if t.Bid+1 <= s.maxBidSeen {
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindTokenRetire,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: t.Bid, Note: "stale-incoming",
			})
		}
		return
	}
	if !s.mem.Contains(s.cfg.ID) {
		// This server has been excluded from the ring (the token itself
		// may have brought the news). It must not broker rounds, but
		// dropping the token would stall the survivors until a
		// TokenTimeout regeneration — so relay it unchanged to the ring
		// successor, which also carries the exclusion epoch forward.
		next := s.mem.Successor(s.cfg.ID)
		if next == s.cfg.ID {
			return
		}
		t.Mem = s.mem
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindTokenPass,
				Node: s.cfg.ID, Peer: next, Bid: t.Bid, Note: "relay-excluded",
			})
		}
		s.out.SendToken(t, next)
		return
	}
	if s.hasToken {
		// The incoming token outbids ours (a regenerated token overtaking
		// a dormant survivor): ours retires, the higher bid wins.
		s.retireOwnToken()
	}
	for j, a := range t.Ages {
		if j != s.cfg.ID && j < len(s.ages) {
			s.ages[j] = a
		}
	}
	s.ages[s.cfg.ID] = s.age
	t.Bid++
	s.token = &t
	s.hasToken = true
	if t.Bid > s.maxBidSeen {
		s.maxBidSeen = t.Bid
	}
	s.checkSynchronization()
}

// retireOwnToken discards the held token (it lost a bid comparison to a
// fresher round or token). Any round it was brokering is abandoned; the
// fresher round that superseded it redistributes the models anyway.
func (s *ServerCore) retireOwnToken() {
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindTokenRetire,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "superseded",
		})
	}
	s.token = nil
	s.hasToken = false
	s.ongoingSynchro = false
}

// DropToken discards a held token without forwarding it, simulating the
// token being lost in flight or with a crashed process — the injected
// fault internal/fault uses to exercise recovery without a full crash.
// It reports whether a token was actually held.
func (s *ServerCore) DropToken() bool {
	if !s.hasToken {
		return false
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindTokenRetire,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "injected-drop",
		})
	}
	s.token = nil
	s.hasToken = false
	s.ongoingSynchro = false
	return true
}

// Tick drives the clock-based recovery paths; now is the same clock that
// stamps this core's events (virtual seconds under the simulator, wall
// seconds since start in the live runtime). Callers invoke it
// periodically — a few times per TokenTimeout — from the same context
// that serializes the other handlers. With recovery disarmed (both
// TokenTimeout and SyncRetry zero, the default) it returns immediately
// and allocates nothing.
func (s *ServerCore) Tick(now float64) {
	if s.cfg.TokenTimeout <= 0 && s.cfg.SyncRetry <= 0 {
		return
	}
	// A singleton ring has no peers to recover with, and an excluded
	// server has no business regenerating the ring's token.
	if s.mem.Count() <= 1 || !s.mem.Contains(s.cfg.ID) {
		return
	}
	if s.cfg.SyncRetry > 0 {
		if s.hasToken && s.ongoingSynchro {
			if !s.stuckValid || s.stuckBid != s.token.Bid {
				s.stuckValid = true
				s.stuckBid = s.token.Bid
				s.stuckSince = now
			} else if now-s.stuckSince >= s.cfg.SyncRetry {
				// The round has not completed for a full retry period: a
				// participant is down or a broadcast was lost. Re-broadcast
				// under the same bid — peers that already served it only
				// re-aggregate, while a restarted server joins late and its
				// broadcast finally completes the count.
				s.stuckSince = now
				if s.sink.Enabled() {
					s.sink.Emit(obs.Event{
						Time: now, Kind: obs.KindSyncStart,
						Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid, Note: "retry",
					})
				}
				s.out.BroadcastModel(s.w, s.age, s.token.Bid, s.frontier, s.mem)
			}
		} else {
			s.stuckValid = false
		}
	}
	if s.cfg.TokenTimeout > 0 {
		if s.hasToken || s.ringSeq != s.lastRingSeq || !s.quietValid {
			s.lastRingSeq = s.ringSeq
			s.quietSince = now
			s.quietValid = true
			return
		}
		if now-s.quietSince >= s.cfg.TokenTimeout {
			s.quietSince = now
			s.regenerateToken(now)
		}
	}
}

// regenerateToken mints a replacement token after a silence timeout. The
// bid jumps past everything this server has witnessed by a margin of the
// member count (covering in-flight increments of a token it may not have
// seen) plus its member index (ring.RegenBid) — so concurrent
// regenerations at different servers mint distinct bids, and the
// strictly highest one wins every later comparison, retiring the others.
func (s *ServerCore) regenerateToken(now float64) {
	bid := s.mem.RegenBid(s.maxBidSeen, s.cfg.ID)
	s.token = &Token{Bid: bid, Ages: tensor.Clone(s.ages), Mem: s.mem}
	s.hasToken = true
	s.maxBidSeen = bid
	s.tokenRegens++
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindTokenRegen,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: bid,
		})
	}
	s.checkSynchronization()
}

// TokenRegens reports how many times this server regenerated the token.
func (s *ServerCore) TokenRegens() int { return s.tokenRegens }

// MaxBidSeen reports the highest sync-round bid this server has
// witnessed (diagnostics and tests).
func (s *ServerCore) MaxBidSeen() int { return s.maxBidSeen }

// HandleServerModel processes another server's model broadcast
// (Alg. 2 RcvModel).
func (s *ServerCore) HandleServerModel(j int, params []float64, age float64, bid int) {
	s.HandleServerModelTraced(j, params, age, bid, nil, ring.Membership{})
}

// HandleServerModelTraced is HandleServerModel carrying the broadcast's
// provenance and membership header: front is the sender's merged-updates
// frontier at broadcast time (nil from untraced peers or pre-extension
// checkpoints), mem the sender's ring membership (zero from legacy
// senders). The local frontier max-merges front, because the weighted
// model merge incorporates the causal influence of every update the
// remote model had seen.
func (s *ServerCore) HandleServerModelTraced(j int, params []float64, age float64, bid int, front []int64, mem ring.Membership) {
	s.observeMembership(mem)
	// Fresh ring traffic resets the silence timer — but a holder's
	// SyncRetry re-broadcast of an already-served round does not, or a
	// stale holder stuck re-broadcasting a dead round would suppress the
	// regeneration that is supposed to supersede it.
	if bid > s.maxBidSeen || !s.didBroadcast[bid] {
		s.ringSeq++
	}
	if j < 0 {
		return
	}
	s.growTo(j + 1)
	if bid > s.maxBidSeen {
		s.maxBidSeen = bid
	}
	if s.hasToken && bid > s.token.Bid {
		// A round fresher than our token's exists, so ours is a stale
		// survivor of a regeneration (with a single token no broadcast can
		// outrun the holder's own bid): retire it and join the fresh round
		// below like any non-holder.
		s.retireOwnToken()
	}
	s.ages[j] = age
	if !s.didBroadcast[bid] && s.mem.Contains(s.cfg.ID) {
		// Excluded servers still merge broadcasts they happen to receive
		// (a fresher model never hurts) but must not broadcast into the
		// round — the holder counts broadcasts against the member count.
		s.didBroadcast[bid] = true
		s.agePrev = s.age
		s.syncsJoined++
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindSyncStart,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: bid, Note: "join",
			})
		}
		s.out.BroadcastModel(s.w, s.age, bid, s.frontier, s.mem)
	}
	s.serverAgg(j, params, age, bid, front)
	if s.hasToken && s.token.Bid == bid && s.mem.Contains(j) {
		s.cnt[bid]++
		if s.cnt[bid] >= s.mem.Count() {
			s.forwardToken()
		}
	}
}

// forwardToken stamps the freshest ages and the current membership into
// the token and passes it to the ring successor under that membership.
// On a ring that shrank to just this server the round ends but the token
// stays put — there is nobody to pass it to.
func (s *ServerCore) forwardToken() {
	next := s.mem.Successor(s.cfg.ID)
	if next == s.cfg.ID {
		s.ongoingSynchro = false
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindSyncEnd,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: s.token.Bid,
			})
		}
		return
	}
	t := *s.token
	t.Ages = tensor.Clone(s.ages)
	t.Mem = s.mem
	s.token = nil
	s.hasToken = false
	s.ongoingSynchro = false
	if s.sink.Enabled() {
		now := s.clock()
		s.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindSyncEnd,
			Node: s.cfg.ID, Peer: obs.NoPeer, Bid: t.Bid,
		})
		s.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindTokenPass,
			Node: s.cfg.ID, Peer: next, Bid: t.Bid,
		})
	}
	s.out.SendToken(t, next)
}

// serverAgg merges server from's model into the local one
// (Alg. 2 ServerAgg): the sigmoid of the relative age difference decides
// how much the remote model counts, and the local age moves toward the
// remote age by the same effective weight. The remote frontier (when the
// broadcast carried one) max-merges into the local frontier, and the
// emitted event carries the post-merge frontier plus the round's UID so
// the lineage analyzer can attribute every newly covered update to this
// hop. (The guarded emission may allocate inside its obs callees when a
// sink is attached; the noalloc contract covers this function's own
// statements — see internal/lint.)
//
//spyker:noalloc
func (s *ServerCore) serverAgg(from int, params []float64, remoteAge float64, bid int, front []int64) {
	ageDrift := remoteAge - s.age
	w := ServerAggWeight(s.cfg.Phi, s.age, remoteAge)
	ew := s.cfg.EtaA * w
	paramvec.Vec(s.w).WeightedMergeInto(ew, params)
	s.age = (1-ew)*s.age + ew*remoteAge
	s.ages[s.cfg.ID] = s.age
	for o, v := range front {
		if o < len(s.frontier) && v > s.frontier[o] {
			s.frontier[o] = v
		}
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Time: s.clock(), Kind: obs.KindServerAgg,
			Node: s.cfg.ID, Peer: from, Age: s.age, Stale: ageDrift,
			Bid: bid, UID: obs.RoundUID(from, bid), Front: s.Frontier(),
		})
	}
}

// checkSynchronization implements Alg. 2 l. 20-29: trigger a model
// exchange when server-model ages drifted apart by more than HInter or
// when this server aged by more than HIntra since the last exchange.
func (s *ServerCore) checkSynchronization() {
	if s.mem.Count() == 0 {
		return
	}
	// Drift is measured over the current ring members only: a departed
	// server's frozen age slot must not keep the perceived inter-server
	// drift above HInter forever.
	maxA, minA := s.ages[s.mem.Members[0]], s.ages[s.mem.Members[0]]
	for _, id := range s.mem.Members[1:] {
		a := s.ages[id]
		if a > maxA {
			maxA = a
		}
		if a < minA {
			minA = a
		}
	}
	if maxA-minA < s.cfg.HInter && s.age-s.agePrev < s.cfg.HIntra {
		return
	}
	if s.mem.Count() == 1 || !s.mem.Contains(s.cfg.ID) {
		// A singleton ring has no peers to exchange with, and an
		// excluded server no longer takes part in exchanges; just reset
		// the intra-server trigger.
		s.agePrev = s.age
		return
	}
	if s.hasToken && !s.ongoingSynchro {
		s.agePrev = s.age
		s.ongoingSynchro = true
		bid := s.token.Bid
		s.didBroadcast[bid] = true
		s.cnt[bid] = 1 // counts our own model
		s.syncsTriggered++
		s.syncsJoined++
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Time: s.clock(), Kind: obs.KindSyncStart,
				Node: s.cfg.ID, Peer: obs.NoPeer, Bid: bid, Note: "trigger",
			})
		}
		s.out.BroadcastModel(s.w, s.age, bid, s.frontier, s.mem)
	} else if !s.hasToken {
		if s.age-s.lastAgeBroadcast >= s.cfg.MinAgeGapForAgeBroadcast {
			s.lastAgeBroadcast = s.age
			s.out.BroadcastAge(s.age, s.mem)
		}
	}
}
