package spyker_test

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/spyker"
)

// TestSimulatedSpykerRuns exercises the DES wiring end to end on a small
// deployment and checks the protocol-level invariants that the
// transport-agnostic core tests cannot see: exactly one token holder at
// quiescence, all servers aging, every client contributing.
func TestSimulatedSpykerRuns(t *testing.T) {
	env, rec, err := experiments.BuildEnv(experiments.Setup{
		Task:       experiments.TaskMNIST,
		NumServers: 3,
		NumClients: 9,
		Seed:       1,
		EvalEvery:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lower the sync thresholds so token activity happens quickly.
	env.Hyper.HInter = 3
	env.Hyper.HIntra = 30

	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(15)

	if rec.Updates() == 0 {
		t.Fatal("no updates processed")
	}
	holders := 0
	synced := 0
	for i, core := range alg.Servers() {
		if core.HasToken() {
			holders++
		}
		if core.Age() <= 0 {
			t.Errorf("server %d never aged", i)
		}
		if core.SyncsJoined() > 0 {
			synced++
		}
	}
	if holders != 1 {
		t.Errorf("%d token holders at quiescence, want 1", holders)
	}
	if synced != 3 {
		t.Errorf("only %d/3 servers participated in a sync", synced)
	}
	for c := 0; c < len(env.Clients); c++ {
		if rec.ClientUpdates[c] == 0 {
			t.Errorf("client %d never contributed", c)
		}
	}
	if len(alg.ServerParams()) != 3 {
		t.Error("ServerParams length wrong")
	}
}

// TestSpykerNoDecayName covers the ablation variant's naming.
func TestSpykerNames(t *testing.T) {
	if (&spyker.Algorithm{}).Name() != "Spyker" {
		t.Error("Name wrong")
	}
	if (&spyker.Algorithm{DisableDecay: true}).Name() != "Spyker(no-decay)" {
		t.Error("no-decay Name wrong")
	}
}

// TestSpykerAgesStayCoherent: with frequent syncs the server ages must
// not drift apart beyond hInter plus the in-flight slack.
func TestSpykerAgeCoherence(t *testing.T) {
	env, _, err := experiments.BuildEnv(experiments.Setup{
		Task:       experiments.TaskMNIST,
		NumServers: 4,
		NumClients: 16,
		Seed:       2,
		EvalEvery:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Hyper.HInter = 4
	env.Hyper.HIntra = 1e9

	alg := &spyker.Algorithm{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(20)

	var minA, maxA float64
	for i, core := range alg.Servers() {
		a := core.Age()
		if i == 0 || a < minA {
			minA = a
		}
		if i == 0 || a > maxA {
			maxA = a
		}
	}
	// Ages drift while broadcasts are in flight, so allow generous slack
	// over hInter; without the protocol the drift would grow unboundedly
	// (4 clients/server x ~6 updates/s x 20s = hundreds of age units).
	if maxA-minA > 20*env.Hyper.HInter {
		t.Errorf("server ages drifted %v apart (hInter=%v)", maxA-minA, env.Hyper.HInter)
	}
}
