package spyker

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/tensor"
)

func TestStalenessWeight(t *testing.T) {
	if w := StalenessWeight(5, 5); w != 1 {
		t.Errorf("fresh update weight = %v, want 1", w)
	}
	if w := StalenessWeight(5, 9); w != 1 {
		t.Errorf("future client age should clamp to 1, got %v", w)
	}
	w1 := StalenessWeight(10, 8)
	w2 := StalenessWeight(10, 2)
	if !(w1 > w2) {
		t.Errorf("staleness must damp more for older updates: %v vs %v", w1, w2)
	}
	if w := StalenessWeight(101, 1); math.Abs(w-1/math.Sqrt(101)) > 1e-12 {
		t.Errorf("tau=100 weight = %v, want %v", w, 1/math.Sqrt(101))
	}
}

func TestStalenessWeightBounds(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		w := StalenessWeight(math.Abs(a), math.Abs(b))
		return w > 0 && w <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecayRate(t *testing.T) {
	base := 0.05
	if lr := DecayRate(base, 1, 1e-6, 3, 5); lr != base {
		t.Errorf("below-average client should keep base rate, got %v", lr)
	}
	if lr := DecayRate(base, 1, 1e-6, 10, 5); math.Abs(lr-base/2) > 1e-12 {
		t.Errorf("2x contributor should get base/2, got %v", lr)
	}
	if lr := DecayRate(base, 1, 1e-6, 1e9, 5); lr != 1e-6 {
		t.Errorf("floor not applied, got %v", lr)
	}
	if lr := DecayRate(base, 0, 1e-6, 100, 5); lr != base {
		t.Errorf("beta=0 must disable decay, got %v", lr)
	}
	// Contribution-equalization property: rate * damp == average rate.
	uk, uBar := 42.0, 6.0
	lr := DecayRate(base, 1, 0, uk, uBar)
	if got := lr / base * uk; math.Abs(got-uBar) > 1e-9 {
		t.Errorf("equalization broken: effective mass %v, want %v", got, uBar)
	}
}

func TestServerAggWeight(t *testing.T) {
	// Equal ages: sigmoid(0) = 0.5.
	if w := ServerAggWeight(1.5, 100, 100); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("equal-age weight = %v, want 0.5", w)
	}
	// Older remote model gets more weight; younger less.
	wOlder := ServerAggWeight(1.5, 100, 200)
	wYounger := ServerAggWeight(1.5, 100, 50)
	if !(wOlder > 0.5 && wYounger < 0.5) {
		t.Errorf("weights not monotone in age difference: %v, %v", wOlder, wYounger)
	}
	// Larger phi sharpens the transition.
	if !(ServerAggWeight(3, 100, 200) > ServerAggWeight(1.5, 100, 200)) {
		t.Error("phi does not sharpen the sigmoid")
	}
	// Zero local age must not divide by zero.
	if w := ServerAggWeight(1.5, 0, 10); math.IsNaN(w) || w <= 0.5 {
		t.Errorf("zero-age guard broken: %v", w)
	}
}

// fakeOut records every outbound action of a core.
type fakeOut struct {
	replies []replyRec
	models  []modelRec
	ages    []float64
	tokens  []tokenRec
}

type replyRec struct {
	client int
	params []float64
	age    float64
	lr     float64
}

type modelRec struct {
	params []float64
	age    float64
	bid    int
}

type tokenRec struct {
	t    Token
	next int
}

// Outbound hands fakes a borrow of the live model, so records snapshot it.
func (f *fakeOut) ReplyClient(k int, p []float64, age, lr float64) {
	f.replies = append(f.replies, replyRec{k, tensor.Clone(p), age, lr})
}
func (f *fakeOut) BroadcastModel(p []float64, age float64, bid int, _ []int64, _ ring.Membership) {
	f.models = append(f.models, modelRec{tensor.Clone(p), age, bid})
}
func (f *fakeOut) BroadcastAge(age float64, _ ring.Membership) { f.ages = append(f.ages, age) }
func (f *fakeOut) SendToken(t Token, next int) {
	f.tokens = append(f.tokens, tokenRec{t, next})
}

func coreConfig(id, n, clients int) Config {
	return Config{
		ID: id, NumServers: n, NumClients: clients,
		EtaServer: 0.6, Phi: 1.5, EtaA: 0.6,
		HInter: 5, HIntra: 350,
		ClientLR: 0.05, DecayEnabled: true, Beta: 1, EtaMin: 1e-6,
	}
}

func TestClientUpdateAgesAndReplies(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 2, 2), []float64{0, 0}, false, out)

	s.HandleClientUpdate(7, []float64{1, 1}, 0)
	if s.Age() != 1 {
		t.Errorf("age = %v, want 1", s.Age())
	}
	if len(out.replies) != 1 {
		t.Fatalf("replies = %d", len(out.replies))
	}
	r := out.replies[0]
	if r.client != 7 || r.age != 1 {
		t.Errorf("reply = %+v", r)
	}
	// Fresh update, staleness weight 1, so W = 0 + 0.6*1*(1-0)... but the
	// decay counts this as the client's first update with uBar=0.5 so the
	// aggregation is damped by lr/base.
	if r.params[0] <= 0 || r.params[0] > 0.6+1e-12 {
		t.Errorf("merged param = %v, want in (0, 0.6]", r.params[0])
	}
	if s.UpdatesFrom(7) != 1 {
		t.Errorf("UpdatesFrom = %d", s.UpdatesFrom(7))
	}
}

func TestDecayReducesOveractiveClientRate(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 2, 4), make([]float64, 2), false, out)
	// Client 0 sends 12 updates, clients 1..3 none.
	for i := 0; i < 12; i++ {
		s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	}
	last := out.replies[len(out.replies)-1]
	if last.lr >= 0.05 {
		t.Errorf("over-active client lr = %v, want < base", last.lr)
	}
	// uBar = 12/4 = 3, u = 12 -> lr = base*3/12.
	if math.Abs(last.lr-0.05*3/12) > 1e-12 {
		t.Errorf("lr = %v, want %v", last.lr, 0.05*3/12)
	}
}

func TestDecayDisabled(t *testing.T) {
	cfg := coreConfig(0, 2, 4)
	cfg.DecayEnabled = false
	out := &fakeOut{}
	s := NewServerCore(cfg, make([]float64, 2), false, out)
	for i := 0; i < 12; i++ {
		s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	}
	for _, r := range out.replies {
		if r.lr != 0.05 {
			t.Fatalf("decay disabled but lr = %v", r.lr)
		}
	}
}

func TestServerAggMovesModelAndAge(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 2, 2), []float64{0, 0}, false, out)
	s.HandleServerModel(1, []float64{10, 10}, 100, 1)
	p := s.Params()
	if p[0] <= 0 || p[0] >= 10 {
		t.Errorf("param after agg = %v, want strictly between", p[0])
	}
	if s.Age() <= 0 || s.Age() >= 100 {
		t.Errorf("age after agg = %v, want strictly between", s.Age())
	}
}

func TestTokenHolderTriggersSyncOnInterDrift(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 3, 2), make([]float64, 2), true, out)
	// Learn that server 2's model is far ahead.
	s.HandleAge(2, 10) // drift 10 >= hInter 5
	if len(out.models) != 1 {
		t.Fatalf("expected one model broadcast, got %d", len(out.models))
	}
	if out.models[0].bid != 1 {
		t.Errorf("bid = %d, want 1", out.models[0].bid)
	}
	if s.SyncsTriggered() != 1 {
		t.Errorf("SyncsTriggered = %d", s.SyncsTriggered())
	}
	// A second trigger before completion must not re-broadcast.
	s.HandleAge(2, 20)
	if len(out.models) != 1 {
		t.Errorf("re-broadcast during ongoing sync: %d", len(out.models))
	}
}

func TestNonHolderBroadcastsAge(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(1, 3, 2), make([]float64, 2), false, out)
	// Give the server a bit of local age so the rate limiter (min age gap
	// of 1 between announcements) lets the first broadcast through.
	s.HandleClientUpdate(0, []float64{1, 1}, 0)
	s.HandleClientUpdate(0, []float64{1, 1}, 1)
	out.ages = nil // ignore anything emitted during warm-up
	s.HandleAge(2, 10)
	if len(out.models) != 0 {
		t.Error("non-holder must not broadcast its model")
	}
	if len(out.ages) != 1 {
		t.Fatalf("expected one age broadcast, got %d", len(out.ages))
	}
	// Age announcements are rate limited: an immediate re-trigger with the
	// same local age must not re-broadcast.
	s.HandleAge(2, 11)
	if len(out.ages) != 1 {
		t.Errorf("age broadcast not rate limited: %d", len(out.ages))
	}
}

func TestHIntraTriggersSync(t *testing.T) {
	cfg := coreConfig(0, 2, 2)
	cfg.HIntra = 3
	cfg.HInter = 1e9
	out := &fakeOut{}
	s := NewServerCore(cfg, make([]float64, 2), true, out)
	for i := 0; i < 3; i++ {
		s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	}
	if len(out.models) != 1 {
		t.Errorf("hIntra trigger broadcasts = %d, want 1", len(out.models))
	}
}

func TestNonHolderJoinsSyncOnUnknownBid(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(1, 3, 2), make([]float64, 2), false, out)
	s.HandleServerModel(0, []float64{1, 1}, 5, 42)
	if len(out.models) != 1 {
		t.Fatalf("expected join broadcast, got %d", len(out.models))
	}
	if out.models[0].bid != 42 {
		t.Errorf("join used bid %d, want 42", out.models[0].bid)
	}
	if s.SyncsJoined() != 1 {
		t.Errorf("SyncsJoined = %d", s.SyncsJoined())
	}
	// Receiving the same bid from another server must not re-broadcast.
	s.HandleServerModel(2, []float64{2, 2}, 6, 42)
	if len(out.models) != 1 {
		t.Errorf("duplicate join broadcast: %d", len(out.models))
	}
}

func TestTokenForwardedAfterAllModels(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 3, 2), make([]float64, 2), true, out)
	s.HandleAge(1, 10) // trigger sync; cnt[1] = 1 (own model)
	if len(out.tokens) != 0 {
		t.Fatal("token forwarded before models arrived")
	}
	s.HandleServerModel(1, []float64{1, 1}, 10, 1)
	if len(out.tokens) != 0 {
		t.Fatal("token forwarded after only one model")
	}
	s.HandleServerModel(2, []float64{2, 2}, 3, 1)
	if len(out.tokens) != 1 {
		t.Fatalf("token not forwarded after all models: %d", len(out.tokens))
	}
	tr := out.tokens[0]
	if tr.next != 1 {
		t.Errorf("token sent to %d, want ring successor 1", tr.next)
	}
	if len(tr.t.Ages) != 3 {
		t.Errorf("token ages length %d", len(tr.t.Ages))
	}
	if s.HasToken() {
		t.Error("core still holds the token after forwarding")
	}
}

func TestRcvTokenIncrementsBid(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(1, 3, 2), make([]float64, 2), false, out)
	s.HandleToken(Token{Bid: 4, Ages: []float64{7, 0, 3}})
	if !s.HasToken() {
		t.Fatal("token not installed")
	}
	if s.ages[0] != 7 || s.ages[2] != 3 {
		t.Errorf("token ages not merged: %v", s.ages)
	}
	if s.token.Bid != 5 {
		t.Errorf("bid = %d, want 5", s.token.Bid)
	}
}

func TestAgesFollowFreshReports(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 3, 2), make([]float64, 2), false, out)
	s.HandleAge(1, 3)
	if s.ages[1] != 3 {
		t.Errorf("ages[1] = %v, want 3", s.ages[1])
	}
	// Ages can legitimately DECREASE (ServerAgg averages them), and FIFO
	// links make every direct report causally fresher than the previous
	// one, so knowledge follows the report rather than max-merging — the
	// max-merge of the paper's pseudo-code livelocks (see core.go).
	s.HandleAge(1, 2)
	if s.ages[1] != 2 {
		t.Errorf("ages[1] = %v, want 2 (fresh report adopted)", s.ages[1])
	}
}

func TestTokenRefreshesOwnAgeEntry(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(1, 3, 2), make([]float64, 2), false, out)
	s.HandleClientUpdate(0, []float64{1, 1}, 0) // own age 1
	s.HandleToken(Token{Bid: 1, Ages: []float64{5, 99, 5}})
	if s.ages[1] != s.Age() {
		t.Errorf("token overwrote own age entry: %v vs %v", s.ages[1], s.Age())
	}
	if s.ages[0] != 5 || s.ages[2] != 5 {
		t.Errorf("token entries not adopted: %v", s.ages)
	}
}

func TestSingleServerNeverSyncs(t *testing.T) {
	cfg := coreConfig(0, 1, 2)
	cfg.HIntra = 1
	out := &fakeOut{}
	s := NewServerCore(cfg, make([]float64, 2), true, out)
	for i := 0; i < 10; i++ {
		s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	}
	if len(out.models) != 0 || len(out.tokens) != 0 || len(out.ages) != 0 {
		t.Error("single-server deployment attempted a synchronization")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewServerCore(Config{ID: 5, NumServers: 3}, nil, false, &fakeOut{})
}

// TestFullSyncRoundLoopback wires three cores together with instant
// delivery and checks that one full synchronization homogenizes the
// models: the pairwise distance between server models must shrink, and
// the token must move to the ring successor.
func TestFullSyncRoundLoopback(t *testing.T) {
	n := 3
	cores := make([]*ServerCore, n)
	for i := 0; i < n; i++ {
		initial := []float64{float64(i * 10), float64(i * -10)}
		cores[i] = NewServerCore(coreConfig(i, n, 2), initial, i == 0,
			&loopbackOut{id: i, cores: &cores})
	}
	distBefore := pairwiseDist(cores)

	// Server 2 ages past the hInter drift threshold: its updates merge its
	// own initial model so its parameters stay put while its age grows.
	// The resulting age announcement reaches the holder (server 0), which
	// triggers the synchronization; the loopback bus completes the whole
	// exchange synchronously.
	own := tensor.Clone(cores[2].Params())
	for k := 0; k < 6; k++ {
		cores[2].HandleClientUpdate(0, own, cores[2].Age())
	}

	if cores[0].SyncsTriggered() != 1 {
		t.Fatalf("holder did not trigger a sync")
	}
	// The token must have moved on (possibly several hops if the drift
	// stayed above the threshold and later holders re-triggered), and at
	// any quiescent point exactly one server holds it.
	if cores[0].SyncsJoined() < 1 {
		t.Error("server 0 did not complete its own sync")
	}
	holders := 0
	for _, c := range cores {
		if c.HasToken() {
			holders++
		}
	}
	if holders != 1 {
		t.Errorf("%d token holders, want exactly 1", holders)
	}
	if d := pairwiseDist(cores); d >= distBefore {
		t.Errorf("models did not homogenize: %v -> %v", distBefore, d)
	}
	for i := 0; i < n; i++ {
		if cores[i].SyncsJoined() == 0 {
			t.Errorf("server %d never joined the sync", i)
		}
	}
}

// loopbackOut delivers everything synchronously to the other cores.
type loopbackOut struct {
	id    int
	cores *[]*ServerCore
}

func (l *loopbackOut) ReplyClient(int, []float64, float64, float64) {}
func (l *loopbackOut) BroadcastModel(p []float64, age float64, bid int, _ []int64, _ ring.Membership) {
	for i, c := range *l.cores {
		if i != l.id && c != nil {
			c.HandleServerModel(l.id, tensor.Clone(p), age, bid)
		}
	}
}
func (l *loopbackOut) BroadcastAge(age float64, _ ring.Membership) {
	for i, c := range *l.cores {
		if i != l.id && c != nil {
			c.HandleAge(l.id, age)
		}
	}
}
func (l *loopbackOut) SendToken(t Token, next int) {
	(*l.cores)[next].HandleToken(t)
}

func pairwiseDist(cores []*ServerCore) float64 {
	var d float64
	for i := range cores {
		for j := i + 1; j < len(cores); j++ {
			d += tensor.Norm2(tensor.Sub(cores[i].Params(), cores[j].Params()))
		}
	}
	return d
}

func TestRobustClippingBoundsOversizedDeltas(t *testing.T) {
	cfg := coreConfig(0, 2, 2)
	cfg.RobustClipFactor = 1.5
	cfg.DecayEnabled = false
	out := &fakeOut{}
	s := NewServerCore(cfg, []float64{0, 0}, false, out)

	// Establish an honest delta-norm baseline.
	for i := 0; i < 5; i++ {
		honest := []float64{s.Params()[0] + 0.1, s.Params()[1] + 0.1}
		s.HandleClientUpdate(0, honest, s.Age())
	}
	if s.ClippedUpdates() != 0 {
		t.Fatalf("honest updates were clipped: %d", s.ClippedUpdates())
	}
	before := tensor.Clone(s.Params())

	// A poisoned update 100x the honest norm must be clipped.
	poison := []float64{before[0] - 50, before[1] - 50}
	s.HandleClientUpdate(1, poison, s.Age())
	if s.ClippedUpdates() != 1 {
		t.Fatalf("oversized delta not clipped")
	}
	moved := tensor.Norm2(tensor.Sub(s.Params(), before))
	// Unclipped, the update would have moved the model by
	// etaServer * ||delta|| ~ 0.6*70; clipped it is bounded by
	// etaServer * 1.5 * EMA ~ 0.6*1.5*0.14.
	if moved > 1 {
		t.Errorf("clipped poison still moved the model by %v", moved)
	}
}

func TestRobustClippingDisabledByDefault(t *testing.T) {
	cfg := coreConfig(0, 2, 2)
	cfg.DecayEnabled = false
	out := &fakeOut{}
	s := NewServerCore(cfg, []float64{0, 0}, false, out)
	s.HandleClientUpdate(0, []float64{0.1, 0.1}, 0)
	s.HandleClientUpdate(1, []float64{-100, -100}, s.Age())
	if s.ClippedUpdates() != 0 {
		t.Error("clipping active although RobustClipFactor is 0")
	}
	// The oversized update must have moved the model massively.
	if tensor.Norm2(s.Params()) < 10 {
		t.Error("expected undefended model to be dragged far")
	}
}
