package spyker

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spyker-fl/spyker/internal/ring"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// fuzzNet delivers messages between cores in a randomized order that
// still respects per-directed-link FIFO — the network assumption of
// Alg. 2 ("we assume that links are FIFO"). Every interleaving the fuzzer
// explores is therefore a legal asynchronous execution, and the protocol
// invariants must hold in all of them.
type fuzzNet struct {
	rng   *rand.Rand
	cores []*ServerCore
	links map[[2]int][]func() // (src,dst) -> queued deliveries, FIFO
}

func newFuzzNet(rng *rand.Rand) *fuzzNet {
	return &fuzzNet{rng: rng, links: make(map[[2]int][]func())}
}

func (n *fuzzNet) send(src, dst int, deliver func()) {
	key := [2]int{src, dst}
	n.links[key] = append(n.links[key], deliver)
}

// step delivers the head of one randomly chosen nonempty link; it
// reports false when nothing is in flight.
func (n *fuzzNet) step() bool {
	keys := make([][2]int, 0, len(n.links))
	for k, q := range n.links {
		if len(q) > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return false
	}
	// Deterministic order of candidate links before the random pick, so
	// a given seed replays exactly.
	sortLinks(keys)
	k := keys[n.rng.Intn(len(keys))]
	d := n.links[k][0]
	n.links[k] = n.links[k][1:]
	d()
	return true
}

func sortLinks(keys [][2]int) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// fuzzOut adapts one core's outbound calls onto the fuzz network.
type fuzzOut struct {
	id  int
	net *fuzzNet
}

func (o *fuzzOut) ReplyClient(int, []float64, float64, float64) {}

func (o *fuzzOut) BroadcastModel(p []float64, age float64, bid int, _ []int64, _ ring.Membership) {
	snapshot := tensor.Clone(p)
	for i := range o.net.cores {
		if i == o.id {
			continue
		}
		dst := i
		o.net.send(o.id, dst, func() {
			o.net.cores[dst].HandleServerModel(o.id, snapshot, age, bid)
		})
	}
}

func (o *fuzzOut) BroadcastAge(age float64, _ ring.Membership) {
	for i := range o.net.cores {
		if i == o.id {
			continue
		}
		dst := i
		o.net.send(o.id, dst, func() {
			o.net.cores[dst].HandleAge(o.id, age)
		})
	}
}

func (o *fuzzOut) SendToken(t Token, next int) {
	o.net.send(o.id, next, func() {
		o.net.cores[next].HandleToken(t)
	})
}

// TestProtocolFuzz runs many randomized asynchronous executions of the
// full server-side protocol and asserts the safety and liveness
// invariants in each:
//
//   - at quiescence exactly one server holds the token (it is neither
//     lost nor duplicated);
//   - every triggered synchronization completes (no server is stuck with
//     ongoingSynchro and the token);
//   - ages are finite, non-negative, and the final age vector is
//     consistent across the knowledge maps;
//   - with drift forced above hInter, at least one synchronization
//     actually happens (liveness).
func TestProtocolFuzz(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFuzzExecution(t, seed)
		})
	}
}

func runFuzzExecution(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4) // 2..5 servers
	net := newFuzzNet(rng)
	net.cores = make([]*ServerCore, n)
	for i := 0; i < n; i++ {
		cfg := coreConfig(i, n, 3)
		cfg.HInter = float64(2 + rng.Intn(5))
		cfg.HIntra = float64(10 + rng.Intn(30))
		initial := []float64{rng.NormFloat64(), rng.NormFloat64()}
		net.cores[i] = NewServerCore(cfg, initial, i == 0, &fuzzOut{id: i, net: net})
	}

	// Interleave client updates with network deliveries.
	clientParams := []float64{1, -1}
	updates := 200 + rng.Intn(400)
	for u := 0; u < updates; u++ {
		target := rng.Intn(n)
		core := net.cores[target]
		core.HandleClientUpdate(rng.Intn(3), clientParams, core.Age())
		// Deliver a random number of in-flight messages.
		for k := rng.Intn(4); k > 0; k-- {
			if !net.step() {
				break
			}
		}
	}
	// Drain everything.
	for net.step() {
	}

	// Safety: exactly one token holder.
	holders := 0
	for _, c := range net.cores {
		if c.HasToken() {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d token holders after drain, want 1", holders)
	}
	// Safety: the holder is not stuck mid-synchronization (a drained
	// network means all broadcast models arrived, so cnt must have
	// completed and the token moved on).
	for i, c := range net.cores {
		if c.HasToken() && c.ongoingSynchro {
			t.Errorf("server %d holds the token with an unfinished sync", i)
		}
		if c.Age() < 0 || c.Age() != c.Age() { // NaN check
			t.Errorf("server %d has bad age %v", i, c.Age())
		}
		for j, a := range c.ages {
			if a < 0 || a != a {
				t.Errorf("server %d tracks bad age %v for %d", i, a, j)
			}
		}
		for _, p := range c.Params() {
			if p != p {
				t.Fatalf("server %d has NaN parameters", i)
			}
		}
	}
	// Liveness: plenty of drift was generated, so syncs must have run.
	totalSyncs := 0
	for _, c := range net.cores {
		totalSyncs += c.SyncsTriggered()
	}
	if totalSyncs == 0 {
		t.Error("no synchronization ever triggered despite forced drift")
	}
	// Convergence pressure: after all the exchanges, models must be
	// closer together than the client constant they were pulled toward
	// would allow if exchanges never happened.
	for i := range net.cores {
		for j := i + 1; j < len(net.cores); j++ {
			d := tensor.Norm2(tensor.Sub(net.cores[i].Params(), net.cores[j].Params()))
			if d > 2 {
				t.Errorf("servers %d,%d ended %v apart", i, j, d)
			}
		}
	}
}

// TestProtocolFuzzTokenNeverDuplicated runs a longer adversarial
// execution where age announcements race with token forwarding, and
// checks after every single delivery that at most one token exists.
func TestProtocolFuzzTokenNeverDuplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 4
	net := newFuzzNet(rng)
	net.cores = make([]*ServerCore, n)
	for i := 0; i < n; i++ {
		cfg := coreConfig(i, n, 2)
		cfg.HInter = 2
		cfg.HIntra = 8
		net.cores[i] = NewServerCore(cfg, []float64{0, 0}, i == 0, &fuzzOut{id: i, net: net})
	}
	countHolders := func() int {
		h := 0
		for _, c := range net.cores {
			if c.HasToken() {
				h++
			}
		}
		return h
	}
	tokensInFlight := func() int {
		// A token in flight lives in a link queue; we cannot see message
		// types, so we conservatively check only the holder count bound.
		return 0
	}
	_ = tokensInFlight
	for u := 0; u < 600; u++ {
		core := net.cores[rng.Intn(n)]
		core.HandleClientUpdate(0, []float64{1, 1}, core.Age())
		for k := rng.Intn(3); k > 0; k-- {
			if !net.step() {
				break
			}
		}
		if h := countHolders(); h > 1 {
			t.Fatalf("token duplicated at step %d: %d holders", u, h)
		}
	}
	for net.step() {
		if h := countHolders(); h > 1 {
			t.Fatal("token duplicated during drain")
		}
	}
	if countHolders() != 1 {
		t.Fatalf("token lost: %d holders after drain", countHolders())
	}
}
