package spyker

import (
	"testing"
)

// recoveryConfig arms token-loss recovery on top of the standard test
// config.
func recoveryConfig(id, n int) Config {
	cfg := coreConfig(id, n, 2)
	cfg.TokenTimeout = 10
	cfg.SyncRetry = 4
	return cfg
}

func TestTokenRegeneratedAfterSilence(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(1, 3), []float64{0, 0}, false, out)

	s.Tick(0) // initializes the quiet timer
	s.Tick(9)
	if s.HasToken() {
		t.Fatal("regenerated before the timeout elapsed")
	}
	s.Tick(11)
	if !s.HasToken() {
		t.Fatal("no regeneration after the silence timeout")
	}
	if s.TokenRegens() != 1 {
		t.Fatalf("TokenRegens = %d, want 1", s.TokenRegens())
	}
	// maxBidSeen was 0; the regenerated bid must jump past any bid a
	// surviving token could still reach: 0 + NumServers + 1 + ID.
	if want := 0 + 3 + 1 + 1; s.token.Bid != want {
		t.Fatalf("regenerated bid = %d, want %d", s.token.Bid, want)
	}
	if s.MaxBidSeen() != s.token.Bid {
		t.Fatalf("maxBidSeen %d != regenerated bid %d", s.MaxBidSeen(), s.token.Bid)
	}
}

func TestFreshRingTrafficResetsSilenceTimer(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(1, 3), []float64{0, 0}, false, out)

	s.Tick(0)
	// A previously unseen round broadcast is ring activity.
	s.HandleServerModel(0, []float64{0, 0}, 1, 3)
	s.Tick(9) // observes the activity, resets the timer
	s.Tick(18)
	if s.HasToken() {
		t.Fatal("regenerated despite fresh ring traffic at t=9")
	}
	s.Tick(20)
	if !s.HasToken() {
		t.Fatal("no regeneration once the ring went quiet again")
	}
}

func TestAgeTrafficDoesNotResetSilenceTimer(t *testing.T) {
	// Age announcements keep flowing from every survivor after the token
	// is lost, so they must not count as ring liveness — otherwise loss of
	// the token could never be detected.
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(1, 3), []float64{0, 0}, false, out)

	s.Tick(0)
	s.HandleAge(0, 5)
	s.Tick(6)
	s.HandleAge(2, 7)
	s.Tick(11)
	if !s.HasToken() {
		t.Fatal("age chatter suppressed token-loss detection")
	}
}

func TestHolderNeverRegenerates(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(0, 3), []float64{0, 0}, true, out)

	s.Tick(0)
	s.Tick(100)
	s.Tick(200)
	if s.TokenRegens() != 0 {
		t.Fatalf("holder regenerated its own token %d times", s.TokenRegens())
	}
}

func TestStaleTokenDiscarded(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(1, 3), []float64{0, 0}, false, out)

	// Witness round 8 via a broadcast.
	s.HandleServerModel(0, []float64{0, 0}, 1, 8)
	if s.MaxBidSeen() != 8 {
		t.Fatalf("maxBidSeen = %d, want 8", s.MaxBidSeen())
	}
	// A survivor carrying bid 7 (post-increment 8 <= 8) is stale.
	s.HandleToken(Token{Bid: 7, Ages: []float64{0, 0, 0}})
	if s.HasToken() {
		t.Fatal("stale token adopted")
	}
	// Bid 8 arrives post-increment as 9 > 8: legitimate, adopted.
	s.HandleToken(Token{Bid: 8, Ages: []float64{0, 0, 0}})
	if !s.HasToken() || s.token.Bid != 9 {
		t.Fatalf("fresh token not adopted: hasToken=%v", s.HasToken())
	}
}

func TestIncomingHigherBidTokenReplacesHeldToken(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(0, 3), []float64{0, 0}, true, out) // holds bid 1

	s.HandleToken(Token{Bid: 10, Ages: []float64{0, 0, 0}})
	if !s.HasToken() || s.token.Bid != 11 {
		t.Fatalf("higher-bid token should replace the held one, got bid %v", s.token)
	}
	// And a lower-bid arrival while holding is discarded outright.
	s.HandleToken(Token{Bid: 3, Ages: []float64{0, 0, 0}})
	if s.token.Bid != 11 {
		t.Fatalf("lower-bid token overwrote the held one: bid %d", s.token.Bid)
	}
}

func TestFresherRoundRetiresHeldToken(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(0, 3), []float64{0, 0}, true, out) // holds bid 1

	// A broadcast for round 12 proves a regenerated token exists: the
	// survivor this server holds must retire, and the server joins the
	// fresh round like any non-holder.
	s.HandleServerModel(1, []float64{0, 0}, 1, 12)
	if s.HasToken() {
		t.Fatal("stale held token survived a fresher round broadcast")
	}
	if len(out.models) != 1 || out.models[0].bid != 12 {
		t.Fatalf("server did not join the fresh round: %+v", out.models)
	}
}

func TestDropToken(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(0, 3), []float64{0, 0}, true, out)

	if !s.DropToken() {
		t.Fatal("DropToken on a holder returned false")
	}
	if s.HasToken() {
		t.Fatal("token still held after DropToken")
	}
	if s.DropToken() {
		t.Fatal("DropToken on a non-holder returned true")
	}
}

func TestSyncRetryRebroadcastsStuckRound(t *testing.T) {
	out := &fakeOut{}
	cfg := recoveryConfig(0, 3)
	cfg.HInter = 2
	s := NewServerCore(cfg, []float64{0, 0}, true, out)

	// Manufacture inter-server drift so the holder triggers a round.
	s.HandleAge(1, 5)
	if !s.ongoingSynchro || len(out.models) != 1 {
		t.Fatalf("no sync triggered: ongoing=%v broadcasts=%d", s.ongoingSynchro, len(out.models))
	}
	bid := out.models[0].bid

	s.Tick(0) // records the stuck round
	s.Tick(3) // within SyncRetry: no rebroadcast yet
	if len(out.models) != 1 {
		t.Fatalf("premature retry: %d broadcasts", len(out.models))
	}
	s.Tick(5)
	if len(out.models) != 2 || out.models[1].bid != bid {
		t.Fatalf("expected a same-bid retry broadcast, got %+v", out.models)
	}
	// The round completes when the missing participants finally answer.
	s.HandleServerModel(1, []float64{0, 0}, 5, bid)
	s.HandleServerModel(2, []float64{0, 0}, 5, bid)
	if s.HasToken() {
		t.Fatal("token not forwarded after the retried round completed")
	}
	if len(out.tokens) != 1 {
		t.Fatalf("tokens sent = %d, want 1", len(out.tokens))
	}
}

func TestTickDisarmedIsFreeAndInert(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 3, 2), []float64{0, 0}, false, out) // no timeout configured

	allocs := testing.AllocsPerRun(1000, func() { s.Tick(123) })
	if allocs != 0 {
		t.Fatalf("disarmed Tick allocates %v per call", allocs)
	}
	s.Tick(0)
	s.Tick(1e9)
	if s.HasToken() || s.TokenRegens() != 0 {
		t.Fatal("disarmed Tick changed protocol state")
	}
	if len(out.models)+len(out.ages)+len(out.tokens) != 0 {
		t.Fatal("disarmed Tick produced outbound traffic")
	}
}

func TestRecoveryStateRoundTripsThroughSnapshot(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(recoveryConfig(1, 3), []float64{0, 0}, false, out)
	s.HandleServerModel(0, []float64{0, 0}, 1, 8)
	s.Tick(0)
	s.Tick(11) // regenerate once

	st := s.Snapshot()
	if st.MaxBidSeen != s.MaxBidSeen() || st.TokenRegens != 1 {
		t.Fatalf("snapshot recovery state = (%d,%d), want (%d,1)",
			st.MaxBidSeen, st.TokenRegens, s.MaxBidSeen())
	}
	r, err := RestoreServerCore(st, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxBidSeen() != s.MaxBidSeen() || r.TokenRegens() != 1 {
		t.Fatalf("restored recovery state = (%d,%d)", r.MaxBidSeen(), r.TokenRegens())
	}
}

func TestLegacySnapshotDerivesMaxBidFromToken(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 3, 2), []float64{0, 0}, true, out)
	s.HandleToken(Token{Bid: 6, Ages: []float64{0, 0, 0}}) // now holds bid 7

	st := s.Snapshot()
	st.MaxBidSeen = 0 // simulate a pre-extension checkpoint
	r, err := RestoreServerCore(st, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxBidSeen() != 7 {
		t.Fatalf("restored maxBidSeen = %d, want the held token's bid 7", r.MaxBidSeen())
	}
}
