package spyker

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/spyker-fl/spyker/internal/ring"
)

// driveCore applies a fixed message sequence to a core and records every
// outbound action through a fakeOut.
func driveCore(s *ServerCore) *fakeOut {
	out := s.out.(*fakeOut)
	s.HandleClientUpdate(0, []float64{1, 1}, s.Age())
	s.HandleAge(2, 7)
	s.HandleServerModel(1, []float64{3, -3}, 4, 9)
	s.HandleClientUpdate(1, []float64{-1, 2}, s.Age())
	return out
}

// TestSnapshotRestoreBehavioralEquivalence: a restored core must behave
// byte-for-byte like the original on any subsequent message sequence.
func TestSnapshotRestoreBehavioralEquivalence(t *testing.T) {
	outA := &fakeOut{}
	a := NewServerCore(coreConfig(0, 3, 4), []float64{0.5, -0.5}, true, outA)
	// Put the core into a nontrivial state.
	a.HandleClientUpdate(0, []float64{2, 2}, 0)
	a.HandleAge(1, 3)
	a.HandleServerModel(2, []float64{1, 1}, 2, 5)

	st := a.Snapshot()
	outB := &fakeOut{}
	b, err := RestoreServerCore(st, outB)
	if err != nil {
		t.Fatal(err)
	}

	if b.Age() != a.Age() || b.HasToken() != a.HasToken() {
		t.Fatalf("restored core differs immediately: age %v vs %v", b.Age(), a.Age())
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("restored params differ at %d", i)
		}
	}

	// Drive both with identical inputs and compare every output.
	outA.replies, outA.models, outA.ages, outA.tokens = nil, nil, nil, nil
	driveCore(a)
	driveCore(b)
	if len(outA.replies) != len(outB.replies) || len(outA.models) != len(outB.models) ||
		len(outA.ages) != len(outB.ages) || len(outA.tokens) != len(outB.tokens) {
		t.Fatalf("outbound action counts differ: %d/%d replies, %d/%d models",
			len(outA.replies), len(outB.replies), len(outA.models), len(outB.models))
	}
	for i := range outA.replies {
		ra, rb := outA.replies[i], outB.replies[i]
		if ra.client != rb.client || ra.age != rb.age || ra.lr != rb.lr {
			t.Fatalf("reply %d differs: %+v vs %+v", i, ra, rb)
		}
		for j := range ra.params {
			if ra.params[j] != rb.params[j] {
				t.Fatalf("reply %d param %d differs", i, j)
			}
		}
	}
	if a.Age() != b.Age() {
		t.Errorf("ages diverged after identical inputs: %v vs %v", a.Age(), b.Age())
	}
}

// TestSnapshotIsDeepCopy: mutating the core after Snapshot must not
// change the snapshot.
func TestSnapshotIsDeepCopy(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(0, 2, 2), []float64{1, 1}, true, out)
	st := s.Snapshot()
	s.HandleClientUpdate(0, []float64{9, 9}, 0)
	if st.Age != 0 || st.W[0] != 1 {
		t.Error("snapshot aliased live state")
	}
	if st.Token == nil {
		t.Fatal("token missing from snapshot")
	}
	st.Token.Ages[0] = 99
	if s.token.Ages[0] == 99 {
		t.Error("snapshot token aliases live token")
	}
}

// TestSnapshotGobRoundTrip: the snapshot must survive gob encoding — the
// format the live runtime persists checkpoints in.
func TestSnapshotGobRoundTrip(t *testing.T) {
	out := &fakeOut{}
	s := NewServerCore(coreConfig(1, 3, 2), []float64{1, 2}, false, out)
	s.HandleClientUpdate(0, []float64{3, 4}, 0)
	s.HandleServerModel(2, []float64{5, 6}, 3, 7)
	st := s.Snapshot()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServerCore(decoded, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Age() != s.Age() {
		t.Errorf("age after gob round trip: %v vs %v", restored.Age(), s.Age())
	}
	if restored.UpdatesFrom(0) != 1 {
		t.Error("decay counters lost in round trip")
	}
}

// TestRestoreLegacySnapshotFixedRing: checkpoints written before the
// elastic-membership extension decode with a nil Mem; they must restore
// onto the construction-time fixed ring at epoch 0 under the original
// strict validations.
func TestRestoreLegacySnapshotFixedRing(t *testing.T) {
	s := NewServerCore(coreConfig(1, 3, 2), []float64{1, 2}, false, &fakeOut{})
	s.HandleClientUpdate(0, []float64{3, 4}, 0)
	st := s.Snapshot()
	st.Mem = nil // what a pre-elastic gob decodes to
	r, err := RestoreServerCore(st, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Membership(), ring.Fixed(3); !got.Equal(want) {
		t.Fatalf("legacy restore membership = %v, want %v", got, want)
	}
	if r.Epoch() != 0 {
		t.Fatalf("legacy restore epoch = %d, want 0", r.Epoch())
	}
}

// TestSnapshotRoundTripsMembership: a post-admission membership — epoch
// above 0, a member ID past the construction-time count — must survive
// the gob checkpoint format and restore exactly, both for the joiner's
// re-keyed snapshot and for the sponsor's own.
func TestSnapshotRoundTripsMembership(t *testing.T) {
	sponsor := NewServerCore(coreConfig(0, 3, 2), []float64{1, 2}, false, &fakeOut{})
	st, err := sponsor.AdmitMember(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Config.ID != 3 {
		t.Fatalf("joiner snapshot keyed to ID %d, want 3", st.Config.ID)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	joiner, err := RestoreServerCore(decoded, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	want := ring.New(1, []int{0, 1, 2, 3})
	if got := joiner.Membership(); !got.Equal(want) {
		t.Fatalf("joiner membership = %v, want %v", got, want)
	}

	// The sponsor's own snapshot carries the same epoch-1 view; after an
	// exclusion the hole in the slot space must round-trip too.
	sponsor.ExcludeMember(1)
	sst := sponsor.Snapshot()
	r, err := RestoreServerCore(sst, &fakeOut{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Membership(), ring.New(2, []int{0, 2, 3}); !got.Equal(want) {
		t.Fatalf("sponsor membership after exclusion = %v, want %v", got, want)
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	if _, err := RestoreServerCore(State{}, &fakeOut{}); err == nil {
		t.Error("empty state accepted")
	}
	st := State{Config: coreConfig(0, 3, 2), W: []float64{1}, Ages: []float64{1, 2}}
	if _, err := RestoreServerCore(st, &fakeOut{}); err == nil {
		t.Error("wrong ages length accepted")
	}
	st = State{Config: coreConfig(0, 2, 2), W: []float64{1}, Ages: []float64{1, 2},
		Token: &Token{Bid: 1, Ages: []float64{1}}}
	if _, err := RestoreServerCore(st, &fakeOut{}); err == nil {
		t.Error("wrong token ages length accepted")
	}
}
