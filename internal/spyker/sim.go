package spyker

import (
	"fmt"
	"sort"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
)

// Algorithm runs Spyker under the discrete-event simulator. It implements
// fl.Algorithm, and — when the environment carries a fault plan — the
// fault.Cluster control surface, so internal/fault can crash, checkpoint,
// restart, and rob servers of the token.
type Algorithm struct {
	// DisableDecay turns the learning-rate decay off (for the Fig. 11
	// ablation).
	DisableDecay bool

	servers []*simServer

	// faultsArmed is set when Env.Faults != nil. It switches the message
	// glue from pooled zero-copy buffers to plain owned copies (injected
	// drops and duplicates break the pool's exactly-once release
	// protocol) and enables the down/epoch guards. Disarmed runs take
	// exactly the pre-fault code paths.
	faultsArmed bool
	initial     []float64 // pristine t=0 model, the restart fallback
}

var _ fl.Algorithm = (*Algorithm)(nil)

// Name implements fl.Algorithm.
func (a *Algorithm) Name() string {
	if a.DisableDecay {
		return "Spyker(no-decay)"
	}
	return "Spyker"
}

// simServer glues a ServerCore to the simulator: it owns the processing
// queue that models server occupancy and implements Outbound by sending
// messages through the geo network.
type simServer struct {
	env    *fl.Env
	alg    *Algorithm
	id     int
	cfg    Config
	core   *ServerCore
	queue  *fl.ProcQueue
	client map[int]*fl.SimClient

	// Failure-injection state, only touched when faultsArmed. down marks
	// a crashed server: arriving messages are discarded. epoch counts
	// crash/restart transitions so work already sitting in the processing
	// queue when the crash hit is invalidated rather than applied to the
	// restarted incarnation. ckpt is the restart point (fault.Cluster
	// Checkpoint), and heardSince tracks which clients this incarnation
	// has processed an update from — the re-engagement pass skips them.
	down       bool
	epoch      int
	ckpt       State
	hasCkpt    bool
	heardSince map[int]bool
}

var _ Outbound = (*simServer)(nil)

// submit queues fn on the server's processing queue. With faults armed it
// adds the crash guards: a message reaching a down server is discarded,
// and queued work from before a crash is not applied to the restarted
// incarnation (its volatile queue died with it).
func (s *simServer) submit(proc float64, fn func()) {
	if !s.alg.faultsArmed {
		s.queue.Submit(proc, fn)
		return
	}
	if s.down {
		return
	}
	epoch := s.epoch
	s.queue.Submit(proc, func() {
		if s.down || s.epoch != epoch {
			return
		}
		fn()
	})
}

// Build implements fl.Algorithm.
func (a *Algorithm) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	n := len(env.Servers)
	initial := env.NewModel(env.Seed).Params()
	a.faultsArmed = env.Faults != nil
	a.initial = initial

	a.servers = make([]*simServer, n)
	for i := range a.servers {
		s := &simServer{
			env:    env,
			alg:    a,
			id:     i,
			queue:  fl.NewProcQueue(env.Sim, i, env.Observer),
			client: make(map[int]*fl.SimClient),
		}
		s.queue.Instrument(
			env.Metrics.Gauge(fmt.Sprintf("sim.server%d.queue_depth", i)),
			env.Metrics.Histogram(fmt.Sprintf("sim.server%d.queue_depth_dist", i), nil),
		)
		cfg := Config{
			ID:           i,
			NumServers:   n,
			NumClients:   len(env.Servers[i].Clients),
			EtaServer:    env.Hyper.EtaServer,
			Phi:          env.Hyper.Phi,
			EtaA:         env.Hyper.EtaA,
			HInter:       env.Hyper.HInter,
			HIntra:       env.Hyper.HIntra,
			ClientLR:     env.Hyper.ClientLR,
			DecayEnabled: env.Hyper.DecayEnabled && !a.DisableDecay,
			Beta:         env.Hyper.Beta,
			EtaMin:       env.Hyper.EtaMin,

			RobustClipFactor: env.Hyper.RobustClipFactor,

			TokenTimeout: env.Hyper.TokenTimeout,
			SyncRetry:    env.Hyper.SyncRetry,
		}
		s.cfg = cfg
		if a.faultsArmed {
			s.heardSince = make(map[int]bool)
		}
		s.core = NewServerCore(cfg, initial, i == 0, s)
		s.core.Instrument(env.Trace, env.Sim.Now)
		a.servers[i] = s
	}
	a.scheduleTicks(env)

	// Create the clients and hand every one the initial model at time 0
	// (clients begin training immediately, as in the paper's emulation).
	for ci := range env.Clients {
		spec := env.Clients[ci]
		srv := a.servers[spec.Server]
		c := &fl.SimClient{
			Env:         env,
			Spec:        spec,
			Model:       env.NewModel(env.Seed + int64(1000+ci)),
			CopyUpdates: a.faultsArmed,
			Deliver: func(clientID int, update []float64, meta any, uid obs.UID) {
				age, ok := meta.(float64)
				if !ok {
					panic(fmt.Sprintf("spyker: client meta %T is not an age", meta))
				}
				srv.submit(env.ProcFor(srv.id, env.Hyper.ProcSpyker), func() {
					srv.core.HandleClientUpdateTraced(clientID, update, age, uid)
					if srv.heardSince != nil {
						srv.heardSince[clientID] = true
					}
					env.Observer.ClientUpdateProcessed(
						env.Sim.Now(), srv.id, clientID, a.ServerParams)
				})
			},
		}
		srv.client[ci] = c
		c.HandleModel(initial, float64(0), env.Hyper.ClientLR)
	}
	return nil
}

// scheduleTicks drives ServerCore.Tick for the recovery timers. Nothing
// is scheduled when both timeouts are off, so a recovery-disabled run's
// event schedule is byte-identical to one predating this extension. The
// tick period quarters the tightest timeout (detection latency at most
// 1.25× the configured window), and the first tick of each server is
// staggered by one period/n so simultaneous survivors do not all
// regenerate in the same instant.
func (a *Algorithm) scheduleTicks(env *fl.Env) {
	period := env.Hyper.TokenTimeout
	if r := env.Hyper.SyncRetry; r > 0 && (period == 0 || r < period) {
		period = r
	}
	if period <= 0 {
		return
	}
	period /= 4
	n := len(a.servers)
	for _, s := range a.servers {
		s := s
		var tick func()
		tick = func() {
			if !s.down {
				s.core.Tick(env.Sim.Now())
			}
			env.Sim.Schedule(period, tick)
		}
		env.Sim.ScheduleAt(period*(1+float64(s.id)/float64(n)), tick)
	}
}

// reengageGrace is how long a restarted server waits before re-sending
// its model to clients it has not heard from. The grace period lets
// updates that were already in flight at restart land first, so their
// clients are not handed a second concurrent training loop. One virtual
// second comfortably exceeds any link latency plus queueing in the
// modeled deployments.
const reengageGrace = 1.0

// NumServers implements fault.Cluster.
func (a *Algorithm) NumServers() int { return len(a.servers) }

// TokenHolder implements fault.Cluster: the live server currently
// holding the token, or -1 when the token is in flight or lost.
func (a *Algorithm) TokenHolder() int {
	for i, s := range a.servers {
		if !s.down && s.core.HasToken() {
			return i
		}
	}
	return -1
}

// Checkpoint implements fault.Cluster: snapshot server i's protocol
// state as its restart point. A down server cannot checkpoint.
func (a *Algorithm) Checkpoint(i int) {
	s := a.servers[i]
	if s.down {
		return
	}
	s.core.SnapshotInto(&s.ckpt)
	s.hasCkpt = true
}

// Crash implements fault.Cluster: server i loses its volatile state —
// queued work, and the token if it held one — and discards every message
// addressed to it until Restart.
func (a *Algorithm) Crash(i int) {
	s := a.servers[i]
	if s.down {
		return
	}
	s.down = true
	s.epoch++
}

// Restart implements fault.Cluster: server i comes back from its latest
// checkpoint (or from the pristine initial model if it never took one)
// and, after a short grace period, re-engages every client it has not
// heard from — their updates died with the crash, so without a fresh
// model their training loops would stay parked forever.
func (a *Algorithm) Restart(i int) {
	s := a.servers[i]
	if !s.down {
		return
	}
	if s.hasCkpt {
		core, err := RestoreServerCore(s.ckpt, s)
		if err != nil {
			panic(fmt.Sprintf("spyker: restart server %d: %v", i, err))
		}
		s.core = core
	} else {
		s.core = NewServerCore(s.cfg, a.initial, false, s)
	}
	s.core.Instrument(s.env.Trace, s.env.Sim.Now)
	s.down = false
	s.epoch++
	clear(s.heardSince)
	epoch := s.epoch
	s.env.Sim.Schedule(reengageGrace, func() {
		if s.down || s.epoch != epoch {
			return
		}
		ids := make([]int, 0, len(s.client))
		//lint:sorted keys are collected and sorted just below
		for ci := range s.client {
			ids = append(ids, ci)
		}
		sort.Ints(ids)
		for _, ci := range ids {
			if !s.heardSince[ci] {
				s.core.ReengageClient(ci)
			}
		}
	})
}

// DropToken implements fault.Cluster: discard the token if server i
// holds it, reporting whether it did.
func (a *Algorithm) DropToken(i int) bool {
	s := a.servers[i]
	if s.down {
		return false
	}
	return s.core.DropToken()
}

// ServerParams returns the live parameter vectors of every server model;
// used by observers to evaluate global progress.
func (a *Algorithm) ServerParams() [][]float64 {
	out := make([][]float64, len(a.servers))
	for i, s := range a.servers {
		out[i] = s.core.Params()
	}
	return out
}

// Servers exposes the server cores for white-box tests and diagnostics.
func (a *Algorithm) Servers() []*ServerCore {
	out := make([]*ServerCore, len(a.servers))
	for i, s := range a.servers {
		out[i] = s.core
	}
	return out
}

// ReplyClient implements Outbound. params is a borrow of the core's live
// model (see the Outbound contract), so it is copied into a pooled buffer
// that the delivery closure returns once the client has consumed it.
func (s *simServer) ReplyClient(k int, params []float64, age, lr float64) {
	src := s.env.ServerEndpoint(s.id)
	dst := s.env.ClientEndpoint(k)
	c := s.client[k]
	if s.alg.faultsArmed {
		// Owned copy instead of a pooled buffer: an injected duplicate
		// would release the pooled buffer twice, an injected drop never.
		own := append([]float64(nil), params...)
		s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
			c.HandleModel(own, age, lr)
		})
		return
	}
	buf := s.env.Pool.Get(len(params))
	buf.CopyFrom(params)
	s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
		// HandleModel copies the vector into the client model before it
		// returns (the trained update it schedules is a view of the model,
		// not of buf), so the buffer can be recycled immediately after.
		c.HandleModel(buf, age, lr)
		s.env.Pool.Put(buf)
	})
}

// BroadcastModel implements Outbound. One pooled copy of the borrowed
// params is shared by every peer delivery; a countdown (safe because the
// simulator is single-threaded) returns it after the last peer consumed
// the model. The frontier is also copied once at broadcast time: delivery
// happens later in virtual time, while the origin's live frontier keeps
// advancing, so aliasing it would corrupt the causal snapshot the
// broadcast carries.
func (s *simServer) BroadcastModel(params []float64, age float64, bid int, front []int64) {
	src := s.env.ServerEndpoint(s.id)
	if s.alg.faultsArmed {
		// One owned copy shared read-only by every peer delivery; the
		// pooled countdown protocol is unsound under injected drops and
		// duplicates (see ReplyClient), so faulty runs let the GC own it.
		own := append([]float64(nil), params...)
		frontOwn := append([]int64(nil), front...)
		uid := obs.RoundUID(s.id, bid)
		for _, peer := range s.alg.servers {
			if peer.id == s.id {
				continue
			}
			p := peer
			dst := s.env.ServerEndpoint(p.id)
			s.env.Net.SendTraced(src, dst, s.env.ModelBytes, geo.ServerServer, uid, func() {
				p.submit(s.env.ProcFor(p.id, s.env.Hyper.ProcSpyker), func() {
					p.core.HandleServerModelTraced(s.id, own, age, bid, frontOwn)
				})
			})
		}
		return
	}
	buf := s.env.Pool.Get(len(params))
	buf.CopyFrom(params)
	frontCopy := append([]int64(nil), front...)
	uid := obs.RoundUID(s.id, bid)
	remaining := len(s.alg.servers) - 1
	if remaining <= 0 {
		s.env.Pool.Put(buf)
		return
	}
	for _, peer := range s.alg.servers {
		if peer.id == s.id {
			continue
		}
		p := peer
		dst := s.env.ServerEndpoint(p.id)
		s.env.Net.SendTraced(src, dst, s.env.ModelBytes, geo.ServerServer, uid, func() {
			p.queue.Submit(s.env.ProcFor(p.id, s.env.Hyper.ProcSpyker), func() {
				p.core.HandleServerModelTraced(s.id, buf, age, bid, frontCopy)
				if remaining--; remaining == 0 {
					s.env.Pool.Put(buf)
				}
			})
		})
	}
}

// BroadcastAge implements Outbound.
func (s *simServer) BroadcastAge(age float64) {
	src := s.env.ServerEndpoint(s.id)
	for _, peer := range s.alg.servers {
		if peer.id == s.id {
			continue
		}
		p := peer
		dst := s.env.ServerEndpoint(p.id)
		s.env.Net.Send(src, dst, fl.AgeWireBytes, geo.ServerServer, func() {
			p.submit(0, func() {
				p.core.HandleAge(s.id, age)
			})
		})
	}
}

// SendToken implements Outbound. The token carries the bid of the sync
// round it is brokering, so the hop is traced under that round's UID.
func (s *simServer) SendToken(t Token, next int) {
	src := s.env.ServerEndpoint(s.id)
	dst := s.env.ServerEndpoint(next)
	peer := s.alg.servers[next]
	uid := obs.RoundUID(s.id, t.Bid)
	s.env.Net.SendTraced(src, dst, fl.TokenWireBytes(len(t.Ages)), geo.ServerServer, uid, func() {
		peer.submit(0, func() {
			peer.core.HandleToken(t)
		})
	})
}
