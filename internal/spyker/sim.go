package spyker

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
)

// Algorithm runs Spyker under the discrete-event simulator. It implements
// fl.Algorithm.
type Algorithm struct {
	// DisableDecay turns the learning-rate decay off (for the Fig. 11
	// ablation).
	DisableDecay bool

	servers []*simServer
}

var _ fl.Algorithm = (*Algorithm)(nil)

// Name implements fl.Algorithm.
func (a *Algorithm) Name() string {
	if a.DisableDecay {
		return "Spyker(no-decay)"
	}
	return "Spyker"
}

// simServer glues a ServerCore to the simulator: it owns the processing
// queue that models server occupancy and implements Outbound by sending
// messages through the geo network.
type simServer struct {
	env    *fl.Env
	alg    *Algorithm
	id     int
	core   *ServerCore
	queue  *fl.ProcQueue
	client map[int]*fl.SimClient
}

var _ Outbound = (*simServer)(nil)

// Build implements fl.Algorithm.
func (a *Algorithm) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	n := len(env.Servers)
	initial := env.NewModel(env.Seed).Params()

	a.servers = make([]*simServer, n)
	for i := range a.servers {
		s := &simServer{
			env:    env,
			alg:    a,
			id:     i,
			queue:  fl.NewProcQueue(env.Sim, i, env.Observer),
			client: make(map[int]*fl.SimClient),
		}
		s.queue.Instrument(
			env.Metrics.Gauge(fmt.Sprintf("sim.server%d.queue_depth", i)),
			env.Metrics.Histogram(fmt.Sprintf("sim.server%d.queue_depth_dist", i), nil),
		)
		cfg := Config{
			ID:           i,
			NumServers:   n,
			NumClients:   len(env.Servers[i].Clients),
			EtaServer:    env.Hyper.EtaServer,
			Phi:          env.Hyper.Phi,
			EtaA:         env.Hyper.EtaA,
			HInter:       env.Hyper.HInter,
			HIntra:       env.Hyper.HIntra,
			ClientLR:     env.Hyper.ClientLR,
			DecayEnabled: env.Hyper.DecayEnabled && !a.DisableDecay,
			Beta:         env.Hyper.Beta,
			EtaMin:       env.Hyper.EtaMin,

			RobustClipFactor: env.Hyper.RobustClipFactor,
		}
		s.core = NewServerCore(cfg, initial, i == 0, s)
		s.core.Instrument(env.Trace, env.Sim.Now)
		a.servers[i] = s
	}

	// Create the clients and hand every one the initial model at time 0
	// (clients begin training immediately, as in the paper's emulation).
	for ci := range env.Clients {
		spec := env.Clients[ci]
		srv := a.servers[spec.Server]
		c := &fl.SimClient{
			Env:   env,
			Spec:  spec,
			Model: env.NewModel(env.Seed + int64(1000+ci)),
			Deliver: func(clientID int, update []float64, meta any, uid obs.UID) {
				age, ok := meta.(float64)
				if !ok {
					panic(fmt.Sprintf("spyker: client meta %T is not an age", meta))
				}
				srv.queue.Submit(env.ProcFor(srv.id, env.Hyper.ProcSpyker), func() {
					srv.core.HandleClientUpdateTraced(clientID, update, age, uid)
					env.Observer.ClientUpdateProcessed(
						env.Sim.Now(), srv.id, clientID, a.ServerParams)
				})
			},
		}
		srv.client[ci] = c
		c.HandleModel(initial, float64(0), env.Hyper.ClientLR)
	}
	return nil
}

// ServerParams returns the live parameter vectors of every server model;
// used by observers to evaluate global progress.
func (a *Algorithm) ServerParams() [][]float64 {
	out := make([][]float64, len(a.servers))
	for i, s := range a.servers {
		out[i] = s.core.Params()
	}
	return out
}

// Servers exposes the server cores for white-box tests and diagnostics.
func (a *Algorithm) Servers() []*ServerCore {
	out := make([]*ServerCore, len(a.servers))
	for i, s := range a.servers {
		out[i] = s.core
	}
	return out
}

// ReplyClient implements Outbound. params is a borrow of the core's live
// model (see the Outbound contract), so it is copied into a pooled buffer
// that the delivery closure returns once the client has consumed it.
func (s *simServer) ReplyClient(k int, params []float64, age, lr float64) {
	src := s.env.ServerEndpoint(s.id)
	dst := s.env.ClientEndpoint(k)
	c := s.client[k]
	buf := s.env.Pool.Get(len(params))
	buf.CopyFrom(params)
	s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
		// HandleModel copies the vector into the client model before it
		// returns (the trained update it schedules is a view of the model,
		// not of buf), so the buffer can be recycled immediately after.
		c.HandleModel(buf, age, lr)
		s.env.Pool.Put(buf)
	})
}

// BroadcastModel implements Outbound. One pooled copy of the borrowed
// params is shared by every peer delivery; a countdown (safe because the
// simulator is single-threaded) returns it after the last peer consumed
// the model. The frontier is also copied once at broadcast time: delivery
// happens later in virtual time, while the origin's live frontier keeps
// advancing, so aliasing it would corrupt the causal snapshot the
// broadcast carries.
func (s *simServer) BroadcastModel(params []float64, age float64, bid int, front []int64) {
	src := s.env.ServerEndpoint(s.id)
	buf := s.env.Pool.Get(len(params))
	buf.CopyFrom(params)
	frontCopy := append([]int64(nil), front...)
	uid := obs.RoundUID(s.id, bid)
	remaining := len(s.alg.servers) - 1
	if remaining <= 0 {
		s.env.Pool.Put(buf)
		return
	}
	for _, peer := range s.alg.servers {
		if peer.id == s.id {
			continue
		}
		p := peer
		dst := s.env.ServerEndpoint(p.id)
		s.env.Net.SendTraced(src, dst, s.env.ModelBytes, geo.ServerServer, uid, func() {
			p.queue.Submit(s.env.ProcFor(p.id, s.env.Hyper.ProcSpyker), func() {
				p.core.HandleServerModelTraced(s.id, buf, age, bid, frontCopy)
				if remaining--; remaining == 0 {
					s.env.Pool.Put(buf)
				}
			})
		})
	}
}

// BroadcastAge implements Outbound.
func (s *simServer) BroadcastAge(age float64) {
	src := s.env.ServerEndpoint(s.id)
	for _, peer := range s.alg.servers {
		if peer.id == s.id {
			continue
		}
		p := peer
		dst := s.env.ServerEndpoint(p.id)
		s.env.Net.Send(src, dst, fl.AgeWireBytes, geo.ServerServer, func() {
			p.queue.Submit(0, func() {
				p.core.HandleAge(s.id, age)
			})
		})
	}
}

// SendToken implements Outbound. The token carries the bid of the sync
// round it is brokering, so the hop is traced under that round's UID.
func (s *simServer) SendToken(t Token, next int) {
	src := s.env.ServerEndpoint(s.id)
	dst := s.env.ServerEndpoint(next)
	peer := s.alg.servers[next]
	uid := obs.RoundUID(s.id, t.Bid)
	s.env.Net.SendTraced(src, dst, fl.TokenWireBytes(len(t.Ages)), geo.ServerServer, uid, func() {
		peer.queue.Submit(0, func() {
			peer.core.HandleToken(t)
		})
	})
}
